package oassis_test

import (
	"strings"
	"testing"

	"oassis"
)

// limitQuery asks for the top-k activity patterns; the base query has three
// MSPs at Θ=0.4 for the Table 3 crowd.
func limitQuery(limit string) string {
	return `
SELECT FACT-SETS ` + limit + `
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4`
}

func TestParseLimitAndDiverse(t *testing.T) {
	v, _ := fixture(t)
	q, err := oassis.ParseQuery(limitQuery("LIMIT 2"), v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 2 || q.Diverse {
		t.Fatalf("Limit=%d Diverse=%v", q.Limit, q.Diverse)
	}
	q, err = oassis.ParseQuery(limitQuery("LIMIT 2 DIVERSE"), v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 2 || !q.Diverse {
		t.Fatalf("Limit=%d Diverse=%v", q.Limit, q.Diverse)
	}
	// Round trip through the printer.
	q2, err := oassis.ParseQuery(q.String(), v)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if q2.Limit != 2 || !q2.Diverse {
		t.Fatal("LIMIT DIVERSE lost in round trip")
	}
	// Errors.
	for _, bad := range []string{"LIMIT", "LIMIT 0", "LIMIT x"} {
		if _, err := oassis.ParseQuery(limitQuery(bad), v); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseConfidence(t *testing.T) {
	v, _ := fixture(t)
	q, err := oassis.ParseQuery(strings.Replace(limitQuery(""),
		"WITH SUPPORT = 0.4", "WITH SUPPORT = 0.4 CONFIDENCE = 0.7", 1), v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Satisfying.Confidence != 0.7 {
		t.Fatalf("Confidence = %v", q.Satisfying.Confidence)
	}
	// Out of range.
	if _, err := oassis.ParseQuery(strings.Replace(limitQuery(""),
		"WITH SUPPORT = 0.4", "WITH SUPPORT = 0.4 CONFIDENCE = 1.5", 1), v); err == nil {
		t.Fatal("accepted confidence > 1")
	}
}

func TestTopKStopsEarly(t *testing.T) {
	v, store := fixture(t)
	full, err := oassis.ParseQuery(limitQuery(""), v)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := oassis.ParseQuery(limitQuery("LIMIT 1"), v)
	if err != nil {
		t.Fatal(err)
	}
	runQ := func(q *oassis.Query) *oassis.Result {
		session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
			oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := session.Run(table3Members(t, v))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fullRes := runQ(full)
	topRes := runQ(limited)
	if len(topRes.MSPs) != 1 {
		t.Fatalf("LIMIT 1 returned %d MSPs", len(topRes.MSPs))
	}
	if topRes.Stats.Questions >= fullRes.Stats.Questions {
		t.Errorf("top-1 run asked %d questions, full run %d — early stop saved nothing",
			topRes.Stats.Questions, fullRes.Stats.Questions)
	}
}

func TestDiverseSelection(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(limitQuery("LIMIT 2 DIVERSE"), v)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValidMSPs) != 2 {
		t.Fatalf("DIVERSE LIMIT 2 returned %d MSPs", len(res.ValidMSPs))
	}
	// The full result has (CP, Biking), (CP, Ball Game), (BZ, Feed a
	// monkey). The two Central Park answers are semantically close; a
	// diverse pick must keep the Bronx Zoo answer.
	foundZoo := false
	for _, m := range res.ValidMSPs {
		if m.Values("x")[0] == v.Element("Bronx Zoo") {
			foundZoo = true
		}
	}
	if !foundZoo {
		for _, m := range res.ValidMSPs {
			t.Logf("picked: %s", session.DescribeAssignment(m))
		}
		t.Error("diverse selection dropped the semantically distant answer")
	}
}

func TestOnMSPStreaming(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(limitQuery(""), v)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []string
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)),
		oassis.WithOnMSP(func(a *oassis.Assignment) {
			streamed = append(streamed, a.Key())
		}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.MSPs) {
		t.Fatalf("streamed %d MSPs, result has %d", len(streamed), len(res.MSPs))
	}
	want := map[string]bool{}
	for _, m := range res.MSPs {
		want[m.Key()] = true
	}
	for _, k := range streamed {
		if !want[k] {
			t.Errorf("streamed non-result MSP %s", k)
		}
	}
}

// TestMineRulesFacade exercises the CONFIDENCE-driven rule mining through
// the public API.
func TestMineRulesFacade(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(strings.Replace(limitQuery(""),
		"WITH SUPPORT = 0.4", "WITH SUPPORT = 0.2 CONFIDENCE = 0.5", 1), v)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.2)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	rulesOut := session.MineRules(res, 0)
	if len(rulesOut) == 0 {
		t.Fatal("no rules mined via facade")
	}
	for _, r := range rulesOut {
		if r.Confidence < 0.5 {
			t.Errorf("rule below the query's CONFIDENCE: %v", r.Confidence)
		}
		if s := session.DescribeRule(r); !strings.Contains(s, "usually also") {
			t.Errorf("rule rendering broken: %q", s)
		}
	}
}

func TestParallelSessionOption(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(limitQuery(""), v)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithParallelism(4),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValidMSPs) != 3 {
		t.Fatalf("parallel session found %d valid MSPs, want 3", len(res.ValidMSPs))
	}
}
