package oassis_test

import (
	"fmt"
	"strings"

	"oassis"
)

// exampleOntology is a pocket-sized slice of the paper's Figure 1.
const exampleOntology = `
Activity subClassOf Thing
Sport subClassOf Activity
Biking subClassOf Sport
Basketball subClassOf Sport
Park subClassOf Thing
"Central Park" instanceOf Park
@relation doAt
`

const exampleCrowd = `
member ann
Biking doAt "Central Park"
Biking doAt "Central Park"
Basketball doAt "Central Park"
member ben
Biking doAt "Central Park"
Biking doAt "Central Park"
`

// Example runs a complete query: parse, evaluate WHERE, mine two simulated
// crowd members, print the maximal significant patterns.
func Example() {
	v, store, err := oassis.LoadOntology(strings.NewReader(exampleOntology))
	if err != nil {
		panic(err)
	}
	q, err := oassis.ParseQuery(`
SELECT FACT-SETS
WHERE
  $y subClassOf* Activity
SATISFYING
  $y doAt "Central Park"
WITH SUPPORT = 0.6`, v)
	if err != nil {
		panic(err)
	}
	members, err := oassis.LoadCrowd(strings.NewReader(exampleCrowd), v, 1)
	if err != nil {
		panic(err)
	}
	session, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.6)),
	)
	if err != nil {
		panic(err)
	}
	res, err := session.Run(members)
	if err != nil {
		panic(err)
	}
	for _, fs := range session.FactSets(res.ValidMSPs) {
		fmt.Println(session.DescribeAnswer(fs))
	}
	// Output:
	// People frequently engage in Biking at Central Park.
}

// ExampleSession_Describe shows how mined questions and answers render.
func ExampleSession_Describe() {
	v, store, err := oassis.LoadOntology(strings.NewReader(exampleOntology))
	if err != nil {
		panic(err)
	}
	q, err := oassis.ParseQuery(`
SELECT FACT-SETS
WHERE $y subClassOf* Activity
SATISFYING $y doAt "Central Park"
WITH SUPPORT = 0.5`, v)
	if err != nil {
		panic(err)
	}
	session, err := oassis.NewSession(store, q)
	if err != nil {
		panic(err)
	}
	fact, err := oassis.ParseFact(`Biking doAt "Central Park"`, v)
	if err != nil {
		panic(err)
	}
	fs := oassis.NewFactSet(fact)
	fmt.Println(session.Describe(fs))
	fmt.Println(session.DescribeAnswer(fs))
	// Output:
	// How often do you engage in Biking at Central Park?
	// People frequently engage in Biking at Central Park.
}

// ExampleParseQuery demonstrates parse-and-print round-tripping.
func ExampleParseQuery() {
	v, _, err := oassis.LoadOntology(strings.NewReader(exampleOntology))
	if err != nil {
		panic(err)
	}
	q, err := oassis.ParseQuery(
		`select fact-sets where $y subClassOf* Sport satisfying $y doAt "Central Park" with support = 0.25`, v)
	if err != nil {
		panic(err)
	}
	fmt.Print(q.String())
	// Output:
	// SELECT FACT-SETS
	// WHERE
	//   $y subClassOf* Sport
	// SATISFYING
	//   $y doAt "Central Park"
	// WITH SUPPORT = 0.25
}
