// Benchmarks regenerating every figure of the OASSIS evaluation (Section 6),
// one per figure, plus micro-benchmarks of the hot paths. The figures use
// moderately scaled configurations so `go test -bench=.` completes in
// minutes; `cmd/oassis-bench` runs the full paper-scale harness and prints
// the data series.
package oassis_test

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"oassis"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/exp"
	"oassis/internal/paperdata"
	"oassis/internal/synth"
)

// benchMembers / benchDAG scale the figure benchmarks.
const (
	benchMembers  = 60
	benchDAGWidth = 150
	benchDAGDepth = 6
	benchTrials   = 2
)

var benchThetas = []float64{0.2, 0.3, 0.4, 0.5}

// BenchmarkFig4aTravelStats regenerates the travel crowd statistics
// (Figure 4a): MSP/valid/question counts and baseline% per threshold.
func BenchmarkFig4aTravelStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.CrowdStats(synth.Travel(benchMembers, 1), benchThetas, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].Questions == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkFig4bCulinaryStats regenerates Figure 4b.
func BenchmarkFig4bCulinaryStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.CrowdStats(synth.Culinary(benchMembers, 2), benchThetas, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0].MSPs != res.Rows[0].ValidMSPs {
			b.Fatal("culinary MSPs must all be valid")
		}
	}
}

// BenchmarkFig4cSelfTreatmentStats regenerates Figure 4c.
func BenchmarkFig4cSelfTreatmentStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.CrowdStats(synth.SelfTreatment(benchMembers, 3), benchThetas, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4dPaceTravel regenerates the travel pace-of-collection curve
// (Figure 4d).
func BenchmarkFig4dPaceTravel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Pace(synth.Travel(benchMembers, 1), 0.2, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no pace points")
		}
	}
}

// BenchmarkFig4ePaceSelfTreatment regenerates Figure 4e.
func BenchmarkFig4ePaceSelfTreatment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Pace(synth.SelfTreatment(benchMembers, 3), 0.2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4fAnswerTypes regenerates the answer-type study (Figure 4f):
// specialization and pruning ratios on a synthetic DAG.
func BenchmarkFig4fAnswerTypes(b *testing.B) {
	cfg := synth.DAGConfig{Width: benchDAGWidth, Depth: benchDAGDepth, MSPPercent: 0.02}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AnswerTypes(cfg, benchTrials, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Algorithms regenerates the vertical/horizontal/naive
// comparison (Figures 5a–5c) at the three MSP densities.
func BenchmarkFig5Algorithms(b *testing.B) {
	for _, pct := range []float64{0.02, 0.05, 0.10} {
		name := map[float64]string{0.02: "5a-2pct", 0.05: "5b-5pct", 0.10: "5c-10pct"}[pct]
		b.Run(name, func(b *testing.B) {
			cfg := synth.DAGConfig{Width: benchDAGWidth, Depth: benchDAGDepth, MSPPercent: pct}
			for i := 0; i < b.N; i++ {
				curves, err := exp.Algorithms(cfg, benchTrials, 9)
				if err != nil {
					b.Fatal(err)
				}
				if curves[0].QuestionsAt[1] >= curves[1].QuestionsAt[1] {
					b.Fatal("vertical should beat horizontal early")
				}
			}
		})
	}
}

// BenchmarkText63DomainRun regenerates one Section 6.3 domain run end to end.
func BenchmarkText63DomainRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.CrowdStats(synth.SelfTreatment(benchMembers, 3), []float64{0.2}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkText64Laziness measures the lazy-vs-eager generation claim of
// Section 6.4 on a multiplicity DAG.
func BenchmarkText64Laziness(b *testing.B) {
	// Multiplicity exploration is the expensive regime; a smaller DAG
	// keeps the benchmark under a few seconds while the claim still holds.
	cfg := synth.DAGConfig{
		Width: 80, Depth: 5,
		MSPPercent: 0.02, MultiMSPPercent: 0.02, MultiMSPSize: 2,
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.Laziness(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res.GeneratedPct > 5 {
			b.Fatalf("laziness claim violated: %.2f%%", res.GeneratedPct)
		}
	}
}

// --- micro-benchmarks of the substrate hot paths ---

// BenchmarkWhereEvaluation measures SPARQL BGP matching on the Figure 2
// query over the Figure 1 ontology.
func BenchmarkWhereEvaluation(b *testing.B) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		b.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.QueryText, v)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oassis.NewSession(store, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures OASSIS-QL parsing.
func BenchmarkQueryParse(b *testing.B) {
	v, _, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oassis.ParseQuery(paperdata.QueryText, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupportComputation measures fact-set support over a personal DB.
func BenchmarkSupportComputation(b *testing.B) {
	v, _, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		b.Fatal(err)
	}
	du1, _ := paperdata.Table3(v)
	m := oassis.NewSimMember("u1", v, du1, 1)
	fs := oassis.NewFactSet(paperdata.Fact(v, "Sport", "doAt", "Central Park"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.TrueSupport(fs); s <= 0 {
			b.Fatal("zero support")
		}
	}
}

// BenchmarkEndToEndQuickstart measures a full multi-user run of the paper's
// running example.
func BenchmarkEndToEndQuickstart(b *testing.B) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		b.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		b.Fatal(err)
	}
	du1, du2 := paperdata.Table3(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1 := oassis.NewSimMember("u1", v, du1, 1)
		m1.Scale = nil
		m2 := oassis.NewSimMember("u2", v, du2, 2)
		m2.Scale = nil
		session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
			oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
		if err != nil {
			b.Fatal(err)
		}
		res, err := session.Run([]oassis.Member{m1, m2})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ValidMSPs) != 3 {
			b.Fatalf("valid MSPs = %d", len(res.ValidMSPs))
		}
	}
}

// BenchmarkGrowthStudy regenerates the Section 6.3 wall-clock growth claim.
func BenchmarkGrowthStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.CrowdGrowth(synth.SelfTreatment(0, 7),
			[]int{benchMembers / 2, benchMembers}, exp.DefaultLatency, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].FirstMSPMinutes >= rows[0].FirstMSPMinutes {
			b.Fatal("growth speedup missing")
		}
	}
}

// BenchmarkAggregatorAblation regenerates the spam-robustness ablation.
func BenchmarkAggregatorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AggregatorAblation(synth.SelfTreatment(benchMembers/2, 7), 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkEngineThroughput measures raw mining-kernel throughput over a
// synthetic oracle crowd: crowd questions processed per second and heap
// allocations per question, with no I/O, latency faults or HTTP in the way.
// The numbers bracket the kernel refactor — the event-driven engine must not
// be slower than the loop it replaced.
//
// OASSIS_BENCH_OBS=1 runs the same workload with an Observer attached, for
// comparing disabled-vs-enabled observability cost (CI gates the disabled
// mode against its recorded baseline; enabled mode is informational).
// OASSIS_BENCH_JOURNAL=1 additionally enables the flight-recorder journal
// on that observer, bounding the full event-stream recording cost.
func BenchmarkEngineThroughput(b *testing.B) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 60, Depth: 4, MSPPercent: 0.05, Places: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	var obsr *oassis.Observer
	if os.Getenv("OASSIS_BENCH_OBS") == "1" || os.Getenv("OASSIS_BENCH_JOURNAL") == "1" {
		obsr = oassis.NewObserver()
	}
	if os.Getenv("OASSIS_BENCH_JOURNAL") == "1" {
		obsr.EnableJournal(0)
	}
	theta := d.Query.Satisfying.Support
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := make([]crowd.Member, 4)
		for j := range pool {
			pool[j] = d.Oracle(0, int64(j+1))
		}
		res := core.NewEngine(d.Space, pool, core.EngineConfig{
			Theta:               theta,
			Aggregator:          crowd.NewMeanAggregator(3, theta),
			SpecializationRatio: 0.15,
			Seed:                7,
			Obs:                 obsr,
		}).Run()
		if res.Stats.Questions == 0 {
			b.Fatal("engine asked no questions")
		}
		questions += res.Stats.Questions
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(questions)/b.Elapsed().Seconds(), "questions/s")
	b.ReportMetric(float64(ms.Mallocs-startMallocs)/float64(questions), "allocs/question")
}

// BenchmarkEngineThroughputParallel measures the same oracle-crowd workload
// on a crowd large enough for the sharded round selection to matter
// (64 members), serial vs 8 selection workers. The differential suite
// (TestParallelSelection*) pins both modes byte-identical, so the only
// thing allowed to differ here is wall clock. On a single-core runner the
// 8-worker mode is expected to track the serial mode within noise; the
// speedup claim needs a multi-core runner.
func BenchmarkEngineThroughputParallel(b *testing.B) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 60, Depth: 4, MSPPercent: 0.05, Places: 3, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	theta := d.Query.Satisfying.Support
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool := make([]crowd.Member, 64)
				for j := range pool {
					pool[j] = namedOracle{Member: d.Oracle(0, int64(j+1)), id: fmt.Sprintf("m%02d", j)}
				}
				res := core.NewEngine(d.Space, pool, core.EngineConfig{
					Theta:               theta,
					Aggregator:          crowd.NewMeanAggregator(5, theta),
					SpecializationRatio: 0.15,
					Seed:                7,
					SelectionWorkers:    workers,
				}).Run()
				if res.Stats.Questions == 0 {
					b.Fatal("engine asked no questions")
				}
				questions += res.Stats.Questions
			}
			b.ReportMetric(float64(questions)/b.Elapsed().Seconds(), "questions/s")
		})
	}
}

// BenchmarkRoundSelection isolates the per-round selection cost the
// sharded kernel attacks: a 1000-member crowd over a deep DAG, where most
// members' turns end in a full no-op traversal (everything reachable is
// already covered in flight), so beginRound dominates the run. A small
// per-member question cap bounds each iteration without changing the
// per-round selection work.
func BenchmarkRoundSelection(b *testing.B) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 80, Depth: 6, MSPPercent: 0.04, Places: 2, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	theta := d.Query.Satisfying.Support
	const crowdSize = 1000
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			selections := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool := make([]crowd.Member, crowdSize)
				for j := range pool {
					pool[j] = namedOracle{Member: d.Oracle(0, int64(j+1)), id: fmt.Sprintf("m%03d", j)}
				}
				res := core.NewEngine(d.Space, pool, core.EngineConfig{
					Theta:                 theta,
					Aggregator:            crowd.NewMeanAggregator(3, theta),
					SpecializationRatio:   0.15,
					MaxQuestionsPerMember: 4,
					Seed:                  7,
					SelectionWorkers:      workers,
				}).Run()
				if res.Stats.Rounds == 0 {
					b.Fatal("engine ran no rounds")
				}
				selections += res.Stats.Rounds * crowdSize
			}
			b.ReportMetric(float64(selections)/b.Elapsed().Seconds(), "memberselects/s")
		})
	}
}
