package oassis_test

import (
	"strings"
	"testing"

	"oassis"
	"oassis/internal/paperdata"
)

// crowdFilterQuery restricts the crowd to members from a given city —
// the Section 8 crowd-selection extension.
const crowdFilterQuery = `
SELECT FACT-SETS
FROM CROWD WITH city = "NYC"
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4`

func TestParseCrowdFilter(t *testing.T) {
	v, _ := fixture(t)
	q, err := oassis.ParseQuery(crowdFilterQuery, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.CrowdFilter) != 1 || q.CrowdFilter[0].Attr != "city" || q.CrowdFilter[0].Value != "NYC" {
		t.Fatalf("CrowdFilter = %+v", q.CrowdFilter)
	}
	// Conjunctions.
	multi := strings.Replace(crowdFilterQuery,
		`FROM CROWD WITH city = "NYC"`,
		`FROM CROWD WITH city = "NYC" AND age = "30s"`, 1)
	q, err = oassis.ParseQuery(multi, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.CrowdFilter) != 2 {
		t.Fatalf("CrowdFilter = %+v", q.CrowdFilter)
	}
	// Round trip.
	q2, err := oassis.ParseQuery(q.String(), v)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, q.String())
	}
	if len(q2.CrowdFilter) != 2 {
		t.Fatal("crowd filter lost in round trip")
	}
	// Malformed clauses.
	for _, bad := range []string{
		"FROM CROWD city = \"NYC\"",        // missing WITH
		"FROM CROWD WITH city \"NYC\"",     // missing =
		"FROM CROWD WITH city = ",          // missing value
		"FROM CROWD WITH city = $x",        // variable value
		"FROM CROWD WITH city = \"a\" AND", // dangling AND
	} {
		text := strings.Replace(crowdFilterQuery, `FROM CROWD WITH city = "NYC"`, bad, 1)
		if _, err := oassis.ParseQuery(text, v); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestCrowdFilterSelectsMembers(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(crowdFilterQuery, v)
	if err != nil {
		t.Fatal(err)
	}
	du1, du2 := paperdata.Table3(v)
	local := oassis.NewSimMember("local", v, du1, 1)
	local.Scale = nil
	local.Attrs = map[string]string{"city": "NYC"}
	tourist := oassis.NewSimMember("tourist", v, du2, 2)
	tourist.Scale = nil
	tourist.Attrs = map[string]string{"city": "Tel Aviv"}

	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(1, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run([]oassis.Member{local, tourist})
	if err != nil {
		t.Fatal(err)
	}
	// Only u1 (the NYC local) answers: (BZ, Feed a monkey) has support
	// 1/2 ≥ 0.4 for u1 but (CP, Biking) has only 1/3 < 0.4 — the result
	// reflects u1 alone.
	keys := map[string]bool{}
	for _, m := range res.ValidMSPs {
		keys[session.DescribeAssignment(m)] = true
	}
	for k := range keys {
		if strings.Contains(k, "Biking") {
			t.Errorf("u2-only pattern leaked into a filtered run: %v", keys)
		}
	}
	if len(res.ValidMSPs) == 0 {
		t.Fatal("filtered run found nothing")
	}
}

func TestCrowdFilterNoMatches(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(crowdFilterQuery, v)
	if err != nil {
		t.Fatal(err)
	}
	du1, _ := paperdata.Table3(v)
	m := oassis.NewSimMember("unattributed", v, du1, 1) // no Attrs at all
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Run([]oassis.Member{m}); err == nil {
		t.Fatal("run succeeded with no matching members")
	}
}
