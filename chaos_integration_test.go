package oassis_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"oassis"
	"oassis/internal/paperdata"
)

// chaosSession builds a fresh paper-example session for one chaos run.
func chaosSession(t *testing.T, opts ...oassis.Option) (*oassis.Session, *oassis.Vocabulary) {
	t.Helper()
	v, store := fixture(t)
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]oassis.Option{
		oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(1, 0.4)),
	}, opts...)
	sess, err := oassis.NewSession(store, q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess, v
}

// u1Clones builds n faulty members all answering from u1's personal
// database, so any surviving subset produces the same answers as u1 alone.
func u1Clones(t *testing.T, v *oassis.Vocabulary, clock oassis.Clock, faults []oassis.Faults) []oassis.Member {
	t.Helper()
	du1, _ := paperdata.Table3(v)
	members := make([]oassis.Member, len(faults))
	for i, f := range faults {
		inner := oassis.NewSimMember("u1", v, du1, 1)
		inner.Scale = nil
		f.ID = "u1-clone-" + string(rune('a'+i))
		if f.Seed == 0 {
			f.Seed = int64(i + 1)
		}
		members[i] = oassis.NewFaultyMember(inner, clock, f)
	}
	return members
}

func sortedAnswers(sess *oassis.Session, res *oassis.Result) []string {
	out := sess.Answers(res)
	sort.Strings(out)
	return out
}

// TestChaosPublicAPIDeterministicSimulation drives the whole chaos stack
// through the public API: a virtual clock, an answer deadline, a parallel
// run and a crowd where a third of the members depart mid-run. The
// degraded run must return exactly the fault-free answers (the members are
// clones, so the surviving crowd's truth is unchanged), and the whole
// scenario must replay bit-identically.
func TestChaosPublicAPIDeterministicSimulation(t *testing.T) {
	// Fault-free baseline.
	base, bv := chaosSession(t)
	baseRes, err := base.Run(u1Clones(t, bv, nil, make([]oassis.Faults, 1)))
	if err != nil {
		t.Fatal(err)
	}
	want := sortedAnswers(base, baseRes)
	if len(want) == 0 {
		t.Fatal("baseline found no answers")
	}

	chaosRun := func(parallel int) ([]string, int, time.Duration) {
		clock := oassis.NewVirtualClock()
		opts := []oassis.Option{
			oassis.WithClock(clock),
			oassis.WithAnswerDeadline(5*time.Minute, 3),
		}
		if parallel > 1 {
			opts = append(opts, oassis.WithParallelism(parallel))
		}
		sess, v := chaosSession(t, opts...)
		faults := make([]oassis.Faults, 6)
		for i := range faults {
			faults[i].LatencyMin = 15 * time.Second
			faults[i].LatencyMax = 2 * time.Minute
			faults[i].HeavyTailAlpha = 1.5
		}
		faults[1].DepartAfter = 2
		faults[4].DepartAfter = 1
		res, err := sess.Run(u1Clones(t, v, clock, faults))
		if err != nil {
			t.Fatal(err)
		}
		return sortedAnswers(sess, res), res.Stats.Departures, clock.Elapsed()
	}

	got, departures, elapsed := chaosRun(1)
	if departures != 2 {
		t.Fatalf("Departures = %d, want 2", departures)
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("chaos answers diverged from fault-free baseline:\n%v\nvs\n%v", got, want)
	}
	if elapsed == 0 {
		t.Fatal("virtual clock never advanced")
	}
	// Bit-identical replay: same seeds, same virtual timeline, same answers.
	// (A sequential-mode guarantee: concurrent interviews make the member
	// schedule, and hence the fault timeline, depend on the Go scheduler.)
	got2, departures2, elapsed2 := chaosRun(1)
	if strings.Join(got, "\n") != strings.Join(got2, "\n") ||
		departures != departures2 || elapsed != elapsed2 {
		t.Fatalf("replay diverged: (%v, %d, %v) vs (%v, %d, %v)",
			got, departures, elapsed, got2, departures2, elapsed2)
	}

	// The parallel engine under the same chaos keeps the correctness half
	// of the contract: same answers, same departures (the schedule, and so
	// the virtual timeline, may differ).
	pgot, pdepartures, pelapsed := chaosRun(3)
	if strings.Join(pgot, "\n") != strings.Join(want, "\n") {
		t.Fatalf("parallel chaos answers diverged from baseline:\n%v\nvs\n%v", pgot, want)
	}
	if pdepartures != 2 {
		t.Fatalf("parallel Departures = %d, want 2", pdepartures)
	}
	if pelapsed == 0 {
		t.Fatal("parallel run never advanced the virtual clock")
	}
}
