package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"oassis"
	"oassis/internal/nlgen"
)

// consoleMember turns the terminal into one crowd member: the engine's
// questions are rendered in natural language (as in the prototype's
// crowdsourcing UI, Section 6.2) and answered interactively on the paper's
// five-point scale.
type consoleMember struct {
	id       string
	renderer *nlgen.Renderer
	in       *bufio.Reader
	out      io.Writer
	asked    int
}

func newConsoleMember(id string, v *oassis.Vocabulary, in io.Reader, out io.Writer) *consoleMember {
	return &consoleMember{
		id:       id,
		renderer: nlgen.NewRenderer(v),
		in:       bufio.NewReader(in),
		out:      out,
	}
}

func (m *consoleMember) ID() string { return m.id }

// AskConcrete prints the question and reads an answer: 0-4, a scale label,
// or "q" to stop answering (treated as never).
func (m *consoleMember) AskConcrete(fs oassis.FactSet) oassis.Response {
	m.asked++
	fmt.Fprintf(m.out, "\nQ%d. %s\n", m.asked, m.renderer.ConcreteQuestion(fs))
	fmt.Fprintf(m.out, "    [0 never  1 rarely  2 sometimes  3 often  4 very often]\n")
	return oassis.Response{Support: m.readScale()}
}

// AskSpecialize prints the open question with numbered suggestions; the
// member picks one and rates it, or answers 0 for "none of these".
func (m *consoleMember) AskSpecialize(base oassis.FactSet, candidates []oassis.FactSet) (int, oassis.Response) {
	m.asked++
	fmt.Fprintf(m.out, "\nQ%d. %s\n", m.asked, m.renderer.SpecializationQuestion(base))
	for i, c := range candidates {
		fmt.Fprintf(m.out, "    %d) %s\n", i+1, m.renderer.ConcreteQuestion(c))
	}
	fmt.Fprintf(m.out, "    0) none of these\n")
	choice := m.readInt(0, len(candidates))
	if choice == 0 {
		return -1, oassis.Response{}
	}
	fmt.Fprintf(m.out, "    how often? [0 never .. 4 very often]\n")
	return choice - 1, oassis.Response{Support: m.readScale()}
}

// readScale reads one answer on the 5-point scale (number or label).
func (m *consoleMember) readScale() float64 {
	for {
		fmt.Fprint(m.out, "    > ")
		line, err := m.in.ReadString('\n')
		if err != nil {
			return 0
		}
		ans := strings.ToLower(strings.TrimSpace(line))
		for i, label := range nlgen.AnswerScaleLabels {
			if ans == label || ans == strconv.Itoa(i) {
				return float64(i) * 0.25
			}
		}
		fmt.Fprintln(m.out, "    please answer 0-4 or never/rarely/sometimes/often/very often")
	}
}

func (m *consoleMember) readInt(lo, hi int) int {
	for {
		fmt.Fprint(m.out, "    > ")
		line, err := m.in.ReadString('\n')
		if err != nil {
			return lo
		}
		n, err := strconv.Atoi(strings.TrimSpace(line))
		if err == nil && n >= lo && n <= hi {
			return n
		}
		fmt.Fprintf(m.out, "    please answer %d-%d\n", lo, hi)
	}
}
