// Command oassis evaluates an OASSIS-QL query against an ontology with a
// simulated crowd, printing the maximal significant patterns (MSPs) the
// paper's engine would return.
//
// Usage:
//
//	oassis -ontology onto.txt -crowd crowd.txt -query query.oql [flags]
//
// The ontology file uses the textual triple format (see README), the crowd
// file holds one personal database per member, and the query file holds one
// OASSIS-QL query. Typical session:
//
//	oassis-gen -domain travel -members 60 -out ./data
//	oassis -ontology data/ontology.txt -crowd data/crowd.txt -query data/query.oql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"oassis"
)

// loadPool reads a MORE-fact pool file: one "subject predicate object" fact
// per line, # comments allowed.
func loadPool(path string, v *oassis.Vocabulary) (oassis.FactSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var facts []oassis.Fact
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fact, err := oassis.ParseFact(line, v)
		if err != nil {
			return nil, err
		}
		facts = append(facts, fact)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return oassis.NewFactSet(facts...), nil
}

func main() {
	var (
		ontologyPath = flag.String("ontology", "", "ontology file (textual triple format)")
		crowdPath    = flag.String("crowd", "", "crowd file (personal databases)")
		queryPath    = flag.String("query", "", "OASSIS-QL query file")
		morePath     = flag.String("morepool", "", "optional MORE-fact pool file (one fact per line)")
		seed         = flag.Int64("seed", 1, "random seed")
		k            = flag.Int("k", 5, "answers required per assignment")
		specRatio    = flag.Float64("spec-ratio", 0.12, "specialization-question ratio")
		maxPer       = flag.Int("max-per-member", 0, "cap questions per member (0 = unlimited)")
		pruneRatio   = flag.Float64("prune-ratio", 0.25, "members' user-guided-pruning click probability")
		showAll      = flag.Bool("all", false, "also print non-valid MSPs")
		verbose      = flag.Bool("v", false, "print per-run statistics")
		interactive  = flag.Bool("interactive", false, "answer the crowd questions yourself on stdin (no crowd file needed)")
		cachePath    = flag.String("cache", "", "answer-cache snapshot: loaded if present, saved after the run")
	)
	flag.Parse()
	if *ontologyPath == "" || *queryPath == "" || (*crowdPath == "" && !*interactive) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(runConfig{
		ontologyPath: *ontologyPath, crowdPath: *crowdPath, queryPath: *queryPath,
		morePath: *morePath, cachePath: *cachePath,
		seed: *seed, k: *k, specRatio: *specRatio, maxPer: *maxPer,
		pruneRatio: *pruneRatio, showAll: *showAll, verbose: *verbose,
		interactive: *interactive,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "oassis:", err)
		os.Exit(1)
	}
}

// runConfig gathers the command's flags.
type runConfig struct {
	ontologyPath, crowdPath, queryPath, morePath, cachePath string

	seed                  int64
	k, maxPer             int
	specRatio, pruneRatio float64
	showAll, verbose      bool
	interactive           bool
}

func run(cfg runConfig) error {
	v, store, err := oassis.LoadOntologyFile(cfg.ontologyPath)
	if err != nil {
		return err
	}
	var members []oassis.Member
	k := cfg.k
	if cfg.interactive {
		// You are the crowd: one console member, one answer per
		// assignment.
		members = []oassis.Member{newConsoleMember("you", v, os.Stdin, os.Stdout)}
		k = 1
	} else {
		cf, err := os.Open(cfg.crowdPath)
		if err != nil {
			return err
		}
		sims, err := oassis.LoadCrowdSim(cf, v, cfg.seed)
		cf.Close()
		if err != nil {
			return err
		}
		for _, m := range sims {
			m.PruneRatio = cfg.pruneRatio
			members = append(members, m)
		}
	}
	// The answer cache survives across runs when -cache is given
	// (Section 6.3: re-evaluating with a different threshold replays
	// collected answers).
	var cache *oassis.CrowdCache
	if cfg.cachePath != "" {
		if f, err := os.Open(cfg.cachePath); err == nil {
			cache, err = oassis.LoadCrowdCache(f, v)
			f.Close()
			if err != nil {
				return err
			}
		} else {
			cache = oassis.NewCrowdCache()
		}
		for i, m := range members {
			members[i] = cache.Wrap(m)
		}
	}
	qb, err := os.ReadFile(cfg.queryPath)
	if err != nil {
		return err
	}
	q, err := oassis.ParseQuery(string(qb), v)
	if err != nil {
		return err
	}
	opts := []oassis.Option{
		oassis.WithSeed(cfg.seed),
		oassis.WithSpecializationRatio(cfg.specRatio),
		oassis.WithMaxQuestionsPerMember(cfg.maxPer),
		oassis.WithAggregator(oassis.NewMeanAggregator(k, q.Satisfying.Support)),
	}
	if cfg.morePath != "" {
		pool, err := loadPool(cfg.morePath, v)
		if err != nil {
			return err
		}
		opts = append(opts, oassis.WithMorePool(pool))
	}
	session, err := oassis.NewSession(store, q, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("query: threshold %.2f, %d valid assignments, %d crowd members\n",
		session.Theta(), session.ValidAssignments(), len(members))
	res, err := session.Run(members)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d valid MSPs:\n", len(res.ValidMSPs))
	for _, m := range res.ValidMSPs {
		fmt.Printf("  • %s\n", session.DescribeAnswer(session.FactSets([]*oassis.Assignment{m})[0]))
	}
	if cfg.cachePath != "" {
		f, err := os.Create(cfg.cachePath)
		if err != nil {
			return err
		}
		if err := cache.Save(f, v); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.showAll {
		fmt.Printf("\n%d MSPs in total (including non-valid generalizations):\n", len(res.MSPs))
		for _, m := range res.MSPs {
			valid := " "
			if session.IsValid(m) {
				valid = "*"
			}
			fmt.Printf("  %s %s\n", valid, session.DescribeAssignment(m))
		}
	}
	if cfg.verbose {
		s := res.Stats
		fmt.Printf("\nstatistics:\n")
		fmt.Printf("  questions:       %d (%d concrete, %d specialization)\n",
			s.Questions, s.ConcreteQ, s.SpecialQ)
		fmt.Printf("  none-of-these:   %d\n", s.NoneOfThese)
		fmt.Printf("  pruning clicks:  %d\n", s.PruneClicks)
		fmt.Printf("  free answers:    %d\n", s.AutoAnswers)
		fmt.Printf("  lazily generated assignments: %d\n", s.Generated)
	}
	return nil
}
