// Command oassis-import converts an RDF N-Triples file — the export format
// of the knowledge bases the paper built on (WordNet, YAGO) — into the
// textual ontology format the oassis tools consume. rdf:type and
// rdfs:subClassOf triples become instanceOf/subClassOf facts (and the
// element order), rdfs:subPropertyOf becomes the relation order, rdfs:label
// becomes element labels, and other literal-valued triples are skipped.
//
// Gzip-compressed dumps (the form knowledge bases actually publish) are
// detected by their magic bytes and decompressed transparently; ingestion
// runs on the parallel pipeline and reports wall-clock throughput.
//
// Usage:
//
//	oassis-import -in yago-slice.nt -out ontology.txt
//	oassis-import -in yago-slice.nt.gz -workers 4
package main

import (
	"bufio"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"oassis"
)

func main() {
	var (
		in      = flag.String("in", "", "N-Triples input file (gzip detected automatically)")
		out     = flag.String("out", "ontology.txt", "ontology output file")
		workers = flag.Int("workers", 0, "parse workers (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-import:", err)
		os.Exit(1)
	}
}

// sniffReader peeks at the stream's first two bytes and, when they are the
// gzip magic (0x1f 0x8b), interposes a decompressor.
func sniffReader(f io.Reader) (io.Reader, bool, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, false, err
	}
	if len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, false, err
		}
		return zr, true, nil
	}
	return br, false, nil
}

func run(in, out string, workers int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, gzipped, err := sniffReader(f)
	if err != nil {
		return err
	}
	start := time.Now()
	v, store, stats, err := oassis.LoadNTriplesOptions(r, oassis.NTriplesLoadOptions{Workers: workers})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := oassis.WriteOntology(o, store); err != nil {
		o.Close()
		return err
	}
	if err := o.Close(); err != nil {
		return err
	}
	src := in
	if gzipped {
		src += " (gzip)"
	}
	fmt.Printf("imported %d triples from %s in %.2fs (%.0f triples/s)\n",
		stats.Triples, src, elapsed.Seconds(), float64(stats.Triples)/elapsed.Seconds())
	fmt.Printf("  facts=%d labels=%d elements=%d relations=%d skipped: %d literals, %d blank-node triples → %s\n",
		stats.Facts, stats.Labels, v.NumElements(), v.NumRelations(),
		stats.SkippedLiterals, stats.SkippedBlank, out)
	return nil
}
