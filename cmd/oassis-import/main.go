// Command oassis-import converts an RDF N-Triples file — the export format
// of the knowledge bases the paper built on (WordNet, YAGO) — into the
// textual ontology format the oassis tools consume. rdf:type and
// rdfs:subClassOf triples become instanceOf/subClassOf facts (and the
// element order), rdfs:subPropertyOf becomes the relation order, rdfs:label
// becomes element labels, and other literal-valued triples are skipped.
//
// Usage:
//
//	oassis-import -in yago-slice.nt -out ontology.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"oassis"
)

func main() {
	var (
		in  = flag.String("in", "", "N-Triples input file")
		out = flag.String("out", "ontology.txt", "ontology output file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-import:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	v, store, stats, err := oassis.LoadNTriples(f)
	if err != nil {
		return err
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := oassis.WriteOntology(o, store); err != nil {
		o.Close()
		return err
	}
	if err := o.Close(); err != nil {
		return err
	}
	fmt.Printf("imported %d triples: %d facts, %d labels, %d elements, %d relations (%d literals, %d blank-node triples skipped) → %s\n",
		stats.Triples, stats.Facts, stats.Labels,
		v.NumElements(), v.NumRelations(),
		stats.SkippedLiterals, stats.SkippedBlank, out)
	return nil
}
