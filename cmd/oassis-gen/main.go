// Command oassis-gen emits a complete synthetic workload for one of the
// paper's application domains (Section 6.3): an ontology file, a crowd file
// with generated personal databases, the domain's OASSIS-QL query and — for
// domains with MORE mining — the tip-fact pool.
//
// Usage:
//
//	oassis-gen -domain travel -members 60 -seed 1 -out ./data
//
// The emitted files feed straight into the oassis command.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"oassis"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

func main() {
	var (
		domain  = flag.String("domain", "travel", "travel | culinary | selftreatment")
		members = flag.Int("members", 60, "number of crowd members to generate")
		seed    = flag.Int64("seed", 1, "random seed")
		outDir  = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := run(*domain, *members, *seed, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-gen:", err)
		os.Exit(1)
	}
}

func run(domain string, members int, seed int64, outDir string) error {
	var cfg synth.DomainConfig
	switch domain {
	case "travel":
		cfg = synth.Travel(members, seed)
	case "culinary":
		cfg = synth.Culinary(members, seed)
	case "selftreatment", "self-treatment":
		cfg = synth.SelfTreatment(members, seed)
	default:
		return fmt.Errorf("unknown domain %q", domain)
	}
	d, err := synth.NewDomain(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(outDir, "ontology.txt"), func(f *os.File) error {
		return oassis.WriteOntology(f, d.Store)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(outDir, "crowd.txt"), func(f *os.File) error {
		sims := make([]*crowd.SimMember, len(d.Members))
		for i, m := range d.Members {
			sims[i] = m.(*crowd.SimMember)
		}
		return crowd.WriteCrowd(f, d.Vocab, sims)
	}); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "query.oql"),
		[]byte(d.Query.String()), 0o644); err != nil {
		return err
	}
	if len(d.MorePool) > 0 {
		if err := writeFile(filepath.Join(outDir, "morepool.txt"), func(f *os.File) error {
			for _, fact := range d.MorePool {
				if _, err := fmt.Fprintln(f, oassis.FormatFact(fact, d.Vocab)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	fmt.Printf("generated %s domain: %d ontology facts, %d members, %d planted patterns → %s\n",
		d.Name, d.Store.Size(), len(d.Members), len(d.Patterns), outDir)
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
