package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/synth"
)

// fleetReport is the JSON document `-fleet` emits (BENCH_PR8.json): ingest
// throughput for the serial and parallel N-Triples loaders over the same
// generated document, differential proof that both produced the same
// vocabulary/store, and the query-fleet results over the parallel-loaded
// store.
type fleetReport struct {
	Scale        string             `json:"scale"`
	CPUs         int                `json:"cpus"`
	Triples      int                `json:"triples"`
	Bytes        int                `json:"bytes"`
	GenSecs      float64            `json:"generate_secs"`
	SerialSecs   float64            `json:"serial_load_secs"`
	ParallelSecs float64            `json:"parallel_load_secs"`
	SerialTPS    float64            `json:"serial_triples_per_sec"`
	ParallelTPS  float64            `json:"parallel_triples_per_sec"`
	Speedup      float64            `json:"parallel_speedup"`
	Identical    bool               `json:"serial_parallel_identical"`
	Stats        *ontology.NTriplesStats `json:"ingest_stats"`
	Elements     int                `json:"vocab_elements"`
	Relations    int                `json:"vocab_relations"`
	Facts        int                `json:"store_facts"`
	Fleet        *synth.FleetReport `json:"fleet"`
}

// runFleetBench generates the scale ontology, times both ingestion paths,
// checks they agree, runs the query fleet against the parallel-loaded
// store and writes the JSON report.
func runFleetBench(scaleName string, queries, execs, workers, mine int, seed int64, out string, o *obs.Observer) error {
	var scale synth.ScaleConfig
	switch scaleName {
	case "million":
		scale = synth.MillionScale()
	case "smoke":
		scale = synth.SmokeScale()
	default:
		return fmt.Errorf("unknown -fleet-scale %q (million or smoke)", scaleName)
	}
	scale.Seed = seed

	fmt.Printf("==== fleet (%s scale) ====\n", scaleName)
	var buf bytes.Buffer
	buf.Grow(scale.TripleCount() * 96)
	t0 := time.Now()
	if err := synth.WriteScaleNTriples(&buf, scale); err != nil {
		return err
	}
	genSecs := time.Since(t0).Seconds()
	fmt.Printf("generated %d triples (%.1f MiB) in %.2fs\n",
		scale.TripleCount(), float64(buf.Len())/(1<<20), genSecs)

	t1 := time.Now()
	sv, ss, sstats, err := ontology.LoadNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("serial load: %w", err)
	}
	serialSecs := time.Since(t1).Seconds()
	fmt.Printf("serial load:   %.2fs (%.0f triples/s)\n", serialSecs, float64(sstats.Triples)/serialSecs)

	t2 := time.Now()
	pv, ps, pstats, err := ontology.LoadNTriplesParallel(bytes.NewReader(buf.Bytes()), ontology.LoadOptions{Obs: o})
	if err != nil {
		return fmt.Errorf("parallel load: %w", err)
	}
	parSecs := time.Since(t2).Seconds()
	fmt.Printf("parallel load: %.2fs (%.0f triples/s, %d cpus)\n",
		parSecs, float64(pstats.Triples)/parSecs, runtime.GOMAXPROCS(0))

	identical := *sstats == *pstats &&
		sv.NumElements() == pv.NumElements() &&
		sv.NumRelations() == pv.NumRelations() &&
		ss.Size() == ps.Size()
	if !identical {
		return fmt.Errorf("serial and parallel ingest diverge: stats %+v vs %+v, vocab (%d,%d) vs (%d,%d), facts %d vs %d",
			*sstats, *pstats, sv.NumElements(), sv.NumRelations(),
			pv.NumElements(), pv.NumRelations(), ss.Size(), ps.Size())
	}

	fcfg := synth.FleetConfig{Queries: queries, Executions: execs, Workers: workers,
		MineMembers: mine, Seed: seed, Obs: o}
	fleet := synth.SampleFleet(scale, fcfg)
	rep, err := synth.RunFleet(ps, fleet, fcfg)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d distinct queries, %d executions on %d workers in %.2fs (%.0f q/s)\n",
		rep.DistinctQueries, rep.Executions, rep.Workers, rep.Seconds, rep.QueriesPerSec)
	fmt.Printf("plan cache: %d hits / %d misses (%.1f%% hit rate), %d entries\n",
		rep.PlanCacheHits, rep.PlanCacheMisses, 100*rep.CacheHitRate, rep.PlanCacheSize)
	if rep.Questions > 0 {
		fmt.Printf("mining: %d crowd questions across the fleet (%d synthetic members per run)\n",
			rep.Questions, mine)
	}
	if len(rep.PerQuery) > 0 {
		top := append([]synth.QueryCost(nil), rep.PerQuery...)
		sort.Slice(top, func(i, j int) bool { return top[i].WallSecs > top[j].WallSecs })
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Printf("attribution: %d queries journaled; top by wall time:\n", len(rep.PerQuery))
		for _, c := range top {
			fmt.Printf("  %s: %d execs, %.3fs, %d cache hits, %d rows, %d questions\n",
				c.Query, c.Execs, c.WallSecs, c.CacheHits, c.Rows, c.Questions)
		}
	}

	doc := fleetReport{
		Scale:        scaleName,
		CPUs:         runtime.GOMAXPROCS(0),
		Triples:      sstats.Triples,
		Bytes:        buf.Len(),
		GenSecs:      genSecs,
		SerialSecs:   serialSecs,
		ParallelSecs: parSecs,
		SerialTPS:    float64(sstats.Triples) / serialSecs,
		ParallelTPS:  float64(pstats.Triples) / parSecs,
		Speedup:      serialSecs / parSecs,
		Identical:    identical,
		Stats:        pstats,
		Elements:     pv.NumElements(),
		Relations:    pv.NumRelations(),
		Facts:        ps.Size(),
		Fleet:        rep,
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", out)
	}
	return nil
}
