// Command oassis-bench regenerates the data series behind every figure and
// in-text experimental claim of the OASSIS paper's evaluation (Section 6).
//
// Usage:
//
//	oassis-bench -fig all                  # everything (minutes)
//	oassis-bench -fig 4a                   # one figure
//	oassis-bench -fig 5b -quick            # scaled-down configuration
//	oassis-bench -fig 5a -trace out.jsonl  # + per-phase trace spans
//	oassis-bench -fig chaos -metrics       # + Prometheus metrics dump
//	oassis-bench -fig none -explain        # query plans only, no figures
//
// Figures: 4a 4b 4c (crowd statistics per domain), 4d 4e (pace of data
// collection), 4f (answer-type ratios), 5a 5b 5c (vertical vs horizontal vs
// naive at 2%/5%/10% MSP density), text63 (Section 6.3 claims), text64
// (Section 6.4 sweeps and laziness), chaos (departure-rate resilience
// sweep on a virtual clock). The paper's figure numbers 9/10/11 are
// accepted as aliases for 5a/5b/5c.
//
// -metrics, -trace and -explain attach an Observer to the harness: every
// engine run feeds the kernel/broker metric families, every synth query
// pipeline feeds the sparql family, and each figure's build/mine/round
// spans land in the trace under the figure ID as phase.
package main

import (
	"flag"
	"fmt"
	"os"

	"oassis/internal/exp"
	"oassis/internal/obs"
	"oassis/internal/synth"
)

type config struct {
	members   int
	dagWidth  int
	dagDepth  int
	trials    int
	lazyWidth int
	seed      int64
}

func main() {
	var (
		fig      = flag.String("fig", "all", "figure id: 4a 4b 4c 4d 4e 4f 5a 5b 5c text63 text64 growth ablation chaos all none (9/10/11 alias 5a/5b/5c)")
		quick    = flag.Bool("quick", false, "scaled-down configuration (seconds instead of minutes)")
		members  = flag.Int("members", 0, "override the synthetic crowd size (0 = figure default: 248, or 40 with -quick)")
		selWork  = flag.Int("selection-workers", 0, "shard per-round question selection across this many goroutines (0/1 = serial kernel; figures are byte-identical either way)")
		seed     = flag.Int64("seed", 1, "random seed")
		metrics    = flag.Bool("metrics", false, "print a Prometheus-text metrics dump after the run")
		traceOut   = flag.String("trace", "", "write per-phase trace spans to this JSONL `file`")
		journalOut = flag.String("journal", "", "record the kernel flight-recorder event stream as JSONL to this `file` (implies an observer)")
		explain    = flag.Bool("explain", false, "print the compiled WHERE plans of the three evaluation domains")

		fleet        = flag.Bool("fleet", false, "run the ingestion + query-fleet benchmark instead of paper figures")
		fleetScale   = flag.String("fleet-scale", "million", "fleet ontology scale: million or smoke")
		fleetQueries = flag.Int("fleet-queries", 1200, "distinct queries in the fleet")
		fleetExecs   = flag.Int("fleet-execs", 5000, "total query executions (Zipf-skewed over the fleet)")
		fleetWorkers = flag.Int("fleet-workers", 0, "fleet execution workers (0 = GOMAXPROCS)")
		fleetMine    = flag.Int("fleet-mine", 0, "follow each fleet execution with a mining pass served by this many synthetic members (with -journal: per-query question attribution in the report)")
		fleetOut     = flag.String("fleet-out", "", "write the fleet benchmark report as JSON to this `file`")
	)
	flag.Parse()
	cfg := config{members: 248, dagWidth: 500, dagDepth: 7, trials: 6, lazyWidth: 150, seed: *seed}
	if *quick {
		cfg = config{members: 40, dagWidth: 100, dagDepth: 5, trials: 3, lazyWidth: 80, seed: *seed}
	}
	if *members > 0 {
		cfg.members = *members
	}
	exp.SetSelectionWorkers(*selWork)
	var o *obs.Observer
	if *metrics || *traceOut != "" || *explain || *journalOut != "" {
		// -journal implies the observer like -metrics/-trace do, so the
		// flag works standalone instead of silently recording nothing.
		o = obs.New()
		exp.SetObserver(o)
	}
	var journalFile *os.File
	if *journalOut != "" {
		f, err := os.Create(*journalOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oassis-bench:", err)
			os.Exit(1)
		}
		journalFile = f
		o.EnableJournal(0).SetSink(f)
	}
	if *fleet {
		if err := runFleetBench(*fleetScale, *fleetQueries, *fleetExecs, *fleetWorkers, *fleetMine, *seed, *fleetOut, o); err != nil {
			fmt.Fprintln(os.Stderr, "oassis-bench:", err)
			os.Exit(1)
		}
		if err := emit(o, *metrics, *traceOut, *journalOut, journalFile); err != nil {
			fmt.Fprintln(os.Stderr, "oassis-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, cfg, o, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-bench:", err)
		os.Exit(1)
	}
	if err := emit(o, *metrics, *traceOut, *journalOut, journalFile); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-bench:", err)
		os.Exit(1)
	}
}

// emit writes the observer's trace, journal and metrics after the figures
// ran.
func emit(o *obs.Observer, metrics bool, traceOut, journalOut string, journalFile *os.File) error {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := o.Trace().WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %s\n", traceOut)
	}
	if journalFile != nil {
		j := o.JournalSet()
		if err := j.Flush(); err != nil {
			return err
		}
		if err := journalFile.Close(); err != nil {
			return err
		}
		fmt.Printf("journal: %s (%d events)\n", journalOut, j.Total())
	}
	if metrics {
		fmt.Println("==== metrics ====")
		o.Reg().WritePrometheus(os.Stdout)
	}
	return nil
}

func run(fig string, cfg config, o *obs.Observer, explain bool) error {
	// The paper numbers the algorithm-comparison plots 9–11; this repo
	// labels them 5a–5c (its figure set is renumbered). Accept both.
	switch fig {
	case "9":
		fig = "5a"
	case "10":
		fig = "5b"
	case "11":
		fig = "5c"
	}
	if explain {
		o.Trace().SetPhase("explain")
		if err := explainDomains(cfg, o); err != nil {
			return err
		}
	}
	if fig == "none" {
		return nil
	}
	all := fig == "all"
	ran := false
	for _, f := range []struct {
		id string
		fn func(config) error
	}{
		{"4a", fig4a}, {"4b", fig4b}, {"4c", fig4c},
		{"4d", fig4d}, {"4e", fig4e}, {"4f", fig4f},
		{"5a", fig5a}, {"5b", fig5b}, {"5c", fig5c},
		{"text63", text63}, {"text64", text64},
		{"growth", growth}, {"ablation", ablation},
		{"chaos", chaosFig},
	} {
		if all || fig == f.id {
			ran = true
			o.Trace().SetPhase(f.id)
			fmt.Printf("==== %s ====\n", f.id)
			if err := f.fn(cfg); err != nil {
				return fmt.Errorf("fig %s: %w", f.id, err)
			}
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// explainDomains compiles the three evaluation-domain queries and prints
// each plan. With an observer attached the space construction runs
// observed, so the plans carry actual per-operator cardinalities next to
// the planner's estimates.
func explainDomains(cfg config, o *obs.Observer) error {
	fmt.Println("==== explain ====")
	for _, dc := range []synth.DomainConfig{
		synth.Travel(cfg.members, cfg.seed),
		synth.Culinary(cfg.members, cfg.seed+1),
		synth.SelfTreatment(cfg.members, cfg.seed+2),
	} {
		dc.Obs = o
		d, err := synth.NewDomain(dc)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s --\n%s\n", dc.Name, d.Plan.Explain())
	}
	return nil
}

var thetas = []float64{0.2, 0.3, 0.4, 0.5}

func fig4a(cfg config) error {
	res, err := exp.CrowdStats(synth.Travel(cfg.members, cfg.seed), thetas, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderCrowdStats(res))
	return nil
}

func fig4b(cfg config) error {
	res, err := exp.CrowdStats(synth.Culinary(cfg.members, cfg.seed+1), thetas, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderCrowdStats(res))
	return nil
}

func fig4c(cfg config) error {
	res, err := exp.CrowdStats(synth.SelfTreatment(cfg.members, cfg.seed+2), thetas, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderCrowdStats(res))
	return nil
}

func fig4d(cfg config) error {
	res, err := exp.Pace(synth.Travel(cfg.members, cfg.seed), 0.2, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderPace(res))
	return nil
}

func fig4e(cfg config) error {
	res, err := exp.Pace(synth.SelfTreatment(cfg.members, cfg.seed+2), 0.2, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderPace(res))
	return nil
}

func fig4f(cfg config) error {
	curves, err := exp.AnswerTypes(synth.DAGConfig{
		Width: cfg.dagWidth, Depth: cfg.dagDepth, MSPPercent: 0.02,
	}, cfg.trials, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderCurves(
		fmt.Sprintf("Effect of answer types (width=%d depth=%d, 2%% MSPs, %d trials): questions to discover X%% of valid MSPs",
			cfg.dagWidth, cfg.dagDepth, cfg.trials), curves))
	return nil
}

func fig5(cfg config, pct float64) error {
	curves, err := exp.Algorithms(synth.DAGConfig{
		Width: cfg.dagWidth, Depth: cfg.dagDepth, MSPPercent: pct,
	}, cfg.trials, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderCurves(
		fmt.Sprintf("Vertical vs Horizontal vs Naive (width=%d depth=%d, %.0f%% MSPs, %d trials): questions to discover X%% of valid MSPs",
			cfg.dagWidth, cfg.dagDepth, 100*pct, cfg.trials), curves))
	return nil
}

func fig5a(cfg config) error { return fig5(cfg, 0.02) }
func fig5b(cfg config) error { return fig5(cfg, 0.05) }
func fig5c(cfg config) error { return fig5(cfg, 0.10) }

// text63 prints the Section 6.3 in-text claims: DAG sizes, questions to
// completion, MSP density, baseline fractions.
func text63(cfg config) error {
	fmt.Println("Section 6.3 in-text claims (paper: 340–1416 questions; DAGs 4773/10512/2307 nodes;")
	fmt.Println("≤24% of baseline with expansion, <5% without; ~1.2% of nodes are MSPs):")
	for i, dom := range []synth.DomainConfig{
		synth.Travel(cfg.members, cfg.seed),
		synth.Culinary(cfg.members, cfg.seed+1),
		synth.SelfTreatment(cfg.members, cfg.seed+2),
	} {
		res, err := exp.CrowdStats(dom, []float64{0.2}, cfg.seed+int64(i))
		if err != nil {
			return err
		}
		row := res.Rows[0]
		fmt.Printf("  %-15s DAG=%6d nodes  questions=%5d  baseline%%=%5.1f  MSPs=%3d (%.2f%% of nodes)  valid=%3d\n",
			res.Domain, res.DAGNodes, row.Questions, row.BaselinePct,
			row.MSPs, 100*float64(row.MSPs)/float64(res.DAGNodes), row.ValidMSPs)
	}
	return nil
}

// growth prints the Section 6.3 wall-clock claim: the first MSP arrives
// faster as the member pool grows.
func growth(cfg config) error {
	sizes := []int{cfg.members / 4, cfg.members / 2, cfg.members}
	rows, err := exp.CrowdGrowth(synth.SelfTreatment(0, cfg.seed+2), sizes, exp.DefaultLatency, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderGrowth("self-treatment", rows))
	return nil
}

// ablation prints the aggregator-robustness study (a design-choice ablation
// beyond the paper: how the pluggable Section 4.2 black-boxes behave under
// spam contamination).
func ablation(cfg config) error {
	spammers := cfg.members / 6
	rows, err := exp.AggregatorAblation(synth.SelfTreatment(cfg.members, cfg.seed+2), spammers, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderAblation("self-treatment", spammers, rows))
	return nil
}

// chaosFig prints the fault-injection resilience study: the same DAG mined
// by oracle clones on a virtual clock while a growing fraction of the
// crowd departs mid-run. Beyond the paper's evaluation, but its crowds
// behaved this way (Section 6.3 notes members coming and going).
func chaosFig(cfg config) error {
	rows, err := exp.ChaosResilience(synth.DAGConfig{
		Width: cfg.lazyWidth, Depth: cfg.dagDepth - 2, MSPPercent: 0.02,
	}, 12, []float64{0, 0.125, 0.25, 0.5}, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderChaos(rows))
	return nil
}

// text64 prints the Section 6.4 sweeps: DAG shape, MSP distribution,
// multiplicities and lazy generation.
func text64(cfg config) error {
	widths := []int{cfg.dagWidth / 2, cfg.dagWidth}
	depths := []int{cfg.dagDepth - 2, cfg.dagDepth}
	rows, err := exp.ShapeSweep(widths, depths, 0.02, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderSweep("DAG shape sweep (2% MSPs; trends are stable):", rows))
	fmt.Println()

	rows, err = exp.DistributionSweep(synth.DAGConfig{
		Width: cfg.dagWidth, Depth: cfg.dagDepth, MSPPercent: 0.02,
	}, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderSweep("MSP distribution sweep (uniform/near/far; trends are stable):", rows))
	fmt.Println()

	// Multiplicity exploration is combinatorial; a moderate DAG shows the
	// invariance without minutes of runtime.
	rows, err = exp.MultiplicitySweep(cfg.dagWidth/4, cfg.dagDepth-2, 0.02, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderSweep("Multiplicity sweep (questions track MSP count, not multiplicities):", rows))
	fmt.Println()

	lz, err := exp.Laziness(synth.DAGConfig{
		Width: cfg.lazyWidth, Depth: cfg.dagDepth, MSPPercent: 0.02,
		MultiMSPPercent: 0.02, MultiMSPSize: 2,
	}, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.RenderLaziness(lz))
	return nil
}
