// Command oassis-serve runs the crowdsourcing platform: an HTTP service
// through which real crowd members receive the engine's questions and
// submit answers (the paper's prototype web UI, as a JSON API).
//
//	oassis-serve -ontology onto.txt -query query.oql -addr :8080 -min-members 5
//
// Protocol (see internal/server):
//
//	POST /join?member=<id>      register
//	POST /start                 launch the run
//	GET  /question?member=<id>  poll your next question
//	POST /answer                {"member","question","support","choice"}
//	GET  /results               answers discovered so far
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oassis"
	"oassis/internal/server"
)

func main() {
	var queryPaths []string
	flag.Func("query", "OASSIS-QL query file (repeat to serve a query fleet; select per run with POST /start?query=<name>)",
		func(p string) error {
			queryPaths = append(queryPaths, p)
			return nil
		})
	var (
		ontologyPath = flag.String("ontology", "", "ontology file")
		addr         = flag.String("addr", ":8080", "listen address")
		minMembers   = flag.Int("min-members", 3, "members required before /start")
		k            = flag.Int("k", 0, "answers per assignment (default: min(5, members))")
		timeout      = flag.Duration("answer-timeout", 5*time.Minute, "per-question member timeout")
		seed         = flag.Int64("seed", 1, "random seed")
		metrics      = flag.Bool("metrics", false, "serve Prometheus metrics on GET /metrics")
		pprofFlag    = flag.Bool("pprof", false, "serve runtime profiles on /debug/pprof (off by default: profiles expose heap contents)")
		selWorkers   = flag.Int("selection-workers", 0, "shard per-round question selection across this many goroutines (0/1 = serial kernel; results are byte-identical either way)")
		sharedStore  = flag.Bool("shared-store", false, "share a cross-query answer store: repeated questions are served from cached crowd answers instead of re-asked, across every run this process serves")
		storeTTL     = flag.Duration("store-ttl", 0, "shared-store answer freshness window; stale answers are re-asked (0 = answers never expire)")
		storeMax     = flag.Int("store-max", 0, "shared-store size bound with LRU eviction (0 = unbounded)")
	)
	flag.Parse()
	if *ontologyPath == "" || len(queryPaths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := serveConfig{
		minMembers: *minMembers, k: *k, timeout: *timeout, seed: *seed,
		metrics: *metrics, pprof: *pprofFlag, selWorkers: *selWorkers,
		sharedStore: *sharedStore, storeTTL: *storeTTL, storeMax: *storeMax,
	}
	if err := run(*ontologyPath, queryPaths, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-serve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the flag-derived server parameters.
type serveConfig struct {
	minMembers  int
	k           int
	timeout     time.Duration
	seed        int64
	metrics     bool
	pprof       bool
	selWorkers  int
	sharedStore bool
	storeTTL    time.Duration
	storeMax    int
}

func run(ontologyPath string, queryPaths []string, addr string, cfg serveConfig) error {
	_, store, err := oassis.LoadOntologyFile(ontologyPath)
	if err != nil {
		return err
	}
	// One Observer serves both layers: the session feeds it kernel, sparql
	// and space metrics, the platform feeds it HTTP and lifecycle
	// counters, and GET /metrics exposes the union.
	var o *oassis.Observer
	if cfg.metrics {
		o = oassis.NewObserver()
	}
	// Shared-store mode: a long-lived answer platform outlives any one
	// run, so a re-attached query (or one served concurrently elsewhere
	// in the process) reuses the crowd's answers instead of re-asking.
	// Its cross-query hit/miss counters land on the same obs registry.
	var answerStore *oassis.Platform
	if cfg.sharedStore {
		answerStore = oassis.NewPlatform(oassis.PlatformConfig{
			TTL:        cfg.storeTTL,
			MaxEntries: cfg.storeMax,
			Obs:        o,
		})
	}
	srv := server.New(server.Config{
		MinMembers:    cfg.minMembers,
		AnswerTimeout: cfg.timeout,
		Obs:           o,
		EnablePprof:   cfg.pprof,
	})
	// Build one session per query file, all over the same frozen store:
	// the store's shared plan cache means a repeated WHERE shape across the
	// fleet compiles exactly once, and every session's rows stream straight
	// into space construction. The first query is the default; each is
	// selectable per run with POST /start?query=<name>.
	names := fleetNames(queryPaths)
	for i, qp := range queryPaths {
		qb, err := os.ReadFile(qp)
		if err != nil {
			return err
		}
		q, err := oassis.ParseQuery(string(qb), store.Vocabulary())
		if err != nil {
			return fmt.Errorf("%s: %w", qp, err)
		}
		// The server drives the kernel through its own event broker
		// (Session.RunBroker); WithParallelism only applies to the
		// in-process RunCrowd/RunParallel drivers and is not needed here.
		opts := []oassis.Option{
			oassis.WithSeed(cfg.seed),
		}
		if cfg.selWorkers > 1 {
			opts = append(opts, oassis.WithSelectionWorkers(cfg.selWorkers))
		}
		if o != nil {
			opts = append(opts, oassis.WithObserver(o))
		}
		if answerStore != nil {
			opts = append(opts, oassis.WithPlatform(answerStore))
		}
		if cfg.k > 0 {
			opts = append(opts, oassis.WithAggregator(oassis.NewMeanAggregator(cfg.k, q.Satisfying.Support)))
		}
		var sess *oassis.Session
		opts = append(opts, oassis.WithOnMSP(func(a *oassis.Assignment) {
			fs := sess.FactSets([]*oassis.Assignment{a})[0]
			text := sess.DescribeAnswer(fs)
			srv.RecordAnswer(text)
			fmt.Println("answer:", text)
		}))
		sess, err = oassis.NewSession(store, q, opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", qp, err)
		}
		srv.AttachNamed(names[i], sess)
		fmt.Printf("oassis-serve: query %q with %d valid assignments, threshold %.2f\n",
			names[i], sess.ValidAssignments(), sess.Theta())
	}
	fmt.Printf("oassis-serve: listening on %s (POST /join, then /start)\n", addr)
	if len(queryPaths) > 1 {
		fmt.Printf("oassis-serve: %d queries attached; select with POST /start?query=<name> (GET /queries lists them)\n",
			len(queryPaths))
	}
	if answerStore != nil {
		fmt.Printf("oassis-serve: shared answer store enabled (ttl=%v, max=%d)\n", cfg.storeTTL, cfg.storeMax)
	}
	if cfg.metrics {
		fmt.Printf("oassis-serve: metrics on GET %s/metrics\n", addr)
	}
	if cfg.pprof {
		fmt.Printf("oassis-serve: profiling on %s/debug/pprof/\n", addr)
	}
	return http.ListenAndServe(addr, srv.Handler())
}

// fleetNames derives a unique fleet name per query file: the file's base
// name without extension, suffixed with its position on collision.
func fleetNames(paths []string) []string {
	names := make([]string, len(paths))
	seen := make(map[string]bool, len(paths))
	for i, p := range paths {
		n := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if n == "" || seen[n] {
			n = fmt.Sprintf("%s-%d", n, i)
		}
		seen[n] = true
		names[i] = n
	}
	return names
}
