// Command oassis-serve runs the crowdsourcing platform: an HTTP service
// through which real crowd members receive the engine's questions and
// submit answers (the paper's prototype web UI, as a JSON API).
//
//	oassis-serve -ontology onto.txt -query query.oql -addr :8080 -min-members 5
//
// Protocol (see internal/server):
//
//	POST /join?member=<id>      register
//	POST /start                 launch the run
//	GET  /question?member=<id>  poll your next question
//	POST /answer                {"member","question","support","choice"}
//	GET  /results               answers discovered so far
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"oassis"
	"oassis/internal/server"
)

func main() {
	var (
		ontologyPath = flag.String("ontology", "", "ontology file")
		queryPath    = flag.String("query", "", "OASSIS-QL query file")
		addr         = flag.String("addr", ":8080", "listen address")
		minMembers   = flag.Int("min-members", 3, "members required before /start")
		k            = flag.Int("k", 0, "answers per assignment (default: min(5, members))")
		timeout      = flag.Duration("answer-timeout", 5*time.Minute, "per-question member timeout")
		seed         = flag.Int64("seed", 1, "random seed")
		metrics      = flag.Bool("metrics", false, "serve Prometheus metrics on GET /metrics")
		pprofFlag    = flag.Bool("pprof", false, "serve runtime profiles on /debug/pprof (off by default: profiles expose heap contents)")
	)
	flag.Parse()
	if *ontologyPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*ontologyPath, *queryPath, *addr, *minMembers, *k, *timeout, *seed, *metrics, *pprofFlag); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-serve:", err)
		os.Exit(1)
	}
}

func run(ontologyPath, queryPath, addr string, minMembers, k int, timeout time.Duration, seed int64, metrics, pprofOn bool) error {
	_, store, err := oassis.LoadOntologyFile(ontologyPath)
	if err != nil {
		return err
	}
	qb, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := oassis.ParseQuery(string(qb), store.Vocabulary())
	if err != nil {
		return err
	}
	// One Observer serves both layers: the session feeds it kernel, sparql
	// and space metrics, the platform feeds it HTTP and lifecycle
	// counters, and GET /metrics exposes the union.
	var o *oassis.Observer
	if metrics {
		o = oassis.NewObserver()
	}
	srv := server.New(server.Config{
		MinMembers:    minMembers,
		AnswerTimeout: timeout,
		Obs:           o,
		EnablePprof:   pprofOn,
	})
	// The server drives the kernel through its own event broker
	// (Session.RunBroker); WithParallelism only applies to the in-process
	// RunCrowd/RunParallel drivers and is not needed here.
	opts := []oassis.Option{
		oassis.WithSeed(seed),
	}
	if o != nil {
		opts = append(opts, oassis.WithObserver(o))
	}
	if k > 0 {
		opts = append(opts, oassis.WithAggregator(oassis.NewMeanAggregator(k, q.Satisfying.Support)))
	}
	var sess *oassis.Session
	opts = append(opts, oassis.WithOnMSP(func(a *oassis.Assignment) {
		fs := sess.FactSets([]*oassis.Assignment{a})[0]
		text := sess.DescribeAnswer(fs)
		srv.RecordAnswer(text)
		fmt.Println("answer:", text)
	}))
	sess, err = oassis.NewSession(store, q, opts...)
	if err != nil {
		return err
	}
	srv.Attach(sess)
	fmt.Printf("oassis-serve: query with %d valid assignments, threshold %.2f\n",
		sess.ValidAssignments(), sess.Theta())
	fmt.Printf("oassis-serve: listening on %s (POST /join, then /start)\n", addr)
	if metrics {
		fmt.Printf("oassis-serve: metrics on GET %s/metrics\n", addr)
	}
	if pprofOn {
		fmt.Printf("oassis-serve: profiling on %s/debug/pprof/\n", addr)
	}
	return http.ListenAndServe(addr, srv.Handler())
}
