// Command oassis-serve runs the crowdsourcing platform: an HTTP service
// through which real crowd members receive the engine's questions and
// submit answers (the paper's prototype web UI, as a JSON API).
//
//	oassis-serve -ontology onto.txt -query query.oql -addr :8080 -min-members 5
//
// Protocol (see internal/server):
//
//	POST /join?member=<id>      register
//	POST /start                 launch the run
//	GET  /question?member=<id>  poll your next question
//	POST /answer                {"member","question","support","choice"}
//	GET  /results               answers discovered so far
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oassis"
	"oassis/internal/server"
)

func main() {
	var queryPaths []string
	flag.Func("query", "OASSIS-QL query file (repeat to serve a query fleet; select per run with POST /start?query=<name>)",
		func(p string) error {
			queryPaths = append(queryPaths, p)
			return nil
		})
	var (
		ontologyPath = flag.String("ontology", "", "ontology file")
		addr         = flag.String("addr", ":8080", "listen address")
		minMembers   = flag.Int("min-members", 3, "members required before /start")
		k            = flag.Int("k", 0, "answers per assignment (default: min(5, members))")
		timeout      = flag.Duration("answer-timeout", 5*time.Minute, "per-question member timeout")
		seed         = flag.Int64("seed", 1, "random seed")
		metrics      = flag.Bool("metrics", false, "serve Prometheus metrics on GET /metrics")
		pprofFlag    = flag.Bool("pprof", false, "serve runtime profiles on /debug/pprof (off by default: profiles expose heap contents)")
		selWorkers   = flag.Int("selection-workers", 0, "shard per-round question selection across this many goroutines (0/1 = serial kernel; results are byte-identical either way)")
		sharedStore  = flag.Bool("shared-store", false, "share a cross-query answer store: repeated questions are served from cached crowd answers instead of re-asked, across every run this process serves")
		storeTTL     = flag.Duration("store-ttl", 0, "shared-store answer freshness window; stale answers are re-asked (0 = answers never expire)")
		storeMax     = flag.Int("store-max", 0, "shared-store size bound with LRU eviction (0 = unbounded)")
		journalPath  = flag.String("journal", "", "record the kernel's flight-recorder event stream as JSONL to this file (also serves GET /journal; implies an observer)")
		scorecards   = flag.Bool("scorecards", false, "track per-member scorecards, served on GET /members and as oassis_member_* metrics (implies an observer)")
	)
	flag.Parse()
	if *ontologyPath == "" || len(queryPaths) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := serveConfig{
		minMembers: *minMembers, k: *k, timeout: *timeout, seed: *seed,
		metrics: *metrics, pprof: *pprofFlag, selWorkers: *selWorkers,
		sharedStore: *sharedStore, storeTTL: *storeTTL, storeMax: *storeMax,
		journal: *journalPath, scorecards: *scorecards,
	}
	if err := run(*ontologyPath, queryPaths, *addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-serve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the flag-derived server parameters.
type serveConfig struct {
	minMembers  int
	k           int
	timeout     time.Duration
	seed        int64
	metrics     bool
	pprof       bool
	selWorkers  int
	sharedStore bool
	storeTTL    time.Duration
	storeMax    int
	journal     string
	scorecards  bool
}

func run(ontologyPath string, queryPaths []string, addr string, cfg serveConfig) error {
	_, store, err := oassis.LoadOntologyFile(ontologyPath)
	if err != nil {
		return err
	}
	// One Observer serves both layers: the session feeds it kernel, sparql
	// and space metrics, the platform feeds it HTTP and lifecycle
	// counters, and GET /metrics exposes the union.
	var o *oassis.Observer
	if cfg.metrics || cfg.journal != "" || cfg.scorecards {
		// -journal and -scorecards imply an observer even without -metrics,
		// so the flags compose instead of silently no-opping.
		o = oassis.NewObserver()
	}
	if cfg.journal != "" {
		f, err := os.Create(cfg.journal)
		if err != nil {
			return err
		}
		defer f.Close()
		// The journal flushes its sink at every run end, so the JSONL file
		// is replayable after each completed run even though the process
		// normally exits via signal.
		o.EnableJournal(0).SetSink(f)
	}
	if cfg.scorecards {
		o.EnableScorecards()
	}
	// Shared-store mode: a long-lived answer platform outlives any one
	// run, so a re-attached query (or one served concurrently elsewhere
	// in the process) reuses the crowd's answers instead of re-asking.
	// Its cross-query hit/miss counters land on the same obs registry.
	var answerStore *oassis.Platform
	if cfg.sharedStore {
		answerStore = oassis.NewPlatform(oassis.PlatformConfig{
			TTL:        cfg.storeTTL,
			MaxEntries: cfg.storeMax,
			Obs:        o,
		})
	}
	srv := server.New(server.Config{
		MinMembers:    cfg.minMembers,
		AnswerTimeout: cfg.timeout,
		Obs:           o,
		EnablePprof:   cfg.pprof,
	})
	// Build one session per query file, all over the same frozen store:
	// the store's shared plan cache means a repeated WHERE shape across the
	// fleet compiles exactly once, and every session's rows stream straight
	// into space construction. The first query is the default; each is
	// selectable per run with POST /start?query=<name>.
	names := fleetNames(queryPaths)
	for i, qp := range queryPaths {
		qb, err := os.ReadFile(qp)
		if err != nil {
			return err
		}
		q, err := oassis.ParseQuery(string(qb), store.Vocabulary())
		if err != nil {
			return fmt.Errorf("%s: %w", qp, err)
		}
		// The server drives the kernel through its own event broker
		// (Session.RunBroker); WithParallelism only applies to the
		// in-process RunCrowd/RunParallel drivers and is not needed here.
		opts := []oassis.Option{
			oassis.WithSeed(cfg.seed),
		}
		if cfg.selWorkers > 1 {
			opts = append(opts, oassis.WithSelectionWorkers(cfg.selWorkers))
		}
		if o != nil {
			opts = append(opts, oassis.WithObserver(o))
		}
		if answerStore != nil {
			opts = append(opts, oassis.WithPlatform(answerStore))
		}
		if cfg.k > 0 {
			opts = append(opts, oassis.WithAggregator(oassis.NewMeanAggregator(cfg.k, q.Satisfying.Support)))
		}
		var sess *oassis.Session
		opts = append(opts, oassis.WithOnMSP(func(a *oassis.Assignment) {
			fs := sess.FactSets([]*oassis.Assignment{a})[0]
			text := sess.DescribeAnswer(fs)
			srv.RecordAnswer(text)
			fmt.Println("answer:", text)
		}))
		sess, err = oassis.NewSession(store, q, opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", qp, err)
		}
		srv.AttachNamed(names[i], sess)
		fmt.Printf("oassis-serve: query %q with %d valid assignments, threshold %.2f\n",
			names[i], sess.ValidAssignments(), sess.Theta())
	}
	fmt.Printf("oassis-serve: listening on %s (POST /join, then /start)\n", addr)
	if len(queryPaths) > 1 {
		fmt.Printf("oassis-serve: %d queries attached; select with POST /start?query=<name> (GET /queries lists them)\n",
			len(queryPaths))
	}
	if answerStore != nil {
		fmt.Printf("oassis-serve: shared answer store enabled (ttl=%v, max=%d)\n", cfg.storeTTL, cfg.storeMax)
	}
	if o != nil {
		// One line summarizing every live observability feature, so a
		// misremembered flag is visible at startup rather than as a 404.
		var feats []string
		if cfg.metrics {
			feats = append(feats, "metrics on /metrics")
		}
		if cfg.journal != "" {
			feats = append(feats, fmt.Sprintf("journal to %s (tail on /journal)", cfg.journal))
		}
		if cfg.scorecards {
			feats = append(feats, "member scorecards on /members")
		}
		fmt.Printf("oassis-serve: observability: %s; live run status on GET /status\n",
			strings.Join(feats, ", "))
	}
	if cfg.pprof {
		fmt.Printf("oassis-serve: profiling on %s/debug/pprof/\n", addr)
	}
	return http.ListenAndServe(addr, srv.Handler())
}

// fleetNames derives a unique fleet name per query file: the file's base
// name without extension, suffixed with its position on collision.
func fleetNames(paths []string) []string {
	names := make([]string, len(paths))
	seen := make(map[string]bool, len(paths))
	for i, p := range paths {
		n := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		if n == "" || seen[n] {
			n = fmt.Sprintf("%s-%d", n, i)
		}
		seen[n] = true
		names[i] = n
	}
	return names
}
