// Package oassis is a Go implementation of OASSIS — query-driven crowd
// mining (Amsterdamer, Davidson, Milo, Novgorodov, Somech; SIGMOD 2014).
//
// OASSIS lets a user pose a declarative OASSIS-QL query whose WHERE clause
// selects candidate variable assignments from an ontology (a SPARQL-style
// selection) and whose SATISFYING clause describes data patterns
// (fact-sets) to be mined from a crowd of data contributors. The engine
// traverses the semantic partial order over assignments top-down, asking
// crowd members a near-minimal number of support questions, and returns the
// maximal significant patterns (MSPs) — a concise, redundancy-free answer.
//
// The package exposes the full system: the vocabulary and ontology model
// (Section 2 of the paper), the OASSIS-QL language (Section 3), the
// single-user vertical algorithm (Section 4.1), the multi-user engine with
// pluggable answer aggregation (Section 4.2), lazy assignment generation
// (Section 5), crowd simulation, answer caching for threshold re-evaluation
// (Section 6.3) and the synthetic + domain workload generators behind the
// paper's evaluation (Sections 6.3–6.4).
//
// Quick start:
//
//	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
//	q, err := oassis.ParseQuery(queryText, v)
//	session, err := oassis.NewSession(store, q)
//	result, err := session.Run(members)
//	for _, fs := range session.FactSets(result.ValidMSPs) {
//	    fmt.Println(session.Describe(fs))
//	}
package oassis

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"oassis/internal/assign"
	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/journal"
	"oassis/internal/nlgen"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/platform"
	"oassis/internal/rules"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// Re-exported model types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Vocabulary is the term store with the ≤ℰ and ≤ℛ partial orders
	// (Definition 2.1).
	Vocabulary = vocab.Vocabulary
	// TermID identifies an interned element or relation name.
	TermID = vocab.TermID
	// Ontology is the indexed universal fact store.
	Ontology = ontology.Store
	// Fact is an ⟨element, relation, element⟩ triple (Definition 2.2).
	Fact = ontology.Fact
	// FactSet is a canonical set of facts.
	FactSet = ontology.FactSet
	// Query is a parsed OASSIS-QL query.
	Query = oassisql.Query
	// Assignment maps mining variables to term sets (Definition 4.1).
	Assignment = assign.Assignment
	// Member is a crowd data contributor.
	Member = crowd.Member
	// SimMember is a simulated member backed by a personal database.
	SimMember = crowd.SimMember
	// Response is a member's answer to one question.
	Response = crowd.Response
	// Aggregator is the pluggable multi-user decision black-box
	// (Section 4.2).
	Aggregator = crowd.Aggregator
	// Result is a mining outcome: MSPs, valid MSPs and statistics.
	Result = core.Result
	// Stats carries the cost counters the paper reports.
	Stats = core.Stats
	// CrowdCache stores answers for threshold re-evaluation
	// (Section 6.3).
	CrowdCache = core.CrowdCache
	// Strategy selects vertical / horizontal / naive question ordering.
	Strategy = core.Strategy
	// Clock abstracts time for deterministic chaos simulation.
	Clock = chaos.Clock
	// VirtualClock is the deterministic simulation clock: sleeps advance
	// virtual time instantly, so chaos scenarios replay in zero wall time.
	VirtualClock = chaos.VirtualClock
	// Faults configures the misbehaviours a FaultyMember injects.
	Faults = chaos.Faults
	// FaultyMember decorates a Member with seed-driven faults (latency,
	// departure, contradiction) for resilience testing.
	FaultyMember = chaos.FaultyMember
	// Ask is one question event emitted by the mining kernel.
	Ask = crowd.Ask
	// Reply is the resolution event for one Ask.
	Reply = crowd.Reply
	// Broker carries Ask events to a crowd and delivers Replies back;
	// RunBroker drives the mining kernel over one (see internal/server
	// for the HTTP platform's implementation).
	Broker = crowd.Broker
	// FaultyBroker decorates a Broker with seed-driven per-member faults,
	// applying chaos at the event level so every execution mode gets the
	// same fault coverage.
	FaultyBroker = chaos.FaultyBroker
	// Observer bundles the metric registry, the span tracer and every
	// subsystem metric family; thread one through WithObserver (and the
	// HTTP server's config) to light up the whole pipeline. Nil disables
	// observability at the cost of a nil check per event.
	Observer = obs.Observer
	// TraceSummary is the per-(phase, name) span aggregate attached to
	// an observed run's Result.
	TraceSummary = obs.TraceSummary
	// Journal is the crowd-run flight recorder: an append-only,
	// sequence-numbered event stream (run start, every ask / reply /
	// timeout / departure with its raw payload, MSP confirmations, round
	// barriers) kept in a fixed ring with an optional JSONL sink. Attach
	// one with WithJournal; replay a recorded stream with Session.Replay.
	Journal = obs.Journal
	// JournalEvent is one recorded flight-recorder event.
	JournalEvent = obs.Event
	// CurvePoint is one round bucket of a run's answer-arrival curve
	// (Result.Curve): new MSPs and new distinct answers per question
	// spent.
	CurvePoint = obs.CurvePoint
	// MemberScorecard is one crowd member's quality/latency profile:
	// latency quantiles, timeout/strike/departure counts and the
	// agreement-vs-aggregate score (see WithScorecards).
	MemberScorecard = obs.MemberScorecard
	// SpaceStats snapshots the assignment space's size and its interner /
	// edge-cache hit counters (see Session.SpaceStats).
	SpaceStats = assign.SpaceStats
	// PlanOpExplain describes one operator of a compiled WHERE plan:
	// pattern, access path, estimated and observed cardinalities.
	PlanOpExplain = sparql.OpExplain
	// Platform is the cross-query answer platform: a long-lived,
	// concurrent answer store shared by all sessions of a process, with
	// in-flight question dedup and freshness-based eviction (the
	// Section 6.3 CrowdCache generalized to multi-tenant serving).
	Platform = platform.Platform
	// PlatformConfig parameterizes a Platform (TTL, LRU bound, clock,
	// observer).
	PlatformConfig = platform.Config
	// PlatformStats snapshots a Platform's hit/miss/join/expiry counters.
	PlatformStats = platform.Stats
	// PlatformConn is one session's connection to a Platform; Session
	// manages its own conns, but brokers can also be wrapped directly
	// with (*Platform).Attach.
	PlatformConn = platform.Conn
)

// Ask kinds and reply outcomes, re-exported for Broker implementations.
const (
	ConcreteAsk   = crowd.ConcreteAsk
	SpecializeAsk = crowd.SpecializeAsk

	ReplyAnswered = crowd.Answered
	ReplyTimedOut = crowd.TimedOut
	ReplyDeparted = crowd.Departed
)

// RealClock returns the wall clock.
func RealClock() Clock { return chaos.Real() }

// NewVirtualClock returns a deterministic simulation clock.
func NewVirtualClock() *VirtualClock { return chaos.NewVirtualClock() }

// NewFaultyMember wraps a member with the configured faults, sleeping on
// the given clock (nil uses the wall clock).
func NewFaultyMember(inner Member, clock Clock, f Faults) *FaultyMember {
	return chaos.Wrap(inner, clock, f)
}

// NewFaultyBroker wraps a broker with per-member faults keyed by member
// ID, sleeping on the given clock (nil uses the wall clock).
func NewFaultyBroker(inner Broker, clock Clock, faults map[string]Faults) *FaultyBroker {
	return chaos.WrapBroker(inner, clock, faults)
}

// Question-ordering strategies (Section 6.4 compares them).
const (
	Vertical   = core.Vertical
	Horizontal = core.Horizontal
	Naive      = core.Naive
)

// LoadOntology parses the textual ontology format (see internal/ontology's
// Load for the grammar) and returns the frozen vocabulary and fact store.
func LoadOntology(r io.Reader) (*Vocabulary, *Ontology, error) {
	return ontology.Load(r)
}

// LoadOntologyFile is LoadOntology over a file path.
func LoadOntologyFile(path string) (*Vocabulary, *Ontology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ontology.Load(f)
}

// WriteOntology serializes a store back to the textual format.
func WriteOntology(w io.Writer, s *Ontology) error { return ontology.Write(w, s) }

// NewFactSet builds a canonical (sorted, deduplicated) fact-set.
func NewFactSet(facts ...Fact) FactSet { return ontology.NewFactSet(facts...) }

// NTriplesStats reports what an N-Triples import did.
type NTriplesStats = ontology.NTriplesStats

// LoadNTriples imports W3C N-Triples (the export format of knowledge bases
// like YAGO, which the paper's prototype used) into a fresh vocabulary and
// store: rdf:type / rdfs:subClassOf / rdfs:subPropertyOf / rdfs:label map
// onto the OASSIS model; other literal-valued triples are skipped. The
// import runs on the parallel pipeline (chunked parse, sharded interning,
// concurrent index builds) and produces output byte-identical to a serial
// pass; see LoadNTriplesOptions for worker and observability control.
func LoadNTriples(r io.Reader) (*Vocabulary, *Ontology, *NTriplesStats, error) {
	return ontology.LoadNTriplesParallel(r, ontology.LoadOptions{})
}

// NTriplesLoadOptions tunes LoadNTriplesOptions; the zero value means
// GOMAXPROCS workers, default chunking, no observation.
type NTriplesLoadOptions = ontology.LoadOptions

// LoadNTriplesOptions is LoadNTriples with explicit pipeline options.
func LoadNTriplesOptions(r io.Reader, opt NTriplesLoadOptions) (*Vocabulary, *Ontology, *NTriplesStats, error) {
	return ontology.LoadNTriplesParallel(r, opt)
}

// ParseFact parses one "subject predicate object" line against an existing
// vocabulary (names may be quoted); it never interns new terms.
func ParseFact(line string, v *Vocabulary) (Fact, error) {
	return ontology.ParseFact(line, v)
}

// FormatFact renders a fact in the textual format, the inverse of ParseFact.
func FormatFact(f Fact, v *Vocabulary) string { return ontology.FormatFact(f, v) }

// ParseQuery parses and name-resolves an OASSIS-QL query.
func ParseQuery(text string, v *Vocabulary) (*Query, error) {
	return oassisql.Parse(text, v)
}

// NewSimMember builds a simulated crowd member over a personal database of
// transactions; answers are true supports bucketed to the UI scale.
func NewSimMember(id string, v *Vocabulary, db []FactSet, seed int64) *crowd.SimMember {
	return crowd.NewSimMember(id, v, db, seed)
}

// LoadCrowd parses the textual crowd format (member headers followed by one
// transaction per line) into simulated members.
func LoadCrowd(r io.Reader, v *Vocabulary, seed int64) ([]Member, error) {
	sims, err := LoadCrowdSim(r, v, seed)
	if err != nil {
		return nil, err
	}
	members := make([]Member, len(sims))
	for i, m := range sims {
		members[i] = m
	}
	return members, nil
}

// LoadCrowdSim is LoadCrowd returning the concrete simulated members, whose
// behaviour knobs (answer scale, pruning ratio) remain adjustable.
func LoadCrowdSim(r io.Reader, v *Vocabulary, seed int64) ([]*SimMember, error) {
	return crowd.LoadCrowd(r, v, seed)
}

// WriteCrowd serializes simulated members' personal databases in the format
// accepted by LoadCrowd.
func WriteCrowd(w io.Writer, v *Vocabulary, members []*crowd.SimMember) error {
	return crowd.WriteCrowd(w, v, members)
}

// NewMeanAggregator returns the paper's K-answers-mean decision rule.
func NewMeanAggregator(k int, theta float64) Aggregator {
	return crowd.NewMeanAggregator(k, theta)
}

// NewMajorityAggregator returns a majority-vote decision rule.
func NewMajorityAggregator(k int, theta float64) Aggregator {
	return crowd.NewMajorityAggregator(k, theta)
}

// NewCrowdCache returns an empty answer cache; wrap members with
// (*CrowdCache).Wrap to replay answers across thresholds.
func NewCrowdCache() *CrowdCache { return core.NewCrowdCache() }

// NewPlatform builds an empty cross-query answer platform. Share one
// Platform across every session (and every HTTP server) of a process whose
// queries are posed over the same vocabulary; attach sessions to it with
// WithPlatform.
func NewPlatform(cfg PlatformConfig) *Platform { return platform.New(cfg) }

// LoadCrowdCache restores a cache snapshot written by (*CrowdCache).Save,
// verifying it was collected under the same vocabulary.
func LoadCrowdCache(r io.Reader, v *Vocabulary) (*CrowdCache, error) {
	return core.LoadCrowdCache(r, v)
}

// Option configures a Session.
type Option func(*Session)

// WithSeed fixes the session's randomness (question-type choices).
func WithSeed(seed int64) Option { return func(s *Session) { s.seed = seed } }

// WithAggregator replaces the default 5-answer mean aggregator.
func WithAggregator(a Aggregator) Option { return func(s *Session) { s.agg = a } }

// WithSpecializationRatio sets the probability of specialization questions.
func WithSpecializationRatio(r float64) Option {
	return func(s *Session) { s.specRatio = r }
}

// WithMorePool supplies candidate MORE facts (normally mined from crowd
// suggestions; required for queries using MORE).
func WithMorePool(pool FactSet) Option { return func(s *Session) { s.morePool = pool } }

// WithMaxQuestionsPerMember caps each member's session length.
func WithMaxQuestionsPerMember(n int) Option {
	return func(s *Session) { s.maxPerMember = n }
}

// WithConsistencyFilter enables the Section 4.2 spammer filter.
func WithConsistencyFilter() Option { return func(s *Session) { s.consistency = true } }

// WithSemanticWhere switches WHERE evaluation from exact triple matching to
// the implication semantics of Definition 2.5.
func WithSemanticWhere() Option { return func(s *Session) { s.semantic = true } }

// WithParallelism serves crowd members concurrently with the given number
// of worker goroutines (the QueueManager's concurrent web sessions).
// Results are equivalent up to answer arrival order; the default (1) is
// fully deterministic.
func WithParallelism(workers int) Option {
	return func(s *Session) { s.workers = workers }
}

// WithSelectionWorkers shards the kernel's per-round question selection
// (and, for full-mining runs, the reply fold) across n worker goroutines.
// Unlike WithParallelism — which only concurrently carries questions to
// members — this parallelizes the mining computation itself, while staying
// byte-identical to the serial kernel: workers speculate against frozen
// round-start state and a serial commit re-validates every proposal in
// member order. 0 or 1 keeps the serial kernel. Aggregators that implement
// neither crowd.QuotaCarrier nor crowd.ReadSnapshotter silently fall back
// to serial selection.
func WithSelectionWorkers(n int) Option {
	return func(s *Session) { s.selWorkers = n }
}

// WithOnMSP streams every MSP the moment it is confirmed — the paper's
// incremental answer delivery ("answers can be returned ... as soon as they
// are identified").
func WithOnMSP(fn func(*Assignment)) Option {
	return func(s *Session) { s.onMSP = fn }
}

// WithTranscript records a per-member interview log into
// Result.Transcripts — one line per usable answer, in kernel fold order.
// Two runs over the same crowd are behaviorally equivalent iff their
// transcripts match, which is how the differential tests compare the
// sequential, parallel and HTTP drivers.
func WithTranscript() Option { return func(s *Session) { s.transcript = true } }

// NewObserver returns an Observer with a fresh registry, a default-capacity
// trace ring and every subsystem metric family registered.
func NewObserver() *Observer { return obs.New() }

// NewJournal returns a flight-recorder journal with the given event-ring
// capacity (the default of 65536 when capacity <= 0). Attach a JSONL sink
// with (*Journal).SetSink to keep runs longer than the ring replayable.
func NewJournal(capacity int) *Journal { return obs.NewJournal(capacity) }

// ReadJournal decodes a JSONL journal stream previously written by the
// journal's sink or (*Journal).WriteJSONL — the input to Session.Replay.
func ReadJournal(r io.Reader) ([]JournalEvent, error) { return obs.ReadJournalJSONL(r) }

// WithJournal attaches a flight recorder to the session's runs: every ask,
// reply, timeout, departure, MSP confirmation and round barrier is recorded
// with its raw payload, and Result.Curve carries the run's answer-arrival
// curve. The option implies an Observer (a fresh one is created when none
// was configured), so it composes with or without WithObserver. The journal
// may be shared across sessions; run IDs keep their streams apart.
func WithJournal(j *Journal) Option { return func(s *Session) { s.journal = j } }

// WithScorecards maintains per-member quality/latency profiles across the
// session's runs — latency histograms with quantiles, timeout/strike/
// departure/ban counts, agreement-vs-aggregate scores — exported as
// oassis_member_* metric families and readable via Scorecards(). Implies an
// Observer, like WithJournal.
func WithScorecards() Option { return func(s *Session) { s.scorecards = true } }

// Scorecards snapshots the per-member profiles collected so far (nil unless
// the session was built WithScorecards, or with an Observer whose
// scoreboard was enabled).
func (s *Session) Scorecards() []MemberScorecard { return s.obsv.BoardSet().Snapshot() }

// Replay re-folds a recorded journal stream through a fresh kernel over
// this session's assignment space and configuration, reconstructing the
// run without consulting any crowd. The session must be configured exactly
// as the recorded run's was (same query, seed, aggregator settings,
// deadlines, transcript flag); the stream must contain one complete run —
// from its run_start event — as written by the JSONL sink (use
// journal.FilterRun semantics upstream when a sink interleaves several
// runs: Replay takes the first run_start it is given). Use
// VerifyReplayIdentity to assert the reconstruction matches the live
// result.
func (s *Session) Replay(events []JournalEvent) (*Result, error) {
	ids, err := journal.Members(events)
	if err != nil {
		return nil, err
	}
	res, err := journal.Replay(events, s.space, s.engineConfig(len(ids)))
	if res != nil {
		s.applyLimit(res)
	}
	return res, err
}

// VerifyReplayIdentity asserts a replayed result reconstructs the live run
// byte-identically on kernel state: Stats, MSP and valid-MSP key sets, the
// significant set, supports and per-member transcripts (Trace and Curve
// are observability, not state, and are not compared).
func VerifyReplayIdentity(live, replayed *Result) error {
	return journal.VerifyIdentity(live, replayed)
}

// WithObserver attaches an observer to the session: WHERE compilation and
// evaluation are timed and counted, the space's interner and edge-cache hit
// rates are exported as gauges, every engine run feeds kernel and broker
// metrics plus per-round trace spans, and Result.Trace summarizes where the
// run's time went. The observer may be shared across sessions (and with an
// HTTP server) to scrape one registry for the whole process.
func WithObserver(o *Observer) Option { return func(s *Session) { s.obsv = o } }

// WithPlatform attaches the session to a shared cross-query answer
// platform: every crowd question is first looked up in the platform's
// store (a cached answer is replayed without re-asking), identical
// questions posed by concurrently running sessions are deduplicated onto
// one in-flight ask, and fresh answers feed the store for later queries.
// Run and RunBroker route through the platform; without this option the
// standalone paths are untouched. Because every session attached to a
// platform may resolve asks posted by other sessions' goroutines,
// WithParallelism is ignored on the platform path — the broker driver is
// used, which is inherently concurrent across sessions.
func WithPlatform(p *Platform) Option { return func(s *Session) { s.platform = p } }

// WithClock sets the session's time source (default: the wall clock).
// Inject a VirtualClock to run slow-member chaos scenarios
// deterministically in zero wall time.
func WithClock(c Clock) Option { return func(s *Session) { s.clock = c } }

// WithAnswerDeadline bounds how long one member answer may take on the
// session's clock. Later answers are discarded and re-asked; after
// maxTimeouts consecutive overruns (0 = the default of 3) the member is
// treated as departed and the run degrades to the surviving crowd.
func WithAnswerDeadline(d time.Duration, maxTimeouts int) Option {
	return func(s *Session) {
		s.answerDeadline = d
		s.maxTimeouts = maxTimeouts
	}
}

// Session is one query evaluation: the WHERE clause has been evaluated, the
// assignment space built, and the crowd can be mined (possibly repeatedly,
// e.g. for different member pools).
type Session struct {
	store *Ontology
	query *Query
	space *assign.Space
	plan  *sparql.Plan

	seed           int64
	agg            Aggregator
	specRatio      float64
	morePool       FactSet
	maxPerMember   int
	consistency    bool
	semantic       bool
	workers        int
	selWorkers     int
	onMSP          func(*Assignment)
	clock          Clock
	answerDeadline time.Duration
	maxTimeouts    int
	transcript     bool
	obsv           *Observer
	journal        *Journal
	scorecards     bool
	platform       *Platform

	renderer *nlgen.Renderer
}

// NewSession evaluates the query's WHERE clause against the ontology and
// constructs the assignment space. The WHERE plan comes from the ontology's
// shared plan cache — repeated sessions over the same query shape (the
// multi-run server, synthetic fleets) skip compilation — and its rows stream
// straight into space construction without materializing an intermediate
// result set (assign.NewSpaceFromPlan).
func NewSession(store *Ontology, q *Query, opts ...Option) (*Session, error) {
	s := &Session{store: store, query: q, specRatio: 0.12}
	for _, opt := range opts {
		opt(s)
	}
	// The journal and scorecard options imply an Observer, so the flags
	// compose without silent no-ops when WithObserver was not given.
	if s.journal != nil || s.scorecards {
		if s.obsv == nil {
			s.obsv = NewObserver()
		}
		if s.journal != nil {
			s.obsv.Journal = s.journal
		}
		if s.scorecards {
			s.obsv.EnableScorecards()
		}
	}
	ev := sparql.NewEvaluator(store)
	ev.Semantic = s.semantic
	ev.Metrics = s.obsv.PlanSet() // Compile auto-observes the plan
	ev.UseSharedCache()
	tr := s.obsv.Trace()
	plan, err := ev.Compile(q.Where)
	if err != nil {
		return nil, fmt.Errorf("oassis: WHERE compilation: %w", err)
	}
	s.plan = plan
	evalStart := tr.Begin()
	space, streamed, err := assign.NewSpaceFromPlan(q, plan, s.morePool)
	if err != nil {
		return nil, fmt.Errorf("oassis: assignment space: %w", err)
	}
	// The eval and build phases are fused on the streaming path; both spans
	// cover the fused interval so existing trace consumers keep their
	// phase names.
	tr.End("where_eval", evalStart, obs.Attr{Key: "rows", Val: int64(streamed)})
	s.space = space
	tr.End("space_build", evalStart,
		obs.Attr{Key: "nodes", Val: int64(space.NumNodes())},
		obs.Attr{Key: "valid", Val: int64(len(space.Valid()))})
	s.registerGauges()
	s.renderer = nlgen.NewRenderer(store.Vocabulary())
	return s, nil
}

// registerGauges exports the session's pull-style statistics — the space's
// interner and edge-cache counters and the ontology's closure-index cold /
// warm counts — into the observer's registry. Registration is idempotent on
// metric names; when sessions share an observer, the most recent session's
// space backs the space gauges.
func (s *Session) registerGauges() {
	r := s.obsv.Reg()
	if r == nil {
		return
	}
	sp, st := s.space, s.store
	r.GaugeFunc("oassis_space_nodes", "Interned assignment-lattice nodes.",
		func() float64 { return float64(sp.Stats().Nodes) })
	r.GaugeFunc("oassis_space_valid", "Valid assignments in the space.",
		func() float64 { return float64(sp.Stats().Valid) })
	r.GaugeFunc("oassis_space_intern_hits", "Interner lookups deduplicated to an existing node.",
		func() float64 { return float64(sp.Stats().InternHits) })
	r.GaugeFunc("oassis_space_intern_misses", "Interner lookups that created a new node.",
		func() float64 { return float64(sp.Stats().InternMisses) })
	r.GaugeFunc("oassis_space_edge_cache_hits", "Successor/predecessor lookups served from the edge cache.",
		func() float64 { return float64(sp.Stats().EdgeHits) })
	r.GaugeFunc("oassis_space_edge_cache_misses", "Successor/predecessor lists computed on a cache miss.",
		func() float64 { return float64(sp.Stats().EdgeMisses) })
	r.GaugeFunc("oassis_ontology_closure_cold", "Transitive-closure indexes built (cold lookups).",
		func() float64 { return float64(st.ClosureStats().Cold) })
	r.GaugeFunc("oassis_ontology_closure_warm", "Closure lookups served from a built index.",
		func() float64 { return float64(st.ClosureStats().Warm) })
}

// SpaceStats snapshots the assignment space: node and valid-assignment
// counts plus interner and edge-cache hit/miss counters.
func (s *Session) SpaceStats() SpaceStats { return s.space.Stats() }

// PlanExplain renders the compiled WHERE plan: one line per operator with
// its source pattern, chosen access path and estimated cardinality — plus
// observed per-operator row counts once the session was built with an
// observer (the WHERE evaluation that constructs the space feeds them).
func (s *Session) PlanExplain() string { return s.plan.Explain() }

// PlanOps returns the structured form of PlanExplain.
func (s *Session) PlanOps() []PlanOpExplain { return s.plan.ExplainOps() }

// ValidAssignments returns |𝒜valid|, the number of valid assignments the
// WHERE clause produced (projected onto the mining variables).
func (s *Session) ValidAssignments() int { return len(s.space.Valid()) }

// Theta returns the query's support threshold.
func (s *Session) Theta() float64 { return s.query.Satisfying.Support }

// Run mines the crowd with the multi-user engine of Section 4.2 and returns
// the MSPs. With a single member it degenerates to Algorithm 1. When the
// query carries a crowd-selection clause (FROM CROWD WITH ...), only
// members whose attributes match every conjunct are asked.
func (s *Session) Run(members []Member) (*Result, error) {
	if len(s.query.CrowdFilter) > 0 {
		var kept []Member
		for _, m := range members {
			if memberMatches(m, s.query.CrowdFilter) {
				kept = append(kept, m)
			}
		}
		members = kept
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("oassis: no crowd members")
	}
	if s.platform != nil {
		return s.runPlatform(members)
	}
	eng := core.NewEngine(s.space, members, s.engineConfig(len(members)))
	var res *Result
	if s.workers > 1 {
		res = eng.RunParallel(s.workers)
	} else {
		res = eng.Run()
	}
	s.applyLimit(res)
	return res, nil
}

// runPlatform drives the run through the shared answer platform: the
// in-process member broker is wrapped with a platform connection (store
// lookups, in-flight dedup), and the broker driver folds the replies —
// it tolerates replies resolved on other sessions' goroutines, which is
// exactly what a deduplicated ask does.
func (s *Session) runPlatform(members []Member) (*Result, error) {
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.ID()
	}
	clock := s.clock
	if clock == nil {
		clock = chaos.Real()
	}
	b := crowd.NewMemberBroker(members, clock.Now)
	b.Metrics = s.obsv.BrokerSet()
	conn := s.platform.Attach(b)
	defer conn.Detach()
	eng := core.NewBrokerEngine(s.space, ids, s.engineConfig(len(members)))
	res := eng.RunWith(conn)
	s.applyLimit(res)
	return res, nil
}

// RunBroker mines a crowd that lives behind a Broker — members known
// only by ID, reached through ask/deliver events (the HTTP platform in
// internal/server is the canonical broker). The kernel posts each
// round's questions without blocking on any one member; replies may
// arrive in any order. Crowd-selection clauses cannot match bare IDs,
// so a filtered query finds no members here.
func (s *Session) RunBroker(ids []string, b Broker) (*Result, error) {
	if len(s.query.CrowdFilter) > 0 {
		// Bare member IDs carry no profile attributes to match.
		ids = nil
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("oassis: no crowd members")
	}
	if s.platform != nil {
		conn := s.platform.Attach(b)
		defer conn.Detach()
		b = conn
	}
	eng := core.NewBrokerEngine(s.space, ids, s.engineConfig(len(ids)))
	res := eng.RunWith(b)
	s.applyLimit(res)
	return res, nil
}

// engineConfig assembles the kernel configuration shared by every driver
// for a crowd of n members.
func (s *Session) engineConfig(n int) core.EngineConfig {
	agg := s.agg
	if agg == nil {
		k := 5
		if n < k {
			k = n
		}
		agg = crowd.NewMeanAggregator(k, s.Theta())
	} else if r, ok := agg.(crowd.Resetter); ok {
		// Each run is independent: a re-run Session (a long-lived server
		// restarting the same query) must not start pre-decided by the
		// previous run's accumulated answers.
		r.Reset()
	}
	maxMSPs := 0
	if s.query.Limit > 0 && !s.query.Diverse {
		maxMSPs = s.query.Limit
	}
	return core.EngineConfig{
		Theta:                 s.Theta(),
		Aggregator:            agg,
		SpecializationRatio:   s.specRatio,
		MaxQuestionsPerMember: s.maxPerMember,
		Consistency:           s.consistency,
		MaxMSPs:               maxMSPs,
		OnMSP:                 s.onMSP,
		Seed:                  s.seed,
		AnswerDeadline:        s.answerDeadline,
		MaxAnswerTimeouts:     s.maxTimeouts,
		Clock:                 s.clock,
		RecordTranscript:      s.transcript,
		SelectionWorkers:      s.selWorkers,
		Obs:                   s.obsv,
	}
}

// memberMatches checks the crowd-selection conjuncts against a member's
// profile attributes.
func memberMatches(m Member, filter []oassisql.AttrMatch) bool {
	attributed, ok := m.(crowd.Attributed)
	if !ok {
		return false
	}
	for _, f := range filter {
		v, ok := attributed.Attribute(f.Attr)
		if !ok || v != f.Value {
			return false
		}
	}
	return true
}

// applyLimit enforces the query's LIMIT clause on the answer set: a plain
// LIMIT truncates (the engine already stopped early), LIMIT ... DIVERSE
// selects the k semantically most diverse answers from the full result.
func (s *Session) applyLimit(res *Result) {
	k := s.query.Limit
	if k <= 0 {
		return
	}
	if s.query.Diverse {
		res.ValidMSPs = core.Diversify(s.space, res.ValidMSPs, k)
		res.MSPs = core.Diversify(s.space, res.MSPs, k)
		return
	}
	if len(res.ValidMSPs) > k {
		res.ValidMSPs = res.ValidMSPs[:k]
	}
	if len(res.MSPs) > k {
		res.MSPs = res.MSPs[:k]
	}
}

// RunSingle mines a single member with the chosen strategy (Algorithm 1 and
// the Section 6.4 baselines).
func (s *Session) RunSingle(m Member, strategy Strategy) (*Result, error) {
	maxMSPs := 0
	if s.query.Limit > 0 && !s.query.Diverse {
		maxMSPs = s.query.Limit
	}
	run := &core.SingleUser{
		Space:               s.space,
		Member:              m,
		Theta:               s.Theta(),
		Strategy:            strategy,
		SpecializationRatio: s.specRatio,
		Seed:                s.seed,
		MaxMSPs:             maxMSPs,
		OnMSP:               s.onMSP,
		Obs:                 s.obsv,
	}
	res := run.Run()
	s.applyLimit(res)
	return res, nil
}

// FactSets instantiates assignments into the fact-set answers the query
// requested (SELECT FACT-SETS).
func (s *Session) FactSets(as []*Assignment) []FactSet {
	out := make([]FactSet, len(as))
	for i, a := range as {
		out[i] = s.space.Instantiate(a)
	}
	return out
}

// Binding is one SELECT VARIABLES answer row: each mining variable's value
// names (multiplicities give several).
type Binding map[string][]string

// Bindings renders assignments as variable-binding answers (SELECT
// VARIABLES). Variables with empty value sets are omitted from a row.
func (s *Session) Bindings(as []*Assignment) []Binding {
	v := s.store.Vocabulary()
	kinds := s.space.Kinds()
	out := make([]Binding, len(as))
	for i, a := range as {
		row := Binding{}
		for _, name := range a.Vars() {
			vals := a.Values(name)
			names := make([]string, len(vals))
			for j, id := range vals {
				if kinds[name] == vocab.Relation {
					names[j] = v.RelationName(id)
				} else {
					names[j] = v.ElementName(id)
				}
			}
			row[name] = names
		}
		out[i] = row
	}
	return out
}

// Answers renders the result in the form the query requested: fact-set
// sentences for SELECT FACT-SETS, "var = value" rows for SELECT VARIABLES.
func (s *Session) Answers(res *Result) []string {
	items := res.ValidMSPs
	if s.query.All {
		items = res.Significant
	}
	out := make([]string, 0, len(items))
	if s.query.Form == oassisql.Variables {
		for _, b := range s.Bindings(items) {
			var parts []string
			names := make([]string, 0, len(b))
			for n := range b {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				parts = append(parts, "$"+n+" = "+strings.Join(b[n], ", "))
			}
			out = append(out, strings.Join(parts, "; "))
		}
		return out
	}
	for _, fs := range s.FactSets(items) {
		out = append(out, s.DescribeAnswer(fs))
	}
	return out
}

// Describe renders a fact-set as the question the crowd would see.
func (s *Session) Describe(fs FactSet) string {
	return s.renderer.ConcreteQuestion(fs)
}

// DescribeAnswer renders a mined fact-set as an answer statement (the
// result presentation of the prototype UI).
func (s *Session) DescribeAnswer(fs FactSet) string {
	return s.renderer.AnswerStatement(fs)
}

// DescribeAssignment renders an assignment's variable bindings.
func (s *Session) DescribeAssignment(a *Assignment) string {
	return a.String(s.store.Vocabulary(), s.space.Kinds())
}

// IsValid reports strict query validity of an assignment (M ∩ 𝒜valid).
func (s *Session) IsValid(a *Assignment) bool { return s.space.IsValid(a) }

// Rule is a mined association rule (the OASSIS-QL rule-mining extension).
type Rule = rules.Rule

// MineRules derives association rules from a completed run at the query's
// CONFIDENCE threshold (or the given minimum when the query has none). No
// further crowd questions are asked: confidences come from the supports the
// run already collected.
func (s *Session) MineRules(res *Result, minConfidence float64) []Rule {
	if c := s.query.Satisfying.Confidence; c > 0 {
		minConfidence = c
	}
	return rules.Mine(s.space, res, s.Theta(), minConfidence)
}

// DescribeRule renders a rule in natural language.
func (s *Session) DescribeRule(r Rule) string {
	return s.renderer.RuleStatement(r.Antecedent, r.Consequent, r.Confidence)
}
