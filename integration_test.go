package oassis_test

import (
	"strings"
	"testing"

	"oassis"
	"oassis/internal/paperdata"
)

// TestSelectVariablesAnswers runs a VARIABLES query and checks the binding
// presentation.
func TestSelectVariablesAnswers(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(`
SELECT VARIABLES
WHERE
  $x instanceOf Park.
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4`, v)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	bindings := session.Bindings(res.ValidMSPs)
	if len(bindings) == 0 {
		t.Fatal("no bindings")
	}
	for _, b := range bindings {
		if len(b["x"]) != 1 || len(b["y"]) != 1 {
			t.Fatalf("binding shape wrong: %v", b)
		}
	}
	answers := session.Answers(res)
	if len(answers) != len(bindings) {
		t.Fatalf("answers = %d, bindings = %d", len(answers), len(bindings))
	}
	for _, a := range answers {
		if !strings.Contains(a, "$x = ") || !strings.Contains(a, "$y = ") {
			t.Errorf("VARIABLES answer format wrong: %q", a)
		}
	}
}

// TestSelectAllAnswers: ALL returns the full significant set, a superset of
// the MSPs.
func TestSelectAllAnswers(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(strings.Replace(paperdata.SimpleQueryText,
		"SELECT FACT-SETS", "SELECT FACT-SETS ALL", 1), v)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(table3Members(t, v))
	if err != nil {
		t.Fatal(err)
	}
	answers := session.Answers(res)
	if len(answers) <= len(res.ValidMSPs) {
		t.Fatalf("ALL should include non-maximal significant patterns: %d answers, %d MSPs",
			len(answers), len(res.ValidMSPs))
	}
}

// languageGuideExamples are the worked examples of LANGUAGE.md verbatim;
// they must parse against a matching vocabulary.
func TestLanguageGuideExamplesParse(t *testing.T) {
	v, _ := fixture(t)
	// Figure 2 example — parses against the paper fixture.
	if _, err := oassis.ParseQuery(paperdata.QueryText, v); err != nil {
		t.Fatal(err)
	}
	// The culinary example needs its own small vocabulary.
	vc, _, err := oassis.LoadOntology(strings.NewReader(`
Dish subClassOf Food
Drink subClassOf Food
@relation servedWith
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oassis.ParseQuery(`
SELECT FACT-SETS
WHERE
  $d subClassOf* Dish.
  $k subClassOf* Drink
SATISFYING
  $d+ servedWith $k
WITH SUPPORT = 0.2 CONFIDENCE = 0.6`, vc); err != nil {
		t.Fatal(err)
	}
	// Top-3 diverse with crowd selection.
	if _, err := oassis.ParseQuery(`
SELECT FACT-SETS LIMIT 3 DIVERSE
FROM CROWD WITH city = "NYC"
WHERE
  $x instanceOf Park.
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.25`, v); err != nil {
		t.Fatal(err)
	}
}

// TestNTriplesImportToMiningPipeline: import an N-Triples ontology, parse a
// query against it, and mine a crowd — the full real-world-ontology path.
func TestNTriplesImportToMiningPipeline(t *testing.T) {
	nt := `
<http://kb/Park> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://kb/Attraction> .
<http://kb/Central_Park> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://kb/Park> .
<http://kb/Prospect_Park> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://kb/Park> .
<http://kb/Biking> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://kb/Sport> .
<http://kb/Running> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://kb/Sport> .
<http://kb/Sport> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://kb/Activity> .
<http://kb/doAt> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://kb/relatedTo> .
`
	v, store, stats, err := oassis.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Facts == 0 {
		t.Fatal("no facts imported")
	}
	q, err := oassis.ParseQuery(`
SELECT FACT-SETS
WHERE
  $x instanceOf Park.
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.5`, v)
	if err != nil {
		t.Fatal(err)
	}
	crowdText := `
member runner
Running doAt "Central Park"
Running doAt "Central Park"
Biking doAt "Prospect Park"
`
	members, err := oassis.LoadCrowd(strings.NewReader(crowdText), v, 1)
	if err != nil {
		t.Fatal(err)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(1, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Run(members)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range session.Bindings(res.ValidMSPs) {
		if len(b["y"]) == 1 && b["y"][0] == "Running" &&
			len(b["x"]) == 1 && b["x"][0] == "Central Park" {
			found = true
		}
	}
	if !found {
		for _, a := range session.Answers(res) {
			t.Logf("answer: %s", a)
		}
		t.Error("expected (Running, Central Park) MSP from the imported ontology")
	}
}
