// Quickstart runs the paper's running example end to end: the Figure 1
// ontology, the Figure 2 query ("popular combinations of an activity at a
// child-friendly attraction in NYC and a restaurant nearby, plus advice")
// and a simulated crowd whose personal histories are exactly Table 3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"oassis"
)

// ontologyText is the sample ontology of Figure 1 (plus the vocabulary-only
// terms of Table 3, e.g. Boathouse and Rent Bikes).
const ontologyText = `
Place subClassOf Thing
Activity subClassOf Thing
City subClassOf Place
Restaurant subClassOf Place
Attraction subClassOf Place
Outdoor subClassOf Attraction
Park subClassOf Outdoor
Zoo subClassOf Outdoor
Sport subClassOf Activity
Food subClassOf Activity
"Ball Game" subClassOf Sport
Biking subClassOf Sport
Basketball subClassOf "Ball Game"
Baseball subClassOf "Ball Game"
Falafel subClassOf Food
Pasta subClassOf Food
"Feed a monkey" subClassOf Activity
"Rent Bikes" subClassOf Activity

NYC instanceOf City
"Central Park" instanceOf Park
"Bronx Zoo" instanceOf Zoo
"Maoz Veg." instanceOf Restaurant
Pine instanceOf Restaurant
Boathouse instanceOf Place

"Central Park" inside NYC
"Bronx Zoo" inside NYC
"Maoz Veg." nearBy "Central Park"
Pine nearBy "Bronx Zoo"
Boathouse inside "Central Park"
inside subPropertyOf nearBy

"Central Park" hasLabel "child-friendly"
"Bronx Zoo" hasLabel "child-friendly"

@relation doAt eatAt
`

// queryText is the Figure 2 query: activities (one or more) at a
// child-friendly attraction, a restaurant nearby, plus any frequently
// co-occurring advice (MORE), at support threshold 0.4.
const queryText = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x.
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

// crowdText holds the personal databases of Table 3: u1 with six
// transactions, u2 with two.
const crowdText = `
member u1
Basketball doAt "Central Park" . Falafel eatAt "Maoz Veg."
"Feed a monkey" doAt "Bronx Zoo" . Pasta eatAt Pine
Biking doAt "Central Park" . "Rent Bikes" doAt Boathouse . Falafel eatAt "Maoz Veg."
Baseball doAt "Central Park" . Biking doAt "Central Park" . "Rent Bikes" doAt Boathouse . Falafel eatAt "Maoz Veg."
"Feed a monkey" doAt "Bronx Zoo" . Pasta eatAt Pine
"Feed a monkey" doAt "Bronx Zoo"
member u2
Baseball doAt "Central Park" . Biking doAt "Central Park" . "Rent Bikes" doAt Boathouse . Falafel eatAt "Maoz Veg."
"Feed a monkey" doAt "Bronx Zoo" . Pasta eatAt Pine
`

func main() {
	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
	if err != nil {
		log.Fatal(err)
	}
	q, err := oassis.ParseQuery(queryText, v)
	if err != nil {
		log.Fatal(err)
	}
	sims, err := oassis.LoadCrowdSim(strings.NewReader(crowdText), v, 1)
	if err != nil {
		log.Fatal(err)
	}
	members := make([]oassis.Member, len(sims))
	for i, m := range sims {
		// Exact supports rather than the 5-point UI scale, so the run
		// reproduces the paper's worked numbers (Example 3.1: φ16 has
		// average support 5/12 ≥ 0.4).
		m.Scale = nil
		members[i] = m
	}

	// The MORE pool holds candidate "advice" facts; in the full system
	// these come from crowd suggestions, here the boathouse tip.
	tip, err := oassis.ParseFact(`"Rent Bikes" doAt Boathouse`, v)
	if err != nil {
		log.Fatal(err)
	}

	session, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithMorePool(oassis.NewFactSet(tip)),
		// Two members: require both answers before deciding.
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluating %q-style query: %d valid assignments, threshold %.2f\n\n",
		"Ann's vacation", session.ValidAssignments(), session.Theta())

	res, err := session.Run(members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers (%d valid MSPs):\n", len(res.ValidMSPs))
	for _, m := range res.ValidMSPs {
		fs := session.FactSets([]*oassis.Assignment{m})[0]
		fmt.Printf("  • %s\n", session.DescribeAnswer(fs))
	}
	fmt.Printf("\ncrowd effort: %d questions (%d concrete, %d specialization), %d lazily generated assignments\n",
		res.Stats.Questions, res.Stats.ConcreteQ, res.Stats.SpecialQ, res.Stats.Generated)
}
