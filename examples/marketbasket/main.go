// Marketbasket shows the expressivity claim of Section 4.1: with
// multiplicities, OASSIS-QL captures classic frequent itemset mining, so the
// engine doubles as a taxonomy-aware itemset miner over ordinary transaction
// databases (the paper notes OASSIS-QL "could also be used for mining
// fact-sets from standard databases"). It also compares the three question
// orderings — vertical (Algorithm 1), horizontal (Apriori-style) and naive —
// on the same data, mirroring the Section 6.4 experiment.
//
//	go run ./examples/marketbasket
package main

import (
	"fmt"
	"log"
	"strings"

	"oassis"
)

// A small grocery taxonomy: mining respects it, so "Dairy in the basket" is
// implied by any specific dairy product.
const ontologyText = `
Grocery subClassOf Thing
Dairy subClassOf Grocery
Bakery subClassOf Grocery
Produce subClassOf Grocery
Milk subClassOf Dairy
Butter subClassOf Dairy
Yogurt subClassOf Dairy
Bread subClassOf Bakery
Bagel subClassOf Bakery
Apples subClassOf Produce
Bananas subClassOf Produce

Basket instanceOf Thing
@relation boughtIn
`

// The itemset-mining query shape of Section 4.1: one variable with
// multiplicity + ranging over the item taxonomy. Each assignment is an
// itemset; its support is the fraction of shopping trips containing all its
// items (up to taxonomy generalization).
const queryText = `
SELECT FACT-SETS
WHERE
  $i subClassOf* Grocery
SATISFYING
  $i+ boughtIn Basket
WITH SUPPORT = 0.4
`

// The "crowd" is a single shopper whose personal database is the
// transaction log — mining a standard database needs no crowd at all.
const transactionsText = `
member shopper
Milk boughtIn Basket . Bread boughtIn Basket
Milk boughtIn Basket . Bread boughtIn Basket . Butter boughtIn Basket
Milk boughtIn Basket . Bagel boughtIn Basket
Bread boughtIn Basket . Butter boughtIn Basket . Apples boughtIn Basket
Milk boughtIn Basket . Bread boughtIn Basket . Bananas boughtIn Basket
Yogurt boughtIn Basket . Apples boughtIn Basket
Milk boughtIn Basket . Bread boughtIn Basket . Butter boughtIn Basket
Bagel boughtIn Basket . Bananas boughtIn Basket
`

func main() {
	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
	if err != nil {
		log.Fatal(err)
	}
	q, err := oassis.ParseQuery(queryText, v)
	if err != nil {
		log.Fatal(err)
	}
	sims, err := oassis.LoadCrowdSim(strings.NewReader(transactionsText), v, 1)
	if err != nil {
		log.Fatal(err)
	}
	shopper := sims[0]
	shopper.Scale = nil // a database answers exactly

	fmt.Println("frequent itemsets (support ≥ 0.4, taxonomy-aware):")
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.RunSingle(shopper, oassis.Vertical)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range res.ValidMSPs {
		items := []string{}
		for _, id := range m.Values("i") {
			items = append(items, v.ElementName(id))
		}
		fs := session.FactSets([]*oassis.Assignment{m})[0]
		support := shopper.TrueSupport(fs)
		fmt.Printf("  {%s}  support %.3f\n", strings.Join(items, ", "), support)
	}

	// Note: the naive baseline enumerates only the multiplicity-1 valid
	// assignments (as in the paper's Section 6.4 setup), so it cannot
	// discover multi-item sets like {Milk, Bread} on its own.
	fmt.Println("\nquestion-ordering comparison:")
	for _, st := range []oassis.Strategy{oassis.Vertical, oassis.Horizontal, oassis.Naive} {
		s2, err := oassis.NewSession(store, q, oassis.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		r2, err := s2.RunSingle(shopper, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %4d support queries, %3d maximal itemsets\n",
			st, r2.Stats.Questions, len(r2.ValidMSPs))
	}
}
