// Webcrowd demonstrates the crowdsourcing platform end to end: the engine
// runs behind the HTTP API of internal/server (the paper's prototype served
// a web UI the same way), and a handful of bot clients play the crowd —
// polling for questions, reading them, and answering from their personal
// histories. Replace the bots with humans and this is the deployed system.
//
//	go run ./examples/webcrowd
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"oassis"
	"oassis/internal/server"
)

const ontologyText = `
Remedy subClassOf Thing
Symptom subClassOf Thing
"Herbal Tea" subClassOf Remedy
Honey subClassOf Remedy
Ibuprofen subClassOf Remedy
Headache subClassOf Symptom
"Sore Throat" subClassOf Symptom

@relation takenFor
`

const queryText = `
SELECT FACT-SETS
WHERE
  $r subClassOf* Remedy.
  $s subClassOf* Symptom
SATISFYING
  $r takenFor $s
WITH SUPPORT = 0.3
`

const crowdText = `
member bot-1
Ibuprofen takenFor Headache
"Herbal Tea" takenFor "Sore Throat"
Ibuprofen takenFor Headache . Honey takenFor "Sore Throat"
member bot-2
Ibuprofen takenFor Headache
"Herbal Tea" takenFor "Sore Throat" . Honey takenFor "Sore Throat"
member bot-3
Ibuprofen takenFor Headache
"Herbal Tea" takenFor "Sore Throat"
Honey takenFor Headache
`

func main() {
	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
	if err != nil {
		log.Fatal(err)
	}
	q, err := oassis.ParseQuery(queryText, v)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.Config{MinMembers: 3, AnswerTimeout: 10 * time.Second})
	var sess *oassis.Session
	sess, err = oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithParallelism(3),
		oassis.WithAggregator(oassis.NewMeanAggregator(3, q.Satisfying.Support)),
		oassis.WithOnMSP(func(a *oassis.Assignment) {
			fs := sess.FactSets([]*oassis.Assignment{a})[0]
			srv.RecordAnswer(sess.DescribeAnswer(fs))
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("platform listening at", ts.URL)

	sims, err := oassis.LoadCrowdSim(strings.NewReader(crowdText), v, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Join and start.
	for _, m := range sims {
		mustPost(ts.URL + "/join?member=" + m.ID())
	}
	mustPost(ts.URL + "/start")

	// Bots answer until the run finishes.
	var wg sync.WaitGroup
	for _, m := range sims {
		wg.Add(1)
		go func(m *oassis.SimMember) {
			defer wg.Done()
			runBot(ts.URL, m, v)
		}(m)
	}
	// Poll results.
	for {
		var out struct {
			Done    bool     `json:"done"`
			Answers []string `json:"answers"`
		}
		getJSON(ts.URL+"/results", &out)
		if out.Done {
			fmt.Printf("\nrun complete — %d answers:\n", len(out.Answers))
			for _, a := range out.Answers {
				fmt.Println("  •", a)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
}

// runBot polls for questions and answers with the bot's true supports,
// parsing the NL question back into the asked fact-set.
func runBot(base string, m *oassis.SimMember, v *oassis.Vocabulary) {
	m.Scale = nil
	for {
		resp, err := http.Get(base + "/question?member=" + m.ID())
		if err != nil {
			return
		}
		var q struct {
			ID      int64    `json:"id"`
			Kind    string   `json:"kind"`
			Text    string   `json:"text"`
			Options []string `json:"options"`
		}
		switch resp.StatusCode {
		case http.StatusGone:
			resp.Body.Close()
			return
		case http.StatusNotFound:
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
			continue
		}
		json.NewDecoder(resp.Body).Decode(&q)
		resp.Body.Close()

		ans := map[string]any{"member": m.ID(), "question": q.ID, "choice": -1, "support": 0.0}
		if q.Kind == "specialization" {
			best, bestS := -1, 0.0
			for i, opt := range q.Options {
				if s := supportFor(m, v, opt); s > bestS {
					best, bestS = i, s
				}
			}
			ans["choice"], ans["support"] = best, bestS
		} else {
			ans["support"] = supportFor(m, v, q.Text)
		}
		body, _ := json.Marshal(ans)
		r2, err := http.Post(base+"/answer", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		r2.Body.Close()
	}
}

// supportFor inverts the question template "How often do you take {r} for
// {s}?" and computes the bot's true support.
func supportFor(m *oassis.SimMember, v *oassis.Vocabulary, text string) float64 {
	body := strings.TrimSuffix(strings.TrimPrefix(text, "How often do you "), "?")
	var facts []oassis.Fact
	for _, part := range strings.Split(body, " and also ") {
		part = strings.TrimPrefix(part, "take ")
		i := strings.LastIndex(part, " for ")
		if i < 0 {
			return 0
		}
		f, err := oassis.ParseFact(
			`"`+part[:i]+`" takenFor "`+part[i+len(" for "):]+`"`, v)
		if err != nil {
			return 0
		}
		facts = append(facts, f)
	}
	return m.TrueSupport(oassis.NewFactSet(facts...))
}

func mustPost(url string) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(out)
}
