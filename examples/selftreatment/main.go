// Selftreatment reproduces the paper's third application domain
// (Section 6.3): what do people take to relieve common symptoms —
// information of interest to health researchers. It demonstrates crowd
// quality control (Section 4.2): a random-answering spammer joins the
// crowd, the consistency filter flags them, and a trust-weighted aggregator
// drops their answers.
//
//	go run ./examples/selftreatment
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"oassis"
)

const ontologyText = `
Remedy subClassOf Thing
Symptom subClassOf Thing
"Home Remedy" subClassOf Remedy
Medication subClassOf Remedy
"Herbal Tea" subClassOf "Home Remedy"
"Chicken Soup" subClassOf "Home Remedy"
Honey subClassOf "Home Remedy"
Painkiller subClassOf Medication
Antihistamine subClassOf Medication
Ibuprofen subClassOf Painkiller
Paracetamol subClassOf Painkiller
Headache subClassOf Symptom
"Sore Throat" subClassOf Symptom
Allergy subClassOf Symptom
Fever subClassOf Symptom

@relation takenFor
`

const queryText = `
SELECT FACT-SETS
WHERE
  $r subClassOf* Remedy.
  $s subClassOf* Symptom
SATISFYING
  $r takenFor $s
WITH SUPPORT = 0.3
`

const crowdText = `
member patient-1
Ibuprofen takenFor Headache
Ibuprofen takenFor Headache . "Herbal Tea" takenFor "Sore Throat"
Honey takenFor "Sore Throat"
Paracetamol takenFor Fever
member patient-2
Ibuprofen takenFor Headache
"Herbal Tea" takenFor "Sore Throat"
"Herbal Tea" takenFor "Sore Throat" . Honey takenFor "Sore Throat"
Antihistamine takenFor Allergy
member patient-3
Ibuprofen takenFor Headache . Paracetamol takenFor Fever
"Herbal Tea" takenFor "Sore Throat"
"Chicken Soup" takenFor Fever
member patient-4
Ibuprofen takenFor Headache
Honey takenFor "Sore Throat" . "Herbal Tea" takenFor "Sore Throat"
Antihistamine takenFor Allergy
`

// spammer answers uniformly at random — the adversary the Section 4.2
// consistency filter is built for. It implements oassis.Member directly,
// showing that crowd sources are pluggable.
type spammer struct{ rng *rand.Rand }

func (s *spammer) ID() string { return "spam-bot" }

func (s *spammer) AskConcrete(oassis.FactSet) oassis.Response {
	scale := []float64{0, 0.25, 0.5, 0.75, 1}
	return oassis.Response{Support: scale[s.rng.Intn(len(scale))]}
}

func (s *spammer) AskSpecialize(_ oassis.FactSet, candidates []oassis.FactSet) (int, oassis.Response) {
	if len(candidates) == 0 {
		return -1, oassis.Response{}
	}
	return s.rng.Intn(len(candidates)), oassis.Response{Support: 1}
}

func main() {
	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
	if err != nil {
		log.Fatal(err)
	}
	q, err := oassis.ParseQuery(queryText, v)
	if err != nil {
		log.Fatal(err)
	}
	honest, err := oassis.LoadCrowd(strings.NewReader(crowdText), v, 11)
	if err != nil {
		log.Fatal(err)
	}
	members := append(honest, &spammer{rng: rand.New(rand.NewSource(99))})

	session, err := oassis.NewSession(store, q,
		oassis.WithSeed(3),
		oassis.WithConsistencyFilter(),
		oassis.WithAggregator(oassis.NewMeanAggregator(4, q.Satisfying.Support)),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.Run(members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crowd of %d (including one spam bot), %d questions asked\n\n",
		len(members), res.Stats.Questions)
	fmt.Printf("findings (%d MSPs):\n", len(res.ValidMSPs))
	for _, fs := range session.FactSets(res.ValidMSPs) {
		fmt.Printf("  • %s\n", session.DescribeAnswer(fs))
	}
}
