// Culinary reproduces the paper's second application domain (Section 6.3):
// mining popular combinations of dishes and drinks, e.g. for composing new
// restaurant menus. It demonstrates threshold re-evaluation: the query runs
// at support 0.2, and then again at 0.4 with the CrowdCache replaying the
// collected answers instead of bothering the crowd again.
//
//	go run ./examples/culinary
package main

import (
	"fmt"
	"log"
	"strings"

	"oassis"
)

const ontologyText = `
Dish subClassOf Food
Drink subClassOf Food
Snack subClassOf Dish
"Health Food" subClassOf Dish
"Main Course" subClassOf Dish
Fries subClassOf Snack
Pretzel subClassOf Snack
Muesli subClassOf "Health Food"
Salad subClassOf "Health Food"
Steak subClassOf "Main Course"
Pizza subClassOf "Main Course"
Pasta subClassOf "Main Course"
Soda subClassOf Drink
Juice subClassOf Drink
Coke subClassOf Soda
Lemonade subClassOf Soda
"Apple Juice" subClassOf Juice
"Orange Juice" subClassOf Juice
Water subClassOf Drink

@relation servedWith
`

// The query: which dish classes are frequently had with which drinks?
const queryTemplate = `
SELECT FACT-SETS
WHERE
  $d subClassOf* Dish.
  $k subClassOf* Drink
SATISFYING
  $d+ servedWith $k
WITH SUPPORT = %g CONFIDENCE = 0.6
`

// The crowd: meal histories embedding the paper's two reported findings —
// steak with fries and a coke, and muesli with apple juice.
const crowdText = `
member diner-1
Steak servedWith Coke . Fries servedWith Coke
Steak servedWith Coke . Fries servedWith Coke
Muesli servedWith "Apple Juice"
Pizza servedWith Lemonade
Salad servedWith Water
member diner-2
Steak servedWith Coke . Fries servedWith Coke
Muesli servedWith "Apple Juice"
Muesli servedWith "Apple Juice"
Pasta servedWith Water
member diner-3
Steak servedWith Coke
Fries servedWith Coke
Muesli servedWith "Apple Juice"
Pizza servedWith Coke
member diner-4
Steak servedWith Coke . Fries servedWith Coke
Muesli servedWith "Apple Juice"
Salad servedWith "Orange Juice"
Pretzel servedWith Lemonade
`

func main() {
	v, store, err := oassis.LoadOntology(strings.NewReader(ontologyText))
	if err != nil {
		log.Fatal(err)
	}
	members, err := oassis.LoadCrowd(strings.NewReader(crowdText), v, 7)
	if err != nil {
		log.Fatal(err)
	}

	// One cache shared by both runs: the second run replays answers.
	cache := oassis.NewCrowdCache()
	wrapped := make([]oassis.Member, len(members))
	for i, m := range members {
		wrapped[i] = cache.Wrap(m)
	}

	for _, theta := range []float64{0.2, 0.4} {
		missesBefore := cache.Misses
		q, err := oassis.ParseQuery(fmt.Sprintf(queryTemplate, theta), v)
		if err != nil {
			log.Fatal(err)
		}
		session, err := oassis.NewSession(store, q,
			oassis.WithSeed(2),
			oassis.WithAggregator(oassis.NewMeanAggregator(4, theta)),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Run(wrapped)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("threshold %.1f — %d answers consumed, %d fresh crowd questions:\n",
			theta, res.Stats.Questions, cache.Misses-missesBefore)
		for _, fs := range session.FactSets(res.ValidMSPs) {
			fmt.Printf("  • %s\n", session.DescribeAnswer(fs))
		}
		// The CONFIDENCE clause requests association rules, derived from
		// the supports the run already collected.
		if rules := session.MineRules(res, 0); len(rules) > 0 {
			fmt.Println("  rules:")
			for i, r := range rules {
				if i >= 3 {
					break
				}
				fmt.Printf("    - %s\n", session.DescribeRule(r))
			}
		}
		fmt.Println()
	}
	fmt.Printf("cache: %d stored answers, %d hits overall\n", cache.Size(), cache.Hits)
}
