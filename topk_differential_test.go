package oassis_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/core"
	"oassis/internal/server"
	"oassis/internal/synth"
)

// TestParallelSelectionTopKDifferential pins the top-k mid-flight stop
// path: when MaxMSPs halts the run with replies still in flight, the
// discarded-reply accounting and the confirmed-only MSP border must be
// identical across the sequential driver, the concurrent RunParallel
// driver and the HTTP platform — with and without sharded selection. The
// stop flips kernel state mid-barrier, which is exactly where a sharded
// fold could diverge from the serial one, so this scenario gets its own
// differential suite on top of the full-run one.
func TestParallelSelectionTopKDifferential(t *testing.T) {
	d := diffDAG(t)
	const topK = 2

	topCfg := func(workers int) core.EngineConfig {
		cfg := diffEngineConfig(d)
		cfg.MaxMSPs = topK
		cfg.SelectionWorkers = workers
		return cfg
	}
	// The session driver truncates to LIMIT in confirm order; apply the
	// same cut to the raw engine results so the borders are comparable.
	trunc := func(res *oassis.Result) *oassis.Result {
		if len(res.MSPs) > topK {
			res.MSPs = res.MSPs[:topK]
		}
		if len(res.ValidMSPs) > topK {
			res.ValidMSPs = res.ValidMSPs[:topK]
		}
		return res
	}

	type leg struct {
		name string
		run  func(t *testing.T) *oassis.Result
	}
	legs := []leg{
		{"run-serial", func(t *testing.T) *oassis.Result {
			return trunc(core.NewEngine(d.Space, diffCrowd(d), topCfg(0)).Run())
		}},
		{"run-sel2", func(t *testing.T) *oassis.Result {
			return trunc(core.NewEngine(d.Space, diffCrowd(d), topCfg(2)).Run())
		}},
		{"run-sel8", func(t *testing.T) *oassis.Result {
			return trunc(core.NewEngine(d.Space, diffCrowd(d), topCfg(8)).Run())
		}},
		{"runparallel4-serial", func(t *testing.T) *oassis.Result {
			return trunc(core.NewEngine(d.Space, diffCrowd(d), topCfg(0)).RunParallel(4))
		}},
		{"runparallel4-sel8", func(t *testing.T) *oassis.Result {
			return trunc(core.NewEngine(d.Space, diffCrowd(d), topCfg(8)).RunParallel(4))
		}},
		{"http-sel8", func(t *testing.T) *oassis.Result {
			return runServerTopKLeg(t, d, topK, 8)
		}},
	}

	refKeys, refTrans, refDiscarded, refQuestions := "", map[string][]string(nil), 0, 0
	for i, l := range legs {
		res := l.run(t)
		if res == nil {
			t.Fatalf("%s: no result", l.name)
		}
		if len(res.MSPs) != topK {
			t.Fatalf("%s: top-%d run returned %d MSPs", l.name, topK, len(res.MSPs))
		}
		keys, trans := diffFingerprint(res)
		if i == 0 {
			refKeys, refTrans = keys, trans
			refDiscarded, refQuestions = res.Stats.Discarded, res.Stats.Questions
			// The scenario must actually exercise the mid-flight stop:
			// replies discarded because the run was already over.
			if refDiscarded == 0 {
				t.Fatal("top-k stop discarded no in-flight replies — scenario is degenerate")
			}
			continue
		}
		if keys != refKeys {
			t.Errorf("%s: confirmed MSP border diverged from %s:\n%s\nvs\n%s",
				l.name, legs[0].name, keys, refKeys)
		}
		if !reflect.DeepEqual(trans, refTrans) {
			t.Errorf("%s: transcripts diverged from %s", l.name, legs[0].name)
		}
		if res.Stats.Discarded != refDiscarded {
			t.Errorf("%s: Discarded = %d, want %d", l.name, res.Stats.Discarded, refDiscarded)
		}
		if res.Stats.Questions != refQuestions {
			t.Errorf("%s: Questions = %d, want %d", l.name, res.Stats.Questions, refQuestions)
		}
	}
}

// runServerTopKLeg drives the top-k scenario through the HTTP platform: the
// DAG's query with a LIMIT clause, sharded selection on the session, and
// the same scripted oracle clients as the full-run differential test.
func runServerTopKLeg(t *testing.T, d *synth.DAG, topK, workers int) *oassis.Result {
	t.Helper()
	theta := d.Query.Satisfying.Support
	q, err := oassis.ParseQuery(strings.Replace(d.Query.String(),
		"SELECT FACT-SETS", fmt.Sprintf("SELECT FACT-SETS LIMIT %d", topK), 1), d.Vocab)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{MinMembers: diffMembers, AnswerTimeout: 30 * time.Second})
	sess, err := oassis.NewSession(d.Store, q,
		oassis.WithSeed(diffSeed),
		oassis.WithAggregator(oassis.NewMeanAggregator(diffQuorum, theta)),
		oassis.WithSpecializationRatio(diffSpecRatio),
		oassis.WithTranscript(),
		oassis.WithSelectionWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oracle := d.Oracle(0, 1)
	var wg sync.WaitGroup
	for i := 0; i < diffMembers; i++ {
		id := fmt.Sprintf("m%d", i)
		if resp := httpDo(t, ts.URL, "POST", "/join?member="+id, nil); resp != http.StatusOK {
			t.Fatalf("join %s: %d", id, resp)
		}
		wg.Add(1)
		go diffClient(t, &wg, ts.URL, id, d, oracle)
	}
	if resp := httpDo(t, ts.URL, "POST", "/start", nil); resp != http.StatusOK {
		t.Fatalf("start: %d", resp)
	}
	deadline := time.Now().Add(60 * time.Second)
	for srv.Result() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server top-k run did not complete in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	return srv.Result()
}
