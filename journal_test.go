package oassis_test

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"oassis"
)

// chaosJournalFaults builds a fault schedule that provokes both failure
// modes the flight recorder must capture: heavy-tailed latencies against a
// short answer deadline (timeouts) and mid-run departures.
func chaosJournalFaults() []oassis.Faults {
	faults := make([]oassis.Faults, 6)
	for i := range faults {
		faults[i].LatencyMin = 15 * time.Second
		faults[i].LatencyMax = 2 * time.Minute
		faults[i].HeavyTailAlpha = 1.5
	}
	faults[1].DepartAfter = 2
	faults[4].DepartAfter = 1
	return faults
}

// chaosJournalRun drives one sequential chaos run with a journal attached:
// virtual clock, a 1-minute answer deadline under 2-minute worst-case
// latencies (so some answers must overrun it) and two scheduled departures.
func chaosJournalRun(t *testing.T, j *oassis.Journal, extra ...oassis.Option) (*oassis.Session, *oassis.Result) {
	t.Helper()
	clock := oassis.NewVirtualClock()
	opts := append([]oassis.Option{
		oassis.WithClock(clock),
		oassis.WithAnswerDeadline(time.Minute, 3),
		oassis.WithTranscript(),
	}, extra...)
	if j != nil {
		opts = append(opts, oassis.WithJournal(j))
	}
	sess, v := chaosSession(t, opts...)
	res, err := sess.Run(u1Clones(t, v, clock, chaosJournalFaults()))
	if err != nil {
		t.Fatal(err)
	}
	return sess, res
}

// TestJournalReplayChaos is the tentpole acceptance test: record a chaos
// run — departures and deadline timeouts both present — through the JSONL
// sink, decode the stream back, re-fold it through a fresh kernel with no
// crowd attached, and require the reconstruction to be byte-identical on
// kernel state. When JOURNAL_ARTIFACT is set, the recorded stream is also
// written there so CI can upload it.
func TestJournalReplayChaos(t *testing.T) {
	j := oassis.NewJournal(0)
	var sink bytes.Buffer
	j.SetSink(&sink)

	live, liveRes := chaosJournalRun(t, j)
	if liveRes.Stats.Departures == 0 {
		t.Fatal("chaos run produced no departures; scenario too tame to exercise the journal")
	}
	if liveRes.Stats.TimedOut == 0 {
		t.Fatal("chaos run produced no deadline timeouts; scenario too tame to exercise the journal")
	}
	if len(liveRes.Curve) == 0 {
		t.Fatal("journaled run returned no answer-arrival curve")
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal sink error: %v", err)
	}

	if path := os.Getenv("JOURNAL_ARTIFACT"); path != "" {
		if err := os.WriteFile(path, sink.Bytes(), 0o644); err != nil {
			t.Fatalf("writing JOURNAL_ARTIFACT: %v", err)
		}
		t.Logf("journal artifact: %s (%d bytes, %d events)", path, sink.Len(), j.Total())
	}

	events, err := oassis.ReadJournal(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("decoding recorded JSONL: %v", err)
	}
	if int64(len(events)) != j.Total() {
		t.Fatalf("sink carries %d events, journal recorded %d", len(events), j.Total())
	}

	// The replay session mirrors the recorded run's configuration but has
	// no clock, no journal and no crowd: every answer comes from the
	// recorded stream.
	replaySess, _ := chaosSession(t,
		oassis.WithAnswerDeadline(time.Minute, 3),
		oassis.WithTranscript(),
	)
	replayed, err := replaySess.Replay(events)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := oassis.VerifyReplayIdentity(liveRes, replayed); err != nil {
		t.Fatalf("replay diverged from live run: %v", err)
	}

	// Belt and braces on top of VerifyReplayIdentity: the user-facing
	// answer strings round-trip too.
	liveAns := sortedAnswers(live, liveRes)
	repAns := sortedAnswers(replaySess, replayed)
	if strings.Join(liveAns, "\n") != strings.Join(repAns, "\n") {
		t.Fatalf("replayed answers diverged:\n%v\nvs\n%v", repAns, liveAns)
	}
}

// TestJournalZeroBehaviorChange pins the observer-side-channel contract:
// attaching a journal must not perturb the run. Same seed, same chaos
// timeline, identical transcripts, stats and answers with and without it.
func TestJournalZeroBehaviorChange(t *testing.T) {
	bareSess, bareRes := chaosJournalRun(t, nil)
	jSess, jRes := chaosJournalRun(t, oassis.NewJournal(0))

	if !reflect.DeepEqual(bareRes.Stats, jRes.Stats) {
		t.Fatalf("journal changed Stats:\n%+v\nvs\n%+v", jRes.Stats, bareRes.Stats)
	}
	bareAns := sortedAnswers(bareSess, bareRes)
	jAns := sortedAnswers(jSess, jRes)
	if strings.Join(bareAns, "\n") != strings.Join(jAns, "\n") {
		t.Fatalf("journal changed answers:\n%v\nvs\n%v", jAns, bareAns)
	}
	for m, lines := range bareRes.Transcripts {
		if strings.Join(lines, "\n") != strings.Join(jRes.Transcripts[m], "\n") {
			t.Fatalf("journal changed %s's transcript", m)
		}
	}
	if bareRes.Curve != nil {
		t.Fatal("run without a journal carried a curve")
	}
	if len(jRes.Curve) == 0 {
		t.Fatal("journaled run carried no curve")
	}
}

// TestJournalCurveShape checks the answer-arrival curve's invariants: one
// point per non-empty round, cumulative question counts non-decreasing,
// cumulative totals consistent with the per-round increments, and the
// final totals agreeing with the run's stats.
func TestJournalCurveShape(t *testing.T) {
	_, res := chaosJournalRun(t, oassis.NewJournal(0))
	curve := res.Curve
	if len(curve) == 0 {
		t.Fatal("no curve recorded")
	}
	var msps, answers, prevRound int
	prevQ := int64(-1)
	for i, p := range curve {
		if p.Round <= prevRound {
			t.Fatalf("curve[%d]: round %d not increasing (prev %d)", i, p.Round, prevRound)
		}
		if p.Questions < prevQ {
			t.Fatalf("curve[%d]: cumulative questions %d decreased (prev %d)", i, p.Questions, prevQ)
		}
		msps += p.NewMSPs
		answers += p.NewAnswers
		if p.MSPs != msps {
			t.Fatalf("curve[%d]: cumulative MSPs %d, increments sum to %d", i, p.MSPs, msps)
		}
		if p.Answers != answers {
			t.Fatalf("curve[%d]: cumulative answers %d, increments sum to %d", i, p.Answers, answers)
		}
		prevRound, prevQ = p.Round, p.Questions
	}
	last := curve[len(curve)-1]
	if last.MSPs != len(res.MSPs) {
		t.Fatalf("curve ends at %d MSPs, result has %d", last.MSPs, len(res.MSPs))
	}
	if int(last.Questions) != res.Stats.Questions {
		t.Fatalf("curve ends at %d questions, stats counted %d", last.Questions, res.Stats.Questions)
	}
}

// TestScorecardsIntegration runs the chaos fleet WithScorecards and checks
// the per-member profiles are consistent with the run's aggregate stats.
func TestScorecardsIntegration(t *testing.T) {
	sess, res := chaosJournalRun(t, nil, oassis.WithScorecards())
	cards := sess.Scorecards()
	if len(cards) == 0 {
		t.Fatal("Scorecards() empty after a run")
	}
	var asked, answered, timeouts int64
	var departed int
	for i, c := range cards {
		if c.Member == "" {
			t.Fatalf("card %d has no member ID", i)
		}
		if i > 0 && cards[i-1].Member >= c.Member {
			t.Fatalf("cards not sorted by member: %q then %q", cards[i-1].Member, c.Member)
		}
		if c.Answered > c.Asked {
			t.Fatalf("%s: answered %d > asked %d", c.Member, c.Answered, c.Asked)
		}
		asked += c.Asked
		answered += c.Answered
		timeouts += c.Timeouts
		if c.Departed {
			departed++
		}
	}
	if asked != int64(res.Stats.Asked) {
		t.Fatalf("cards sum to %d asked, stats counted %d", asked, res.Stats.Asked)
	}
	if answered != int64(res.Stats.Questions) {
		t.Fatalf("cards sum to %d answered, stats counted %d usable answers", answered, res.Stats.Questions)
	}
	if timeouts != int64(res.Stats.TimedOut) {
		t.Fatalf("cards sum to %d timeouts, stats counted %d", timeouts, res.Stats.TimedOut)
	}
	if departed != res.Stats.Departures {
		t.Fatalf("%d cards marked departed, stats counted %d", departed, res.Stats.Departures)
	}
}
