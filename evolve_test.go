package oassis_test

import (
	"strings"
	"testing"

	"oassis"
	"oassis/internal/paperdata"
)

// TestEvolveOntologyWithCacheReplay exercises the Section 8 evolution flow:
// run a query with a cache, grow the ontology with a new activity, migrate
// the cache, and re-run — the old region replays free, only the new region
// costs fresh questions, and a pattern over the new term can surface.
func TestEvolveOntologyWithCacheReplay(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	cache := oassis.NewCrowdCache()

	// First run: the Table 3 crowd, wrapped in the cache.
	members := table3Members(t, v)
	wrapped := make([]oassis.Member, len(members))
	for i, m := range members {
		wrapped[i] = cache.Wrap(m)
	}
	session, err := oassis.NewSession(store, q, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := session.Run(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	firstMisses := cache.Misses
	if firstMisses == 0 {
		t.Fatal("first run asked nothing")
	}

	// The crowd's answers reveal a new activity: grow the ontology.
	v2, store2, err := oassis.EvolveOntology(store, `
Rollerblading subClassOf Sport
`)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Element("Rollerblading") == -1 {
		t.Fatal("new term missing after evolution")
	}
	// Old facts and orders survive.
	if !v2.LeqE(v2.Element("Sport"), v2.Element("Biking")) {
		t.Fatal("old order lost")
	}

	// Migrate the cache and re-run against the evolved ontology. The
	// crowd must be rebuilt over the new vocabulary (same histories).
	cache2, err := oassis.MigrateCache(cache, v, v2)
	if err != nil {
		t.Fatal(err)
	}
	du1, du2 := rebuildTable3(t, v2)
	m1 := oassis.NewSimMember("u1", v2, du1, 1)
	m1.Scale = nil
	m2 := oassis.NewSimMember("u2", v2, du2, 2)
	m2.Scale = nil
	wrapped2 := []oassis.Member{cache2.Wrap(m1), cache2.Wrap(m2)}

	q2, err := oassis.ParseQuery(paperdata.SimpleQueryText, v2)
	if err != nil {
		t.Fatal(err)
	}
	session2, err := oassis.NewSession(store2, q2, oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := session2.Run(wrapped2)
	if err != nil {
		t.Fatal(err)
	}
	// The second run must be mostly replay: fresh questions only for the
	// new region (Rollerblading under Sport at each attraction).
	fresh := cache2.Misses
	if fresh >= firstMisses/2 {
		t.Errorf("evolution re-run asked %d fresh questions (first run: %d) — cache migration failed",
			fresh, firstMisses)
	}
	if cache2.Hits == 0 {
		t.Error("no replayed answers after migration")
	}
	// The same MSPs survive (nobody rollerblades in the histories).
	if len(res2.ValidMSPs) != len(res1.ValidMSPs) {
		t.Errorf("MSPs changed across evolution: %d vs %d",
			len(res2.ValidMSPs), len(res1.ValidMSPs))
	}
}

// rebuildTable3 rebuilds the Table 3 databases over an evolved vocabulary.
func rebuildTable3(t *testing.T, v2 *oassis.Vocabulary) (du1, du2 []oassis.FactSet) {
	t.Helper()
	return paperdata.Table3(v2)
}

func TestEvolveOntologyRejectsBadAdditions(t *testing.T) {
	_, store := fixture(t)
	if _, _, err := oassis.EvolveOntology(store, "Sport subClassOf Biking"); err == nil {
		t.Fatal("cycle-introducing evolution accepted")
	}
	if _, _, err := oassis.EvolveOntology(store, "a subClassOf"); err == nil {
		t.Fatal("malformed addition accepted")
	}
}

func TestMigrateCacheDropsRemovedTerms(t *testing.T) {
	v, _ := fixture(t)
	cache := oassis.NewCrowdCache()
	du1, _ := paperdata.Table3(v)
	m := oassis.NewSimMember("u1", v, du1, 1)
	wrapped := cache.Wrap(m)
	fs := oassis.NewFactSet(paperdata.Fact(v, "Biking", "doAt", "Central Park"))
	wrapped.AskConcrete(fs)

	// A fresh, unrelated vocabulary lacks the terms entirely.
	v2, _, err := oassis.LoadOntology(strings.NewReader("a subClassOf b\n"))
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := oassis.MigrateCache(cache, v, v2)
	if err != nil {
		t.Fatal(err)
	}
	if migrated.Size() != 0 {
		t.Fatalf("migrated cache kept %d entries for missing terms", migrated.Size())
	}
}
