package oassis_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/server"
	"oassis/internal/synth"
)

// The differential test pins the tentpole invariant of the engine
// refactor: sequential Run, RunParallel (1 and 8 workers) and the HTTP
// server driver are thin shells over one mining kernel, so on the same
// seeded synthetic DAG with the same deterministic crowd they must
// produce identical MSP sets AND identical per-member question
// transcripts — not just statistically similar results.

// namedOracle gives each clone of the shared ground-truth oracle a
// distinct member ID.
type namedOracle struct {
	crowd.Member
	id string
}

func (n namedOracle) ID() string { return n.id }

const (
	diffSeed      = 7
	diffMembers   = 4
	diffQuorum    = 3
	diffSpecRatio = 0.15
)

func diffDAG(t *testing.T) *synth.DAG {
	t.Helper()
	d, err := synth.NewDAG(synth.DAGConfig{
		Width:      24,
		Depth:      3,
		MSPPercent: 0.08,
		Places:     2,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func diffCrowd(d *synth.DAG) []crowd.Member {
	members := make([]crowd.Member, diffMembers)
	for i := range members {
		// PruneRatio 0 makes the oracle a pure function of the question,
		// so every driver sees the same answers regardless of scheduling.
		members[i] = namedOracle{Member: d.Oracle(0, int64(i+1)), id: fmt.Sprintf("m%d", i)}
	}
	return members
}

func diffEngineConfig(d *synth.DAG) core.EngineConfig {
	theta := d.Query.Satisfying.Support
	return core.EngineConfig{
		Theta:               theta,
		Aggregator:          crowd.NewMeanAggregator(diffQuorum, theta),
		SpecializationRatio: diffSpecRatio,
		Seed:                diffSeed,
		RecordTranscript:    true,
	}
}

// diffFingerprint reduces a result to the comparable pair: the sorted MSP
// key set and the per-member transcripts.
func diffFingerprint(res *oassis.Result) (string, map[string][]string) {
	keys := make([]string, len(res.MSPs))
	for i, m := range res.MSPs {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n"), res.Transcripts
}

func TestDifferentialDriversAgree(t *testing.T) {
	d := diffDAG(t)

	type leg struct {
		name string
		run  func(t *testing.T) *oassis.Result
	}
	legs := []leg{
		{"sequential", func(t *testing.T) *oassis.Result {
			return core.NewEngine(d.Space, diffCrowd(d), diffEngineConfig(d)).Run()
		}},
		{"parallel-1", func(t *testing.T) *oassis.Result {
			return core.NewEngine(d.Space, diffCrowd(d), diffEngineConfig(d)).RunParallel(1)
		}},
		{"parallel-8", func(t *testing.T) *oassis.Result {
			return core.NewEngine(d.Space, diffCrowd(d), diffEngineConfig(d)).RunParallel(8)
		}},
		{"http-server", func(t *testing.T) *oassis.Result {
			return runServerLeg(t, d)
		}},
	}

	refKeys, refTrans := "", map[string][]string(nil)
	for i, l := range legs {
		res := l.run(t)
		if res == nil {
			t.Fatalf("%s: no result", l.name)
		}
		keys, trans := diffFingerprint(res)
		if keys == "" {
			t.Fatalf("%s: found no MSPs — the DAG config is degenerate", l.name)
		}
		if len(trans) != diffMembers {
			t.Fatalf("%s: transcripts for %d members, want %d", l.name, len(trans), diffMembers)
		}
		if i == 0 {
			refKeys, refTrans = keys, trans
			continue
		}
		if keys != refKeys {
			t.Errorf("%s: MSP set diverged from %s:\n%s\nvs\n%s",
				l.name, legs[0].name, keys, refKeys)
		}
		if !reflect.DeepEqual(trans, refTrans) {
			t.Errorf("%s: per-member transcripts diverged from %s:\n%v\nvs\n%v",
				l.name, legs[0].name, trans, refTrans)
		}
	}
}

// runServerLeg drives the same mining run through the HTTP platform:
// scripted clients poll /question, parse the rendered text back into
// fact-sets and answer exactly as the ground-truth oracle would.
func runServerLeg(t *testing.T, d *synth.DAG) *oassis.Result {
	t.Helper()
	theta := d.Query.Satisfying.Support
	srv := server.New(server.Config{MinMembers: diffMembers, AnswerTimeout: 30 * time.Second})
	sess, err := oassis.NewSession(d.Store, d.Query,
		oassis.WithSeed(diffSeed),
		oassis.WithAggregator(oassis.NewMeanAggregator(diffQuorum, theta)),
		oassis.WithSpecializationRatio(diffSpecRatio),
		oassis.WithTranscript(),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oracle := d.Oracle(0, 1) // pure at PruneRatio 0, shared by all clients
	var wg sync.WaitGroup
	for i := 0; i < diffMembers; i++ {
		id := fmt.Sprintf("m%d", i)
		if resp := httpDo(t, ts.URL, "POST", "/join?member="+id, nil); resp != http.StatusOK {
			t.Fatalf("join %s: %d", id, resp)
		}
		wg.Add(1)
		go diffClient(t, &wg, ts.URL, id, d, oracle)
	}
	if resp := httpDo(t, ts.URL, "POST", "/start", nil); resp != http.StatusOK {
		t.Fatalf("start: %d", resp)
	}
	deadline := time.Now().Add(60 * time.Second)
	for srv.Result() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server run did not complete in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	return srv.Result()
}

func httpDo(t *testing.T, base, method, path string, body any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// diffClient polls for questions and answers them with the oracle's truth
// until the run completes (410) — a scripted stand-in for a diligent
// human reading the web UI.
func diffClient(t *testing.T, wg *sync.WaitGroup, base, id string, d *synth.DAG, o *synth.Oracle) {
	defer wg.Done()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		req, _ := http.NewRequest("GET", base+"/question?member="+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			return
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusGone:
			return
		case http.StatusNotFound:
			time.Sleep(time.Millisecond)
			continue
		case http.StatusOK:
		default:
			t.Errorf("%s: unexpected status %d: %s", id, resp.StatusCode, buf.String())
			return
		}
		var q struct {
			ID      int64    `json:"id"`
			Kind    string   `json:"kind"`
			Text    string   `json:"text"`
			Options []string `json:"options"`
		}
		if err := json.Unmarshal(buf.Bytes(), &q); err != nil {
			t.Errorf("%s: bad question: %v", id, err)
			return
		}
		ans := map[string]any{"member": id, "question": q.ID, "choice": -1, "support": 0.0}
		if q.Kind == "specialization" {
			// Answer as the oracle does: the first significant option.
			for i, opt := range q.Options {
				if s := oracleSupport(t, d, o, opt); s > 0 {
					ans["choice"] = i
					ans["support"] = s
					break
				}
			}
		} else {
			ans["support"] = oracleSupport(t, d, o, q.Text)
		}
		body, _ := json.Marshal(ans)
		post, _ := http.NewRequest("POST", base+"/answer", bytes.NewReader(body))
		if resp, err := http.DefaultClient.Do(post); err == nil {
			resp.Body.Close()
		}
	}
}

// oracleSupport parses a rendered question ("How often do you engage in
// {item} at {place}?") back into the asked fact-set and returns the
// oracle's support for it.
func oracleSupport(t *testing.T, d *synth.DAG, o *synth.Oracle, text string) float64 {
	body := strings.TrimSuffix(strings.TrimPrefix(text, "How often do you "), "?")
	var facts []oassis.Fact
	for _, part := range strings.Split(body, " and also ") {
		part = strings.TrimPrefix(part, "engage in ")
		i := strings.LastIndex(part, " at ")
		if i < 0 {
			t.Errorf("cannot split question %q", text)
			return 0
		}
		f, err := oassis.ParseFact(
			`"`+part[:i]+`" doAt "`+part[i+len(" at "):]+`"`, d.Vocab)
		if err != nil {
			t.Errorf("cannot parse question %q: %v", text, err)
			return 0
		}
		facts = append(facts, f)
	}
	return o.AskConcrete(oassis.NewFactSet(facts...)).Support
}
