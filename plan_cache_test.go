package oassis_test

import (
	"testing"

	"oassis"
	"oassis/internal/paperdata"
)

// TestSessionPlanCacheReuse pins the fleet-serving property the shared plan
// cache exists for: a second session over the same store and query shape
// must not compile at all — the Compiles counter stays at one while the
// cache-hit counter advances — and must still build the identical space.
func TestSessionPlanCacheReuse(t *testing.T) {
	v, store := fixture(t)
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	o := oassis.NewObserver()
	s1, err := oassis.NewSession(store, q, oassis.WithSeed(1), oassis.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if c := o.Plan.Compiles.Value(); c != 1 {
		t.Fatalf("first session: compiles=%d, want 1", c)
	}
	if m := o.Plan.CacheMisses.Value(); m != 1 {
		t.Fatalf("first session: cache misses=%d, want 1", m)
	}

	s2, err := oassis.NewSession(store, q, oassis.WithSeed(2), oassis.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if c := o.Plan.Compiles.Value(); c != 1 {
		t.Fatalf("second session recompiled: compiles=%d, want 1", c)
	}
	if h := o.Plan.CacheHits.Value(); h < 1 {
		t.Fatalf("second session: cache hits=%d, want >= 1", h)
	}
	if s1.ValidAssignments() != s2.ValidAssignments() {
		t.Fatalf("sessions disagree on the space: %d vs %d valid assignments",
			s1.ValidAssignments(), s2.ValidAssignments())
	}

	// A reused plan still explains itself with actual cardinalities: the
	// rebound plan shares the per-operator slots the first eval populated.
	if explain := s2.PlanExplain(); explain == "" {
		t.Fatal("second session has no plan explanation")
	}

	// A different query shape over the same store must miss, not collide.
	q2, err := oassis.ParseQuery(paperdata.QueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oassis.NewSession(store, q2, oassis.WithSeed(1), oassis.WithObserver(o)); err != nil {
		t.Fatal(err)
	}
	if c := o.Plan.Compiles.Value(); c != 2 {
		t.Fatalf("distinct shape should compile: compiles=%d, want 2", c)
	}
}
