package oassis

import (
	"bytes"
	"fmt"
)

// EvolveOntology implements the Section 8 extension "dynamically extending
// the ontology based on crowd answers": it rebuilds the ontology with extra
// lines (in the textual format — new subClassOf/instanceOf facts, labels,
// @element/@relation declarations) appended to the existing store's
// serialization, returning a fresh vocabulary and store.
//
// Vocabularies are immutable once frozen (the order closures are
// precomputed), so evolution is a rebuild. The intended workflow keeps the
// crowd's effort: wrap members in a CrowdCache during the first run, evolve
// the ontology, rebuild the session and re-run — every question about
// unchanged terms replays from the cache and only the new region costs
// fresh questions. Caches are fingerprinted per vocabulary, so pass the old
// cache through MigrateCache to re-key it for the evolved vocabulary.
func EvolveOntology(old *Ontology, additions string) (*Vocabulary, *Ontology, error) {
	var buf bytes.Buffer
	if err := WriteOntology(&buf, old); err != nil {
		return nil, nil, fmt.Errorf("oassis: evolve: %w", err)
	}
	buf.WriteString("\n")
	buf.WriteString(additions)
	buf.WriteString("\n")
	v, store, err := LoadOntology(&buf)
	if err != nil {
		return nil, nil, fmt.Errorf("oassis: evolve: %w", err)
	}
	return v, store, nil
}

// MigrateCache re-keys a crowd cache collected under oldV so it replays
// under newV (after EvolveOntology): questions are matched term-by-term by
// name, and entries mentioning terms the new vocabulary lacks are dropped.
func MigrateCache(cache *CrowdCache, oldV, newV *Vocabulary) (*CrowdCache, error) {
	return cache.Rekey(oldV, newV)
}
