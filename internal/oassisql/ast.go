package oassisql

import (
	"fmt"
	"sort"
	"strings"

	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// OutputForm selects the shape of query answers (Section 3, SELECT).
type OutputForm uint8

const (
	// FactSets requests answers as fact-sets (SELECT FACT-SETS).
	FactSets OutputForm = iota
	// Variables requests answers as variable assignments (SELECT VARIABLES).
	Variables
)

func (f OutputForm) String() string {
	if f == Variables {
		return "VARIABLES"
	}
	return "FACT-SETS"
}

// Multiplicity bounds how many instantiations of a variable an assignment
// may give (Section 3, "Multiplicities"). Max < 0 means unbounded.
type Multiplicity struct {
	Min int
	Max int
}

// The standard multiplicity notations.
var (
	MultOne      = Multiplicity{Min: 1, Max: 1}  // default: exactly one
	MultPlus     = Multiplicity{Min: 1, Max: -1} // + : at least one
	MultStar     = Multiplicity{Min: 0, Max: -1} // * : any number
	MultOptional = Multiplicity{Min: 0, Max: 1}  // ? : optional
)

func (m Multiplicity) String() string {
	switch m {
	case MultOne:
		return ""
	case MultPlus:
		return "+"
	case MultStar:
		return "*"
	case MultOptional:
		return "?"
	}
	return fmt.Sprintf("{%d,%d}", m.Min, m.Max)
}

// Allows reports whether a set of n values satisfies the multiplicity.
func (m Multiplicity) Allows(n int) bool {
	if n < m.Min {
		return false
	}
	return m.Max < 0 || n <= m.Max
}

// SatPattern is one meta-fact of the SATISFYING clause. Terms reuse the
// sparql.Term representation; multiplicities attach to variable occurrences.
type SatPattern struct {
	S, P, O             sparql.Term
	SMult, PMult, OMult Multiplicity
}

func (p SatPattern) String(v *vocab.Vocabulary) string {
	var sb strings.Builder
	sb.WriteString(satTermString(v, vocab.Element, p.S, p.SMult))
	sb.WriteByte(' ')
	sb.WriteString(satTermString(v, vocab.Relation, p.P, p.PMult))
	sb.WriteByte(' ')
	sb.WriteString(satTermString(v, vocab.Element, p.O, p.OMult))
	return sb.String()
}

func satTermString(v *vocab.Vocabulary, k vocab.Kind, t sparql.Term, m Multiplicity) string {
	base := sparqlTermString(v, k, t)
	if t.Kind == sparql.Var {
		return base + m.String()
	}
	return base
}

func sparqlTermString(v *vocab.Vocabulary, k vocab.Kind, t sparql.Term) string {
	switch t.Kind {
	case sparql.Const:
		var n string
		if k == vocab.Element {
			n = v.ElementName(t.ID)
		} else {
			n = v.RelationName(t.ID)
		}
		if strings.ContainsAny(n, " \t.") {
			return `"` + n + `"`
		}
		return n
	case sparql.Var:
		return "$" + t.Name
	case sparql.Wildcard:
		return "[]"
	case sparql.Literal:
		return `"` + t.Lit + `"`
	}
	return "?"
}

// SatClause is the SATISFYING statement: the meta-fact-set to mine, the MORE
// flag and the support threshold.
type SatClause struct {
	Patterns []SatPattern
	// More requests additional co-occurring facts (syntactic sugar for
	// `$u $p $v *`, Section 3).
	More bool
	// Support is the significance threshold Θ.
	Support float64
	// Confidence, when positive, additionally requests association rules
	// among the significant patterns at this minimum confidence (the
	// rule-mining extension of the OASSIS-QL language guide):
	// `WITH SUPPORT = 0.4 CONFIDENCE = 0.7`.
	Confidence float64
}

// Query is a parsed, name-resolved OASSIS-QL query.
type Query struct {
	Form OutputForm
	All  bool // SELECT ... ALL: return all significant patterns, not just MSPs
	// Limit caps the answer set at k MSPs (SELECT ... LIMIT k, the
	// paper's top-k future extension); 0 means unlimited. Without
	// DIVERSE the engine stops early once k MSPs are confirmed.
	Limit int
	// Diverse requests the k answers to be picked for semantic diversity
	// rather than discovery order (requires Limit; the engine then mines
	// to completion and selects a max-min-distance subset).
	Diverse bool
	// CrowdFilter restricts which members are asked (the Section 8
	// crowd-selection extension): `FROM CROWD WITH attr = "v" AND ...`
	// keeps only members whose attributes match every conjunct.
	CrowdFilter []AttrMatch
	Where       sparql.BGP
	Satisfying  SatClause

	vocab *vocab.Vocabulary
}

// AttrMatch is one crowd-selection conjunct: the member attribute must
// equal the value.
type AttrMatch struct {
	Attr  string
	Value string
}

// Vocabulary returns the vocabulary the query was resolved against.
func (q *Query) Vocabulary() *vocab.Vocabulary { return q.vocab }

// SatVar describes one variable of the SATISFYING clause.
type SatVar struct {
	Name string
	Kind vocab.Kind
	Mult Multiplicity
}

// SatVars returns the variables occurring in the SATISFYING clause, sorted
// by name. Their multiplicity is the widest used at any occurrence.
func (q *Query) SatVars() []SatVar {
	vars := map[string]*SatVar{}
	note := func(t sparql.Term, k vocab.Kind, m Multiplicity) {
		if t.Kind != sparql.Var {
			return
		}
		sv, ok := vars[t.Name]
		if !ok {
			sv = &SatVar{Name: t.Name, Kind: k, Mult: m}
			vars[t.Name] = sv
			return
		}
		if m.Min < sv.Mult.Min {
			sv.Mult.Min = m.Min
		}
		if m.Max < 0 || (sv.Mult.Max >= 0 && m.Max > sv.Mult.Max) {
			sv.Mult.Max = m.Max
		}
	}
	for _, p := range q.Satisfying.Patterns {
		note(p.S, vocab.Element, p.SMult)
		note(p.P, vocab.Relation, p.PMult)
		note(p.O, vocab.Element, p.OMult)
	}
	out := make([]SatVar, 0, len(vars))
	for _, sv := range vars {
		out = append(out, *sv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String reconstructs query text that parses back to an equivalent query.
func (q *Query) String() string {
	v := q.vocab
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(q.Form.String())
	if q.All {
		sb.WriteString(" ALL")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
		if q.Diverse {
			sb.WriteString(" DIVERSE")
		}
	}
	if len(q.CrowdFilter) > 0 {
		sb.WriteString("\nFROM CROWD WITH ")
		for i, m := range q.CrowdFilter {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			fmt.Fprintf(&sb, "%q = %q", m.Attr, m.Value)
		}
	}
	sb.WriteString("\nWHERE\n")
	for i, p := range q.Where {
		sb.WriteString("  ")
		sb.WriteString(p.String(v))
		if i < len(q.Where)-1 {
			sb.WriteString(".")
		}
		sb.WriteString("\n")
	}
	sb.WriteString("SATISFYING\n")
	for i, p := range q.Satisfying.Patterns {
		sb.WriteString("  ")
		sb.WriteString(p.String(v))
		if i < len(q.Satisfying.Patterns)-1 || q.Satisfying.More {
			sb.WriteString(".")
		}
		sb.WriteString("\n")
	}
	if q.Satisfying.More {
		sb.WriteString("  MORE\n")
	}
	fmt.Fprintf(&sb, "WITH SUPPORT = %g", q.Satisfying.Support)
	if q.Satisfying.Confidence > 0 {
		fmt.Fprintf(&sb, " CONFIDENCE = %g", q.Satisfying.Confidence)
	}
	sb.WriteString("\n")
	return sb.String()
}
