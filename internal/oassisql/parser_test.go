package oassisql_test

import (
	"strings"
	"testing"

	"oassis/internal/oassisql"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// TestParseFigure2 parses the paper's sample query and checks every clause.
func TestParseFigure2(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(paperdata.QueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != oassisql.FactSets {
		t.Error("Form should be FACT-SETS")
	}
	if q.All {
		t.Error("ALL should be off by default")
	}
	if len(q.Where) != 7 {
		t.Fatalf("WHERE has %d patterns, want 7", len(q.Where))
	}
	// First pattern: $w subClassOf* Attraction.
	p0 := q.Where[0]
	if p0.S.Kind != sparql.Var || p0.S.Name != "w" || !p0.Star {
		t.Errorf("pattern 0 = %s", p0.String(v))
	}
	if p0.O.Kind != sparql.Const || p0.O.ID != v.Element("Attraction") {
		t.Errorf("pattern 0 object wrong: %s", p0.String(v))
	}
	// Label pattern: $x hasLabel "child-friendly".
	p3 := q.Where[3]
	if p3.O.Kind != sparql.Literal || p3.O.Lit != "child-friendly" {
		t.Errorf("pattern 3 should have a literal object: %s", p3.String(v))
	}
	// SATISFYING: $y+ doAt $x . [] eatAt $z . MORE
	sat := q.Satisfying
	if len(sat.Patterns) != 2 {
		t.Fatalf("SATISFYING has %d patterns, want 2", len(sat.Patterns))
	}
	if sat.Patterns[0].SMult != oassisql.MultPlus {
		t.Errorf("$y should carry +, got %v", sat.Patterns[0].SMult)
	}
	if sat.Patterns[1].S.Kind != sparql.Wildcard {
		t.Error("second pattern subject should be []")
	}
	if !sat.More {
		t.Error("MORE not parsed")
	}
	if sat.Support != 0.4 {
		t.Errorf("Support = %v, want 0.4", sat.Support)
	}
}

func TestParseSimpleQuery(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 5 || len(q.Satisfying.Patterns) != 1 {
		t.Fatalf("clause sizes: WHERE=%d SAT=%d", len(q.Where), len(q.Satisfying.Patterns))
	}
	if q.Satisfying.More {
		t.Error("simple query has no MORE")
	}
	vars := q.SatVars()
	if len(vars) != 2 || vars[0].Name != "x" || vars[1].Name != "y" {
		t.Fatalf("SatVars = %v", vars)
	}
	if vars[0].Mult != oassisql.MultOne || vars[1].Mult != oassisql.MultOne {
		t.Error("default multiplicity should be exactly-one")
	}
}

func TestParseVariablesAll(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT VARIABLES ALL
WHERE $y subClassOf* Activity
SATISFYING $y doAt "Central Park"
WITH SUPPORT = 0.25`, v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != oassisql.Variables || !q.All {
		t.Errorf("Form=%v All=%v", q.Form, q.All)
	}
	if q.Satisfying.Support != 0.25 {
		t.Errorf("Support = %v", q.Satisfying.Support)
	}
}

func TestParseSupportGeq(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE $y subClassOf* Activity
SATISFYING $y doAt "Central Park"
WITH SUPPORT >= 0.3`, v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Satisfying.Support != 0.3 {
		t.Errorf("Support = %v", q.Satisfying.Support)
	}
}

// TestParseItemsetMiningForm checks the Section 4.1 expressivity claim: an
// empty WHERE with `$x+ [] []` captures classic frequent itemset mining.
func TestParseItemsetMiningForm(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE
SATISFYING $x+ $p $v
WITH SUPPORT = 0.1`, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 0 {
		t.Error("WHERE should be empty")
	}
	vars := q.SatVars()
	if len(vars) != 3 {
		t.Fatalf("SatVars = %v", vars)
	}
	for _, sv := range vars {
		if sv.Name == "p" && sv.Kind != vocab.Relation {
			t.Error("$p should be a relation variable")
		}
	}
}

func TestParseMultiplicityMarkers(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE $y subClassOf* Activity. $x instanceOf Park
SATISFYING $y* doAt $x?
WITH SUPPORT = 0.5`, v)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Satisfying.Patterns[0]
	if p.SMult != oassisql.MultStar {
		t.Errorf("SMult = %v, want *", p.SMult)
	}
	if p.OMult != oassisql.MultOptional {
		t.Errorf("OMult = %v, want ?", p.OMult)
	}
}

func TestMultiplicityAllows(t *testing.T) {
	cases := []struct {
		m    oassisql.Multiplicity
		n    int
		want bool
	}{
		{oassisql.MultOne, 1, true},
		{oassisql.MultOne, 0, false},
		{oassisql.MultOne, 2, false},
		{oassisql.MultPlus, 1, true},
		{oassisql.MultPlus, 5, true},
		{oassisql.MultPlus, 0, false},
		{oassisql.MultStar, 0, true},
		{oassisql.MultStar, 9, true},
		{oassisql.MultOptional, 0, true},
		{oassisql.MultOptional, 1, true},
		{oassisql.MultOptional, 2, false},
	}
	for _, c := range cases {
		if got := c.m.Allows(c.n); got != c.want {
			t.Errorf("%v.Allows(%d) = %v, want %v", c.m, c.n, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	v, _ := paperdata.Build()
	cases := map[string]string{
		"missing SELECT":     `WHERE $x instanceOf Park SATISFYING $x doAt $x WITH SUPPORT = 0.1`,
		"bad form":           `SELECT NOTHING WHERE SATISFYING $x $p $o WITH SUPPORT = 0.1`,
		"missing SATISFYING": `SELECT FACT-SETS WHERE $x instanceOf Park`,
		"missing WITH":       `SELECT FACT-SETS WHERE SATISFYING $x $p $o`,
		"unknown element":    `SELECT FACT-SETS WHERE $x instanceOf Nowhere SATISFYING $x $p $o WITH SUPPORT = 0.1`,
		"unknown relation":   `SELECT FACT-SETS WHERE $x livesIn NYC SATISFYING $x $p $o WITH SUPPORT = 0.1`,
		"support too high":   `SELECT FACT-SETS WHERE SATISFYING $x $p $o WITH SUPPORT = 1.5`,
		"support zero":       `SELECT FACT-SETS WHERE SATISFYING $x $p $o WITH SUPPORT = 0`,
		"empty SATISFYING":   `SELECT FACT-SETS WHERE $x instanceOf Park SATISFYING WITH SUPPORT = 0.1`,
		"mult on constant":   `SELECT FACT-SETS WHERE SATISFYING Biking+ doAt $x WITH SUPPORT = 0.1`,
		"kind clash":         `SELECT FACT-SETS WHERE $a instanceOf Park SATISFYING $x $a $y WITH SUPPORT = 0.1`,
		"bracket relation":   `SELECT FACT-SETS WHERE SATISFYING $x [] $y WITH SUPPORT = 0.1`,
		"trailing input":     `SELECT FACT-SETS WHERE SATISFYING $x $p $o WITH SUPPORT = 0.1 extra`,
		"unterminated quote": `SELECT FACT-SETS WHERE $x instanceOf "Park SATISFYING $x $p $o WITH SUPPORT = 0.1`,
		"lone dollar":        `SELECT FACT-SETS WHERE $ instanceOf Park SATISFYING $x $p $o WITH SUPPORT = 0.1`,
	}
	for name, text := range cases {
		if _, err := oassisql.Parse(text, v); err == nil {
			t.Errorf("%s: parse accepted %q", name, text)
		}
	}
}

// TestRoundTrip checks that printing a parsed query and reparsing yields the
// same structure.
func TestRoundTrip(t *testing.T) {
	v, _ := paperdata.Build()
	for _, text := range []string{paperdata.QueryText, paperdata.SimpleQueryText} {
		q1, err := oassisql.Parse(text, v)
		if err != nil {
			t.Fatal(err)
		}
		printed := q1.String()
		q2, err := oassisql.Parse(printed, v)
		if err != nil {
			t.Fatalf("reparsing printed query failed: %v\n%s", err, printed)
		}
		if q2.String() != printed {
			t.Errorf("round trip not stable:\n%s\nvs\n%s", printed, q2.String())
		}
		if len(q2.Where) != len(q1.Where) || len(q2.Satisfying.Patterns) != len(q1.Satisfying.Patterns) {
			t.Error("round trip changed clause sizes")
		}
		if q2.Satisfying.Support != q1.Satisfying.Support || q2.Satisfying.More != q1.Satisfying.More {
			t.Error("round trip changed SATISFYING attributes")
		}
	}
}

func TestQuotedNamesWithSpaces(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE $y subClassOf* "Ball Game"
SATISFYING $y doAt "Central Park"
WITH SUPPORT = 0.2`, v)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].O.ID != v.Element("Ball Game") {
		t.Error("quoted class name not resolved")
	}
	if q.Satisfying.Patterns[0].O.ID != v.Element("Central Park") {
		t.Error("quoted instance name not resolved")
	}
}

func TestCommentsInQuery(t *testing.T) {
	v, _ := paperdata.Build()
	_, err := oassisql.Parse(`
# find frequent activities
SELECT FACT-SETS
WHERE $y subClassOf* Activity  # classes only
SATISFYING $y doAt "Central Park"
WITH SUPPORT = 0.2`, v)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	v, _ := paperdata.Build()
	_, err := oassisql.Parse(`
select fact-sets
where $y subClassOf* Activity
satisfying $y doAt "Central Park"
with support = 0.2`, v)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSatVarsMergesMultiplicities(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE $y subClassOf* Activity. $x instanceOf Park
SATISFYING $y+ doAt $x. $y eatAt $x
WITH SUPPORT = 0.2`, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, sv := range q.SatVars() {
		if sv.Name == "y" && sv.Mult != oassisql.MultPlus {
			t.Errorf("merged multiplicity for $y = %v, want +", sv.Mult)
		}
	}
}

func TestParseStringBuilder(t *testing.T) {
	v, _ := paperdata.Build()
	q, err := oassisql.Parse(paperdata.QueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT FACT-SETS", "WHERE", "SATISFYING", "MORE", "WITH SUPPORT = 0.4", "$y+"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed query missing %q:\n%s", want, s)
		}
	}
}
