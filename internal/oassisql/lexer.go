// Package oassisql implements the OASSIS-QL query language of Section 3 of
// the paper: a SPARQL-flavoured declarative language whose WHERE clause
// selects variable assignments from the ontology and whose SATISFYING clause
// specifies the data patterns to be mined from the crowd, with multiplicity
// markers (+ * ?), the MORE keyword and a support threshold.
package oassisql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokName    // bare or quoted term name
	tokVar     // $x
	tokNumber  // 0.4
	tokDot     // .
	tokStar    // *
	tokPlus    // +
	tokQuest   // ?
	tokEq      // =
	tokGeq     // >=
	tokBracket // []
	tokString  // "literal" — distinguished from names by context, see below
)

// token carries the lexeme and its position for error reporting.
type token struct {
	kind   tokenKind
	text   string
	quoted bool // text came from a double-quoted string
	line   int
	col    int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokVar:
		return "$" + t.text
	case tokBracket:
		return "[]"
	default:
		return t.text
	}
}

var keywords = map[string]string{
	"SELECT": "SELECT", "FACT-SETS": "FACT-SETS", "VARIABLES": "VARIABLES",
	"ALL": "ALL", "WHERE": "WHERE", "SATISFYING": "SATISFYING",
	"MORE": "MORE", "WITH": "WITH", "SUPPORT": "SUPPORT",
	"LIMIT": "LIMIT", "DIVERSE": "DIVERSE",
	"FROM": "FROM", "CROWD": "CROWD", "AND": "AND",
}

// lex tokenizes a query. Names may be bare (letters, digits, '-', '_' and
// any non-ASCII rune) or double-quoted (allowing spaces and punctuation).
// A bare name that matches a keyword (case-insensitively) lexes as that
// keyword; quote it to use it as a term name.
func lex(input string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if input[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	emit := func(kind tokenKind, text string, quoted bool) {
		toks = append(toks, token{kind: kind, text: text, quoted: quoted, line: line, col: col})
	}
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			advance(1)
		case c == '#': // comment to end of line
			j := strings.IndexByte(input[i:], '\n')
			if j < 0 {
				j = len(input) - i
			}
			advance(j)
		case c == '.':
			emit(tokDot, ".", false)
			advance(1)
		case c == '*':
			emit(tokStar, "*", false)
			advance(1)
		case c == '+':
			emit(tokPlus, "+", false)
			advance(1)
		case c == '?':
			emit(tokQuest, "?", false)
			advance(1)
		case c == '=':
			emit(tokEq, "=", false)
			advance(1)
		case c == '>' && i+1 < len(input) && input[i+1] == '=':
			emit(tokGeq, ">=", false)
			advance(2)
		case c == '[':
			if i+1 < len(input) && input[i+1] == ']' {
				emit(tokBracket, "[]", false)
				advance(2)
			} else {
				return nil, fmt.Errorf("oassisql: %d:%d: '[' must be part of '[]'", line, col)
			}
		case c == '$':
			j := i + 1
			for j < len(input) && isNameByte(input[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("oassisql: %d:%d: '$' must be followed by a variable name", line, col)
			}
			emit(tokVar, input[i+1:j], false)
			advance(j - i)
		case c == '"':
			j := strings.IndexByte(input[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("oassisql: %d:%d: unterminated string", line, col)
			}
			emit(tokName, input[i+1:i+1+j], true)
			advance(j + 2)
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			// A trailing '.' is the pattern separator, not part of
			// the number (e.g. "0.4." at the end of a clause).
			text := input[i:j]
			trimmed := strings.TrimRight(text, ".")
			if strings.Count(trimmed, ".") > 1 {
				return nil, fmt.Errorf("oassisql: %d:%d: malformed number %q", line, col, text)
			}
			emit(tokNumber, trimmed, false)
			advance(len(trimmed))
		case isNameByte(c):
			j := i
			for j < len(input) && isNameByte(input[j]) {
				j++
			}
			word := input[i:j]
			if kw, ok := keywords[strings.ToUpper(word)]; ok {
				emit(tokKeyword, kw, false)
			} else {
				emit(tokName, word, false)
			}
			advance(j - i)
		default:
			return nil, fmt.Errorf("oassisql: %d:%d: unexpected character %q", line, col, rune(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

// isNameByte reports bytes allowed in bare names: letters, digits, '-', '_'
// and all non-ASCII bytes (so UTF-8 names work unquoted).
func isNameByte(c byte) bool {
	if c >= 0x80 {
		return true
	}
	r := rune(c)
	return unicode.IsLetter(r) || unicode.IsDigit(r) || c == '-' || c == '_' || c == '\''
}
