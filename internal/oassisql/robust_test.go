package oassisql_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oassis/internal/oassisql"
	"oassis/internal/paperdata"
)

// TestParserNeverPanics feeds arbitrary byte strings to the parser: every
// input must produce a query or an error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	v, _ := paperdata.Build()
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = oassisql.Parse(input, v)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnTokenSoup shuffles fragments of valid queries —
// inputs that lex cleanly but parse wrong — and checks for panics.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	v, _ := paperdata.Build()
	fragments := strings.Fields(strings.ReplaceAll(paperdata.QueryText, "\n", " "))
	fragments = append(fragments, "LIMIT", "3", "DIVERSE", "CONFIDENCE", "FROM", "CROWD", "AND",
		`"child-friendly"`, "[]", "$y+", ">=", "*", ".")
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(14)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		input := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on token soup %q: %v", input, r)
				}
			}()
			_, _ = oassisql.Parse(input, v)
		}()
	}
}

// TestParseOfPrintedRandomQueries: queries assembled from random valid
// pieces that do parse must round-trip through the printer.
func TestParseOfPrintedRandomQueries(t *testing.T) {
	v, _ := paperdata.Build()
	rng := rand.New(rand.NewSource(43))
	activities := []string{"Sport", "Biking", "Food", "\"Ball Game\"", "Basketball"}
	places := []string{"\"Central Park\"", "\"Bronx Zoo\"", "Park"}
	mults := []string{"", "+", "*", "?"}
	parsed := 0
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		sb.WriteString("SELECT FACT-SETS")
		if rng.Intn(2) == 0 {
			sb.WriteString(" ALL")
		}
		if rng.Intn(3) == 0 {
			sb.WriteString(" LIMIT 3")
		}
		sb.WriteString("\nWHERE $y subClassOf* Activity. $x instanceOf ")
		sb.WriteString([]string{"Park", "Zoo", "Restaurant"}[rng.Intn(3)])
		sb.WriteString("\nSATISFYING $y")
		sb.WriteString(mults[rng.Intn(len(mults))])
		sb.WriteString(" doAt ")
		if rng.Intn(2) == 0 {
			sb.WriteString("$x")
		} else {
			sb.WriteString(places[rng.Intn(len(places))])
		}
		if rng.Intn(3) == 0 {
			sb.WriteString(". ")
			sb.WriteString(activities[rng.Intn(len(activities))])
			sb.WriteString(" doAt $x")
		}
		sb.WriteString("\nWITH SUPPORT = 0.")
		sb.WriteString([]string{"1", "25", "4", "5"}[rng.Intn(4)])
		q, err := oassisql.Parse(sb.String(), v)
		if err != nil {
			continue // some combinations are legitimately invalid
		}
		parsed++
		q2, err := oassisql.Parse(q.String(), v)
		if err != nil {
			t.Fatalf("printed query does not reparse: %v\n%s", err, q.String())
		}
		if q2.String() != q.String() {
			t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", q.String(), q2.String())
		}
	}
	if parsed < 100 {
		t.Fatalf("only %d random queries parsed; generator too strict", parsed)
	}
}
