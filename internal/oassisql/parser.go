package oassisql

import (
	"fmt"
	"strconv"
	"strings"

	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// Parse parses and name-resolves an OASSIS-QL query against the vocabulary.
// All term names mentioned by the query must exist in the vocabulary.
func Parse(input string, v *vocab.Vocabulary) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, v: v}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	v    *vocab.Vocabulary
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("oassisql: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf(t, "expected %s, got %q", kw, t)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{vocab: p.v}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	t := p.next()
	switch {
	case t.kind == tokKeyword && t.text == "FACT-SETS":
		q.Form = FactSets
	case t.kind == tokKeyword && t.text == "VARIABLES":
		q.Form = Variables
	default:
		return nil, p.errf(t, "expected FACT-SETS or VARIABLES, got %q", t)
	}
	if p.cur().kind == tokKeyword && p.cur().text == "ALL" {
		p.next()
		q.All = true
	}
	if p.cur().kind == tokKeyword && p.cur().text == "LIMIT" {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf(t, "expected a count after LIMIT, got %q", t)
		}
		k, err := strconv.Atoi(t.text)
		if err != nil || k <= 0 {
			return nil, p.errf(t, "LIMIT wants a positive integer, got %q", t.text)
		}
		q.Limit = k
		if p.cur().kind == tokKeyword && p.cur().text == "DIVERSE" {
			p.next()
			q.Diverse = true
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "FROM" {
		p.next()
		if err := p.expectKeyword("CROWD"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		for {
			attr := p.next()
			if attr.kind != tokName {
				return nil, p.errf(attr, "expected an attribute name, got %q", attr)
			}
			eq := p.next()
			if eq.kind != tokEq {
				return nil, p.errf(eq, "expected = in crowd selection, got %q", eq)
			}
			val := p.next()
			if val.kind != tokName {
				return nil, p.errf(val, "expected an attribute value, got %q", val)
			}
			q.CrowdFilter = append(q.CrowdFilter, AttrMatch{Attr: attr.text, Value: val.text})
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	q.Where = where
	if err := p.expectKeyword("SATISFYING"); err != nil {
		return nil, err
	}
	sat, err := p.parseSatisfying()
	if err != nil {
		return nil, err
	}
	q.Satisfying = sat
	return q, nil
}

// parseWhere reads triple patterns separated by dots until SATISFYING.
func (p *parser) parseWhere() (sparql.BGP, error) {
	var bgp sparql.BGP
	for {
		if p.cur().kind == tokKeyword && p.cur().text == "SATISFYING" {
			return bgp, nil
		}
		if p.cur().kind == tokEOF {
			return nil, p.errf(p.cur(), "missing SATISFYING clause")
		}
		pat, err := p.parseWherePattern()
		if err != nil {
			return nil, err
		}
		bgp = append(bgp, pat)
		if p.cur().kind == tokDot {
			p.next()
		}
	}
}

func (p *parser) parseWherePattern() (sparql.Pattern, error) {
	var pat sparql.Pattern
	s, err := p.parseTerm(vocab.Element, false)
	if err != nil {
		return pat, err
	}
	pr, star, err := p.parsePredicate()
	if err != nil {
		return pat, err
	}
	o, err := p.parseTerm(vocab.Element, true)
	if err != nil {
		return pat, err
	}
	return sparql.Pattern{S: s, P: pr, O: o, Star: star}, nil
}

// parsePredicate reads a relation position: a relation name (optionally
// star-suffixed as a path) or a variable.
func (p *parser) parsePredicate() (sparql.Term, bool, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return sparql.VarTerm(t.text), false, nil
	case tokName:
		id := p.v.Relation(t.text)
		if id == vocab.NoTerm {
			return sparql.Term{}, false, p.errf(t, "unknown relation %q", t.text)
		}
		star := false
		if p.cur().kind == tokStar {
			p.next()
			star = true
		}
		return sparql.ConstTerm(id), star, nil
	default:
		return sparql.Term{}, false, p.errf(t, "expected relation or variable, got %q", t)
	}
}

// parseTerm reads a subject/object position. Literals are only meaningful as
// objects (allowLit).
func (p *parser) parseTerm(k vocab.Kind, allowLit bool) (sparql.Term, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return sparql.VarTerm(t.text), nil
	case tokBracket:
		return sparql.WildcardTerm(), nil
	case tokName:
		if id := p.v.Element(t.text); id != vocab.NoTerm {
			return sparql.ConstTerm(id), nil
		}
		if t.quoted && allowLit {
			// A quoted string that names no element is a literal.
			return sparql.LiteralTerm(t.text), nil
		}
		return sparql.Term{}, p.errf(t, "unknown element %q", t.text)
	default:
		return sparql.Term{}, p.errf(t, "expected element, variable or [], got %q", t)
	}
}

// parseSatisfying reads the SATISFYING clause up to and including
// WITH SUPPORT.
func (p *parser) parseSatisfying() (SatClause, error) {
	var sat SatClause
	for {
		t := p.cur()
		if t.kind == tokKeyword && t.text == "MORE" {
			p.next()
			sat.More = true
			if p.cur().kind == tokDot {
				p.next()
			}
			continue
		}
		if t.kind == tokKeyword && t.text == "WITH" {
			break
		}
		if t.kind == tokEOF {
			return sat, p.errf(t, "missing WITH SUPPORT")
		}
		pat, err := p.parseSatPattern()
		if err != nil {
			return sat, err
		}
		sat.Patterns = append(sat.Patterns, pat)
		if p.cur().kind == tokDot {
			p.next()
		}
	}
	if err := p.expectKeyword("WITH"); err != nil {
		return sat, err
	}
	if err := p.expectKeyword("SUPPORT"); err != nil {
		return sat, err
	}
	t := p.next()
	if t.kind != tokEq && t.kind != tokGeq {
		return sat, p.errf(t, "expected = or >= after SUPPORT, got %q", t)
	}
	t = p.next()
	if t.kind != tokNumber {
		return sat, p.errf(t, "expected a support threshold, got %q", t)
	}
	thr, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return sat, p.errf(t, "malformed support threshold %q", t.text)
	}
	sat.Support = thr
	// Optional rule-mining extension: CONFIDENCE = c.
	if p.cur().kind == tokName && strings.EqualFold(p.cur().text, "CONFIDENCE") {
		p.next()
		t = p.next()
		if t.kind != tokEq && t.kind != tokGeq {
			return sat, p.errf(t, "expected = or >= after CONFIDENCE, got %q", t)
		}
		t = p.next()
		if t.kind != tokNumber {
			return sat, p.errf(t, "expected a confidence threshold, got %q", t)
		}
		conf, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return sat, p.errf(t, "malformed confidence threshold %q", t.text)
		}
		sat.Confidence = conf
	}
	if t := p.next(); t.kind != tokEOF {
		return sat, p.errf(t, "unexpected trailing input %q", t)
	}
	return sat, nil
}

func (p *parser) parseSatPattern() (SatPattern, error) {
	var pat SatPattern
	var err error
	pat.S, pat.SMult, err = p.parseSatTerm(vocab.Element)
	if err != nil {
		return pat, err
	}
	pat.P, pat.PMult, err = p.parseSatTerm(vocab.Relation)
	if err != nil {
		return pat, err
	}
	pat.O, pat.OMult, err = p.parseSatTerm(vocab.Element)
	if err != nil {
		return pat, err
	}
	return pat, nil
}

// parseSatTerm reads a SATISFYING position with an optional multiplicity
// suffix on variables.
func (p *parser) parseSatTerm(k vocab.Kind) (sparql.Term, Multiplicity, error) {
	t := p.next()
	var term sparql.Term
	switch t.kind {
	case tokVar:
		term = sparql.VarTerm(t.text)
	case tokBracket:
		if k == vocab.Relation {
			return term, MultOne, p.errf(t, "[] not allowed in relation position of SATISFYING")
		}
		term = sparql.WildcardTerm()
	case tokName:
		var id vocab.TermID
		if k == vocab.Element {
			id = p.v.Element(t.text)
		} else {
			id = p.v.Relation(t.text)
		}
		if id == vocab.NoTerm {
			return term, MultOne, p.errf(t, "unknown %s %q", k, t.text)
		}
		term = sparql.ConstTerm(id)
	default:
		return term, MultOne, p.errf(t, "expected term, got %q", t)
	}
	mult := MultOne
	switch p.cur().kind {
	case tokPlus:
		p.next()
		mult = MultPlus
	case tokStar:
		p.next()
		mult = MultStar
	case tokQuest:
		p.next()
		mult = MultOptional
	}
	if mult != MultOne && term.Kind != sparql.Var {
		return term, MultOne, p.errf(t, "multiplicity marker requires a variable")
	}
	return term, mult, nil
}

// validate performs the semantic checks that need the whole query.
func validate(q *Query) error {
	if q.Satisfying.Support <= 0 || q.Satisfying.Support > 1 {
		return fmt.Errorf("oassisql: support threshold %g out of range (0, 1]", q.Satisfying.Support)
	}
	if c := q.Satisfying.Confidence; c < 0 || c > 1 {
		return fmt.Errorf("oassisql: confidence threshold %g out of range [0, 1]", c)
	}
	if len(q.Satisfying.Patterns) == 0 {
		return fmt.Errorf("oassisql: SATISFYING clause has no patterns")
	}
	whereKinds, err := sparql.VarKinds(q.Where)
	if err != nil {
		return err
	}
	// A SATISFYING variable may be unconstrained by WHERE (its domain is
	// then the whole namespace — this is how OASSIS-QL captures standard
	// frequent itemset mining, Section 4.1), but when it does occur in
	// WHERE its namespace must agree between the clauses.
	for _, sv := range q.SatVars() {
		if k, ok := whereKinds[sv.Name]; ok && k != sv.Kind {
			return fmt.Errorf("oassisql: variable $%s used as %s in WHERE but %s in SATISFYING",
				sv.Name, k, sv.Kind)
		}
	}
	return nil
}
