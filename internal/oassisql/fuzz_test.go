package oassisql_test

import (
	"testing"

	"oassis/internal/oassisql"
	"oassis/internal/paperdata"
)

// FuzzParse drives the lexer+parser with arbitrary inputs; any panic is a
// bug (run with `go test -fuzz=FuzzParse ./internal/oassisql`).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		paperdata.QueryText,
		paperdata.SimpleQueryText,
		"SELECT FACT-SETS WHERE SATISFYING $x $p $o WITH SUPPORT = 0.1",
		`SELECT VARIABLES ALL LIMIT 3 DIVERSE FROM CROWD WITH a = "b" WHERE SATISFYING $x+ doAt [] . MORE WITH SUPPORT >= 0.5 CONFIDENCE = 0.9`,
		"SELECT", "$", `"unterminated`, "0.4.0.4", "[][]",
	} {
		f.Add(seed)
	}
	v, _ := paperdata.Build()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := oassisql.Parse(input, v)
		if err != nil {
			return
		}
		// Anything that parses must print and reparse.
		if _, err := oassisql.Parse(q.String(), v); err != nil {
			t.Fatalf("printed query does not reparse: %v\n%s", err, q.String())
		}
	})
}
