// Package journal turns a recorded flight-recorder event stream back into
// a live mining run. The kernel is a pure event fold — its entire state is
// a function of the ask/reply sequence — so replaying the recorded replies
// through a fresh kernel must reconstruct the run exactly. Replay is the
// correctness spine the future persistence layer inherits: if the journal
// is sufficient to rebuild Stats, MSP sets and per-member transcripts
// byte-identically, it is sufficient to recover a crashed run.
package journal

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/vocab"
)

// Members extracts the run's member list from its run_start event.
func Members(events []obs.Event) ([]string, error) {
	for i := range events {
		if events[i].Kind == obs.EvRunStart {
			return events[i].Members, nil
		}
	}
	return nil, fmt.Errorf("journal: no run_start event (was the ring truncated? use the JSONL sink for full runs)")
}

// FilterRun returns the events belonging to one run, in stream order.
// Platform store events (run 0) are excluded.
func FilterRun(events []obs.Event, run int64) []obs.Event {
	var out []obs.Event
	for i := range events {
		if events[i].Run == run {
			out = append(out, events[i])
		}
	}
	return out
}

// Runs lists the run IDs seen in the stream, in first-appearance order.
func Runs(events []obs.Event) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for i := range events {
		r := events[i].Run
		if r != 0 && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// player is the replay broker: it resolves each regenerated Ask with the
// reply the journal recorded for that ask ID. The kernel regenerates the
// ask sequence itself (selection is deterministic given the replies), so
// the player only matches by ID — and cross-checks the regenerated ask
// against the recorded ask event to catch configuration drift early.
type player struct {
	asks    map[int64]*obs.Event // ask ID -> recorded ask event
	replies map[int64]*obs.Event // ask ID -> recorded reply/timeout/departure
	errs    []error
}

// Post resolves the ask from the recorded stream. A missing or mismatched
// recording is reported as an error and answered with a Departed reply, so
// a truncated journal degrades to a short run instead of a hang.
func (p *player) Post(ask *crowd.Ask, deliver func(crowd.Reply)) {
	if rec := p.asks[ask.ID]; rec != nil {
		if rec.Member != ask.Member {
			p.errs = append(p.errs, fmt.Errorf("ask %d: regenerated for member %q, recorded for %q", ask.ID, ask.Member, rec.Member))
		}
		if want := askKindWire(ask.Kind); rec.QKind != want {
			p.errs = append(p.errs, fmt.Errorf("ask %d: regenerated kind %q, recorded %q", ask.ID, want, rec.QKind))
		}
		if rec.Options != len(ask.Options) {
			p.errs = append(p.errs, fmt.Errorf("ask %d: regenerated %d options, recorded %d", ask.ID, len(ask.Options), rec.Options))
		}
	} else {
		p.errs = append(p.errs, fmt.Errorf("ask %d (member %q): not in the recorded stream", ask.ID, ask.Member))
	}
	e := p.replies[ask.ID]
	if e == nil {
		p.errs = append(p.errs, fmt.Errorf("ask %d (member %q): no recorded reply", ask.ID, ask.Member))
		deliver(crowd.Reply{Ask: ask, Outcome: crowd.Departed, Choice: -1})
		return
	}
	outcome, err := parseOutcome(e.Outcome)
	if err != nil {
		p.errs = append(p.errs, fmt.Errorf("ask %d: %w", ask.ID, err))
		deliver(crowd.Reply{Ask: ask, Outcome: crowd.Departed, Choice: -1})
		return
	}
	pruned := make([]vocab.TermID, len(e.Pruned))
	for i, t := range e.Pruned {
		pruned[i] = vocab.TermID(t)
	}
	if len(pruned) == 0 {
		pruned = nil
	}
	deliver(crowd.Reply{
		Ask:     ask,
		Outcome: outcome,
		Support: e.Support,
		Choice:  e.Choice,
		Pruned:  pruned,
		Elapsed: time.Duration(e.Elapsed),
	})
}

func askKindWire(k crowd.AskKind) string {
	if k == crowd.SpecializeAsk {
		return "specialize"
	}
	return "concrete"
}

func parseOutcome(s string) (crowd.Outcome, error) {
	switch s {
	case "answered", "":
		return crowd.Answered, nil
	case "timedout":
		return crowd.TimedOut, nil
	case "departed":
		return crowd.Departed, nil
	}
	return 0, fmt.Errorf("unknown recorded outcome %q", s)
}

// Replay re-folds one run's recorded event stream through a fresh kernel
// over the given space and configuration, which must match the recorded
// run's (same seed, theta, aggregator construction, deadlines — the
// run_start event carries seed and theta for cross-checking). The
// configuration's Obs and OnMSP hooks are stripped: replay is a pure
// reconstruction, not a re-observation. Returns the reconstructed Result
// and an error aggregating every stream inconsistency encountered.
func Replay(events []obs.Event, sp *assign.Space, cfg core.EngineConfig) (*core.Result, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("journal: empty event stream")
	}
	if events[0].Kind != obs.EvRunStart {
		return nil, fmt.Errorf("journal: stream starts with %q, not run_start (ring truncation — use the JSONL sink for replayable runs)", events[0].Kind)
	}
	start := &events[0]
	if cfg.Seed != start.Seed {
		return nil, fmt.Errorf("journal: config seed %d does not match recorded seed %d", cfg.Seed, start.Seed)
	}
	if start.Theta != 0 && cfg.Theta != start.Theta {
		return nil, fmt.Errorf("journal: config theta %g does not match recorded theta %g", cfg.Theta, start.Theta)
	}
	ids := start.Members
	if len(ids) == 0 {
		return nil, fmt.Errorf("journal: run_start carries no members")
	}

	p := &player{
		asks:    make(map[int64]*obs.Event),
		replies: make(map[int64]*obs.Event),
	}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case obs.EvAsk:
			p.asks[e.Ask] = e
		case obs.EvReply, obs.EvTimeout, obs.EvDeparture:
			if prev := p.replies[e.Ask]; prev != nil {
				p.errs = append(p.errs, fmt.Errorf("ask %d: duplicate recorded replies (seq %d and %d)", e.Ask, prev.Seq, e.Seq))
			}
			p.replies[e.Ask] = e
		}
	}

	cfg.Obs = nil
	cfg.OnMSP = nil
	cfg.Clock = nil
	eng := core.NewBrokerEngine(sp, ids, cfg)
	res := eng.RunWith(p)
	if len(p.errs) > 0 {
		msgs := make([]string, len(p.errs))
		for i, err := range p.errs {
			msgs[i] = err.Error()
		}
		return res, fmt.Errorf("journal replay: %d inconsistencies:\n  %s", len(p.errs), strings.Join(msgs, "\n  "))
	}
	return res, nil
}

// VerifyIdentity asserts the replayed result reconstructs the live run
// byte-identically on everything that is kernel state: Stats, the MSP and
// valid-MSP key sets, the significant set, the support map and the
// per-member transcripts. Trace and Curve are observability, not state,
// and are deliberately not compared.
func VerifyIdentity(live, replayed *core.Result) error {
	if live == nil || replayed == nil {
		return fmt.Errorf("journal verify: nil result")
	}
	if !reflect.DeepEqual(live.Stats, replayed.Stats) {
		return fmt.Errorf("journal verify: stats diverge\nlive:     %+v\nreplayed: %+v", live.Stats, replayed.Stats)
	}
	if err := compareKeys("MSPs", keysOf(live.MSPs), keysOf(replayed.MSPs)); err != nil {
		return err
	}
	if err := compareKeys("ValidMSPs", keysOf(live.ValidMSPs), keysOf(replayed.ValidMSPs)); err != nil {
		return err
	}
	if err := compareKeys("Significant", keysOf(live.Significant), keysOf(replayed.Significant)); err != nil {
		return err
	}
	if !reflect.DeepEqual(live.Supports, replayed.Supports) {
		return fmt.Errorf("journal verify: support maps diverge (%d vs %d entries)", len(live.Supports), len(replayed.Supports))
	}
	if !reflect.DeepEqual(live.Transcripts, replayed.Transcripts) {
		return fmt.Errorf("journal verify: transcripts diverge\nlive:     %v\nreplayed: %v", live.Transcripts, replayed.Transcripts)
	}
	return nil
}

func keysOf(as []*assign.Assignment) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Key()
	}
	sort.Strings(out)
	return out
}

func compareKeys(what string, live, replayed []string) error {
	if !reflect.DeepEqual(live, replayed) {
		return fmt.Errorf("journal verify: %s diverge\nlive:     %v\nreplayed: %v", what, live, replayed)
	}
	return nil
}
