package synth_test

import (
	"testing"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/synth"
)

func TestDAGGeneration(t *testing.T) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 50, Depth: 4, MSPPercent: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes < 50 {
		t.Fatalf("DAG has only %d nodes", d.Nodes)
	}
	// All nodes valid (class-level query).
	if got := len(d.Space.Valid()); got != d.Nodes {
		t.Errorf("valid = %d, nodes = %d; class-level query should make all valid", got, d.Nodes)
	}
	// Planted count ≈ 5% of nodes.
	want := int(0.05 * float64(d.Nodes))
	if len(d.Planted) < want-1 || len(d.Planted) > want+1 {
		t.Errorf("planted %d MSPs, want ≈ %d", len(d.Planted), want)
	}
	// Planted set is an antichain.
	for i, a := range d.Planted {
		for j, b := range d.Planted {
			if i != j && d.Space.Leq(a, b) {
				t.Fatal("planted MSPs are not an antichain")
			}
		}
	}
}

func TestDAGConfigValidation(t *testing.T) {
	if _, err := synth.NewDAG(synth.DAGConfig{Width: 1, Depth: 1}); err == nil {
		t.Fatal("tiny config accepted")
	}
}

func TestDAGDeterminism(t *testing.T) {
	cfg := synth.DAGConfig{Width: 40, Depth: 4, MSPPercent: 0.05, Seed: 9}
	d1, err := synth.NewDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := synth.NewDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Nodes != d2.Nodes || len(d1.Planted) != len(d2.Planted) {
		t.Fatal("same seed produced different DAGs")
	}
	for i := range d1.Planted {
		if d1.Planted[i].Key() != d2.Planted[i].Key() {
			t.Fatal("same seed produced different planted MSPs")
		}
	}
}

func TestOracleRealizesGroundTruth(t *testing.T) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 40, Depth: 4, MSPPercent: 0.05, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := d.Oracle(0, 1)
	for _, p := range d.Planted {
		if r := o.AskConcrete(d.Space.Instantiate(p)); r.Support < 1 {
			t.Fatal("oracle rejects a planted MSP")
		}
		// Strict successors of a planted MSP must be insignificant.
		for _, s := range d.Space.Successors(p) {
			if r := o.AskConcrete(d.Space.Instantiate(s)); r.Support > 0 {
				t.Fatalf("oracle accepts a successor of a planted MSP")
			}
		}
	}
	// Roots generalize some planted MSP, hence significant.
	for _, r := range d.Space.Roots() {
		if resp := o.AskConcrete(d.Space.Instantiate(r)); resp.Support < 1 {
			t.Fatal("oracle rejects the root above planted MSPs")
		}
	}
}

// TestVerticalRecoversPlantedMSPs is the end-to-end synthetic experiment:
// the vertical algorithm must discover exactly the planted ground truth.
func TestVerticalRecoversPlantedMSPs(t *testing.T) {
	for _, dist := range []synth.Distribution{synth.Uniform, synth.Near, synth.Far} {
		d, err := synth.NewDAG(synth.DAGConfig{
			Width: 60, Depth: 5, MSPPercent: 0.04, Distribution: dist, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := (&core.SingleUser{
			Space: d.Space, Member: d.Oracle(0, 1), Theta: 0.5, Seed: 4,
		}).Run()
		want := map[string]bool{}
		for _, p := range d.Planted {
			want[p.Key()] = true
		}
		if len(res.MSPs) != len(want) {
			t.Fatalf("%v: found %d MSPs, planted %d", dist, len(res.MSPs), len(want))
		}
		for _, m := range res.MSPs {
			if !want[m.Key()] {
				t.Errorf("%v: found non-planted MSP %s", dist, m.Key())
			}
		}
	}
}

func TestVerticalRecoversMultiplicityMSPs(t *testing.T) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 30, Depth: 4, MSPPercent: 0.03,
		MultiMSPPercent: 0.02, MultiMSPSize: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	hasMulti := false
	for _, p := range d.Planted {
		if len(p.Values("y")) > 1 {
			hasMulti = true
		}
	}
	if !hasMulti {
		t.Fatal("no multiplicity MSPs planted")
	}
	res := (&core.SingleUser{
		Space: d.Space, Member: d.Oracle(0, 1), Theta: 0.5, Seed: 4,
	}).Run()
	want := map[string]bool{}
	for _, p := range d.Planted {
		want[p.Key()] = true
	}
	if len(res.MSPs) != len(want) {
		t.Fatalf("found %d MSPs, planted %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("found non-planted MSP %s", m.Key())
		}
	}
}

func TestOraclePruning(t *testing.T) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 30, Depth: 4, MSPPercent: 0.05, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := d.Oracle(1.0, 1)
	pruned := 0
	// Ask about every single-node assignment; irrelevant ones should
	// trigger pruning clicks, and never about ground-truth ancestors.
	relevantKeys := map[string]bool{}
	for _, p := range d.Planted {
		relevantKeys[p.Key()] = true
	}
	for _, val := range d.Space.Valid() {
		resp := o.AskConcrete(d.Space.Instantiate(val))
		if len(resp.Pruned) > 0 {
			pruned++
			if resp.Support > 0 {
				t.Fatal("pruned a significant assignment")
			}
		}
	}
	if pruned == 0 {
		t.Fatal("PruneRatio 1.0 never pruned")
	}
}

func TestDomainGeneration(t *testing.T) {
	for _, cfg := range []synth.DomainConfig{
		synth.Travel(8, 1),
		synth.Culinary(8, 2),
		synth.SelfTreatment(8, 3),
	} {
		d, err := synth.NewDomain(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(d.Members) != 8 {
			t.Errorf("%s: %d members", cfg.Name, len(d.Members))
		}
		if len(d.Space.Valid()) == 0 {
			t.Errorf("%s: empty valid set", cfg.Name)
		}
		if len(d.Patterns) != cfg.Patterns {
			t.Errorf("%s: %d patterns", cfg.Name, len(d.Patterns))
		}
		// Members must have plausible personal databases: planted
		// patterns should show nonzero support for at least one member.
		found := false
		for _, m := range d.Members {
			sm := m.(*crowd.SimMember)
			for _, p := range d.Patterns {
				fs := ontology.NewFactSet(ontology.Fact{
					S: p.Subject, P: d.Vocab.Relation(cfg.Relation), O: p.Object,
				})
				if sm.TrueSupport(fs) > 0 {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("%s: planted patterns absent from all personal DBs", cfg.Name)
		}
	}
}

// TestDomainDAGSizes checks that the generated eager DAG sizes land near the
// paper's reported 4773 / 10512 / 2307 nodes (within a factor of ~1.5).
func TestDomainDAGSizes(t *testing.T) {
	sizes := map[string][2]int{
		"travel":         {3200, 7200},
		"culinary":       {7000, 15800},
		"self-treatment": {1500, 3500},
	}
	for _, cfg := range []synth.DomainConfig{
		synth.Travel(2, 1), synth.Culinary(2, 2), synth.SelfTreatment(2, 3),
	} {
		d, err := synth.NewDomain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := eagerNodes(d.Space)
		lo, hi := sizes[cfg.Name][0], sizes[cfg.Name][1]
		if n < lo || n > hi {
			t.Errorf("%s: eager DAG size %d outside [%d, %d]", cfg.Name, n, lo, hi)
		}
	}
}

// eagerNodes counts the multiplicity-1 closure: generalizations of valid
// assignments per variable, multiplied out.
func eagerNodes(sp *assign.Space) int {
	counts := map[string]map[int32]bool{}
	v := sp.Vocabulary()
	for _, a := range sp.Valid() {
		for _, vs := range sp.Vars() {
			vals := a.Values(vs.Name)
			if len(vals) != 1 {
				continue
			}
			m := counts[vs.Name]
			if m == nil {
				m = map[int32]bool{}
				counts[vs.Name] = m
			}
			m[int32(vals[0])] = true
			for _, anc := range v.ElementAncestors(vals[0]) {
				m[int32(anc)] = true
			}
		}
	}
	n := 1
	for _, m := range counts {
		n *= len(m)
	}
	return n
}

func TestDomainTravelHasMorePool(t *testing.T) {
	d, err := synth.NewDomain(synth.Travel(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MorePool) == 0 {
		t.Fatal("travel domain should carry a MORE pool")
	}
	if !d.Query.Satisfying.More {
		t.Fatal("travel query should use MORE")
	}
}

// TestDomainEndToEnd runs the multi-user engine on a small self-treatment
// crowd and checks that the strongest planted pattern surfaces among the
// significant assignments.
func TestDomainEndToEnd(t *testing.T) {
	d, err := synth.NewDomain(synth.SelfTreatment(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(d.Space, d.Members, core.EngineConfig{
		Theta:      0.2,
		Aggregator: crowd.NewMeanAggregator(5, 0.2),
		Seed:       1,
	})
	res := eng.Run()
	if res.Stats.Questions == 0 {
		t.Fatal("no questions asked")
	}
	if len(res.MSPs) == 0 {
		t.Fatal("no MSPs found")
	}
	// MSPs must be maximal: pairwise incomparable.
	for i, a := range res.MSPs {
		for j, b := range res.MSPs {
			if i != j && d.Space.Leq(a, b) {
				t.Fatal("MSP output is not an antichain")
			}
		}
	}
}
