package synth

import (
	"bytes"
	"strings"
	"testing"

	"oassis/internal/obs"
	"oassis/internal/ontology"
)

func TestWriteScaleNTriplesDeterministic(t *testing.T) {
	cfg := SmokeScale()
	var a, b bytes.Buffer
	if err := WriteScaleNTriples(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := WriteScaleNTriples(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("generator is not deterministic")
	}
	if got := strings.Count(a.String(), "\n"); got != cfg.TripleCount() {
		t.Fatalf("emitted %d lines, TripleCount says %d", got, cfg.TripleCount())
	}
}

func TestScaleIngestSerialParallelAgree(t *testing.T) {
	cfg := SmokeScale()
	var buf bytes.Buffer
	if err := WriteScaleNTriples(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	sv, ss, sstats, err := ontology.LoadNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pv, ps, pstats, err := ontology.LoadNTriplesParallel(bytes.NewReader(buf.Bytes()), ontology.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *sstats != *pstats {
		t.Fatalf("stats divergence: %+v vs %+v", *sstats, *pstats)
	}
	if sv.NumElements() != pv.NumElements() || sv.NumRelations() != pv.NumRelations() {
		t.Fatalf("vocab divergence: (%d,%d) vs (%d,%d)",
			sv.NumElements(), sv.NumRelations(), pv.NumElements(), pv.NumRelations())
	}
	if ss.Size() != ps.Size() {
		t.Fatalf("store divergence: %d vs %d facts", ss.Size(), ps.Size())
	}
	if sstats.Triples != cfg.TripleCount() {
		t.Fatalf("parsed %d triples, generator claims %d", sstats.Triples, cfg.TripleCount())
	}
	// The generated names must round-trip into the vocabulary, including
	// the percent-encoded IRI spellings.
	for _, name := range []string{ScaleClassName(3), ScaleClassName(10), ScaleInstName(4), ScaleInstName(0)} {
		if pv.Element(name) == 0 && name != pv.ElementName(0) {
			t.Fatalf("element %q missing from vocabulary", name)
		}
	}
}

func TestSampleFleetShapes(t *testing.T) {
	scale := SmokeScale()
	fleet := SampleFleet(scale, FleetConfig{Queries: 400, Seed: 9})
	if len(fleet) != 400 {
		t.Fatalf("sampled %d queries, want 400", len(fleet))
	}
	counts := map[int]int{}
	sem := 0
	texts := map[string]bool{}
	for _, fq := range fleet {
		if fq.Patterns < 1 || fq.Patterns > 4 {
			t.Fatalf("query with %d patterns outside [1,4]", fq.Patterns)
		}
		counts[fq.Patterns]++
		if fq.Semantic {
			sem++
		}
		texts[fq.Text] = true
	}
	// Single-pattern stars must dominate per the log-derived distribution.
	if counts[1] <= counts[2] || counts[2] <= counts[3]+counts[4] {
		t.Fatalf("shape distribution off: %v", counts)
	}
	if sem == 0 || sem == len(fleet) {
		t.Fatalf("semantic mix degenerate: %d of %d", sem, len(fleet))
	}
	// Distinctness is (text, mode); texts alone may coincide across modes
	// but the overwhelming majority must be unique.
	if len(texts) < 350 {
		t.Fatalf("only %d distinct texts of 400", len(texts))
	}
}

func loadSmokeStore(t testing.TB) *ontology.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteScaleNTriples(&buf, SmokeScale()); err != nil {
		t.Fatal(err)
	}
	_, store, _, err := ontology.LoadNTriplesParallel(bytes.NewReader(buf.Bytes()), ontology.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestRunFleet(t *testing.T) {
	store := loadSmokeStore(t)
	o := obs.New()
	cfg := FleetConfig{Queries: 150, Executions: 600, Workers: 4, Seed: 5, Obs: o}
	fleet := SampleFleet(SmokeScale(), cfg)
	rep, err := RunFleet(store, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctQueries != 150 || rep.Executions != 600 {
		t.Fatalf("report counts off: %+v", rep)
	}
	if rep.PlanCacheHits == 0 {
		t.Fatal("Zipf-skewed schedule produced no plan-cache hits")
	}
	if rep.CacheHitRate <= 0 || rep.CacheHitRate >= 1 {
		t.Fatalf("cache hit rate %v outside (0,1)", rep.CacheHitRate)
	}
	if rep.QueriesPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", rep)
	}
	if rep.SemanticQueries == 0 {
		t.Fatal("no semantic queries in the mix")
	}
}

// BenchmarkFleet measures fleet throughput at smoke scale (CI bench-smoke);
// the full million-triple figure comes from `oassis-bench -fleet`.
func BenchmarkFleet(b *testing.B) {
	store := loadSmokeStore(b)
	cfg := FleetConfig{Queries: 200, Executions: 800, Seed: 5}
	fleet := SampleFleet(SmokeScale(), cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunFleet(store, fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("fleet: %.0f q/s, cache hit rate %.2f", rep.QueriesPerSec, rep.CacheHitRate)
		}
	}
}
