package synth

import (
	"bytes"
	"strings"
	"testing"

	"oassis/internal/obs"
	"oassis/internal/ontology"
)

func TestWriteScaleNTriplesDeterministic(t *testing.T) {
	cfg := SmokeScale()
	var a, b bytes.Buffer
	if err := WriteScaleNTriples(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := WriteScaleNTriples(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("generator is not deterministic")
	}
	if got := strings.Count(a.String(), "\n"); got != cfg.TripleCount() {
		t.Fatalf("emitted %d lines, TripleCount says %d", got, cfg.TripleCount())
	}
}

func TestScaleIngestSerialParallelAgree(t *testing.T) {
	cfg := SmokeScale()
	var buf bytes.Buffer
	if err := WriteScaleNTriples(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	sv, ss, sstats, err := ontology.LoadNTriples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pv, ps, pstats, err := ontology.LoadNTriplesParallel(bytes.NewReader(buf.Bytes()), ontology.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *sstats != *pstats {
		t.Fatalf("stats divergence: %+v vs %+v", *sstats, *pstats)
	}
	if sv.NumElements() != pv.NumElements() || sv.NumRelations() != pv.NumRelations() {
		t.Fatalf("vocab divergence: (%d,%d) vs (%d,%d)",
			sv.NumElements(), sv.NumRelations(), pv.NumElements(), pv.NumRelations())
	}
	if ss.Size() != ps.Size() {
		t.Fatalf("store divergence: %d vs %d facts", ss.Size(), ps.Size())
	}
	if sstats.Triples != cfg.TripleCount() {
		t.Fatalf("parsed %d triples, generator claims %d", sstats.Triples, cfg.TripleCount())
	}
	// The generated names must round-trip into the vocabulary, including
	// the percent-encoded IRI spellings.
	for _, name := range []string{ScaleClassName(3), ScaleClassName(10), ScaleInstName(4), ScaleInstName(0)} {
		if pv.Element(name) == 0 && name != pv.ElementName(0) {
			t.Fatalf("element %q missing from vocabulary", name)
		}
	}
}

func TestSampleFleetShapes(t *testing.T) {
	scale := SmokeScale()
	fleet := SampleFleet(scale, FleetConfig{Queries: 400, Seed: 9})
	if len(fleet) != 400 {
		t.Fatalf("sampled %d queries, want 400", len(fleet))
	}
	counts := map[int]int{}
	sem := 0
	texts := map[string]bool{}
	for _, fq := range fleet {
		if fq.Patterns < 1 || fq.Patterns > 4 {
			t.Fatalf("query with %d patterns outside [1,4]", fq.Patterns)
		}
		counts[fq.Patterns]++
		if fq.Semantic {
			sem++
		}
		texts[fq.Text] = true
	}
	// Single-pattern stars must dominate per the log-derived distribution.
	if counts[1] <= counts[2] || counts[2] <= counts[3]+counts[4] {
		t.Fatalf("shape distribution off: %v", counts)
	}
	if sem == 0 || sem == len(fleet) {
		t.Fatalf("semantic mix degenerate: %d of %d", sem, len(fleet))
	}
	// Distinctness is (text, mode); texts alone may coincide across modes
	// but the overwhelming majority must be unique.
	if len(texts) < 350 {
		t.Fatalf("only %d distinct texts of 400", len(texts))
	}
}

func loadSmokeStore(t testing.TB) *ontology.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteScaleNTriples(&buf, SmokeScale()); err != nil {
		t.Fatal(err)
	}
	_, store, _, err := ontology.LoadNTriplesParallel(bytes.NewReader(buf.Bytes()), ontology.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestRunFleet(t *testing.T) {
	store := loadSmokeStore(t)
	o := obs.New()
	cfg := FleetConfig{Queries: 150, Executions: 600, Workers: 4, Seed: 5, Obs: o}
	fleet := SampleFleet(SmokeScale(), cfg)
	rep, err := RunFleet(store, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctQueries != 150 || rep.Executions != 600 {
		t.Fatalf("report counts off: %+v", rep)
	}
	if rep.PlanCacheHits == 0 {
		t.Fatal("Zipf-skewed schedule produced no plan-cache hits")
	}
	if rep.CacheHitRate <= 0 || rep.CacheHitRate >= 1 {
		t.Fatalf("cache hit rate %v outside (0,1)", rep.CacheHitRate)
	}
	if rep.QueriesPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", rep)
	}
	if rep.SemanticQueries == 0 {
		t.Fatal("no semantic queries in the mix")
	}
}

// BenchmarkFleet measures fleet throughput at smoke scale (CI bench-smoke);
// the full million-triple figure comes from `oassis-bench -fleet`.
func BenchmarkFleet(b *testing.B) {
	store := loadSmokeStore(b)
	cfg := FleetConfig{Queries: 200, Executions: 800, Seed: 5}
	fleet := SampleFleet(SmokeScale(), cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunFleet(store, fleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("fleet: %.0f q/s, cache hit rate %.2f", rep.QueriesPerSec, rep.CacheHitRate)
		}
	}
}

// TestRunFleetAttribution runs a small mining fleet with a journal wired in
// and checks the per-query cost attribution joins up: one row per distinct
// query, execution counts summing to the schedule, crowd questions
// attributed to the runs that asked them.
func TestRunFleetAttribution(t *testing.T) {
	store := loadSmokeStore(t)
	o := obs.New()
	o.EnableJournal(0)
	cfg := FleetConfig{Queries: 12, Executions: 48, Workers: 4, MineMembers: 3, Seed: 5, Obs: o}
	fleet := SampleFleet(SmokeScale(), cfg)
	rep, err := RunFleet(store, fleet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Questions == 0 {
		t.Fatal("mining fleet asked no crowd questions")
	}
	if len(rep.PerQuery) != rep.DistinctQueries {
		t.Fatalf("attribution covers %d queries, fleet had %d", len(rep.PerQuery), rep.DistinctQueries)
	}
	var execs int
	var questions int64
	for i, c := range rep.PerQuery {
		if i > 0 && rep.PerQuery[i-1].Query >= c.Query {
			t.Fatalf("attribution rows out of order: %q then %q", rep.PerQuery[i-1].Query, c.Query)
		}
		if c.Execs <= 0 {
			t.Fatalf("%s attributed %d executions", c.Query, c.Execs)
		}
		if c.WallSecs < 0 {
			t.Fatalf("%s has negative wall time", c.Query)
		}
		execs += c.Execs
		questions += c.Questions
	}
	if execs != rep.Executions {
		t.Fatalf("attribution sums to %d executions, fleet ran %d", execs, rep.Executions)
	}
	if questions != rep.Questions {
		t.Fatalf("attribution sums to %d questions, fleet asked %d", questions, rep.Questions)
	}

	// Without a journal the fleet still mines but reports no attribution.
	plain := FleetConfig{Queries: 12, Executions: 24, Workers: 2, MineMembers: 2, Seed: 5}
	rep2, err := RunFleet(store, SampleFleet(SmokeScale(), plain), plain)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Questions == 0 {
		t.Fatal("journal-less mining fleet asked no questions")
	}
	if len(rep2.PerQuery) != 0 {
		t.Fatalf("journal-less fleet reported %d attribution rows", len(rep2.PerQuery))
	}
}
