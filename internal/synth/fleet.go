package synth

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
)

// This file implements the query-fleet benchmark: a generated massive
// ontology (written as N-Triples so it exercises the real ingestion
// pipeline, not an in-memory shortcut) and a realistic workload of
// thousands of distinct OASSIS-QL queries sampled from the empirical shape
// distribution of public SPARQL logs — overwhelmingly star-shaped basic
// graph patterns of one to four triple patterns. The fleet drives the
// compiled-plan path (plan cache + streamed space construction) and
// reports ingest and query throughput plus plan-cache effectiveness.

// ScaleConfig sizes a generated ontology. The element count (classes +
// instances) is kept small relative to the fact count on purpose: the
// vocabulary's frozen ancestor bitsets cost O(elements²) memory, so a
// million-fact store over ~22k elements stays tens of megabytes while the
// triple indexes carry the bulk.
type ScaleConfig struct {
	Classes    int // taxonomy size; class 0 is the root
	Instances  int // rdf:type leaves attached to random classes
	Predicates int // linking relations used by plain facts
	Labels     int // instances carrying an rdfs:label
	LabelTags  int // distinct label strings, cycled over labeled instances
	Facts      int // plain (instance, predicate, instance) triples
	Seed       int64
}

// MillionScale is the ISSUE 8 acceptance-scale configuration: one million
// plain facts plus the taxonomy/type/label triples around them.
func MillionScale() ScaleConfig {
	return ScaleConfig{
		Classes:    2000,
		Instances:  20000,
		Predicates: 20,
		Labels:     5000,
		LabelTags:  200,
		Facts:      1_000_000,
		Seed:       1,
	}
}

// SmokeScale is a small configuration for tests and CI bench-smoke.
func SmokeScale() ScaleConfig {
	return ScaleConfig{
		Classes:    200,
		Instances:  2000,
		Predicates: 12,
		Labels:     500,
		LabelTags:  40,
		Facts:      50_000,
		Seed:       1,
	}
}

// TripleCount returns the number of triples WriteScaleNTriples emits.
func (c ScaleConfig) TripleCount() int {
	subProps := c.Predicates / 2
	return (c.Classes - 1) + c.Instances + subProps + c.Labels + c.Facts
}

// Class/instance IRIs alternate between underscore and percent-encoded
// spellings of the same local name ("Class 7" is reachable as Class_7 and
// as Class%207), so ingestion exercises both local-name decode paths while
// the vocabulary stays deterministic.
func scaleClassIRI(i int) string {
	if i%7 == 3 {
		return fmt.Sprintf("<http://oassis.bench/c/Class%%20%d>", i)
	}
	return fmt.Sprintf("<http://oassis.bench/c/Class_%d>", i)
}

func scaleInstIRI(i int) string {
	if i%9 == 4 {
		return fmt.Sprintf("<http://oassis.bench/i/Inst%%20%d>", i)
	}
	return fmt.Sprintf("<http://oassis.bench/i/Inst_%d>", i)
}

func scalePredIRI(i int) string {
	return fmt.Sprintf("<http://oassis.bench/p/link%d>", i)
}

// ScaleClassName returns the vocabulary element name of class i.
func ScaleClassName(i int) string { return fmt.Sprintf("Class %d", i) }

// ScaleInstName returns the vocabulary element name of instance i.
func ScaleInstName(i int) string { return fmt.Sprintf("Inst %d", i) }

// ScalePredName returns the vocabulary relation name of predicate i.
func ScalePredName(i int) string { return fmt.Sprintf("link%d", i) }

// ScaleLabel returns label-tag t's string.
func ScaleLabel(t int) string { return fmt.Sprintf("tag %d", t) }

const (
	iriSubClassOf = "<http://www.w3.org/2000/01/rdf-schema#subClassOf>"
	iriType       = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
	iriSubProp    = "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>"
	iriLabel      = "<http://www.w3.org/2000/01/rdf-schema#label>"
)

// WriteScaleNTriples writes the generated ontology as N-Triples. The output
// is a pure function of cfg: every class above the root subclasses a
// lower-numbered class (so the taxonomy is acyclic by construction), every
// instance types into a random class, the upper half of the predicates
// sub-properties into the lower half, and the plain facts link uniformly
// random instance pairs.
func WriteScaleNTriples(w io.Writer, cfg ScaleConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 1<<20)
	for i := 1; i < cfg.Classes; i++ {
		parent := rng.Intn(i)
		fmt.Fprintf(bw, "%s %s %s .\n", scaleClassIRI(i), iriSubClassOf, scaleClassIRI(parent))
	}
	for i := 0; i < cfg.Instances; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n", scaleInstIRI(i), iriType, scaleClassIRI(rng.Intn(cfg.Classes)))
	}
	for i := cfg.Predicates / 2; i < cfg.Predicates; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n", scalePredIRI(i), iriSubProp, scalePredIRI(i-cfg.Predicates/2))
	}
	for i := 0; i < cfg.Labels; i++ {
		inst := i % cfg.Instances
		fmt.Fprintf(bw, "%s %s \"%s\" .\n", scaleInstIRI(inst), iriLabel, ScaleLabel(i%cfg.LabelTags))
	}
	for i := 0; i < cfg.Facts; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n",
			scaleInstIRI(rng.Intn(cfg.Instances)),
			scalePredIRI(rng.Intn(cfg.Predicates)),
			scaleInstIRI(rng.Intn(cfg.Instances)))
	}
	return bw.Flush()
}

// FleetQuery is one sampled workload query.
type FleetQuery struct {
	Text     string // OASSIS-QL source
	Semantic bool   // evaluation mode (Definition 2.5 vs exact matching)
	Patterns int    // WHERE triple-pattern count (the BGP size)
}

// FleetConfig sizes a workload.
type FleetConfig struct {
	// Queries is the number of distinct queries to sample.
	Queries int
	// Executions is the total number of query executions; queries are
	// drawn Zipf-skewed over the distinct set, so popular shapes repeat
	// and the plan cache has hits to serve.
	Executions int
	// Workers fans executions out; 0 means GOMAXPROCS.
	Workers int
	Seed    int64
	// MineMembers, when positive, follows each execution's space
	// construction with a deterministic mining pass served by this many
	// synthetic hash-answer members (see fleetMember), so the run spends
	// crowd questions the journal can attribute per query. 0 stops at
	// space construction, the pre-crowd path.
	MineMembers int
	// Obs, when set, lands compile/eval metrics on the sparql family.
	// With a journal enabled (Observer.EnableJournal), every execution
	// additionally records a query_exec event and the report carries
	// per-query cost attribution joined from the journal (PerQuery).
	Obs *obs.Observer
}

// fleetShapeDist is the BGP-size distribution of the sampled fleet,
// following the shape statistics of public SPARQL query logs (Bonifati et
// al., VLDBJ 2020): most real queries are tiny, star-shaped, and share a
// handful of templates. Index = pattern count - 1; values are cumulative
// per-mille thresholds for 55% / 25% / 12% / 8%.
var fleetShapeDist = [4]int{550, 800, 920, 1000}

// SampleFleet samples cfg.Queries distinct queries over a ScaleConfig
// ontology. Every query is a star join on $s anchored by an instanceOf
// constant; larger shapes add link patterns (and occasionally a hasLabel
// literal filter) radiating from the same subject. Roughly a third of the
// queries run in Semantic mode, the rest Exact, matching the mixed
// workloads the shared answer platform serves.
func SampleFleet(scale ScaleConfig, cfg FleetConfig) []FleetQuery {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]FleetQuery, 0, cfg.Queries)
	seen := make(map[string]bool, cfg.Queries)
	for len(out) < cfg.Queries {
		n := 1
		roll := rng.Intn(1000)
		for n <= len(fleetShapeDist) && roll >= fleetShapeDist[n-1] {
			n++
		}
		semantic := rng.Intn(3) == 0
		var b strings.Builder
		b.WriteString("SELECT FACT-SETS\nWHERE\n")
		fmt.Fprintf(&b, "  $s instanceOf %q", ScaleClassName(rng.Intn(scale.Classes)))
		satPred := ScalePredName(rng.Intn(scale.Predicates))
		satObj := ""
		for j := 1; j < n; j++ {
			b.WriteString(".\n")
			if j == n-1 && rng.Intn(10) < 3 {
				fmt.Fprintf(&b, "  $s hasLabel %q", ScaleLabel(rng.Intn(scale.LabelTags)))
				continue
			}
			pred := ScalePredName(rng.Intn(scale.Predicates))
			fmt.Fprintf(&b, "  $s %s $o%d", pred, j)
			if satObj == "" {
				satPred, satObj = pred, fmt.Sprintf("$o%d", j)
			}
		}
		if satObj == "" {
			// Single-pattern (or label-only) star: mine against a constant
			// object, since SATISFYING variables must be WHERE-bound.
			satObj = fmt.Sprintf("%q", ScaleInstName(rng.Intn(scale.Instances)))
		}
		b.WriteString("\nSATISFYING\n")
		fmt.Fprintf(&b, "  $s %s %s\nWITH SUPPORT = 0.2\n", satPred, satObj)
		key := b.String()
		if semantic {
			key = "S|" + key
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, FleetQuery{Text: b.String(), Semantic: semantic, Patterns: n})
	}
	return out
}

// FleetReport is the outcome of a fleet run.
type FleetReport struct {
	DistinctQueries int     `json:"distinct_queries"`
	Executions      int     `json:"executions"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	PlanCacheSize   int64   `json:"plan_cache_entries"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	RowsStreamed    int64   `json:"rows_streamed"`
	ValidNodes      int64   `json:"valid_nodes"`
	SemanticQueries int     `json:"semantic_queries"`
	// Questions is the total crowd question spend of the mining passes
	// (0 unless FleetConfig.MineMembers is set).
	Questions int64 `json:"questions,omitempty"`
	// PerQuery attributes cost to each distinct query, joined from the
	// journal's query_exec and run_end events. Present only when the
	// fleet ran with a journal-carrying Observer.
	PerQuery []QueryCost `json:"per_query,omitempty"`
}

// QueryCost is one distinct query's share of the fleet's cost: how often
// it ran, the wall time its executions took, how many compiles its plan
// cache served, the rows it streamed, and — when the fleet mined — the
// crowd questions its runs spent. Built by joining the journal's
// query_exec events (one per execution, keyed "q<index>") with the
// run_end event of each execution's mining run.
type QueryCost struct {
	Query     string  `json:"query"`
	Execs     int     `json:"execs"`
	WallSecs  float64 `json:"wall_secs"`
	CacheHits int     `json:"cache_hits"`
	Rows      int64   `json:"rows"`
	Questions int64   `json:"questions"`
}

// RunFleet executes the workload against a frozen store: each execution
// compiles the query's WHERE through the store-shared plan cache and
// streams the plan's rows into assignment-space construction — the same
// path a live mining session takes up to the point where the crowd is
// consulted. The execution sequence is a deterministic Zipf draw over the
// distinct queries; workers consume it from an atomic cursor.
func RunFleet(store *ontology.Store, fleet []FleetQuery, cfg FleetConfig) (*FleetReport, error) {
	v := store.Vocabulary()
	type prepared struct {
		q        *oassisql.Query
		semantic bool
	}
	prep := make([]prepared, len(fleet))
	semCount := 0
	for i, fq := range fleet {
		q, err := oassisql.Parse(fq.Text, v)
		if err != nil {
			return nil, fmt.Errorf("fleet query %d: %w\n%s", i, err, fq.Text)
		}
		prep[i] = prepared{q: q, semantic: fq.Semantic}
		if fq.Semantic {
			semCount++
		}
	}

	// Execution schedule: one coverage pass so every distinct query runs at
	// least once, then Zipf-skewed draws (p ∝ 1/(r+1)^1.2) for the rest, so
	// the head of the fleet dominates and compiled plans get reused.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(fleet)-1))
	schedule := make([]int, cfg.Executions)
	for i := range schedule {
		if i < len(fleet) {
			schedule[i] = i
		} else {
			schedule[i] = int(zipf.Uint64())
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := sparql.SharedPlanCache(store)
	h0, m0, _ := cache.Stats()
	jr := cfg.Obs.JournalSet()

	var cursor, rows, nodes, questions atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(schedule)) || firstErr.Load() != nil {
					return
				}
				p := prep[schedule[i]]
				execStart := time.Now()
				ev := sparql.NewEvaluator(store)
				ev.Semantic = p.semantic
				ev.Metrics = cfg.Obs.PlanSet()
				ev.UseSharedCache()
				plan, err := ev.Compile(p.q.Where)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				space, streamed, err := assign.NewSpaceFromPlan(p.q, plan, nil)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				rows.Add(int64(streamed))
				nodes.Add(int64(len(space.Valid())))
				var runID int64
				if cfg.MineMembers > 0 {
					// The mining pass is a pure function of (query index,
					// seed): hash-answer members plus a fixed engine seed,
					// so repeated executions of one query replay the same
					// run and attribution stays deterministic.
					members := make([]crowd.Member, cfg.MineMembers)
					for j := range members {
						members[j] = &fleetMember{
							id:   fmt.Sprintf("synth-%d", j),
							bias: uint64(cfg.Seed)<<16 ^ uint64(j+1),
						}
					}
					theta := p.q.Satisfying.Support
					eng := core.NewEngine(space, members, core.EngineConfig{
						Theta:      theta,
						Aggregator: crowd.NewMeanAggregator(1, theta),
						Seed:       cfg.Seed + int64(schedule[i]),
						Obs:        cfg.Obs,
					})
					res := eng.Run()
					runID = res.JournalRun
					questions.Add(int64(res.Stats.Questions))
				}
				jr.QueryExec(runID, fmt.Sprintf("q%04d", schedule[i]),
					time.Since(execStart).Nanoseconds(), ev.LastCompileCacheHit, int64(streamed))
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	elapsed := time.Since(start)

	h1, m1, size := cache.Stats()
	hits, misses := h1-h0, m1-m0
	rep := &FleetReport{
		DistinctQueries: len(fleet),
		Executions:      cfg.Executions,
		Workers:         workers,
		Seconds:         elapsed.Seconds(),
		QueriesPerSec:   float64(cfg.Executions) / elapsed.Seconds(),
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		PlanCacheSize:   size,
		RowsStreamed:    rows.Load(),
		ValidNodes:      nodes.Load(),
		SemanticQueries: semCount,
	}
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	rep.Questions = questions.Load()
	if jr != nil {
		rep.PerQuery = fleetAttribution(jr.Events())
	}
	return rep, nil
}

// fleetAttribution joins the journal's query_exec events with each mining
// run's run_end question count into per-query cost rows, sorted by query
// key. Events evicted by ring wraparound drop out of the attribution —
// size the journal (or attach a JSONL sink and aggregate offline) when a
// fleet outgrows the default ring.
func fleetAttribution(events []obs.Event) []QueryCost {
	runQ := make(map[int64]int64)
	for i := range events {
		if events[i].Kind == obs.EvRunEnd {
			runQ[events[i].Run] = events[i].Questions
		}
	}
	acc := make(map[string]*QueryCost)
	keys := make([]string, 0, 16)
	for i := range events {
		e := &events[i]
		if e.Kind != obs.EvQueryExec {
			continue
		}
		c := acc[e.Key]
		if c == nil {
			c = &QueryCost{Query: e.Key}
			acc[e.Key] = c
			keys = append(keys, e.Key)
		}
		c.Execs++
		c.WallSecs += float64(e.Elapsed) / 1e9
		if e.Hit {
			c.CacheHits++
		}
		c.Rows += e.Rows
		c.Questions += runQ[e.Run]
	}
	sort.Strings(keys)
	out := make([]QueryCost, len(keys))
	for i, k := range keys {
		out[i] = *acc[k]
	}
	return out
}

// fleetMember is the deterministic synthetic member behind
// FleetConfig.MineMembers. Its support for a fact-set hashes the member
// identity and the fact term IDs into [0, 1] — a pure function of
// (member, question), so fleet mining replays bit-identically with no
// planted ground truth to maintain, while different members disagree
// enough to exercise the aggregator.
type fleetMember struct {
	id   string
	bias uint64
}

func (m *fleetMember) ID() string { return m.id }

func (m *fleetMember) supportOf(fs ontology.FactSet) float64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ m.bias
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	for _, f := range fs {
		mix(uint64(uint32(f.S)))
		mix(uint64(uint32(f.P)))
		mix(uint64(uint32(f.O)))
	}
	return float64(h%1001) / 1000
}

// AskConcrete implements crowd.Member.
func (m *fleetMember) AskConcrete(fs ontology.FactSet) crowd.Response {
	return crowd.Response{Support: m.supportOf(fs)}
}

// AskSpecialize implements crowd.Member: pick the first candidate the
// member itself would rate at least 0.5, none-of-these otherwise.
func (m *fleetMember) AskSpecialize(_ ontology.FactSet, candidates []ontology.FactSet) (int, crowd.Response) {
	for i, c := range candidates {
		if s := m.supportOf(c); s >= 0.5 {
			return i, crowd.Response{Support: s}
		}
	}
	return -1, crowd.Response{}
}

var _ crowd.Member = (*fleetMember)(nil)
