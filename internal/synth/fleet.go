package synth

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/assign"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
)

// This file implements the query-fleet benchmark: a generated massive
// ontology (written as N-Triples so it exercises the real ingestion
// pipeline, not an in-memory shortcut) and a realistic workload of
// thousands of distinct OASSIS-QL queries sampled from the empirical shape
// distribution of public SPARQL logs — overwhelmingly star-shaped basic
// graph patterns of one to four triple patterns. The fleet drives the
// compiled-plan path (plan cache + streamed space construction) and
// reports ingest and query throughput plus plan-cache effectiveness.

// ScaleConfig sizes a generated ontology. The element count (classes +
// instances) is kept small relative to the fact count on purpose: the
// vocabulary's frozen ancestor bitsets cost O(elements²) memory, so a
// million-fact store over ~22k elements stays tens of megabytes while the
// triple indexes carry the bulk.
type ScaleConfig struct {
	Classes    int // taxonomy size; class 0 is the root
	Instances  int // rdf:type leaves attached to random classes
	Predicates int // linking relations used by plain facts
	Labels     int // instances carrying an rdfs:label
	LabelTags  int // distinct label strings, cycled over labeled instances
	Facts      int // plain (instance, predicate, instance) triples
	Seed       int64
}

// MillionScale is the ISSUE 8 acceptance-scale configuration: one million
// plain facts plus the taxonomy/type/label triples around them.
func MillionScale() ScaleConfig {
	return ScaleConfig{
		Classes:    2000,
		Instances:  20000,
		Predicates: 20,
		Labels:     5000,
		LabelTags:  200,
		Facts:      1_000_000,
		Seed:       1,
	}
}

// SmokeScale is a small configuration for tests and CI bench-smoke.
func SmokeScale() ScaleConfig {
	return ScaleConfig{
		Classes:    200,
		Instances:  2000,
		Predicates: 12,
		Labels:     500,
		LabelTags:  40,
		Facts:      50_000,
		Seed:       1,
	}
}

// TripleCount returns the number of triples WriteScaleNTriples emits.
func (c ScaleConfig) TripleCount() int {
	subProps := c.Predicates / 2
	return (c.Classes - 1) + c.Instances + subProps + c.Labels + c.Facts
}

// Class/instance IRIs alternate between underscore and percent-encoded
// spellings of the same local name ("Class 7" is reachable as Class_7 and
// as Class%207), so ingestion exercises both local-name decode paths while
// the vocabulary stays deterministic.
func scaleClassIRI(i int) string {
	if i%7 == 3 {
		return fmt.Sprintf("<http://oassis.bench/c/Class%%20%d>", i)
	}
	return fmt.Sprintf("<http://oassis.bench/c/Class_%d>", i)
}

func scaleInstIRI(i int) string {
	if i%9 == 4 {
		return fmt.Sprintf("<http://oassis.bench/i/Inst%%20%d>", i)
	}
	return fmt.Sprintf("<http://oassis.bench/i/Inst_%d>", i)
}

func scalePredIRI(i int) string {
	return fmt.Sprintf("<http://oassis.bench/p/link%d>", i)
}

// ScaleClassName returns the vocabulary element name of class i.
func ScaleClassName(i int) string { return fmt.Sprintf("Class %d", i) }

// ScaleInstName returns the vocabulary element name of instance i.
func ScaleInstName(i int) string { return fmt.Sprintf("Inst %d", i) }

// ScalePredName returns the vocabulary relation name of predicate i.
func ScalePredName(i int) string { return fmt.Sprintf("link%d", i) }

// ScaleLabel returns label-tag t's string.
func ScaleLabel(t int) string { return fmt.Sprintf("tag %d", t) }

const (
	iriSubClassOf = "<http://www.w3.org/2000/01/rdf-schema#subClassOf>"
	iriType       = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
	iriSubProp    = "<http://www.w3.org/2000/01/rdf-schema#subPropertyOf>"
	iriLabel      = "<http://www.w3.org/2000/01/rdf-schema#label>"
)

// WriteScaleNTriples writes the generated ontology as N-Triples. The output
// is a pure function of cfg: every class above the root subclasses a
// lower-numbered class (so the taxonomy is acyclic by construction), every
// instance types into a random class, the upper half of the predicates
// sub-properties into the lower half, and the plain facts link uniformly
// random instance pairs.
func WriteScaleNTriples(w io.Writer, cfg ScaleConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 1<<20)
	for i := 1; i < cfg.Classes; i++ {
		parent := rng.Intn(i)
		fmt.Fprintf(bw, "%s %s %s .\n", scaleClassIRI(i), iriSubClassOf, scaleClassIRI(parent))
	}
	for i := 0; i < cfg.Instances; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n", scaleInstIRI(i), iriType, scaleClassIRI(rng.Intn(cfg.Classes)))
	}
	for i := cfg.Predicates / 2; i < cfg.Predicates; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n", scalePredIRI(i), iriSubProp, scalePredIRI(i-cfg.Predicates/2))
	}
	for i := 0; i < cfg.Labels; i++ {
		inst := i % cfg.Instances
		fmt.Fprintf(bw, "%s %s \"%s\" .\n", scaleInstIRI(inst), iriLabel, ScaleLabel(i%cfg.LabelTags))
	}
	for i := 0; i < cfg.Facts; i++ {
		fmt.Fprintf(bw, "%s %s %s .\n",
			scaleInstIRI(rng.Intn(cfg.Instances)),
			scalePredIRI(rng.Intn(cfg.Predicates)),
			scaleInstIRI(rng.Intn(cfg.Instances)))
	}
	return bw.Flush()
}

// FleetQuery is one sampled workload query.
type FleetQuery struct {
	Text     string // OASSIS-QL source
	Semantic bool   // evaluation mode (Definition 2.5 vs exact matching)
	Patterns int    // WHERE triple-pattern count (the BGP size)
}

// FleetConfig sizes a workload.
type FleetConfig struct {
	// Queries is the number of distinct queries to sample.
	Queries int
	// Executions is the total number of query executions; queries are
	// drawn Zipf-skewed over the distinct set, so popular shapes repeat
	// and the plan cache has hits to serve.
	Executions int
	// Workers fans executions out; 0 means GOMAXPROCS.
	Workers int
	Seed    int64
	// Obs, when set, lands compile/eval metrics on the sparql family.
	Obs *obs.Observer
}

// fleetShapeDist is the BGP-size distribution of the sampled fleet,
// following the shape statistics of public SPARQL query logs (Bonifati et
// al., VLDBJ 2020): most real queries are tiny, star-shaped, and share a
// handful of templates. Index = pattern count - 1; values are cumulative
// per-mille thresholds for 55% / 25% / 12% / 8%.
var fleetShapeDist = [4]int{550, 800, 920, 1000}

// SampleFleet samples cfg.Queries distinct queries over a ScaleConfig
// ontology. Every query is a star join on $s anchored by an instanceOf
// constant; larger shapes add link patterns (and occasionally a hasLabel
// literal filter) radiating from the same subject. Roughly a third of the
// queries run in Semantic mode, the rest Exact, matching the mixed
// workloads the shared answer platform serves.
func SampleFleet(scale ScaleConfig, cfg FleetConfig) []FleetQuery {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]FleetQuery, 0, cfg.Queries)
	seen := make(map[string]bool, cfg.Queries)
	for len(out) < cfg.Queries {
		n := 1
		roll := rng.Intn(1000)
		for n <= len(fleetShapeDist) && roll >= fleetShapeDist[n-1] {
			n++
		}
		semantic := rng.Intn(3) == 0
		var b strings.Builder
		b.WriteString("SELECT FACT-SETS\nWHERE\n")
		fmt.Fprintf(&b, "  $s instanceOf %q", ScaleClassName(rng.Intn(scale.Classes)))
		satPred := ScalePredName(rng.Intn(scale.Predicates))
		satObj := ""
		for j := 1; j < n; j++ {
			b.WriteString(".\n")
			if j == n-1 && rng.Intn(10) < 3 {
				fmt.Fprintf(&b, "  $s hasLabel %q", ScaleLabel(rng.Intn(scale.LabelTags)))
				continue
			}
			pred := ScalePredName(rng.Intn(scale.Predicates))
			fmt.Fprintf(&b, "  $s %s $o%d", pred, j)
			if satObj == "" {
				satPred, satObj = pred, fmt.Sprintf("$o%d", j)
			}
		}
		if satObj == "" {
			// Single-pattern (or label-only) star: mine against a constant
			// object, since SATISFYING variables must be WHERE-bound.
			satObj = fmt.Sprintf("%q", ScaleInstName(rng.Intn(scale.Instances)))
		}
		b.WriteString("\nSATISFYING\n")
		fmt.Fprintf(&b, "  $s %s %s\nWITH SUPPORT = 0.2\n", satPred, satObj)
		key := b.String()
		if semantic {
			key = "S|" + key
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, FleetQuery{Text: b.String(), Semantic: semantic, Patterns: n})
	}
	return out
}

// FleetReport is the outcome of a fleet run.
type FleetReport struct {
	DistinctQueries int     `json:"distinct_queries"`
	Executions      int     `json:"executions"`
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	PlanCacheSize   int64   `json:"plan_cache_entries"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	RowsStreamed    int64   `json:"rows_streamed"`
	ValidNodes      int64   `json:"valid_nodes"`
	SemanticQueries int     `json:"semantic_queries"`
}

// RunFleet executes the workload against a frozen store: each execution
// compiles the query's WHERE through the store-shared plan cache and
// streams the plan's rows into assignment-space construction — the same
// path a live mining session takes up to the point where the crowd is
// consulted. The execution sequence is a deterministic Zipf draw over the
// distinct queries; workers consume it from an atomic cursor.
func RunFleet(store *ontology.Store, fleet []FleetQuery, cfg FleetConfig) (*FleetReport, error) {
	v := store.Vocabulary()
	type prepared struct {
		q        *oassisql.Query
		semantic bool
	}
	prep := make([]prepared, len(fleet))
	semCount := 0
	for i, fq := range fleet {
		q, err := oassisql.Parse(fq.Text, v)
		if err != nil {
			return nil, fmt.Errorf("fleet query %d: %w\n%s", i, err, fq.Text)
		}
		prep[i] = prepared{q: q, semantic: fq.Semantic}
		if fq.Semantic {
			semCount++
		}
	}

	// Execution schedule: one coverage pass so every distinct query runs at
	// least once, then Zipf-skewed draws (p ∝ 1/(r+1)^1.2) for the rest, so
	// the head of the fleet dominates and compiled plans get reused.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(fleet)-1))
	schedule := make([]int, cfg.Executions)
	for i := range schedule {
		if i < len(fleet) {
			schedule[i] = i
		} else {
			schedule[i] = int(zipf.Uint64())
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := sparql.SharedPlanCache(store)
	h0, m0, _ := cache.Stats()

	var cursor, rows, nodes atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(len(schedule)) || firstErr.Load() != nil {
					return
				}
				p := prep[schedule[i]]
				ev := sparql.NewEvaluator(store)
				ev.Semantic = p.semantic
				ev.Metrics = cfg.Obs.PlanSet()
				ev.UseSharedCache()
				plan, err := ev.Compile(p.q.Where)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				space, streamed, err := assign.NewSpaceFromPlan(p.q, plan, nil)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				rows.Add(int64(streamed))
				nodes.Add(int64(len(space.Valid())))
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	elapsed := time.Since(start)

	h1, m1, size := cache.Stats()
	hits, misses := h1-h0, m1-m0
	rep := &FleetReport{
		DistinctQueries: len(fleet),
		Executions:      cfg.Executions,
		Workers:         workers,
		Seconds:         elapsed.Seconds(),
		QueriesPerSec:   float64(cfg.Executions) / elapsed.Seconds(),
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		PlanCacheSize:   size,
		RowsStreamed:    rows.Load(),
		ValidNodes:      nodes.Load(),
		SemanticQueries: semCount,
	}
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return rep, nil
}
