package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// DomainConfig sizes a generated application domain (Section 6.3's travel /
// culinary / self-treatment experiments). The paper recruited 248 real
// members; here each member gets a generated personal database embedding
// planted popular patterns, so the engine answers come from real support
// computations over concrete transactions (see DESIGN.md, substitutions).
type DomainConfig struct {
	// Name tags the domain ("travel", "culinary", "self-treatment").
	Name string
	// SubjectBranch gives children per level of the subject taxonomy
	// (e.g. activities / dishes / remedies).
	SubjectBranch []int
	// ObjectBranch gives children per level of the object taxonomy
	// (attractions / drinks / symptoms).
	ObjectBranch []int
	// ObjectInstances attaches instance leaves to the object taxonomy
	// (the travel query asks about concrete places, so some MSPs can be
	// invalid class-level assignments — Section 6.3).
	ObjectInstances int
	// Relation is the linking relation mined by the query.
	Relation string
	// Multiplicity adds `+` to the subject variable.
	Multiplicity bool
	// More enables MORE mining with a tip pool.
	More bool
	// Patterns is the number of planted popular (subject, object) pairs.
	Patterns int
	// Members and Transactions size the simulated crowd.
	Members      int
	Transactions int
	// Seed drives all randomness.
	Seed int64
	// Obs, when set, observes the domain's query pipeline: the WHERE
	// compile and eval land in the sparql metric family and the eval /
	// space-construction phases are traced. Nil disables observation.
	Obs *obs.Observer
}

// Travel returns the travel-domain configuration: object instances make
// some discovered MSPs invalid, as in the paper's running-example query.
func Travel(members int, seed int64) DomainConfig {
	return DomainConfig{
		Name:            "travel",
		SubjectBranch:   []int{6, 5, 4},
		ObjectBranch:    []int{3, 3},
		ObjectInstances: 2,
		Relation:        "doAt",
		Multiplicity:    true,
		More:            true,
		Patterns:        14,
		Members:         members,
		Transactions:    40,
		Seed:            seed,
	}
}

// Culinary returns the culinary-domain configuration — the largest DAG of
// the three, all of whose MSPs are valid (a class-level query).
func Culinary(members int, seed int64) DomainConfig {
	return DomainConfig{
		Name:          "culinary",
		SubjectBranch: []int{7, 5, 4},
		ObjectBranch:  []int{8, 6},
		Relation:      "servedWith",
		Multiplicity:  false,
		Patterns:      18,
		Members:       members,
		Transactions:  40,
		Seed:          seed,
	}
}

// SelfTreatment returns the self-treatment configuration — the smallest DAG
// and the fewest questions to completion.
func SelfTreatment(members int, seed int64) DomainConfig {
	return DomainConfig{
		Name:          "self-treatment",
		SubjectBranch: []int{5, 4, 3},
		ObjectBranch:  []int{5, 4},
		Relation:      "takenFor",
		Multiplicity:  false,
		Patterns:      8,
		Members:       members,
		Transactions:  40,
		Seed:          seed,
	}
}

// Domain is a generated application domain: ontology, query, crowd and
// ground truth.
type Domain struct {
	Name  string
	Vocab *vocab.Vocabulary
	Store *ontology.Store
	Query *oassisql.Query
	Space *assign.Space
	// Plan is the compiled WHERE plan the space was built from; with
	// DomainConfig.Obs set, Plan.Explain reports actual cardinalities.
	Plan *sparql.Plan
	// Members are the simulated crowd members (exact-scale answers are
	// bucketed to the UI scale like the real crowd's).
	Members []crowd.Member
	// Patterns are the planted popular (subject, object) leaf pairs with
	// their target popularity.
	Patterns []PlantedPattern
	// MorePool is the tip-fact candidate pool (empty unless More).
	MorePool ontology.FactSet

	subjectLeaves []vocab.TermID
	objectLeaves  []vocab.TermID
	relation      vocab.TermID
	tipByPattern  map[int]ontology.Fact
}

// PlantedPattern is one ground-truth popular habit.
type PlantedPattern struct {
	Subject    vocab.TermID
	Object     vocab.TermID
	Popularity float64 // probability a transaction realizes the pattern
	HasTip     bool
}

// NewDomain generates a domain per the config.
func NewDomain(cfg DomainConfig) (*Domain, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.New()
	store := ontology.NewStore(v)
	sub := v.MustRelation(ontology.RelSubClassOf)
	inst := v.MustRelation(ontology.RelInstanceOf)
	rel := v.MustRelation(cfg.Relation)

	d := &Domain{Name: cfg.Name, Vocab: v, Store: store, relation: rel,
		tipByPattern: make(map[int]ontology.Fact)}

	subjRoot := v.MustElement(title(cfg.Name) + "Subject")
	d.subjectLeaves = growTaxonomy(v, store, sub, subjRoot, cfg.SubjectBranch, cfg.Name+"-s")
	objRoot := v.MustElement(title(cfg.Name) + "Object")
	objLeaves := growTaxonomy(v, store, sub, objRoot, cfg.ObjectBranch, cfg.Name+"-o")
	if cfg.ObjectInstances > 0 {
		var instances []vocab.TermID
		for _, leaf := range objLeaves {
			for i := 0; i < cfg.ObjectInstances; i++ {
				id := v.MustElement(fmt.Sprintf("%s @%d", v.ElementName(leaf), i))
				if err := v.OrderElements(leaf, id); err != nil {
					return nil, err
				}
				store.MustAdd(ontology.Fact{S: id, P: inst, O: leaf})
				instances = append(instances, id)
			}
		}
		d.objectLeaves = instances
	} else {
		d.objectLeaves = objLeaves
	}
	// Tip vocabulary for MORE mining.
	var tips []vocab.TermID
	if cfg.More {
		tipRoot := v.MustElement("Tip")
		tipAt := v.MustRelation("tipAt")
		_ = tipAt
		for i := 0; i < cfg.Patterns; i++ {
			id := v.MustElement(fmt.Sprintf("Tip %d", i))
			if err := v.OrderElements(tipRoot, id); err != nil {
				return nil, err
			}
			store.MustAdd(ontology.Fact{S: id, P: sub, O: tipRoot})
			tips = append(tips, id)
		}
	}
	if err := v.Freeze(); err != nil {
		return nil, err
	}
	store.Freeze()

	// Plant popular patterns over leaf pairs.
	seenPair := map[[2]vocab.TermID]bool{}
	for i := 0; i < cfg.Patterns; i++ {
		var s, o vocab.TermID
		for {
			s = d.subjectLeaves[rng.Intn(len(d.subjectLeaves))]
			o = d.objectLeaves[rng.Intn(len(d.objectLeaves))]
			if !seenPair[[2]vocab.TermID{s, o}] {
				seenPair[[2]vocab.TermID{s, o}] = true
				break
			}
		}
		p := PlantedPattern{
			Subject:    s,
			Object:     o,
			Popularity: 0.15 + 0.5*rng.Float64(),
			HasTip:     cfg.More && rng.Intn(2) == 0,
		}
		if p.HasTip {
			tip := tips[i%len(tips)]
			d.tipByPattern[i] = ontology.Fact{S: tip, P: rel, O: p.Object}
		}
		d.Patterns = append(d.Patterns, p)
	}

	// Build the crowd: each member favours a random subset of patterns.
	for m := 0; m < cfg.Members; m++ {
		db := d.generatePersonalDB(cfg, rng)
		sm := crowd.NewSimMember(fmt.Sprintf("%s-u%03d", cfg.Name, m), v, db, rng.Int63())
		sm.PruneRatio = 0.25
		d.Members = append(d.Members, sm)
	}

	// MORE pool: the tip facts that actually occur in histories.
	if cfg.More {
		var pool []ontology.Fact
		for _, f := range d.tipByPattern {
			pool = append(pool, f)
		}
		d.MorePool = ontology.NewFactSet(pool...)
	}

	// The query.
	if err := d.buildQuery(cfg); err != nil {
		return nil, err
	}
	return d, nil
}

// growTaxonomy adds a tree below root with the given per-level branching,
// returning the leaves.
func growTaxonomy(v *vocab.Vocabulary, store *ontology.Store, sub vocab.TermID, root vocab.TermID, branch []int, prefix string) []vocab.TermID {
	level := []vocab.TermID{root}
	for li, b := range branch {
		var next []vocab.TermID
		for pi, parent := range level {
			for c := 0; c < b; c++ {
				id := v.MustElement(fmt.Sprintf("%s-%d-%d-%d", prefix, li, pi, c))
				if err := v.OrderElements(parent, id); err != nil {
					panic(err)
				}
				store.MustAdd(ontology.Fact{S: id, P: sub, O: parent})
				next = append(next, id)
			}
		}
		level = next
	}
	return level
}

// generatePersonalDB samples one member's transactions: each realizes a
// favoured pattern (possibly with its tip) or random noise.
func (d *Domain) generatePersonalDB(cfg DomainConfig, rng *rand.Rand) []ontology.FactSet {
	// Member-specific affinity per pattern.
	affinity := make([]float64, len(d.Patterns))
	for i, p := range d.Patterns {
		a := p.Popularity * (0.5 + rng.Float64())
		if a > 1 {
			a = 1
		}
		affinity[i] = a
	}
	var db []ontology.FactSet
	for t := 0; t < cfg.Transactions; t++ {
		var facts []ontology.Fact
		for i, p := range d.Patterns {
			if rng.Float64() < affinity[i]*0.35 {
				facts = append(facts, ontology.Fact{S: p.Subject, P: d.relation, O: p.Object})
				if tip, ok := d.tipByPattern[i]; ok && p.HasTip && rng.Float64() < 0.8 {
					facts = append(facts, tip)
				}
			}
		}
		// Noise: 1–2 random leaf pairs.
		for n := 0; n < 1+rng.Intn(2); n++ {
			facts = append(facts, ontology.Fact{
				S: d.subjectLeaves[rng.Intn(len(d.subjectLeaves))],
				P: d.relation,
				O: d.objectLeaves[rng.Intn(len(d.objectLeaves))],
			})
		}
		db = append(db, ontology.NewFactSet(facts...))
	}
	return db
}

// buildQuery assembles and parses the domain's OASSIS-QL query, then builds
// the assignment space.
func (d *Domain) buildQuery(cfg DomainConfig) error {
	v := d.Vocab
	subjRoot := v.Element(title(cfg.Name) + "Subject")
	objRoot := v.Element(title(cfg.Name) + "Object")
	mult := ""
	if cfg.Multiplicity {
		mult = "+"
	}
	var b strings.Builder
	b.WriteString("SELECT FACT-SETS\nWHERE\n")
	fmt.Fprintf(&b, "  $s subClassOf* %q.\n", v.ElementName(subjRoot))
	if cfg.ObjectInstances > 0 {
		fmt.Fprintf(&b, "  $w subClassOf* %q.\n", v.ElementName(objRoot))
		b.WriteString("  $o instanceOf $w\n")
	} else {
		fmt.Fprintf(&b, "  $o subClassOf* %q\n", v.ElementName(objRoot))
	}
	b.WriteString("SATISFYING\n")
	fmt.Fprintf(&b, "  $s%s %s $o", mult, cfg.Relation)
	if cfg.More {
		b.WriteString(".\n  MORE")
	}
	b.WriteString("\nWITH SUPPORT = 0.2\n")

	q, err := oassisql.Parse(b.String(), v)
	if err != nil {
		return fmt.Errorf("synth: domain query: %w", err)
	}
	ev := sparql.NewEvaluator(d.Store)
	ev.Metrics = cfg.Obs.PlanSet()
	ev.UseSharedCache()
	tr := cfg.Obs.Trace()
	plan, err := ev.Compile(q.Where)
	if err != nil {
		return err
	}
	evalStart := tr.Begin()
	space, streamed, err := assign.NewSpaceFromPlan(q, plan, d.MorePool)
	if err != nil {
		return err
	}
	tr.End("where_eval", evalStart, obs.Attr{Key: "rows", Val: int64(streamed)})
	tr.End("space_build", evalStart, obs.Attr{Key: "valid", Val: int64(len(space.Valid()))})
	d.Query = q
	d.Space = space
	d.Plan = plan
	return nil
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
