// Package synth generates the synthetic workloads of the OASSIS evaluation:
// layered assignment DAGs of configurable width and depth with planted MSPs
// (Section 6.4 — uniform/near/far distributions, multiplicity MSPs, oracle
// crowd members), and the three "real crowd" application domains (travel,
// culinary, self-treatment — Section 6.3) with simulated crowds whose
// personal databases embed ground-truth popular patterns.
package synth

import (
	"fmt"
	"math/rand"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// Distribution selects how planted MSPs spread over the DAG (Section 6.4).
type Distribution uint8

const (
	// Uniform plants MSPs uniformly at random (kept incomparable).
	Uniform Distribution = iota
	// Near biases toward MSPs within 4 DAG hops of each other.
	Near
	// Far biases toward MSPs at least 6 DAG hops apart.
	Far
)

func (d Distribution) String() string {
	switch d {
	case Near:
		return "near"
	case Far:
		return "far"
	default:
		return "uniform"
	}
}

// DAGConfig parameterizes a synthetic assignment DAG.
type DAGConfig struct {
	// Width is the maximum layer width (500–2000 in the paper).
	Width int
	// Depth is the number of layers below the cap (4–7 in the paper).
	Depth int
	// MSPPercent is the fraction of DAG nodes planted as MSPs
	// (0.01–0.10 in the paper).
	MSPPercent float64
	// Distribution spreads the MSPs (uniform/near/far).
	Distribution Distribution
	// MultiMSPPercent plants additional MSPs with multiplicities
	// (value sets), as a fraction of nodes (0–0.05 in the paper).
	MultiMSPPercent float64
	// MultiMSPSize is the value-set size of multiplicity MSPs (1–4).
	MultiMSPSize int
	// Places sizes the second mining dimension: the DAG mirrors the
	// travel query's two variables (an item taxonomy and a small place
	// taxonomy), which is what gives user-guided pruning its bite.
	// 0 means the default of 3.
	Places int
	// Seed drives all randomness.
	Seed int64
	// Obs, when set, observes the DAG's query pipeline (WHERE compile /
	// eval metrics, eval and space-construction trace spans).
	Obs *obs.Observer
}

// DAG is a generated synthetic workload: the assignment space, the planted
// ground truth and an answer oracle.
type DAG struct {
	Space *assign.Space
	Query *oassisql.Query
	// Plan is the compiled WHERE plan behind Space; with DAGConfig.Obs
	// set, Plan.Explain reports actual per-operator cardinalities.
	Plan    *sparql.Plan
	Vocab   *vocab.Vocabulary
	Store   *ontology.Store
	Planted []*assign.Assignment
	// Nodes is the number of single-value assignments in the DAG
	// (the eager size without multiplicities).
	Nodes int

	elements []vocab.TermID // item-taxonomy node elements, topo order
	places   []vocab.TermID // place-taxonomy leaves
}

// The DAG mirrors the travel query's two mining variables: an item from the
// big layered taxonomy and a place from a small one (Section 6.4 built its
// DAGs "similar to the one generated in our crowd experiments with the
// travel query"). dagQueryMult allows multiplicities on the item variable.
const (
	dagQueryMult = "SELECT FACT-SETS WHERE $y subClassOf* Stuff. $p subClassOf* Somewhere SATISFYING $y+ doAt $p WITH SUPPORT = 0.5"
	dagQuery     = "SELECT FACT-SETS WHERE $y subClassOf* Stuff. $p subClassOf* Somewhere SATISFYING $y doAt $p WITH SUPPORT = 0.5"
)

// NewDAG generates a synthetic DAG per the config.
func NewDAG(cfg DAGConfig) (*DAG, error) {
	if cfg.Width < 2 || cfg.Depth < 2 {
		return nil, fmt.Errorf("synth: width %d / depth %d too small", cfg.Width, cfg.Depth)
	}
	if cfg.Places == 0 {
		cfg.Places = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := vocab.New()
	root := v.MustElement("Stuff")
	placeRoot := v.MustElement("Somewhere")
	v.MustRelation("doAt")
	sub := v.MustRelation(ontology.RelSubClassOf)

	// Layer widths grow geometrically toward cfg.Width at the last layer.
	widths := layerWidths(cfg.Width, cfg.Depth)
	store := ontology.NewStore(v)
	var all []vocab.TermID
	prev := []vocab.TermID{root}
	for l, w := range widths {
		cur := make([]vocab.TermID, 0, w)
		for i := 0; i < w; i++ {
			id := v.MustElement(fmt.Sprintf("n%d_%d", l, i))
			cur = append(cur, id)
			all = append(all, id)
			nParents := 1 + rng.Intn(2)
			seen := map[vocab.TermID]bool{}
			for p := 0; p < nParents; p++ {
				parent := prev[rng.Intn(len(prev))]
				if seen[parent] {
					continue
				}
				seen[parent] = true
				if err := v.OrderElements(parent, id); err != nil {
					return nil, err
				}
				store.MustAdd(ontology.Fact{S: id, P: sub, O: parent})
			}
		}
		prev = cur
	}
	var places []vocab.TermID
	for i := 0; i < cfg.Places; i++ {
		id := v.MustElement(fmt.Sprintf("place_%d", i))
		if err := v.OrderElements(placeRoot, id); err != nil {
			return nil, err
		}
		store.MustAdd(ontology.Fact{S: id, P: sub, O: placeRoot})
		places = append(places, id)
	}
	if err := v.Freeze(); err != nil {
		return nil, err
	}
	store.Freeze()

	queryText := dagQuery
	if cfg.MultiMSPPercent > 0 {
		queryText = dagQueryMult
	}
	q, err := oassisql.Parse(queryText, v)
	if err != nil {
		return nil, err
	}
	ev := sparql.NewEvaluator(store)
	ev.Metrics = cfg.Obs.PlanSet()
	ev.UseSharedCache()
	tr := cfg.Obs.Trace()
	plan, err := ev.Compile(q.Where)
	if err != nil {
		return nil, err
	}
	evalStart := tr.Begin()
	space, streamed, err := assign.NewSpaceFromPlan(q, plan, nil)
	if err != nil {
		return nil, err
	}
	tr.End("where_eval", evalStart, obs.Attr{Key: "rows", Val: int64(streamed)})
	tr.End("space_build", evalStart, obs.Attr{Key: "valid", Val: int64(len(space.Valid()))})
	d := &DAG{
		Space: space,
		Query: q,
		Plan:  plan,
		Vocab: v,
		Store: store,
		// Item nodes (+ the Stuff cap) times place nodes (+ cap).
		Nodes:    (len(all) + 1) * (cfg.Places + 1),
		elements: all,
		places:   places,
	}
	d.plant(cfg, rng)
	return d, nil
}

// layerWidths produces cfg.Depth layer sizes growing geometrically to width.
func layerWidths(width, depth int) []int {
	ws := make([]int, depth)
	// ratio r with first layer ~max(4, width / r^(depth-1)).
	r := 1.0
	for {
		first := float64(width)
		for i := 1; i < depth; i++ {
			first /= r
		}
		if first <= 8 || r > 4 {
			break
		}
		r += 0.25
	}
	cur := float64(width)
	for i := depth - 1; i >= 0; i-- {
		w := int(cur)
		if w < 2 {
			w = 2
		}
		ws[i] = w
		cur /= r
	}
	ws[depth-1] = width
	return ws
}

// assignmentOf wraps a place and an item-node set as an assignment for the
// DAG's query.
func (d *DAG) assignmentOf(place vocab.TermID, nodes ...vocab.TermID) *assign.Assignment {
	return assign.New(d.Vocab, d.Space.Kinds(), map[string][]vocab.TermID{
		"y": nodes,
		"p": {place},
	}, nil)
}

// randomPlace picks a place leaf most of the time, occasionally the root
// (so some MSPs generalize over the place dimension).
func (d *DAG) randomPlace(rng *rand.Rand) vocab.TermID {
	if rng.Float64() < 0.25 {
		return d.Vocab.Element("Somewhere")
	}
	return d.places[rng.Intn(len(d.places))]
}

// plant selects the ground-truth MSPs.
func (d *DAG) plant(cfg DAGConfig, rng *rand.Rand) {
	want := int(cfg.MSPPercent * float64(d.Nodes))
	if want < 1 {
		want = 1
	}
	candidates := append([]vocab.TermID{}, d.elements...)
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })

	antichain := func(cand *assign.Assignment) bool {
		for _, p := range d.Planted {
			if d.Space.Leq(p, cand) || d.Space.Leq(cand, p) {
				return false
			}
		}
		return true
	}
	var chosenItems []vocab.TermID
	distOK := func(t vocab.TermID) bool {
		if len(chosenItems) == 0 || cfg.Distribution == Uniform {
			return true
		}
		dist := d.hopDistance(t, chosenItems)
		if cfg.Distribution == Near {
			return dist <= 4
		}
		return dist >= 6
	}
	// First pass honours the distribution bias; a relaxed second pass
	// tops up if the bias is unsatisfiable. Candidates cycle through the
	// item nodes, pairing each with a random place.
	for _, pass := range []bool{true, false} {
		for _, t := range candidates {
			if len(d.Planted) >= want {
				break
			}
			if pass && !distOK(t) {
				continue
			}
			cand := d.assignmentOf(d.randomPlace(rng), t)
			if antichain(cand) {
				d.Planted = append(d.Planted, cand)
				chosenItems = append(chosenItems, t)
			}
		}
		if len(d.Planted) >= want {
			break
		}
	}
	// Multiplicity MSPs: incomparable item tuples at one place, kept
	// incomparable to the singleton MSPs as assignments.
	if cfg.MultiMSPPercent > 0 && cfg.MultiMSPSize > 1 {
		wantMulti := int(cfg.MultiMSPPercent * float64(d.Nodes))
		for tries := 0; tries < wantMulti*50 && wantMulti > 0; tries++ {
			var set []vocab.TermID
			for len(set) < cfg.MultiMSPSize {
				t := d.elements[rng.Intn(len(d.elements))]
				ok := true
				for _, s := range set {
					if d.Vocab.LeqE(t, s) || d.Vocab.LeqE(s, t) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				set = append(set, t)
			}
			if len(set) != cfg.MultiMSPSize {
				continue
			}
			cand := d.assignmentOf(d.randomPlace(rng), set...)
			if antichain(cand) {
				d.Planted = append(d.Planted, cand)
				wantMulti--
			}
		}
	}
}

// hopDistance is the minimum undirected BFS distance from t to any node in
// targets over the subClassOf edges.
func (d *DAG) hopDistance(t vocab.TermID, targets []vocab.TermID) int {
	goal := map[vocab.TermID]bool{}
	for _, g := range targets {
		goal[g] = true
	}
	type qi struct {
		id   vocab.TermID
		dist int
	}
	seen := map[vocab.TermID]bool{t: true}
	queue := []qi{{t, 0}}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if goal[x.id] {
			return x.dist
		}
		if x.dist > 8 {
			continue // beyond any bias threshold
		}
		for _, n := range d.Vocab.ElementParents(x.id) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, qi{n, x.dist + 1})
			}
		}
		for _, n := range d.Vocab.ElementChildren(x.id) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, qi{n, x.dist + 1})
			}
		}
	}
	return 1 << 20
}

// Oracle returns a crowd member whose answers realize exactly the planted
// ground truth: support 1 for every assignment below a planted MSP, 0
// otherwise. PruneRatio simulates user-guided pruning clicks on irrelevant
// values (Figure 4f).
func (d *DAG) Oracle(pruneRatio float64, seed int64) *Oracle {
	o := &Oracle{
		v:          d.Vocab,
		PruneRatio: pruneRatio,
		rng:        rand.New(rand.NewSource(seed)),
		relevantE:  make(map[vocab.TermID]bool),
	}
	for _, p := range d.Planted {
		o.planted = append(o.planted, d.Space.Instantiate(p))
	}
	// Terms relevant to the ground truth (a planted component or one of
	// its generalizations) must never be pruned.
	var markUp func(e vocab.TermID)
	markUp = func(e vocab.TermID) {
		if e == ontology.Any || o.relevantE[e] {
			return
		}
		o.relevantE[e] = true
		for _, p := range d.Vocab.ElementParents(e) {
			markUp(p)
		}
	}
	for _, fs := range o.planted {
		for _, f := range fs {
			markUp(f.S)
			markUp(f.O)
		}
	}
	return o
}

// Oracle is the deterministic ground-truth member used by the synthetic
// experiments ("a simulation of a single user", Section 6.4).
type Oracle struct {
	v          *vocab.Vocabulary
	planted    []ontology.FactSet
	PruneRatio float64
	rng        *rand.Rand
	relevantE  map[vocab.TermID]bool
}

// ID implements crowd.Member.
func (o *Oracle) ID() string { return "oracle" }

// significant reports whether the fact-set generalizes a planted pattern.
func (o *Oracle) significant(fs ontology.FactSet) bool {
	for _, p := range o.planted {
		if ontology.LeqFactSet(o.v, fs, p) {
			return true
		}
	}
	return false
}

// AskConcrete implements crowd.Member.
func (o *Oracle) AskConcrete(fs ontology.FactSet) crowd.Response {
	if o.significant(fs) {
		return crowd.Response{Support: 1}
	}
	resp := crowd.Response{Support: 0}
	if o.PruneRatio > 0 && o.rng.Float64() < o.PruneRatio {
		for _, f := range fs {
			for _, e := range []vocab.TermID{f.S, f.O} {
				if e != ontology.Any && !o.relevantE[e] {
					resp.Pruned = []vocab.TermID{e}
					return resp
				}
			}
		}
	}
	return resp
}

// AskSpecialize implements crowd.Member: the oracle names a significant
// refinement when one exists.
func (o *Oracle) AskSpecialize(_ ontology.FactSet, candidates []ontology.FactSet) (int, crowd.Response) {
	for i, c := range candidates {
		if o.significant(c) {
			return i, crowd.Response{Support: 1}
		}
	}
	return -1, crowd.Response{}
}

var _ crowd.Member = (*Oracle)(nil)
