package ontology

import (
	"fmt"
	"sync"
	"testing"

	"oassis/internal/vocab"
)

// chainStore builds a -sub-> b -sub-> c -sub-> d plus x -other-> a, frozen
// unless told otherwise.
func chainStore(t *testing.T, freeze bool) (*Store, *vocab.Vocabulary, map[string]vocab.TermID) {
	t.Helper()
	v := vocab.New()
	ids := map[string]vocab.TermID{}
	for _, n := range []string{"a", "b", "c", "d", "x", "lone"} {
		ids[n] = v.MustElement(n)
	}
	sub := v.MustRelation("sub")
	other := v.MustRelation("other")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := NewStore(v)
	s.MustAdd(Fact{S: ids["a"], P: sub, O: ids["b"]})
	s.MustAdd(Fact{S: ids["b"], P: sub, O: ids["c"]})
	s.MustAdd(Fact{S: ids["c"], P: sub, O: ids["d"]})
	s.MustAdd(Fact{S: ids["x"], P: other, O: ids["a"]})
	ids["sub"], ids["other"] = sub, other
	if freeze {
		s.Freeze()
	}
	return s, v, ids
}

func TestClosureIndexes(t *testing.T) {
	for _, frozen := range []bool{true, false} {
		t.Run(fmt.Sprintf("frozen=%v", frozen), func(t *testing.T) {
			s, _, ids := chainStore(t, frozen)
			sub := ids["sub"]

			fwd := s.ForwardClosure(ids["a"], sub)
			if len(fwd) != 4 { // a, b, c, d
				t.Fatalf("forward closure of a = %v, want 4 nodes", fwd)
			}
			for i := 1; i < len(fwd); i++ {
				if fwd[i-1] >= fwd[i] {
					t.Fatalf("forward closure not sorted: %v", fwd)
				}
			}
			if got := s.ForwardClosure(ids["d"], sub); got != nil {
				t.Fatalf("d has no outgoing sub edge, closure should be nil, got %v", got)
			}
			if got := s.ForwardClosure(ids["lone"], sub); got != nil {
				t.Fatalf("lone node closure should be nil, got %v", got)
			}

			bwd := s.BackwardClosure(ids["d"], sub)
			if len(bwd) != 4 {
				t.Fatalf("backward closure of d = %v, want 4 nodes", bwd)
			}
			if got := s.BackwardClosure(ids["a"], sub); got != nil {
				t.Fatalf("a has no incoming sub edge, closure should be nil, got %v", got)
			}

			if !s.Reaches(ids["a"], sub, ids["d"]) {
				t.Fatal("a should reach d")
			}
			if !s.Reaches(ids["a"], sub, ids["a"]) {
				t.Fatal("zero-length path a->a should hold")
			}
			if s.Reaches(ids["d"], sub, ids["a"]) {
				t.Fatal("d must not reach a")
			}
			if s.Reaches(ids["a"], ids["other"], ids["d"]) {
				t.Fatal("a must not reach d over the other predicate")
			}

			// pairs: a->{a,b,c,d}, b->{b,c,d}, c->{c,d}, d->d = 10.
			pairs := s.ClosurePairs(sub)
			if len(pairs) != 10 {
				t.Fatalf("closure pairs = %d, want 10: %v", len(pairs), pairs)
			}
			for i := 1; i < len(pairs); i++ {
				a, b := pairs[i-1], pairs[i]
				if a.S > b.S || (a.S == b.S && a.O >= b.O) {
					t.Fatalf("pairs not sorted/deduped at %d: %v", i, pairs)
				}
			}
			np, nn := s.StarStats(sub)
			if np != 10 || nn != 4 {
				t.Fatalf("StarStats = (%d, %d), want (10, 4)", np, nn)
			}
			f, subj, obj := s.PredStats(sub)
			if f != 3 || subj != 3 || obj != 3 {
				t.Fatalf("PredStats = (%d, %d, %d), want (3, 3, 3)", f, subj, obj)
			}
		})
	}
}

// TestClosureEarlyExitBeforeIndex pins that Reaches works before any closure
// has been memoized (the early-exit BFS path) and agrees with the indexed
// answer afterwards.
func TestClosureEarlyExitBeforeIndex(t *testing.T) {
	s, _, ids := chainStore(t, true)
	sub := ids["sub"]
	// No ForwardClosure/ClosurePairs call yet: the index is cold.
	if !s.Reaches(ids["b"], sub, ids["d"]) {
		t.Fatal("early-exit BFS: b should reach d")
	}
	if s.Reaches(ids["b"], sub, ids["x"]) {
		t.Fatal("early-exit BFS: b must not reach x")
	}
	_ = s.ForwardClosure(ids["b"], sub) // warm the index
	if !s.Reaches(ids["b"], sub, ids["d"]) || s.Reaches(ids["b"], sub, ids["x"]) {
		t.Fatal("indexed Reaches disagrees with BFS answers")
	}
}

// TestClosureCycle: the walk terminates and is correct on cyclic predicates.
func TestClosureCycle(t *testing.T) {
	v := vocab.New()
	a, b, c := v.MustElement("a"), v.MustElement("b"), v.MustElement("c")
	p := v.MustRelation("p")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := NewStore(v)
	s.MustAdd(Fact{S: a, P: p, O: b})
	s.MustAdd(Fact{S: b, P: p, O: a}) // cycle
	s.MustAdd(Fact{S: b, P: p, O: c})
	s.Freeze()
	if got := s.ForwardClosure(a, p); len(got) != 3 {
		t.Fatalf("cyclic closure of a = %v, want {a,b,c}", got)
	}
	if !s.Reaches(b, p, b) || !s.Reaches(a, p, c) || s.Reaches(c, p, a) {
		t.Fatal("cyclic reachability wrong")
	}
}

// TestClosureConcurrentBuild races many goroutines into the lazy memo.
func TestClosureConcurrentBuild(t *testing.T) {
	s, _, ids := chainStore(t, true)
	sub := ids["sub"]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(s.ForwardClosure(ids["a"], sub)) != 4 {
				t.Error("concurrent forward closure wrong")
			}
			if len(s.ClosurePairs(sub)) != 10 {
				t.Error("concurrent pairs wrong")
			}
			if !s.Reaches(ids["a"], sub, ids["d"]) {
				t.Error("concurrent reaches wrong")
			}
		}()
	}
	wg.Wait()
}

// TestClosureStats pins the cold/warm accounting: the first lookup of a
// predicate builds its index (cold), every later one is served memoized
// (warm), and Reaches on an already-built index counts warm too.
func TestClosureStats(t *testing.T) {
	s, _, ids := chainStore(t, true)
	if st := s.ClosureStats(); st.Cold != 0 || st.Warm != 0 {
		t.Fatalf("fresh store stats: %+v", st)
	}
	s.ForwardClosure(ids["a"], ids["sub"])
	st := s.ClosureStats()
	if st.Cold != 1 || st.Warm != 0 {
		t.Fatalf("after first lookup: %+v", st)
	}
	s.ForwardClosure(ids["b"], ids["sub"])
	s.BackwardClosure(ids["d"], ids["sub"])
	if st = s.ClosureStats(); st.Cold != 1 || st.Warm != 2 {
		t.Fatalf("after warm lookups: %+v", st)
	}
	// Reaches with a built index is a warm binary search.
	if !s.Reaches(ids["a"], ids["sub"], ids["d"]) {
		t.Fatal("a should reach d")
	}
	if st = s.ClosureStats(); st.Warm != 3 {
		t.Fatalf("Reaches not counted warm: %+v", st)
	}
	// A different predicate builds its own index.
	s.ClosurePairs(ids["other"])
	if st = s.ClosureStats(); st.Cold != 2 {
		t.Fatalf("second predicate not counted cold: %+v", st)
	}
}
