package ontology_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// randomNTriples generates a pseudo-random N-Triples document exercising
// every branch of the importer: taxonomy edges, type triples, labels with
// escapes and Unicode, subPropertyOf, plain facts, skipped literals, blank
// nodes, comments, stray whitespace and CRLF endings.
func randomNTriples(rng *rand.Rand, lines int) string {
	var sb strings.Builder
	iri := func(pool string, n int) string {
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("<http://x/%s_%d>", pool, rng.Intn(n))
		case 1:
			return fmt.Sprintf("<http://x/%s%%20%d>", pool, rng.Intn(n))
		case 2:
			return fmt.Sprintf("<http://x/deep/path/%s-%d>", pool, rng.Intn(n))
		default:
			return fmt.Sprintf("<http://x/ns#%s%d>", pool, rng.Intn(n))
		}
	}
	// edge returns a subject/object IRI pair whose local-name indexes are
	// strictly increasing, so generated subClassOf/subPropertyOf edges can
	// never form a self-loop or cycle (every local name embeds its index and
	// edges always point from a lower index to a higher one).
	edge := func(pool string, n int) (string, string) {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		shape := func(k int) string {
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("<http://x/%s_%d>", pool, k)
			case 1:
				return fmt.Sprintf("<http://x/deep/path/%s-%d>", pool, k)
			default:
				return fmt.Sprintf("<http://x/ns#%s%d>", pool, k)
			}
		}
		return shape(i), shape(j)
	}
	lit := func() string {
		switch rng.Intn(5) {
		case 0:
			return `"plain value"`
		case 1:
			return `"esc \"q\" \\ \n \t end"`
		case 2:
			return `"unicode é \U0001F600 café"`
		case 3:
			return fmt.Sprintf(`"label %d"@en`, rng.Intn(50))
		default:
			return fmt.Sprintf(`"%d"^^<http://www.w3.org/2001/XMLSchema#integer>`, rng.Intn(1000))
		}
	}
	for i := 0; i < lines; i++ {
		eol := "\n"
		if rng.Intn(10) == 0 {
			eol = "\r\n"
		}
		switch rng.Intn(12) {
		case 0:
			sb.WriteString("# a comment line" + eol)
		case 1:
			sb.WriteString("   " + eol)
		case 2:
			sub, sup := edge("Class", 12)
			fmt.Fprintf(&sb, "%s <http://www.w3.org/2000/01/rdf-schema#subClassOf> %s .%s", sub, sup, eol)
		case 3:
			fmt.Fprintf(&sb, "%s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> %s .%s",
				iri("Inst", 40), iri("Class", 12), eol)
		case 4:
			fmt.Fprintf(&sb, "%s <http://www.w3.org/2000/01/rdf-schema#label> %s .%s",
				iri("Inst", 40), lit(), eol)
		case 5:
			sub, sup := edge("rel", 8)
			fmt.Fprintf(&sb, "%s <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> %s .%s", sub, sup, eol)
		case 6:
			fmt.Fprintf(&sb, "_:b%d %s %s .%s", rng.Intn(5), iri("rel", 8), iri("Inst", 40), eol)
		case 7:
			fmt.Fprintf(&sb, "%s %s _:b%d .%s", iri("Inst", 40), iri("rel", 8), rng.Intn(5), eol)
		case 8:
			fmt.Fprintf(&sb, "%s %s %s .%s", iri("Inst", 40), iri("rel", 8), lit(), eol)
		default:
			fmt.Fprintf(&sb, "  %s %s %s .%s", iri("Inst", 40), iri("rel", 8), iri("Inst", 40), eol)
		}
	}
	if rng.Intn(3) == 0 { // sometimes no trailing newline
		return strings.TrimSuffix(strings.TrimSuffix(sb.String(), "\n"), "\r")
	}
	return sb.String()
}

// requireSameLoad loads nt through the serial and the parallel pipeline and
// fails unless vocabulary, store, stats and errors are byte-identical.
func requireSameLoad(t *testing.T, nt string, opt ontology.LoadOptions) {
	t.Helper()
	sv, ss, sstats, serr := ontology.LoadNTriples(strings.NewReader(nt))
	pv, ps, pstats, perr := ontology.LoadNTriplesParallel(strings.NewReader(nt), opt)
	if (serr == nil) != (perr == nil) {
		t.Fatalf("error divergence: serial=%v parallel=%v", serr, perr)
	}
	if serr != nil {
		if serr.Error() != perr.Error() {
			t.Fatalf("error message divergence:\n  serial:   %v\n  parallel: %v", serr, perr)
		}
		return
	}
	if *sstats != *pstats {
		t.Fatalf("stats divergence: serial=%+v parallel=%+v", *sstats, *pstats)
	}
	requireSameVocab(t, sv, pv)
	requireSameStore(t, ss, ps, sv)
}

func requireSameVocab(t *testing.T, a, b *vocab.Vocabulary) {
	t.Helper()
	if a.NumElements() != b.NumElements() || a.NumRelations() != b.NumRelations() {
		t.Fatalf("vocab size divergence: (%d,%d) vs (%d,%d)",
			a.NumElements(), a.NumRelations(), b.NumElements(), b.NumRelations())
	}
	for id := 0; id < a.NumElements(); id++ {
		tid := vocab.TermID(id)
		if a.ElementName(tid) != b.ElementName(tid) {
			t.Fatalf("element %d name divergence: %q vs %q", id, a.ElementName(tid), b.ElementName(tid))
		}
		if !equalIDs(a.ElementParents(tid), b.ElementParents(tid)) {
			t.Fatalf("element %d parents divergence: %v vs %v", id, a.ElementParents(tid), b.ElementParents(tid))
		}
		if !equalIDs(a.ElementChildren(tid), b.ElementChildren(tid)) {
			t.Fatalf("element %d children divergence", id)
		}
		if a.ElementDepth(tid) != b.ElementDepth(tid) {
			t.Fatalf("element %d depth divergence", id)
		}
	}
	for id := 0; id < a.NumRelations(); id++ {
		tid := vocab.TermID(id)
		if a.RelationName(tid) != b.RelationName(tid) {
			t.Fatalf("relation %d name divergence: %q vs %q", id, a.RelationName(tid), b.RelationName(tid))
		}
		if !equalIDs(a.RelationParents(tid), b.RelationParents(tid)) {
			t.Fatalf("relation %d parents divergence", id)
		}
	}
	if !equalIDs(a.ElementsTopo(), b.ElementsTopo()) {
		t.Fatalf("element topo divergence:\n  %v\n  %v", a.ElementsTopo(), b.ElementsTopo())
	}
	if !equalIDs(a.RelationsTopo(), b.RelationsTopo()) {
		t.Fatalf("relation topo divergence")
	}
}

func requireSameStore(t *testing.T, a, b *ontology.Store, v *vocab.Vocabulary) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("store size divergence: %d vs %d", a.Size(), b.Size())
	}
	if !equalIDs(a.Predicates(), b.Predicates()) {
		t.Fatalf("predicate list divergence: %v vs %v", a.Predicates(), b.Predicates())
	}
	for _, p := range a.Predicates() {
		af, bf := a.FactsWithPredicate(p), b.FactsWithPredicate(p)
		if len(af) != len(bf) {
			t.Fatalf("byP[%s] length divergence: %d vs %d", v.RelationName(p), len(af), len(bf))
		}
		for i := range af {
			if af[i] != bf[i] {
				t.Fatalf("byP[%s][%d] divergence: %+v vs %+v", v.RelationName(p), i, af[i], bf[i])
			}
			f := af[i]
			if !equalIDs(a.Objects(f.S, f.P), b.Objects(f.S, f.P)) {
				t.Fatalf("bySP divergence at %+v", f)
			}
			if !equalIDs(a.Subjects(f.P, f.O), b.Subjects(f.P, f.O)) {
				t.Fatalf("byPO divergence at %+v", f)
			}
		}
	}
	// Labels: every interned element must carry identical label sets. The
	// label index is compared through LabeledElements on a sample of label
	// strings drawn from HasLabel probes.
	for id := 0; id < v.NumElements(); id++ {
		for _, probe := range []string{"plain value", "esc \"q\" \\ \n \t end", "label 1", "label 7"} {
			if a.HasLabel(vocab.TermID(id), probe) != b.HasLabel(vocab.TermID(id), probe) {
				t.Fatalf("label divergence on element %d %q", id, probe)
			}
		}
	}
	for _, probe := range []string{"plain value", "label 3"} {
		if !equalIDs(a.LabeledElements(probe), b.LabeledElements(probe)) {
			t.Fatalf("labelIdx divergence for %q", probe)
		}
	}
}

func equalIDs(a, b []vocab.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelNTriplesDifferential pins the parallel loader byte-identical
// to the serial reference across 120 randomized documents, sweeping worker
// counts and deliberately tiny chunk sizes so lines land on every possible
// chunk boundary.
func TestParallelNTriplesDifferential(t *testing.T) {
	chunkSizes := []int{17, 64, 256, 1024, 1 << 20}
	workerCounts := []int{1, 2, 3, 8}
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nt := randomNTriples(rng, 40+rng.Intn(300))
		opt := ontology.LoadOptions{
			Workers:    workerCounts[seed%int64(len(workerCounts))],
			ChunkBytes: chunkSizes[seed%int64(len(chunkSizes))],
		}
		t.Run(fmt.Sprintf("seed=%d/w=%d/chunk=%d", seed, opt.Workers, opt.ChunkBytes), func(t *testing.T) {
			requireSameLoad(t, nt, opt)
		})
	}
}

// TestParallelNTriplesErrorPositions pins that malformed lines abort the
// parallel loader with the serial loader's exact error — same line number,
// same message — wherever the bad line falls relative to chunk boundaries.
func TestParallelNTriplesErrorPositions(t *testing.T) {
	bad := []string{
		`<http://x/a> <http://x/p> <http://x/b>`,                            // missing dot
		`<http://x/a <http://x/p> <http://x/b> .`,                           // unterminated IRI
		`<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "oops .`, // unterminated literal
		`<http://x/a> <http://x/p> garbage .`,                               // junk object
		`<> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/C> .`,  // empty subject name
		`<http://x/A> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/A> .`, // self-loop
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		lines := strings.Split(strings.TrimSuffix(randomNTriples(rng, 60), "\n"), "\n")
		pos := rng.Intn(len(lines) + 1)
		lines = append(lines[:pos], append([]string{bad[rng.Intn(len(bad))]}, lines[pos:]...)...)
		nt := strings.Join(lines, "\n") + "\n"
		opt := ontology.LoadOptions{Workers: 1 + int(seed%4), ChunkBytes: 32 + int(seed%5)*97}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			requireSameLoad(t, nt, opt)
		})
	}
}

// TestParallelNTriplesEdgeCases covers fixed shapes: boundary-straddling
// literals, missing trailing newline, CRLF, empty and comment-only input.
func TestParallelNTriplesEdgeCases(t *testing.T) {
	long := strings.Repeat("x", 5000)
	cases := map[string]string{
		"empty":           "",
		"comments only":   "# one\n# two\n",
		"blank lines":     "\n\n\r\n\n",
		"no trailing nl":  `<http://x/a> <http://x/p> <http://x/b> .`,
		"long literal":    `<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "` + long + `" .` + "\n",
		"long iri":        `<http://x/` + long + `> <http://x/p> <http://x/b> .` + "\n",
		"crlf":            "<http://x/a> <http://x/p> <http://x/b> .\r\n<http://x/b> <http://x/p> <http://x/c> .\r\n",
		"unicode escapes": `<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "A\U00000042 \uZZZZ" .` + "\n",
		"dup facts":       strings.Repeat(`<http://x/a> <http://x/p> <http://x/b> .`+"\n", 50),
		"hasLabel collision": `<http://x/a> <http://other/hasLabel> <http://x/b> .` + "\n",
		"subClassOf collision": `<http://other/A> <http://other/subClassOf> <http://other/B> .` + "\n",
		"label with iri object": `<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> <http://x/b> .` + "\n",
	}
	for name, nt := range cases {
		for _, chunk := range []int{9, 4096} {
			t.Run(fmt.Sprintf("%s/chunk=%d", name, chunk), func(t *testing.T) {
				requireSameLoad(t, nt, ontology.LoadOptions{Workers: 4, ChunkBytes: chunk})
			})
		}
	}
}

// TestParallelNTriplesConcurrentIngest runs several whole parallel loads at
// once with maximum fan-out — the -race CI job turns this into a data-race
// detector over the interner, chunk pipeline and index builders.
func TestParallelNTriplesConcurrentIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nt := randomNTriples(rng, 3000)
	sv, ss, sstats, err := ontology.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pv, ps, pstats, err := ontology.LoadNTriplesParallel(strings.NewReader(nt),
				ontology.LoadOptions{Workers: 8, ChunkBytes: 2048})
			if err != nil {
				t.Error(err)
				return
			}
			if *pstats != *sstats {
				t.Errorf("stats divergence under concurrency: %+v vs %+v", *pstats, *sstats)
			}
			requireSameVocab(t, sv, pv)
			requireSameStore(t, ss, ps, sv)
		}()
	}
	wg.Wait()
}

// BenchmarkNTriplesLoad compares the serial reference loader against the
// parallel pipeline on the same synthetic document (~60k triples). CI runs
// this in bench-smoke; the interesting figure is the serial/parallel ratio
// on multi-core hardware (the pipeline degrades to near-serial on 1 CPU).
func BenchmarkNTriplesLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	nt := randomNTriples(rng, 60000)
	b.Logf("document: %.1f MiB", float64(len(nt))/(1<<20))
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(nt)))
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ontology.LoadNTriples(strings.NewReader(nt)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(len(nt)))
		for i := 0; i < b.N; i++ {
			if _, _, _, err := ontology.LoadNTriplesParallel(strings.NewReader(nt), ontology.LoadOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestParallelNTriplesObs checks the ingest observability satellite: the
// counters and parse-phase spans land on the registry and are nil-safe.
func TestParallelNTriplesObs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nt := randomNTriples(rng, 500)
	o := obs.New()
	_, _, stats, err := ontology.LoadNTriplesParallel(strings.NewReader(nt),
		ontology.LoadOptions{Workers: 2, ChunkBytes: 512, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	im := o.Ingest
	if got := im.Triples.Value(); got != int64(stats.Triples) {
		t.Errorf("ingest triples counter = %d, stats = %d", got, stats.Triples)
	}
	if got := im.Facts.Value(); got != int64(stats.Facts) {
		t.Errorf("ingest facts counter = %d, stats = %d", got, stats.Facts)
	}
	if im.Duration.Count() != 1 {
		t.Errorf("ingest duration observations = %d, want 1", im.Duration.Count())
	}
	spans := map[string]bool{}
	for _, sp := range o.Tracer.Spans() {
		spans[sp.Name] = true
	}
	for _, want := range []string{"ingest_parse", "ingest_merge", "ingest_index", "ingest_freeze"} {
		if !spans[want] {
			t.Errorf("missing span %q (got %v)", want, spans)
		}
	}
	// Malformed input counts on the malformed counter.
	if _, _, _, err := ontology.LoadNTriplesParallel(strings.NewReader("garbage\n"),
		ontology.LoadOptions{Obs: o}); err == nil {
		t.Fatal("expected parse error")
	}
	if im.Malformed.Value() != 1 {
		t.Errorf("malformed counter = %d, want 1", im.Malformed.Value())
	}
	// Nil observer: everything above must be a no-op, not a panic.
	if _, _, _, err := ontology.LoadNTriplesParallel(strings.NewReader(nt), ontology.LoadOptions{}); err != nil {
		t.Fatal(err)
	}
}
