package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"oassis/internal/vocab"
)

// Well-known relation names with built-in semantics in the loader and the
// SPARQL substrate.
const (
	RelSubClassOf    = "subClassOf"    // object is more general element
	RelInstanceOf    = "instanceOf"    // object is the class of the subject
	RelSubPropertyOf = "subPropertyOf" // object is more general relation
	RelHasLabel      = "hasLabel"      // object is a string literal
)

// Load parses the textual ontology format into a fresh vocabulary and store,
// freezing both. Each non-empty, non-comment line is a triple
//
//	subject predicate object
//
// where tokens are bare words or double-quoted strings (quoting allows
// spaces inside names). Two directives intern vocabulary terms that occur in
// no ontology fact: `@element name...` and `@relation name...`. Semantics of
// special predicates:
//
//	A subClassOf B     adds the fact and declares B ≤ℰ A
//	a instanceOf B     adds the fact and declares B ≤ℰ a
//	r subPropertyOf q  declares q ≤ℛ r (no element fact is stored)
//	e hasLabel "text"  attaches the label string to e
//
// Everything else is stored as a plain fact.
func Load(r io.Reader) (*vocab.Vocabulary, *Store, error) {
	v := vocab.New()
	s := NewStore(v)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := tokenizeLine(line)
		if err != nil {
			return nil, nil, fmt.Errorf("ontology: line %d: %w", lineNo, err)
		}
		if toks[0].text == "@element" || toks[0].text == "@relation" {
			// Declaration directives intern vocabulary terms that do
			// not occur in any ontology fact (they may still occur in
			// personal histories and queries).
			if len(toks) < 2 {
				return nil, nil, fmt.Errorf("ontology: line %d: %s needs at least one name", lineNo, toks[0].text)
			}
			for _, tk := range toks[1:] {
				if toks[0].text == "@element" {
					_, err = v.AddElement(tk.text)
				} else {
					_, err = v.AddRelation(tk.text)
				}
				if err != nil {
					return nil, nil, fmt.Errorf("ontology: line %d: %w", lineNo, err)
				}
			}
			continue
		}
		if len(toks) != 3 {
			return nil, nil, fmt.Errorf("ontology: line %d: want 3 tokens, got %d", lineNo, len(toks))
		}
		if err := addLine(v, s, toks[0].text, toks[1].text, toks[2].text); err != nil {
			return nil, nil, fmt.Errorf("ontology: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, fmt.Errorf("ontology: %w", err)
	}
	if err := v.Freeze(); err != nil {
		return nil, nil, fmt.Errorf("ontology: %w", err)
	}
	s.Freeze()
	return v, s, nil
}

func addLine(v *vocab.Vocabulary, s *Store, subj, pred, obj string) error {
	switch pred {
	case RelSubPropertyOf:
		spec, err := v.AddRelation(subj)
		if err != nil {
			return err
		}
		gen, err := v.AddRelation(obj)
		if err != nil {
			return err
		}
		return v.OrderRelations(gen, spec)
	case RelHasLabel:
		e, err := v.AddElement(subj)
		if err != nil {
			return err
		}
		// Intern the hasLabel relation so queries can reference it.
		if _, err := v.AddRelation(RelHasLabel); err != nil {
			return err
		}
		return s.AddLabel(e, obj)
	}
	se, err := v.AddElement(subj)
	if err != nil {
		return err
	}
	oe, err := v.AddElement(obj)
	if err != nil {
		return err
	}
	p, err := v.AddRelation(pred)
	if err != nil {
		return err
	}
	if pred == RelSubClassOf || pred == RelInstanceOf {
		// The object is the more general element (Example 2.3: the
		// relations coincide with the reverse of ≤ℰ).
		if err := v.OrderElements(oe, se); err != nil {
			return err
		}
	}
	return s.Add(Fact{S: se, P: p, O: oe})
}

// ParseFact parses one "subject predicate object" line against an existing
// vocabulary (names may be quoted). Unlike Load it never interns new terms.
func ParseFact(line string, v *vocab.Vocabulary) (Fact, error) {
	toks, err := tokenizeLine(strings.TrimSpace(line))
	if err != nil {
		return Fact{}, err
	}
	if len(toks) != 3 {
		return Fact{}, fmt.Errorf("ontology: want 3 tokens, got %d", len(toks))
	}
	s := v.Element(toks[0].text)
	p := v.Relation(toks[1].text)
	o := v.Element(toks[2].text)
	if s == vocab.NoTerm {
		return Fact{}, fmt.Errorf("ontology: unknown element %q", toks[0].text)
	}
	if p == vocab.NoTerm {
		return Fact{}, fmt.Errorf("ontology: unknown relation %q", toks[1].text)
	}
	if o == vocab.NoTerm {
		return Fact{}, fmt.Errorf("ontology: unknown element %q", toks[2].text)
	}
	return Fact{S: s, P: p, O: o}, nil
}

// FormatFact renders a fact in the textual format (quoting names with
// spaces), the inverse of ParseFact.
func FormatFact(f Fact, v *vocab.Vocabulary) string {
	return quoteIfNeeded(v.ElementName(f.S)) + " " +
		v.RelationName(f.P) + " " +
		quoteIfNeeded(v.ElementName(f.O))
}

type token struct {
	text    string
	literal bool
}

// tokenizeLine splits a line into bare-word and quoted tokens.
func tokenizeLine(line string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '"':
			j := strings.IndexByte(line[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, token{text: line[i+1 : i+1+j], literal: true})
			i += j + 2
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			toks = append(toks, token{text: line[i:j]})
			i = j
		}
	}
	return toks, nil
}

// Write serializes the store (facts, labels and relation order) back into
// the textual format accepted by Load. Element-order edges that came from
// subClassOf/instanceOf facts are implied by the facts themselves.
func Write(w io.Writer, s *Store) error {
	bw := bufio.NewWriter(w)
	v := s.Vocabulary()
	for _, f := range s.AllFacts() {
		if _, err := fmt.Fprintf(bw, "%s %s %s\n",
			quoteIfNeeded(v.ElementName(f.S)),
			v.RelationName(f.P),
			quoteIfNeeded(v.ElementName(f.O))); err != nil {
			return err
		}
	}
	// Relation order: emit one subPropertyOf line per immediate edge.
	for _, r := range v.RelationsTopo() {
		for _, c := range v.RelationChildren(r) {
			if _, err := fmt.Fprintf(bw, "%s subPropertyOf %s\n",
				v.RelationName(c), v.RelationName(r)); err != nil {
				return err
			}
		}
	}
	// Labels, sorted for determinism.
	var labeled []vocab.TermID
	for e := range s.labels {
		labeled = append(labeled, e)
	}
	sort.Slice(labeled, func(i, j int) bool { return labeled[i] < labeled[j] })
	for _, e := range labeled {
		var ls []string
		for l := range s.labels[e] {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		for _, l := range ls {
			if _, err := fmt.Fprintf(bw, "%s hasLabel %q\n",
				quoteIfNeeded(v.ElementName(e)), l); err != nil {
				return err
			}
		}
	}
	// Vocabulary terms covered by no fact survive as declarations (e.g.
	// relations that occur only in personal histories and queries).
	coveredE := make(map[vocab.TermID]bool, len(s.facts))
	coveredR := make(map[vocab.TermID]bool, len(s.byP))
	for f := range s.facts {
		coveredE[f.S] = true
		coveredE[f.O] = true
		coveredR[f.P] = true
	}
	for e := range s.labels {
		coveredE[e] = true
	}
	for _, r := range v.RelationsTopo() {
		if len(v.RelationChildren(r)) > 0 || len(v.RelationParents(r)) > 0 {
			coveredR[r] = true // emitted as subPropertyOf lines
		}
	}
	for _, e := range v.ElementsTopo() {
		if !coveredE[e] {
			if _, err := fmt.Fprintf(bw, "@element %s\n",
				quoteIfNeeded(v.ElementName(e))); err != nil {
				return err
			}
		}
	}
	for _, r := range v.RelationsTopo() {
		if !coveredR[r] && v.RelationName(r) != RelHasLabel {
			if _, err := fmt.Fprintf(bw, "@relation %s\n",
				quoteIfNeeded(v.RelationName(r))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func quoteIfNeeded(name string) string {
	if strings.ContainsAny(name, " \t") {
		return `"` + name + `"`
	}
	return name
}
