package ontology

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"oassis/internal/vocab"
)

// Store is the ontology: a fact-set of universal truths with indexes for
// triple-pattern matching, plus string labels attached to elements (used by
// patterns such as `$x hasLabel "child-friendly"`).
//
// A Store is built incrementally and frozen together with its vocabulary
// before query evaluation.
type Store struct {
	v     *vocab.Vocabulary
	facts map[Fact]struct{}

	// Indexes. The slices are sorted at Freeze time for determinism.
	bySP map[spKey][]vocab.TermID // (subject, predicate) -> objects
	byPO map[spKey][]vocab.TermID // (predicate, object) -> subjects
	byP  map[vocab.TermID][]Fact  // predicate -> facts

	labels map[vocab.TermID]map[string]bool // element -> label set

	frozen bool

	// Frozen-store memos. predList and labelIdx are built once at Freeze;
	// the per-predicate closure indexes and stats are built lazily, on
	// first use, under closeMu (see closure.go) so concurrent evaluators
	// share one computation.
	predList []vocab.TermID
	labelIdx map[string][]vocab.TermID

	closeMu   sync.RWMutex
	closures  map[vocab.TermID]*pathClosure
	predStats map[vocab.TermID]predStat

	// Closure index temperature, readable lock-free via ClosureStats():
	// cold counts index builds, warm counts lookups served memoized.
	closureCold atomic.Int64
	closureWarm atomic.Int64

	// planMemo is an opaque memo slot for frozen-store consumers: the
	// sparql plan cache hangs its per-store compiled-plan table here, so
	// cached artifacts share the store's lifetime instead of leaking
	// through a process-global table.
	planMemo sync.Map
}

// PlanMemo exposes the store's consumer memo slot (see the field comment).
// Entries should only be added once the store is frozen.
func (s *Store) PlanMemo() *sync.Map { return &s.planMemo }

// ClosureCacheStats is a snapshot of the closure index counters.
type ClosureCacheStats struct {
	Cold int64 // per-predicate closure indexes built
	Warm int64 // closure lookups served from the memo
}

// ClosureStats snapshots how often path-closure lookups hit the memoized
// index (warm) versus built it (cold).
func (s *Store) ClosureStats() ClosureCacheStats {
	return ClosureCacheStats{Cold: s.closureCold.Load(), Warm: s.closureWarm.Load()}
}

type spKey struct{ a, b vocab.TermID }

// NewStore returns an empty ontology over the given vocabulary.
func NewStore(v *vocab.Vocabulary) *Store {
	return &Store{
		v:         v,
		facts:     make(map[Fact]struct{}),
		bySP:      make(map[spKey][]vocab.TermID),
		byPO:      make(map[spKey][]vocab.TermID),
		byP:       make(map[vocab.TermID][]Fact),
		labels:    make(map[vocab.TermID]map[string]bool),
		closures:  make(map[vocab.TermID]*pathClosure),
		predStats: make(map[vocab.TermID]predStat),
	}
}

// Vocabulary returns the vocabulary the store is defined over.
func (s *Store) Vocabulary() *vocab.Vocabulary { return s.v }

// Add inserts a fact. Duplicate inserts are ignored.
func (s *Store) Add(f Fact) error {
	if s.frozen {
		return fmt.Errorf("ontology: Add after Freeze")
	}
	if _, ok := s.facts[f]; ok {
		return nil
	}
	s.facts[f] = struct{}{}
	s.bySP[spKey{f.S, f.P}] = append(s.bySP[spKey{f.S, f.P}], f.O)
	s.byPO[spKey{f.P, f.O}] = append(s.byPO[spKey{f.P, f.O}], f.S)
	s.byP[f.P] = append(s.byP[f.P], f)
	return nil
}

// MustAdd is Add panicking on error, for construction code.
func (s *Store) MustAdd(f Fact) {
	if err := s.Add(f); err != nil {
		panic(err)
	}
}

// AddLabel attaches a string label to an element.
func (s *Store) AddLabel(e vocab.TermID, label string) error {
	if s.frozen {
		return fmt.Errorf("ontology: AddLabel after Freeze")
	}
	m := s.labels[e]
	if m == nil {
		m = make(map[string]bool)
		s.labels[e] = m
	}
	m[label] = true
	return nil
}

// HasLabel reports whether the element carries the label.
func (s *Store) HasLabel(e vocab.TermID, label string) bool {
	return s.labels[e][label]
}

// LabeledElements returns all elements carrying the label, sorted by ID.
// On a frozen store the result is a shared index slice; do not modify it.
func (s *Store) LabeledElements(label string) []vocab.TermID {
	if s.frozen {
		return s.labelIdx[label]
	}
	var out []vocab.TermID
	for e, m := range s.labels {
		if m[label] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// freezeSortParallelThreshold is the fact count above which Freeze fans the
// per-key index sorts out to a worker pool. Sorting is deterministic either
// way; the threshold only avoids goroutine overhead on small stores.
const freezeSortParallelThreshold = 1 << 16

// Freeze sorts all indexes; the store becomes immutable. On large stores
// the independent per-key sorts run on a GOMAXPROCS-wide worker pool (the
// result is identical — every slice is sorted with the same comparator).
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	if workers := runtime.GOMAXPROCS(0); len(s.facts) >= freezeSortParallelThreshold && workers > 1 {
		s.sortIndexesParallel(workers)
	} else {
		for k := range s.bySP {
			ids := s.bySP[k]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		for k := range s.byPO {
			ids := s.byPO[k]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		for p := range s.byP {
			fs := s.byP[p]
			sort.Slice(fs, func(i, j int) bool { return fs[i].Less(fs[j]) })
		}
	}
	s.predList = make([]vocab.TermID, 0, len(s.byP))
	for p := range s.byP {
		s.predList = append(s.predList, p)
	}
	sort.Slice(s.predList, func(i, j int) bool { return s.predList[i] < s.predList[j] })
	s.labelIdx = make(map[string][]vocab.TermID)
	for e, m := range s.labels {
		for label := range m {
			s.labelIdx[label] = append(s.labelIdx[label], e)
		}
	}
	for label := range s.labelIdx {
		ids := s.labelIdx[label]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	s.frozen = true
}

// sortIndexesParallel distributes the per-key sorts of bySP/byPO/byP over a
// worker pool. Each slice is independent, so workers pull them off shared
// work lists with an atomic cursor.
func (s *Store) sortIndexesParallel(workers int) {
	idSlices := make([][]vocab.TermID, 0, len(s.bySP)+len(s.byPO))
	for k := range s.bySP {
		idSlices = append(idSlices, s.bySP[k])
	}
	for k := range s.byPO {
		idSlices = append(idSlices, s.byPO[k])
	}
	factSlices := make([][]Fact, 0, len(s.byP))
	for p := range s.byP {
		factSlices = append(factSlices, s.byP[p])
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	const batch = 256
	total := int64(len(idSlices) + len(factSlices))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(batch) - batch
				if lo >= total {
					return
				}
				hi := lo + batch
				if hi > total {
					hi = total
				}
				for i := lo; i < hi; i++ {
					if i < int64(len(idSlices)) {
						ids := idSlices[i]
						sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
					} else {
						fs := factSlices[i-int64(len(idSlices))]
						sort.Slice(fs, func(a, b int) bool { return fs[a].Less(fs[b]) })
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Size returns the number of stored facts.
func (s *Store) Size() int { return len(s.facts) }

// Has reports exact membership of a fact.
func (s *Store) Has(f Fact) bool {
	_, ok := s.facts[f]
	return ok
}

// ImpliesFact reports whether the ontology semantically implies f, i.e.
// some stored fact g satisfies f ≤ g (Definition 2.5 applied to 𝒪).
func (s *Store) ImpliesFact(f Fact) bool {
	if s.Has(f) {
		return true
	}
	// Any stored fact with predicate p' ≥ f.P may witness the implication.
	for _, p := range s.Predicates() {
		if !s.v.LeqR(f.P, p) {
			continue
		}
		for _, g := range s.byP[p] {
			if s.v.LeqE(f.S, g.S) && s.v.LeqE(f.O, g.O) {
				return true
			}
		}
	}
	return false
}

// Objects returns the objects o such that ⟨s, p, o⟩ is stored, sorted.
// The returned slice is shared; callers must not modify it.
func (s *Store) Objects(subj, pred vocab.TermID) []vocab.TermID {
	return s.bySP[spKey{subj, pred}]
}

// Subjects returns the subjects x such that ⟨x, p, o⟩ is stored, sorted.
func (s *Store) Subjects(pred, obj vocab.TermID) []vocab.TermID {
	return s.byPO[spKey{pred, obj}]
}

// FactsWithPredicate returns all stored facts with the given predicate,
// sorted. The returned slice is shared; callers must not modify it.
func (s *Store) FactsWithPredicate(p vocab.TermID) []Fact { return s.byP[p] }

// Predicates returns the relations that appear in at least one stored fact,
// sorted by ID. On a frozen store the result is a shared index slice; do not
// modify it.
func (s *Store) Predicates() []vocab.TermID {
	if s.frozen {
		return s.predList
	}
	out := make([]vocab.TermID, 0, len(s.byP))
	for p := range s.byP {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllFacts returns every stored fact as a canonical fact-set.
func (s *Store) AllFacts() FactSet {
	out := make([]Fact, 0, len(s.facts))
	for f := range s.facts {
		out = append(out, f)
	}
	return NewFactSet(out...)
}
