package ontology_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/vocab"
)

func TestLeqFactPaperExamples(t *testing.T) {
	v, _ := paperdata.Build()
	// Example 2.6: f1 = ⟨Sport, doAt, Central Park⟩, f2 = ⟨Biking, doAt, CP⟩.
	f1 := paperdata.Fact(v, "Sport", "doAt", "Central Park")
	f2 := paperdata.Fact(v, "Biking", "doAt", "Central Park")
	if !ontology.LeqFact(v, f1, f2) {
		t.Error("f1 ≤ f2 should hold (Sport ≤ Biking)")
	}
	if ontology.LeqFact(v, f2, f1) {
		t.Error("f2 ≤ f1 must not hold")
	}
	// f3 = ⟨CP, inside, NYC⟩, f4 = ⟨CP, nearBy, NYC⟩: f4 ≤ f3 since
	// nearBy ≤ inside. (The paper writes f3 ≤ f4 with the roles of the
	// names swapped; the relation order makes the nearBy fact the more
	// general one.)
	f3 := paperdata.Fact(v, "Central Park", "inside", "NYC")
	f4 := paperdata.Fact(v, "Central Park", "nearBy", "NYC")
	if !ontology.LeqFact(v, f4, f3) {
		t.Error("⟨CP,nearBy,NYC⟩ ≤ ⟨CP,inside,NYC⟩ should hold")
	}
	// Reflexivity.
	if !ontology.LeqFact(v, f1, f1) {
		t.Error("LeqFact not reflexive")
	}
}

func TestLeqFactWithAny(t *testing.T) {
	v, _ := paperdata.Build()
	eatAt := v.Relation("eatAt")
	maoz := v.Element("Maoz Veg.")
	falafel := v.Element("Falafel")
	anyEat := ontology.Fact{S: ontology.Any, P: eatAt, O: maoz}
	concrete := ontology.Fact{S: falafel, P: eatAt, O: maoz}
	if !ontology.LeqFact(v, anyEat, concrete) {
		t.Error("⟨[], eatAt, Maoz⟩ ≤ ⟨Falafel, eatAt, Maoz⟩ should hold")
	}
	if ontology.LeqFact(v, concrete, anyEat) {
		t.Error("concrete fact must not be ≤ wildcard fact")
	}
	if !ontology.LeqFact(v, anyEat, anyEat) {
		t.Error("wildcard fact should be ≤ itself")
	}
}

func TestFactSetCanonicalForm(t *testing.T) {
	v, _ := paperdata.Build()
	f1 := paperdata.Fact(v, "Biking", "doAt", "Central Park")
	f2 := paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg.")
	a := ontology.NewFactSet(f2, f1, f2, f1)
	if len(a) != 2 {
		t.Fatalf("duplicates not removed: %v", a)
	}
	b := ontology.NewFactSet(f1, f2)
	if !a.Equal(b) {
		t.Error("order of construction should not matter")
	}
	if !a.Contains(f1) || !a.Contains(f2) {
		t.Error("Contains failed")
	}
	if a.Contains(paperdata.Fact(v, "Pasta", "eatAt", "Pine")) {
		t.Error("Contains returned true for absent fact")
	}
}

func TestFactSetUnion(t *testing.T) {
	v, _ := paperdata.Build()
	f1 := paperdata.Fact(v, "Biking", "doAt", "Central Park")
	f2 := paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg.")
	f3 := paperdata.Fact(v, "Pasta", "eatAt", "Pine")
	u := ontology.NewFactSet(f1, f2).Union(ontology.NewFactSet(f2, f3))
	if len(u) != 3 {
		t.Fatalf("union = %v, want 3 facts", u)
	}
}

func TestLeqFactSet(t *testing.T) {
	v, _ := paperdata.Build()
	general := ontology.NewFactSet(paperdata.Fact(v, "Sport", "doAt", "Central Park"))
	specific := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg."),
	)
	if !ontology.LeqFactSet(v, general, specific) {
		t.Error("general ≤ specific should hold")
	}
	if ontology.LeqFactSet(v, specific, general) {
		t.Error("specific ≤ general must not hold")
	}
	// Empty set is below everything.
	if !ontology.LeqFactSet(v, ontology.NewFactSet(), specific) {
		t.Error("∅ ≤ A should hold")
	}
}

// TestSupportExample27 checks Example 2.7: the fact-set
// {⟨Pasta, eatAt, Pine⟩, ⟨Activity, doAt, Bronx Zoo⟩} has support 1/3 in D_u1
// (implied by T2 and T5 out of 6 transactions).
func TestSupportExample27(t *testing.T) {
	v, _ := paperdata.Build()
	du1, du2 := paperdata.Table3(v)
	a := ontology.NewFactSet(
		paperdata.Fact(v, "Pasta", "eatAt", "Pine"),
		paperdata.Fact(v, "Activity", "doAt", "Bronx Zoo"),
	)
	if got := ontology.Support(v, du1, a); got != 1.0/3.0 {
		t.Errorf("supp_u1 = %v, want 1/3", got)
	}
	if got := ontology.Support(v, du2, a); got != 0.5 {
		t.Errorf("supp_u2 = %v, want 1/2", got)
	}
}

// TestSupportExample31 checks Example 3.1's assignment φ16: the fact-set
// {Biking doAt Central Park, [] eatAt Maoz Veg.} has supports 1/3 and 1/2,
// and φ20 (Baseball) has supports 1/6 and 1/2.
func TestSupportExample31(t *testing.T) {
	v, _ := paperdata.Build()
	du1, du2 := paperdata.Table3(v)
	eatAt := v.Relation("eatAt")
	maoz := v.Element("Maoz Veg.")
	phi16 := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		ontology.Fact{S: ontology.Any, P: eatAt, O: maoz},
	)
	if got := ontology.Support(v, du1, phi16); got != 1.0/3.0 {
		t.Errorf("supp_u1(φ16) = %v, want 1/3", got)
	}
	if got := ontology.Support(v, du2, phi16); got != 0.5 {
		t.Errorf("supp_u2(φ16) = %v, want 1/2", got)
	}
	phi20 := ontology.NewFactSet(
		paperdata.Fact(v, "Baseball", "doAt", "Central Park"),
		ontology.Fact{S: ontology.Any, P: eatAt, O: maoz},
	)
	if got := ontology.Support(v, du1, phi20); got != 1.0/6.0 {
		t.Errorf("supp_u1(φ20) = %v, want 1/6", got)
	}
	if got := ontology.Support(v, du2, phi20); got != 0.5 {
		t.Errorf("supp_u2(φ20) = %v, want 1/2", got)
	}
}

// TestSupportExample32 checks the extended assignment of Example 3.2:
// adding the MORE fact ⟨Rent Bikes, doAt, Boathouse⟩ to φ16 keeps average
// support 5/12 (implied by T3, T4, T7); extending instead with multiplicity
// {Biking, Baseball} is implied by T4 and T7 only.
func TestSupportExample32(t *testing.T) {
	v, _ := paperdata.Build()
	du1, du2 := paperdata.Table3(v)
	eatAt := v.Relation("eatAt")
	maoz := v.Element("Maoz Veg.")
	withMore := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse"),
		ontology.Fact{S: ontology.Any, P: eatAt, O: maoz},
	)
	got1, got2 := ontology.Support(v, du1, withMore), ontology.Support(v, du2, withMore)
	if avg := (got1 + got2) / 2; math.Abs(avg-5.0/12.0) > 1e-12 {
		t.Errorf("avg support with MORE fact = %v, want 5/12", avg)
	}
	multi := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Baseball", "doAt", "Central Park"),
		ontology.Fact{S: ontology.Any, P: eatAt, O: maoz},
	)
	if got := ontology.Support(v, du1, multi); got != 1.0/6.0 {
		t.Errorf("supp_u1(multi) = %v, want 1/6 (only T4)", got)
	}
	if got := ontology.Support(v, du2, multi); got != 0.5 {
		t.Errorf("supp_u2(multi) = %v, want 1/2 (only T7)", got)
	}
}

func TestSupportEmptyDB(t *testing.T) {
	v, _ := paperdata.Build()
	a := ontology.NewFactSet(paperdata.Fact(v, "Biking", "doAt", "Central Park"))
	if got := ontology.Support(v, nil, a); got != 0 {
		t.Errorf("support over empty DB = %v, want 0", got)
	}
}

// Property: support is anti-monotone in the fact-set order (Observation 4.4's
// underlying fact): if A ≤ B then supp(A) ≥ supp(B).
func TestPropertySupportAntiMonotone(t *testing.T) {
	v, _ := paperdata.Build()
	du1, _ := paperdata.Table3(v)
	doAt := v.Relation("doAt")
	eatAt := v.Relation("eatAt")
	elems := v.ElementsTopo()
	rng := rand.New(rand.NewSource(99))

	randomFact := func() ontology.Fact {
		p := doAt
		if rng.Intn(2) == 0 {
			p = eatAt
		}
		return ontology.Fact{
			S: elems[rng.Intn(len(elems))],
			P: p,
			O: elems[rng.Intn(len(elems))],
		}
	}
	// generalize a fact by walking subject or object up one step.
	generalize := func(f ontology.Fact) ontology.Fact {
		if rng.Intn(2) == 0 {
			if ps := v.ElementParents(f.S); len(ps) > 0 {
				f.S = ps[rng.Intn(len(ps))]
				return f
			}
		}
		if ps := v.ElementParents(f.O); len(ps) > 0 {
			f.O = ps[rng.Intn(len(ps))]
		}
		return f
	}
	f := func(n uint8) bool {
		var bf []ontology.Fact
		for i := 0; i < 1+int(n)%3; i++ {
			bf = append(bf, randomFact())
		}
		b := ontology.NewFactSet(bf...)
		af := make([]ontology.Fact, len(b))
		for i, x := range b {
			af[i] = generalize(x)
		}
		a := ontology.NewFactSet(af...)
		if !ontology.LeqFactSet(v, a, b) {
			// generalizing each fact must produce a more general set
			return false
		}
		return ontology.Support(v, du1, a) >= ontology.Support(v, du1, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: LeqFactSet is reflexive and transitive on random fact-sets.
func TestPropertyLeqFactSetPreorder(t *testing.T) {
	v, _ := paperdata.Build()
	doAt := v.Relation("doAt")
	elems := v.ElementsTopo()
	rng := rand.New(rand.NewSource(5))
	randomSet := func() ontology.FactSet {
		var fs []ontology.Fact
		for i := 0; i < 1+rng.Intn(3); i++ {
			fs = append(fs, ontology.Fact{
				S: elems[rng.Intn(len(elems))],
				P: doAt,
				O: elems[rng.Intn(len(elems))],
			})
		}
		return ontology.NewFactSet(fs...)
	}
	for i := 0; i < 300; i++ {
		a, b, c := randomSet(), randomSet(), randomSet()
		if !ontology.LeqFactSet(v, a, a) {
			t.Fatal("LeqFactSet not reflexive")
		}
		if ontology.LeqFactSet(v, a, b) && ontology.LeqFactSet(v, b, c) &&
			!ontology.LeqFactSet(v, a, c) {
			t.Fatalf("LeqFactSet not transitive: %v %v %v", a, b, c)
		}
	}
}

func TestFactString(t *testing.T) {
	v, _ := paperdata.Build()
	f := paperdata.Fact(v, "Biking", "doAt", "Central Park")
	if got := f.String(v); got != "Biking doAt Central Park" {
		t.Errorf("String = %q", got)
	}
	anyF := ontology.Fact{S: ontology.Any, P: v.Relation("eatAt"), O: v.Element("Pine")}
	if got := anyF.String(v); got != "[] eatAt Pine" {
		t.Errorf("String with Any = %q", got)
	}
}

func TestFactSetString(t *testing.T) {
	v, _ := paperdata.Build()
	fs := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg."),
	)
	got := fs.String(v)
	if got == "" || len(got) < 10 {
		t.Errorf("FactSet.String = %q", got)
	}
}

var _ = vocab.NoTerm // keep the import when tests are trimmed
