package ontology

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"

	"oassis/internal/obs"
	"oassis/internal/vocab"
)

// This file is the parallel N-Triples ingestion pipeline. The serial
// LoadNTriples (ntriples.go) stays as the reference implementation; this
// pipeline produces a byte-identical vocabulary, store and stats while
// spreading the expensive work — tokenizing, escape decoding, IRI→name
// mapping and term interning — across every core. Stages:
//
//  1. A chunked reader splits the input into ~1 MiB chunks on line
//     boundaries and fans them to workers.
//  2. Per-core workers parse their chunk's lines with the same parser the
//     serial path uses, intern every derived name through a sharded
//     read-mostly interner (vocab.ShardedInterner) receiving *provisional*
//     IDs, and emit a compact op per line.
//  3. A serial merge replays the ops in input order, assigning final
//     vocab.TermIDs at first occurrence — the same order the serial loader
//     interns in — and replaying order edges and errors at their exact
//     lines. This phase touches only integer remap arrays plus one
//     map lookup per *unique* term, so it is cheap relative to parsing.
//  4. Facts are deduplicated in hash shards and the three store indexes
//     (bySP/byPO/byP) plus the fact set are built by concurrent builders,
//     overlapped with the vocabulary freeze; Store.Freeze then sorts the
//     index slices with a parallel worker pool.
//
// Determinism argument: provisional IDs are scheduling-dependent, but they
// are resolved to final IDs only by the merge, which walks ops strictly in
// input order and interns sub-line names in the exact sequence addNTriple
// does. Order edges are replayed in the same sequence, so the vocabulary's
// topological order is identical; store indexes are sets sorted at Freeze,
// so their construction order is immaterial. See DESIGN.md §12.

// LoadOptions tunes LoadNTriplesParallel. The zero value picks defaults.
type LoadOptions struct {
	// Workers is the parse worker count; <= 0 uses GOMAXPROCS.
	Workers int
	// ChunkBytes is the reader chunk size; <= 0 uses 1 MiB.
	ChunkBytes int
	// Obs, when set, feeds the ingest counters and records per-stage spans
	// (ingest_parse, ingest_merge, ingest_index, ingest_freeze) on the
	// trace. Nil disables observation.
	Obs *obs.Observer
}

// maxNTripleLine caps a single input line, matching the serial scanner's
// 16 MiB token limit (and its bufio.ErrTooLong failure mode).
const maxNTripleLine = 16 * 1024 * 1024

// LoadNTriplesParallel parses N-Triples into a fresh vocabulary and store,
// freezing both — exactly like LoadNTriples, but on every core. The result
// (TermIDs, order edges, indexes, labels, stats, and error positions) is
// byte-identical to the serial loader's.
func LoadNTriplesParallel(r io.Reader, opt LoadOptions) (*vocab.Vocabulary, *Store, *NTriplesStats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkBytes := opt.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = 1 << 20
	}
	tr := opt.Obs.Trace()
	im := opt.Obs.IngestSet()
	loadStart := tr.Begin()

	// Stage 1+2: chunk and parse concurrently.
	parseStart := tr.Begin()
	ei := vocab.NewShardedInterner()
	ri := vocab.NewShardedInterner()
	results := parseAllChunks(r, chunkBytes, workers, ei, ri)
	var totalLines int
	for _, cr := range results {
		totalLines += cr.lines
	}
	tr.End("ingest_parse", parseStart,
		obs.Attr{Key: "chunks", Val: int64(len(results))},
		obs.Attr{Key: "lines", Val: int64(totalLines)},
		obs.Attr{Key: "workers", Val: int64(workers)})

	// Stage 3: deterministic merge.
	mergeStart := tr.Begin()
	v := vocab.New()
	s := NewStore(v)
	stats := &NTriplesStats{}
	facts, err := mergeOps(results, v, s, stats, ei, ri)
	tr.End("ingest_merge", mergeStart, obs.Attr{Key: "facts", Val: int64(len(facts))})
	if err != nil {
		im.LoadFailed()
		return nil, nil, nil, err
	}

	// Stage 4: store build overlapped with the vocabulary freeze.
	buildStart := tr.Begin()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buildStoreIndexes(s, facts, workers)
	}()
	freezeErr := v.Freeze()
	<-done
	if freezeErr != nil {
		im.LoadFailed()
		return nil, nil, nil, fmt.Errorf("ntriples: %w", freezeErr)
	}
	tr.End("ingest_index", buildStart, obs.Attr{Key: "unique_facts", Val: int64(s.Size())})

	freezeStart := tr.Begin()
	s.Freeze()
	tr.End("ingest_freeze", freezeStart)

	im.LoadDone(stats.Triples, stats.Facts, stats.Labels,
		stats.SkippedLiterals, stats.SkippedBlank, (tr.Begin() - loadStart).Seconds())
	return v, s, stats, nil
}

// --- stage 1+2: chunked reading and parallel parsing ---

type ntChunk struct {
	index int
	data  []byte
	err   error // reader-side failure attributed to this chunk position
}

// ingestOp is one parsed line, compact enough to stream millions through
// the merge. a/b/c are provisional interner IDs whose meaning depends on
// kind; line is 1-based within the chunk.
type ingestOp struct {
	lit     string // label literal (opLabel only)
	a, b, c uint32
	line    int32
	kind    uint8
}

const (
	opSkipBlank   uint8 = iota // blank-node triple: SkippedBlank++
	opSkipLiteral              // non-label literal object: Triples++, SkippedLiterals++
	opTripleNop                // rdfs:label with IRI object: Triples++ only
	opLabel                    // a=subject element, b=hasLabel relation, lit=label
	opSubProp                  // a=specific relation (subject), b=general relation (object)
	opFactPlain                // a=subject element, b=object element, c=relation
	opFactOrder                // opFactPlain + OrderElements(object, subject)
)

type chunkResult struct {
	ops     []ingestOp
	lines   int   // lines in this chunk (parse stops early on error)
	errLine int32 // 1-based line of err within the chunk; <= 0 means line-less
	err     error
}

// parseAllChunks runs the chunked reader and the worker pool to completion,
// returning per-chunk results in input order. Errors are carried inside the
// results so the merge can surface the first one in line order.
func parseAllChunks(r io.Reader, chunkBytes, workers int, ei, ri *vocab.ShardedInterner) []*chunkResult {
	chunks := make(chan ntChunk, workers)
	var (
		mu      sync.Mutex
		results []*chunkResult
	)
	put := func(idx int, cr *chunkResult) {
		mu.Lock()
		for len(results) <= idx {
			results = append(results, nil)
		}
		results[idx] = cr
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				if ch.err != nil {
					put(ch.index, &chunkResult{err: ch.err, errLine: -1})
					continue
				}
				put(ch.index, parseChunk(ch.data, ei, ri))
			}
		}()
	}
	readChunks(r, chunkBytes, chunks)
	close(chunks)
	wg.Wait()
	return results
}

// readChunks slices r into line-aligned chunks of roughly chunkBytes each
// and sends them downstream. A read failure or an unterminated line beyond
// the 16 MiB cap is attributed to the chunk position where it occurred.
func readChunks(r io.Reader, chunkBytes int, out chan<- ntChunk) {
	var pending []byte
	index := 0
	for {
		buf := make([]byte, chunkBytes)
		n, err := io.ReadFull(r, buf)
		data := buf[:n]
		if n > 0 {
			if nl := bytes.LastIndexByte(data, '\n'); nl >= 0 {
				chunkData := make([]byte, 0, len(pending)+nl+1)
				chunkData = append(chunkData, pending...)
				chunkData = append(chunkData, data[:nl+1]...)
				pending = append(pending[:0], data[nl+1:]...)
				out <- ntChunk{index: index, data: chunkData}
				index++
			} else {
				pending = append(pending, data...)
			}
			if len(pending) > maxNTripleLine {
				out <- ntChunk{index: index, err: bufio.ErrTooLong}
				return
			}
		}
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if len(pending) > 0 {
					out <- ntChunk{index: index, data: pending}
				}
				return
			}
			out <- ntChunk{index: index, err: err}
			return
		}
	}
}

// parseChunk tokenizes one chunk with the serial path's line parser and
// interns every derived name, emitting one op per line. It stops at the
// chunk's first malformed line, mirroring the serial loader's abort.
func parseChunk(data []byte, ei, ri *vocab.ShardedInterner) *chunkResult {
	res := &chunkResult{ops: make([]ingestOp, 0, bytes.Count(data, []byte{'\n'})+1)}
	for start := 0; start < len(data); {
		var lineBytes []byte
		if nl := bytes.IndexByte(data[start:], '\n'); nl >= 0 {
			lineBytes = data[start : start+nl]
			start += nl + 1
		} else {
			lineBytes = data[start:]
			start = len(data)
		}
		res.lines++
		if len(lineBytes) > maxNTripleLine {
			res.err = bufio.ErrTooLong
			res.errLine = -1
			return res
		}
		trimmed := bytes.TrimSpace(lineBytes)
		if len(trimmed) == 0 || trimmed[0] == '#' {
			continue
		}
		t, err := parseNTriple(string(trimmed))
		if err != nil {
			res.err = err
			res.errLine = int32(res.lines)
			return res
		}
		res.addOp(t, int32(res.lines), ei, ri)
	}
	return res
}

// addOp lowers one parsed triple to an op, interning names in the exact
// order addNTriple does so the merge can replay first occurrences.
func (res *chunkResult) addOp(t ntriple, line int32, ei, ri *vocab.ShardedInterner) {
	if t.blank {
		res.ops = append(res.ops, ingestOp{kind: opSkipBlank, line: line})
		return
	}
	switch t.pred {
	case iriLabel:
		if !t.isLiteral {
			res.ops = append(res.ops, ingestOp{kind: opTripleNop, line: line})
			return
		}
		res.ops = append(res.ops, ingestOp{kind: opLabel, line: line,
			a: ei.Intern(localName(t.subj)), b: ri.Intern(RelHasLabel), lit: t.objLit})
		return
	case iriSubPropertyOf:
		if t.isLiteral {
			res.ops = append(res.ops, ingestOp{kind: opSkipLiteral, line: line})
			return
		}
		res.ops = append(res.ops, ingestOp{kind: opSubProp, line: line,
			a: ri.Intern(localName(t.subj)), b: ri.Intern(localName(t.objIRI))})
		return
	}
	if t.isLiteral {
		res.ops = append(res.ops, ingestOp{kind: opSkipLiteral, line: line})
		return
	}
	var rel string
	switch t.pred {
	case iriSubClassOf:
		rel = RelSubClassOf
	case iriType:
		rel = RelInstanceOf
	default:
		rel = localName(t.pred)
	}
	kind := opFactPlain
	// The serial path keys the ordering decision on the derived relation
	// name, not the predicate IRI, so any IRI whose local name collides
	// with subClassOf/instanceOf orders elements too. Mirror that.
	if rel == RelSubClassOf || rel == RelInstanceOf {
		kind = opFactOrder
	}
	res.ops = append(res.ops, ingestOp{kind: kind, line: line,
		a: ei.Intern(localName(t.subj)), b: ei.Intern(localName(t.objIRI)), c: ri.Intern(rel)})
}

// --- stage 3: deterministic merge ---

// mergeOps replays the per-chunk ops in input order against a fresh
// vocabulary, assigning final TermIDs in first-occurrence order, recording
// labels and order edges, and accumulating the (not yet deduplicated) fact
// stream. Errors — parse failures and vocabulary violations alike — surface
// at the same absolute line, with the same message, as the serial loader's.
func mergeOps(results []*chunkResult, v *vocab.Vocabulary, s *Store, stats *NTriplesStats, ei, ri *vocab.ShardedInterner) ([]Fact, error) {
	remapE := newRemap(ei.ProvBound())
	remapR := newRemap(ri.ProvBound())
	elemID := func(prov uint32) (vocab.TermID, error) {
		if id := remapE[prov]; id != vocab.NoTerm {
			return id, nil
		}
		id, err := v.AddElement(ei.Name(prov))
		if err != nil {
			return vocab.NoTerm, err
		}
		remapE[prov] = id
		return id, nil
	}
	relID := func(prov uint32) (vocab.TermID, error) {
		if id := remapR[prov]; id != vocab.NoTerm {
			return id, nil
		}
		id, err := v.AddRelation(ri.Name(prov))
		if err != nil {
			return vocab.NoTerm, err
		}
		remapR[prov] = id
		return id, nil
	}

	nFacts := 0
	for _, cr := range results {
		for i := range cr.ops {
			if k := cr.ops[i].kind; k == opFactPlain || k == opFactOrder {
				nFacts++
			}
		}
	}
	facts := make([]Fact, 0, nFacts)

	base := 0
	for _, cr := range results {
		if cr == nil {
			continue
		}
		for i := range cr.ops {
			op := &cr.ops[i]
			lineErr := func(err error) error {
				return fmt.Errorf("ntriples: line %d: %w", base+int(op.line), err)
			}
			switch op.kind {
			case opSkipBlank:
				stats.SkippedBlank++
			case opSkipLiteral:
				stats.Triples++
				stats.SkippedLiterals++
			case opTripleNop:
				stats.Triples++
			case opLabel:
				stats.Triples++
				e, err := elemID(op.a)
				if err != nil {
					return nil, lineErr(err)
				}
				if _, err := relID(op.b); err != nil {
					return nil, lineErr(err)
				}
				stats.Labels++
				if err := s.AddLabel(e, op.lit); err != nil {
					return nil, lineErr(err)
				}
			case opSubProp:
				stats.Triples++
				spec, err := relID(op.a)
				if err != nil {
					return nil, lineErr(err)
				}
				gen, err := relID(op.b)
				if err != nil {
					return nil, lineErr(err)
				}
				if err := v.OrderRelations(gen, spec); err != nil {
					return nil, lineErr(err)
				}
			case opFactPlain, opFactOrder:
				stats.Triples++
				se, err := elemID(op.a)
				if err != nil {
					return nil, lineErr(err)
				}
				oe, err := elemID(op.b)
				if err != nil {
					return nil, lineErr(err)
				}
				p, err := relID(op.c)
				if err != nil {
					return nil, lineErr(err)
				}
				if op.kind == opFactOrder {
					if err := v.OrderElements(oe, se); err != nil {
						return nil, lineErr(err)
					}
				}
				stats.Facts++
				facts = append(facts, Fact{S: se, P: p, O: oe})
			}
		}
		if cr.err != nil {
			if cr.errLine <= 0 {
				return nil, fmt.Errorf("ntriples: %w", cr.err)
			}
			return nil, fmt.Errorf("ntriples: line %d: %w", base+int(cr.errLine), cr.err)
		}
		base += cr.lines
	}
	return facts, nil
}

func newRemap(bound uint32) []vocab.TermID {
	m := make([]vocab.TermID, bound)
	for i := range m {
		m[i] = vocab.NoTerm
	}
	return m
}

// --- stage 4: parallel store construction ---

// smallStoreThreshold is the fact-stream size below which fanning index
// construction out to goroutines costs more than it saves.
const smallStoreThreshold = 4096

// buildStoreIndexes populates the store's fact set and the three
// triple-pattern indexes from the merged fact stream. Duplicate facts are
// dropped exactly as repeated Store.Add calls would drop them; the indexes
// are sets whose slices Store.Freeze sorts, so build order is immaterial.
func buildStoreIndexes(s *Store, facts []Fact, workers int) {
	if len(facts) < smallStoreThreshold || workers <= 1 {
		for _, f := range facts {
			s.MustAdd(f)
		}
		return
	}

	// Deduplicate in hash shards, in parallel.
	shards := workers
	if shards > 16 {
		shards = 16
	}
	uniq := make([][]Fact, shards)
	var wg sync.WaitGroup
	for p := 0; p < shards; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			seen := make(map[Fact]struct{}, len(facts)/shards+1)
			var u []Fact
			for _, f := range facts {
				if factShard(f, shards) != p {
					continue
				}
				if _, dup := seen[f]; dup {
					continue
				}
				seen[f] = struct{}{}
				u = append(u, f)
			}
			uniq[p] = u
		}(p)
	}
	wg.Wait()
	n := 0
	for _, u := range uniq {
		n += len(u)
	}

	// Build the fact set and each index concurrently: four independent
	// passes over the deduplicated stream.
	wg.Add(4)
	go func() {
		defer wg.Done()
		m := make(map[Fact]struct{}, n)
		for _, u := range uniq {
			for _, f := range u {
				m[f] = struct{}{}
			}
		}
		s.facts = m
	}()
	go func() {
		defer wg.Done()
		m := make(map[spKey][]vocab.TermID, n/2+1)
		for _, u := range uniq {
			for _, f := range u {
				m[spKey{f.S, f.P}] = append(m[spKey{f.S, f.P}], f.O)
			}
		}
		s.bySP = m
	}()
	go func() {
		defer wg.Done()
		m := make(map[spKey][]vocab.TermID, n/2+1)
		for _, u := range uniq {
			for _, f := range u {
				m[spKey{f.P, f.O}] = append(m[spKey{f.P, f.O}], f.S)
			}
		}
		s.byPO = m
	}()
	go func() {
		defer wg.Done()
		m := make(map[vocab.TermID][]Fact, 64)
		for _, u := range uniq {
			for _, f := range u {
				m[f.P] = append(m[f.P], f)
			}
		}
		s.byP = m
	}()
	wg.Wait()
}

// factShard hashes a fact to a dedup shard.
func factShard(f Fact, shards int) int {
	h := uint32(f.S)*2654435761 ^ uint32(f.P)*40503 ^ uint32(f.O)*2246822519
	return int(h % uint32(shards))
}
