package ontology_test

import (
	"bytes"
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/vocab"
)

func TestStoreIndexes(t *testing.T) {
	v, s := paperdata.Build()
	inside := v.Relation("inside")
	nyc := v.Element("NYC")
	cp := v.Element("Central Park")

	subs := s.Subjects(inside, nyc)
	if len(subs) != 3 {
		t.Fatalf("Subjects(inside, NYC) = %d, want 3 (CP, Bronx Zoo, Madison Sq)", len(subs))
	}
	objs := s.Objects(cp, inside)
	if len(objs) != 1 || objs[0] != nyc {
		t.Fatalf("Objects(CP, inside) = %v, want [NYC]", objs)
	}
	if !s.Has(ontology.Fact{S: cp, P: inside, O: nyc}) {
		t.Error("Has(CP inside NYC) = false")
	}
	if s.Has(ontology.Fact{S: nyc, P: inside, O: cp}) {
		t.Error("Has(NYC inside CP) = true")
	}
	facts := s.FactsWithPredicate(inside)
	if len(facts) != 4 {
		t.Fatalf("FactsWithPredicate(inside) = %d, want 4", len(facts))
	}
}

func TestStoreLabels(t *testing.T) {
	v, s := paperdata.Build()
	cp := v.Element("Central Park")
	if !s.HasLabel(cp, "child-friendly") {
		t.Error("Central Park should be child-friendly")
	}
	if s.HasLabel(v.Element("NYC"), "child-friendly") {
		t.Error("NYC should not be child-friendly")
	}
	labeled := s.LabeledElements("child-friendly")
	if len(labeled) != 3 {
		t.Fatalf("LabeledElements = %d, want 3", len(labeled))
	}
	if len(s.LabeledElements("no-such-label")) != 0 {
		t.Error("unknown label should match nothing")
	}
}

func TestStoreImpliesFact(t *testing.T) {
	v, s := paperdata.Build()
	// Exact fact.
	if !s.ImpliesFact(paperdata.Fact(v, "Central Park", "inside", "NYC")) {
		t.Error("exact fact not implied")
	}
	// Relation generalization: CP nearBy NYC ≤ CP inside NYC.
	if !s.ImpliesFact(paperdata.Fact(v, "Central Park", "nearBy", "NYC")) {
		t.Error("⟨CP, nearBy, NYC⟩ should be implied via nearBy ≤ inside")
	}
	// Element generalization: Park instanceOf Park via CP instanceOf Park.
	if !s.ImpliesFact(paperdata.Fact(v, "Park", "instanceOf", "Park")) {
		t.Error("⟨Park, instanceOf, Park⟩ should be implied semantically")
	}
	// Not implied at all.
	if s.ImpliesFact(paperdata.Fact(v, "NYC", "inside", "Central Park")) {
		t.Error("reversed containment must not be implied")
	}
}

func TestStoreMutationAfterFreeze(t *testing.T) {
	v, s := paperdata.Build() // Build freezes
	f := paperdata.Fact(v, "Pine", "inside", "NYC")
	if err := s.Add(f); err == nil {
		t.Error("Add after Freeze succeeded")
	}
	if err := s.AddLabel(v.Element("Pine"), "x"); err == nil {
		t.Error("AddLabel after Freeze succeeded")
	}
}

func TestStoreDuplicateAdd(t *testing.T) {
	v := vocab.New()
	a := v.MustElement("a")
	b := v.MustElement("b")
	r := v.MustRelation("r")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := ontology.NewStore(v)
	f := ontology.Fact{S: a, P: r, O: b}
	s.MustAdd(f)
	s.MustAdd(f)
	s.Freeze()
	if s.Size() != 1 {
		t.Fatalf("Size = %d, want 1", s.Size())
	}
	if got := s.Objects(a, r); len(got) != 1 {
		t.Fatalf("duplicate add polluted index: %v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"two tokens":              "a subClassOf\n",
		"four tokens":             "a b c d\n",
		"bare @element":           "@element\n",
		"unterminated literal":    `a hasLabel "oops` + "\n",
		"subclass cycle detected": "a subClassOf b\nb subClassOf a\n",
	}
	for name, text := range cases {
		if _, _, err := ontology.Load(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Load accepted %q", name, text)
		}
	}
}

func TestLoadCommentsAndBlanks(t *testing.T) {
	text := "# header\n\n  \na subClassOf b\n# trailing\n"
	v, s, err := ontology.Load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 1 {
		t.Fatalf("Size = %d, want 1", s.Size())
	}
	if !v.LeqE(v.Element("b"), v.Element("a")) {
		t.Error("subClassOf should order b ≤ a")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	_, s := paperdata.Build()
	var buf bytes.Buffer
	if err := ontology.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	v2, s2, err := ontology.Load(&buf)
	if err != nil {
		t.Fatalf("reloading written ontology: %v", err)
	}
	if s2.Size() != s.Size() {
		t.Fatalf("round trip fact count %d != %d", s2.Size(), s.Size())
	}
	// Orders survive.
	if !v2.LeqE(v2.Element("Sport"), v2.Element("Biking")) {
		t.Error("element order lost in round trip")
	}
	if !v2.LeqR(v2.Relation("nearBy"), v2.Relation("inside")) {
		t.Error("relation order lost in round trip")
	}
	// Labels survive.
	if !s2.HasLabel(v2.Element("Central Park"), "child-friendly") {
		t.Error("labels lost in round trip")
	}
}

func TestAllFacts(t *testing.T) {
	_, s := paperdata.Build()
	all := s.AllFacts()
	if len(all) != s.Size() {
		t.Fatalf("AllFacts = %d facts, Size = %d", len(all), s.Size())
	}
	// Canonical: sorted and unique.
	for i := 1; i < len(all); i++ {
		if !all[i-1].Less(all[i]) {
			t.Fatal("AllFacts not strictly sorted")
		}
	}
}

func TestParseFormatFactRoundTrip(t *testing.T) {
	v, _ := paperdata.Build()
	for _, line := range []string{
		`Biking doAt "Central Park"`,
		`"Maoz Veg." nearBy "Central Park"`,
		`Falafel eatAt Pine`,
	} {
		f, err := ontology.ParseFact(line, v)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		printed := ontology.FormatFact(f, v)
		f2, err := ontology.ParseFact(printed, v)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if f != f2 {
			t.Errorf("round trip changed fact: %q -> %q", line, printed)
		}
	}
	for _, bad := range []string{
		"Biking doAt",                    // two tokens
		"Nothing doAt \"Central Park\"",  // unknown subject
		"Biking flysTo \"Central Park\"", // unknown relation
		"Biking doAt \"Atlantis\"",       // unknown object
	} {
		if _, err := ontology.ParseFact(bad, v); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
