package ontology

import (
	"sort"

	"oassis/internal/vocab"
)

// This file implements the per-predicate transitive-closure indexes behind
// zero-or-more property paths (`subClassOf*`) and the reachability checks of
// the WHERE stage. The paper's prototype (like the seed evaluator here)
// recomputed a BFS closure on every pattern match; a frozen store instead
// memoizes, per predicate, the full forward/backward reachability relation
// once and answers every later query with a slice lookup. The memo is built
// lazily — a store pays for a predicate's closure only if some query walks a
// path over it — and is concurrency-safe, so evaluators running on different
// goroutines share one computation.

// Edge is one (subject, object) pair of a predicate's zero-or-more-step
// reachability relation: O is reachable from S by following pred edges.
type Edge struct{ S, O vocab.TermID }

// pathClosure is the reachability index of a single predicate.
type pathClosure struct {
	// fwd[s] lists everything reachable from s (including s itself),
	// sorted by ID. Nodes without an outgoing pred edge are absent: their
	// closure is exactly {self}.
	fwd map[vocab.TermID][]vocab.TermID
	// bwd[o] lists everything that reaches o (including o itself), sorted.
	bwd map[vocab.TermID][]vocab.TermID
	// pairs is the full relation over mentioned nodes: every (s, t) with t
	// in fwd(s), plus the zero-length (o, o) pairs of pure objects. Sorted
	// by (S, O) and duplicate-free.
	pairs []Edge
	// nodes counts the distinct terms mentioned by the predicate's facts.
	nodes int
}

// closureOf returns the memoized closure index for pred, building it on
// first use. Callers must only invoke it on a frozen store (the fact-set is
// immutable from then on, so the memo can never go stale).
func (s *Store) closureOf(pred vocab.TermID) *pathClosure {
	s.closeMu.RLock()
	c := s.closures[pred]
	s.closeMu.RUnlock()
	if c != nil {
		s.closureWarm.Add(1)
		return c
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if c = s.closures[pred]; c != nil {
		s.closureWarm.Add(1)
		return c
	}
	s.closureCold.Add(1)
	c = s.buildClosure(pred)
	s.closures[pred] = c
	return c
}

// buildClosure computes the reachability index of one predicate from its
// stored facts. Cycles are tolerated (the walk is a seen-set BFS).
func (s *Store) buildClosure(pred vocab.TermID) *pathClosure {
	adj := make(map[vocab.TermID][]vocab.TermID)
	radj := make(map[vocab.TermID][]vocab.TermID)
	for _, f := range s.byP[pred] {
		adj[f.S] = append(adj[f.S], f.O)
		radj[f.O] = append(radj[f.O], f.S)
	}
	c := &pathClosure{
		fwd: make(map[vocab.TermID][]vocab.TermID, len(adj)),
		bwd: make(map[vocab.TermID][]vocab.TermID, len(radj)),
	}
	for subj := range adj {
		c.fwd[subj] = reachSet(adj, subj)
	}
	for obj := range radj {
		c.bwd[obj] = reachSet(radj, obj)
	}
	for subj, l := range c.fwd {
		for _, t := range l {
			c.pairs = append(c.pairs, Edge{S: subj, O: t})
		}
	}
	c.nodes = len(adj)
	for obj := range radj {
		if _, isSubj := adj[obj]; !isSubj {
			c.pairs = append(c.pairs, Edge{S: obj, O: obj})
			c.nodes++
		}
	}
	sort.Slice(c.pairs, func(i, j int) bool {
		if c.pairs[i].S != c.pairs[j].S {
			return c.pairs[i].S < c.pairs[j].S
		}
		return c.pairs[i].O < c.pairs[j].O
	})
	return c
}

// reachSet returns start plus everything reachable from it over adj, sorted.
func reachSet(adj map[vocab.TermID][]vocab.TermID, start vocab.TermID) []vocab.TermID {
	seen := map[vocab.TermID]bool{start: true}
	stack := []vocab.TermID{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[x] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	out := make([]vocab.TermID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForwardClosure returns subj plus everything reachable from it by zero or
// more pred edges, sorted by ID — or nil when subj has no outgoing pred edge
// (the closure is then exactly {subj}). On a frozen store the result is a
// shared index slice; callers must not modify it.
func (s *Store) ForwardClosure(subj, pred vocab.TermID) []vocab.TermID {
	if s.frozen {
		return s.closureOf(pred).fwd[subj]
	}
	if len(s.bySP[spKey{subj, pred}]) == 0 {
		return nil
	}
	return bfsClosure(subj, func(x vocab.TermID) []vocab.TermID {
		return s.bySP[spKey{x, pred}]
	})
}

// BackwardClosure returns obj plus everything that reaches it by zero or
// more pred edges, sorted by ID — or nil when obj has no incoming pred edge.
// On a frozen store the result is a shared index slice; do not modify.
func (s *Store) BackwardClosure(obj, pred vocab.TermID) []vocab.TermID {
	if s.frozen {
		return s.closureOf(pred).bwd[obj]
	}
	if len(s.byPO[spKey{pred, obj}]) == 0 {
		return nil
	}
	return bfsClosure(obj, func(x vocab.TermID) []vocab.TermID {
		return s.byPO[spKey{pred, x}]
	})
}

func bfsClosure(start vocab.TermID, next func(vocab.TermID) []vocab.TermID) []vocab.TermID {
	seen := map[vocab.TermID]bool{start: true}
	stack := []vocab.TermID{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range next(x) {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	out := make([]vocab.TermID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reaches reports a path of zero or more pred edges from subj to obj. When
// the predicate's closure index is already built this is a binary search;
// otherwise it runs an early-exit BFS that stops the moment obj is found,
// without materializing (or memoizing) the full closure.
func (s *Store) Reaches(subj, pred, obj vocab.TermID) bool {
	if subj == obj {
		return true // zero-length path
	}
	if s.frozen {
		s.closeMu.RLock()
		c := s.closures[pred]
		s.closeMu.RUnlock()
		if c != nil {
			s.closureWarm.Add(1)
			l := c.fwd[subj]
			i := sort.Search(len(l), func(i int) bool { return l[i] >= obj })
			return i < len(l) && l[i] == obj
		}
	}
	// Early-exit BFS: no sort, no closure materialization.
	seen := map[vocab.TermID]bool{subj: true}
	stack := []vocab.TermID{subj}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range s.bySP[spKey{x, pred}] {
			if n == obj {
				return true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return false
}

// ClosurePairs returns every (s, o) pair with o reachable from s by zero or
// more pred edges, over the nodes the predicate's facts mention: pure
// objects contribute their zero-length pair, subjects their full forward
// closure. Sorted by (S, O), duplicate-free. On a frozen store the result is
// a shared index slice; do not modify.
func (s *Store) ClosurePairs(pred vocab.TermID) []Edge {
	if s.frozen {
		return s.closureOf(pred).pairs
	}
	// Unfrozen fallback: build a throwaway index.
	return s.buildClosure(pred).pairs
}

// StarStats returns the size of the predicate's reachability relation and
// the number of nodes its facts mention — the selectivity statistics the
// query planner uses to order `p*` patterns.
func (s *Store) StarStats(pred vocab.TermID) (pairs, nodes int) {
	if !s.frozen {
		c := s.buildClosure(pred)
		return len(c.pairs), c.nodes
	}
	c := s.closureOf(pred)
	return len(c.pairs), c.nodes
}

// PredStats returns the fact count and the number of distinct subjects and
// objects stored under a predicate — the planner's estimates for half-bound
// triple patterns. Memoized on frozen stores.
func (s *Store) PredStats(pred vocab.TermID) (facts, subjects, objects int) {
	if s.frozen {
		s.closeMu.RLock()
		st, ok := s.predStats[pred]
		s.closeMu.RUnlock()
		if ok {
			return st.facts, st.subjects, st.objects
		}
	}
	subj := make(map[vocab.TermID]struct{})
	obj := make(map[vocab.TermID]struct{})
	fs := s.byP[pred]
	for _, f := range fs {
		subj[f.S] = struct{}{}
		obj[f.O] = struct{}{}
	}
	facts, subjects, objects = len(fs), len(subj), len(obj)
	if s.frozen {
		s.closeMu.Lock()
		s.predStats[pred] = predStat{facts: facts, subjects: subjects, objects: objects}
		s.closeMu.Unlock()
	}
	return facts, subjects, objects
}

type predStat struct{ facts, subjects, objects int }
