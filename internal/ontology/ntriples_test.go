package ontology_test

import (
	"strings"
	"testing"

	"oassis/internal/ontology"
)

const sampleNT = `
# YAGO-flavoured snippet of the paper's Figure 1
<http://yago/Central_Park> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://yago/Park> .
<http://yago/Park> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://yago/Outdoor> .
<http://yago/Outdoor> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://yago/Attraction> .
<http://yago/Central_Park> <http://yago/inside> <http://yago/NYC> .
<http://yago/inside> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://yago/nearBy> .
<http://yago/Central_Park> <http://www.w3.org/2000/01/rdf-schema#label> "child-friendly"@en .
<http://yago/Central_Park> <http://yago/area> "341"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:blank1 <http://yago/inside> <http://yago/NYC> .
`

func TestLoadNTriples(t *testing.T) {
	v, s, stats, err := ontology.LoadNTriples(strings.NewReader(sampleNT))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Triples != 7 || stats.SkippedBlank != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.SkippedLiterals != 1 {
		t.Errorf("literal area triple should be skipped: %+v", stats)
	}
	if stats.Labels != 1 {
		t.Errorf("labels = %d", stats.Labels)
	}
	// IRI → name mapping undoes underscores.
	cp := v.Element("Central Park")
	if cp == -1 {
		t.Fatal("Central Park not interned")
	}
	// rdf:type and rdfs:subClassOf build the element order.
	if !v.LeqE(v.Element("Attraction"), cp) {
		t.Error("Attraction ≤ Central Park should hold through type+subClassOf")
	}
	// rdfs:subPropertyOf builds the relation order.
	if !v.LeqR(v.Relation("nearBy"), v.Relation("inside")) {
		t.Error("nearBy ≤ inside lost")
	}
	// rdfs:label becomes an element label.
	if !s.HasLabel(cp, "child-friendly") {
		t.Error("label lost")
	}
	// Plain predicate becomes a fact.
	if !s.Has(ontology.Fact{S: cp, P: v.Relation("inside"), O: v.Element("NYC")}) {
		t.Error("inside fact lost")
	}
}

func TestNTriplesLiteralEscapes(t *testing.T) {
	nt := `<http://x/A> <http://www.w3.org/2000/01/rdf-schema#label> "line\nbreak \"q\" é" .` + "\n"
	v, s, _, err := ontology.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasLabel(v.Element("A"), "line\nbreak \"q\" é") {
		t.Error("escape decoding failed")
	}
}

func TestNTriplesPercentDecoding(t *testing.T) {
	nt := `<http://x/Maoz%20Veg.> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Restaurant> .` + "\n"
	v, _, _, err := ontology.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if v.Element("Maoz Veg.") == -1 {
		t.Error("percent decoding failed")
	}
}

func TestNTriplesErrors(t *testing.T) {
	cases := map[string]string{
		"no dot":              `<http://x/a> <http://x/p> <http://x/b>`,
		"unterminated IRI":    `<http://x/a <http://x/p> <http://x/b> .`,
		"unterminated string": `<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "oops .`,
		"garbage object":      `<http://x/a> <http://x/p> garbage .`,
	}
	for name, line := range cases {
		if _, _, _, err := ontology.LoadNTriples(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
}

// TestNTriplesToQueryPipeline imports N-Triples and runs a query against the
// result, proving the import integrates with the rest of the system.
func TestNTriplesToQueryPipeline(t *testing.T) {
	nt := sampleNT + `
<http://yago/Biking> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://yago/Activity> .
<http://yago/doAt> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://yago/relatedTo> .
`
	v, s, _, err := ontology.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if v.Relation("doAt") == -1 {
		t.Fatal("doAt not interned")
	}
	if s.Size() == 0 {
		t.Fatal("empty store")
	}
}
