package ontology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"oassis/internal/vocab"
)

// The paper's prototype drew its ontology from WordNet, YAGO and Foursquare
// (Section 6.3). This file imports the W3C N-Triples format those knowledge
// bases export, mapping the RDF/RDFS vocabulary onto the OASSIS model:
//
//	rdfs:subClassOf     → subClassOf facts + the ≤ℰ order
//	rdf:type            → instanceOf facts + the ≤ℰ order
//	rdfs:subPropertyOf  → the ≤ℛ order
//	rdfs:label          → element labels
//
// IRIs become vocabulary names by taking the fragment or last path segment
// and undoing YAGO/DBpedia-style underscore and percent encoding
// ("Central_Park" → "Central Park"). Non-label literal objects are counted
// and skipped: OASSIS facts relate elements.

// Well-known RDF/RDFS IRIs.
const (
	iriSubClassOf    = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	iriType          = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	iriSubPropertyOf = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	iriLabel         = "http://www.w3.org/2000/01/rdf-schema#label"
)

// NTriplesStats reports what an import did.
type NTriplesStats struct {
	Triples         int // parsed triples
	Facts           int // facts added to the store
	Labels          int // labels attached
	SkippedLiterals int // non-label literal objects ignored
	SkippedBlank    int // triples with blank nodes ignored
}

// LoadNTriples parses N-Triples into a fresh vocabulary and store, freezing
// both.
func LoadNTriples(r io.Reader) (*vocab.Vocabulary, *Store, *NTriplesStats, error) {
	v := vocab.New()
	s := NewStore(v)
	stats := &NTriplesStats{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTriple(line)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		if t.blank {
			stats.SkippedBlank++
			continue
		}
		stats.Triples++
		if err := addNTriple(v, s, t, stats); err != nil {
			return nil, nil, nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("ntriples: %w", err)
	}
	if err := v.Freeze(); err != nil {
		return nil, nil, nil, fmt.Errorf("ntriples: %w", err)
	}
	s.Freeze()
	return v, s, stats, nil
}

type ntriple struct {
	subj, pred string // IRIs
	objIRI     string // set when the object is an IRI
	objLit     string // set when the object is a literal
	isLiteral  bool
	blank      bool
}

// parseNTriple parses one `<s> <p> <o> .` line (object IRI or literal).
func parseNTriple(line string) (ntriple, error) {
	var t ntriple
	rest := line
	var err error
	if strings.HasPrefix(rest, "_:") {
		t.blank = true
		return t, nil
	}
	t.subj, rest, err = readIRI(rest)
	if err != nil {
		return t, fmt.Errorf("subject: %w", err)
	}
	rest = strings.TrimLeft(rest, " \t")
	t.pred, rest, err = readIRI(rest)
	if err != nil {
		return t, fmt.Errorf("predicate: %w", err)
	}
	rest = strings.TrimLeft(rest, " \t")
	switch {
	case strings.HasPrefix(rest, "<"):
		t.objIRI, rest, err = readIRI(rest)
		if err != nil {
			return t, fmt.Errorf("object: %w", err)
		}
	case strings.HasPrefix(rest, `"`):
		t.objLit, rest, err = readLiteral(rest)
		if err != nil {
			return t, fmt.Errorf("object: %w", err)
		}
		t.isLiteral = true
	case strings.HasPrefix(rest, "_:"):
		t.blank = true
		return t, nil
	default:
		return t, fmt.Errorf("unrecognized object %q", rest)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return t, fmt.Errorf("missing terminating dot (got %q)", rest)
	}
	return t, nil
}

// readIRI consumes "<...>" and returns the IRI and the remainder.
func readIRI(s string) (string, string, error) {
	if !strings.HasPrefix(s, "<") {
		return "", "", fmt.Errorf("expected IRI, got %q", s)
	}
	end := strings.IndexByte(s, '>')
	if end < 0 {
		return "", "", fmt.Errorf("unterminated IRI")
	}
	return s[1:end], s[end+1:], nil
}

// readLiteral consumes a quoted literal with optional @lang or ^^<type>
// suffix, returning the unescaped lexical value.
func readLiteral(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected literal, got %q", s)
	}
	// Find the closing quote honouring backslash escapes.
	i := 1
	var sb strings.Builder
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"', '\\':
				sb.WriteByte(s[i+1])
			case 'u', 'U':
				// Keep \u escapes verbatim-decoded when simple.
				width := 4
				if s[i+1] == 'U' {
					width = 8
				}
				if i+2+width <= len(s) {
					if n, err := strconv.ParseUint(s[i+2:i+2+width], 16, 32); err == nil {
						sb.WriteRune(rune(n))
						i += 2 + width
						continue
					}
				}
				sb.WriteByte(s[i+1])
			default:
				sb.WriteByte(s[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			rest := s[i+1:]
			// Skip @lang or ^^<datatype>.
			if strings.HasPrefix(rest, "@") {
				j := strings.IndexAny(rest, " \t")
				if j < 0 {
					return "", "", fmt.Errorf("truncated language tag")
				}
				rest = rest[j:]
			} else if strings.HasPrefix(rest, "^^") {
				_, r2, err := readIRI(rest[2:])
				if err != nil {
					return "", "", err
				}
				rest = r2
			}
			return sb.String(), rest, nil
		}
		sb.WriteByte(c)
		i++
	}
	return "", "", fmt.Errorf("unterminated literal")
}

// addNTriple maps one triple into the model.
func addNTriple(v *vocab.Vocabulary, s *Store, t ntriple, stats *NTriplesStats) error {
	switch t.pred {
	case iriLabel:
		if !t.isLiteral {
			return nil // odd but harmless
		}
		e, err := v.AddElement(localName(t.subj))
		if err != nil {
			return err
		}
		if _, err := v.AddRelation(RelHasLabel); err != nil {
			return err
		}
		stats.Labels++
		return s.AddLabel(e, t.objLit)
	case iriSubPropertyOf:
		if t.isLiteral {
			stats.SkippedLiterals++
			return nil
		}
		spec, err := v.AddRelation(localName(t.subj))
		if err != nil {
			return err
		}
		gen, err := v.AddRelation(localName(t.objIRI))
		if err != nil {
			return err
		}
		return v.OrderRelations(gen, spec)
	}
	if t.isLiteral {
		stats.SkippedLiterals++
		return nil
	}
	se, err := v.AddElement(localName(t.subj))
	if err != nil {
		return err
	}
	oe, err := v.AddElement(localName(t.objIRI))
	if err != nil {
		return err
	}
	var rel string
	switch t.pred {
	case iriSubClassOf:
		rel = RelSubClassOf
	case iriType:
		rel = RelInstanceOf
	default:
		rel = localName(t.pred)
	}
	p, err := v.AddRelation(rel)
	if err != nil {
		return err
	}
	if rel == RelSubClassOf || rel == RelInstanceOf {
		if err := v.OrderElements(oe, se); err != nil {
			return err
		}
	}
	stats.Facts++
	return s.Add(Fact{S: se, P: p, O: oe})
}

// localName derives a human-readable vocabulary name from an IRI: the
// fragment or last path segment, percent-decoded, with YAGO/DBpedia
// underscores turned back into spaces.
func localName(iri string) string {
	name := iri
	if i := strings.LastIndexByte(name, '#'); i >= 0 {
		name = name[i+1:]
	} else if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = percentDecode(name)
	name = strings.ReplaceAll(name, "_", " ")
	if name == "" {
		return iri
	}
	return name
}

func percentDecode(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if n, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				sb.WriteByte(byte(n))
				i += 2
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
