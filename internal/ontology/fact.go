// Package ontology implements facts, fact-sets and the ontology store of
// Section 2 of the OASSIS paper: a fact is a triple ⟨e1, r, e2⟩ over the
// vocabulary, a fact-set is a set of facts, and both carry the semantic
// partial order of Definition 2.5. The ontology itself is a fact-set holding
// "universal truth", stored with indexes so the SPARQL substrate can match
// triple patterns efficiently.
package ontology

import (
	"sort"
	"strings"

	"oassis/internal/vocab"
)

// Any is a pseudo-term standing for the OASSIS-QL wildcard `[]`: the most
// general value, below every term in the order. It may appear in the fact
// positions of meta-fact-sets (e.g. `[] eatAt $z`), making the implied fact
// existential: a transaction implies ⟨Any, eatAt, Maoz⟩ if it contains any
// eatAt-Maoz fact at all.
const Any vocab.TermID = -2

// Fact is a triple ⟨Subject, Predicate, Object⟩ ∈ ℰ × ℛ × ℰ (Definition 2.2).
// Positions may hold Any (see above) when the fact comes from a meta-fact-set
// with wildcards.
type Fact struct {
	S vocab.TermID // subject element
	P vocab.TermID // predicate relation
	O vocab.TermID // object element
}

// Less orders facts lexicographically; it is the canonical fact-set order.
func (f Fact) Less(g Fact) bool {
	if f.S != g.S {
		return f.S < g.S
	}
	if f.P != g.P {
		return f.P < g.P
	}
	return f.O < g.O
}

// String renders a fact using the vocabulary's names in RDF-ish notation.
func (f Fact) String(v *vocab.Vocabulary) string {
	return termName(v, vocab.Element, f.S) + " " +
		termName(v, vocab.Relation, f.P) + " " +
		termName(v, vocab.Element, f.O)
}

func termName(v *vocab.Vocabulary, k vocab.Kind, id vocab.TermID) string {
	if id == Any {
		return "[]"
	}
	if k == vocab.Element {
		return v.ElementName(id)
	}
	return v.RelationName(id)
}

// leqTerm is term order extended with the Any wildcard (Any is below
// everything).
func leqTerm(v *vocab.Vocabulary, k vocab.Kind, a, b vocab.TermID) bool {
	if a == Any {
		return true
	}
	if b == Any {
		return false
	}
	return v.Leq(k, a, b)
}

// LeqFact reports f ≤ f′ under Definition 2.5: subject, predicate and object
// are each more general than (or equal to) their counterpart. The Any
// wildcard is treated as the bottom (most general) term.
func LeqFact(v *vocab.Vocabulary, f, g Fact) bool {
	return leqTerm(v, vocab.Element, f.S, g.S) &&
		leqTerm(v, vocab.Relation, f.P, g.P) &&
		leqTerm(v, vocab.Element, f.O, g.O)
}

// FactSet is a canonical (sorted, deduplicated) set of facts.
type FactSet []Fact

// NewFactSet returns the canonical fact-set holding the given facts.
func NewFactSet(facts ...Fact) FactSet {
	fs := make(FactSet, len(facts))
	copy(fs, facts)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Less(fs[j]) })
	out := fs[:0]
	for i, f := range fs {
		if i == 0 || f != fs[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Contains reports exact membership of f in the set.
func (fs FactSet) Contains(f Fact) bool {
	i := sort.Search(len(fs), func(i int) bool { return !fs[i].Less(f) })
	return i < len(fs) && fs[i] == f
}

// Union returns the canonical union of two fact-sets.
func (fs FactSet) Union(other FactSet) FactSet {
	all := make([]Fact, 0, len(fs)+len(other))
	all = append(all, fs...)
	all = append(all, other...)
	return NewFactSet(all...)
}

// Equal reports exact set equality.
func (fs FactSet) Equal(other FactSet) bool {
	if len(fs) != len(other) {
		return false
	}
	for i := range fs {
		if fs[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the fact-set with facts joined by ". " as in the paper's
// Table 3.
func (fs FactSet) String(v *vocab.Vocabulary) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String(v)
	}
	return strings.Join(parts, ". ")
}

// LeqFactSet reports A ≤ B under Definition 2.5: every fact of A is
// generalized-matched by some fact of B.
func LeqFactSet(v *vocab.Vocabulary, a, b FactSet) bool {
	for _, f := range a {
		found := false
		for _, g := range b {
			if LeqFact(v, f, g) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Implies reports whether transaction t (viewed as a fact-set) implies the
// fact-set a, i.e. a ≤ t.
func Implies(v *vocab.Vocabulary, t, a FactSet) bool {
	return LeqFactSet(v, a, t)
}

// Support computes supp(A) = |{T ∈ db | A ≤ T}| / |db| over a personal
// database of transactions (Section 2). It returns 0 for an empty database.
func Support(v *vocab.Vocabulary, db []FactSet, a FactSet) float64 {
	if len(db) == 0 {
		return 0
	}
	n := 0
	for _, t := range db {
		if Implies(v, t, a) {
			n++
		}
	}
	return float64(n) / float64(len(db))
}
