package ontology_test

import (
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
)

// FuzzLoad drives the textual ontology loader with arbitrary inputs.
func FuzzLoad(f *testing.F) {
	f.Add(paperdata.OntologyText)
	f.Add("a subClassOf b\nb instanceOf c\n")
	f.Add("@element x y\n@relation r\n")
	f.Add(`e hasLabel "multi word"` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _, _ = ontology.Load(strings.NewReader(input))
	})
}

// FuzzLoadNTriples drives the N-Triples importer.
func FuzzLoadNTriples(f *testing.F) {
	f.Add("<http://x/a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/b> .\n")
	f.Add(`<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "lAbel"@en .` + "\n")
	f.Add("_:b <http://x/p> <http://x/o> .\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _, _, _ = ontology.LoadNTriples(strings.NewReader(input))
	})
}
