package ontology_test

import (
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
)

// FuzzLoad drives the textual ontology loader with arbitrary inputs.
func FuzzLoad(f *testing.F) {
	f.Add(paperdata.OntologyText)
	f.Add("a subClassOf b\nb instanceOf c\n")
	f.Add("@element x y\n@relation r\n")
	f.Add(`e hasLabel "multi word"` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _, _ = ontology.Load(strings.NewReader(input))
	})
}

// FuzzLoadNTriples drives the N-Triples importer differentially: every
// input is fed to both the serial and the parallel loader (with a tiny
// chunk size so lines straddle chunk boundaries) and any divergence in
// outcome is a crash. The corpus seeds the chunk-boundary hazards: lines
// longer than a chunk, multi-line documents, escapes that a splitter must
// not cut through.
func FuzzLoadNTriples(f *testing.F) {
	f.Add("<http://x/a> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://x/b> .\n")
	f.Add(`<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "lAbel"@en .` + "\n")
	f.Add("_:b <http://x/p> <http://x/o> .\n")
	// Chunk-boundary seeds: a long literal forcing the pending-buffer path,
	// a run of short lines around the 64-byte mark, escapes near the cut.
	f.Add(`<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "` + strings.Repeat("y", 300) + `" .` + "\n")
	f.Add(strings.Repeat("<http://x/a> <http://x/p> <http://x/b> .\n", 8))
	f.Add(`<http://x/a> <http://www.w3.org/2000/01/rdf-schema#label> "tail esc é \U0001F600 \\" .` + "\n")
	f.Add("<http://x/a> <http://x/p> <http://x/b> .\r\n# c\r\n<http://x/b> <http://x/p> <http://x/c> .")
	f.Fuzz(func(t *testing.T, input string) {
		sv, ss, sstats, serr := ontology.LoadNTriples(strings.NewReader(input))
		pv, ps, pstats, perr := ontology.LoadNTriplesParallel(strings.NewReader(input),
			ontology.LoadOptions{Workers: 3, ChunkBytes: 64})
		if (serr == nil) != (perr == nil) {
			t.Fatalf("error divergence: serial=%v parallel=%v", serr, perr)
		}
		if serr != nil {
			if serr.Error() != perr.Error() {
				t.Fatalf("error message divergence:\n  serial:   %v\n  parallel: %v", serr, perr)
			}
			return
		}
		if *sstats != *pstats {
			t.Fatalf("stats divergence: %+v vs %+v", *sstats, *pstats)
		}
		if sv.NumElements() != pv.NumElements() || sv.NumRelations() != pv.NumRelations() || ss.Size() != ps.Size() {
			t.Fatalf("shape divergence: vocab (%d,%d)/(%d,%d) store %d/%d",
				sv.NumElements(), sv.NumRelations(), pv.NumElements(), pv.NumRelations(), ss.Size(), ps.Size())
		}
	})
}
