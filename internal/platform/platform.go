// Package platform implements the cross-query answer platform: a
// long-lived, concurrent answer store shared by every query session a
// process serves. It generalizes the CrowdCache idea of Section 6.3 —
// "the crowd answers are independent of the threshold" — from one query's
// threshold re-evaluations to a whole multi-tenant fleet:
//
//   - A member's answer to a question is stored once and replayed to every
//     later query that poses the same question to the same member, so the
//     crowd is a shared resource instead of a per-run one.
//   - Identical questions posed by concurrent queries are deduplicated
//     in flight: the first ask is forwarded to the crowd, later asks join
//     a waiter list on the same key, and the one crowd answer fans out to
//     every waiting kernel (a singleflight over (member, question)).
//   - Answers carry freshness metadata: a configurable TTL expires stale
//     answers (they are re-asked on next use) and an LRU bound caps the
//     store, so the platform can run indefinitely.
//
// The platform sits at the broker layer. Each session attaches with
// Attach, receiving a Conn — a crowd.Broker that serves hits from the
// store and forwards misses to the session's own underlying broker (an
// in-process MemberBroker, the HTTP server, a chaos wrapper...). Because
// the store replays the member's own answers verbatim, a kernel driven
// through a Conn folds exactly the replies it would have collected alone:
// shared-store runs produce MSP sets identical to standalone runs, which
// the differential suite pins across randomized query pairs.
//
// Thresholds never enter the store: it holds raw member supports, and each
// attached kernel aggregates them against its own query's theta — cached
// supports are re-evaluated without re-asking, exactly as Section 6.3
// prescribes.
//
// Sharing contract: every session attached to one Platform must draw its
// questions from the same vocabulary (question keys are interned term
// IDs) and its crowd answers must be functions of the question content —
// the same assumption CrowdCache replays make.
package platform

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/vocab"
)

// Config parameterizes a Platform.
type Config struct {
	// TTL is the answer freshness window: a stored answer older than TTL
	// is discarded on lookup and the question re-asked. 0 means answers
	// never expire (the pure Section 6.3 regime).
	TTL time.Duration
	// MaxEntries bounds the store; beyond it the least recently used
	// answer is evicted. 0 means unbounded.
	MaxEntries int
	// Clock supplies the freshness timestamps; nil uses the wall clock.
	// Tests inject a chaos.VirtualClock to age answers deterministically.
	Clock chaos.Clock
	// Obs, when set, exports the store's hit/miss/join/expired/evicted
	// counters and the entry/session gauges on the observer's registry —
	// the cross-query serving dashboard.
	Obs *obs.Observer
}

// Stats is a consistent snapshot of the platform's lifetime counters.
// Every Conn.Post resolves to exactly one of Hits, Misses or Joins, so for
// sessions routed entirely through the platform
//
//	sum over sessions of Stats.Asked == Hits + Misses + Joins
//
// which the property suite verifies under the race detector.
type Stats struct {
	// Hits counts questions answered from the store.
	Hits int
	// Misses counts questions forwarded to the crowd.
	Misses int
	// Joins counts questions deduplicated onto an identical in-flight
	// ask posed by another session.
	Joins int
	// Expired counts stored answers discarded as stale (each also counts
	// the triggering lookup in Misses).
	Expired int
	// Evicted counts answers evicted by the MaxEntries LRU bound.
	Evicted int
	// Entries is the current store size; Sessions the attached conns.
	Entries  int
	Sessions int
}

// askKey identifies one storable answer: a question posed to a member.
// Dedup is deliberately per member — the aggregation semantics of
// Section 4.2 need K answers from K distinct members, so only repeats of
// the same (member, question) pair are redundant.
type askKey struct {
	member   string
	question string
}

// entry is one stored crowd answer with its freshness metadata.
type entry struct {
	kind    crowd.AskKind
	support float64
	// choice is the canonical-order option index of a specialization
	// answer (-1 = none of these); consumers translate it through their
	// own option permutation.
	choice   int
	pruned   []vocab.TermID
	elapsed  time.Duration
	storedAt time.Time
	// lru is the entry's position in the platform's recency list; the
	// element value is the entry's askKey.
	lru *list.Element
}

// waiter is one deduplicated ask parked on an in-flight question: the
// session's own Ask event, its option permutation and its delivery
// continuation.
type waiter struct {
	ask     *crowd.Ask
	perm    []int
	deliver func(crowd.Reply)
}

// flight is the waiter list of one in-flight question key.
type flight struct {
	waiters []waiter
}

// Platform is the shared answer store. The zero value is not usable; build
// one with New. All methods are safe for concurrent use by any number of
// attached sessions.
type Platform struct {
	cfg   Config
	clock chaos.Clock
	pm    *obs.PlatformMetrics // non-nil; all fields no-ops when unobserved
	jr    *obs.Journal         // nil unless the observer carries a journal

	mu       sync.Mutex
	entries  map[askKey]*entry
	recency  *list.List // front = most recently used
	flights  map[askKey]*flight
	stats    Stats
	sessions int
}

// New builds an empty platform.
func New(cfg Config) *Platform {
	clock := cfg.Clock
	if clock == nil {
		clock = chaos.Real()
	}
	return &Platform{
		cfg:     cfg,
		clock:   clock,
		pm:      cfg.Obs.PlatformSet().OrNop(),
		jr:      cfg.Obs.JournalSet(),
		entries: make(map[askKey]*entry),
		recency: list.New(),
		flights: make(map[askKey]*flight),
	}
}

// Attach connects one query session to the platform: the returned Conn is
// a crowd.Broker that serves the session's asks from the shared store,
// joins identical in-flight asks, and forwards genuine misses to next (the
// session's own broker — in-process members, the HTTP platform, ...).
// Call Detach when the session's run completes; a detached Conn's pending
// forwards still resolve and still feed the store.
func (p *Platform) Attach(next crowd.Broker) *Conn {
	p.mu.Lock()
	p.sessions++
	p.stats.Sessions = p.sessions
	p.mu.Unlock()
	p.pm.Sessions.Add(1)
	return &Conn{p: p, next: next}
}

// Stats snapshots the platform counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Entries = len(p.entries)
	s.Sessions = p.sessions
	return s
}

// Len returns the current number of stored answers.
func (p *Platform) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// detach records one session leaving.
func (p *Platform) detach() {
	p.mu.Lock()
	p.sessions--
	p.stats.Sessions = p.sessions
	p.mu.Unlock()
	p.pm.Sessions.Add(-1)
}

// removeLocked drops one entry; the caller holds p.mu and accounts the
// reason (expiry or eviction) itself.
func (p *Platform) removeLocked(k askKey, e *entry) {
	delete(p.entries, k)
	p.recency.Remove(e.lru)
}

// storeLocked inserts a resolved answer, evicting over the LRU bound. The
// caller holds p.mu. evicted returns how many entries the insert displaced
// so the metric increment can happen outside the lock.
func (p *Platform) storeLocked(k askKey, e *entry) (evicted int) {
	if old, ok := p.entries[k]; ok {
		// A re-ask after expiry (or a racing refresh) replaces in place.
		p.removeLocked(k, old)
	}
	if p.cfg.MaxEntries > 0 {
		for len(p.entries) >= p.cfg.MaxEntries {
			back := p.recency.Back()
			if back == nil {
				break
			}
			p.removeLocked(back.Value.(askKey), p.entries[back.Value.(askKey)])
			p.stats.Evicted++
			evicted++
		}
	}
	e.lru = p.recency.PushFront(k)
	p.entries[k] = e
	return evicted
}

// replyFor materializes a stored answer as a Reply addressed to the given
// ask, translating the canonical option choice through the ask's own
// permutation. elapsed is the round trip the consumer experienced: ~0 for
// a store hit, the member's actual latency for a deduplicated join.
func (e *entry) replyFor(ask *crowd.Ask, perm []int, elapsed time.Duration) crowd.Reply {
	r := crowd.Reply{
		Ask:     ask,
		Outcome: crowd.Answered,
		Support: e.support,
		Choice:  -1,
		Pruned:  e.pruned,
		Elapsed: elapsed,
	}
	if e.kind == crowd.SpecializeAsk && e.choice >= 0 && e.choice < len(perm) {
		r.Choice = perm[e.choice]
	}
	return r
}

// Conn is one session's connection to the platform: a crowd.Broker that
// multiplexes the session's ask stream over the shared store.
type Conn struct {
	p    *Platform
	next crowd.Broker

	hits   atomic.Int64
	misses atomic.Int64
	joins  atomic.Int64
}

// ConnStats is one session's view of its store traffic.
type ConnStats struct {
	Hits, Misses, Joins int
}

// Stats reports this connection's lookup outcomes. Hits+Misses+Joins
// equals the number of asks the session posted through the Conn — the
// kernel's Stats.Asked.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		Hits:   int(c.hits.Load()),
		Misses: int(c.misses.Load()),
		Joins:  int(c.joins.Load()),
	}
}

// Detach disconnects the session. Pending forwards owned by this Conn
// resolve normally (their waiters may belong to other sessions); only the
// session count changes.
func (c *Conn) Detach() { c.p.detach() }

// Post implements crowd.Broker. Exactly one of three things happens:
// the ask is answered from the store (hit), parked on an identical
// in-flight ask (join — resolved when the one forwarded copy is), or
// forwarded to the session's underlying broker (miss — the reply, if
// answered, is stored and fanned out to every waiter that joined).
func (c *Conn) Post(ask *crowd.Ask, deliver func(crowd.Reply)) {
	p := c.p
	q, perm := crowd.QuestionKey(ask)
	k := askKey{member: ask.Member, question: q}
	now := p.clock.Now()

	expired := false
	p.mu.Lock()
	if e, ok := p.entries[k]; ok {
		if p.cfg.TTL > 0 && now.Sub(e.storedAt) > p.cfg.TTL {
			// Stale: drop it and fall through to the miss path so the
			// crowd refreshes the answer.
			p.removeLocked(k, e)
			p.stats.Expired++
			expired = true
		} else {
			p.stats.Hits++
			p.recency.MoveToFront(e.lru)
			r := e.replyFor(ask, perm, 0)
			p.mu.Unlock()
			p.pm.Hits.Inc()
			p.jr.StoreEvent(obs.EvStoreHit, ask.Member, q)
			c.hits.Add(1)
			deliver(r)
			return
		}
	}
	if f, ok := p.flights[k]; ok {
		f.waiters = append(f.waiters, waiter{ask: ask, perm: perm, deliver: deliver})
		p.stats.Joins++
		p.mu.Unlock()
		if expired {
			p.pm.Expired.Inc()
			p.pm.Entries.Add(-1)
			p.jr.StoreEvent(obs.EvStoreExpired, ask.Member, q)
		}
		p.pm.Joins.Inc()
		p.jr.StoreEvent(obs.EvStoreJoin, ask.Member, q)
		c.joins.Add(1)
		return
	}
	p.flights[k] = &flight{}
	p.stats.Misses++
	p.mu.Unlock()
	if expired {
		p.pm.Expired.Inc()
		p.pm.Entries.Add(-1)
		p.jr.StoreEvent(obs.EvStoreExpired, ask.Member, q)
	}
	p.pm.Misses.Inc()
	p.jr.StoreEvent(obs.EvStoreMiss, ask.Member, q)
	c.misses.Add(1)

	c.next.Post(ask, func(r crowd.Reply) {
		p.resolve(k, perm, r, deliver)
	})
}

// resolve completes one forwarded ask: it stores an answered reply (a
// departure or timeout is an absence, not an answer — caching it would
// replay the failure forever), delivers the owner's reply verbatim, and
// fans the answer out to every waiter in join order, each addressed with
// its own Ask and option permutation.
func (p *Platform) resolve(k askKey, ownerPerm []int, r crowd.Reply, ownerDeliver func(crowd.Reply)) {
	var stored *entry
	var evicted, added int

	p.mu.Lock()
	f := p.flights[k]
	delete(p.flights, k)
	if r.Outcome == crowd.Answered {
		stored = &entry{
			kind:     r.Ask.Kind,
			support:  r.Support,
			choice:   -1,
			pruned:   r.Pruned,
			elapsed:  r.Elapsed,
			storedAt: p.clock.Now(),
		}
		if r.Ask.Kind == crowd.SpecializeAsk {
			for canon, orig := range ownerPerm {
				if orig == r.Choice {
					stored.choice = canon
					break
				}
			}
		}
		evicted = p.storeLocked(k, stored)
		added = 1
	}
	var waiters []waiter
	if f != nil {
		waiters = f.waiters
	}
	p.mu.Unlock()

	if evicted > 0 {
		p.pm.Evicted.Add(int64(evicted))
	}
	p.pm.Entries.Add(int64(added - evicted))

	ownerDeliver(r)
	for _, w := range waiters {
		if stored != nil {
			w.deliver(stored.replyFor(w.ask, w.perm, r.Elapsed))
			continue
		}
		// The forward failed; every joined session sees the same
		// outcome and its kernel re-poses the question on the member's
		// next turn (where it will miss again and be re-forwarded).
		w.deliver(crowd.Reply{Ask: w.ask, Outcome: r.Outcome, Choice: -1, Elapsed: r.Elapsed})
	}
}

var _ crowd.Broker = (*Conn)(nil)
