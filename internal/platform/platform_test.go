package platform_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/platform"
	"oassis/internal/vocab"
)

// fs builds a one-fact question over raw interned IDs (the platform only
// ever compares keys, never resolves names).
func fs(s, p, o int) ontology.FactSet {
	return ontology.NewFactSet(ontology.Fact{S: vocab.TermID(s), P: vocab.TermID(p), O: vocab.TermID(o)})
}

var nextAskID atomic.Int64

func concreteAsk(member string, target ontology.FactSet) *crowd.Ask {
	return &crowd.Ask{ID: nextAskID.Add(1), Member: member, Kind: crowd.ConcreteAsk, Target: target}
}

func specializeAsk(member string, base ontology.FactSet, options ...ontology.FactSet) *crowd.Ask {
	return &crowd.Ask{ID: nextAskID.Add(1), Member: member, Kind: crowd.SpecializeAsk, Base: base, Options: options}
}

// scriptBroker is a controllable underlying broker: it answers every
// forwarded ask with the scripted reply, or parks the delivery for the
// test to release when hold is set.
type scriptBroker struct {
	mu      sync.Mutex
	posts   []*crowd.Ask
	hold    bool
	held    []func(crowd.Reply)
	heldAsk []*crowd.Ask

	support float64
	choice  int
	outcome crowd.Outcome
	elapsed time.Duration
}

func (b *scriptBroker) Post(ask *crowd.Ask, deliver func(crowd.Reply)) {
	b.mu.Lock()
	b.posts = append(b.posts, ask)
	if b.hold {
		b.held = append(b.held, deliver)
		b.heldAsk = append(b.heldAsk, ask)
		b.mu.Unlock()
		return
	}
	r := b.replyFor(ask)
	b.mu.Unlock()
	deliver(r)
}

func (b *scriptBroker) replyFor(ask *crowd.Ask) crowd.Reply {
	return crowd.Reply{
		Ask:     ask,
		Outcome: b.outcome,
		Support: b.support,
		Choice:  b.choice,
		Elapsed: b.elapsed,
	}
}

// release resolves every held delivery in hold order.
func (b *scriptBroker) release() {
	b.mu.Lock()
	held, asks := b.held, b.heldAsk
	b.held, b.heldAsk = nil, nil
	b.mu.Unlock()
	for i, d := range held {
		d(b.replyFor(asks[i]))
	}
}

func (b *scriptBroker) forwarded() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.posts)
}

// collect returns a deliver continuation appending into out.
func collect(mu *sync.Mutex, out *[]crowd.Reply) func(crowd.Reply) {
	return func(r crowd.Reply) {
		mu.Lock()
		*out = append(*out, r)
		mu.Unlock()
	}
}

func TestPlatformHitMissAccounting(t *testing.T) {
	b := &scriptBroker{support: 0.8, choice: -1}
	p := platform.New(platform.Config{})
	c1 := p.Attach(b)
	c2 := p.Attach(b)
	defer c1.Detach()
	defer c2.Detach()

	var mu sync.Mutex
	var replies []crowd.Reply

	// Session 1 asks two distinct questions: both forwarded.
	c1.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &replies))
	c1.Post(concreteAsk("m0", fs(4, 2, 3)), collect(&mu, &replies))
	// Session 2 repeats one of them and adds the same question to a
	// different member: one hit, one forward (dedup is per member).
	c2.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &replies))
	c2.Post(concreteAsk("m1", fs(1, 2, 3)), collect(&mu, &replies))

	if got := b.forwarded(); got != 3 {
		t.Fatalf("forwarded %d asks, want 3", got)
	}
	if len(replies) != 4 {
		t.Fatalf("delivered %d replies, want 4", len(replies))
	}
	for i, r := range replies {
		if r.Outcome != crowd.Answered || r.Support != 0.8 {
			t.Fatalf("reply %d: outcome %v support %v", i, r.Outcome, r.Support)
		}
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Joins != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 0 joins", st)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if cs := c2.Stats(); cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("conn2 stats = %+v, want 1 hit / 1 miss", cs)
	}
	// Each reply's Ask pointer must be the consumer's own ask, not the
	// ask that populated the store — kernels match replies by identity.
	for i, r := range replies {
		if r.Ask == nil {
			t.Fatalf("reply %d lost its ask", i)
		}
	}
}

func TestPlatformDedupJoinsInFlight(t *testing.T) {
	b := &scriptBroker{support: 1, choice: -1, hold: true, elapsed: 7 * time.Millisecond}
	p := platform.New(platform.Config{})
	c1 := p.Attach(b)
	c2 := p.Attach(b)

	var mu sync.Mutex
	var r1, r2 []crowd.Reply
	c1.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r1))
	c2.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r2)) // joins the flight

	if got := b.forwarded(); got != 1 {
		t.Fatalf("forwarded %d asks while in flight, want 1", got)
	}
	if len(r1)+len(r2) != 0 {
		t.Fatal("replies delivered before the member answered")
	}
	b.release()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("deliveries after release: owner %d, waiter %d (want 1 each)", len(r1), len(r2))
	}
	if r2[0].Support != 1 || r2[0].Outcome != crowd.Answered {
		t.Fatalf("waiter reply = %+v", r2[0])
	}
	// The waiter genuinely waited for the member: it sees the member's
	// round trip, not a zero-cost cache hit.
	if r2[0].Elapsed != 7*time.Millisecond {
		t.Fatalf("waiter elapsed = %v, want the member's 7ms", r2[0].Elapsed)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Joins != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss / 1 join", st)
	}
	// The answer is now stored: a third ask is a plain hit.
	var r3 []crowd.Reply
	c1.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r3))
	if len(r3) != 1 || b.forwarded() != 1 {
		t.Fatal("post-flight ask was not served from the store")
	}
	if r3[0].Elapsed != 0 {
		t.Fatalf("store hit elapsed = %v, want 0", r3[0].Elapsed)
	}
}

// TestPlatformSpecializeChoiceTranslation pins the canonical-order choice
// protocol: queries that enumerate the same candidate set in different
// orders must each receive the choice pointing at the same fact-set.
func TestPlatformSpecializeChoiceTranslation(t *testing.T) {
	base := fs(1, 2, 3)
	optA, optB, optC := fs(10, 2, 3), fs(11, 2, 3), fs(12, 2, 3)

	b := &scriptBroker{support: 0.9, choice: 1} // owner picks its options[1] = optB
	p := platform.New(platform.Config{})
	c1 := p.Attach(b)
	c2 := p.Attach(b)

	var mu sync.Mutex
	var r1, r2 []crowd.Reply
	ask1 := specializeAsk("m0", base, optA, optB, optC)
	c1.Post(ask1, collect(&mu, &r1))
	if len(r1) != 1 || r1[0].Choice != 1 {
		t.Fatalf("owner reply choice = %d, want 1 (its own order)", r1[0].Choice)
	}
	// Same question, options scrambled: the hit must point at optB.
	ask2 := specializeAsk("m0", base, optC, optB, optA)
	c2.Post(ask2, collect(&mu, &r2))
	if b.forwarded() != 1 {
		t.Fatalf("scrambled-order repeat was forwarded (%d posts)", b.forwarded())
	}
	if len(r2) != 1 {
		t.Fatal("no hit delivered")
	}
	got := ask2.Options[r2[0].Choice]
	if !got.Equal(optB) {
		t.Fatalf("translated choice %d names %v, want optB", r2[0].Choice, got)
	}
}

// TestPlatformSpecializeNoneOfThese pins that a "none of these" answer
// (choice -1) replays as -1 regardless of the consumer's option order.
func TestPlatformSpecializeNoneOfThese(t *testing.T) {
	b := &scriptBroker{support: 0, choice: -1}
	p := platform.New(platform.Config{})
	c := p.Attach(b)
	var mu sync.Mutex
	var rs []crowd.Reply
	c.Post(specializeAsk("m0", fs(1, 2, 3), fs(4, 2, 3), fs(5, 2, 3)), collect(&mu, &rs))
	c.Post(specializeAsk("m0", fs(1, 2, 3), fs(5, 2, 3), fs(4, 2, 3)), collect(&mu, &rs))
	if b.forwarded() != 1 {
		t.Fatalf("forwarded %d, want 1", b.forwarded())
	}
	if len(rs) != 2 || rs[1].Choice != -1 {
		t.Fatalf("replayed none-of-these choice = %d, want -1", rs[1].Choice)
	}
}

func TestPlatformTTLExpiry(t *testing.T) {
	clock := chaos.NewVirtualClock()
	b := &scriptBroker{support: 0.6, choice: -1}
	p := platform.New(platform.Config{TTL: time.Minute, Clock: clock})
	c := p.Attach(b)
	var mu sync.Mutex
	var rs []crowd.Reply

	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &rs)) // miss, stored
	clock.Advance(30 * time.Second)
	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &rs)) // still fresh: hit
	clock.Advance(31 * time.Second)                           // 61s old now
	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &rs)) // stale: re-asked
	clock.Advance(10 * time.Second)
	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &rs)) // refreshed: hit

	if got := b.forwarded(); got != 2 {
		t.Fatalf("member asked %d times, want 2 (initial + refresh)", got)
	}
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 1 expired", st)
	}
	if len(rs) != 4 {
		t.Fatalf("delivered %d replies, want 4", len(rs))
	}
}

func TestPlatformLRUEviction(t *testing.T) {
	b := &scriptBroker{support: 0.5, choice: -1}
	p := platform.New(platform.Config{MaxEntries: 2})
	c := p.Attach(b)
	var mu sync.Mutex
	var rs []crowd.Reply

	q1, q2, q3 := fs(1, 2, 3), fs(4, 2, 3), fs(5, 2, 3)
	c.Post(concreteAsk("m0", q1), collect(&mu, &rs))
	c.Post(concreteAsk("m0", q2), collect(&mu, &rs))
	c.Post(concreteAsk("m0", q1), collect(&mu, &rs)) // touch q1: q2 becomes LRU
	c.Post(concreteAsk("m0", q3), collect(&mu, &rs)) // evicts q2

	st := p.Stats()
	if st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 evicted / 2 entries", st)
	}
	// q1 survived (hit), q2 was evicted (re-asked).
	before := b.forwarded()
	c.Post(concreteAsk("m0", q1), collect(&mu, &rs))
	if b.forwarded() != before {
		t.Fatal("recently-used q1 was evicted")
	}
	c.Post(concreteAsk("m0", q2), collect(&mu, &rs))
	if b.forwarded() != before+1 {
		t.Fatal("least-recently-used q2 was not evicted")
	}
}

// TestPlatformFailureNotCached pins that departures and timeouts are
// absences, not answers: every joined session sees the failure, nothing is
// stored, and the next ask reaches the crowd again.
func TestPlatformFailureNotCached(t *testing.T) {
	for _, outcome := range []crowd.Outcome{crowd.Departed, crowd.TimedOut} {
		b := &scriptBroker{outcome: outcome, choice: -1, hold: true}
		p := platform.New(platform.Config{})
		c1, c2 := p.Attach(b), p.Attach(b)
		var mu sync.Mutex
		var r1, r2 []crowd.Reply
		c1.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r1))
		c2.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r2))
		b.release()
		if len(r1) != 1 || len(r2) != 1 {
			t.Fatalf("outcome %v: owner %d waiter %d deliveries", outcome, len(r1), len(r2))
		}
		if r2[0].Outcome != outcome || r2[0].Choice != -1 {
			t.Fatalf("outcome %v: waiter reply = %+v", outcome, r2[0])
		}
		if p.Len() != 0 {
			t.Fatalf("outcome %v was cached", outcome)
		}
		b.hold = false
		c1.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &r1))
		if b.forwarded() != 2 {
			t.Fatalf("outcome %v: retry was not re-forwarded", outcome)
		}
	}
}

// TestPlatformSingleflightRace hammers one question key from many
// goroutines against a slow broker: exactly one forward may happen, every
// poster gets the answer, and the counters reconcile. Run under -race.
func TestPlatformSingleflightRace(t *testing.T) {
	b := &scriptBroker{support: 1, choice: -1, hold: true}
	p := platform.New(platform.Config{})

	const posters = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var replies []crowd.Reply
	start := make(chan struct{})
	for i := 0; i < posters; i++ {
		conn := p.Attach(b)
		wg.Add(1)
		go func(c *platform.Conn, i int) {
			defer wg.Done()
			defer c.Detach()
			<-start
			// Half hammer the shared key, half post distinct keys.
			target := fs(1, 2, 3)
			if i%2 == 1 {
				target = fs(100+i, 2, 3)
			}
			c.Post(concreteAsk("m0", target), collect(&mu, &replies))
		}(conn, i)
	}
	close(start)
	// Wait for every poster to have resolved AND for every miss's forward
	// to have reached the held broker (forwards happen outside the store
	// lock, after the miss is counted), then release the member answers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Misses+st.Joins+st.Hits == posters && b.forwarded() == st.Misses {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("posters stuck: %+v (forwarded %d)", st, b.forwarded())
		}
		time.Sleep(time.Millisecond)
	}
	b.release()
	wg.Wait()

	st := p.Stats()
	if st.Misses != 1+posters/2 {
		t.Fatalf("misses = %d, want %d (1 shared + %d distinct)", st.Misses, 1+posters/2, posters/2)
	}
	if st.Hits+st.Misses+st.Joins != posters {
		t.Fatalf("lookup outcomes %+v do not sum to %d posts", st, posters)
	}
	if got := b.forwarded(); got != st.Misses {
		t.Fatalf("member saw %d asks, misses say %d", got, st.Misses)
	}
	if len(replies) != posters {
		t.Fatalf("delivered %d replies, want %d", len(replies), posters)
	}
	if st.Sessions != 0 {
		t.Fatalf("sessions = %d after detach, want 0", st.Sessions)
	}
}

// TestPlatformKeyIsolation pins that distinct questions, members and ask
// kinds never collide in the store.
func TestPlatformKeyIsolation(t *testing.T) {
	b := &scriptBroker{support: 1, choice: 0}
	p := platform.New(platform.Config{})
	c := p.Attach(b)
	var mu sync.Mutex
	var rs []crowd.Reply

	shared := fs(1, 2, 3)
	c.Post(concreteAsk("m0", shared), collect(&mu, &rs))
	// A specialization whose base equals the concrete target must not
	// collide with it.
	c.Post(specializeAsk("m0", shared, fs(4, 2, 3), fs(5, 2, 3)), collect(&mu, &rs))
	// Same question, another member: separate.
	c.Post(concreteAsk("m1", shared), collect(&mu, &rs))
	if got := b.forwarded(); got != 3 {
		t.Fatalf("forwarded %d, want 3 distinct keys", got)
	}
	if p.Len() != 3 {
		t.Fatalf("store holds %d entries, want 3", p.Len())
	}
}

// TestQuestionKeyStability pins the canonical key: option order must not
// change a specialization's identity, and concrete/specialize keys are
// disjoint namespaces.
func TestQuestionKeyStability(t *testing.T) {
	base := fs(1, 2, 3)
	a, bb, cc := fs(4, 2, 3), fs(5, 2, 3), fs(6, 2, 3)
	k1, p1 := crowd.QuestionKey(specializeAsk("x", base, a, bb, cc))
	k2, p2 := crowd.QuestionKey(specializeAsk("y", base, cc, a, bb))
	if k1 != k2 {
		t.Fatalf("option order changed the key:\n%q\n%q", k1, k2)
	}
	if len(p1) != 3 || len(p2) != 3 {
		t.Fatalf("perms %v / %v", p1, p2)
	}
	kc, pc := crowd.QuestionKey(concreteAsk("x", base))
	if pc != nil {
		t.Fatalf("concrete perm = %v, want nil", pc)
	}
	if kc == k1 {
		t.Fatal("concrete and specialize keys collide")
	}
	// The two permutations must agree on which fact-set each canonical
	// slot names.
	ask1 := specializeAsk("x", base, a, bb, cc)
	ask2 := specializeAsk("y", base, cc, a, bb)
	_, p1 = crowd.QuestionKey(ask1)
	_, p2 = crowd.QuestionKey(ask2)
	for j := range p1 {
		if !ask1.Options[p1[j]].Equal(ask2.Options[p2[j]]) {
			t.Fatalf("canonical slot %d disagrees", j)
		}
	}
}

func TestPlatformStatsString(t *testing.T) {
	// Smoke: Stats is a plain value usable in test diagnostics.
	st := platform.Stats{Hits: 1, Misses: 2}
	if fmt.Sprintf("%+v", st) == "" {
		t.Fatal("unprintable stats")
	}
}

// TestPlatformStoreJournalEvents wires an observer journal into the
// platform and checks each store outcome lands as its own flight-recorder
// event — hit, miss and in-flight join — carrying the asking member and
// the canonical question key.
func TestPlatformStoreJournalEvents(t *testing.T) {
	o := obs.New()
	j := o.EnableJournal(0)
	b := &scriptBroker{support: 0.8, choice: -1, hold: true}
	p := platform.New(platform.Config{Obs: o})
	c := p.Attach(b)
	defer c.Detach()

	var mu sync.Mutex
	var replies []crowd.Reply

	// First ask: a miss, parked in flight.
	a1 := concreteAsk("m0", fs(1, 2, 3))
	c.Post(a1, collect(&mu, &replies))
	// Same question again while still in flight: a join.
	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &replies))
	b.release()
	// Now it is cached: a hit.
	c.Post(concreteAsk("m0", fs(1, 2, 3)), collect(&mu, &replies))
	if len(replies) != 3 {
		t.Fatalf("delivered %d replies, want 3", len(replies))
	}

	wantKey, _ := crowd.QuestionKey(a1)
	counts := map[string]int{}
	for _, e := range j.Events() {
		counts[e.Kind]++
		if e.Member != "m0" {
			t.Errorf("%s event from member %q, want m0", e.Kind, e.Member)
		}
		if e.Key != wantKey {
			t.Errorf("%s event key %q, want %q", e.Kind, e.Key, wantKey)
		}
	}
	want := map[string]int{obs.EvStoreMiss: 1, obs.EvStoreJoin: 1, obs.EvStoreHit: 1}
	for kind, n := range want {
		if counts[kind] != n {
			t.Errorf("%d %s events, want %d (all: %v)", counts[kind], kind, n, counts)
		}
	}
	if got := len(j.Events()); got != 3 {
		t.Errorf("journal holds %d events, want 3", got)
	}
}
