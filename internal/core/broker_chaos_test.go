package core_test

import (
	"fmt"
	"testing"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/paperdata"
)

// TestChaosFaultsThroughBroker reruns the quarter-of-the-crowd-departs
// scenario with the faults injected at the broker (event) layer instead of
// wrapping each member: plain members behind a MemberBroker, wrapped once
// with a FaultyBroker, driven via Engine.RunWith. The results must match
// member-level injection — same MSP set, same departure count — proving
// that fault injection composes with every driver that reaches the crowd
// through a Broker.
func TestChaosFaultsThroughBroker(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	cfg := core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(5, 0.4),
		Seed:       1,
	}
	mkFaults := func() []chaos.Faults {
		faults := make([]chaos.Faults, 8)
		for i := range faults {
			faults[i].Seed = int64(100 + i)
			faults[i].LatencyMin = 30 * time.Second
		}
		faults[1].DepartAfter = 1
		faults[4].DepartAfter = 2
		faults[6].DepartAfter = 3
		return faults
	}

	// Reference: member-level injection, the pre-existing chaos path.
	refClock := chaos.NewVirtualClock()
	ref := core.NewEngine(sp, chaosCrowd(v, refClock, mkFaults()), cfg).Run()

	// Event-level injection: fault-free members (wrapped only to give each
	// clone a distinct ID), faults applied to the ask/reply stream.
	clock := chaos.NewVirtualClock()
	members := make([]crowd.Member, 8)
	faultMap := make(map[string]chaos.Faults, 8)
	for i, f := range mkFaults() {
		id := fmt.Sprintf("m%02d", i)
		members[i] = chaos.Wrap(newAvgMember(v), clock, chaos.Faults{ID: id})
		faultMap[id] = f
	}
	broker := chaos.WrapBroker(crowd.NewMemberBroker(members, clock.Now), clock, faultMap)
	res := core.NewEngine(sp, members, cfg).RunWith(broker)

	if res.Stats.Departures != ref.Stats.Departures {
		t.Fatalf("Departures = %d via broker, %d via members",
			res.Stats.Departures, ref.Stats.Departures)
	}
	if got, want := mspKeys(res), mspKeys(ref); got != want {
		t.Fatalf("broker-level faults changed the MSP set:\n%s\nvs\n%s", got, want)
	}
	for _, id := range []string{"m01", "m04", "m06"} {
		if !broker.Departed(id) {
			t.Errorf("broker does not report %s departed", id)
		}
	}
	if clock.Elapsed() == 0 {
		t.Fatal("virtual clock never advanced — latency was not injected")
	}
}
