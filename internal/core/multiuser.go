package core

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"oassis/internal/assign"
	"oassis/internal/chaos"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// EngineConfig parameterizes the multi-user evaluation of Section 4.2.
type EngineConfig struct {
	// Theta is the query's support threshold.
	Theta float64
	// Aggregator is the black-box decision mechanism; nil uses the
	// paper's 5-answer mean rule.
	Aggregator crowd.Aggregator
	// SpecializationRatio is the probability that a descend step uses a
	// specialization question instead of a concrete one (the paper
	// observed members choosing specialization ~12% of the time).
	SpecializationRatio float64
	// MaxQuestionsPerMember caps one member's session ("the outer loop
	// ... can be terminated at any point"); 0 means unlimited.
	MaxQuestionsPerMember int
	// Consistency enables the Section 4.2 spammer filter; flagged
	// members stop receiving questions and their answers are dropped
	// from a TrustWeightedAggregator (if one is configured).
	Consistency bool
	// CalibrationQuestions, with Consistency, probes each member on a
	// chain of comparable assignments before mining starts — the
	// "preliminary step to filter the crowd members" of Section 4.2 —
	// so spammers are caught before their answers settle decisions.
	CalibrationQuestions int
	// MaxMSPs stops the run once this many MSPs are confirmed (the
	// top-k extension; 0 = mine to completion).
	MaxMSPs int
	// OnMSP, when set, streams each MSP the moment it is confirmed —
	// the incremental answer delivery the paper emphasizes ("answers
	// can be returned ... as soon as they are identified").
	OnMSP func(*assign.Assignment)
	// Seed drives question-type choices.
	Seed int64
	// AnswerDeadline bounds how long one answer may take on the engine's
	// Clock. An answer arriving later is discarded (it is stale: the
	// member may have seen a question whose context has moved on) and the
	// member is re-asked on their next turn; after MaxAnswerTimeouts
	// consecutive overruns the member is treated as departed. 0 waits
	// forever (the pre-chaos behaviour).
	AnswerDeadline time.Duration
	// MaxAnswerTimeouts is the consecutive-overrun budget before a slow
	// member is dropped; 0 means the default of 3.
	MaxAnswerTimeouts int
	// Clock is the time source for answer deadlines; nil uses the wall
	// clock. Chaos tests inject a chaos.VirtualClock so slow-member
	// scenarios replay deterministically in zero wall time.
	Clock chaos.Clock
}

// Engine is the multi-user query evaluator: the paper's QueueManager. It
// traverses the assignment DAG top-down per member while inferring from the
// globally collected knowledge, exactly as the five modifications of
// Section 4.2 describe. Run serves members sequentially and
// deterministically; RunParallel serves them concurrently.
type Engine struct {
	// mu guards all engine state during RunParallel; Run never contends.
	mu sync.Mutex

	space *assign.Space
	cfg   EngineConfig

	agg     crowd.Aggregator
	global  *assign.Classifier
	tracker *progressTracker
	stats   Stats
	rng     *rand.Rand
	clock   chaos.Clock

	byKey map[string]*assign.Assignment
	succs map[string][]*assign.Assignment

	// decided freezes the first aggregator verdict per assignment.
	decided map[string]crowd.Decision

	users   []*userState
	checker *crowd.ConsistencyChecker

	confirmed map[string]bool
	stopped   bool
}

// userState tracks one member's session. answers records the member's
// support value per assignment key; it gates the member's own descent
// (modification 4 of Section 4.2). Note the Section 4.2 preamble:
// multi-user inferences are drawn from the GLOBALLY collected knowledge —
// a member's personal no blocks their own inner-loop dive, but they may
// still be asked below it when the outer loop reaches there through
// globally classified assignments ("this may lead to some redundant
// questions", which the paper accepts for better pruning).
type userState struct {
	member  crowd.Member
	answers map[string]float64
	pruned  map[vocab.TermID]bool
	asked   int
	banned  bool
	// departed marks a member who left mid-run (a Departed response or
	// too many deadline overruns); the engine stops asking them and the
	// run degrades gracefully to the surviving crowd.
	departed bool
	// timeouts counts consecutive answer-deadline overruns.
	timeouts int
}

// answeredYes reports whether the member answered the assignment with
// support at or above the threshold.
func (u *userState) answeredYes(key string, theta float64) bool {
	s, ok := u.answers[key]
	return ok && s >= theta
}

// NewEngine builds a multi-user evaluator over the space and member pool.
func NewEngine(sp *assign.Space, members []crowd.Member, cfg EngineConfig) *Engine {
	agg := cfg.Aggregator
	if agg == nil {
		agg = crowd.NewMeanAggregator(5, cfg.Theta)
	}
	e := &Engine{
		space:     sp,
		cfg:       cfg,
		agg:       agg,
		global:    assign.NewClassifier(sp),
		tracker:   newProgressTracker(sp),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		byKey:     make(map[string]*assign.Assignment),
		succs:     make(map[string][]*assign.Assignment),
		decided:   make(map[string]crowd.Decision),
		confirmed: make(map[string]bool),
	}
	e.clock = cfg.Clock
	if e.clock == nil {
		e.clock = chaos.Real()
	}
	if cfg.Consistency {
		e.checker = crowd.NewConsistencyChecker(sp.Vocabulary())
	}
	for _, m := range members {
		e.users = append(e.users, &userState{
			member:  m,
			answers: make(map[string]float64),
			pruned:  make(map[vocab.TermID]bool),
		})
	}
	return e
}

// Run drives member sessions round-robin until no member can contribute,
// then finalizes undecided assignments from the answers gathered so far.
// A member with nothing to answer in one round is retried in later rounds:
// other members' answers can settle assignments and unlock new regions.
func (e *Engine) Run() *Result {
	if e.checker != nil && e.cfg.CalibrationQuestions > 0 {
		e.calibrate()
	}
	for !e.stopped {
		progress := false
		for _, u := range e.users {
			if u.banned || u.departed || e.stopped {
				continue
			}
			if e.cfg.MaxQuestionsPerMember > 0 && u.asked >= e.cfg.MaxQuestionsPerMember {
				continue
			}
			if e.stepUser(u) {
				progress = true
			}
			if e.checker != nil && e.checker.IsSpammer(u.member.ID()) && !u.banned {
				u.banned = true
				if tw, ok := e.agg.(*crowd.TrustWeightedAggregator); ok {
					tw.SetTrust(u.member.ID(), 0)
				}
			}
		}
		if !progress {
			break
		}
	}
	e.finalize()
	return e.result()
}

// calibrate asks every member about a descending chain of assignments. The
// chain's members are pairwise comparable, so the consistency checker can
// judge monotonicity immediately; members flagged here never influence the
// mining phase. Calibration answers still count as questions and feed the
// aggregator (honest answers about general assignments are useful work).
func (e *Engine) calibrate() {
	probes := e.probeChain(e.cfg.CalibrationQuestions)
	for _, u := range e.users {
		for _, p := range probes {
			if e.assignmentPruned(u, p) {
				e.recordAnswer(u, p, 0, true)
				continue
			}
			e.askConcreteUser(u, p)
			if u.departed {
				break
			}
			if e.checker.IsSpammer(u.member.ID()) {
				u.banned = true
				if tw, ok := e.agg.(*crowd.TrustWeightedAggregator); ok {
					tw.SetTrust(u.member.ID(), 0)
				}
				break
			}
		}
	}
}

// probeChain walks from a root down first-successor edges, yielding up to n
// pairwise comparable assignments.
func (e *Engine) probeChain(n int) []*assign.Assignment {
	roots := e.roots()
	if len(roots) == 0 {
		return nil
	}
	chain := []*assign.Assignment{roots[0]}
	cur := roots[0]
	for len(chain) < n {
		succs := e.successors(cur)
		if len(succs) == 0 {
			break
		}
		cur = succs[0]
		chain = append(chain, cur)
	}
	return chain
}

// stepUser advances one member by (at most) one question: it navigates from
// the roots through descendable assignments to the first one this member
// should answer. It reports false when the member has nothing left to do.
func (e *Engine) stepUser(u *userState) bool {
	queue := e.roots()
	seen := make(map[string]bool, len(queue))
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		if seen[a.Key()] {
			continue
		}
		seen[a.Key()] = true

		if e.globalStatus(a) == assign.Insignificant {
			continue // pruned globally (modification 4)
		}
		if e.globalStatus(a) == assign.Significant {
			// Globally settled significant: descend regardless of
			// this member's own view (the outer loop must still
			// collect their answers for deeper, undecided nodes —
			// the Section 4.2 refinement), without re-asking.
			if u.answeredYes(a.Key(), e.cfg.Theta) && e.maybeSpecialize(u, a) {
				return true
			}
			queue = append(queue, e.successors(a)...)
			continue
		}
		// Globally undecided: collect this member's answer if missing.
		if _, answered := u.answers[a.Key()]; !answered {
			if e.assignmentPruned(u, a) {
				// Auto-answer 0 from an earlier pruning click.
				e.recordAnswer(u, a, 0, true)
				continue
			}
			e.askConcreteUser(u, a)
			return true
		}
		// Answered: the member dives below only after a personal yes
		// (modification 4); a personal no leaves the region to others.
		if u.answeredYes(a.Key(), e.cfg.Theta) {
			if e.maybeSpecialize(u, a) {
				return true
			}
			queue = append(queue, e.successors(a)...)
		}
		continue
	}
	return false
}

// maybeSpecialize rolls the question-type choice at a personally-significant
// assignment and, when specialization is drawn and useful, asks it.
func (e *Engine) maybeSpecialize(u *userState, base *assign.Assignment) bool {
	if e.cfg.SpecializationRatio <= 0 || e.rng.Float64() >= e.cfg.SpecializationRatio {
		return false
	}
	var open []*assign.Assignment
	for _, succ := range e.successors(base) {
		if e.globalStatus(succ) != assign.Unknown {
			continue
		}
		if _, answered := u.answers[succ.Key()]; answered {
			continue
		}
		if e.assignmentPruned(u, succ) {
			e.recordAnswer(u, succ, 0, true)
			continue
		}
		open = append(open, succ)
	}
	if len(open) < 2 {
		return false
	}
	cands := make([]ontology.FactSet, len(open))
	for i, o := range open {
		cands[i] = e.space.Instantiate(o)
	}
	start := e.clock.Now()
	idx, resp := u.member.AskSpecialize(e.space.Instantiate(base), cands)
	if !e.answerUsable(u, start, resp.Departed) {
		// The member was engaged (their turn is spent) but produced no
		// usable answer; the open candidates stay open for the crowd.
		return true
	}
	u.asked++
	e.stats.Questions++
	e.stats.SpecialQ++
	if idx < 0 {
		e.stats.NoneOfThese++
		e.stats.AutoAnswers += len(open) - 1
		for _, o := range open {
			e.recordAnswer(u, o, 0, true)
		}
	} else {
		e.recordAnswer(u, open[idx], resp.Support, false)
	}
	e.tracker.sample(&e.stats)
	return true
}

// answerUsable vets one member interaction: a Departed response retires the
// member immediately; an answer arriving after the deadline is discarded
// (and, after MaxAnswerTimeouts consecutive overruns, retires the member
// too). The assignment stays unanswered for this member, so the traversal
// re-poses it on their next turn — the engine-side retry — while other
// members keep being asked it independently — the reassignment. Callers in
// the parallel path hold e.mu.
func (e *Engine) answerUsable(u *userState, start time.Time, departed bool) bool {
	if departed {
		if !u.departed {
			u.departed = true
			e.stats.Departures++
		}
		return false
	}
	if e.cfg.AnswerDeadline > 0 && e.clock.Now().Sub(start) > e.cfg.AnswerDeadline {
		e.stats.TimedOut++
		u.timeouts++
		max := e.cfg.MaxAnswerTimeouts
		if max <= 0 {
			max = 3
		}
		if u.timeouts >= max {
			u.departed = true
			e.stats.Departures++
		}
		return false
	}
	u.timeouts = 0
	return true
}

// askConcreteUser poses one concrete question to the member.
func (e *Engine) askConcreteUser(u *userState, a *assign.Assignment) {
	start := e.clock.Now()
	resp := u.member.AskConcrete(e.space.Instantiate(a))
	if !e.answerUsable(u, start, resp.Departed) {
		return
	}
	u.asked++
	e.stats.Questions++
	e.stats.ConcreteQ++
	if len(resp.Pruned) > 0 {
		e.stats.PruneClicks++
		for _, t := range resp.Pruned {
			u.pruned[t] = true
		}
	}
	e.recordAnswer(u, a, resp.Support, false)
	e.tracker.sample(&e.stats)
}

// recordAnswer feeds one member answer into the member's answer log, the
// aggregator, the consistency checker and — when the aggregator reaches a
// verdict — the global classifier. auto marks answers obtained without a
// question (pruning inference, none-of-these fan-out).
func (e *Engine) recordAnswer(u *userState, a *assign.Assignment, support float64, auto bool) {
	u.answers[a.Key()] = support
	if auto {
		e.stats.AutoAnswers++
	}
	if e.checker != nil && !auto {
		e.checker.Record(u.member.ID(), e.space.Instantiate(a), support)
	}
	if _, settled := e.decided[a.Key()]; settled {
		return
	}
	e.agg.Add(a.Key(), u.member.ID(), support)
	if d := e.agg.Decide(a.Key()); d != crowd.Undecided {
		e.settle(a, d)
	}
}

// settle freezes the aggregator verdict and updates the global classifier.
func (e *Engine) settle(a *assign.Assignment, d crowd.Decision) {
	e.decided[a.Key()] = d
	if d == crowd.OverallSignificant {
		if e.global.Status(a) != assign.Significant {
			e.global.MarkSignificant(a)
			e.tracker.onMark(a, true)
		}
	} else {
		if e.global.Status(a) != assign.Insignificant {
			e.global.MarkInsignificant(a)
			e.tracker.onMark(a, false)
		}
	}
	e.checkConfirmations()
}

// finalize decides assignments whose answers never reached the aggregator's
// quota: with at least one answer the mean decides; untouched assignments
// reachable from the roots are conservatively insignificant.
func (e *Engine) finalize() {
	if e.stopped {
		// A top-k run ends as soon as k MSPs are confirmed; the
		// unexplored remainder stays unclassified by design.
		return
	}
	keys := make([]string, 0, len(e.byKey))
	for k := range e.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a := e.byKey[k]
		if _, settled := e.decided[k]; settled {
			continue
		}
		if e.globalStatus(a) != assign.Unknown {
			continue
		}
		if e.agg.Answers(k) > 0 && e.agg.Support(k) >= e.cfg.Theta {
			e.settle(a, crowd.OverallSignificant)
		} else {
			e.settle(a, crowd.OverallInsignificant)
		}
	}
}

func (e *Engine) globalStatus(a *assign.Assignment) assign.Status {
	return e.global.Status(a)
}

func (e *Engine) decidedOf(a *assign.Assignment) crowd.Decision {
	return e.decided[a.Key()]
}

func (e *Engine) assignmentPruned(u *userState, a *assign.Assignment) bool {
	if len(u.pruned) == 0 {
		return false
	}
	v := e.space.Vocabulary()
	for _, vs := range e.space.Vars() {
		if vs.Kind != vocab.Element {
			continue
		}
		for _, val := range a.Values(vs.Name) {
			for p := range u.pruned {
				if v.LeqE(p, val) {
					return true
				}
			}
		}
	}
	for _, f := range a.More() {
		for p := range u.pruned {
			if (f.S != ontology.Any && v.LeqE(p, f.S)) ||
				(f.O != ontology.Any && v.LeqE(p, f.O)) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) intern(a *assign.Assignment) *assign.Assignment {
	if prev, ok := e.byKey[a.Key()]; ok {
		return prev
	}
	e.byKey[a.Key()] = a
	e.stats.Generated++
	return a
}

func (e *Engine) successors(a *assign.Assignment) []*assign.Assignment {
	if cached, ok := e.succs[a.Key()]; ok {
		return cached
	}
	out := e.space.Successors(a)
	for i, x := range out {
		out[i] = e.intern(x)
	}
	e.succs[a.Key()] = out
	return out
}

func (e *Engine) roots() []*assign.Assignment {
	rs := e.space.Roots()
	for i, r := range rs {
		rs[i] = e.intern(r)
	}
	return rs
}

func (e *Engine) checkConfirmations() {
	for _, b := range e.global.SignificantBorder() {
		if e.confirmed[b.Key()] {
			continue
		}
		done := true
		for _, succ := range e.successors(b) {
			if e.global.Status(succ) != assign.Insignificant {
				done = false
				break
			}
		}
		if done {
			e.confirmed[b.Key()] = true
			e.tracker.onMSP(b)
			if e.cfg.OnMSP != nil {
				e.cfg.OnMSP(b)
			}
			if e.cfg.MaxMSPs > 0 && len(e.confirmed) >= e.cfg.MaxMSPs {
				e.stopped = true
			}
		}
	}
}

// Provenance reports which members contributed answers to an assignment
// and with what support — the transparency hook for downstream review of
// an answer ("who said this?").
type Provenance struct {
	MemberID string
	Support  float64
}

// Explain returns the per-member answers behind an assignment, sorted by
// member ID, plus the frozen aggregate decision if any.
func (e *Engine) Explain(a *assign.Assignment) []Provenance {
	var out []Provenance
	for _, u := range e.users {
		if s, ok := u.answers[a.Key()]; ok {
			out = append(out, Provenance{MemberID: u.member.ID(), Support: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MemberID < out[j].MemberID })
	return out
}

// FlaggedSpammers lists members the consistency filter banned.
func (e *Engine) FlaggedSpammers() []string {
	if e.checker == nil {
		return nil
	}
	return e.checker.Flagged()
}

func (e *Engine) result() *Result {
	res := &Result{Stats: e.stats, Supports: make(map[string]float64)}
	for k := range e.byKey {
		if e.agg.Answers(k) > 0 {
			res.Supports[k] = e.agg.Support(k)
		}
	}
	border := append([]*assign.Assignment{}, e.global.SignificantBorder()...)
	if e.stopped {
		border = border[:0]
		for _, b := range e.global.SignificantBorder() {
			if e.confirmed[b.Key()] {
				border = append(border, b)
			}
		}
	}
	sort.Slice(border, func(i, j int) bool { return border[i].Key() < border[j].Key() })
	res.MSPs = border
	for _, b := range border {
		if e.space.IsValid(b) {
			res.ValidMSPs = append(res.ValidMSPs, b)
		}
	}
	for _, a := range e.byKey {
		if e.global.Status(a) == assign.Significant {
			res.Significant = append(res.Significant, a)
		}
	}
	sort.Slice(res.Significant, func(i, j int) bool {
		return res.Significant[i].Key() < res.Significant[j].Key()
	})
	return res
}
