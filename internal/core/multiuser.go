package core

import (
	"sort"
	"time"

	"oassis/internal/assign"
	"oassis/internal/chaos"
	"oassis/internal/crowd"
	"oassis/internal/obs"
)

// EngineConfig parameterizes the multi-user evaluation of Section 4.2.
type EngineConfig struct {
	// Theta is the query's support threshold.
	Theta float64
	// Aggregator is the black-box decision mechanism; nil uses the
	// paper's 5-answer mean rule.
	Aggregator crowd.Aggregator
	// SpecializationRatio is the probability that a descend step uses a
	// specialization question instead of a concrete one (the paper
	// observed members choosing specialization ~12% of the time).
	SpecializationRatio float64
	// MaxQuestionsPerMember caps one member's session ("the outer loop
	// ... can be terminated at any point"); 0 means unlimited.
	MaxQuestionsPerMember int
	// Consistency enables the Section 4.2 spammer filter; flagged
	// members stop receiving questions and their answers are dropped
	// from a TrustWeightedAggregator (if one is configured).
	Consistency bool
	// CalibrationQuestions, with Consistency, probes each member on a
	// chain of comparable assignments before mining starts — the
	// "preliminary step to filter the crowd members" of Section 4.2 —
	// so spammers are caught before their answers settle decisions.
	CalibrationQuestions int
	// MaxMSPs stops the run once this many MSPs are confirmed (the
	// top-k extension; 0 = mine to completion).
	MaxMSPs int
	// OnMSP, when set, streams each MSP the moment it is confirmed —
	// the incremental answer delivery the paper emphasizes ("answers
	// can be returned ... as soon as they are identified").
	OnMSP func(*assign.Assignment)
	// Seed drives question-type choices.
	Seed int64
	// AnswerDeadline bounds how long one answer may take, as measured by
	// the broker carrying the question (Reply.Elapsed). An answer
	// arriving later is discarded (it is stale: the member may have seen
	// a question whose context has moved on) and the member is re-asked
	// on their next turn; after MaxAnswerTimeouts consecutive overruns
	// the member is treated as departed. 0 waits forever (the pre-chaos
	// behaviour).
	AnswerDeadline time.Duration
	// MaxAnswerTimeouts is the consecutive-overrun budget before a slow
	// member is dropped; 0 means the default of 3.
	MaxAnswerTimeouts int
	// Clock is the time source the in-process member broker uses to
	// measure answer latency; nil uses the wall clock. Chaos tests
	// inject a chaos.VirtualClock so slow-member scenarios replay
	// deterministically in zero wall time. The kernel itself never
	// reads a clock — external brokers time their own exchanges.
	Clock chaos.Clock
	// RecordTranscript collects a per-member interview log into
	// Result.Transcripts, for differential testing across drivers.
	RecordTranscript bool
	// SelectionWorkers shards the kernel's per-round question selection
	// (and, for full-mining runs, the reply fold) across this many worker
	// goroutines. Results are byte-identical to the serial kernel: workers
	// only speculate against frozen round-start state, and a serial commit
	// re-validates every proposal in member order, re-selecting serially
	// on any conflict (see kernel_parallel.go). 0 or 1 selects serially.
	// Ignored — with a silent serial fallback — when the aggregator does
	// not implement both crowd.QuotaCarrier and crowd.ReadSnapshotter,
	// whose contracts the speculation safety argument depends on.
	SelectionWorkers int
	// Obs, when set, receives kernel metrics, per-round trace spans and
	// (for Run/RunParallel) broker metrics. Nil disables observability:
	// the kernel pays one nil check per event, nothing more.
	Obs *obs.Observer
}

// Engine is the multi-user query evaluator: one event-driven mining
// kernel (see kernel.go) plus interchangeable drivers. Run serves
// members sequentially and deterministically; RunParallel serves them
// through a worker pool; RunWith drives any Broker — including
// asynchronous ones like the HTTP platform. All drivers execute the
// same bulk-synchronous round protocol (select one question per live
// member, dispatch, fold replies back in ask order at the barrier), so
// they produce identical transcripts on the same crowd.
type Engine struct {
	k       *kernel
	members []crowd.Member
	clock   chaos.Clock
}

// NewEngine builds a multi-user evaluator over the space and member pool.
func NewEngine(sp *assign.Space, members []crowd.Member, cfg EngineConfig) *Engine {
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.ID()
	}
	e := newBrokerEngine(sp, ids, cfg)
	e.members = members
	return e
}

// NewBrokerEngine builds an evaluator for a crowd known only by member
// IDs — the members live behind a Broker (an HTTP platform, a worker
// fleet) and are reached exclusively through RunWith.
func NewBrokerEngine(sp *assign.Space, ids []string, cfg EngineConfig) *Engine {
	return newBrokerEngine(sp, ids, cfg)
}

func newBrokerEngine(sp *assign.Space, ids []string, cfg EngineConfig) *Engine {
	clock := cfg.Clock
	if clock == nil {
		clock = chaos.Real()
	}
	return &Engine{k: newKernel(sp, ids, cfg), clock: clock}
}

// Run drives member sessions in bulk-synchronous rounds until no member
// can contribute, then finalizes undecided assignments from the answers
// gathered so far. Questions are posed inline, one member at a time in
// member order, so a run over deterministic members (and, with a virtual
// clock, deterministic faults) replays bit-identically. A member with
// nothing to answer in one round is retried in later rounds: other
// members' answers can settle assignments and unlock new regions.
func (e *Engine) Run() *Result {
	b := crowd.NewMemberBroker(e.members, e.clock.Now)
	b.Metrics = e.k.cfg.Obs.BrokerSet()
	return e.drive(func(asks []*crowd.Ask) []crowd.Reply {
		replies := make([]crowd.Reply, 0, len(asks))
		for _, a := range asks {
			b.Post(a, func(r crowd.Reply) {
				replies = append(replies, r)
			})
		}
		return replies
	})
}

// RunWith drives the kernel over an arbitrary broker: each round's asks
// are posted without waiting, replies are collected as they come, and
// the round closes when every ask has resolved. This is the driver
// behind the HTTP platform, where answers arrive from the network in
// any order.
func (e *Engine) RunWith(b crowd.Broker) *Result {
	return e.drive(func(asks []*crowd.Ask) []crowd.Reply {
		ch := make(chan crowd.Reply, len(asks))
		for _, a := range asks {
			b.Post(a, func(r crowd.Reply) { ch <- r })
		}
		replies := make([]crowd.Reply, 0, len(asks))
		for range asks {
			replies = append(replies, <-ch)
		}
		return replies
	})
}

// drive is the round loop every driver shares: select, dispatch, fold.
// Replies are applied in ask order regardless of arrival order, which is
// what makes the drivers behaviorally identical.
//
// When the config carries an Observer, each round becomes one trace span
// ("round", with ask/reply/border attributes) timed on the engine clock —
// chaos runs with a virtual clock therefore trace virtual durations, the
// same ones their deadlines are judged by.
func (e *Engine) drive(dispatch func([]*crowd.Ask) []crowd.Reply) *Result {
	observed := e.k.cfg.Obs != nil
	km := e.k.km // non-nil; all fields no-ops when unobserved
	tr := e.k.cfg.Obs.Trace()
	runStart := e.clock.Now()
	if jr := e.k.jr; jr != nil {
		// The journal records on the engine clock: a chaos VirtualClock
		// run journals deterministic timestamps. The run scope opens here
		// so every kernel emission below carries this run's ID.
		jr.BindClock(e.clock.Now)
		ids := make([]string, len(e.k.users))
		for i, u := range e.k.users {
			ids[i] = u.id
		}
		e.k.jrRun = jr.StartRun(ids, e.k.cfg.Seed, e.k.cfg.Theta)
	}
	for {
		roundStart := e.clock.Now()
		asks := e.k.beginRound()
		if len(asks) == 0 {
			break
		}
		if observed {
			tr.Record("selection", roundStart.Sub(runStart), e.clock.Now().Sub(roundStart),
				obs.Attr{Key: "asks", Val: int64(len(asks))})
		}
		km.InFlight.Set(int64(len(asks)))
		replies := dispatch(asks)
		sort.Slice(replies, func(i, j int) bool {
			return replies[i].Ask.ID < replies[j].Ask.ID
		})
		e.k.applyAll(replies)
		km.Replies.Add(int64(len(replies)))
		km.InFlight.Set(0)
		if observed {
			border := e.k.global.SignificantBorderSize()
			now := e.clock.Now()
			dur := now.Sub(roundStart)
			km.RoundComplete(len(asks), border, dur)
			tr.Record("round", roundStart.Sub(runStart), dur,
				obs.Attr{Key: "asks", Val: int64(len(asks))},
				obs.Attr{Key: "replies", Val: int64(len(replies))},
				obs.Attr{Key: "border", Val: int64(border)})
			e.k.jr.RoundEnd(e.k.jrRun, e.k.stats.Rounds, len(asks), len(replies),
				border, int64(e.k.stats.Questions))
		}
	}
	e.k.finalize()
	if e.k.jr != nil {
		// finalize-time settles land in the curve's final bucket.
		e.k.jr.EndRun(e.k.jrRun, e.k.stats.Rounds, int64(e.k.stats.Questions))
	}
	return e.k.result()
}

// Provenance reports which members contributed answers to an assignment
// and with what support — the transparency hook for downstream review of
// an answer ("who said this?").
type Provenance struct {
	MemberID string
	Support  float64
}

// Explain returns the per-member answers behind an assignment, sorted by
// member ID, plus the frozen aggregate decision if any.
func (e *Engine) Explain(a *assign.Assignment) []Provenance {
	return e.k.explain(a)
}

// FlaggedSpammers lists members the consistency filter banned.
func (e *Engine) FlaggedSpammers() []string {
	return e.k.flaggedSpammers()
}
