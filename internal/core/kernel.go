package core

import (
	"math/rand"
	"sort"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// kernel is the event-driven mining core: the paper's QueueManager
// (Section 6.1) as a pure state machine. It owns every piece of mining
// state — the global classifier, the aggregator, per-member sessions,
// calibration, bans, strike-outs — and interacts with the world only
// through ask/reply events:
//
//	beginRound() -> []*crowd.Ask   select the next question per member
//	apply(reply)                   fold one resolved question back in
//
// There are no locks, no clocks and no I/O in here. Time enters only as
// Reply.Elapsed (measured by whatever broker carried the question), and
// concurrency is entirely the caller's business: drivers run rounds
// bulk-synchronously (select → dispatch → apply at the barrier, in
// member order), which makes every driver — sequential, worker pool,
// HTTP platform — produce the same transcripts by construction.
type kernel struct {
	space *assign.Space
	cfg   EngineConfig

	agg     crowd.Aggregator
	global  *assign.Classifier
	tracker *progressTracker
	stats   Stats
	rng     *rand.Rand

	// tracked lists, in first-seen order, the lattice nodes this run has
	// materialized (the Space and its edge cache are shared across runs,
	// so the per-run Generated accounting lives here); gen is its
	// membership set, indexed by NodeID.
	tracked []*assign.Assignment
	gen     idSet

	// decided freezes the first aggregator verdict per assignment.
	decided map[assign.NodeID]crowd.Decision

	users   []*userState
	checker *crowd.ConsistencyChecker

	// probes is the calibration chain, built on the first round.
	probes      []*assign.Assignment
	probesBuilt bool

	confirmed map[assign.NodeID]bool
	stopped   bool

	// quota is the aggregator's answers-per-assignment target (0 when
	// unknown); inFlight counts the current round's asks per assignment
	// so the kernel never schedules more answers than the quota needs —
	// the crowd spreads across the frontier instead of dog-piling one
	// node, matching what the apply-as-you-go sequential loop did. It is
	// a NodeID-indexed slice presized from the space's interned-node
	// count; inFlightTouched lists the entries to zero at the next round
	// start, so the reset costs O(asks), not O(nodes).
	quota           int
	inFlight        []int32
	inFlightTouched []assign.NodeID

	// Per-selectMining traversal scratch, reused across calls: visited
	// is an epoch-stamped per-node mark (a slot equals epoch iff the
	// node was reached this traversal — no per-call map allocation) and
	// queueBuf is the BFS queue's backing array.
	visited  []uint32
	epoch    uint32
	queueBuf []*assign.Assignment

	// km mirrors the Stats counters into the configured Observer as
	// events happen, so a live /metrics scrape sees mid-run state. Nil
	// (the default) costs one nil check per event.
	km *obs.KernelMetrics

	// jr is the flight recorder: every ask, reply, timeout, departure and
	// MSP confirmation is journaled with its raw payload — enough for
	// journal.Replay to re-fold the run. jrRun is this run's journal run
	// ID (assigned by the driver at run start). sb feeds the per-member
	// scorecards. Both nil (the default) cost one nil check per event;
	// neither influences kernel state, so transcripts are unchanged.
	jr    *obs.Journal
	jrRun int64
	sb    *obs.Scoreboard

	nextAskID int64

	// sel holds the parallel round-selection machinery (kernel_parallel.go);
	// nil means the kernel runs fully serially.
	sel *selector

	// rngReplay feeds recorded values back to drawFloat ahead of the live
	// rng. Only the parallel commit queues values here: when a speculative
	// draw succeeds, the serial re-selection must consume the exact prefix
	// the commit already drew (see kernel_parallel.go). drawBuf is commit
	// scratch for those draws.
	rngReplay []float64
	drawBuf   []float64

	// commitTouched, non-nil only during a parallel commit, records every
	// assignment the aggregator received an answer for during the commit;
	// speculative auto-answers are validated against it.
	commitTouched map[assign.NodeID]bool

	// confirmWit is the per-border-node confirmation witness, indexed by
	// NodeID: successors(b)[0..confirmWit[b]) are all known insignificant.
	// Statuses are final, so a witness only ever advances — re-checking a
	// border node costs O(its newly insignificant successors), not
	// O(successor list), per settle.
	confirmWit []int32
}

// userState tracks one member's session. answers records the member's
// support value per assignment key; it gates the member's own descent
// (modification 4 of Section 4.2). Note the Section 4.2 preamble:
// multi-user inferences are drawn from the GLOBALLY collected knowledge —
// a member's personal no blocks their own inner-loop dive, but they may
// still be asked below it when the outer loop reaches there through
// globally classified assignments ("this may lead to some redundant
// questions", which the paper accepts for better pruning).
type userState struct {
	id      string
	index   int
	answers map[assign.NodeID]float64
	pruned  map[vocab.TermID]bool
	asked   int
	banned  bool
	// departed marks a member who left mid-run (a Departed reply or
	// too many deadline overruns); the kernel stops asking them and the
	// run degrades gracefully to the surviving crowd.
	departed bool
	// timeouts counts consecutive answer-deadline overruns.
	timeouts int
	// probeIdx is the member's position in the calibration chain.
	probeIdx int
	// pending is the in-flight ask, between beginRound and apply.
	pending *pendingAsk
	// transcript records, in order, every usable answer this member gave —
	// the driver-independent interview log the differential tests compare
	// across execution modes. Only written when cfg.RecordTranscript; kept
	// per member (not in a shared map) so the parallel reply fold can
	// append from per-member workers.
	transcript []string
}

// pendingAsk keeps the kernel-side context of an emitted Ask: the
// assignment(s) the reply must be folded back into.
type pendingAsk struct {
	ask    *crowd.Ask
	target *assign.Assignment   // ConcreteAsk
	base   *assign.Assignment   // SpecializeAsk
	open   []*assign.Assignment // SpecializeAsk candidates, = ask.Options
	probe  bool                 // calibration probe
}

// answeredYes reports whether the member answered the assignment with
// support at or above the threshold.
func (u *userState) answeredYes(id assign.NodeID, theta float64) bool {
	s, ok := u.answers[id]
	return ok && s >= theta
}

// idSet is a growable membership set over dense NodeIDs.
type idSet struct{ bits []bool }

// add inserts id, growing the set in one step when needed; it reports
// whether id was absent.
func (s *idSet) add(id assign.NodeID) bool {
	if int(id) >= len(s.bits) {
		s.bits = append(s.bits, make([]bool, int(id)+1-len(s.bits))...)
	}
	if s.bits[id] {
		return false
	}
	s.bits[id] = true
	return true
}

// grow presizes the set for ids below n.
func (s *idSet) grow(n int) {
	if n > len(s.bits) {
		s.bits = append(s.bits, make([]bool, n-len(s.bits))...)
	}
}

// newKernel builds the mining state machine for the given member IDs.
func newKernel(sp *assign.Space, ids []string, cfg EngineConfig) *kernel {
	agg := cfg.Aggregator
	if agg == nil {
		agg = crowd.NewMeanAggregator(5, cfg.Theta)
	}
	k := &kernel{
		space:     sp,
		cfg:       cfg,
		agg:       agg,
		global:    assign.NewClassifier(sp),
		tracker:   newProgressTracker(sp),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		decided:   make(map[assign.NodeID]crowd.Decision),
		confirmed: make(map[assign.NodeID]bool),
		km:        cfg.Obs.KernelSet().OrNop(),
		jr:        cfg.Obs.JournalSet(),
		sb:        cfg.Obs.BoardSet(),
	}
	// Presize every NodeID-indexed structure from the interned-node count:
	// the space grows lazily during mining, but most of the lattice this
	// run touches is usually interned already, so the hot paths run
	// without grow checks firing.
	n := sp.NumNodes()
	k.gen.grow(n)
	k.visited = make([]uint32, n)
	k.inFlight = make([]int32, n)
	k.confirmWit = make([]int32, n)
	if cfg.Consistency {
		k.checker = crowd.NewConsistencyChecker(sp.Vocabulary())
		for _, id := range ids {
			k.checker.Register(id)
		}
	}
	if qc, ok := agg.(crowd.QuotaCarrier); ok {
		k.quota = qc.Quota()
	}
	for i, id := range ids {
		k.users = append(k.users, &userState{
			id:      id,
			index:   i,
			answers: make(map[assign.NodeID]float64),
			pruned:  make(map[vocab.TermID]bool),
		})
	}
	k.initSelector()
	return k
}

// beginRound selects at most one question per live member, in member
// order, from the state as of the round start. Auto-answers discovered
// during selection (pruning inference, already-settled regions) are
// folded in immediately, exactly as the sequential loop did. An empty
// round means no member can contribute: the run is over.
func (k *kernel) beginRound() []*crowd.Ask {
	if k.stopped {
		return nil
	}
	for _, id := range k.inFlightTouched {
		k.inFlight[id] = 0
	}
	k.inFlightTouched = k.inFlightTouched[:0]
	var asks []*crowd.Ask
	if k.sel != nil {
		asks = k.beginRoundParallel()
	} else {
		for _, u := range k.users {
			if k.stopped {
				break
			}
			if a := k.selectAsk(u); a != nil {
				asks = append(asks, a)
			}
		}
	}
	if len(asks) > 0 {
		k.stats.Rounds++
		k.stats.Asked += len(asks)
		if len(asks) > k.stats.PeakInFlight {
			k.stats.PeakInFlight = len(asks)
		}
		if k.jr != nil || k.sb != nil {
			k.journalAsks(asks)
		}
	}
	return asks
}

// journalAsks emits one ask event per question of the round just begun.
// The emission runs over beginRound's return value — the single funnel
// both the serial and the parallel selector share — so the recorded
// stream is identical across selection modes.
func (k *kernel) journalAsks(asks []*crowd.Ask) {
	round := k.stats.Rounds
	for _, a := range asks {
		k.sb.Asked(a.Member)
		if k.jr == nil {
			continue
		}
		qkind, key, probe := "concrete", "", false
		if p := k.users[a.Index].pending; p != nil {
			probe = p.probe
			if a.Kind == crowd.SpecializeAsk {
				qkind, key = "specialize", p.base.Key()
			} else {
				key = p.target.Key()
			}
		}
		k.jr.AskEvent(k.jrRun, round, a.ID, a.Member, qkind, key, probe, len(a.Options))
	}
}

// prunedInts converts a reply's pruned-term list to the journal's wire
// type. Only called on journaled paths.
func prunedInts(p []vocab.TermID) []int32 {
	if len(p) == 0 {
		return nil
	}
	out := make([]int32, len(p))
	for i, t := range p {
		out[i] = int32(t)
	}
	return out
}

// eligible reports whether the member can be asked anything this round.
// Every input is only mutated at the apply barrier, so the verdict is
// stable for the whole selection phase — which is what lets the parallel
// selector evaluate it speculatively.
func (k *kernel) eligible(u *userState) bool {
	if u.banned || u.departed || u.pending != nil {
		return false
	}
	return k.cfg.MaxQuestionsPerMember <= 0 || u.asked < k.cfg.MaxQuestionsPerMember
}

// selectAsk picks the member's next question: their calibration probes
// first (the Section 4.2 "preliminary step"), then the DAG traversal.
func (k *kernel) selectAsk(u *userState) *crowd.Ask {
	if !k.eligible(u) {
		return nil
	}
	if k.checker != nil && k.cfg.CalibrationQuestions > 0 {
		if ask := k.selectProbe(u); ask != nil {
			return ask
		}
	}
	return k.selectMining(u)
}

// selectProbe walks the member through the calibration chain, one probe
// per round. The chain's members are pairwise comparable, so the
// consistency checker can judge monotonicity immediately; members
// flagged here never influence the mining phase. Calibration answers
// still count as questions and feed the aggregator (honest answers
// about general assignments are useful work).
func (k *kernel) selectProbe(u *userState) *crowd.Ask {
	if !k.probesBuilt {
		k.probes = k.probeChain(k.cfg.CalibrationQuestions)
		k.probesBuilt = true
	}
	for u.probeIdx < len(k.probes) {
		p := k.probes[u.probeIdx]
		if _, answered := u.answers[p.ID()]; answered {
			u.probeIdx++
			continue
		}
		if k.assignmentPruned(u, p) {
			k.recordAnswer(u, p, 0, true)
			u.probeIdx++
			continue
		}
		return k.emitConcrete(u, p, true)
	}
	return nil
}

// probeChain walks from a root down first-successor edges, yielding up
// to n pairwise comparable assignments.
func (k *kernel) probeChain(n int) []*assign.Assignment {
	roots := k.roots()
	if len(roots) == 0 {
		return nil
	}
	chain := []*assign.Assignment{roots[0]}
	cur := roots[0]
	for len(chain) < n {
		succs := k.successors(cur)
		if len(succs) == 0 {
			break
		}
		cur = succs[0]
		chain = append(chain, cur)
	}
	return chain
}

// selectMining navigates from the roots through descendable assignments
// to the first question this member should answer — the traversal of
// Section 4.2 with all five modifications. Nil means the member has
// nothing to do this round (other members' answers may unlock them
// later).
func (k *kernel) selectMining(u *userState) *crowd.Ask {
	k.epoch++
	queue := append(k.queueBuf[:0], k.roots()...)
	defer func() { k.queueBuf = queue[:0] }()
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		if k.alreadyVisited(a.ID()) {
			continue
		}

		if k.globalStatus(a) == assign.Insignificant {
			continue // pruned globally (modification 4)
		}
		if k.globalStatus(a) == assign.Significant {
			// Globally settled significant: descend regardless of
			// this member's own view (the outer loop must still
			// collect their answers for deeper, undecided nodes —
			// the Section 4.2 refinement), without re-asking.
			if u.answeredYes(a.ID(), k.cfg.Theta) {
				if ask := k.maybeSpecialize(u, a); ask != nil {
					return ask
				}
			}
			queue = append(queue, k.successors(a)...)
			continue
		}
		// Globally undecided: collect this member's answer if missing.
		if _, answered := u.answers[a.ID()]; !answered {
			if k.assignmentPruned(u, a) {
				// Auto-answer 0 from an earlier pruning click.
				k.recordAnswer(u, a, 0, true)
				continue
			}
			if k.coveredInFlight(a) {
				// Enough answers are already scheduled this round
				// to reach the aggregator's quota; this member's
				// effort is better spent elsewhere on the frontier.
				continue
			}
			return k.emitConcrete(u, a, false)
		}
		// Answered: the member dives below only after a personal yes
		// (modification 4); a personal no leaves the region to others.
		if u.answeredYes(a.ID(), k.cfg.Theta) {
			if ask := k.maybeSpecialize(u, a); ask != nil {
				return ask
			}
			queue = append(queue, k.successors(a)...)
		}
	}
	return nil
}

// alreadyVisited marks a node as reached in the current selectMining
// traversal and reports whether it had been reached before. Slots are
// epoch-stamped so the scratch is reset by bumping k.epoch, not by
// reallocating.
func (k *kernel) alreadyVisited(id assign.NodeID) bool {
	if int(id) >= len(k.visited) {
		k.visited = append(k.visited, make([]uint32, int(id)+1-len(k.visited))...)
	}
	if k.visited[id] == k.epoch {
		return true
	}
	k.visited[id] = k.epoch
	return false
}

// maybeSpecialize rolls the question-type choice at a personally-
// significant assignment and, when specialization is drawn and useful,
// emits it.
func (k *kernel) maybeSpecialize(u *userState, base *assign.Assignment) *crowd.Ask {
	if k.cfg.SpecializationRatio <= 0 || k.drawFloat() >= k.cfg.SpecializationRatio {
		return nil
	}
	var open []*assign.Assignment
	for _, succ := range k.successors(base) {
		if k.globalStatus(succ) != assign.Unknown {
			continue
		}
		if _, answered := u.answers[succ.ID()]; answered {
			continue
		}
		if k.assignmentPruned(u, succ) {
			k.recordAnswer(u, succ, 0, true)
			continue
		}
		open = append(open, succ)
	}
	if len(open) < 2 {
		return nil
	}
	cands := make([]ontology.FactSet, len(open))
	for i, o := range open {
		cands[i] = k.space.Instantiate(o)
	}
	k.nextAskID++
	ask := &crowd.Ask{
		ID:      k.nextAskID,
		Member:  u.id,
		Index:   u.index,
		Kind:    crowd.SpecializeAsk,
		Base:    k.space.Instantiate(base),
		Options: cands,
	}
	u.pending = &pendingAsk{ask: ask, base: base, open: open}
	return ask
}

// drawFloat returns the next specialization draw: replayed values first
// (only ever queued by the parallel commit), then the live rng. The serial
// kernel always reads the live stream.
func (k *kernel) drawFloat() float64 {
	if len(k.rngReplay) > 0 {
		v := k.rngReplay[0]
		k.rngReplay = k.rngReplay[1:]
		return v
	}
	return k.rng.Float64()
}

// coveredInFlight reports whether this round already scheduled enough
// asks for the assignment to satisfy the aggregator's remaining quota.
// Calibration probes bypass this: every member is probed by design.
func (k *kernel) coveredInFlight(a *assign.Assignment) bool {
	if k.quota <= 0 {
		return false
	}
	need := k.quota - k.agg.Answers(a.ID())
	if need < 1 {
		need = 1
	}
	id := a.ID()
	return int(id) < len(k.inFlight) && int(k.inFlight[id]) >= need
}

// emitConcrete builds the Ask event for one concrete question.
func (k *kernel) emitConcrete(u *userState, a *assign.Assignment, probe bool) *crowd.Ask {
	return k.emitConcreteInst(u, a, probe, k.space.Instantiate(a))
}

// emitConcreteInst is emitConcrete with a pre-instantiated fact-set (the
// parallel commit reuses the instantiation its selection worker already
// built; Instantiate is a pure function of the assignment, so the result
// is identical).
func (k *kernel) emitConcreteInst(u *userState, a *assign.Assignment, probe bool, fs ontology.FactSet) *crowd.Ask {
	k.nextAskID++
	ask := &crowd.Ask{
		ID:     k.nextAskID,
		Member: u.id,
		Index:  u.index,
		Kind:   crowd.ConcreteAsk,
		Target: fs,
	}
	u.pending = &pendingAsk{ask: ask, target: a, probe: probe}
	id := a.ID()
	if int(id) >= len(k.inFlight) {
		k.inFlight = append(k.inFlight, make([]int32, int(id)+1-len(k.inFlight))...)
	}
	if k.inFlight[id] == 0 {
		k.inFlightTouched = append(k.inFlightTouched, id)
	}
	k.inFlight[id]++
	return ask
}

// apply folds one resolved question back into the mining state. Drivers
// call it at the round barrier, in ask order, so the fold sequence is
// identical no matter how replies actually arrived.
func (k *kernel) apply(r crowd.Reply) {
	if r.Ask == nil || r.Ask.Index < 0 || r.Ask.Index >= len(k.users) {
		return
	}
	u := k.users[r.Ask.Index]
	p := u.pending
	if p == nil || p.ask != r.Ask {
		return // not the in-flight ask; ignore
	}
	u.pending = nil
	if p.probe {
		// The chain advances per attempt: a probe that produced no
		// usable answer is skipped, not retried (calibration is a
		// bounded preliminary, not a mining obligation).
		u.probeIdx++
	}
	if k.stopped {
		// A top-k run ended while this question was in flight; the
		// answer arrived for nothing.
		k.stats.Discarded++
		k.km.Discarded.Inc()
		if k.jr != nil {
			k.jr.ReplyEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, u.id, r.Outcome.String(),
				r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed), "discarded")
		}
		return
	}
	if r.Outcome == crowd.Departed {
		if k.jr != nil {
			k.jr.DepartureEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, u.id, r.Outcome.String(),
				r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed))
		}
		if !u.departed {
			u.departed = true
			k.stats.Departures++
			k.km.Departures.Inc()
			k.sb.Departure(u.id)
		}
		return
	}
	deadline := k.cfg.AnswerDeadline
	if r.Outcome == crowd.TimedOut || (deadline > 0 && r.Elapsed > deadline) {
		// The answer is stale: the member may have seen a question
		// whose context has moved on. Discard it; the traversal
		// re-poses the assignment on the member's next turn.
		k.stats.TimedOut++
		k.stats.Discarded++
		k.km.Timeouts.Inc()
		k.km.Discarded.Inc()
		u.timeouts++
		max := k.cfg.MaxAnswerTimeouts
		if max <= 0 {
			max = 3
		}
		struck := u.timeouts >= max
		if k.jr != nil {
			// The raw outcome is preserved (an answered reply that
			// overran the deadline stays "answered" on the wire): replay
			// re-derives the timeout from Elapsed vs the deadline.
			k.jr.TimeoutEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, u.id, r.Outcome.String(),
				r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed), struck)
		}
		k.sb.Timeout(u.id, struck)
		if struck {
			u.departed = true
			k.stats.Departures++
			k.km.Departures.Inc()
			k.sb.Departure(u.id)
		}
		return
	}
	u.timeouts = 0
	u.asked++
	k.stats.Questions++
	k.km.Questions.Inc()
	if k.jr != nil {
		k.jr.ReplyEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, u.id, r.Outcome.String(),
			r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed), "")
	}
	k.sb.Reply(u.id, r.Support, r.Elapsed.Seconds())
	switch p.ask.Kind {
	case crowd.ConcreteAsk:
		k.stats.ConcreteQ++
		if len(r.Pruned) > 0 {
			k.stats.PruneClicks++
			for _, t := range r.Pruned {
				u.pruned[t] = true
			}
		}
		if k.cfg.RecordTranscript {
			k.transcribe(u, "concrete "+p.target.Key())
		}
		k.recordAnswer(u, p.target, r.Support, false)
	case crowd.SpecializeAsk:
		k.stats.SpecialQ++
		if r.Choice < 0 || r.Choice >= len(p.open) {
			k.stats.NoneOfThese++
			k.stats.AutoAnswers += len(p.open) - 1
			if k.cfg.RecordTranscript {
				k.transcribe(u, "specialize "+p.base.Key()+" -> none")
			}
			for _, o := range p.open {
				k.recordAnswer(u, o, 0, true)
			}
		} else {
			if k.cfg.RecordTranscript {
				k.transcribe(u, "specialize "+p.base.Key()+" -> "+p.open[r.Choice].Key())
			}
			k.recordAnswer(u, p.open[r.Choice], r.Support, false)
		}
	}
	k.tracker.sample(&k.stats)
	k.reviewBan(u)
}

// transcribe appends one interview-log line for the member. Callers guard
// with cfg.RecordTranscript so the log line (and its string concatenation)
// is only built when transcripts are recorded.
func (k *kernel) transcribe(u *userState, line string) {
	u.transcript = append(u.transcript, line)
}

// reviewBan applies the Section 4.2 spammer filter after an answer.
func (k *kernel) reviewBan(u *userState) {
	if k.checker == nil || u.banned || !k.checker.IsSpammer(u.id) {
		return
	}
	u.banned = true
	k.sb.Ban(u.id)
	if tw, ok := k.agg.(*crowd.TrustWeightedAggregator); ok {
		tw.SetTrust(u.id, 0)
	}
}

// recordAnswer feeds one member answer into the member's answer log, the
// aggregator, the consistency checker and — when the aggregator reaches a
// verdict — the global classifier. auto marks answers obtained without a
// question (pruning inference, none-of-these fan-out).
func (k *kernel) recordAnswer(u *userState, a *assign.Assignment, support float64, auto bool) {
	u.answers[a.ID()] = support
	if auto {
		k.stats.AutoAnswers++
		k.km.Inferred.Inc()
	}
	if k.checker != nil && !auto {
		k.checker.Record(u.id, k.space.Instantiate(a), support)
	}
	if _, settled := k.decided[a.ID()]; settled {
		return
	}
	k.agg.Add(a.ID(), u.id, support)
	if k.jr != nil && k.agg.Answers(a.ID()) == 1 {
		k.jr.NoteNewAnswer(k.jrRun)
	}
	if k.commitTouched != nil {
		// Parallel commit in progress: later members' speculative
		// auto-answers must re-validate against any node the aggregator
		// was fed during the commit.
		k.commitTouched[a.ID()] = true
	}
	if d := k.agg.Decide(a.ID()); d != crowd.Undecided {
		k.settle(a, d)
	}
}

// settle freezes the aggregator verdict and updates the global classifier.
// Confirmation checks run only when a mark actually landed: statuses derive
// from marks alone, so a settle that changes no mark cannot confirm
// anything (the full rescan the kernel used to do here was a no-op in that
// case).
func (k *kernel) settle(a *assign.Assignment, d crowd.Decision) {
	k.decided[a.ID()] = d
	if k.sb != nil {
		// Score each member who answered this now-settled question on
		// whether their own verdict matched the aggregate decision.
		sig := d == crowd.OverallSignificant
		for _, u := range k.users {
			if s, ok := u.answers[a.ID()]; ok {
				k.sb.Agree(u.id, (s >= k.cfg.Theta) == sig)
			}
		}
	}
	if d == crowd.OverallSignificant {
		if k.global.Status(a) != assign.Significant {
			k.global.MarkSignificant(a)
			k.tracker.onMark(a, true)
			// A significant mark only flips statuses Unknown →
			// Significant, so no existing border node's "all successors
			// insignificant" condition can newly hold; the only node
			// that may confirm is the marked one itself, which just
			// joined the border (its successors may already all be
			// insignificant).
			k.witnessConfirm(a)
		}
	} else {
		if k.global.Status(a) != assign.Insignificant {
			k.global.MarkInsignificant(a)
			k.tracker.onMark(a, false)
			// An insignificant mark can confirm any unconfirmed border
			// node — the marked node need not be comparable to the
			// successor it newly classifies (the derivation runs through
			// the order, not the border) — so every candidate advances
			// its witness. Each advance step is a successor newly seen
			// insignificant, never re-examined: amortized O(affected).
			for _, b := range k.global.SignificantBorder() {
				if !k.confirmed[b.ID()] {
					k.witnessConfirm(b)
				}
			}
		}
	}
}

// finalize decides assignments whose answers never reached the aggregator's
// quota: with at least one answer the mean decides; untouched assignments
// reachable from the roots are conservatively insignificant.
func (k *kernel) finalize() {
	if k.stopped {
		// A top-k run ends as soon as k MSPs are confirmed; the
		// unexplored remainder stays unclassified by design.
		return
	}
	// Deterministic finalization order: by canonical key, matching the
	// pre-interning behavior (tracked is in nondeterministic-looking but
	// run-deterministic first-seen order; sorting pins it either way).
	nodes := append([]*assign.Assignment{}, k.tracked...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key() < nodes[j].Key() })
	for _, a := range nodes {
		if _, settled := k.decided[a.ID()]; settled {
			continue
		}
		if k.globalStatus(a) != assign.Unknown {
			continue
		}
		if k.agg.Answers(a.ID()) > 0 && k.agg.Support(a.ID()) >= k.cfg.Theta {
			k.settle(a, crowd.OverallSignificant)
		} else {
			k.settle(a, crowd.OverallInsignificant)
		}
	}
}

func (k *kernel) globalStatus(a *assign.Assignment) assign.Status {
	return k.global.Status(a)
}

func (k *kernel) assignmentPruned(u *userState, a *assign.Assignment) bool {
	if len(u.pruned) == 0 {
		return false
	}
	v := k.space.Vocabulary()
	for _, vs := range k.space.Vars() {
		if vs.Kind != vocab.Element {
			continue
		}
		for _, val := range a.Values(vs.Name) {
			for p := range u.pruned {
				if v.LeqE(p, val) {
					return true
				}
			}
		}
	}
	for _, f := range a.More() {
		for p := range u.pruned {
			if (f.S != ontology.Any && v.LeqE(p, f.S)) ||
				(f.O != ontology.Any && v.LeqE(p, f.O)) {
				return true
			}
		}
	}
	return false
}

// track records that this run has materialized the node; Generated counts
// per-run laziness even though the Space (and its interner) is shared.
func (k *kernel) track(a *assign.Assignment) {
	if k.gen.add(a.ID()) {
		k.tracked = append(k.tracked, a)
		k.stats.Generated++
	}
}

// successors returns the node's successor list from the space's shared edge
// cache (computed at most once per node across all runs). The slice is
// shared and read-only.
func (k *kernel) successors(a *assign.Assignment) []*assign.Assignment {
	out := k.space.Successors(a)
	for _, x := range out {
		k.track(x)
	}
	return out
}

// roots returns the space's memoized root set (shared, read-only).
func (k *kernel) roots() []*assign.Assignment {
	rs := k.space.Roots()
	for _, r := range rs {
		k.track(r)
	}
	return rs
}

// witnessConfirm advances the border node's confirmation witness over its
// newly insignificant successors and confirms it as an MSP when the witness
// clears the whole list. Confirmation never un-happens (statuses are
// final), so the witness position is valid across settles. Note the stop
// flag is only raised, never acted on here: like the old full rescan, a
// MaxMSPs run keeps confirming the remaining candidates of the settle that
// crossed the limit.
func (k *kernel) witnessConfirm(b *assign.Assignment) {
	succs := k.successors(b)
	id := b.ID()
	if int(id) >= len(k.confirmWit) {
		k.confirmWit = append(k.confirmWit, make([]int32, int(id)+1-len(k.confirmWit))...)
	}
	w := k.confirmWit[id]
	for int(w) < len(succs) && k.global.Status(succs[w]) == assign.Insignificant {
		w++
	}
	k.confirmWit[id] = w
	if int(w) < len(succs) {
		return
	}
	k.confirmed[id] = true
	k.tracker.onMSP(b)
	k.km.MSPs.Inc()
	if k.jr != nil {
		k.jr.MSPEvent(k.jrRun, k.stats.Rounds, b.Key(), int64(k.stats.Questions))
	}
	if k.cfg.OnMSP != nil {
		k.cfg.OnMSP(b)
	}
	if k.cfg.MaxMSPs > 0 && len(k.confirmed) >= k.cfg.MaxMSPs {
		k.stopped = true
	}
}

func (k *kernel) explain(a *assign.Assignment) []Provenance {
	a = k.space.Canon(a)
	var out []Provenance
	for _, u := range k.users {
		if s, ok := u.answers[a.ID()]; ok {
			out = append(out, Provenance{MemberID: u.id, Support: s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MemberID < out[j].MemberID })
	return out
}

func (k *kernel) flaggedSpammers() []string {
	if k.checker == nil {
		return nil
	}
	return k.checker.Flagged()
}

func (k *kernel) result() *Result {
	// Supports stays string-keyed: it is part of the public Result API
	// and the HTTP wire format; the translation from NodeIDs happens
	// once here, off the hot path.
	res := &Result{Stats: k.stats, Supports: make(map[string]float64)}
	if t := k.cfg.Obs.Trace(); t != nil {
		res.Trace = t.Summary()
	}
	if k.jr != nil {
		res.Curve = k.jr.Curve(k.jrRun)
		res.JournalRun = k.jrRun
	}
	for _, a := range k.tracked {
		if k.agg.Answers(a.ID()) > 0 {
			res.Supports[a.Key()] = k.agg.Support(a.ID())
		}
	}
	if k.cfg.RecordTranscript {
		trans := make(map[string][]string)
		for _, u := range k.users {
			if len(u.transcript) > 0 {
				trans[u.id] = u.transcript
			}
		}
		res.Transcripts = trans
	}
	border := append([]*assign.Assignment{}, k.global.SignificantBorder()...)
	if k.stopped {
		border = border[:0]
		for _, b := range k.global.SignificantBorder() {
			if k.confirmed[b.ID()] {
				border = append(border, b)
			}
		}
	}
	sort.Slice(border, func(i, j int) bool { return border[i].Key() < border[j].Key() })
	res.MSPs = border
	for _, b := range border {
		if k.space.IsValid(b) {
			res.ValidMSPs = append(res.ValidMSPs, b)
		}
	}
	for _, a := range k.tracked {
		if k.global.Status(a) == assign.Significant {
			res.Significant = append(res.Significant, a)
		}
	}
	sort.Slice(res.Significant, func(i, j int) bool {
		return res.Significant[i].Key() < res.Significant[j].Key()
	})
	return res
}
