package core_test

import (
	"math/rand"
	"testing"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/synth"
	"oassis/internal/vocab"
)

// fsAlias keeps the recorder's signatures compact.
type fsAlias = ontology.FactSet

// leqStrict reports a strict fact-set specialization.
func leqStrict(v *vocab.Vocabulary, a, b ontology.FactSet) bool {
	return ontology.LeqFactSet(v, a, b) && !a.Equal(b)
}

// TestSoakRandomDomains drives the multi-user engine across a spread of
// randomly-shaped domains and checks the structural invariants that must
// hold for every run: termination, MSP antichain, MSPs significant and
// confirmed by recorded supports, progress monotone.
func TestSoakRandomDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 6; trial++ {
		cfg := synth.DomainConfig{
			Name:          "soak",
			SubjectBranch: []int{2 + rng.Intn(3), 2 + rng.Intn(3)},
			ObjectBranch:  []int{2 + rng.Intn(3)},
			Relation:      "rel",
			Multiplicity:  rng.Intn(2) == 0,
			Patterns:      3 + rng.Intn(5),
			Members:       6 + rng.Intn(10),
			Transactions:  20,
			Seed:          rng.Int63(),
		}
		d, err := synth.NewDomain(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		theta := d.Query.Satisfying.Support
		eng := core.NewEngine(d.Space, d.Members, core.EngineConfig{
			Theta:               theta,
			Aggregator:          crowd.NewMeanAggregator(3, theta),
			SpecializationRatio: 0.15,
			Seed:                int64(trial),
		})
		res := eng.Run()

		// MSPs form an antichain.
		for i, a := range res.MSPs {
			for j, b := range res.MSPs {
				if i != j && d.Space.Leq(a, b) {
					t.Fatalf("trial %d: MSP set not an antichain", trial)
				}
			}
		}
		// Valid MSPs are valid; non-valid ones are not.
		validSet := map[string]bool{}
		for _, m := range res.ValidMSPs {
			validSet[m.Key()] = true
			if !d.Space.IsValid(m) {
				t.Fatalf("trial %d: ValidMSPs contains an invalid assignment", trial)
			}
		}
		for _, m := range res.MSPs {
			if d.Space.IsValid(m) != validSet[m.Key()] {
				t.Fatalf("trial %d: MSP validity flag disagrees", trial)
			}
		}
		// Directly-answered MSPs meet the threshold.
		for _, m := range res.MSPs {
			if s, ok := res.SupportOf(m); ok && s < theta {
				t.Fatalf("trial %d: MSP support %v below theta %v", trial, s, theta)
			}
		}
		// Progress is monotone and the counters end consistent.
		var prev core.ProgressPoint
		for i, p := range res.Stats.Progress {
			if i > 0 && (p.Questions < prev.Questions || p.MSPs < prev.MSPs ||
				p.ClassifiedValid < prev.ClassifiedValid) {
				t.Fatalf("trial %d: progress not monotone", trial)
			}
			prev = p
		}
		if res.Stats.Questions == 0 {
			t.Fatalf("trial %d: no questions asked", trial)
		}
	}
}

// TestModificationFour pins the Section 4.2 descent rule: a member only
// dives below assignments they answered "yes" to. With an aggregator that
// can never decide (quota above the crowd size), nothing becomes globally
// classified, so every non-root question a member receives must be a
// specialization of some fact-set they previously answered at or above the
// threshold.
func TestModificationFour(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)

	// recordingMember logs every question it receives.
	base := crowd.NewSimMember("u1", v, du1, 1)
	base.Scale = nil
	rec := &recordingMember{inner: base}
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil

	eng := core.NewEngine(sp, []crowd.Member{rec, m2}, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(5, 0.4), // never reaches quota
		Seed:       1,
	})
	_ = eng.Run()

	if len(rec.asked) == 0 {
		t.Fatal("recorder saw no questions")
	}
	roots := sp.Roots()
	rootFS := make([]fsAlias, len(roots))
	for i, r := range roots {
		rootFS[i] = sp.Instantiate(r)
	}
	for i, fs := range rec.asked {
		isRoot := false
		for _, rf := range rootFS {
			if fs.Equal(rf) {
				isRoot = true
			}
		}
		if isRoot {
			continue
		}
		// Some earlier yes must generalize this question.
		ok := false
		for j := 0; j < i; j++ {
			if rec.supports[j] >= 0.4 && leqStrict(v, rec.asked[j], fs) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("question %d (%s) has no earlier personal yes above it",
				i, fs.String(v))
		}
	}
}

type recordingMember struct {
	inner    *crowd.SimMember
	asked    []fsAlias
	supports []float64
}

func (r *recordingMember) ID() string { return r.inner.ID() }

func (r *recordingMember) AskConcrete(fs fsAlias) crowd.Response {
	resp := r.inner.AskConcrete(fs)
	r.asked = append(r.asked, fs)
	r.supports = append(r.supports, resp.Support)
	return resp
}

func (r *recordingMember) AskSpecialize(base fsAlias, cands []fsAlias) (int, crowd.Response) {
	idx, resp := r.inner.AskSpecialize(base, cands)
	if idx >= 0 {
		r.asked = append(r.asked, cands[idx])
		r.supports = append(r.supports, resp.Support)
	}
	return idx, resp
}
