package core_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"oassis/internal/assign"
	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/paperdata"
	"oassis/internal/vocab"
)

// chaosCrowd builds n members that all answer like u_avg (so the ground
// truth of wantMSPs holds for any surviving subset), wrapped with the given
// per-member fault configurations on a shared virtual clock.
func chaosCrowd(v *vocab.Vocabulary, clock chaos.Clock, faults []chaos.Faults) []crowd.Member {
	members := make([]crowd.Member, len(faults))
	for i, f := range faults {
		f.ID = fmt.Sprintf("m%02d", i)
		if f.Seed == 0 {
			f.Seed = int64(100 + i)
		}
		members[i] = chaos.Wrap(newAvgMember(v), clock, f)
	}
	return members
}

// mspKeys renders a result's MSP key set for comparison.
func mspKeys(res *core.Result) string {
	keys := make([]string, len(res.MSPs))
	for i, m := range res.MSPs {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestChaosQuarterOfCrowdDeparts is the acceptance scenario: 3 of 8 members
// (37%, ≥ the required 25%) depart mid-run. The run must still terminate
// and report exactly the correct, maximal significant patterns for the
// surviving crowd — which, because every member answers identically, is the
// wantMSPs ground truth.
func TestChaosQuarterOfCrowdDeparts(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	clock := chaos.NewVirtualClock()
	faults := make([]chaos.Faults, 8)
	for i := range faults {
		faults[i].LatencyMin = 30 * time.Second // think time, virtual
	}
	faults[1].DepartAfter = 1
	faults[4].DepartAfter = 2
	faults[6].DepartAfter = 3
	members := chaosCrowd(v, clock, faults)
	res := core.NewEngine(sp, members, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(5, 0.4),
		Seed:       1,
	}).Run()

	if res.Stats.Departures != 3 {
		t.Fatalf("Departures = %d, want 3", res.Stats.Departures)
	}
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		t.Fatalf("chaos run found %d MSPs, want %d:\n%s", len(res.MSPs), len(want), mspKeys(res))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("incorrect MSP %s", m.String(v, sp.Kinds()))
		}
	}
	// Soundness: the reported MSPs are an antichain and each one is
	// significant per the collected answers.
	assertSoundAntichain(t, sp, res, 0.4)
	if clock.Elapsed() == 0 {
		t.Fatal("virtual clock never advanced: latency faults not exercised")
	}
}

// TestChaosRunParallelDepartures runs the same departure scenario through
// the concurrent engine with adversarial schedules (go test -race makes
// this a race hunt as much as a correctness check).
func TestChaosRunParallelDepartures(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
		clock := chaos.NewVirtualClock()
		faults := make([]chaos.Faults, 8)
		faults[0].DepartAfter = 2
		faults[3].DepartAfter = 1
		faults[5].DepartAfter = 3
		members := chaosCrowd(v, clock, faults)
		res := core.NewEngine(sp, members, core.EngineConfig{
			Theta:      0.4,
			Aggregator: crowd.NewMeanAggregator(5, 0.4),
			Seed:       1,
		}).RunParallel(workers)
		if res.Stats.Departures != 3 {
			t.Fatalf("workers=%d: Departures = %d, want 3", workers, res.Stats.Departures)
		}
		want := wantMSPs(t, sp, v)
		if len(res.MSPs) != len(want) {
			t.Fatalf("workers=%d: %d MSPs, want %d", workers, len(res.MSPs), len(want))
		}
		for _, m := range res.MSPs {
			if !want[m.Key()] {
				t.Errorf("workers=%d: incorrect MSP %s", workers, m.String(v, sp.Kinds()))
			}
		}
	}
}

// TestChaosDeterministicReplay: a full chaos scenario (latency, departures,
// contradictions) on a virtual clock replays bit-identically from its seeds.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() (*core.Result, time.Duration) {
		sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
		clock := chaos.NewVirtualClock()
		faults := make([]chaos.Faults, 6)
		for i := range faults {
			faults[i].LatencyMin = 10 * time.Second
			faults[i].LatencyMax = 3 * time.Minute
			faults[i].HeavyTailAlpha = 1.2
		}
		faults[2].DepartProb = 0.1
		faults[4].ContradictProb = 0.25
		members := chaosCrowd(v, clock, faults)
		res := core.NewEngine(sp, members, core.EngineConfig{
			Theta:               0.4,
			Aggregator:          crowd.NewMeanAggregator(4, 0.4),
			SpecializationRatio: 0.12,
			Seed:                7,
		}).Run()
		return res, clock.Elapsed()
	}
	r1, e1 := run()
	r2, e2 := run()
	if e1 != e2 {
		t.Fatalf("virtual elapsed diverged: %v vs %v", e1, e2)
	}
	if r1.Stats.Questions != r2.Stats.Questions ||
		r1.Stats.Departures != r2.Stats.Departures ||
		r1.Stats.AutoAnswers != r2.Stats.AutoAnswers {
		t.Fatalf("counters diverged: %+v vs %+v", r1.Stats, r2.Stats)
	}
	if mspKeys(r1) != mspKeys(r2) {
		t.Fatalf("MSP sets diverged:\n%s\nvs\n%s", mspKeys(r1), mspKeys(r2))
	}
}

// TestChaosTimeoutThenReturn: a member that blows the answer deadline once
// and then recovers is retried, keeps contributing, and the run ends with
// the exact ground truth.
func TestChaosTimeoutThenReturn(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	clock := chaos.NewVirtualClock()
	faults := make([]chaos.Faults, 5)
	faults[2].TimeoutOnce = 10 * time.Minute // one answer past the deadline
	members := chaosCrowd(v, clock, faults)
	res := core.NewEngine(sp, members, core.EngineConfig{
		Theta:             0.4,
		Aggregator:        crowd.NewMeanAggregator(5, 0.4),
		Seed:              1,
		AnswerDeadline:    5 * time.Minute,
		MaxAnswerTimeouts: 3,
		Clock:             clock,
	}).Run()
	if res.Stats.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1", res.Stats.TimedOut)
	}
	if res.Stats.Departures != 0 {
		t.Fatalf("Departures = %d, want 0 (the member returned)", res.Stats.Departures)
	}
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		t.Fatalf("%d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("incorrect MSP %s", m.String(v, sp.Kinds()))
		}
	}
}

// TestChaosChronicallySlowMemberDropped: a member whose every answer
// overruns the deadline exhausts the consecutive-timeout budget and is
// treated as departed; the survivors still finish correctly.
func TestChaosChronicallySlowMemberDropped(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	clock := chaos.NewVirtualClock()
	faults := make([]chaos.Faults, 6)
	faults[3].LatencyMin = 20 * time.Minute // every answer past the deadline
	members := chaosCrowd(v, clock, faults)
	res := core.NewEngine(sp, members, core.EngineConfig{
		Theta:             0.4,
		Aggregator:        crowd.NewMeanAggregator(5, 0.4),
		Seed:              1,
		AnswerDeadline:    5 * time.Minute,
		MaxAnswerTimeouts: 3,
		Clock:             clock,
	}).Run()
	if res.Stats.TimedOut != 3 {
		t.Fatalf("TimedOut = %d, want 3 (the strike budget)", res.Stats.TimedOut)
	}
	if res.Stats.Departures != 1 {
		t.Fatalf("Departures = %d, want 1", res.Stats.Departures)
	}
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		t.Fatalf("%d MSPs, want %d", len(res.MSPs), len(want))
	}
	assertSoundAntichain(t, sp, res, 0.4)
}

// TestChaosEveryoneDeparts: the degenerate scenario must still terminate
// and report nothing confidently wrong (whatever was settled before the
// exodus remains sound).
func TestChaosEveryoneDeparts(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	clock := chaos.NewVirtualClock()
	faults := make([]chaos.Faults, 4)
	for i := range faults {
		faults[i].DepartAfter = i + 1 // m00 departs after one answer
	}
	members := chaosCrowd(v, clock, faults)
	res := core.NewEngine(sp, members, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(4, 0.4),
		Seed:       1,
	}).Run()
	if res.Stats.Departures != 4 {
		t.Fatalf("Departures = %d, want 4", res.Stats.Departures)
	}
	assertSoundAntichain(t, sp, res, 0.4)
}

// assertSoundAntichain checks the chaos soundness contract: reported MSPs
// are pairwise incomparable, and every reported MSP is significant per the
// aggregated answers actually collected (when any were).
func assertSoundAntichain(t *testing.T, sp *assign.Space, res *core.Result, theta float64) {
	t.Helper()
	for i, a := range res.MSPs {
		for j, b := range res.MSPs {
			if i != j && sp.Leq(a, b) {
				t.Fatalf("reported MSP %s is dominated by reported MSP %s", a.Key(), b.Key())
			}
		}
	}
	for _, a := range res.MSPs {
		if s, ok := res.SupportOf(a); ok && s < theta {
			t.Fatalf("reported MSP %s has aggregated support %.3f < θ=%.3f", a.Key(), s, theta)
		}
	}
}
