package core_test

import (
	"testing"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/paperdata"
	"oassis/internal/vocab"
)

func TestDiversifyPicksDistantAnswers(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	mk := func(x, y string) *assign.Assignment {
		return assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
			"x": {v.Element(x)}, "y": {v.Element(y)},
		}, nil)
	}
	msps := []*assign.Assignment{
		mk("Central Park", "Biking"),
		mk("Central Park", "Ball Game"),
		mk("Bronx Zoo", "Feed a monkey"),
	}
	picked := core.Diversify(sp, msps, 2)
	if len(picked) != 2 {
		t.Fatalf("picked %d", len(picked))
	}
	hasZoo := false
	for _, p := range picked {
		if p.Values("x")[0] == v.Element("Bronx Zoo") {
			hasZoo = true
		}
	}
	if !hasZoo {
		t.Error("diversify dropped the only Bronx Zoo answer")
	}
	// k ≥ n returns everything.
	if got := core.Diversify(sp, msps, 10); len(got) != 3 {
		t.Errorf("k>n returned %d", len(got))
	}
	// k ≤ 0 returns everything (no limit).
	if got := core.Diversify(sp, msps, 0); len(got) != 3 {
		t.Errorf("k=0 returned %d", len(got))
	}
	// Empty input.
	if got := core.Diversify(sp, nil, 2); len(got) != 0 {
		t.Errorf("empty input returned %d", len(got))
	}
}

func TestSingleUserTopK(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	var streamed int
	res := (&core.SingleUser{
		Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1,
		MaxMSPs: 1,
		OnMSP:   func(*assign.Assignment) { streamed++ },
	}).Run()
	if len(res.MSPs) != 1 {
		t.Fatalf("MaxMSPs=1 returned %d MSPs", len(res.MSPs))
	}
	if streamed != 1 {
		t.Fatalf("streamed %d MSPs", streamed)
	}
	full := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	if res.Stats.Questions >= full.Stats.Questions {
		t.Error("early stop saved no questions")
	}
	// The top-1 answer is one of the full run's MSPs.
	want := map[string]bool{}
	for _, m := range full.MSPs {
		want[m.Key()] = true
	}
	if !want[res.MSPs[0].Key()] {
		t.Error("top-1 MSP is not an MSP of the full run")
	}
}

func TestEngineTopKStreaming(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	var streamed []string
	eng := core.NewEngine(sp, []crowd.Member{m1, m2}, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(2, 0.4),
		MaxMSPs:    2,
		OnMSP:      func(a *assign.Assignment) { streamed = append(streamed, a.Key()) },
		Seed:       1,
	})
	res := eng.Run()
	if len(res.MSPs) != 2 {
		t.Fatalf("MaxMSPs=2 returned %d MSPs", len(res.MSPs))
	}
	if len(streamed) != 2 {
		t.Fatalf("streamed %d", len(streamed))
	}
}

func TestResultSupports(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	if len(res.Supports) == 0 {
		t.Fatal("no supports recorded")
	}
	// Every MSP was asked directly, so its support must be present and
	// at or above the threshold.
	for _, m := range res.MSPs {
		s, ok := res.SupportOf(m)
		if !ok {
			t.Fatalf("MSP %s has no recorded support", m.Key())
		}
		if s < 0.4 {
			t.Errorf("MSP support %v below threshold", s)
		}
	}
}

// TestEngineAllSpammers injects a crowd of only spammers: the run must
// terminate and the consistency filter should flag at least some of them.
func TestEngineAllSpammers(t *testing.T) {
	sp, _ := buildSpace(t, paperdata.SimpleQueryText, nil)
	members := []crowd.Member{
		crowd.NewSpammer("s1", 1),
		crowd.NewSpammer("s2", 2),
		crowd.NewSpammer("s3", 3),
	}
	eng := core.NewEngine(sp, members, core.EngineConfig{
		Theta:       0.4,
		Aggregator:  crowd.NewMeanAggregator(3, 0.4),
		Consistency: true,
		Seed:        1,
	})
	res := eng.Run()
	if res == nil {
		t.Fatal("nil result")
	}
	// Termination is the main property; MSP quality is undefined under
	// pure noise. The MSP set must still be an antichain.
	for i, a := range res.MSPs {
		for j, b := range res.MSPs {
			if i != j && sp.Leq(a, b) {
				t.Fatal("MSPs not an antichain under noise")
			}
		}
	}
}

// TestEngineMemberDropout caps sessions aggressively; the engine must still
// finish and produce a consistent (possibly partial) result.
func TestEngineMemberDropout(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	members := []crowd.Member{
		crowd.NewSimMember("u1", v, du1, 1),
		crowd.NewSimMember("u2", v, du2, 2),
	}
	for _, cap := range []int{1, 2, 3, 5, 8} {
		eng := core.NewEngine(sp, members, core.EngineConfig{
			Theta:                 0.4,
			Aggregator:            crowd.NewMeanAggregator(2, 0.4),
			MaxQuestionsPerMember: cap,
			Seed:                  1,
		})
		res := eng.Run()
		if res.Stats.Questions > 2*cap {
			t.Errorf("cap %d: asked %d questions", cap, res.Stats.Questions)
		}
	}
}

// TestHorizontalNaiveDeterminism pins the baselines' reproducibility.
func TestHorizontalNaiveDeterminism(t *testing.T) {
	for _, st := range []core.Strategy{core.Horizontal, core.Naive} {
		sp1, v1 := buildSpace(t, paperdata.SimpleQueryText, nil)
		r1 := (&core.SingleUser{Space: sp1, Member: newAvgMember(v1), Theta: 0.4, Strategy: st, Seed: 11}).Run()
		sp2, v2 := buildSpace(t, paperdata.SimpleQueryText, nil)
		r2 := (&core.SingleUser{Space: sp2, Member: newAvgMember(v2), Theta: 0.4, Strategy: st, Seed: 11}).Run()
		if r1.Stats.Questions != r2.Stats.Questions || len(r1.MSPs) != len(r2.MSPs) {
			t.Errorf("%v: nondeterministic run", st)
		}
	}
}

// TestStrategiesAgreeOnMSPs: vertical and horizontal fully classify the
// space and must produce identical MSP sets.
func TestStrategiesAgreeOnMSPs(t *testing.T) {
	spV, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	rv := (&core.SingleUser{Space: spV, Member: newAvgMember(v), Theta: 0.3, Seed: 5}).Run()
	spH, v2 := buildSpace(t, paperdata.SimpleQueryText, nil)
	rh := (&core.SingleUser{Space: spH, Member: newAvgMember(v2), Theta: 0.3, Strategy: core.Horizontal, Seed: 5}).Run()
	if len(rv.MSPs) != len(rh.MSPs) {
		t.Fatalf("vertical found %d MSPs, horizontal %d", len(rv.MSPs), len(rh.MSPs))
	}
	for i := range rv.MSPs {
		if rv.MSPs[i].Key() != rh.MSPs[i].Key() {
			t.Fatal("vertical and horizontal disagree on the MSP set")
		}
	}
}

func TestEngineExplain(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	eng := core.NewEngine(sp, []crowd.Member{m1, m2}, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(2, 0.4),
		Seed:       1,
	})
	res := eng.Run()
	if len(res.MSPs) == 0 {
		t.Fatal("no MSPs")
	}
	prov := eng.Explain(res.MSPs[0])
	if len(prov) != 2 {
		t.Fatalf("provenance entries = %d, want both members", len(prov))
	}
	if prov[0].MemberID != "u1" || prov[1].MemberID != "u2" {
		t.Fatalf("provenance order: %+v", prov)
	}
	// The aggregated support must equal the mean of the provenance.
	s, ok := res.SupportOf(res.MSPs[0])
	if !ok {
		t.Fatal("no aggregate support")
	}
	mean := (prov[0].Support + prov[1].Support) / 2
	if diff := s - mean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("aggregate %v != provenance mean %v", s, mean)
	}
}

// TestCalibrationBansSpammersBeforeMining: with a calibration phase, the
// probe chain flags random answerers before any mining question reaches
// them.
func TestCalibrationBansSpammersBeforeMining(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	honest1 := crowd.NewSimMember("u1", v, du1, 1)
	honest2 := crowd.NewSimMember("u2", v, du2, 2)
	spam := crowd.NewSpammer("spam", 3)
	agg := crowd.NewTrustWeightedAggregator(2, 0.4)
	eng := core.NewEngine(sp, []crowd.Member{honest1, honest2, spam}, core.EngineConfig{
		Theta:                0.4,
		Aggregator:           agg,
		Consistency:          true,
		CalibrationQuestions: 8,
		Seed:                 1,
	})
	res := eng.Run()
	if res.Stats.Questions == 0 {
		t.Fatal("no questions")
	}
	flagged := eng.FlaggedSpammers()
	for _, id := range flagged {
		if id != "spam" {
			t.Errorf("honest member %q flagged during calibration", id)
		}
	}
	if len(flagged) != 1 {
		t.Errorf("flagged = %v, want exactly the spammer", flagged)
	}
}
