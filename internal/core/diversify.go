package core

import (
	"sort"

	"oassis/internal/assign"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Diversify picks k assignments maximizing pairwise semantic distance — the
// "diversified answers" extension of the paper's future work (Section 8).
// The distance between two assignments is one minus the Jaccard similarity
// of their semantic term closures (every term of the instantiated fact-set
// plus all its generalizations), so answers that only differ in a sibling
// leaf count as close while answers about different regions of the ontology
// count as far. Selection is greedy max-min: start from the pair that is
// farthest apart, then repeatedly add the assignment whose minimum distance
// to the picked set is largest.
func Diversify(sp *assign.Space, msps []*assign.Assignment, k int) []*assign.Assignment {
	if k <= 0 || len(msps) <= k {
		out := append([]*assign.Assignment{}, msps...)
		return out
	}
	closures := make([]map[vocab.TermID]bool, len(msps))
	for i, a := range msps {
		closures[i] = termClosure(sp, a)
	}
	dist := func(i, j int) float64 {
		return 1 - jaccard(closures[i], closures[j])
	}
	// Seed with the farthest pair.
	bi, bj, best := 0, 0, -1.0
	for i := 0; i < len(msps); i++ {
		for j := i + 1; j < len(msps); j++ {
			if d := dist(i, j); d > best {
				bi, bj, best = i, j, d
			}
		}
	}
	picked := []int{bi}
	if k > 1 {
		picked = append(picked, bj)
	}
	inPicked := map[int]bool{bi: true, bj: true}
	for len(picked) < k {
		cand, candScore := -1, -1.0
		for i := range msps {
			if inPicked[i] {
				continue
			}
			minD := 2.0
			for _, p := range picked {
				if d := dist(i, p); d < minD {
					minD = d
				}
			}
			if minD > candScore {
				cand, candScore = i, minD
			}
		}
		if cand < 0 {
			break
		}
		picked = append(picked, cand)
		inPicked[cand] = true
	}
	sort.Ints(picked)
	out := make([]*assign.Assignment, 0, len(picked))
	for _, i := range picked {
		out = append(out, msps[i])
	}
	return out
}

// termClosure collects every element/relation of the assignment's fact-set
// together with all generalizations.
func termClosure(sp *assign.Space, a *assign.Assignment) map[vocab.TermID]bool {
	v := sp.Vocabulary()
	out := map[vocab.TermID]bool{}
	addE := func(e vocab.TermID) {
		if e == ontology.Any || out[e] {
			return
		}
		out[e] = true
		for _, anc := range v.ElementAncestors(e) {
			out[anc] = true
		}
	}
	for _, f := range sp.Instantiate(a) {
		addE(f.S)
		addE(f.O)
		// Relations share the TermID space numerically; offset them so
		// they never collide with elements in the closure set.
		if f.P != ontology.Any {
			out[f.P+vocab.TermID(1<<24)] = true
		}
	}
	return out
}

func jaccard(a, b map[vocab.TermID]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
