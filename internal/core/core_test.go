package core_test

import (
	"testing"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// buildSpace builds the assignment space of a query over the Figure 1
// ontology.
func buildSpace(t *testing.T, queryText string, morePool ontology.FactSet) (*assign.Space, *vocab.Vocabulary) {
	t.Helper()
	v, store := paperdata.Build()
	q, err := oassisql.Parse(queryText, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := assign.NewSpace(q, bindings, morePool)
	if err != nil {
		t.Fatal(err)
	}
	return sp, v
}

// avgMember answers with the exact average support of the Table 3 members
// u1 and u2 — the u_avg of Example 4.6.
type avgMember struct {
	v        *vocab.Vocabulary
	du1, du2 []ontology.FactSet
}

func newAvgMember(v *vocab.Vocabulary) *avgMember {
	du1, du2 := paperdata.Table3(v)
	return &avgMember{v: v, du1: du1, du2: du2}
}

func (m *avgMember) ID() string { return "u_avg" }

func (m *avgMember) support(fs ontology.FactSet) float64 {
	return (ontology.Support(m.v, m.du1, fs) + ontology.Support(m.v, m.du2, fs)) / 2
}

func (m *avgMember) AskConcrete(fs ontology.FactSet) crowd.Response {
	return crowd.Response{Support: m.support(fs)}
}

func (m *avgMember) AskSpecialize(_ ontology.FactSet, candidates []ontology.FactSet) (int, crowd.Response) {
	best, bestS := -1, 0.0
	for i, c := range candidates {
		if s := m.support(c); s > bestS {
			best, bestS = i, s
		}
	}
	if best < 0 {
		return -1, crowd.Response{}
	}
	return best, crowd.Response{Support: bestS}
}

// wantMSPs is the ground truth for the simple query at Θ=0.4 with u_avg,
// worked out from Table 3:
//
//	(Central Park, Biking)        avg(1/3, 1/2) = 5/12 ≥ 0.4, no children
//	(Central Park, Ball Game)     avg(1/3, 1/2) = 5/12; Basketball and
//	                              Baseball both fall below 0.4
//	(Bronx Zoo, Feed a monkey)    avg(1/2, 1/2) = 1/2
func wantMSPs(t *testing.T, sp *assign.Space, v *vocab.Vocabulary) map[string]bool {
	t.Helper()
	mk := func(x, y string) string {
		return assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
			"x": {v.Element(x)},
			"y": {v.Element(y)},
		}, nil).Key()
	}
	return map[string]bool{
		mk("Central Park", "Biking"):     true,
		mk("Central Park", "Ball Game"):  true,
		mk("Bronx Zoo", "Feed a monkey"): true,
	}
}

func TestVerticalFindsExactMSPs(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	run := &core.SingleUser{
		Space:  sp,
		Member: newAvgMember(v),
		Theta:  0.4,
		Seed:   1,
	}
	res := run.Run()
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		for _, m := range res.MSPs {
			t.Logf("got MSP: %s", m.String(v, sp.Kinds()))
		}
		t.Fatalf("found %d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP: %s", m.String(v, sp.Kinds()))
		}
	}
	// All three are valid here.
	if len(res.ValidMSPs) != 3 {
		t.Errorf("valid MSPs = %d, want 3", len(res.ValidMSPs))
	}
	if res.Stats.Questions == 0 {
		t.Error("no questions were asked")
	}
}

func TestVerticalAsksFewerThanValidCount(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	// The headline claim: far fewer questions than one per valid
	// assignment (the pruning effect of the traversal plus inference).
	if res.Stats.Questions >= len(sp.Valid()) {
		t.Errorf("vertical asked %d questions for %d valid assignments",
			res.Stats.Questions, len(sp.Valid()))
	}
}

func TestHorizontalFindsSameMSPs(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{
		Space: sp, Member: newAvgMember(v), Theta: 0.4,
		Strategy: core.Horizontal, Seed: 1,
	}).Run()
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		t.Fatalf("horizontal found %d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP: %s", m.String(v, sp.Kinds()))
		}
	}
}

func TestNaiveClassifiesValidAssignments(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{
		Space: sp, Member: newAvgMember(v), Theta: 0.4,
		Strategy: core.Naive, Seed: 3,
	}).Run()
	// Naive asks only valid assignments but must still classify them all.
	if res.Stats.Questions > len(sp.Valid()) {
		t.Errorf("naive asked %d questions for %d valid assignments",
			res.Stats.Questions, len(sp.Valid()))
	}
	// The three ground-truth MSPs must be among naive's significant set.
	want := wantMSPs(t, sp, v)
	got := map[string]bool{}
	for _, a := range res.Significant {
		got[a.Key()] = true
	}
	for k := range want {
		if !got[k] {
			t.Error("naive missed a significant valid assignment")
		}
	}
}

func TestVerticalDeterministic(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	r1 := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 7}).Run()
	sp2, v2 := buildSpace(t, paperdata.SimpleQueryText, nil)
	r2 := (&core.SingleUser{Space: sp2, Member: newAvgMember(v2), Theta: 0.4, Seed: 7}).Run()
	if r1.Stats.Questions != r2.Stats.Questions {
		t.Errorf("nondeterministic question counts: %d vs %d",
			r1.Stats.Questions, r2.Stats.Questions)
	}
	if len(r1.MSPs) != len(r2.MSPs) {
		t.Fatal("nondeterministic MSP count")
	}
	for i := range r1.MSPs {
		if r1.MSPs[i].Key() != r2.MSPs[i].Key() {
			t.Fatal("nondeterministic MSP set")
		}
	}
}

func TestVerticalWithSpecializationQuestions(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{
		Space: sp, Member: newAvgMember(v), Theta: 0.4,
		SpecializationRatio: 1.0, Seed: 5,
	}).Run()
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		t.Fatalf("with specialization: %d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP: %s", m.String(v, sp.Kinds()))
		}
	}
	if res.Stats.SpecialQ == 0 {
		t.Error("ratio 1.0 never asked a specialization question")
	}
}

func TestVerticalThresholdSweepMonotone(t *testing.T) {
	// Higher thresholds must never increase the significant set; the
	// MSP count may move either way (footnote 8 of the paper).
	var prevSig int
	first := true
	for _, theta := range []float64{0.2, 0.3, 0.4, 0.5} {
		sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
		res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: theta, Seed: 1}).Run()
		if !first && len(res.Significant) > prevSig {
			t.Errorf("Θ=%v: significant set grew from %d to %d",
				theta, prevSig, len(res.Significant))
		}
		prevSig = len(res.Significant)
		first = false
	}
}

func TestProgressMonotone(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	if len(res.Stats.Progress) == 0 {
		t.Fatal("no progress samples")
	}
	var prev core.ProgressPoint
	for i, p := range res.Stats.Progress {
		if i > 0 {
			if p.Questions < prev.Questions || p.ClassifiedValid < prev.ClassifiedValid ||
				p.MSPs < prev.MSPs || p.ValidMSPs < prev.ValidMSPs {
				t.Fatalf("progress not monotone at %d: %+v then %+v", i, prev, p)
			}
		}
		prev = p
	}
	last := res.Stats.Progress[len(res.Stats.Progress)-1]
	if last.ClassifiedValid != len(sp.Valid()) {
		t.Errorf("final classified valid = %d, want all %d",
			last.ClassifiedValid, len(sp.Valid()))
	}
	if last.MSPs != len(res.MSPs) {
		t.Errorf("final MSP progress %d != result %d", last.MSPs, len(res.MSPs))
	}
}

func TestWatchDiscovery(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	watch := []*assign.Assignment{
		assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
			"x": {v.Element("Central Park")}, "y": {v.Element("Biking")},
		}, nil),
		assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
			"x": {v.Element("Madison Square")}, "y": {v.Element("Swimming")},
		}, nil),
	}
	res := (&core.SingleUser{
		Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1, Watch: watch,
	}).Run()
	if got := res.Stats.WatchDiscoveredAt[0]; got <= 0 {
		t.Errorf("significant watch target discovered at %d, want > 0", got)
	}
	if got := res.Stats.WatchDiscoveredAt[1]; got != -1 {
		t.Errorf("insignificant watch target reported discovered at %d", got)
	}
}

func TestMultiUserEngineMatchesSingle(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	eng := core.NewEngine(sp, []crowd.Member{m1, m2}, core.EngineConfig{
		Theta:      0.4,
		Aggregator: crowd.NewMeanAggregator(2, 0.4),
		Seed:       1,
	})
	res := eng.Run()
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		for _, m := range res.MSPs {
			t.Logf("got MSP: %s", m.String(v, sp.Kinds()))
		}
		t.Fatalf("multi-user found %d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP: %s", m.String(v, sp.Kinds()))
		}
	}
}

func TestMultiUserSessionCap(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	eng := core.NewEngine(sp, []crowd.Member{m1, m2}, core.EngineConfig{
		Theta:                 0.4,
		Aggregator:            crowd.NewMeanAggregator(2, 0.4),
		MaxQuestionsPerMember: 5,
		Seed:                  1,
	})
	res := eng.Run()
	if res.Stats.Questions > 10 {
		t.Errorf("asked %d questions despite a 5-per-member cap", res.Stats.Questions)
	}
}

func TestMultiUserWithSpammerFilter(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	sp3 := crowd.NewSpammer("spam", 99)
	agg := crowd.NewTrustWeightedAggregator(2, 0.4)
	eng := core.NewEngine(sp, []crowd.Member{m1, m2, sp3}, core.EngineConfig{
		Theta:       0.4,
		Aggregator:  agg,
		Consistency: true,
		Seed:        1,
	})
	res := eng.Run()
	if res == nil {
		t.Fatal("nil result")
	}
	// The spammer should eventually be flagged; honest members not.
	for _, id := range eng.FlaggedSpammers() {
		if id != "spam" {
			t.Errorf("honest member %q flagged", id)
		}
	}
}

func TestCrowdCacheReplay(t *testing.T) {
	cache := core.NewCrowdCache()
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	base := newAvgMember(v)
	member := cache.Wrap(base)

	// First run at Θ=0.2 populates the cache.
	res1 := (&core.SingleUser{Space: sp, Member: member, Theta: 0.2, Seed: 1}).Run()
	missesAfterFirst := cache.Misses
	if missesAfterFirst == 0 {
		t.Fatal("first run hit an empty cache")
	}

	// Re-run at Θ=0.4: crowd answers are independent of the threshold
	// (Section 6.3), so almost everything replays from the cache. A few
	// live questions are legitimate: an assignment classified purely by
	// inference at Θ=0.2 can require a direct answer at Θ=0.4.
	sp2, _ := buildSpace(t, paperdata.SimpleQueryText, nil)
	res2 := (&core.SingleUser{Space: sp2, Member: member, Theta: 0.4, Seed: 1}).Run()
	newMisses := cache.Misses - missesAfterFirst
	if newMisses*5 > missesAfterFirst {
		t.Errorf("threshold re-run asked %d live questions (first run: %d), want mostly cached",
			newMisses, missesAfterFirst)
	}
	if cache.Hits == 0 {
		t.Error("no cache hits on replay")
	}
	// The higher threshold needs at most as many answers.
	if res2.Stats.Questions > res1.Stats.Questions {
		t.Errorf("Θ=0.4 used %d answers, more than Θ=0.2's %d",
			res2.Stats.Questions, res1.Stats.Questions)
	}
}

// TestVerticalWithMultiplicitiesAndMore runs the full Figure 2 query with a
// MORE pool, checking that the engine discovers the paper's flagship answer:
// biking in Central Park, eating at Maoz Veg., with the rent-bikes tip.
func TestVerticalWithMultiplicitiesAndMore(t *testing.T) {
	v, _ := paperdata.Build()
	pool := ontology.NewFactSet(paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse"))
	sp, v := buildSpace(t, paperdata.QueryText, pool)
	res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	if len(res.MSPs) == 0 {
		t.Fatal("no MSPs found")
	}
	foundTip := false
	for _, m := range res.MSPs {
		fs := sp.Instantiate(m)
		if fs.Contains(paperdata.Fact(v, "Biking", "doAt", "Central Park")) &&
			fs.Contains(paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse")) {
			foundTip = true
		}
	}
	if !foundTip {
		for _, m := range res.MSPs {
			t.Logf("MSP: %s", sp.Instantiate(m).String(v))
		}
		t.Error("the biking+rent-bikes MSP of the Introduction was not found")
	}
}

func TestStatsLaziness(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	res := (&core.SingleUser{Space: sp, Member: newAvgMember(v), Theta: 0.4, Seed: 1}).Run()
	if res.Stats.Generated == 0 {
		t.Fatal("laziness counter never incremented")
	}
}
