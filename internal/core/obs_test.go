package core_test

import (
	"strings"
	"testing"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/paperdata"
)

// TestObservedChaosCountersMatchStats reruns the chronically-slow-member
// chaos scenario with an Observer attached and checks that every metric the
// kernel exports agrees exactly with the Stats the run returns: the metrics
// are a live view of the same events, not a parallel bookkeeping that can
// drift.
func TestObservedChaosCountersMatchStats(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	clock := chaos.NewVirtualClock()
	faults := make([]chaos.Faults, 6)
	for i := range faults {
		faults[i].LatencyMin = time.Second // every round takes virtual time
	}
	faults[3].LatencyMin = 20 * time.Minute // every answer past the deadline
	members := chaosCrowd(v, clock, faults)
	o := obs.New()
	res := core.NewEngine(sp, members, core.EngineConfig{
		Theta:             0.4,
		Aggregator:        crowd.NewMeanAggregator(5, 0.4),
		Seed:              1,
		AnswerDeadline:    5 * time.Minute,
		MaxAnswerTimeouts: 3,
		Clock:             clock,
		Obs:               o,
	}).Run()

	k := o.Kernel
	pairs := []struct {
		name string
		got  int64
		want int
	}{
		{"rounds", k.Rounds.Value(), res.Stats.Rounds},
		{"asks", k.Asks.Value(), res.Stats.Asked},
		{"questions", k.Questions.Value(), res.Stats.Questions},
		{"timeouts", k.Timeouts.Value(), res.Stats.TimedOut},
		{"discarded", k.Discarded.Value(), res.Stats.Discarded},
		{"departures", k.Departures.Value(), res.Stats.Departures},
		{"inferred", k.Inferred.Value(), res.Stats.AutoAnswers},
	}
	for _, p := range pairs {
		if p.got != int64(p.want) {
			t.Errorf("kernel %s counter = %d, Stats say %d", p.name, p.got, p.want)
		}
	}
	if res.Stats.TimedOut != 3 || res.Stats.Departures != 1 {
		t.Fatalf("scenario drifted: TimedOut=%d Departures=%d",
			res.Stats.TimedOut, res.Stats.Departures)
	}

	// The broker saw every emitted ask; replies it delivered partition into
	// its three outcomes. (The slow member's answers are Answered at the
	// broker — lateness is the kernel's judgment, not the broker's.)
	b := o.Broker
	if b.Posted.Value() != int64(res.Stats.Asked) {
		t.Errorf("broker posted %d, kernel asked %d", b.Posted.Value(), res.Stats.Asked)
	}
	if got := b.Answered.Value() + b.TimedOut.Value() + b.Departed.Value(); got != b.Posted.Value() {
		t.Errorf("broker outcomes %d do not partition posts %d", got, b.Posted.Value())
	}
	if b.RoundTrip.Count() != b.Posted.Value() {
		t.Errorf("round-trip samples %d != posts %d", b.RoundTrip.Count(), b.Posted.Value())
	}

	// Round spans are timed on the engine clock — the virtual one here, so
	// injected latency shows up as virtual duration.
	if res.Trace == nil {
		t.Fatal("observed run returned no trace summary")
	}
	var round *obs.TraceEntry
	for i := range res.Trace.Entries {
		if res.Trace.Entries[i].Name == "round" {
			round = &res.Trace.Entries[i]
		}
	}
	if round == nil {
		t.Fatalf("no round spans in trace:\n%s", res.Trace)
	}
	if round.Count != int64(res.Stats.Rounds) {
		t.Errorf("round spans = %d, rounds = %d", round.Count, res.Stats.Rounds)
	}
	if round.Total <= 0 {
		t.Error("round spans carry no virtual duration")
	}
	if k.RoundDur.Count() != int64(res.Stats.Rounds) {
		t.Errorf("round duration samples = %d, rounds = %d", k.RoundDur.Count(), res.Stats.Rounds)
	}

	// And the whole state is scrapeable as Prometheus text.
	var sb strings.Builder
	o.Registry.WritePrometheus(&sb)
	for _, want := range []string{
		"oassis_kernel_rounds_total", "oassis_kernel_timeouts_total",
		"oassis_broker_round_trip_seconds_bucket",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

// TestObservationDoesNotPerturb: the same crowd driven with and without an
// Observer must produce identical transcripts — instrumentation reads the
// run, it never steers it.
func TestObservationDoesNotPerturb(t *testing.T) {
	run := func(o *obs.Observer) *core.Result {
		sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
		clock := chaos.NewVirtualClock()
		faults := make([]chaos.Faults, 6)
		faults[1].DepartAfter = 2
		faults[4].LatencyMin = 20 * time.Minute
		members := chaosCrowd(v, clock, faults)
		return core.NewEngine(sp, members, core.EngineConfig{
			Theta:             0.4,
			Aggregator:        crowd.NewMeanAggregator(5, 0.4),
			Seed:              7,
			AnswerDeadline:    5 * time.Minute,
			MaxAnswerTimeouts: 3,
			Clock:             clock,
			RecordTranscript:  true,
			Obs:               o,
		}).Run()
	}
	plain := run(nil)
	observed := run(obs.New())
	if plain.Trace != nil {
		t.Error("unobserved run grew a trace")
	}
	if observed.Trace == nil {
		t.Error("observed run lost its trace")
	}
	if len(plain.Transcripts) != len(observed.Transcripts) {
		t.Fatalf("member count diverged: %d vs %d", len(plain.Transcripts), len(observed.Transcripts))
	}
	for id, lines := range plain.Transcripts {
		got := observed.Transcripts[id]
		if strings.Join(lines, "\n") != strings.Join(got, "\n") {
			t.Fatalf("transcript for %s diverged:\n%s\nvs\n%s",
				id, strings.Join(lines, "\n"), strings.Join(got, "\n"))
		}
	}
	if mspKeys(plain) != mspKeys(observed) {
		t.Fatalf("MSP set diverged:\n%s\nvs\n%s", mspKeys(plain), mspKeys(observed))
	}
}

// TestSingleUserObserved: the single-user runners feed the same kernel
// metric family.
func TestSingleUserObserved(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	o := obs.New()
	res := (&core.SingleUser{
		Space:  sp,
		Member: newAvgMember(v),
		Theta:  0.4,
		Obs:    o,
	}).Run()
	if got := o.Kernel.Questions.Value(); got != int64(res.Stats.Questions) {
		t.Errorf("questions counter = %d, Stats say %d", got, res.Stats.Questions)
	}
	if got := o.Kernel.Inferred.Value(); got != int64(res.Stats.AutoAnswers) {
		t.Errorf("inferred counter = %d, Stats say %d", got, res.Stats.AutoAnswers)
	}
	if got := o.Kernel.MSPs.Value(); got != int64(len(res.MSPs)) {
		t.Errorf("MSP counter = %d, result has %d", got, len(res.MSPs))
	}
	if res.Trace == nil {
		t.Error("observed single-user run has no trace summary")
	}
}
