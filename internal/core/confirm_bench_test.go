package core_test

import (
	"fmt"
	"testing"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// BenchmarkWideBorderConfirmations regression-guards the witness-based
// MSP-confirmation tracking. The old settle path rescanned the entire
// significant border after every insignificant mark — O(border ×
// successors) per settle, quadratic over a run on a DAG whose border grows
// wide. The witness scheme advances a per-node cursor instead, so each
// (border node, successor) pair is inspected O(1) times across the whole
// run. This workload plants a dense MSP layer in a wide shallow DAG —
// the border holds hundreds of significant nodes while their children
// settle insignificant one by one — which is exactly the old wall.
func BenchmarkWideBorderConfirmations(b *testing.B) {
	d, err := synth.NewDAG(synth.DAGConfig{
		Width: 160, Depth: 3, MSPPercent: 0.35, Places: 2, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	theta := d.Query.Satisfying.Support
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := make([]crowd.Member, 3)
		for j := range pool {
			pool[j] = selOracle{Member: d.Oracle(0, int64(j+1)), id: fmt.Sprintf("m%d", j)}
		}
		res := core.NewEngine(d.Space, pool, core.EngineConfig{
			Theta:      theta,
			Aggregator: crowd.NewMeanAggregator(2, theta),
			Seed:       5,
		}).Run()
		if len(res.MSPs) == 0 {
			b.Fatal("wide-border run confirmed no MSPs")
		}
		questions += res.Stats.Questions
	}
	b.ReportMetric(float64(questions)/b.Elapsed().Seconds(), "questions/s")
}
