package core

import (
	"sync"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
)

// Parallel round selection: speculate per member, commit serially.
//
// The serial kernel selects one question per member with a BFS over the
// assignment DAG, folding side effects (auto-answers, node tracking, rng
// draws) in as it goes. Members are almost always independent within one
// round — they traverse the same frozen classifier and only rarely touch
// each other through aggregator quotas — so selection is sharded the same
// way PR 8 sharded ingestion: a parallel speculation phase that touches no
// shared state, then a deterministic serial commit that replays the
// speculation's effects in member order and falls back to plain serial
// selection for any member whose speculation no longer matches reality.
//
// Speculation phase. Each worker runs a read-only twin of selectAsk for
// its members against round-start state:
//
//   - classifier statuses via assign.(*Classifier).StatusRO (never
//     mutates; per-worker Leq scratch memo), every read recorded with its
//     observed value;
//   - the member's own answer/prune logs (only the apply barrier mutates
//     them, so they are frozen all selection long);
//   - an overlay of the member's own not-yet-committed auto-answers
//     (serial selection records them mid-traversal; the twin must see its
//     own earlier inferences the same way);
//   - every maybeSpecialize rng draw is assumed to FAIL for the twin's
//     own continuation. The serial draw short-circuits before doing
//     anything else, so a failed draw has no effect beyond consuming one
//     rng value — the twin counts draw points and consumes nothing. But
//     a draw CAN succeed at commit, so the twin also captures, per draw
//     point, the branch a success would take: the open successors
//     maybeSpecialize would offer and the prune auto-answers it would
//     record collecting them. The commit can then pose the
//     specialization directly instead of re-running the member;
//   - coveredInFlight is identically false at round start (the in-flight
//     table is cleared before selection), but it fills as earlier members
//     commit — and serial selection spreads members across the frontier
//     with it, quota at a time. A twin that ignores this proposes the same
//     first open node as every other twin, and all but the first quota
//     proposals die at commit. So the twin PREDICTS the spread: member m
//     is handed the count of mining-eligible members before them, and the
//     traversal skips emit candidates while that budget covers their
//     remaining quota (need), exactly as serial coveredInFlight would skip
//     them once those members' asks are in flight. Every predicted skip is
//     recorded and re-checked at commit: each skipped node must then be
//     truly covered, and the emitted node truly not. The prediction is a
//     heuristic (earlier members may idle, probe or specialize instead of
//     consuming their slot); the validation is what carries correctness.
//     Auto-answers are the other place the twin reads aggregator state:
//     crowd.ReadSnapshotter's count decides whether the eventual Add
//     could possibly reach the quota.
//
// The result is a proposal: the emitted question (if any), the ordered
// effect log (root/successor tracking, auto-answers), the ordered status
// read-set, the number of rng draw points, and a pre-instantiated
// fact-set for the emitted node.
//
// Commit phase, strictly in member order, re-validates each proposal
// against the live kernel:
//
//  (a) if any classifier mark landed since round start (MarkCounts
//      changed), every recorded status read is re-checked live;
//  (b) auto-answers must still be safe: the node untouched by any
//      aggregator Add this commit (commitTouched) and its snapshot count
//      at most quota-2, so one more answer cannot settle it (the
//      ReadSnapshotter contract);
//  (c) the predicted-covered skips are scanned in traversal order. Each
//      one covered live confirms the prediction. The FIRST one that is
//      not covered is where serial selection would have stopped and
//      emitted — so the commit does exactly that: it resolves the draws
//      the traversal had consumed up to that point, replays the effect
//      prefix, emits that node and discards the speculated continuation.
//      A misprediction is not a failure, just an earlier stop. If all
//      skips hold, the emitted node itself must still not be covered;
//  (d) the draw points up to the commit's stopping point are resolved
//      against the live rng. A failure confirms the speculation. A
//      success takes the captured branch: when it poses a specialization
//      (≥2 open) and its prune autos are commit-safe, the branch commits
//      directly — prefix effects, branch autos, SpecializeAsk — and when
//      it would be a no-op (fewer than 2 open, nothing pruned) it is
//      indistinguishable from a failed draw and resolution continues.
//      Either way the stream is left exactly where serial selection
//      would have left it.
//
// Any remaining validation failure re-runs plain selectAsk for that
// member, which consumes rng and produces effects exactly as the fully
// serial kernel would have — nothing was applied speculatively, so the
// re-run starts from the same state serial selection would see. The one
// subtle case is a draw succeeding whose branch cannot commit (it would
// record prune autos but not emit, or an auto might settle): the
// already-consumed values are queued on k.rngReplay so the re-run, which
// provably walks the identical path to that draw point, sees them again
// byte-for-byte.
//
// The apply barrier is sharded the same way (applyParallel): phase A
// folds each member's replies into that member's own state concurrently
// (answer logs, prune sets, transcripts, per-member consistency records),
// phase B replays stats, aggregator adds, settles and ban reviews
// serially in ask order. Gated off for top-k runs: MaxMSPs can flip
// k.stopped mid-barrier, which makes later replies' outcomes depend on
// earlier ones.

// selector owns the worker pool and per-round scratch for parallel
// selection; kernel.sel is nil when the kernel runs serially.
type selector struct {
	workers []*specWorker
	// answers is the aggregator's concurrent-read answer counter
	// (crowd.ReadSnapshotter), valid whenever no Add is executing.
	answers func(assign.NodeID) int
	// miningSlots[i] is member i's quota-spreading budget for this round:
	// how many earlier members are predicted to emit mining asks. Computed
	// serially before the workers start, read-only while they run.
	miningSlots []int
	// props/touched are reused round to round.
	props   []*proposal
	touched map[assign.NodeID]bool
}

// specEffect is one replayable side effect of a speculative traversal.
type specEffect struct {
	op   uint8
	node *assign.Assignment
}

const (
	effRoots uint8 = iota // k.roots() tracking at traversal start
	effSuccs              // k.successors(node) tracking
	effAuto               // recordAnswer(u, node, 0, true)
)

// statusRead is one classifier read with its observed value.
type statusRead struct {
	node *assign.Assignment
	st   assign.Status
}

// skipRec is one predicted-covered emit candidate, with how far into the
// proposal's draw and effect logs the traversal was when it was skipped.
// If the prediction fails at commit, serial selection would have emitted
// exactly here — and the two cursors let the commit do just that, no
// serial re-run needed.
type skipRec struct {
	node  *assign.Assignment
	draws int
	eff   int
}

// specBranch captures what a successful specialization draw at one draw
// point would do, so the commit can take the branch without a serial
// re-run. Fields mirror maybeSpecialize: the personally-significant base,
// the open successors it would offer (a specialization is posed iff there
// are at least two), and the successors it would auto-answer from earlier
// pruning clicks while collecting them.
type specBranch struct {
	eff    int // effects recorded before this draw point
	base   *assign.Assignment
	open   []*assign.Assignment
	prunes []*assign.Assignment
	// unsafe marks a prune auto whose replayed Add could reach the
	// aggregator quota and settle; the branch then needs a serial re-run.
	unsafe bool
}

// proposal is the outcome of one member's speculative selection.
type proposal struct {
	// emit says the member poses a concrete question (mining or probe);
	// !emit is an idle round for them. Idle proposals still carry reads,
	// effects and draws: "nothing to ask" is as state-dependent a
	// conclusion as any emission.
	emit   bool
	probe  bool
	target *assign.Assignment
	inst   ontology.FactSet
	// probeAdvance is how far the calibration cursor moved over
	// answered/pruned probes before the emission (or exhaustion).
	probeAdvance int
	// draws counts maybeSpecialize decision points, all assumed failed
	// for the twin's own continuation; branches[d] is what a success at
	// draw point d would do instead.
	draws    int
	branches []specBranch
	effects  []specEffect
	reads    []statusRead
	autos    []*assign.Assignment
	// skips are the emit candidates predicted covered by earlier members'
	// asks, in traversal order; the commit verifies each really is, and
	// commits the first miss as "emit here".
	skips []skipRec
	// unsafeAutos marks a proposal whose auto-answer could reach the
	// aggregator quota and settle (snapshot count ≥ quota-1); it must
	// re-run serially.
	unsafeAutos bool
}

// specWorker is one selection worker's private scratch.
type specWorker struct {
	k       *kernel
	visited []uint32
	epoch   uint32
	queue   []*assign.Assignment
	leqMemo map[uint64]bool
	// ovVal/ovEp overlay the current member's own speculative auto-answers
	// (see answered); epoch-stamped per member, so "clearing" the overlay
	// between members is one counter bump.
	ovVal    []float64
	ovEp     []uint32
	memberEp uint32
	// stVal/stEp cache node statuses for one speculation wave (no marks
	// can land while workers run, so a status computed for one member
	// holds for every member the worker handles that wave). The wave
	// counter invalidates the cache wholesale between waves.
	stVal []assign.Status
	stEp  []uint32
	wave  uint32
	// succs caches the space's memoized successor lists per node. The
	// lists are immutable once computed, so the cache never invalidates;
	// it exists to skip the space's read lock and hit counter on a path
	// the twins hammer.
	succs  [][]*assign.Assignment
	succOk []bool
}

// successors is the worker's lock-free view of Space.Successors.
func (w *specWorker) successors(a *assign.Assignment) []*assign.Assignment {
	id := a.ID()
	if int(id) >= len(w.succOk) {
		w.succs = append(w.succs, make([][]*assign.Assignment, int(id)+1-len(w.succs))...)
		w.succOk = append(w.succOk, make([]bool, int(id)+1-len(w.succOk))...)
	}
	if w.succOk[id] {
		return w.succs[id]
	}
	out := w.k.space.Successors(a)
	w.succs[id], w.succOk[id] = out, true
	return out
}

// status is StatusRO behind the wave-scoped cache: each node's status is
// derived once per wave per worker instead of once per member.
func (w *specWorker) status(a *assign.Assignment) assign.Status {
	id := a.ID()
	if int(id) >= len(w.stVal) {
		w.stVal = append(w.stVal, make([]assign.Status, int(id)+1-len(w.stVal))...)
		w.stEp = append(w.stEp, make([]uint32, int(id)+1-len(w.stEp))...)
	}
	if w.stEp[id] == w.wave {
		return w.stVal[id]
	}
	st := w.k.global.StatusRO(a, w.leqMemo)
	w.stEp[id], w.stVal[id] = w.wave, st
	return st
}

// initSelector enables parallel selection when configured and safe: the
// aggregator must carry a fixed quota and a concurrent answer reader —
// the two halves of the speculation safety contract. Anything else falls
// back to the serial kernel silently (behavior is identical either way).
func (k *kernel) initSelector() {
	n := k.cfg.SelectionWorkers
	if n <= 1 || len(k.users) < 2 || k.quota <= 0 {
		return
	}
	rs, ok := k.agg.(crowd.ReadSnapshotter)
	if !ok {
		return
	}
	if n > len(k.users) {
		n = len(k.users)
	}
	sel := &selector{answers: rs.AnswersReader()}
	for i := 0; i < n; i++ {
		sel.workers = append(sel.workers, &specWorker{
			k:       k,
			visited: make([]uint32, k.space.NumNodes()),
			leqMemo: make(map[uint64]bool),
			ovVal:   make([]float64, k.space.NumNodes()),
			ovEp:    make([]uint32, k.space.NumNodes()),
			stVal:   make([]assign.Status, k.space.NumNodes()),
			stEp:    make([]uint32, k.space.NumNodes()),
			succs:   make([][]*assign.Assignment, k.space.NumNodes()),
			succOk:  make([]bool, k.space.NumNodes()),
		})
	}
	k.sel = sel
}

// beginRoundParallel is beginRound's selection loop, sharded. Called with
// the in-flight table already cleared and k.stopped false.
func (k *kernel) beginRoundParallel() []*crowd.Ask {
	// The calibration chain must exist before the workers start (they
	// read it concurrently). Serial selection builds it lazily when the
	// first live member reaches selectProbe; "some member passes the
	// session gates" is exactly that condition, and the gates are stable
	// during selection, so building it here tracks the same nodes at the
	// same point in the effect order.
	if k.checker != nil && k.cfg.CalibrationQuestions > 0 && !k.probesBuilt {
		for _, u := range k.users {
			if k.eligible(u) {
				k.probes = k.probeChain(k.cfg.CalibrationQuestions)
				k.probesBuilt = true
				break
			}
		}
	}

	users := k.users
	props := k.sel.props
	if cap(props) < len(users) {
		props = make([]*proposal, len(users))
	} else {
		props = props[:len(users)]
	}
	k.sel.props = props

	slots := k.sel.miningSlots
	if cap(slots) < len(users) {
		slots = make([]int, len(users))
	} else {
		slots = slots[:len(users)]
	}
	k.sel.miningSlots = slots
	probing := k.checker != nil && k.cfg.CalibrationQuestions > 0

	// speculate runs the twins for users[start:] against the live kernel.
	// Wave 1 covers everyone; later waves re-speculate the tail after a
	// commit-phase divergence, so the twins see every earlier commit
	// (answers and in-flight counts are monotone within a round) and only
	// the wave's own quota spreading stays predictive: member i's budget
	// is the number of wave members before them expected to emit a mining
	// ask. Members still on their calibration chain probe instead (probes
	// bypass coverage), so they don't consume a slot. The budget is a
	// heuristic — a member may turn out to idle or pose a specialization —
	// and every use of it is re-validated at commit.
	nw := len(k.sel.workers)
	speculate := func(start int) {
		mining := 0
		for i := start; i < len(users); i++ {
			slots[i] = mining
			if k.eligible(users[i]) && !(probing && users[i].probeIdx < len(k.probes)) {
				mining++
			}
		}
		g := nw
		if rest := len(users) - start; rest < g {
			g = rest
		}
		var wg sync.WaitGroup
		wg.Add(g)
		for wi := 0; wi < g; wi++ {
			go func(wi int) {
				defer wg.Done()
				w := k.sel.workers[wi]
				w.wave++
				if start == 0 {
					// The post-commit memo warming moves everything a
					// round derives into the classifier's shared memo;
					// the scratch only ever holds this round's novelty.
					// Dropping it each round keeps it small instead of
					// rehash-growing forever.
					clear(w.leqMemo)
				}
				for i := start + wi; i < len(users); i += g {
					props[i] = w.selectFor(users[i], slots[i])
				}
			}(wi)
		}
		wg.Wait()
	}

	// Serial commit, member order — the only phase that mutates shared
	// state, so its fold order is the serial kernel's fold order. A failed
	// validation re-selects that one member serially and then re-speculates
	// the tail: one member's divergence (a successful specialization draw,
	// an idle turn) shifts the quota-spreading chain for everyone after
	// them, so their stale proposals would mostly fail anyway — a fresh
	// parallel wave against the post-divergence state is cheaper than a
	// serial cascade.
	touched := k.sel.touched
	if touched == nil {
		touched = make(map[assign.NodeID]bool)
		k.sel.touched = touched
	} else {
		clear(touched)
	}
	k.commitTouched = touched
	var asks []*crowd.Ask
	for start := 0; start < len(users) && !k.stopped; {
		speculate(start)
		sig0, insig0 := k.global.MarkCounts()
		marksClean := true
		clear(touched)
		next := len(users)
		for i := start; i < len(users) && !k.stopped; i++ {
			u := users[i]
			p := props[i]
			props[i] = nil
			if p == nil {
				continue // ineligible: serial selection is a gate check, nothing more
			}
			if marksClean {
				s1, i1 := k.global.MarkCounts()
				marksClean = s1 == sig0 && i1 == insig0
			}
			ask, ok := k.commitProposal(u, p, marksClean)
			if !ok {
				k.km.SpecRetries.Inc()
				ask = k.selectAsk(u)
				if len(k.rngReplay) != 0 {
					panic("core: serial re-selection left draw replay unconsumed")
				}
				if ask != nil {
					asks = append(asks, ask)
				}
				next = i + 1
				break
			}
			k.km.SpecHits.Inc()
			if ask != nil {
				asks = append(asks, ask)
			}
			// Warm the classifier's mutable memo over everything the
			// twin read: Status advances the node's dense entry and log
			// cursors exactly as serial traversal would, so later waves'
			// StatusRO calls resume from current cursors instead of
			// re-scanning the mark-log tail. Pure memoization — the
			// results are identical, only who pays for them changes.
			for _, r := range p.reads {
				k.global.Status(r.node)
			}
		}
		start = next
	}
	clear(props)
	k.commitTouched = nil
	return asks
}

// commitProposal validates one speculative proposal against the live
// kernel and, when it holds, replays its effects and emits its question.
// ok=false means the caller must re-select serially; in that case NOTHING
// was applied and — except after a successful draw, which queues its
// replay prefix — no rng value was consumed.
func (k *kernel) commitProposal(u *userState, p *proposal, marksClean bool) (*crowd.Ask, bool) {
	// (a) Classifier reads. Marks are the only source of status changes,
	// so an unchanged mark count validates every read at zero cost.
	if !marksClean {
		for _, r := range p.reads {
			if k.global.Status(r.node) != r.st {
				return nil, false
			}
		}
	}
	// (b) Auto-answers must not be able to settle when replayed.
	if p.unsafeAutos {
		return nil, false
	}
	for _, a := range p.autos {
		if k.commitTouched[a.ID()] {
			return nil, false
		}
	}
	// (c) Quota spreading, in traversal order. Every skip covered live
	// confirms the prediction; the first one that is not is where serial
	// selection would have stopped and emitted, so commit exactly that —
	// draws and effects up to the skip's cursors, then the node itself —
	// and discard the speculated continuation.
	for i := range p.skips {
		s := &p.skips[i]
		if k.coveredInFlight(s.node) {
			continue
		}
		ask, done, retry := k.resolveDraws(u, p, s.draws)
		if retry {
			return nil, false
		}
		if done {
			return ask, true
		}
		u.probeIdx += p.probeAdvance
		k.replayEffects(u, p.effects[:s.eff])
		return k.emitConcreteInst(u, s.node, false, k.space.Instantiate(s.node)), true
	}
	// The emitted node must still be open; a covered one means serial
	// selection would have traversed past it into territory the twin
	// never explored. Probes bypass coverage by design.
	if p.emit && !p.probe && k.coveredInFlight(p.target) {
		return nil, false
	}
	// (d) Resolve the remaining rng draws. Draws touch only the rng and
	// effects touch only kernel state, so resolving all draws before
	// replaying any effects folds to the same result as the serial
	// interleaving. Values are drawn here and nowhere else for validated
	// proposals — the stream stays aligned with what serial selection
	// would have consumed.
	ask, done, retry := k.resolveDraws(u, p, p.draws)
	if retry {
		return nil, false
	}
	if done {
		return ask, true
	}
	// Validated: replay the effect log. Auto-answers cannot settle here
	// ((b) above), so no classifier mark and no stop can result.
	u.probeIdx += p.probeAdvance
	k.replayEffects(u, p.effects)
	if !p.emit {
		return nil, true
	}
	return k.emitConcreteInst(u, p.target, p.probe, p.inst), true
}

// replayEffects applies a prefix of a validated proposal's effect log.
func (k *kernel) replayEffects(u *userState, effs []specEffect) {
	for _, e := range effs {
		switch e.op {
		case effRoots:
			k.roots()
		case effSuccs:
			k.successors(e.node)
		case effAuto:
			k.recordAnswer(u, e.node, 0, true)
		}
	}
}

// resolveDraws consumes the proposal's first n draw points from the live
// rng. All failing confirms the speculation (done=false, retry=false). A
// success takes the captured branch: a committable specialization is
// applied and returned (done=true); a no-op branch — fewer than two open
// successors and nothing to prune — behaves exactly like a failed draw
// and resolution continues; anything else queues the consumed values on
// k.rngReplay for the serial re-run (retry=true, nothing applied).
func (k *kernel) resolveDraws(u *userState, p *proposal, n int) (*crowd.Ask, bool, bool) {
	if n == 0 {
		return nil, false, false
	}
	buf := k.drawBuf[:0]
	for d := 0; d < n; d++ {
		v := k.rng.Float64()
		buf = append(buf, v)
		if v >= k.cfg.SpecializationRatio {
			continue
		}
		br := &p.branches[d]
		if len(br.open) < 2 && len(br.prunes) == 0 {
			continue
		}
		if len(br.open) < 2 || br.unsafe || k.branchTouched(br) {
			k.rngReplay = append([]float64(nil), buf...)
			k.drawBuf = buf[:0]
			return nil, false, true
		}
		k.drawBuf = buf[:0]
		return k.commitBranchAsk(u, p, br), true, false
	}
	k.drawBuf = buf[:0]
	return nil, false, false
}

// branchTouched reports whether an aggregator Add already landed on one
// of the branch's prune autos this commit phase — replaying it could
// then settle the node, so the branch must re-run serially (the same
// commitTouched rule validation (b) applies to main-path autos).
func (k *kernel) branchTouched(br *specBranch) bool {
	for _, s := range br.prunes {
		if k.commitTouched[s.ID()] {
			return true
		}
	}
	return false
}

// commitBranchAsk applies a successful specialization draw from its
// captured branch: the effect prefix up to the draw point, then exactly
// what maybeSpecialize does after a successful draw — successor tracking
// on the base, the prune auto-answers found while collecting candidates,
// and the specialization ask itself.
func (k *kernel) commitBranchAsk(u *userState, p *proposal, br *specBranch) *crowd.Ask {
	u.probeIdx += p.probeAdvance
	k.replayEffects(u, p.effects[:br.eff])
	k.successors(br.base)
	for _, s := range br.prunes {
		k.recordAnswer(u, s, 0, true)
	}
	cands := make([]ontology.FactSet, len(br.open))
	for i, o := range br.open {
		cands[i] = k.space.Instantiate(o)
	}
	k.nextAskID++
	ask := &crowd.Ask{
		ID:      k.nextAskID,
		Member:  u.id,
		Index:   u.index,
		Kind:    crowd.SpecializeAsk,
		Base:    k.space.Instantiate(br.base),
		Options: cands,
	}
	u.pending = &pendingAsk{ask: ask, base: br.base, open: br.open}
	return ask
}

// selectFor runs the speculative selectAsk twin for one member, with the
// member's quota-spreading budget. A nil return means the member fails the
// (selection-phase-stable) session gates; the commit skips them with no
// validation, exactly as serial selection returns nil without effects.
func (w *specWorker) selectFor(u *userState, slots int) *proposal {
	k := w.k
	if !k.eligible(u) {
		return nil
	}
	p := &proposal{}
	w.memberEp++
	if k.checker != nil && k.cfg.CalibrationQuestions > 0 {
		if w.specProbe(u, p) {
			return p
		}
	}
	w.specMining(u, p, slots)
	return p
}

// answered mirrors "has this member an answer for the node", including
// the member's own speculative auto-answers (serial selection records
// those mid-traversal and sees them downstream; the overlay recreates
// that without writing u.answers).
func (w *specWorker) answered(u *userState, id assign.NodeID) bool {
	if _, ok := u.answers[id]; ok {
		return true
	}
	return int(id) < len(w.ovEp) && w.ovEp[id] == w.memberEp
}

// answeredYes mirrors userState.answeredYes over log plus overlay.
func (w *specWorker) answeredYes(u *userState, id assign.NodeID) bool {
	if s, ok := u.answers[id]; ok {
		return s >= w.k.cfg.Theta
	}
	if int(id) < len(w.ovEp) && w.ovEp[id] == w.memberEp {
		return w.ovVal[id] >= w.k.cfg.Theta
	}
	return false
}

// addAuto logs a speculative auto-answer (support 0 from a pruning
// inference) and classifies its commit safety: replaying the Add must not
// be able to reach the aggregator's quota. Snapshot count ≤ quota-2 means
// even a fresh trusted answer leaves the count below quota, and the
// ReadSnapshotter contract then guarantees Decide stays Undecided; the
// commit additionally requires that no Add touched the node this commit.
func (w *specWorker) addAuto(p *proposal, a *assign.Assignment) {
	k := w.k
	p.effects = append(p.effects, specEffect{op: effAuto, node: a})
	p.autos = append(p.autos, a)
	if id := int(a.ID()); id < len(w.ovEp) {
		w.ovEp[id], w.ovVal[id] = w.memberEp, 0
	} else {
		w.ovVal = append(w.ovVal, make([]float64, id+1-len(w.ovVal))...)
		w.ovEp = append(w.ovEp, make([]uint32, id+1-len(w.ovEp))...)
		w.ovEp[id], w.ovVal[id] = w.memberEp, 0
	}
	if _, dec := k.decided[a.ID()]; !dec {
		if k.sel.answers(a.ID()) >= k.quota-1 {
			p.unsafeAutos = true
		}
	}
}

// specProbe mirrors selectProbe; it reports whether the proposal emits a
// calibration probe. The chain is prebuilt (beginRoundParallel), and the
// cursor advance over answered/pruned entries is deferred to the commit.
func (w *specWorker) specProbe(u *userState, p *proposal) bool {
	k := w.k
	idx := u.probeIdx
	for idx < len(k.probes) {
		pr := k.probes[idx]
		if w.answered(u, pr.ID()) {
			idx++
			continue
		}
		if k.assignmentPruned(u, pr) {
			w.addAuto(p, pr)
			idx++
			continue
		}
		p.probeAdvance = idx - u.probeIdx
		p.target, p.probe, p.emit = pr, true, true
		p.inst = k.space.Instantiate(pr)
		return true
	}
	p.probeAdvance = idx - u.probeIdx
	return false
}

// specMining mirrors selectMining: same BFS, same branch order, with
// every classifier read recorded and every side effect logged instead of
// applied. coveredInFlight is zero at round start but fills as earlier
// members commit; the slots budget predicts that fill (see the file
// comment), so the twin skips the candidates serial selection would find
// covered and emits the one it would reach. The commit re-checks both.
func (w *specWorker) specMining(u *userState, p *proposal, slots int) {
	k := w.k
	w.epoch++
	queue := append(w.queue[:0], k.space.Roots()...)
	p.effects = append(p.effects, specEffect{op: effRoots})
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		if w.seen(a.ID()) {
			continue
		}
		st := w.status(a)
		p.reads = append(p.reads, statusRead{node: a, st: st})
		if st == assign.Insignificant {
			continue
		}
		if st == assign.Significant {
			if w.answeredYes(u, a.ID()) && k.cfg.SpecializationRatio > 0 {
				w.captureBranch(u, p, a)
				p.draws++ // assumed failed; serial consumes one value
			}
			p.effects = append(p.effects, specEffect{op: effSuccs, node: a})
			queue = append(queue, w.successors(a)...)
			continue
		}
		if !w.answered(u, a.ID()) {
			if k.assignmentPruned(u, a) {
				w.addAuto(p, a)
				continue
			}
			// gap is how many more asks this round cover the node. Both
			// the answer count and the in-flight count only grow within a
			// round, so gap<=0 ("already covered") holds at this member's
			// serial turn too — skip with no commit check, exactly the
			// serial coveredInFlight branch. A positive gap that fits in
			// the budget of earlier wave members is only PREDICTED
			// covered; record the skip for the commit to verify.
			id := a.ID()
			gap := k.quota - k.sel.answers(id)
			if gap < 1 {
				gap = 1
			}
			if int(id) < len(k.inFlight) {
				gap -= int(k.inFlight[id])
			}
			if gap <= 0 {
				continue
			}
			if slots >= gap {
				slots -= gap
				p.skips = append(p.skips, skipRec{node: a, draws: p.draws, eff: len(p.effects)})
				continue
			}
			p.target, p.emit = a, true
			p.inst = k.space.Instantiate(a)
			w.queue = queue[:0]
			return
		}
		if w.answeredYes(u, a.ID()) {
			if k.cfg.SpecializationRatio > 0 {
				w.captureBranch(u, p, a)
				p.draws++
			}
			p.effects = append(p.effects, specEffect{op: effSuccs, node: a})
			queue = append(queue, w.successors(a)...)
		}
	}
	w.queue = queue[:0]
}

// captureBranch records, for one draw point, the branch a successful
// specialization draw would take — maybeSpecialize's candidate collection
// run read-only: statuses via StatusRO (recorded for validation (a)),
// answers via log plus overlay, prune autos noted but NOT overlaid (the
// twin's own continuation assumes the draw fails, and then none of this
// happens).
func (w *specWorker) captureBranch(u *userState, p *proposal, base *assign.Assignment) {
	k := w.k
	br := specBranch{eff: len(p.effects), base: base}
	for _, succ := range w.successors(base) {
		st := w.status(succ)
		p.reads = append(p.reads, statusRead{node: succ, st: st})
		if st != assign.Unknown {
			continue
		}
		if w.answered(u, succ.ID()) {
			continue
		}
		if k.assignmentPruned(u, succ) {
			br.prunes = append(br.prunes, succ)
			if _, dec := k.decided[succ.ID()]; !dec {
				if k.sel.answers(succ.ID()) >= k.quota-1 {
					br.unsafe = true
				}
			}
			continue
		}
		br.open = append(br.open, succ)
	}
	p.branches = append(p.branches, br)
}

// seen is the worker-local alreadyVisited twin.
func (w *specWorker) seen(id assign.NodeID) bool {
	if int(id) >= len(w.visited) {
		w.visited = append(w.visited, make([]uint32, int(id)+1-len(w.visited))...)
	}
	if w.visited[id] == w.epoch {
		return true
	}
	w.visited[id] = w.epoch
	return false
}

// ansRec is one answer a reply folds in: the assignment and its support,
// auto for the none-of-these fan-out.
type ansRec struct {
	node    *assign.Assignment
	support float64
	auto    bool
}

// replySlot carries one reply's member-local outcome from the parallel
// fold phase to the serial stats/aggregator phase.
type replySlot struct {
	user        *userState
	ok          bool // pending matched; reply consumed
	departed    bool // fresh departure
	timedOut    bool
	struckOut   bool // timeout budget exhausted
	usable      bool
	kind        crowd.AskKind
	pruneClick  bool
	noneOfThese bool
	openCount   int
	answers     []ansRec
}

// applyAll folds a sorted reply batch at the round barrier. The serial
// path is the plain per-reply apply loop; kernels with parallel selection
// split the fold in two phases (see applyParallel). Top-k runs always
// fold serially: confirming the k-th MSP mid-barrier flips k.stopped,
// which changes how every later reply is folded — an order dependence the
// two-phase split cannot honor.
func (k *kernel) applyAll(replies []crowd.Reply) {
	if k.sel == nil || len(replies) < 2 || k.cfg.MaxMSPs > 0 {
		for _, r := range replies {
			k.apply(r)
			k.km.InFlight.Add(-1)
		}
		return
	}
	k.applyParallel(replies)
}

// applyParallel is the two-phase reply fold. Phase A groups replies by
// member — a member's replies keep ask order within their group, so chaos
// duplicate replies resolve exactly as they do serially — and folds each
// member's group into that member's own state concurrently. Phase B
// walks the slots in ask order and replays everything that touches shared
// state: stats, metrics, aggregator adds, settles, progress samples, ban
// reviews. The serial fold interleaves A-writes and B-writes per reply,
// but A-state is only ever read by its own member's fold (and by phase B
// through the slots), so hoisting all of A before all of B preserves
// every B-visible value; see DESIGN.md §13 for the reviewBan ordering
// argument.
func (k *kernel) applyParallel(replies []crowd.Reply) {
	slots := make([]replySlot, len(replies))
	byMember := make(map[int][]int32)
	for i, r := range replies {
		if r.Ask == nil || r.Ask.Index < 0 || r.Ask.Index >= len(k.users) {
			continue // malformed: serial apply ignores it too
		}
		byMember[r.Ask.Index] = append(byMember[r.Ask.Index], int32(i))
	}
	groups := make([][]int32, 0, len(byMember))
	for _, g := range byMember {
		groups = append(groups, g)
	}

	nw := len(k.sel.workers)
	if nw > len(groups) {
		nw = len(groups)
	}
	var wg sync.WaitGroup
	wg.Add(nw)
	for wi := 0; wi < nw; wi++ {
		go func(wi int) {
			defer wg.Done()
			for g := wi; g < len(groups); g += nw {
				k.applyMemberLocal(replies, slots, groups[g])
			}
		}(wi)
	}
	wg.Wait()

	// Phase B: shared state, ask order — the serial fold order. Journal
	// and scoreboard emission lives here (never in phase A): the slots
	// walk in ask order, so the recorded event stream is byte-identical
	// to the serial fold's.
	for i := range slots {
		s := &slots[i]
		r := &replies[i]
		k.km.InFlight.Add(-1)
		if !s.ok {
			continue
		}
		if s.departed {
			k.stats.Departures++
			k.km.Departures.Inc()
			if k.jr != nil {
				k.jr.DepartureEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, s.user.id, r.Outcome.String(),
					r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed))
			}
			k.sb.Departure(s.user.id)
			continue
		}
		if s.timedOut {
			k.stats.TimedOut++
			k.stats.Discarded++
			k.km.Timeouts.Inc()
			k.km.Discarded.Inc()
			if k.jr != nil {
				k.jr.TimeoutEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, s.user.id, r.Outcome.String(),
					r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed), s.struckOut)
			}
			k.sb.Timeout(s.user.id, s.struckOut)
			if s.struckOut {
				k.stats.Departures++
				k.km.Departures.Inc()
				k.sb.Departure(s.user.id)
			}
			continue
		}
		if !s.usable {
			continue
		}
		k.stats.Questions++
		k.km.Questions.Inc()
		if k.jr != nil {
			k.jr.ReplyEvent(k.jrRun, k.stats.Rounds, r.Ask.ID, s.user.id, r.Outcome.String(),
				r.Support, r.Choice, prunedInts(r.Pruned), int64(r.Elapsed), "")
		}
		k.sb.Reply(s.user.id, r.Support, r.Elapsed.Seconds())
		switch s.kind {
		case crowd.ConcreteAsk:
			k.stats.ConcreteQ++
			if s.pruneClick {
				k.stats.PruneClicks++
			}
		case crowd.SpecializeAsk:
			k.stats.SpecialQ++
			if s.noneOfThese {
				k.stats.NoneOfThese++
				k.stats.AutoAnswers += s.openCount - 1
			}
		}
		for _, ar := range s.answers {
			if ar.auto {
				k.stats.AutoAnswers++
				k.km.Inferred.Inc()
			}
			if _, settled := k.decided[ar.node.ID()]; settled {
				continue
			}
			k.agg.Add(ar.node.ID(), s.user.id, ar.support)
			if k.jr != nil && k.agg.Answers(ar.node.ID()) == 1 {
				k.jr.NoteNewAnswer(k.jrRun)
			}
			if d := k.agg.Decide(ar.node.ID()); d != crowd.Undecided {
				k.settle(ar.node, d)
			}
		}
		k.tracker.sample(&k.stats)
		k.reviewBan(s.user)
	}
}

// applyMemberLocal is phase A for one member's replies, in ask order:
// everything the serial apply writes that only this member's folds (and
// the serial phase B, via the slot) ever read. Per-member consistency
// records are safe here because every member was Registered at kernel
// construction, making checker.Record map-read-only across members.
func (k *kernel) applyMemberLocal(replies []crowd.Reply, slots []replySlot, idxs []int32) {
	for _, i := range idxs {
		r := replies[i]
		s := &slots[i]
		u := k.users[r.Ask.Index]
		p := u.pending
		if p == nil || p.ask != r.Ask {
			continue // duplicate or stale reply; slot stays !ok
		}
		u.pending = nil
		if p.probe {
			u.probeIdx++
		}
		s.user = u
		s.ok = true
		if r.Outcome == crowd.Departed {
			if !u.departed {
				u.departed = true
				s.departed = true
			}
			continue
		}
		deadline := k.cfg.AnswerDeadline
		if r.Outcome == crowd.TimedOut || (deadline > 0 && r.Elapsed > deadline) {
			s.timedOut = true
			u.timeouts++
			max := k.cfg.MaxAnswerTimeouts
			if max <= 0 {
				max = 3
			}
			if u.timeouts >= max {
				u.departed = true
				s.struckOut = true
			}
			continue
		}
		u.timeouts = 0
		u.asked++
		s.usable = true
		s.kind = p.ask.Kind
		switch p.ask.Kind {
		case crowd.ConcreteAsk:
			if len(r.Pruned) > 0 {
				s.pruneClick = true
				for _, t := range r.Pruned {
					u.pruned[t] = true
				}
			}
			if k.cfg.RecordTranscript {
				k.transcribe(u, "concrete "+p.target.Key())
			}
			s.answers = append(s.answers, ansRec{node: p.target, support: r.Support})
		case crowd.SpecializeAsk:
			if r.Choice < 0 || r.Choice >= len(p.open) {
				s.noneOfThese = true
				s.openCount = len(p.open)
				if k.cfg.RecordTranscript {
					k.transcribe(u, "specialize "+p.base.Key()+" -> none")
				}
				for _, o := range p.open {
					s.answers = append(s.answers, ansRec{node: o, auto: true})
				}
			} else {
				if k.cfg.RecordTranscript {
					k.transcribe(u, "specialize "+p.base.Key()+" -> "+p.open[r.Choice].Key())
				}
				s.answers = append(s.answers, ansRec{node: p.open[r.Choice], support: r.Support})
			}
		}
		// The member-local half of recordAnswer; the aggregator half
		// runs in phase B.
		for _, ar := range s.answers {
			u.answers[ar.node.ID()] = ar.support
			if k.checker != nil && !ar.auto {
				k.checker.Record(u.id, k.space.Instantiate(ar.node), ar.support)
			}
		}
	}
}
