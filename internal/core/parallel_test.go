package core_test

import (
	"sync"
	"testing"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/synth"
)

// lockedMember wraps a SimMember with its own mutex and records concurrent
// access, validating the one-goroutine-per-member guarantee.
type lockedMember struct {
	inner  *crowd.SimMember
	mu     sync.Mutex
	active bool
	t      *testing.T
}

func (m *lockedMember) enter() {
	m.mu.Lock()
	if m.active {
		m.t.Error("member served by two goroutines at once")
	}
	m.active = true
	m.mu.Unlock()
}

func (m *lockedMember) leave() {
	m.mu.Lock()
	m.active = false
	m.mu.Unlock()
}

func (m *lockedMember) ID() string { return m.inner.ID() }

func (m *lockedMember) AskConcrete(fs ontology.FactSet) crowd.Response {
	m.enter()
	defer m.leave()
	return m.inner.AskConcrete(fs)
}

func (m *lockedMember) AskSpecialize(base ontology.FactSet, cands []ontology.FactSet) (int, crowd.Response) {
	m.enter()
	defer m.leave()
	return m.inner.AskSpecialize(base, cands)
}

// TestRunParallelMatchesSequential runs a domain crowd both ways: the
// answer sets must agree (MSP keys), even though question order differs.
func TestRunParallelMatchesSequential(t *testing.T) {
	build := func() (*synth.Domain, []crowd.Member) {
		d, err := synth.NewDomain(synth.SelfTreatment(24, 4))
		if err != nil {
			t.Fatal(err)
		}
		return d, d.Members
	}
	d1, m1 := build()
	seq := core.NewEngine(d1.Space, m1, core.EngineConfig{
		Theta: 0.2, Aggregator: crowd.NewMeanAggregator(5, 0.2), Seed: 1,
	}).Run()

	d2, m2 := build()
	wrapped := make([]crowd.Member, len(m2))
	for i, m := range m2 {
		wrapped[i] = &lockedMember{inner: m.(*crowd.SimMember), t: t}
	}
	par := core.NewEngine(d2.Space, wrapped, core.EngineConfig{
		Theta: 0.2, Aggregator: crowd.NewMeanAggregator(5, 0.2), Seed: 1,
	}).RunParallel(8)

	// Answer-order differences can flip borderline aggregator decisions
	// (different 5-member samples answer first), so require strong —
	// not perfect — agreement on the MSP sets.
	seqKeys := map[string]bool{}
	for _, m := range seq.MSPs {
		seqKeys[m.Key()] = true
	}
	common := 0
	for _, m := range par.MSPs {
		if seqKeys[m.Key()] {
			common++
		}
	}
	if len(seq.MSPs) == 0 || len(par.MSPs) == 0 {
		t.Fatalf("degenerate runs: %d vs %d MSPs", len(seq.MSPs), len(par.MSPs))
	}
	if 2*common < len(seq.MSPs) {
		t.Errorf("parallel run agrees on only %d of %d sequential MSPs",
			common, len(seq.MSPs))
	}
	// Both must classify everything (no lost work).
	if par.Stats.Questions == 0 {
		t.Fatal("parallel run asked nothing")
	}
}

// TestRunParallelSingleWorkerIsSequential: workers=1 must fall back to the
// deterministic path.
func TestRunParallelSingleWorkerIsSequential(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	mk := func() []crowd.Member {
		a := crowd.NewSimMember("u1", v, du1, 1)
		a.Scale = nil
		b := crowd.NewSimMember("u2", v, du2, 2)
		b.Scale = nil
		return []crowd.Member{a, b}
	}
	r1 := core.NewEngine(sp, mk(), core.EngineConfig{
		Theta: 0.4, Aggregator: crowd.NewMeanAggregator(2, 0.4), Seed: 1,
	}).RunParallel(1)
	sp2, v2 := buildSpace(t, paperdata.SimpleQueryText, nil)
	_ = v2
	r2 := core.NewEngine(sp2, mk(), core.EngineConfig{
		Theta: 0.4, Aggregator: crowd.NewMeanAggregator(2, 0.4), Seed: 1,
	}).Run()
	if r1.Stats.Questions != r2.Stats.Questions || len(r1.MSPs) != len(r2.MSPs) {
		t.Fatal("workers=1 diverged from sequential Run")
	}
}

// TestRunParallelPaperExample checks the ground-truth MSPs survive a
// concurrent run of the running example.
func TestRunParallelPaperExample(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	du1, du2 := paperdata.Table3(v)
	m1 := crowd.NewSimMember("u1", v, du1, 1)
	m1.Scale = nil
	m2 := crowd.NewSimMember("u2", v, du2, 2)
	m2.Scale = nil
	res := core.NewEngine(sp, []crowd.Member{m1, m2}, core.EngineConfig{
		Theta: 0.4, Aggregator: crowd.NewMeanAggregator(2, 0.4), Seed: 1,
	}).RunParallel(2)
	want := wantMSPs(t, sp, v)
	if len(res.MSPs) != len(want) {
		for _, m := range res.MSPs {
			t.Logf("MSP: %s", m.String(v, sp.Kinds()))
		}
		t.Fatalf("parallel run found %d MSPs, want %d", len(res.MSPs), len(want))
	}
	for _, m := range res.MSPs {
		if !want[m.Key()] {
			t.Errorf("unexpected MSP %s", m.String(v, sp.Kinds()))
		}
	}
}
