package core

import (
	"fmt"
	"strconv"
	"strings"

	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Rekey translates every cached question from one vocabulary's term IDs to
// another's, matching terms by name — the migration step behind ontology
// evolution (Section 8): answers collected before the ontology grew keep
// replaying afterwards. Entries mentioning terms the new vocabulary lacks
// are dropped (their questions can no longer be posed).
func (c *CrowdCache) Rekey(oldV, newV *vocab.Vocabulary) (*CrowdCache, error) {
	out := NewCrowdCache()
	for k, resp := range c.concrete {
		q, ok, err := rekeyQuestion(k.q, oldV, newV)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out.concrete[cacheKey{member: k.member, q: q}] = rekeyResponse(resp, oldV, newV)
	}
	for k, a := range c.special {
		q, ok, err := rekeySpecKey(k.q, oldV, newV)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		a.resp = rekeyResponse(a.resp, oldV, newV)
		out.special[cacheKey{member: k.member, q: q}] = a
	}
	return out, nil
}

// rekeySpecKey handles "baseKey|candKey;candKey;...".
func rekeySpecKey(key string, oldV, newV *vocab.Vocabulary) (string, bool, error) {
	base, rest, found := strings.Cut(key, "|")
	if !found {
		return "", false, fmt.Errorf("crowdcache: malformed specialization key %q", key)
	}
	nb, ok, err := rekeyQuestion(base, oldV, newV)
	if err != nil || !ok {
		return "", false, err
	}
	var sb strings.Builder
	sb.WriteString(nb)
	sb.WriteByte('|')
	for _, cand := range strings.Split(rest, ";") {
		if cand == "" {
			continue
		}
		nc, ok, err := rekeyQuestion(cand, oldV, newV)
		if err != nil || !ok {
			// A candidate list that changed shape cannot replay:
			// the stored index would point at the wrong option.
			return "", false, err
		}
		sb.WriteString(nc)
		sb.WriteByte(';')
	}
	return sb.String(), true, nil
}

// rekeyQuestion translates one factSetKey ("s.p.o,s.p.o,").
func rekeyQuestion(key string, oldV, newV *vocab.Vocabulary) (string, bool, error) {
	var sb strings.Builder
	for _, facts := range strings.Split(key, ",") {
		if facts == "" {
			continue
		}
		parts := strings.Split(facts, ".")
		if len(parts) != 3 {
			return "", false, fmt.Errorf("crowdcache: malformed question key %q", key)
		}
		ids := make([]vocab.TermID, 3)
		for i, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil {
				return "", false, fmt.Errorf("crowdcache: malformed question key %q", key)
			}
			ids[i] = vocab.TermID(n)
		}
		s, ok := rekeyTerm(ids[0], oldV, newV, false)
		if !ok {
			return "", false, nil
		}
		p, ok := rekeyTerm(ids[1], oldV, newV, true)
		if !ok {
			return "", false, nil
		}
		o, ok := rekeyTerm(ids[2], oldV, newV, false)
		if !ok {
			return "", false, nil
		}
		sb.WriteString(itoa(int(s)))
		sb.WriteByte('.')
		sb.WriteString(itoa(int(p)))
		sb.WriteByte('.')
		sb.WriteString(itoa(int(o)))
		sb.WriteByte(',')
	}
	return sb.String(), true, nil
}

func rekeyTerm(id vocab.TermID, oldV, newV *vocab.Vocabulary, relation bool) (vocab.TermID, bool) {
	if id == ontology.Any {
		return id, true
	}
	var name string
	if relation {
		name = oldV.RelationName(id)
	} else {
		name = oldV.ElementName(id)
	}
	if name == "" {
		return 0, false
	}
	var nid vocab.TermID
	if relation {
		nid = newV.Relation(name)
	} else {
		nid = newV.Element(name)
	}
	if nid == vocab.NoTerm {
		return 0, false
	}
	return nid, true
}

func rekeyResponse(r crowd.Response, oldV, newV *vocab.Vocabulary) crowd.Response {
	if len(r.Pruned) == 0 {
		return r
	}
	var pruned []vocab.TermID
	for _, t := range r.Pruned {
		if nt, ok := rekeyTerm(t, oldV, newV, false); ok {
			pruned = append(pruned, nt)
		}
	}
	r.Pruned = pruned
	return r
}
