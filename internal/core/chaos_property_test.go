package core_test

import (
	"fmt"
	"testing"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// TestPropertyChaosRunsStaySound is the chaos soundness property: over
// random synthetic spaces (the Section 6.4 DAG generator, as in
// internal/assign/property_test.go) and random fault mixes — members
// departing mid-run, members answering inconsistently, heavy-tailed
// latency — every run terminates and reports a sound antichain: each
// reported MSP carries aggregated support ≥ θ from the answers actually
// collected, and no reported MSP is dominated by another.
func TestPropertyChaosRunsStaySound(t *testing.T) {
	const theta = 0.5
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d, err := synth.NewDAG(synth.DAGConfig{
				Width: 14, Depth: 3, MSPPercent: 0.06,
				MultiMSPPercent: 0.02, MultiMSPSize: 2, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			clock := chaos.NewVirtualClock()
			// Six oracle clones; the fault mix rotates with the seed so the
			// six subtests cover departure-heavy, contradiction-heavy and
			// mixed crowds.
			members := make([]crowd.Member, 6)
			for i := range members {
				f := chaos.Faults{
					Seed:       seed*100 + int64(i),
					ID:         fmt.Sprintf("oracle-%d", i),
					LatencyMin: time.Second,
					LatencyMax: time.Minute,
				}
				switch (int(seed) + i) % 3 {
				case 0:
					f.DepartAfter = 3 + i
				case 1:
					f.ContradictProb = 0.2
					f.HeavyTailAlpha = 1.3
				case 2:
					f.DepartProb = 0.02
				}
				members[i] = chaos.Wrap(d.Oracle(0, seed+int64(i)), clock, f)
			}
			eng := core.NewEngine(d.Space, members, core.EngineConfig{
				Theta:      theta,
				Aggregator: crowd.NewMeanAggregator(3, theta),
				Seed:       seed,
			})
			var res *core.Result
			if seed%2 == 0 {
				res = eng.RunParallel(4)
			} else {
				res = eng.Run()
			}
			assertSoundAntichain(t, d.Space, res, theta)
			for _, m := range res.MSPs {
				if _, ok := res.SupportOf(m); !ok {
					t.Errorf("MSP %s reported with no recorded support", m.Key())
				}
			}
		})
	}
}
