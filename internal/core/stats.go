// Package core implements the OASSIS query evaluation engine: the vertical
// algorithm of Section 4.1 (Algorithm 1), the multi-user evaluation of
// Section 4.2 with a pluggable black-box aggregator, the horizontal
// (Apriori-style) and naive baselines of Section 6.4, and the CrowdCache
// answer store that supports threshold re-evaluation (Section 6.3).
package core

import (
	"oassis/internal/assign"
	"oassis/internal/obs"
)

// QuestionKind distinguishes the interaction types of Sections 4.1 and 6.2.
type QuestionKind uint8

const (
	// Concrete asks for the support of one fact-set.
	Concrete QuestionKind = iota
	// Specialization asks the member to pick a significant refinement.
	Specialization
)

// Stats aggregates the cost measures the paper reports.
type Stats struct {
	// Questions is the total number of questions posed, including
	// repetitions across crowd members (Section 6.3's #questions).
	Questions int
	// ConcreteQ and SpecialQ split Questions by kind.
	ConcreteQ int
	SpecialQ  int
	// NoneOfThese counts specialization questions answered "none of
	// these" (each still counts once in Questions).
	NoneOfThese int
	// PruneClicks counts user-guided pruning interactions.
	PruneClicks int
	// AutoAnswers counts answers inferred at no user cost (pruned values
	// and none-of-these fan-outs).
	AutoAnswers int
	// Generated counts assignments materialized by the lazy generator;
	// comparing against the eager DAG size measures the Section 6.4
	// laziness claim.
	Generated int
	// Departures counts members who left mid-run (a Departed response or
	// exhausting the consecutive answer-deadline budget). Their recorded
	// answers are kept; the run degrades to the surviving crowd.
	Departures int
	// TimedOut counts answers discarded because they arrived after the
	// engine's AnswerDeadline; such questions do not count in Questions
	// (no usable answer was obtained) and are re-posed.
	TimedOut int

	// Asked counts Ask events emitted by the kernel — questions put to
	// the crowd, whether or not a usable answer came back (compare
	// Questions, which counts usable answers only).
	Asked int
	// Discarded counts replies the kernel received but could not use: a
	// deadline overrun, or an answer that arrived after a top-k run
	// already stopped.
	Discarded int
	// Rounds counts bulk-synchronous kernel rounds (each member is
	// asked at most one question per round).
	Rounds int
	// PeakInFlight is the largest number of questions simultaneously
	// outstanding — the broker queue depth at its deepest.
	PeakInFlight int

	// Progress samples one point per question for the pace-of-collection
	// curves (Figures 4d–4e).
	Progress []ProgressPoint

	// WatchDiscoveredAt records, for each watched ground-truth
	// assignment (see the runners' Watch option), the question count at
	// which it was classified significant; -1 means never.
	WatchDiscoveredAt []int
}

// ProgressPoint is one sample of the pace-of-data-collection curves: the
// state after the Questions-th question.
type ProgressPoint struct {
	Questions       int
	ClassifiedValid int // valid assignments classified either way
	MSPs            int // confirmed overall MSPs
	ValidMSPs       int // confirmed overall MSPs that are valid
}

// Result is the outcome of a mining run.
type Result struct {
	// MSPs are the maximal significant patterns among all explored
	// assignments (the set M of Algorithm 1).
	MSPs []*assign.Assignment
	// ValidMSPs is M ∩ 𝒜valid, the query's default output.
	ValidMSPs []*assign.Assignment
	// Significant lists every explored assignment classified significant
	// (returned when the query says SELECT ... ALL).
	Significant []*assign.Assignment
	// Supports maps assignment keys to their aggregated crowd support,
	// for every assignment that received answers. Downstream analyses
	// (association-rule confidence, ranking) read from here.
	Supports map[string]float64
	// Transcripts, when EngineConfig.RecordTranscript is set, holds the
	// per-member interview log: one line per usable answer, in the
	// order the kernel folded them in. Two runs over the same crowd are
	// behaviorally equivalent iff their transcripts match.
	Transcripts map[string][]string
	Stats       Stats
	// Trace, when the run carried an Observer, summarizes its recorded
	// spans by (phase, name) — where the run's time went. Nil otherwise.
	Trace *obs.TraceSummary
	// Curve, when the run carried a journal, is the answer-arrival curve:
	// per-round new-MSP and new-distinct-answer discoveries against the
	// cumulative question spend. Nil otherwise.
	Curve []obs.CurvePoint
	// JournalRun, when the run carried a journal, is the run ID its
	// journal events were recorded under — the join key for post-hoc cost
	// attribution over a shared journal. 0 otherwise.
	JournalRun int64
}

// SupportOf returns the aggregated support recorded for an assignment
// (0, false when it was classified purely by inference).
func (r *Result) SupportOf(a *assign.Assignment) (float64, bool) {
	s, ok := r.Supports[a.Key()]
	return s, ok
}

// progressTracker incrementally maintains the counters behind
// Stats.Progress.
type progressTracker struct {
	space           *assign.Space
	unclassifiedVal []*assign.Assignment
	classifiedValid int
	mspSeen         map[assign.NodeID]bool
	validMSPSeen    map[assign.NodeID]bool
}

func newProgressTracker(sp *assign.Space) *progressTracker {
	t := &progressTracker{
		space:        sp,
		mspSeen:      make(map[assign.NodeID]bool),
		validMSPSeen: make(map[assign.NodeID]bool),
	}
	t.unclassifiedVal = append(t.unclassifiedVal, sp.Valid()...)
	return t
}

// onMark updates the classified-valid counter after a border change. sig
// says which border grew; a is the newly marked assignment.
func (t *progressTracker) onMark(a *assign.Assignment, sig bool) {
	rest := t.unclassifiedVal[:0]
	for _, psi := range t.unclassifiedVal {
		var classified bool
		if sig {
			classified = t.space.Leq(psi, a)
		} else {
			classified = t.space.Leq(a, psi)
		}
		if classified {
			t.classifiedValid++
		} else {
			rest = append(rest, psi)
		}
	}
	t.unclassifiedVal = rest
}

// onMSP records a confirmed MSP (idempotent).
func (t *progressTracker) onMSP(a *assign.Assignment) {
	k := a.ID()
	if t.mspSeen[k] {
		return
	}
	t.mspSeen[k] = true
	if t.space.IsValid(a) {
		t.validMSPSeen[k] = true
	}
}

// sample appends one progress point for the given question count.
func (t *progressTracker) sample(s *Stats) {
	s.Progress = append(s.Progress, ProgressPoint{
		Questions:       s.Questions,
		ClassifiedValid: t.classifiedValid,
		MSPs:            len(t.mspSeen),
		ValidMSPs:       len(t.validMSPSeen),
	})
}
