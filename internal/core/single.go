package core

import (
	"math/rand"
	"sort"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Strategy selects the question-ordering algorithm for a single-user run
// (Section 6.4 compares the three).
type Strategy uint8

const (
	// Vertical is Algorithm 1: top-down traversal that dives from each
	// significant assignment to ever more specific ones.
	Vertical Strategy = iota
	// Horizontal is the Apriori-inspired levelwise baseline: an
	// assignment is asked only after all its immediate predecessors are
	// known significant.
	Horizontal
	// Naive asks randomly chosen valid assignments, with the same
	// inference scheme.
	Naive
)

func (s Strategy) String() string {
	switch s {
	case Horizontal:
		return "horizontal"
	case Naive:
		return "naive"
	default:
		return "vertical"
	}
}

// SingleUser runs one mining strategy against a single crowd member
// (Section 4.1; also the synthetic experiments of Section 6.4).
type SingleUser struct {
	Space    *assign.Space
	Member   crowd.Member
	Theta    float64
	Strategy Strategy
	// SpecializationRatio is the probability of replacing a round of
	// concrete successor questions with one specialization question
	// (vertical only; Figure 4f varies it).
	SpecializationRatio float64
	// Seed drives the run's randomness (question-type choice, naive
	// order).
	Seed int64
	// Watch optionally lists ground-truth assignments whose
	// classified-significant time should be recorded (used by the
	// Figure 5 harness).
	Watch []*assign.Assignment
	// MaxMSPs stops the run once this many MSPs are confirmed (top-k).
	MaxMSPs int
	// OnMSP streams each confirmed MSP.
	OnMSP func(*assign.Assignment)
	// Obs, when set, receives question/departure/MSP counters and the
	// run's trace summary. Nil disables observability.
	Obs *obs.Observer
}

// Run executes the strategy until the space is fully classified and returns
// the mining result.
func (r *SingleUser) Run() *Result {
	s := newSession(r.Space, r.Theta, r.Watch)
	s.rng = rand.New(rand.NewSource(r.Seed))
	s.maxMSPs = r.MaxMSPs
	s.onMSP = r.OnMSP
	s.obsv = r.Obs
	s.km = r.Obs.KernelSet().OrNop()
	switch r.Strategy {
	case Horizontal:
		s.runHorizontal(r.Member)
	case Naive:
		s.runNaive(r.Member)
	default:
		s.runVertical(r.Member, r.SpecializationRatio)
	}
	return s.result()
}

// session holds the shared machinery of all strategies: the classifier, the
// lazy successor cache, pruning state, statistics and MSP confirmation.
type session struct {
	space   *assign.Space
	theta   float64
	cls     *assign.Classifier
	tracker *progressTracker
	stats   Stats
	rng     *rand.Rand

	// tracked lists the lattice nodes this run has materialized, in
	// first-seen order (the Space and its edge cache are shared across
	// runs; the per-run Generated accounting lives here). gen is its
	// membership set, indexed by NodeID.
	tracked []*assign.Assignment
	gen     idSet

	// prunedE holds element terms the user marked irrelevant.
	prunedE map[vocab.TermID]bool

	// watch lists ground-truth assignments; watchAt records the question
	// count at which each became classified significant (-1 = never).
	watch   []*assign.Assignment
	watchAt []int

	// supports records the member's answered support per assignment.
	supports map[assign.NodeID]float64

	confirmed map[assign.NodeID]bool // assignments confirmed as MSPs
	maxMSPs   int
	onMSP     func(*assign.Assignment)
	stopped   bool

	// obsv/km mirror the Stats counters into an Observer as events
	// happen; both are nil (no-op) unless SingleUser.Obs is set.
	obsv *obs.Observer
	km   *obs.KernelMetrics
}

func newSession(sp *assign.Space, theta float64, watch []*assign.Assignment) *session {
	s := &session{
		space:     sp,
		theta:     theta,
		cls:       assign.NewClassifier(sp),
		tracker:   newProgressTracker(sp),
		prunedE:   make(map[vocab.TermID]bool),
		supports:  make(map[assign.NodeID]float64),
		watch:     watch,
		watchAt:   make([]int, len(watch)),
		confirmed: make(map[assign.NodeID]bool),
	}
	for i := range s.watchAt {
		s.watchAt[i] = -1
	}
	return s
}

// track registers a materialized assignment for the laziness statistics.
func (s *session) track(a *assign.Assignment) {
	if s.gen.add(a.ID()) {
		s.tracked = append(s.tracked, a)
		s.stats.Generated++
	}
}

// successors returns the node's successors from the space's shared edge
// cache (shared slice, read-only).
func (s *session) successors(a *assign.Assignment) []*assign.Assignment {
	out := s.space.Successors(a)
	for _, x := range out {
		s.track(x)
	}
	return out
}

// roots returns the space's memoized roots (shared slice, read-only).
func (s *session) roots() []*assign.Assignment {
	rs := s.space.Roots()
	for _, r := range rs {
		s.track(r)
	}
	return rs
}

// pruned reports whether the user's pruning clicks cover the assignment: it
// involves a pruned value or a more specific one.
func (s *session) pruned(a *assign.Assignment) bool {
	if len(s.prunedE) == 0 {
		return false
	}
	v := s.space.Vocabulary()
	for _, vs := range s.space.Vars() {
		if vs.Kind != vocab.Element {
			continue
		}
		for _, val := range a.Values(vs.Name) {
			for p := range s.prunedE {
				if v.LeqE(p, val) {
					return true
				}
			}
		}
	}
	for _, f := range a.More() {
		for p := range s.prunedE {
			if (f.S != ontology.Any && v.LeqE(p, f.S)) ||
				(f.O != ontology.Any && v.LeqE(p, f.O)) {
				return true
			}
		}
	}
	return false
}

// markSignificant records a significant classification and its side effects.
func (s *session) markSignificant(a *assign.Assignment) {
	if s.cls.Status(a) == assign.Significant {
		return
	}
	s.cls.MarkSignificant(a)
	s.tracker.onMark(a, true)
	for i, w := range s.watch {
		if s.watchAt[i] < 0 && s.space.Leq(w, a) {
			s.watchAt[i] = s.stats.Questions
		}
	}
	s.checkConfirmations()
}

// markInsignificant records an insignificant classification.
func (s *session) markInsignificant(a *assign.Assignment) {
	if s.cls.Status(a) == assign.Insignificant {
		return
	}
	s.cls.MarkInsignificant(a)
	s.tracker.onMark(a, false)
	s.checkConfirmations()
}

// checkConfirmations promotes significant-border members all of whose
// successors are classified insignificant to confirmed MSPs.
func (s *session) checkConfirmations() {
	for _, b := range s.cls.SignificantBorder() {
		if s.confirmed[b.ID()] {
			continue
		}
		done := true
		for _, succ := range s.successors(b) {
			if s.cls.Status(succ) != assign.Insignificant {
				done = false
				break
			}
		}
		if done {
			s.confirmed[b.ID()] = true
			s.tracker.onMSP(b)
			s.km.MSPs.Inc()
			if s.onMSP != nil {
				s.onMSP(b)
			}
			if s.maxMSPs > 0 && len(s.confirmed) >= s.maxMSPs {
				s.stopped = true
			}
		}
	}
}

// askConcrete poses one concrete question and classifies the assignment.
// It returns true when the member's support meets the threshold. Pruned
// assignments are auto-answered without a question.
func (s *session) askConcrete(m crowd.Member, a *assign.Assignment) bool {
	if s.pruned(a) {
		s.stats.AutoAnswers++
		s.km.Inferred.Inc()
		s.markInsignificant(a)
		return false
	}
	resp := m.AskConcrete(s.space.Instantiate(a))
	if resp.Departed {
		// The only member left; end the run with what is confirmed so far
		// (the same early-termination semantics as top-k).
		s.stats.Departures++
		s.km.Departures.Inc()
		s.stopped = true
		return false
	}
	s.stats.Questions++
	s.stats.ConcreteQ++
	s.km.Questions.Inc()
	if len(resp.Pruned) > 0 {
		s.stats.PruneClicks++
		for _, t := range resp.Pruned {
			s.prunedE[t] = true
		}
	}
	s.supports[a.ID()] = resp.Support
	sig := resp.Support >= s.theta
	if sig {
		s.markSignificant(a)
	} else {
		s.markInsignificant(a)
	}
	s.tracker.sample(&s.stats)
	return sig
}

// unclassifiedSuccessors filters the successors of a to the ones the
// classifier cannot decide yet, auto-answering pruned ones.
func (s *session) unclassifiedSuccessors(a *assign.Assignment) []*assign.Assignment {
	var out []*assign.Assignment
	for _, succ := range s.successors(a) {
		if s.cls.Status(succ) != assign.Unknown {
			continue
		}
		if s.pruned(succ) {
			s.stats.AutoAnswers++
			s.km.Inferred.Inc()
			s.markInsignificant(succ)
			continue
		}
		out = append(out, succ)
	}
	return out
}

// runVertical is Algorithm 1 with the lazy generation of Section 5 and the
// optional specialization questions of Section 4.1.
func (s *session) runVertical(m crowd.Member, specRatio float64) {
	for !s.stopped {
		phi := s.minimalUnclassified()
		if phi == nil {
			return
		}
		if !s.askConcrete(m, phi) {
			continue
		}
		cur := phi
		for !s.stopped {
			open := s.unclassifiedSuccessors(cur)
			if len(open) == 0 {
				break
			}
			if specRatio > 0 && len(open) > 1 && s.rng.Float64() < specRatio {
				if next, ok := s.askSpecialization(m, cur, open); ok {
					cur = next
				}
				continue
			}
			if s.askConcrete(m, open[0]) {
				cur = open[0]
			}
		}
	}
}

// askSpecialization poses one specialization question over the open
// successors. It returns the chosen significant successor, if any.
func (s *session) askSpecialization(m crowd.Member, base *assign.Assignment, open []*assign.Assignment) (*assign.Assignment, bool) {
	cands := make([]ontology.FactSet, len(open))
	for i, o := range open {
		cands[i] = s.space.Instantiate(o)
	}
	idx, resp := m.AskSpecialize(s.space.Instantiate(base), cands)
	if resp.Departed {
		s.stats.Departures++
		s.km.Departures.Inc()
		s.stopped = true
		return nil, false
	}
	s.stats.Questions++
	s.stats.SpecialQ++
	s.km.Questions.Inc()
	if idx < 0 {
		// "None of these": support 0 for every proposed successor at
		// the cost of a single question (Section 6.2).
		s.stats.NoneOfThese++
		s.stats.AutoAnswers += len(open) - 1
		s.km.Inferred.Add(int64(len(open) - 1))
		for _, o := range open {
			s.markInsignificant(o)
		}
		s.tracker.sample(&s.stats)
		return nil, false
	}
	chosen := open[idx]
	s.supports[chosen.ID()] = resp.Support
	sig := resp.Support >= s.theta
	if sig {
		s.markSignificant(chosen)
	} else {
		s.markInsignificant(chosen)
	}
	s.tracker.sample(&s.stats)
	return chosen, sig
}

// minimalUnclassified descends from the roots through significant
// assignments to the first unclassified one (the outer-loop pick of
// Algorithm 1, in the refined start-at-the-top form of Section 4.2).
func (s *session) minimalUnclassified() *assign.Assignment {
	queue := append([]*assign.Assignment{}, s.roots()...)
	seen := make(map[assign.NodeID]bool, len(queue))
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		if seen[a.ID()] {
			continue
		}
		seen[a.ID()] = true
		switch s.cls.Status(a) {
		case assign.Unknown:
			if s.pruned(a) {
				s.stats.AutoAnswers++
				s.km.Inferred.Inc()
				s.markInsignificant(a)
				continue
			}
			return a
		case assign.Significant:
			queue = append(queue, s.successors(a)...)
		}
	}
	return nil
}

// runHorizontal processes assignments levelwise by ascending depth, asking
// an assignment only when every immediate predecessor is significant.
func (s *session) runHorizontal(m crowd.Member) {
	type item struct {
		a     *assign.Assignment
		depth int
	}
	var heap []item
	push := func(a *assign.Assignment) {
		heap = append(heap, item{a: a, depth: s.depthOf(a)})
		sort.SliceStable(heap, func(i, j int) bool {
			if heap[i].depth != heap[j].depth {
				return heap[i].depth < heap[j].depth
			}
			return heap[i].a.Key() < heap[j].a.Key()
		})
	}
	seen := map[assign.NodeID]bool{}
	for _, r := range s.roots() {
		if !seen[r.ID()] {
			seen[r.ID()] = true
			push(r)
		}
	}
	for len(heap) > 0 && !s.stopped {
		a := heap[0].a
		heap = heap[1:]
		st := s.cls.Status(a)
		if st == assign.Insignificant {
			continue
		}
		if st == assign.Unknown {
			if !s.allPredecessorsSignificant(a) {
				continue
			}
			if !s.askConcrete(m, a) {
				continue
			}
		}
		for _, succ := range s.successors(a) {
			if !seen[succ.ID()] {
				seen[succ.ID()] = true
				push(succ)
			}
		}
	}
}

// depthOf is a level measure for the levelwise traversal: the summed
// vocabulary depths of all values and MORE-fact components, plus a large
// constant per value/fact. Specialization and extension edges increase it;
// the one exception is multiplicity absorption (specializing a value so
// that it swallows a sibling), which the traversal's deferral loop absorbs.
func (s *session) depthOf(a *assign.Assignment) int {
	v := s.space.Vocabulary()
	elemDepth := func(id vocab.TermID) int {
		if id == ontology.Any {
			return 0
		}
		return v.ElementDepth(id)
	}
	d := 0
	for _, f := range a.More() {
		d += 1000 + elemDepth(f.S) + elemDepth(f.O)
		if f.P != ontology.Any {
			d += v.RelationDepth(f.P)
		}
	}
	for _, vs := range s.space.Vars() {
		for _, val := range a.Values(vs.Name) {
			if vs.Kind == vocab.Element {
				d += v.ElementDepth(val) + 100
			} else {
				d += v.RelationDepth(val) + 100
			}
		}
	}
	return d
}

func (s *session) allPredecessorsSignificant(a *assign.Assignment) bool {
	for _, p := range s.space.Predecessors(a) {
		if s.cls.Status(p) != assign.Significant {
			return false
		}
	}
	return true
}

// runNaive asks randomly ordered valid assignments, reusing the inference
// scheme.
func (s *session) runNaive(m crowd.Member) {
	order := make([]*assign.Assignment, len(s.space.Valid()))
	copy(order, s.space.Valid())
	s.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, a := range order {
		if s.stopped {
			break
		}
		s.track(a)
		if s.cls.Status(a) != assign.Unknown {
			continue
		}
		s.askConcrete(m, a)
	}
}

// result finalizes the run. Supports is translated to the string-keyed
// public form here, once, off the hot path.
func (s *session) result() *Result {
	res := &Result{Stats: s.stats, Supports: make(map[string]float64, len(s.supports))}
	if t := s.obsv.Trace(); t != nil {
		res.Trace = t.Summary()
	}
	for _, a := range s.tracked {
		if sup, ok := s.supports[a.ID()]; ok {
			res.Supports[a.Key()] = sup
		}
	}
	res.Stats.WatchDiscoveredAt = s.watchAt
	border := append([]*assign.Assignment{}, s.cls.SignificantBorder()...)
	if s.stopped {
		border = border[:0]
		for _, b := range s.cls.SignificantBorder() {
			if s.confirmed[b.ID()] {
				border = append(border, b)
			}
		}
	}
	sort.Slice(border, func(i, j int) bool { return border[i].Key() < border[j].Key() })
	res.MSPs = border
	for _, b := range border {
		if s.space.IsValid(b) {
			res.ValidMSPs = append(res.ValidMSPs, b)
		}
	}
	for _, a := range s.tracked {
		if s.cls.Status(a) == assign.Significant {
			res.Significant = append(res.Significant, a)
		}
	}
	sort.Slice(res.Significant, func(i, j int) bool {
		return res.Significant[i].Key() < res.Significant[j].Key()
	})
	return res
}
