package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"oassis/internal/crowd"
	"oassis/internal/vocab"
)

// The paper's prototype persisted CrowdCache in MySQL so answers survive
// across query executions (Section 6.1). This file provides the equivalent:
// a stable JSON snapshot format. Question keys are built from interned term
// IDs, so a snapshot is only valid for the vocabulary it was written under;
// the snapshot embeds a vocabulary fingerprint to catch mismatches.

// cacheSnapshot is the serialized form.
type cacheSnapshot struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"vocabulary_fingerprint"`
	Concrete    []concreteEntry `json:"concrete"`
	Special     []specialEntry  `json:"specialization"`
}

type concreteEntry struct {
	Member   string  `json:"member"`
	Question string  `json:"question"`
	Support  float64 `json:"support"`
	Pruned   []int32 `json:"pruned,omitempty"`
}

type specialEntry struct {
	Member   string  `json:"member"`
	Question string  `json:"question"`
	Index    int     `json:"index"`
	Support  float64 `json:"support"`
	Pruned   []int32 `json:"pruned,omitempty"`
}

// Save writes the cache as JSON. The vocabulary fingerprint ties the
// snapshot to the ontology it was collected under.
func (c *CrowdCache) Save(w io.Writer, v *vocab.Vocabulary) error {
	snap := cacheSnapshot{Version: 1, Fingerprint: vocabFingerprint(v)}
	for k, resp := range c.concrete {
		snap.Concrete = append(snap.Concrete, concreteEntry{
			Member: k.member, Question: k.q,
			Support: resp.Support, Pruned: toInt32(resp.Pruned),
		})
	}
	for k, a := range c.special {
		snap.Special = append(snap.Special, specialEntry{
			Member: k.member, Question: k.q,
			Index: a.idx, Support: a.resp.Support, Pruned: toInt32(a.resp.Pruned),
		})
	}
	// Deterministic output for reproducible snapshots.
	sort.Slice(snap.Concrete, func(i, j int) bool {
		if snap.Concrete[i].Member != snap.Concrete[j].Member {
			return snap.Concrete[i].Member < snap.Concrete[j].Member
		}
		return snap.Concrete[i].Question < snap.Concrete[j].Question
	})
	sort.Slice(snap.Special, func(i, j int) bool {
		if snap.Special[i].Member != snap.Special[j].Member {
			return snap.Special[i].Member < snap.Special[j].Member
		}
		return snap.Special[i].Question < snap.Special[j].Question
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// LoadCrowdCache reads a JSON snapshot written by Save, verifying it was
// collected under the same vocabulary.
func LoadCrowdCache(r io.Reader, v *vocab.Vocabulary) (*CrowdCache, error) {
	var snap cacheSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("crowdcache: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("crowdcache: unsupported snapshot version %d", snap.Version)
	}
	if fp := vocabFingerprint(v); snap.Fingerprint != fp {
		return nil, fmt.Errorf("crowdcache: snapshot was collected under a different vocabulary")
	}
	c := NewCrowdCache()
	for _, e := range snap.Concrete {
		c.concrete[cacheKey{member: e.Member, q: e.Question}] = crowd.Response{
			Support: e.Support, Pruned: fromInt32(e.Pruned),
		}
	}
	for _, e := range snap.Special {
		c.special[cacheKey{member: e.Member, q: e.Question}] = specAnswer{
			idx:  e.Index,
			resp: crowd.Response{Support: e.Support, Pruned: fromInt32(e.Pruned)},
		}
	}
	return c, nil
}

// vocabFingerprint hashes the vocabulary's interned names in ID order (FNV);
// two vocabularies sharing a fingerprint assign identical IDs to identical
// names.
func vocabFingerprint(v *vocab.Vocabulary) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	for i := 0; i < v.NumElements(); i++ {
		mix(v.ElementName(vocab.TermID(i)))
	}
	mix("|")
	for i := 0; i < v.NumRelations(); i++ {
		mix(v.RelationName(vocab.TermID(i)))
	}
	return fmt.Sprintf("%016x", h)
}

func toInt32(ids []vocab.TermID) []int32 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = int32(id)
	}
	return out
}

func fromInt32(ids []int32) []vocab.TermID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]vocab.TermID, len(ids))
	for i, id := range ids {
		out[i] = vocab.TermID(id)
	}
	return out
}
