package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"oassis/internal/assign"
	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/paperdata"
	"oassis/internal/synth"
)

// The tests in this file pin the tentpole invariant of the parallel
// round-selection refactor: EngineConfig.SelectionWorkers shards the
// per-round question selection (and the reply fold at the round barrier)
// across goroutines, yet every externally visible output of a run — the
// MSP sets, the per-member transcripts, the aggregated supports and the
// entire Stats block — must be byte-identical to the serial kernel's.
// Identity, not statistical similarity: the speculative workers must leave
// the kernel's random stream, visit order and settle order exactly as the
// serial loop would have.

// selOracle gives clones of a DAG's ground-truth oracle distinct IDs.
type selOracle struct {
	crowd.Member
	id string
}

func (o selOracle) ID() string { return o.id }

// selFingerprint is everything a caller can observe about a finished run.
type selFingerprint struct {
	msps, valid, sig string
	supports         map[string]float64
	transcripts      map[string][]string
	stats            core.Stats
}

func keyset(as []*assign.Assignment) string {
	keys := make([]string, len(as))
	for i, a := range as {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func fingerprint(res *core.Result) selFingerprint {
	return selFingerprint{
		msps:        keyset(res.MSPs),
		valid:       keyset(res.ValidMSPs),
		sig:         keyset(res.Significant),
		supports:    res.Supports,
		transcripts: res.Transcripts,
		stats:       res.Stats,
	}
}

// diffFingerprints reports the first component where two fingerprints
// disagree, for readable failure messages.
func diffFingerprints(a, b selFingerprint) string {
	switch {
	case a.msps != b.msps:
		return fmt.Sprintf("MSP sets differ:\n%s\nvs\n%s", a.msps, b.msps)
	case a.valid != b.valid:
		return "valid-MSP sets differ"
	case a.sig != b.sig:
		return "significant sets differ"
	case !reflect.DeepEqual(a.supports, b.supports):
		return fmt.Sprintf("support maps differ: %v\nvs\n%v", a.supports, b.supports)
	case !reflect.DeepEqual(a.transcripts, b.transcripts):
		return fmt.Sprintf("transcripts differ:\n%v\nvs\n%v", a.transcripts, b.transcripts)
	case !reflect.DeepEqual(a.stats, b.stats):
		return fmt.Sprintf("stats differ:\n%+v\nvs\n%+v", a.stats, b.stats)
	default:
		return ""
	}
}

// selDAGCache shares immutable DAG spaces across combos (the engine never
// mutates a Space; classification state lives in the per-run kernel).
var selDAGCache = map[synth.DAGConfig]*synth.DAG{}

func selDAG(t *testing.T, cfg synth.DAGConfig) *synth.DAG {
	t.Helper()
	if d, ok := selDAGCache[cfg]; ok {
		return d
	}
	d, err := synth.NewDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	selDAGCache[cfg] = d
	return d
}

// TestParallelSelectionTranscriptIdentical sweeps >100 randomized
// scenario combinations — DAG shapes, crowd sizes, aggregator families,
// specialization ratios, pruning oracles, spammers with the consistency
// filter, per-member question caps and top-k stops — and for each one
// requires the 1-, 2- and 8-worker engines to reproduce the serial
// engine's output bit for bit.
func TestParallelSelectionTranscriptIdentical(t *testing.T) {
	dags := []synth.DAGConfig{
		{Width: 12, Depth: 3, MSPPercent: 0.10, Places: 2, Seed: 3},
		{Width: 18, Depth: 3, MSPPercent: 0.05, Places: 1, Seed: 4},
		{Width: 24, Depth: 4, MSPPercent: 0.08, Places: 2, Seed: 5},
	}
	type aggMaker struct {
		name string
		mk   func(k int, theta float64) crowd.Aggregator
	}
	aggs := []aggMaker{
		{"mean", func(k int, th float64) crowd.Aggregator { return crowd.NewMeanAggregator(k, th) }},
		{"majority", func(k int, th float64) crowd.Aggregator { return crowd.NewMajorityAggregator(k, th) }},
		{"trust", func(k int, th float64) crowd.Aggregator { return crowd.NewTrustWeightedAggregator(k, th) }},
	}
	crowds := []int{2, 3, 5, 9}

	// Mixed-radix enumeration over the first three dimensions covers every
	// (dag, aggregator, crowd) pairing; a seeded rng scatters the rest so
	// they do not correlate with the enumerated digits.
	aux := rand.New(rand.NewSource(99))
	const combos = 108 // 3 dags × 3 aggregators × 4 crowd sizes × 3 repeats
	totalMSPs, totalQuestions := 0, 0
	for i := 0; i < combos; i++ {
		j := i
		dagCfg := dags[j%len(dags)]
		j /= len(dags)
		agg := aggs[j%len(aggs)]
		j /= len(aggs)
		members := crowds[j%len(crowds)]

		spec := []float64{0, 0.15, 0.5}[aux.Intn(3)]
		prune := []float64{0, 0, 0.3}[aux.Intn(3)]
		maxQ := []int{0, 0, 7}[aux.Intn(3)]
		topk := []int{0, 0, 2}[aux.Intn(3)]
		consist := aux.Intn(3) == 0
		quorum := 2 + aux.Intn(2)
		if quorum > members {
			quorum = members
		}
		seed := int64(100 + i)

		d := selDAG(t, dagCfg)
		theta := d.Query.Satisfying.Support
		name := fmt.Sprintf("%03d-%s-m%d-w%dd%d", i, agg.name, members, dagCfg.Width, dagCfg.Depth)
		t.Run(name, func(t *testing.T) {
			run := func(workers int) *core.Result {
				pool := make([]crowd.Member, members)
				for m := range pool {
					pool[m] = selOracle{Member: d.Oracle(prune, int64(m+1)), id: fmt.Sprintf("m%d", m)}
				}
				if consist && members > 2 {
					// One spammer for the consistency filter to chew on.
					pool[members-1] = crowd.NewSpammer(fmt.Sprintf("m%d", members-1), seed)
				}
				cfg := core.EngineConfig{
					Theta:                 theta,
					Aggregator:            agg.mk(quorum, theta),
					SpecializationRatio:   spec,
					MaxQuestionsPerMember: maxQ,
					MaxMSPs:               topk,
					Seed:                  seed,
					RecordTranscript:      true,
					SelectionWorkers:      workers,
				}
				if consist {
					cfg.Consistency = true
					cfg.CalibrationQuestions = 2
				}
				return core.NewEngine(d.Space, pool, cfg).Run()
			}
			ref := fingerprint(run(0))
			totalMSPs += len(strings.Split(ref.msps, "\n"))
			totalQuestions += ref.stats.Questions
			for _, w := range []int{1, 2, 8} {
				if got := fingerprint(run(w)); !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d diverged from serial: %s", w, diffFingerprints(got, ref))
				}
			}
		})
	}
	// The sweep must not be vacuous.
	if totalMSPs == 0 || totalQuestions == 0 {
		t.Fatalf("degenerate sweep: %d MSPs, %d questions across all combos", totalMSPs, totalQuestions)
	}
}

// TestParallelSelectionChaosVirtualClock replays a fault-injected crowd —
// fixed think times, one chronic straggler who exceeds the answer
// deadline until dropped, and two mid-run departures — on a virtual clock,
// and requires the sharded engines to reproduce the serial run exactly,
// including the timeout/departure bookkeeping in Stats.
func TestParallelSelectionChaosVirtualClock(t *testing.T) {
	run := func(workers int) *core.Result {
		sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
		clock := chaos.NewVirtualClock()
		faults := make([]chaos.Faults, 8)
		for i := range faults {
			faults[i].LatencyMin = 20 * time.Second
		}
		faults[2].LatencyMin = 2 * time.Minute // always over the deadline
		faults[1].DepartAfter = 2
		faults[5].DepartAfter = 4
		members := chaosCrowd(v, clock, faults)
		return core.NewEngine(sp, members, core.EngineConfig{
			Theta:            0.4,
			Aggregator:       crowd.NewMeanAggregator(5, 0.4),
			Seed:             3,
			AnswerDeadline:   time.Minute,
			Clock:            clock,
			RecordTranscript: true,
			SelectionWorkers: workers,
		}).Run()
	}
	ref := fingerprint(run(0))
	if ref.stats.Departures == 0 {
		t.Fatal("chaos scenario exercised no departures")
	}
	if ref.stats.TimedOut == 0 {
		t.Fatal("chaos scenario exercised no answer timeouts")
	}
	for _, w := range []int{2, 8} {
		if got := fingerprint(run(w)); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverged from serial under chaos: %s", w, diffFingerprints(got, ref))
		}
	}
}

// opaqueAgg hides an aggregator's ReadSnapshotter extension, forcing the
// kernel's serial fallback.
type opaqueAgg struct{ inner crowd.Aggregator }

func (o opaqueAgg) Add(id assign.NodeID, m string, s float64) { o.inner.Add(id, m, s) }
func (o opaqueAgg) Decide(id assign.NodeID) crowd.Decision    { return o.inner.Decide(id) }
func (o opaqueAgg) Answers(id assign.NodeID) int              { return o.inner.Answers(id) }
func (o opaqueAgg) Support(id assign.NodeID) float64          { return o.inner.Support(id) }
func (o opaqueAgg) Quota() int {
	return o.inner.(interface{ Quota() int }).Quota()
}

// TestParallelSelectionFallbackGates: an aggregator that does not promise
// snapshot-read safety must silently disable speculative selection, and
// the result must still match the serial run (because the fallback IS the
// serial path).
func TestParallelSelectionFallbackGates(t *testing.T) {
	d := selDAG(t, synth.DAGConfig{Width: 12, Depth: 3, MSPPercent: 0.10, Places: 2, Seed: 3})
	theta := d.Query.Satisfying.Support
	run := func(workers int, wrap bool) *core.Result {
		pool := make([]crowd.Member, 4)
		for m := range pool {
			pool[m] = selOracle{Member: d.Oracle(0, int64(m+1)), id: fmt.Sprintf("m%d", m)}
		}
		var agg crowd.Aggregator = crowd.NewMeanAggregator(3, theta)
		if wrap {
			agg = opaqueAgg{inner: agg}
		}
		return core.NewEngine(d.Space, pool, core.EngineConfig{
			Theta:               theta,
			Aggregator:          agg,
			SpecializationRatio: 0.15,
			Seed:                11,
			RecordTranscript:    true,
			SelectionWorkers:    workers,
		}).Run()
	}
	ref := fingerprint(run(0, false))
	for _, wrap := range []bool{false, true} {
		if got := fingerprint(run(8, wrap)); !reflect.DeepEqual(got, ref) {
			t.Fatalf("wrap=%v diverged from serial: %s", wrap, diffFingerprints(got, ref))
		}
	}
}
