package core_test

import (
	"bytes"
	"strings"
	"testing"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
)

func TestCachePersistRoundTrip(t *testing.T) {
	v, _ := paperdata.Build()
	cache := core.NewCrowdCache()
	member := cache.Wrap(newAvgMember(v))
	fs1 := ontology.NewFactSet(paperdata.Fact(v, "Biking", "doAt", "Central Park"))
	fs2 := ontology.NewFactSet(paperdata.Fact(v, "Pasta", "eatAt", "Pine"))
	r1 := member.AskConcrete(fs1)
	_ = member.AskConcrete(fs2)
	idx, _ := member.AskSpecialize(fs1, []ontology.FactSet{fs2})

	var buf bytes.Buffer
	if err := cache.Save(&buf, v); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadCrowdCache(bytes.NewReader(buf.Bytes()), v)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != cache.Size() {
		t.Fatalf("round trip size %d != %d", loaded.Size(), cache.Size())
	}
	// Replays hit the loaded cache without touching the member.
	replay := loaded.Wrap(failingMember{})
	if got := replay.AskConcrete(fs1); got.Support != r1.Support {
		t.Errorf("replayed support %v != %v", got.Support, r1.Support)
	}
	if gotIdx, _ := replay.AskSpecialize(fs1, []ontology.FactSet{fs2}); gotIdx != idx {
		t.Errorf("replayed specialization index %d != %d", gotIdx, idx)
	}
	if loaded.Hits != 2 || loaded.Misses != 0 {
		t.Errorf("hits=%d misses=%d, want 2/0", loaded.Hits, loaded.Misses)
	}
}

func TestCachePersistVocabularyMismatch(t *testing.T) {
	v, _ := paperdata.Build()
	cache := core.NewCrowdCache()
	member := cache.Wrap(newAvgMember(v))
	member.AskConcrete(ontology.NewFactSet(paperdata.Fact(v, "Biking", "doAt", "Central Park")))

	var buf bytes.Buffer
	if err := cache.Save(&buf, v); err != nil {
		t.Fatal(err)
	}
	// A different vocabulary must be rejected.
	v2, _, err := ontology.Load(strings.NewReader("a subClassOf b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadCrowdCache(bytes.NewReader(buf.Bytes()), v2); err == nil {
		t.Fatal("snapshot accepted under a different vocabulary")
	}
}

func TestLoadCrowdCacheMalformed(t *testing.T) {
	v, _ := paperdata.Build()
	if _, err := core.LoadCrowdCache(strings.NewReader("not json"), v); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
	if _, err := core.LoadCrowdCache(strings.NewReader(`{"version": 9}`), v); err == nil {
		t.Fatal("future version accepted")
	}
}

// failingMember panics on any question: replays must never reach it.
type failingMember struct{}

func (failingMember) ID() string { return "u_avg" }

func (failingMember) AskConcrete(ontology.FactSet) crowd.Response {
	panic("live question on a replay")
}

func (failingMember) AskSpecialize(ontology.FactSet, []ontology.FactSet) (int, crowd.Response) {
	panic("live question on a replay")
}
