package core

import (
	"sort"
	"strings"

	"oassis/internal/crowd"
	"oassis/internal/ontology"
)

// CrowdCache stores the answers collected from crowd members so that
// re-evaluating a query with a different support threshold can replay them
// instead of asking again (Section 6.3: "the crowd answers are independent
// of the threshold"). It wraps members transparently: the engine counts
// every answer it consumes (matching the paper's accounting, which counts
// "only the answers used by the algorithm out of the cached ones"), while
// the cache tracks how many reached a live member.
type CrowdCache struct {
	concrete map[cacheKey]crowd.Response
	special  map[cacheKey]specAnswer

	// Hits and Misses count lookups served from the cache vs forwarded
	// to the live member.
	Hits   int
	Misses int
}

type cacheKey struct {
	member string
	q      string
}

type specAnswer struct {
	idx  int
	resp crowd.Response
}

// NewCrowdCache returns an empty answer cache.
func NewCrowdCache() *CrowdCache {
	return &CrowdCache{
		concrete: make(map[cacheKey]crowd.Response),
		special:  make(map[cacheKey]specAnswer),
	}
}

// Wrap returns a member view that consults the cache before the live member.
func (c *CrowdCache) Wrap(m crowd.Member) crowd.Member {
	return &cachedMember{inner: m, cache: c}
}

// Size returns the number of distinct cached answers.
func (c *CrowdCache) Size() int { return len(c.concrete) + len(c.special) }

type cachedMember struct {
	inner crowd.Member
	cache *CrowdCache
}

func (m *cachedMember) ID() string { return m.inner.ID() }

func (m *cachedMember) AskConcrete(fs ontology.FactSet) crowd.Response {
	k := cacheKey{member: m.inner.ID(), q: factSetKey(fs)}
	if resp, ok := m.cache.concrete[k]; ok {
		m.cache.Hits++
		return resp
	}
	m.cache.Misses++
	resp := m.inner.AskConcrete(fs)
	if resp.Departed {
		// A departure is an absence, not an answer: caching it would make
		// replays depart at the wrong moments.
		return resp
	}
	m.cache.concrete[k] = resp
	return resp
}

func (m *cachedMember) AskSpecialize(base ontology.FactSet, candidates []ontology.FactSet) (int, crowd.Response) {
	var sb strings.Builder
	sb.WriteString(factSetKey(base))
	sb.WriteByte('|')
	keys := make([]string, len(candidates))
	for i, c := range candidates {
		keys[i] = factSetKey(c)
	}
	// Candidate order may differ between runs; canonicalize the key but
	// remember the original positions to translate the cached index.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	for _, i := range order {
		sb.WriteString(keys[i])
		sb.WriteByte(';')
	}
	k := cacheKey{member: m.inner.ID(), q: sb.String()}
	if a, ok := m.cache.special[k]; ok {
		m.cache.Hits++
		if a.idx < 0 {
			return -1, a.resp
		}
		// a.idx indexes the canonical order; map back.
		return order[a.idx], a.resp
	}
	m.cache.Misses++
	idx, resp := m.inner.AskSpecialize(base, candidates)
	if resp.Departed {
		return idx, resp
	}
	stored := specAnswer{idx: -1, resp: resp}
	if idx >= 0 {
		for ci, oi := range order {
			if oi == idx {
				stored.idx = ci
				break
			}
		}
	}
	m.cache.special[k] = stored
	return idx, resp
}

// factSetKey builds a canonical string identity for a fact-set question.
func factSetKey(fs ontology.FactSet) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(itoa(int(f.S)))
		sb.WriteByte('.')
		sb.WriteString(itoa(int(f.P)))
		sb.WriteByte('.')
		sb.WriteString(itoa(int(f.O)))
		sb.WriteByte(',')
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
