package core

import (
	"sync"
	"sync/atomic"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/ontology"
)

// RunParallel runs the multi-user evaluation with member sessions served
// concurrently, the way the paper's QueueManager serves simultaneous web
// sessions (Section 6.1): engine state (classifiers, aggregator, caches) is
// guarded by one mutex, while the member interactions themselves — the slow
// part with a real crowd — happen outside the lock. Results are equivalent
// to Run up to answer arrival order; determinism is traded for throughput.
func (e *Engine) RunParallel(workers int) *Result {
	if workers <= 1 || len(e.users) == 1 {
		return e.Run()
	}
	if e.checker != nil && e.cfg.CalibrationQuestions > 0 {
		e.mu.Lock()
		e.calibrate()
		e.mu.Unlock()
	}
	// Rounds with a barrier: every member gets at most one question per
	// round, workers own disjoint member shards (so one member is only
	// ever served by one goroutine, and members need not be thread-safe),
	// and the run ends only when a whole round makes no progress anywhere
	// — one member's answers can unlock regions for another.
	for {
		var wg sync.WaitGroup
		var progress atomic.Bool
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(e.users); i += workers {
					u := e.users[i]
					if e.userDone(u) {
						continue
					}
					if e.stepUserLocked(u) {
						progress.Store(true)
					}
					e.reviewBans(u)
				}
			}(w)
		}
		wg.Wait()
		if !progress.Load() {
			break
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.finalize()
	return e.result()
}

func (e *Engine) userDone(u *userState) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if u.banned || u.departed || e.stopped {
		return true
	}
	return e.cfg.MaxQuestionsPerMember > 0 && u.asked >= e.cfg.MaxQuestionsPerMember
}

func (e *Engine) reviewBans(u *userState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.checker != nil && !u.banned && e.checker.IsSpammer(u.member.ID()) {
		u.banned = true
		if tw, ok := e.agg.(*crowd.TrustWeightedAggregator); ok {
			tw.SetTrust(u.member.ID(), 0)
		}
	}
}

// stepUserLocked is stepUser with the ask-the-member step performed outside
// the engine lock: the traversal picks the question under the lock, the
// member answers unlocked, and the answer is recorded under the lock again.
// The chosen assignment may have been settled by another member in the
// meantime; the answer is still recorded (it arrived, as it would from a
// real crowd) but cannot flip the frozen decision.
func (e *Engine) stepUserLocked(u *userState) bool {
	e.mu.Lock()
	kind, target, base, open := e.nextQuestion(u)
	if kind == noQuestion {
		e.mu.Unlock()
		return false
	}
	// Instantiate while still under the lock (space access), then ask
	// without it.
	var (
		baseFS  ontology.FactSet
		cands   []ontology.FactSet
		askedFS ontology.FactSet
	)
	switch kind {
	case concreteQuestion:
		askedFS = e.space.Instantiate(target)
	case specializationQuestion:
		baseFS = e.space.Instantiate(base)
		cands = make([]ontology.FactSet, len(open))
		for i, o := range open {
			cands[i] = e.space.Instantiate(o)
		}
	}
	e.mu.Unlock()

	switch kind {
	case concreteQuestion:
		start := e.clock.Now()
		resp := u.member.AskConcrete(askedFS)
		e.mu.Lock()
		if !e.answerUsable(u, start, resp.Departed) {
			e.mu.Unlock()
			return true
		}
		u.asked++
		e.stats.Questions++
		e.stats.ConcreteQ++
		if len(resp.Pruned) > 0 {
			e.stats.PruneClicks++
			for _, t := range resp.Pruned {
				u.pruned[t] = true
			}
		}
		e.recordAnswer(u, target, resp.Support, false)
		e.tracker.sample(&e.stats)
		e.mu.Unlock()
	case specializationQuestion:
		start := e.clock.Now()
		idx, resp := u.member.AskSpecialize(baseFS, cands)
		e.mu.Lock()
		if !e.answerUsable(u, start, resp.Departed) {
			e.mu.Unlock()
			return true
		}
		u.asked++
		e.stats.Questions++
		e.stats.SpecialQ++
		if idx < 0 {
			e.stats.NoneOfThese++
			e.stats.AutoAnswers += len(open) - 1
			for _, o := range open {
				e.recordAnswer(u, o, 0, true)
			}
		} else {
			e.recordAnswer(u, open[idx], resp.Support, false)
		}
		e.tracker.sample(&e.stats)
		e.mu.Unlock()
	}
	return true
}

type questionKind uint8

const (
	noQuestion questionKind = iota
	concreteQuestion
	specializationQuestion
)

// nextQuestion is the traversal of stepUser without the asking: it returns
// the next question for the member, or noQuestion. Callers hold e.mu.
func (e *Engine) nextQuestion(u *userState) (questionKind, *assign.Assignment, *assign.Assignment, []*assign.Assignment) {
	queue := e.roots()
	seen := make(map[string]bool, len(queue))
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		if seen[a.Key()] {
			continue
		}
		seen[a.Key()] = true

		if e.globalStatus(a) == assign.Insignificant {
			continue
		}
		if e.globalStatus(a) == assign.Significant {
			if u.answeredYes(a.Key(), e.cfg.Theta) {
				if base, open := e.specializationAt(u, a); base != nil {
					return specializationQuestion, nil, base, open
				}
			}
			queue = append(queue, e.successors(a)...)
			continue
		}
		if _, answered := u.answers[a.Key()]; !answered {
			if e.assignmentPruned(u, a) {
				e.recordAnswer(u, a, 0, true)
				continue
			}
			return concreteQuestion, a, nil, nil
		}
		if u.answeredYes(a.Key(), e.cfg.Theta) {
			if base, open := e.specializationAt(u, a); base != nil {
				return specializationQuestion, nil, base, open
			}
			queue = append(queue, e.successors(a)...)
		}
	}
	return noQuestion, nil, nil, nil
}

// specializationAt mirrors maybeSpecialize's candidate collection without
// asking; it returns (nil, nil) when the dice or the candidates say no.
func (e *Engine) specializationAt(u *userState, base *assign.Assignment) (*assign.Assignment, []*assign.Assignment) {
	if e.cfg.SpecializationRatio <= 0 || e.rng.Float64() >= e.cfg.SpecializationRatio {
		return nil, nil
	}
	var open []*assign.Assignment
	for _, succ := range e.successors(base) {
		if e.globalStatus(succ) != assign.Unknown {
			continue
		}
		if _, answered := u.answers[succ.Key()]; answered {
			continue
		}
		if e.assignmentPruned(u, succ) {
			e.recordAnswer(u, succ, 0, true)
			continue
		}
		open = append(open, succ)
	}
	if len(open) < 2 {
		return nil, nil
	}
	return base, open
}
