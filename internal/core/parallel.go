package core

import (
	"sync"

	"oassis/internal/crowd"
)

// RunParallel runs the multi-user evaluation with member interactions
// served concurrently, the way the paper's QueueManager serves
// simultaneous web sessions (Section 6.1). It is the worker-pool driver
// over the same kernel as Run: each bulk-synchronous round's questions
// (at most one per member, so members need not be thread-safe) are
// dispatched across the pool, and the replies are folded back in ask
// order at the barrier. Because question selection and answer folding
// are the kernel's and happen outside the pool, the parallel engine is
// behaviorally identical to Run — only wall-clock time differs.
func (e *Engine) RunParallel(workers int) *Result {
	if workers <= 1 || len(e.members) == 1 {
		return e.Run()
	}
	b := crowd.NewMemberBroker(e.members, e.clock.Now)
	b.Metrics = e.k.cfg.Obs.BrokerSet()
	return e.drive(func(asks []*crowd.Ask) []crowd.Reply {
		replies := make([]crowd.Reply, len(asks))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(asks); i += workers {
					i := i
					b.Post(asks[i], func(r crowd.Reply) {
						replies[i] = r
					})
				}
			}(w)
		}
		wg.Wait()
		return replies
	})
}
