package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// journalFixtureEvents exercises every field shape the encoder handles:
// negative choices, shortest-round-trip floats, pruned slices, escaped
// strings, and zero values that must be omitted and decode back to zero.
func journalFixtureEvents() []Event {
	return []Event{
		{Kind: EvRunStart, Run: 1, Members: []string{"u1", `u"2\n`}, Seed: -7, Theta: 0.4},
		{Kind: EvAsk, Run: 1, Round: 1, Ask: 42, Member: "u1", QKind: "specialize",
			Key: "s=1;", Probe: true, Options: 3},
		{Kind: EvReply, Run: 1, Round: 1, Ask: 42, Member: "u1", Outcome: "answered",
			Support: 0.1 + 0.2, Choice: -1, Pruned: []int32{3, -9}, Elapsed: 1500},
		{Kind: EvTimeout, Run: 1, Round: 2, Ask: 43, Member: "u1", Outcome: "answered",
			Elapsed: 9e9, Struck: true},
		{Kind: EvDeparture, Run: 1, Round: 2, Ask: 44, Member: "u1", Outcome: "departed"},
		{Kind: EvMSP, Run: 1, Round: 3, Key: "s=1;p=2;", Questions: 17},
		{Kind: EvRoundEnd, Run: 1, Round: 3, Asks: 5, Replies: 5, Border: 2,
			Questions: 17, NewMSPs: 1, NewAnswers: 4},
		{Kind: EvRunEnd, Run: 1, Rounds: 3, Questions: 17},
		{Kind: EvStoreHit, Member: "u1", Key: "q\tkey"},
		{Kind: EvQueryExec, Run: 2, Key: "q0001", Elapsed: 12345, Hit: true, Rows: 99},
	}
}

// TestJournalEventJSONRoundTrip pins the wire format: the hand-rolled
// encoder must produce JSON that encoding/json decodes back into an
// identical Event, including float round-trips and escaped strings.
func TestJournalEventJSONRoundTrip(t *testing.T) {
	for i, want := range journalFixtureEvents() {
		want.Seq = int64(i)
		want.At = int64(i) * 1000
		line := appendEventJSON(nil, &want)
		var got Event
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("event %d: invalid JSON %q: %v", i, line, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("event %d round-trip diverged:\nencoded: %s\nwant %+v\ngot  %+v",
				i, line, want, got)
		}
	}
}

// TestJournalJSONLDeterminism pins byte-level determinism: recording the
// same events twice produces identical JSONL, and ReadJournalJSONL decodes
// the stream back to the recorded events.
func TestJournalJSONLDeterminism(t *testing.T) {
	write := func() (string, []Event) {
		j := NewJournal(64)
		var sink bytes.Buffer
		j.SetSink(&sink)
		for _, e := range journalFixtureEvents() {
			j.record(e)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return sink.String(), j.Events()
	}
	out1, evs := write()
	out2, _ := write()
	if out1 != out2 {
		t.Fatalf("JSONL output is not deterministic:\n%s\nvs\n%s", out1, out2)
	}
	decoded, err := ReadJournalJSONL(strings.NewReader(out1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, decoded) {
		t.Fatalf("sink decode diverged from ring:\nring: %+v\ndecoded: %+v", evs, decoded)
	}
	var buf bytes.Buffer
	j := NewJournal(64)
	for _, e := range journalFixtureEvents() {
		j.record(e)
	}
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != out1 {
		t.Fatalf("WriteJSONL diverged from sink output:\n%s\nvs\n%s", buf.String(), out1)
	}
}

// TestJournalRingOverwrite checks wraparound accounting: a ring of n keeps
// the newest n events in order, counts drops, while a sink still sees all.
func TestJournalRingOverwrite(t *testing.T) {
	j := NewJournal(4)
	var sink bytes.Buffer
	j.SetSink(&sink)
	for i := 0; i < 10; i++ {
		j.record(Event{Kind: EvAsk, Ask: int64(i)})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Total() != 10 || j.Dropped() != 6 {
		t.Fatalf("Total=%d Dropped=%d, want 10/6", j.Total(), j.Dropped())
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Ask != int64(6+i) || e.Seq != int64(6+i) {
			t.Fatalf("event %d: ask=%d seq=%d, want %d", i, e.Ask, e.Seq, 6+i)
		}
	}
	if tail := j.Tail(2); len(tail) != 2 || tail[1].Ask != 9 {
		t.Fatalf("Tail(2) = %+v", tail)
	}
	all, err := ReadJournalJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("sink saw %d events, want all 10", len(all))
	}
}

// TestJournalClockAndCurve drives one synthetic run through the journal's
// run lifecycle on an explicit clock and checks the arrival curve buckets.
func TestJournalClockAndCurve(t *testing.T) {
	now := time.Unix(100, 0)
	j := NewJournal(0)
	j.BindClock(func() time.Time { return now })

	run := j.StartRun([]string{"u1", "u2"}, 9, 0.3)
	if run != 1 {
		t.Fatalf("run = %d, want 1", run)
	}
	if j.LastRun() != 1 {
		t.Fatalf("LastRun = %d", j.LastRun())
	}
	now = now.Add(5 * time.Millisecond)
	j.NoteNewAnswer(run)
	j.NoteNewAnswer(run)
	j.MSPEvent(run, 1, "k1", 2)
	j.RoundEnd(run, 1, 2, 2, 1, 2)
	j.NoteNewAnswer(run)
	j.EndRun(run, 2, 3)

	curve := j.Curve(run)
	want := []CurvePoint{
		{Round: 1, Questions: 2, NewMSPs: 1, NewAnswers: 2, MSPs: 1, Answers: 2},
		{Round: 2, Questions: 3, NewAnswers: 1, MSPs: 1, Answers: 3},
	}
	if !reflect.DeepEqual(curve, want) {
		t.Fatalf("curve = %+v, want %+v", curve, want)
	}

	evs := j.Events()
	if evs[0].Kind != EvRunStart || evs[0].At != 0 {
		t.Fatalf("run_start = %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != EvRunEnd || last.At != int64(5*time.Millisecond) {
		t.Fatalf("run_end = %+v", last)
	}
}

// TestJournalCurveEviction checks the per-run curve bound: curves past
// maxJournalCurves are evicted oldest-first, newest runs stay queryable.
func TestJournalCurveEviction(t *testing.T) {
	j := NewJournal(0)
	var last int64
	for i := 0; i < maxJournalCurves+5; i++ {
		last = j.StartRun([]string{"u"}, 1, 0.5)
		j.NoteNewAnswer(last)
		j.RoundEnd(last, 1, 1, 1, 0, 1)
	}
	if j.Curve(1) != nil {
		t.Fatal("oldest curve survived past the bound")
	}
	if c := j.Curve(last); len(c) != 1 || c[0].NewAnswers != 1 {
		t.Fatalf("newest curve = %+v", c)
	}
}

// TestJournalNilSafety: every method must be a no-op on a nil journal.
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.BindClock(time.Now)
	j.SetSink(&bytes.Buffer{})
	run := j.StartRun([]string{"u"}, 1, 0.5)
	j.AskEvent(run, 1, 1, "u", "concrete", "k", false, 0)
	j.ReplyEvent(run, 1, 1, "u", "answered", 0.5, -1, nil, 0, "")
	j.TimeoutEvent(run, 1, 1, "u", "answered", 0, -1, nil, 0, false)
	j.DepartureEvent(run, 1, 1, "u", "departed", 0, -1, nil, 0)
	j.MSPEvent(run, 1, "k", 1)
	j.NoteNewAnswer(run)
	j.RoundEnd(run, 1, 1, 1, 0, 1)
	j.StoreEvent(EvStoreHit, "u", "k")
	j.QueryExec(run, "q", 1, false, 1)
	j.EndRun(run, 1, 1)
	if j.Events() != nil || j.Curve(run) != nil || j.Total() != 0 || j.LastRun() != 0 {
		t.Fatal("nil journal retained state")
	}
	if err := j.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalConcurrentRecord hammers the ring and the sink from many
// goroutines; run under -race this pins the locking discipline, and the
// sequence numbers must come out dense and unique.
func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(128)
	var sink bytes.Buffer
	j.SetSink(&sink)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := j.StartRun([]string{fmt.Sprintf("w%d", w)}, int64(w), 0.5)
			for i := 0; i < per; i++ {
				j.AskEvent(run, 1, int64(i), "m", "concrete", "k", false, 0)
				j.NoteNewAnswer(run)
			}
			j.RoundEnd(run, 1, per, per, 0, per)
			j.EndRun(run, 1, per)
		}(w)
	}
	wg.Wait()
	const wantTotal = workers * (per + 3) // run_start + asks + round_end + run_end
	if j.Total() != wantTotal {
		t.Fatalf("Total = %d, want %d", j.Total(), wantTotal)
	}
	all, err := ReadJournalJSONL(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != wantTotal {
		t.Fatalf("sink saw %d events, want %d", len(all), wantTotal)
	}
	seen := make(map[int64]bool, len(all))
	for _, e := range all {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if int64(len(seen)) != wantTotal || seen[wantTotal] {
		t.Fatal("sequence numbers are not dense")
	}
}

// TestScoreboardSnapshot feeds a board by hand and checks the derived
// rates, quantiles and Prometheus families.
func TestScoreboardSnapshot(t *testing.T) {
	r := NewRegistry()
	b := NewScoreboard(r)
	for i := 0; i < 4; i++ {
		b.Asked("u1")
	}
	b.Reply("u1", 0.8, 0.010)
	b.Reply("u1", 0.4, 0.030)
	b.Timeout("u1", false)
	b.Timeout("u1", true)
	b.Departure("u1")
	b.Agree("u1", true)
	b.Agree("u1", true)
	b.Agree("u1", false)
	b.Asked("u2")
	b.Ban("u2")
	b.Ban("u2") // second ban must not double-count the metric

	cards := b.Snapshot()
	if len(cards) != 2 || cards[0].Member != "u1" || cards[1].Member != "u2" {
		t.Fatalf("snapshot = %+v", cards)
	}
	u1 := cards[0]
	if u1.Asked != 4 || u1.Answered != 2 || u1.Timeouts != 2 || u1.Strikes != 1 || !u1.Departed {
		t.Fatalf("u1 counts = %+v", u1)
	}
	if u1.TimeoutRate != 0.5 {
		t.Fatalf("TimeoutRate = %v", u1.TimeoutRate)
	}
	if diff := u1.MeanSupport - 0.6; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("MeanSupport = %v", u1.MeanSupport)
	}
	if diff := u1.Agreement - 2.0/3.0; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("Agreement = %v", u1.Agreement)
	}
	if u1.P50Latency <= 0 || u1.P95Latency < u1.P50Latency || u1.P99Latency < u1.P95Latency {
		t.Fatalf("latency quantiles not ordered: %+v", u1)
	}
	u2 := cards[1]
	if !u2.Banned || u2.Agreement != -1 {
		t.Fatalf("u2 = %+v", u2)
	}

	var prom bytes.Buffer
	r.WritePrometheus(&prom)
	text := prom.String()
	for _, want := range []string{
		`oassis_member_replies_total{member="u1",outcome="answered"} 2`,
		`oassis_member_replies_total{member="u1",outcome="timedout"} 2`,
		`oassis_member_strikes_total{member="u1"} 1`,
		`oassis_member_bans_total{member="u2"} 1`,
		`oassis_member_agreement_total{member="u1",verdict="agreed"} 2`,
		`oassis_member_round_trip_seconds_p50{member="u1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	var nilBoard *Scoreboard
	nilBoard.Asked("x")
	nilBoard.Reply("x", 1, 1)
	nilBoard.Timeout("x", true)
	nilBoard.Departure("x")
	nilBoard.Ban("x")
	nilBoard.Agree("x", true)
	if nilBoard.Snapshot() != nil {
		t.Fatal("nil scoreboard returned cards")
	}
}

// TestHistogramQuantile pins the linear-interpolation estimator on a
// hand-checkable distribution.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 10 observations in (0,1], 10 in (1,2]; none beyond.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if q := h.Quantile(0.25); q != 0.5 {
		t.Fatalf("Quantile(0.25) = %v, want 0.5 (middle of first bucket)", q)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("Quantile(0.5) = %v, want 1 (first bucket boundary)", q)
	}
	if q := h.Quantile(0.75); q != 1.5 {
		t.Fatalf("Quantile(0.75) = %v, want 1.5", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("Quantile(1) = %v, want 2", q)
	}
	// Overflow observations clamp to the last finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("overflow Quantile = %v, want clamp to last bound", q)
	}
	var hnil *Histogram
	if hnil.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile")
	}
	if NewHistogram([]float64{1}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
}
