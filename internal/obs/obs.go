// Package obs is the observability substrate of the OASSIS engine: atomic
// counters, gauges and fixed-bucket histograms collected in a Registry with
// a Prometheus text exporter, plus span-style query traces recorded into a
// ring buffer (trace.go) and per-subsystem metric sets (sets.go).
//
// The package is built around one contract: **disabled observability costs a
// nil check and nothing else**. Every metric set is a pointer whose methods
// are nil-receiver safe, so an uninstrumented engine carries nil pointers and
// each would-be instrumentation point reduces to a single predictable branch.
// No global state, no background goroutines, no allocation on the hot path:
// counters and gauges are single atomic words, histogram observation is one
// atomic add into a fixed bucket array, and span recording reuses a
// preallocated ring.
//
// obs deliberately imports nothing outside the standard library, so every
// layer of the engine (assign, sparql, ontology, crowd, core, server) can
// depend on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the histogram bounds used for every
// duration-in-seconds histogram: 100µs to 10s, roughly exponential.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultSizeBuckets are the bounds used for count-valued histograms
// (questions per round, border sizes).
var DefaultSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket histogram with atomic bucket counts. Bounds
// are upper bounds in ascending order; observations above the last bound
// land in the implicit +Inf bucket. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Branchless-enough linear scan: bucket arrays are small (≤ ~20).
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the p-quantile (p clamped to [0,1]) by linear
// interpolation within the bucket holding the rank — the standard
// fixed-bucket estimator (what PromQL's histogram_quantile computes
// server-side). Observations in the +Inf overflow bucket are reported as
// the last finite bound: the estimator cannot see past its buckets.
// Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one named entry of a Registry.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
}

// Registry holds named metrics and renders them in Prometheus text format.
// Lookups are get-or-create: asking twice for the same name returns the same
// metric, so sessions and servers can share one registry safely.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

func (r *Registry) getOrCreate(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.getOrCreate(name, func() metric {
		return &namedCounter{name: name, help: help}
	})
	nc, ok := m.(*namedCounter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	return &nc.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.getOrCreate(name, func() metric {
		return &namedGauge{name: name, help: help}
	})
	ng, ok := m.(*namedGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	return &ng.g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later bounds are ignored for an existing histogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.getOrCreate(name, func() metric {
		return &namedHistogram{name: name, help: help, h: NewHistogram(bounds)}
	})
	nh, ok := m.(*namedHistogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	return nh.h
}

// GaugeFunc registers a pull-style gauge evaluated at scrape time — the
// bridge for subsystems that keep their own cheap counters (the assign
// interner, the ontology closure index) and should not pay a push per event.
// Re-registering a name replaces its function, so a new session can rebind
// the space gauges without error.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.getOrCreate(name, func() metric {
		return &funcGauge{name: name, help: help}
	})
	fg, ok := m.(*funcGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	fg.mu.Lock()
	fg.fn = fn
	fg.mu.Unlock()
}

// CounterVec returns the named labeled counter family, creating it on first
// use. labels are the label keys, in render order.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	m := r.getOrCreate(name, func() metric {
		return &CounterVec{name: name, help: help, labels: labels, m: make(map[string]*vecEntry)}
	})
	cv, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	return cv
}

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	m := r.getOrCreate(name, func() metric {
		return &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, m: make(map[string]*vecHistEntry)}
	})
	hv, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type", name))
	}
	return hv
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.ordered...)
	r.mu.Unlock()
	for _, m := range ms {
		m.writeProm(w)
	}
}

// --- concrete registry entries ---

type namedCounter struct {
	name, help string
	c          Counter
}

func (n *namedCounter) metricName() string { return n.name }
func (n *namedCounter) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
		n.name, n.help, n.name, n.name, n.c.Value())
}

type namedGauge struct {
	name, help string
	g          Gauge
}

func (n *namedGauge) metricName() string { return n.name }
func (n *namedGauge) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
		n.name, n.help, n.name, n.name, n.g.Value())
}

type funcGauge struct {
	name, help string
	mu         sync.Mutex
	fn         func() float64
}

func (n *funcGauge) metricName() string { return n.name }
func (n *funcGauge) writeProm(w io.Writer) {
	n.mu.Lock()
	fn := n.fn
	n.mu.Unlock()
	var v float64
	if fn != nil {
		v = fn()
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		n.name, n.help, n.name, n.name, formatFloat(v))
}

type namedHistogram struct {
	name, help string
	h          *Histogram
}

func (n *namedHistogram) metricName() string { return n.name }
func (n *namedHistogram) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n.name, n.help, n.name)
	writeHistogramLines(w, n.name, "", n.h)
}

// writeHistogramLines emits the cumulative _bucket/_sum/_count series.
// extraLabels, when non-empty, is a pre-rendered `k="v"` list without braces.
func writeHistogramLines(w io.Writer, name, extraLabels string, h *Histogram) {
	cum := int64(0)
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, extraLabels+sep, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels+sep, cum)
	if extraLabels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, extraLabels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
	if h.Count() == 0 {
		return
	}
	// Pre-interpolated quantile gauges, so scrapers without PromQL (and
	// the scorecards endpoint) get p50/p95/p99 directly.
	for _, q := range quantileSeries {
		if extraLabels != "" {
			fmt.Fprintf(w, "%s_%s{%s} %s\n", name, q.suffix, extraLabels, formatFloat(h.Quantile(q.p)))
		} else {
			fmt.Fprintf(w, "%s_%s %s\n", name, q.suffix, formatFloat(h.Quantile(q.p)))
		}
	}
}

var quantileSeries = []struct {
	suffix string
	p      float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// --- labeled families ---

type vecEntry struct {
	values []string
	c      *Counter
}

// CounterVec is a family of counters distinguished by label values — the
// minimal slice of Prometheus's labeled metrics the server endpoints need.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	m          map[string]*vecEntry
}

// With returns the counter for the given label values (one per label key,
// in key order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.m[key]
	if !ok {
		e = &vecEntry{values: append([]string(nil), values...), c: &Counter{}}
		v.m[key] = e
	}
	return e.c
}

func (v *CounterVec) metricName() string { return v.name }
func (v *CounterVec) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	for _, e := range v.sortedEntries() {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, renderLabels(v.labels, e.values), e.c.Value())
	}
}

func (v *CounterVec) sortedEntries() []*vecEntry {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*vecEntry, 0, len(v.m))
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, v.m[k])
	}
	return out
}

type vecHistEntry struct {
	values []string
	h      *Histogram
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64
	mu         sync.Mutex
	m          map[string]*vecHistEntry
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	e, ok := v.m[key]
	if !ok {
		e = &vecHistEntry{values: append([]string(nil), values...), h: NewHistogram(v.bounds)}
		v.m[key] = e
	}
	return e.h
}

func (v *HistogramVec) metricName() string { return v.name }
func (v *HistogramVec) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]*vecHistEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, v.m[k])
	}
	v.mu.Unlock()
	for _, e := range entries {
		writeHistogramLines(w, v.name, renderLabels(v.labels, e.values), e.h)
	}
}

// renderLabels renders `k1="v1",k2="v2"` (no braces). Values are escaped per
// the exposition format.
func renderLabels(keys, values []string) string {
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(val))
		sb.WriteString(`"`)
	}
	return sb.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
