package obs

// The scoreboard maintains per-member quality and latency profiles — the
// inputs OASSIS-style question routing needs at production scale: who
// answers fast, who times out, who departs mid-run, who contradicts the
// aggregate. It is fed from the kernel's journal emit points (and costs
// nothing when disabled: a nil *Scoreboard is a no-op), keeps a latency
// histogram per member for quantile estimates, and exposes both a JSON
// snapshot (the server's GET /members) and oassis_member_* Prometheus
// families when built over a Registry.

import (
	"sort"
	"sync"
)

// memberCard is the mutable per-member accumulator.
type memberCard struct {
	asked     int64
	answered  int64
	timeouts  int64
	strikes   int64
	departed  bool
	banned    bool
	agreed    int64
	disagreed int64
	supSum    float64
	latency   *Histogram // seconds
}

// MemberScorecard is one member's profile snapshot.
type MemberScorecard struct {
	Member      string  `json:"member"`
	Asked       int64   `json:"asked"`
	Answered    int64   `json:"answered"`
	Timeouts    int64   `json:"timeouts"`
	Strikes     int64   `json:"strikes"`
	Departed    bool    `json:"departed"`
	Banned      bool    `json:"banned"`
	TimeoutRate float64 `json:"timeout_rate"` // timeouts / asked
	MeanSupport float64 `json:"mean_support"` // over usable answers
	// Agreement is the fraction of settled questions where the member's
	// verdict (support >= theta) matched the aggregate decision; -1 when
	// no question the member answered has settled yet.
	Agreement   float64 `json:"agreement"`
	MeanLatency float64 `json:"mean_latency_s"`
	P50Latency  float64 `json:"p50_latency_s"`
	P95Latency  float64 `json:"p95_latency_s"`
	P99Latency  float64 `json:"p99_latency_s"`
}

// Scoreboard tracks per-member scorecards. Construct with NewScoreboard
// (pass a Registry to also export oassis_member_* metric families, or nil
// for a standalone board). A nil *Scoreboard is a no-op on every method.
type Scoreboard struct {
	mu      sync.Mutex
	members map[string]*memberCard

	// Prometheus families; nil when the board is standalone.
	latencyVec *HistogramVec // label: member
	repliesVec *CounterVec   // labels: member, outcome
	agreeVec   *CounterVec   // labels: member, verdict
	strikesVec *CounterVec   // label: member
	bansVec    *CounterVec   // label: member
}

// NewScoreboard returns a scoreboard; r may be nil for a board without
// Prometheus export.
func NewScoreboard(r *Registry) *Scoreboard {
	b := &Scoreboard{members: make(map[string]*memberCard)}
	if r != nil {
		b.latencyVec = r.HistogramVec("oassis_member_round_trip_seconds",
			"Per-member question round-trip latency.", DefaultLatencyBuckets, "member")
		b.repliesVec = r.CounterVec("oassis_member_replies_total",
			"Per-member reply outcomes folded by the kernel.", "member", "outcome")
		b.agreeVec = r.CounterVec("oassis_member_agreement_total",
			"Per-member settled-question verdicts vs the aggregate decision.", "member", "verdict")
		b.strikesVec = r.CounterVec("oassis_member_strikes_total",
			"Per-member timeout strikes.", "member")
		b.bansVec = r.CounterVec("oassis_member_bans_total",
			"Members banned for contradictory answer patterns.", "member")
	}
	return b
}

// card returns the member's accumulator, creating it on first use.
// Caller holds b.mu.
func (b *Scoreboard) card(member string) *memberCard {
	c := b.members[member]
	if c == nil {
		c = &memberCard{latency: NewHistogram(DefaultLatencyBuckets)}
		b.members[member] = c
	}
	return c
}

// Asked records one question issued to the member.
func (b *Scoreboard) Asked(member string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.card(member).asked++
	b.mu.Unlock()
}

// Reply records one usable answer: its support and round-trip seconds.
func (b *Scoreboard) Reply(member string, support, seconds float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	c := b.card(member)
	c.answered++
	c.supSum += support
	c.latency.Observe(seconds)
	b.mu.Unlock()
	b.latencyVec.With(member).Observe(seconds)
	b.repliesVec.With(member, "answered").Inc()
}

// Timeout records one timed-out question; struck reports whether it
// struck the member out of the run.
func (b *Scoreboard) Timeout(member string, struck bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	c := b.card(member)
	c.timeouts++
	if struck {
		c.strikes++
	}
	b.mu.Unlock()
	b.repliesVec.With(member, "timedout").Inc()
	if struck {
		b.strikesVec.With(member).Inc()
	}
}

// Departure marks the member as departed.
func (b *Scoreboard) Departure(member string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.card(member).departed = true
	b.mu.Unlock()
	b.repliesVec.With(member, "departed").Inc()
}

// Ban marks the member as banned for contradictory answers.
func (b *Scoreboard) Ban(member string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	c := b.card(member)
	first := !c.banned
	c.banned = true
	b.mu.Unlock()
	if first {
		b.bansVec.With(member).Inc()
	}
}

// Agree records whether the member's verdict on a settled question
// matched the aggregate decision.
func (b *Scoreboard) Agree(member string, agree bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	c := b.card(member)
	verdict := "disagreed"
	if agree {
		c.agreed++
		verdict = "agreed"
	} else {
		c.disagreed++
	}
	b.mu.Unlock()
	b.agreeVec.With(member, verdict).Inc()
}

// Snapshot returns every member's scorecard, sorted by member name.
func (b *Scoreboard) Snapshot() []MemberScorecard {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]MemberScorecard, 0, len(b.members))
	for name, c := range b.members {
		sc := MemberScorecard{
			Member:    name,
			Asked:     c.asked,
			Answered:  c.answered,
			Timeouts:  c.timeouts,
			Strikes:   c.strikes,
			Departed:  c.departed,
			Banned:    c.banned,
			Agreement: -1,
		}
		if c.asked > 0 {
			sc.TimeoutRate = float64(c.timeouts) / float64(c.asked)
		}
		if c.answered > 0 {
			sc.MeanSupport = c.supSum / float64(c.answered)
		}
		if settled := c.agreed + c.disagreed; settled > 0 {
			sc.Agreement = float64(c.agreed) / float64(settled)
		}
		if n := c.latency.Count(); n > 0 {
			sc.MeanLatency = c.latency.Sum() / float64(n)
			sc.P50Latency = c.latency.Quantile(0.50)
			sc.P95Latency = c.latency.Quantile(0.95)
			sc.P99Latency = c.latency.Quantile(0.99)
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}
