package obs

// The journal is the engine's flight recorder: an append-only,
// sequence-numbered stream of structured crowd-run events (run start,
// every ask, every reply/timeout/departure with its raw payload, MSP
// confirmations, round barriers) recorded into a fixed-capacity ring with
// an optional JSONL sink. It follows the Tracer's design points exactly —
// one mutex, a preallocated ring, hand-rolled stable-field-order JSON so
// output is byte-deterministic, and an explicit clock hook so chaos
// VirtualClock runs journal reproducible timestamps. A nil *Journal is a
// no-op on every method, preserving the package's disabled-costs-a-nil-
// check contract.
//
// Because the mining kernel is a pure event fold, the recorded reply
// payloads are sufficient to re-run it: internal/journal.Replay feeds the
// stream back through the kernel and asserts the reconstruction is
// byte-identical to the live run. Replay identity deliberately does not
// depend on the At timestamps — they are observability, not state.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Event kinds. The string values are the wire format of the "kind" field.
const (
	EvRunStart     = "run_start"
	EvAsk          = "ask"
	EvReply        = "reply"
	EvTimeout      = "timeout"
	EvDeparture    = "departure"
	EvMSP          = "msp_confirmed"
	EvRoundEnd     = "round_end"
	EvRunEnd       = "run_end"
	EvStoreHit     = "store_hit"
	EvStoreMiss    = "store_miss"
	EvStoreJoin    = "store_join"
	EvStoreExpired = "store_expired"
	EvQueryExec    = "query_exec"
)

// Event is one journal entry. The struct is flat across all kinds: each
// kind populates its subset of fields and the encoder skips zero values,
// so decoding with encoding/json round-trips exactly (a missing field is
// the zero value). At is nanoseconds since the journal clock was bound —
// informational only; replay identity never reads it.
type Event struct {
	Seq  int64  `json:"seq"`
	Run  int64  `json:"run"`
	At   int64  `json:"at_ns"`
	Kind string `json:"kind"`

	// run_start
	Members []string `json:"members,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
	Theta   float64  `json:"theta,omitempty"`

	// ask / reply / timeout / departure
	Round   int    `json:"round,omitempty"`
	Ask     int64  `json:"ask,omitempty"`
	Member  string `json:"member,omitempty"`
	QKind   string `json:"qkind,omitempty"`   // "concrete" | "specialize"
	Key     string `json:"key,omitempty"`     // node / question / MSP / query key
	Probe   bool   `json:"probe,omitempty"`   // probe concrete ask
	Options int    `json:"options,omitempty"` // specialization option count

	// reply payload (raw broker fields, required for replay)
	Outcome string  `json:"outcome,omitempty"` // "answered" | "timedout" | "departed"
	Support float64 `json:"support,omitempty"`
	Choice  int     `json:"choice,omitempty"`
	Pruned  []int32 `json:"pruned,omitempty"`
	Elapsed int64   `json:"elapsed_ns,omitempty"`
	Disp    string  `json:"disp,omitempty"`   // "discarded" when folded after stop
	Struck  bool    `json:"struck,omitempty"` // timeout that struck the member out

	// round_end / run_end / msp_confirmed
	Asks       int   `json:"asks,omitempty"`
	Replies    int   `json:"replies,omitempty"`
	Border     int   `json:"border,omitempty"`
	Questions  int64 `json:"questions,omitempty"`
	NewMSPs    int   `json:"new_msps,omitempty"`
	NewAnswers int   `json:"new_answers,omitempty"`
	Rounds     int   `json:"rounds,omitempty"`

	// query_exec
	Hit  bool  `json:"hit,omitempty"`
	Rows int64 `json:"rows,omitempty"`
}

// CurvePoint is one round bucket of a run's answer-arrival curve: how many
// new MSP confirmations and new distinct answers the round's questions
// bought, plus the cumulative totals — the raw material for the
// species-style completeness estimators of "Getting It All from the Crowd".
type CurvePoint struct {
	Round      int   `json:"round"`
	Questions  int64 `json:"questions"` // cumulative usable answers at round end
	NewMSPs    int   `json:"new_msps"`
	NewAnswers int   `json:"new_answers"`
	MSPs       int   `json:"msps"`    // cumulative confirmed MSPs
	Answers    int   `json:"answers"` // cumulative distinct questions answered
}

// curveAcc accumulates one run's arrival curve between round barriers.
type curveAcc struct {
	points     []CurvePoint
	newMSPs    int
	newAnswers int
	msps       int
	answers    int
}

// DefaultJournalCapacity is the ring size used when NewJournal gets n <= 0.
const DefaultJournalCapacity = 65536

// maxJournalCurves bounds the per-run curve accumulators held in memory;
// the oldest run's curve is evicted when a newer run starts past the bound.
const maxJournalCurves = 64

// Journal records crowd-run events. Construct with NewJournal (or
// Observer.EnableJournal), optionally attach a JSONL sink with SetSink,
// and bind the engine clock with BindClock. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Journal struct {
	mu        sync.Mutex
	nowFn     func() time.Time
	epoch     time.Time
	haveEpoch bool
	ring      []Event
	next      int
	total     int64
	dropped   int64
	seq       int64
	runSeq    int64
	sink      *bufio.Writer
	sinkErr   error
	scratch   []byte
	curves    map[int64]*curveAcc
	curveIDs  []int64 // insertion order, for bounded eviction
}

// NewJournal returns a journal with the given ring capacity
// (DefaultJournalCapacity if n <= 0).
func NewJournal(n int) *Journal {
	if n <= 0 {
		n = DefaultJournalCapacity
	}
	return &Journal{
		ring:   make([]Event, 0, n),
		curves: make(map[int64]*curveAcc),
	}
}

// SetSink attaches a JSONL sink: every event is additionally encoded and
// buffered to w as it is recorded, so a run longer than the ring is still
// fully journaled on disk. EndRun flushes the buffer; call Flush for
// mid-run durability. The first write error is sticky (see Err).
func (j *Journal) SetSink(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = bufio.NewWriterSize(w, 1<<16)
	j.sinkErr = nil
	j.mu.Unlock()
}

// Flush flushes the JSONL sink buffer, returning the sticky sink error.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sink != nil && j.sinkErr == nil {
		j.sinkErr = j.sink.Flush()
	}
	return j.sinkErr
}

// Err returns the first sink write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinkErr
}

// BindClock binds the time source used for event timestamps — the engine
// driver passes its (possibly virtual) clock's Now, so chaos runs produce
// deterministic At offsets. The epoch is captured at first bind; events
// recorded before any bind carry At = 0.
func (j *Journal) BindClock(now func() time.Time) {
	if j == nil || now == nil {
		return
	}
	j.mu.Lock()
	j.nowFn = now
	if !j.haveEpoch {
		j.epoch = now()
		j.haveEpoch = true
	}
	j.mu.Unlock()
}

// at returns the current timestamp offset. Caller holds j.mu.
func (j *Journal) at() int64 {
	if j.nowFn == nil || !j.haveEpoch {
		return 0
	}
	return j.nowFn().Sub(j.epoch).Nanoseconds()
}

// record stamps, rings and sinks one event. Caller must NOT hold j.mu.
func (j *Journal) record(e Event) {
	j.mu.Lock()
	e.Seq = j.seq
	j.seq++
	e.At = j.at()
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, e)
	} else {
		j.ring[j.next] = e
		j.dropped++
	}
	j.next++
	if j.next == cap(j.ring) {
		j.next = 0
	}
	j.total++
	if j.sink != nil && j.sinkErr == nil {
		j.scratch = appendEventJSON(j.scratch[:0], &e)
		j.scratch = append(j.scratch, '\n')
		if _, err := j.sink.Write(j.scratch); err != nil {
			j.sinkErr = err
		}
	}
	j.mu.Unlock()
}

// StartRun opens a new run scope and returns its journal-local run ID
// (1-based, monotonic). members is the run's member list in index order;
// seed and theta pin the kernel configuration the stream was recorded
// under, so a replay can cross-check it.
func (j *Journal) StartRun(members []string, seed int64, theta float64) int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	j.runSeq++
	run := j.runSeq
	j.curves[run] = &curveAcc{}
	j.curveIDs = append(j.curveIDs, run)
	if len(j.curveIDs) > maxJournalCurves {
		delete(j.curves, j.curveIDs[0])
		j.curveIDs = j.curveIDs[1:]
	}
	j.mu.Unlock()
	j.record(Event{
		Run:     run,
		Kind:    EvRunStart,
		Members: append([]string(nil), members...),
		Seed:    seed,
		Theta:   theta,
	})
	return run
}

// EndRun closes a run scope: any arrival-curve deltas not yet flushed by a
// round barrier (finalize-time settles) land in one final bucket, the
// run_end event is recorded, and the JSONL sink is flushed.
func (j *Journal) EndRun(run int64, rounds int, questions int64) {
	if j == nil || run == 0 {
		return
	}
	j.mu.Lock()
	if c := j.curves[run]; c != nil && (c.newMSPs > 0 || c.newAnswers > 0) {
		j.flushCurveLocked(c, rounds, questions)
	}
	j.mu.Unlock()
	j.record(Event{Run: run, Kind: EvRunEnd, Rounds: rounds, Questions: questions})
	j.Flush()
}

// flushCurveLocked folds the accumulated deltas into a CurvePoint. Caller
// holds j.mu.
func (j *Journal) flushCurveLocked(c *curveAcc, round int, questions int64) {
	c.msps += c.newMSPs
	c.answers += c.newAnswers
	c.points = append(c.points, CurvePoint{
		Round:      round,
		Questions:  questions,
		NewMSPs:    c.newMSPs,
		NewAnswers: c.newAnswers,
		MSPs:       c.msps,
		Answers:    c.answers,
	})
	c.newMSPs, c.newAnswers = 0, 0
}

// AskEvent records one question issued by the kernel.
func (j *Journal) AskEvent(run int64, round int, ask int64, member, qkind, key string, probe bool, options int) {
	if j == nil {
		return
	}
	j.record(Event{
		Run: run, Kind: EvAsk, Round: round, Ask: ask, Member: member,
		QKind: qkind, Key: key, Probe: probe, Options: options,
	})
}

// ReplyEvent records one usable (or post-stop discarded) reply with its
// raw broker payload. disp is "" for a folded reply, "discarded" for a
// reply consumed after the kernel stopped.
func (j *Journal) ReplyEvent(run int64, round int, ask int64, member, outcome string, support float64, choice int, pruned []int32, elapsed int64, disp string) {
	if j == nil {
		return
	}
	j.record(Event{
		Run: run, Kind: EvReply, Round: round, Ask: ask, Member: member,
		Outcome: outcome, Support: support, Choice: choice,
		Pruned: append([]int32(nil), pruned...), Elapsed: elapsed, Disp: disp,
	})
}

// TimeoutEvent records a reply the kernel treated as timed out — either a
// broker-reported timeout or an answered reply that overran the configured
// deadline (the raw outcome is preserved so replay re-derives the same
// classification). struck reports whether this timeout struck the member
// out of the run.
func (j *Journal) TimeoutEvent(run int64, round int, ask int64, member, outcome string, support float64, choice int, pruned []int32, elapsed int64, struck bool) {
	if j == nil {
		return
	}
	j.record(Event{
		Run: run, Kind: EvTimeout, Round: round, Ask: ask, Member: member,
		Outcome: outcome, Support: support, Choice: choice,
		Pruned: append([]int32(nil), pruned...), Elapsed: elapsed, Struck: struck,
	})
}

// DepartureEvent records a reply reporting member departure.
func (j *Journal) DepartureEvent(run int64, round int, ask int64, member, outcome string, support float64, choice int, pruned []int32, elapsed int64) {
	if j == nil {
		return
	}
	j.record(Event{
		Run: run, Kind: EvDeparture, Round: round, Ask: ask, Member: member,
		Outcome: outcome, Support: support, Choice: choice,
		Pruned: append([]int32(nil), pruned...), Elapsed: elapsed,
	})
}

// MSPEvent records one confirmed maximal significant pattern and credits
// the run's arrival curve. questions is the usable-answer count at
// confirmation time — the x-axis of the arrival curve.
func (j *Journal) MSPEvent(run int64, round int, key string, questions int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if c := j.curves[run]; c != nil {
		c.newMSPs++
	}
	j.mu.Unlock()
	j.record(Event{Run: run, Kind: EvMSP, Round: round, Key: key, Questions: questions})
}

// NoteNewAnswer credits one newly-discovered distinct answer (the first
// usable answer for a question) to the run's arrival curve. It records no
// event — the reply event already carries the answer.
func (j *Journal) NoteNewAnswer(run int64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if c := j.curves[run]; c != nil {
		c.newAnswers++
	}
	j.mu.Unlock()
}

// RoundEnd records a round barrier and flushes the round's arrival-curve
// deltas into a CurvePoint. questions is the cumulative usable-answer
// count after the round.
func (j *Journal) RoundEnd(run int64, round, asks, replies, border int, questions int64) {
	if j == nil {
		return
	}
	var newMSPs, newAnswers int
	j.mu.Lock()
	if c := j.curves[run]; c != nil {
		newMSPs, newAnswers = c.newMSPs, c.newAnswers
		j.flushCurveLocked(c, round, questions)
	}
	j.mu.Unlock()
	j.record(Event{
		Run: run, Kind: EvRoundEnd, Round: round, Asks: asks, Replies: replies,
		Border: border, Questions: questions, NewMSPs: newMSPs, NewAnswers: newAnswers,
	})
}

// StoreEvent records one shared-answer-platform store interaction
// (EvStoreHit / EvStoreMiss / EvStoreJoin / EvStoreExpired) for the given
// member and question key.
func (j *Journal) StoreEvent(kind, member, key string) {
	if j == nil {
		return
	}
	j.record(Event{Kind: kind, Member: member, Key: key})
}

// QueryExec records one fleet query execution: its normalized key, wall
// time, whether the compile was a plan-cache hit, the rows streamed into
// space construction, and — when the execution went on to mine — the
// journal run ID of the mining run, joining per-query cost attribution to
// the run's question spend.
func (j *Journal) QueryExec(run int64, key string, elapsed int64, hit bool, rows int64) {
	if j == nil {
		return
	}
	j.record(Event{Run: run, Kind: EvQueryExec, Key: key, Elapsed: elapsed, Hit: hit, Rows: rows})
}

// Curve returns the run's arrival curve (nil if the run is unknown or was
// evicted by the per-run bound).
func (j *Journal) Curve(run int64) []CurvePoint {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	c := j.curves[run]
	if c == nil {
		return nil
	}
	return append([]CurvePoint(nil), c.points...)
}

// LastRun returns the ID of the most recently started run (0 before any
// StartRun).
func (j *Journal) LastRun() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runSeq
}

// Events returns the surviving events in record order (oldest first).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	if len(j.ring) < cap(j.ring) || j.dropped == 0 {
		out = append(out, j.ring[:len(j.ring)]...)
		return out
	}
	out = append(out, j.ring[j.next:]...)
	out = append(out, j.ring[:j.next]...)
	return out
}

// Tail returns the most recent n surviving events (all of them if n <= 0
// or n exceeds the ring population).
func (j *Journal) Tail(n int) []Event {
	evs := j.Events()
	if n <= 0 || n >= len(evs) {
		return evs
	}
	return evs[len(evs)-n:]
}

// Total returns how many events were ever recorded.
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Dropped returns how many events were overwritten by ring wraparound.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// WriteJSONL writes the surviving ring events, one JSON object per line,
// in the same stable field order the sink uses.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	evs := j.Events()
	var buf []byte
	for i := range evs {
		buf = appendEventJSON(buf[:0], &evs[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTailJSONL writes the most recent n surviving events as JSONL (all
// of them if n <= 0), in the sink's stable field order.
func (j *Journal) WriteTailJSONL(w io.Writer, n int) error {
	if j == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	evs := j.Tail(n)
	var buf []byte
	for i := range evs {
		buf = appendEventJSON(buf[:0], &evs[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- wire format ---

// appendEventJSON encodes e with a fixed field order and omitted zero
// values, matching the struct's json tags so encoding/json decodes it
// back exactly. Floats use strconv 'g' with -1 precision — the shortest
// representation that round-trips bit-exactly, which the replay verifier
// depends on.
func appendEventJSON(b []byte, e *Event) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, e.Seq, 10)
	b = append(b, `,"run":`...)
	b = strconv.AppendInt(b, e.Run, 10)
	b = append(b, `,"at_ns":`...)
	b = strconv.AppendInt(b, e.At, 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, e.Kind)
	if len(e.Members) > 0 {
		b = append(b, `,"members":[`...)
		for i, m := range e.Members {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, m)
		}
		b = append(b, ']')
	}
	if e.Seed != 0 {
		b = append(b, `,"seed":`...)
		b = strconv.AppendInt(b, e.Seed, 10)
	}
	if e.Theta != 0 {
		b = append(b, `,"theta":`...)
		b = strconv.AppendFloat(b, e.Theta, 'g', -1, 64)
	}
	if e.Round != 0 {
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, int64(e.Round), 10)
	}
	if e.Ask != 0 {
		b = append(b, `,"ask":`...)
		b = strconv.AppendInt(b, e.Ask, 10)
	}
	if e.Member != "" {
		b = append(b, `,"member":`...)
		b = appendJSONString(b, e.Member)
	}
	if e.QKind != "" {
		b = append(b, `,"qkind":`...)
		b = appendJSONString(b, e.QKind)
	}
	if e.Key != "" {
		b = append(b, `,"key":`...)
		b = appendJSONString(b, e.Key)
	}
	if e.Probe {
		b = append(b, `,"probe":true`...)
	}
	if e.Options != 0 {
		b = append(b, `,"options":`...)
		b = strconv.AppendInt(b, int64(e.Options), 10)
	}
	if e.Outcome != "" {
		b = append(b, `,"outcome":`...)
		b = appendJSONString(b, e.Outcome)
	}
	if e.Support != 0 {
		b = append(b, `,"support":`...)
		b = strconv.AppendFloat(b, e.Support, 'g', -1, 64)
	}
	if e.Choice != 0 {
		b = append(b, `,"choice":`...)
		b = strconv.AppendInt(b, int64(e.Choice), 10)
	}
	if len(e.Pruned) > 0 {
		b = append(b, `,"pruned":[`...)
		for i, p := range e.Pruned {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(p), 10)
		}
		b = append(b, ']')
	}
	if e.Elapsed != 0 {
		b = append(b, `,"elapsed_ns":`...)
		b = strconv.AppendInt(b, e.Elapsed, 10)
	}
	if e.Disp != "" {
		b = append(b, `,"disp":`...)
		b = appendJSONString(b, e.Disp)
	}
	if e.Struck {
		b = append(b, `,"struck":true`...)
	}
	if e.Asks != 0 {
		b = append(b, `,"asks":`...)
		b = strconv.AppendInt(b, int64(e.Asks), 10)
	}
	if e.Replies != 0 {
		b = append(b, `,"replies":`...)
		b = strconv.AppendInt(b, int64(e.Replies), 10)
	}
	if e.Border != 0 {
		b = append(b, `,"border":`...)
		b = strconv.AppendInt(b, int64(e.Border), 10)
	}
	if e.Questions != 0 {
		b = append(b, `,"questions":`...)
		b = strconv.AppendInt(b, e.Questions, 10)
	}
	if e.NewMSPs != 0 {
		b = append(b, `,"new_msps":`...)
		b = strconv.AppendInt(b, int64(e.NewMSPs), 10)
	}
	if e.NewAnswers != 0 {
		b = append(b, `,"new_answers":`...)
		b = strconv.AppendInt(b, int64(e.NewAnswers), 10)
	}
	if e.Rounds != 0 {
		b = append(b, `,"rounds":`...)
		b = strconv.AppendInt(b, int64(e.Rounds), 10)
	}
	if e.Hit {
		b = append(b, `,"hit":true`...)
	}
	if e.Rows != 0 {
		b = append(b, `,"rows":`...)
		b = strconv.AppendInt(b, e.Rows, 10)
	}
	return append(b, '}')
}

// appendJSONString is writeJSONString for a byte slice.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\t':
			b = append(b, '\\', 't')
		case '\r':
			b = append(b, '\\', 'r')
		default:
			if r < 0x20 {
				b = append(b, fmt.Sprintf(`\u%04x`, r)...)
			} else {
				b = append(b, string(r)...)
			}
		}
	}
	return append(b, '"')
}

// ReadJournalJSONL decodes a journal stream previously written by the
// JSONL sink or WriteJSONL. Blank lines are skipped; a malformed line
// aborts with its line number.
func ReadJournalJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal read: %w", err)
	}
	return out, nil
}
