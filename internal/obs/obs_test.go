package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every nil receiver must be a no-op, not a panic — this is the
	// "disabled = a nil check" contract the whole engine relies on.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
	var tr *Tracer
	tr.SetPhase("x")
	tr.Record("span", 0, time.Millisecond)
	tr.End("span", tr.Begin())
	if tr.Spans() != nil || tr.Summary() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var km *KernelMetrics
	km.RoundComplete(3, 2, time.Millisecond)
	var bm *BrokerMetrics
	bm.Reply(2, time.Second)
	var pm *PlanMetrics
	pm.CompileDone(time.Millisecond)
	pm.EvalDone(10, time.Millisecond)
	var sm *ServerMetrics
	sm.Request("/answer", "200", time.Millisecond)
	var o *Observer
	if o.KernelSet() != nil || o.BrokerSet() != nil || o.PlanSet() != nil ||
		o.ServerSet() != nil || o.Trace() != nil || o.Reg() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registering a counter must return the same instance")
	}
	h1 := r.Histogram("h", "help", DefaultLatencyBuckets)
	h2 := r.Histogram("h", "help", nil)
	if h1 != h2 {
		t.Fatal("re-registering a histogram must return the same instance")
	}
	// GaugeFunc rebinding must replace the function, not panic.
	r.GaugeFunc("gf", "help", func() float64 { return 1 })
	r.GaugeFunc("gf", "help", func() float64 { return 2 })
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "gf 2\n") {
		t.Fatalf("gauge func not rebound:\n%s", buf.String())
	}
	// Type clash panics with a clear message.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on metric type clash")
		}
	}()
	r.Gauge("x_total", "clash")
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("oassis_test_total", "A test counter.").Add(42)
	r.Gauge("oassis_test_gauge", "A test gauge.").Set(-3)
	h := r.Histogram("oassis_test_seconds", "A test histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	cv := r.CounterVec("oassis_test_requests_total", "Labeled.", "path", "code")
	cv.With("/answer", "200").Add(3)
	cv.With("/answer", "409").Inc()
	cv.With(`we"ird`, "200").Inc()
	hv := r.HistogramVec("oassis_test_req_seconds", "Labeled hist.", []float64{1}, "path")
	hv.With("/metrics").Observe(0.5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP oassis_test_total A test counter.",
		"# TYPE oassis_test_total counter",
		"oassis_test_total 42",
		"# TYPE oassis_test_gauge gauge",
		"oassis_test_gauge -3",
		"# TYPE oassis_test_seconds histogram",
		`oassis_test_seconds_bucket{le="0.1"} 1`,
		`oassis_test_seconds_bucket{le="1"} 2`,
		`oassis_test_seconds_bucket{le="+Inf"} 3`,
		"oassis_test_seconds_sum 5.55",
		"oassis_test_seconds_count 3",
		`oassis_test_requests_total{path="/answer",code="200"} 3`,
		`oassis_test_requests_total{path="/answer",code="409"} 1`,
		`oassis_test_requests_total{path="we\"ird",code="200"} 1`,
		`oassis_test_req_seconds_bucket{path="/metrics",le="1"} 1`,
		`oassis_test_req_seconds_bucket{path="/metrics",le="+Inf"} 1`,
		`oassis_test_req_seconds_count{path="/metrics"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestTracerRingAndSummary(t *testing.T) {
	tr := NewTracer(4)
	tr.SetPhase("compile")
	tr.Record("compile", 0, 2*time.Millisecond)
	tr.SetPhase("mine")
	for i := 0; i < 5; i++ {
		tr.Record("round", time.Duration(i)*time.Millisecond, time.Millisecond,
			Attr{Key: "asks", Val: int64(i)})
	}
	// Ring of 4: 6 spans recorded, 2 oldest dropped.
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(spans) = %d, want 4", len(spans))
	}
	// Oldest surviving span must come first.
	if spans[0].Name != "round" || spans[0].Attrs[0].Val != 1 {
		t.Fatalf("ring order wrong: %+v", spans[0])
	}
	sum := tr.Summary()
	if sum.Dropped != 2 {
		t.Fatalf("summary dropped = %d", sum.Dropped)
	}
	if len(sum.Entries) != 1 {
		t.Fatalf("entries = %+v", sum.Entries)
	}
	e := sum.Entries[0]
	if e.Phase != "mine" || e.Name != "round" || e.Count != 4 || e.Total != 4*time.Millisecond {
		t.Fatalf("entry = %+v", e)
	}
	if !strings.Contains(sum.String(), "mine/round") {
		t.Fatalf("summary string: %q", sum.String())
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(16)
	tr.SetPhase("fig5a")
	tr.Record("space", 10*time.Microsecond, 250*time.Microsecond, Attr{Key: "nodes", Val: 99})
	tr.Record(`qu"ote`, 0, time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0]["phase"] != "fig5a" || lines[0]["name"] != "space" {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[0]["dur_us"].(float64) != 250 {
		t.Fatalf("dur_us = %v", lines[0]["dur_us"])
	}
	attrs := lines[0]["attrs"].(map[string]any)
	if attrs["nodes"].(float64) != 99 {
		t.Fatalf("attrs = %v", attrs)
	}
	if lines[1]["name"] != `qu"ote` {
		t.Fatalf("escaping broken: %v", lines[1]["name"])
	}
}

func TestConcurrentUse(t *testing.T) {
	// Counters, histograms, vecs and the tracer must all be safe under
	// concurrent writers with concurrent scrapes (-race covers this).
	o := New()
	var writers sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				o.Registry.WritePrometheus(&buf)
				o.Tracer.Summary()
			}
		}
	}()
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for j := 0; j < 500; j++ {
				o.Kernel.RoundComplete(j%7, j%3, time.Duration(j)*time.Microsecond)
				o.Broker.Reply(j%3, time.Duration(j)*time.Microsecond)
				o.Server.Request("/answer", "200", time.Microsecond)
				o.Tracer.Record("round", 0, time.Microsecond, Attr{Key: "i", Val: int64(i)})
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	<-scraperDone
	if got := o.Kernel.Rounds.Value(); got != 2000 {
		t.Fatalf("rounds = %d, want 2000", got)
	}
	if got := o.Broker.RoundTrip.Count(); got != 2000 {
		t.Fatalf("round trips = %d, want 2000", got)
	}
}

func TestHistogramSumCAS(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Fatalf("sum = %v, want ~8", got)
	}
}

// BenchmarkWritePrometheus measures a full scrape of a fully populated
// observer — the cost a live /metrics poll puts on a running session.
func BenchmarkWritePrometheus(b *testing.B) {
	o := New()
	for i := 0; i < 1000; i++ {
		o.Kernel.Questions.Inc()
		o.Kernel.RoundDur.Observe(float64(i) / 1000)
		o.Broker.RoundTrip.Observe(float64(i) / 500)
		o.Server.Request("/answer", "200", time.Millisecond)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		o.Registry.WritePrometheus(&buf)
	}
	b.ReportMetric(float64(buf.Len()), "scrape_bytes")
}

// BenchmarkDisabledCounter pins the disabled fast path: a nil counter Inc
// must stay a nil check, nothing more.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestTracerConcurrentBeginEnd overwrites a tiny ring from many concurrent
// Begin/End pairs; -race pins the locking discipline, and the survivor and
// drop accounting must balance exactly.
func TestTracerConcurrentBeginEnd(t *testing.T) {
	tr := NewTracer(8)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				start := tr.Begin()
				tr.End("op", start, Attr{Key: "i", Val: int64(i)})
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	for _, s := range spans {
		if s.Name != "op" || len(s.Attrs) != 1 {
			t.Fatalf("corrupted span: %+v", s)
		}
	}
	if got := tr.Dropped(); got != workers*per-8 {
		t.Fatalf("dropped = %d, want %d", got, workers*per-8)
	}
}

// TestTracerDeterministicOutput pins the output contracts downstream
// tooling depends on: Summary entries come out sorted by (phase, name)
// regardless of record order, and two tracers fed the same span sequence
// emit byte-identical JSONL (stable field order, no map iteration).
func TestTracerDeterministicOutput(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer(16)
		tr.SetPhase("zeta")
		tr.Record("late", 0, time.Millisecond)
		tr.Record("early", time.Millisecond, 2*time.Millisecond, Attr{Key: "k", Val: 1})
		tr.SetPhase("alpha")
		tr.Record("late", 2*time.Millisecond, time.Millisecond)
		return tr
	}
	t1, t2 := build(), build()
	var b1, b2 bytes.Buffer
	if err := t1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := t2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("JSONL output not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	sum := t1.Summary()
	var order []string
	for _, e := range sum.Entries {
		order = append(order, e.Phase+"/"+e.Name)
	}
	want := []string{"alpha/late", "zeta/early", "zeta/late"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("summary order = %v, want %v", order, want)
	}
	if sum.String() != t2.Summary().String() {
		t.Fatal("summary rendering not deterministic")
	}
}
