package obs

import "time"

// KernelMetrics instruments the mining kernel: per-round spans, question
// outcome counters, the in-flight gauge and the significant-border size.
// A nil *KernelMetrics is a no-op on every method.
type KernelMetrics struct {
	Rounds     *Counter
	Asks       *Counter
	Replies    *Counter
	Questions  *Counter // usable answers folded into the classifier
	Discarded  *Counter
	Inferred   *Counter // auto-answers derived by monotonicity
	Departures *Counter
	Timeouts   *Counter
	MSPs       *Counter
	// SpecHits/SpecRetries instrument parallel round selection: a hit is a
	// speculative per-member proposal committed as-is, a retry is one that
	// failed commit-time validation and was re-selected serially. They live
	// here (not in core.Stats) so serial and parallel runs keep byte-equal
	// Stats.
	SpecHits    *Counter
	SpecRetries *Counter
	InFlight    *Gauge
	Border      *Gauge
	RoundDur    *Histogram
	RoundAsks   *Histogram
}

// NewKernelMetrics registers the kernel metric family in r.
func NewKernelMetrics(r *Registry) *KernelMetrics {
	return &KernelMetrics{
		Rounds:     r.Counter("oassis_kernel_rounds_total", "Engine rounds completed."),
		Asks:       r.Counter("oassis_kernel_asks_total", "Questions issued to the crowd."),
		Replies:    r.Counter("oassis_kernel_replies_total", "Replies folded into the kernel."),
		Questions:  r.Counter("oassis_kernel_questions_total", "Usable crowd answers recorded."),
		Discarded:  r.Counter("oassis_kernel_discarded_total", "Questions discarded (timeout/departure)."),
		Inferred:   r.Counter("oassis_kernel_inferred_total", "Answers inferred by monotonicity, not asked."),
		Departures: r.Counter("oassis_kernel_departures_total", "Member departures observed."),
		Timeouts:   r.Counter("oassis_kernel_timeouts_total", "Answer deadline timeouts observed."),
		MSPs:       r.Counter("oassis_kernel_msps_total", "Maximal significant patterns confirmed."),
		SpecHits: r.Counter("oassis_kernel_selection_spec_hits_total",
			"Speculative selection proposals committed without re-running."),
		SpecRetries: r.Counter("oassis_kernel_selection_spec_retries_total",
			"Speculative selection proposals invalidated and re-run serially."),
		InFlight: r.Gauge("oassis_kernel_in_flight", "Questions currently awaiting answers."),
		Border:   r.Gauge("oassis_kernel_border_size", "Current significant-border antichain size."),
		RoundDur: r.Histogram("oassis_kernel_round_duration_seconds",
			"Wall-clock (or virtual-clock) duration of each engine round.", DefaultLatencyBuckets),
		RoundAsks: r.Histogram("oassis_kernel_round_asks",
			"Questions issued per engine round.", DefaultSizeBuckets),
	}
}

// nopKernelMetrics backs OrNop: all fields nil, every method a no-op.
var nopKernelMetrics = &KernelMetrics{}

// OrNop returns m, or — when m is nil — a shared set whose counter and
// gauge fields are all nil (and therefore no-ops). Instrumentation call
// sites can then write m.Field.Inc() directly without a per-site guard;
// the nil check lives inside the counter method.
func (m *KernelMetrics) OrNop() *KernelMetrics {
	if m == nil {
		return nopKernelMetrics
	}
	return m
}

// RoundComplete records one finished round: its question count, the border
// size after settling, and its duration on the driving clock.
func (m *KernelMetrics) RoundComplete(asks, border int, dur time.Duration) {
	if m == nil {
		return
	}
	m.Rounds.Inc()
	m.Asks.Add(int64(asks))
	m.RoundAsks.Observe(float64(asks))
	m.Border.Set(int64(border))
	m.RoundDur.Observe(dur.Seconds())
}

// BrokerMetrics instruments crowd brokers: round-trip latency and reply
// outcome counters. A nil *BrokerMetrics is a no-op.
type BrokerMetrics struct {
	Posted    *Counter
	Answered  *Counter
	TimedOut  *Counter
	Departed  *Counter
	RoundTrip *Histogram
}

// NewBrokerMetrics registers the broker metric family in r.
func NewBrokerMetrics(r *Registry) *BrokerMetrics {
	return &BrokerMetrics{
		Posted:   r.Counter("oassis_broker_asks_total", "Questions posted to a broker."),
		Answered: r.Counter("oassis_broker_answered_total", "Broker replies with a usable answer."),
		TimedOut: r.Counter("oassis_broker_timeouts_total", "Broker replies that timed out."),
		Departed: r.Counter("oassis_broker_departures_total", "Broker replies reporting member departure."),
		RoundTrip: r.Histogram("oassis_broker_round_trip_seconds",
			"Question round-trip latency as measured by the broker clock.", DefaultLatencyBuckets),
	}
}

// Reply records one delivered reply: its outcome code (the crowd.Outcome
// integer: 0 answered, 1 timed out, 2 departed) and its measured round trip.
func (m *BrokerMetrics) Reply(outcome int, elapsed time.Duration) {
	if m == nil {
		return
	}
	switch outcome {
	case 1:
		m.TimedOut.Inc()
	case 2:
		m.Departed.Inc()
	default:
		m.Answered.Inc()
	}
	m.RoundTrip.Observe(elapsed.Seconds())
}

// PlanMetrics instruments the SPARQL layer: compile/eval spans and row
// throughput. Per-operator actual cardinalities live on the Plan itself
// (they are per-plan, not global); this set carries the aggregate view.
// A nil *PlanMetrics is a no-op.
type PlanMetrics struct {
	Compiles    *Counter
	Evals       *Counter
	Rows        *Counter
	CacheHits   *Counter
	CacheMisses *Counter
	CompileDur  *Histogram
	EvalDur     *Histogram
}

// NewPlanMetrics registers the sparql metric family in r.
func NewPlanMetrics(r *Registry) *PlanMetrics {
	return &PlanMetrics{
		Compiles:    r.Counter("oassis_sparql_compiles_total", "WHERE clauses compiled to plans."),
		Evals:       r.Counter("oassis_sparql_evals_total", "Plan evaluations."),
		Rows:        r.Counter("oassis_sparql_rows_total", "Result rows produced by plan evaluations."),
		CacheHits:   r.Counter("oassis_sparql_plan_cache_hits_total", "Compiles served from the shared plan cache."),
		CacheMisses: r.Counter("oassis_sparql_plan_cache_misses_total", "Plan cache lookups that had to compile."),
		CompileDur: r.Histogram("oassis_sparql_compile_seconds",
			"WHERE clause compile time.", DefaultLatencyBuckets),
		EvalDur: r.Histogram("oassis_sparql_eval_seconds",
			"Plan evaluation time.", DefaultLatencyBuckets),
	}
}

// CacheHit records one compile served from the shared plan cache.
func (m *PlanMetrics) CacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

// CacheMiss records one plan-cache lookup that fell through to Compile.
func (m *PlanMetrics) CacheMiss() {
	if m == nil {
		return
	}
	m.CacheMisses.Inc()
}

// CompileDone records one compile.
func (m *PlanMetrics) CompileDone(dur time.Duration) {
	if m == nil {
		return
	}
	m.Compiles.Inc()
	m.CompileDur.Observe(dur.Seconds())
}

// EvalDone records one evaluation and the rows it produced.
func (m *PlanMetrics) EvalDone(rows int, dur time.Duration) {
	if m == nil {
		return
	}
	m.Evals.Inc()
	m.Rows.Add(int64(rows))
	m.EvalDur.Observe(dur.Seconds())
}

// ServerMetrics instruments the HTTP crowd platform: per-endpoint request
// counters and latency, plus platform-level question lifecycle counters.
// A nil *ServerMetrics is a no-op.
type ServerMetrics struct {
	Requests   *CounterVec   // labels: path, code
	ReqDur     *HistogramVec // label: path
	Posted     *Counter
	Accepted   *Counter
	Duplicates *Counter
	Stale      *Counter
	Expired    *Counter
	Departed   *Counter
}

// NewServerMetrics registers the HTTP server metric family in r.
func NewServerMetrics(r *Registry) *ServerMetrics {
	return &ServerMetrics{
		Requests: r.CounterVec("oassis_http_requests_total",
			"HTTP requests by endpoint and status code.", "path", "code"),
		ReqDur: r.HistogramVec("oassis_http_request_seconds",
			"HTTP request handling latency by endpoint.", DefaultLatencyBuckets, "path"),
		Posted:     r.Counter("oassis_server_questions_posted_total", "Questions posted to member slots."),
		Accepted:   r.Counter("oassis_server_answers_accepted_total", "Answers accepted."),
		Duplicates: r.Counter("oassis_server_answers_duplicate_total", "Duplicate answers rejected (409)."),
		Stale:      r.Counter("oassis_server_answers_stale_total", "Stale answers rejected (410)."),
		Expired:    r.Counter("oassis_server_questions_expired_total", "Questions expired by the deadline reaper."),
		Departed:   r.Counter("oassis_server_departures_total", "Members reaped as departed."),
	}
}

// nopServerMetrics backs the ServerMetrics OrNop.
var nopServerMetrics = &ServerMetrics{}

// OrNop returns m, or a shared all-nil-field set when m is nil, so server
// handlers can touch counter fields without per-site guards (the vec With
// methods are nil-safe too).
func (m *ServerMetrics) OrNop() *ServerMetrics {
	if m == nil {
		return nopServerMetrics
	}
	return m
}

// Request records one handled HTTP request.
func (m *ServerMetrics) Request(path, code string, dur time.Duration) {
	if m == nil {
		return
	}
	m.Requests.With(path, code).Inc()
	m.ReqDur.With(path).Observe(dur.Seconds())
}

// PlatformMetrics instruments the cross-query answer platform: store
// lookups by outcome (hit / miss / in-flight join), freshness expirations,
// LRU evictions and the store / attached-session gauges. A nil
// *PlatformMetrics is a no-op on every method.
type PlatformMetrics struct {
	Hits     *Counter
	Misses   *Counter
	Joins    *Counter
	Expired  *Counter
	Evicted  *Counter
	Entries  *Gauge
	Sessions *Gauge
}

// NewPlatformMetrics registers the answer-platform metric family in r.
func NewPlatformMetrics(r *Registry) *PlatformMetrics {
	return &PlatformMetrics{
		Hits:     r.Counter("oassis_platform_store_hits_total", "Questions served from the shared answer store."),
		Misses:   r.Counter("oassis_platform_store_misses_total", "Questions forwarded to the crowd (store misses)."),
		Joins:    r.Counter("oassis_platform_dedup_joins_total", "Questions deduplicated onto an identical in-flight ask."),
		Expired:  r.Counter("oassis_platform_store_expired_total", "Cached answers discarded as stale (TTL exceeded)."),
		Evicted:  r.Counter("oassis_platform_store_evicted_total", "Cached answers evicted by the LRU size bound."),
		Entries:  r.Gauge("oassis_platform_store_entries", "Answers currently held by the shared store."),
		Sessions: r.Gauge("oassis_platform_sessions", "Query sessions currently attached to the platform."),
	}
}

// nopPlatformMetrics backs the PlatformMetrics OrNop.
var nopPlatformMetrics = &PlatformMetrics{}

// OrNop returns m, or a shared all-nil-field set when m is nil, so platform
// call sites can touch counter fields without per-site guards.
func (m *PlatformMetrics) OrNop() *PlatformMetrics {
	if m == nil {
		return nopPlatformMetrics
	}
	return m
}

// IngestMetrics instruments N-Triples ingestion: parsed-triple and derived
// fact/label counters, skipped-line counters by reason, malformed-input
// aborts and a wall-clock ingest histogram. A nil *IngestMetrics is a no-op
// on every method, like every other set in this package.
type IngestMetrics struct {
	Triples   *Counter
	Facts     *Counter
	Labels    *Counter
	Skipped   *CounterVec // label: reason (literal | blank)
	Malformed *Counter
	Duration  *Histogram
}

// NewIngestMetrics registers the ontology-ingest metric family in r.
func NewIngestMetrics(r *Registry) *IngestMetrics {
	return &IngestMetrics{
		Triples: r.Counter("oassis_ontology_ingest_triples_total",
			"N-Triples statements parsed during ingestion."),
		Facts: r.Counter("oassis_ontology_ingest_facts_total",
			"Ontology facts derived from ingested triples."),
		Labels: r.Counter("oassis_ontology_ingest_labels_total",
			"Element labels attached during ingestion."),
		Skipped: r.CounterVec("oassis_ontology_ingest_skipped_total",
			"Triples skipped during ingestion by reason.", "reason"),
		Malformed: r.Counter("oassis_ontology_ingest_malformed_total",
			"Ingest runs aborted by a malformed input line."),
		Duration: r.Histogram("oassis_ontology_ingest_seconds",
			"Wall-clock duration of whole ingest runs.", DefaultLatencyBuckets),
	}
}

// LoadDone records one completed ingest run: the parsed/derived/skipped
// counts and its wall-clock duration in seconds.
func (m *IngestMetrics) LoadDone(triples, facts, labels, skippedLiterals, skippedBlank int, seconds float64) {
	if m == nil {
		return
	}
	m.Triples.Add(int64(triples))
	m.Facts.Add(int64(facts))
	m.Labels.Add(int64(labels))
	if skippedLiterals > 0 {
		m.Skipped.With("literal").Add(int64(skippedLiterals))
	}
	if skippedBlank > 0 {
		m.Skipped.With("blank").Add(int64(skippedBlank))
	}
	m.Duration.Observe(seconds)
}

// LoadFailed records one ingest run aborted on malformed input.
func (m *IngestMetrics) LoadFailed() {
	if m == nil {
		return
	}
	m.Malformed.Inc()
}

// Observer bundles a Registry, a Tracer and every subsystem metric set —
// the single handle threaded through the engine via oassis.WithObserver /
// core.EngineConfig.Obs / server.Config.Obs. A nil *Observer disables
// observability end to end; each accessor below returns a nil set whose
// methods are no-ops.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	Kernel   *KernelMetrics
	Broker   *BrokerMetrics
	Plan     *PlanMetrics
	Server   *ServerMetrics
	Platform *PlatformMetrics
	Ingest   *IngestMetrics

	// Journal and Board are opt-in (nil by default, even on a live
	// Observer): the flight recorder and the per-member scorecards cost
	// per-event work the aggregate counters above do not, so they are
	// enabled explicitly via EnableJournal / EnableScorecards.
	Journal *Journal
	Board   *Scoreboard
}

// New returns an Observer with a fresh registry, a default-capacity tracer,
// and every subsystem metric family registered.
func New() *Observer {
	return NewWithCapacity(DefaultTraceCapacity)
}

// NewWithCapacity is New with an explicit trace ring capacity.
func NewWithCapacity(spans int) *Observer {
	r := NewRegistry()
	return &Observer{
		Registry: r,
		Tracer:   NewTracer(spans),
		Kernel:   NewKernelMetrics(r),
		Broker:   NewBrokerMetrics(r),
		Plan:     NewPlanMetrics(r),
		Server:   NewServerMetrics(r),
		Platform: NewPlatformMetrics(r),
		Ingest:   NewIngestMetrics(r),
	}
}

// KernelSet returns the kernel metrics (nil for a nil observer).
func (o *Observer) KernelSet() *KernelMetrics {
	if o == nil {
		return nil
	}
	return o.Kernel
}

// BrokerSet returns the broker metrics (nil for a nil observer).
func (o *Observer) BrokerSet() *BrokerMetrics {
	if o == nil {
		return nil
	}
	return o.Broker
}

// PlanSet returns the sparql metrics (nil for a nil observer).
func (o *Observer) PlanSet() *PlanMetrics {
	if o == nil {
		return nil
	}
	return o.Plan
}

// ServerSet returns the HTTP server metrics (nil for a nil observer).
func (o *Observer) ServerSet() *ServerMetrics {
	if o == nil {
		return nil
	}
	return o.Server
}

// PlatformSet returns the answer-platform metrics (nil for a nil observer).
func (o *Observer) PlatformSet() *PlatformMetrics {
	if o == nil {
		return nil
	}
	return o.Platform
}

// IngestSet returns the ontology-ingest metrics (nil for a nil observer).
func (o *Observer) IngestSet() *IngestMetrics {
	if o == nil {
		return nil
	}
	return o.Ingest
}

// EnableJournal attaches a flight-recorder journal with the given ring
// capacity (DefaultJournalCapacity if n <= 0), returning it. Calling it
// again returns the existing journal.
func (o *Observer) EnableJournal(n int) *Journal {
	if o == nil {
		return nil
	}
	if o.Journal == nil {
		o.Journal = NewJournal(n)
	}
	return o.Journal
}

// EnableScorecards attaches a per-member scoreboard, registering its
// oassis_member_* families, and returns it. Calling it again returns the
// existing board.
func (o *Observer) EnableScorecards() *Scoreboard {
	if o == nil {
		return nil
	}
	if o.Board == nil {
		o.Board = NewScoreboard(o.Registry)
	}
	return o.Board
}

// JournalSet returns the journal (nil when disabled or for a nil observer).
func (o *Observer) JournalSet() *Journal {
	if o == nil {
		return nil
	}
	return o.Journal
}

// BoardSet returns the scoreboard (nil when disabled or for a nil observer).
func (o *Observer) BoardSet() *Scoreboard {
	if o == nil {
		return nil
	}
	return o.Board
}

// Trace returns the tracer (nil for a nil observer).
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Reg returns the registry (nil for a nil observer).
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}
