package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a Span. Values are int64 because every
// span attribute the engine records is a count or an ID; keeping the type
// closed avoids interface boxing on the record path.
type Attr struct {
	Key string
	Val int64
}

// Span is one timed unit of work: a query compile, a space construction, an
// engine round, a full run. Phase groups spans belonging to the same logical
// stage (e.g. a figure ID or "compile"/"mine").
type Span struct {
	Phase string
	Name  string
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration
	Attrs []Attr
}

// Tracer records spans into a fixed-capacity ring buffer. When the ring is
// full the oldest spans are overwritten and Dropped counts them; tracing
// never allocates beyond the ring and never blocks the engine on I/O.
// A nil *Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	phase   string
	ring    []Span
	next    int
	total   int64 // spans ever recorded
	dropped int64
}

// DefaultTraceCapacity is the ring size used by NewTracer and Observer.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer with the given ring capacity (DefaultTraceCapacity
// if n <= 0). The epoch is the construction time; span starts are recorded as
// offsets from it.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, n)}
}

// SetPhase stamps the current phase; spans recorded afterwards carry it.
func (t *Tracer) SetPhase(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phase = phase
	t.mu.Unlock()
}

// Phase returns the current phase ("" for a nil tracer).
func (t *Tracer) Phase() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phase
}

// Begin returns the current offset from the tracer epoch, for pairing with
// End. A nil tracer returns 0.
func (t *Tracer) Begin() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// End records a span started at the offset returned by Begin.
func (t *Tracer) End(name string, start time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.Record(name, start, time.Since(t.epoch)-start, attrs...)
}

// Record appends a span with an explicit start offset and duration — used
// by the engine drivers, whose clocks may be virtual (chaos.VirtualClock).
func (t *Tracer) Record(name string, start, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	s := Span{Name: name, Start: start, Dur: dur, Attrs: attrs}
	t.mu.Lock()
	s.Phase = t.phase
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.dropped++
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the recorded spans in record order (oldest surviving first).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) || t.dropped == 0 {
		out = append(out, t.ring[:len(t.ring)]...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes one JSON object per span:
//
//	{"phase":"fig5a","name":"round","start_us":12,"dur_us":345,"attrs":{"asks":4}}
//
// start_us/dur_us are microseconds; start is relative to the tracer epoch.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		bw.WriteString(`{"phase":`)
		writeJSONString(bw, s.Phase)
		bw.WriteString(`,"name":`)
		writeJSONString(bw, s.Name)
		fmt.Fprintf(bw, `,"start_us":%d,"dur_us":%d`, s.Start.Microseconds(), s.Dur.Microseconds())
		if len(s.Attrs) > 0 {
			bw.WriteString(`,"attrs":{`)
			for i, a := range s.Attrs {
				if i > 0 {
					bw.WriteByte(',')
				}
				writeJSONString(bw, a.Key)
				fmt.Fprintf(bw, `:%d`, a.Val)
			}
			bw.WriteByte('}')
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

func writeJSONString(w *bufio.Writer, s string) {
	w.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '\t':
			w.WriteString(`\t`)
		case '\r':
			w.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(w, `\u%04x`, r)
			} else {
				w.WriteRune(r)
			}
		}
	}
	w.WriteByte('"')
}

// TraceEntry is one (phase, name) aggregate in a TraceSummary.
type TraceEntry struct {
	Phase string
	Name  string
	Count int64
	Total time.Duration
}

// TraceSummary condenses the ring into per-(phase, name) totals — the form
// attached to a Result so callers see where a run's time went without
// holding every span.
type TraceSummary struct {
	Entries []TraceEntry
	Dropped int64 // spans lost to ring wraparound (counts exclude them)
}

// String renders the summary as an aligned table, one line per entry.
func (s *TraceSummary) String() string {
	if s == nil || len(s.Entries) == 0 {
		return "(no spans)"
	}
	var sb strings.Builder
	for _, e := range s.Entries {
		name := e.Name
		if e.Phase != "" {
			name = e.Phase + "/" + e.Name
		}
		fmt.Fprintf(&sb, "%-32s %6d × %12s total\n", name, e.Count, e.Total.Round(time.Microsecond))
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d spans dropped by ring wraparound)\n", s.Dropped)
	}
	return sb.String()
}

// Summary aggregates the surviving spans by (phase, name), ordered by first
// appearance of each pair. A nil tracer returns nil.
func (t *Tracer) Summary() *TraceSummary {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	type key struct{ phase, name string }
	idx := make(map[key]int)
	sum := &TraceSummary{Dropped: t.Dropped()}
	for _, s := range spans {
		k := key{s.Phase, s.Name}
		i, ok := idx[k]
		if !ok {
			i = len(sum.Entries)
			idx[k] = i
			sum.Entries = append(sum.Entries, TraceEntry{Phase: s.Phase, Name: s.Name})
		}
		sum.Entries[i].Count++
		sum.Entries[i].Total += s.Dur
	}
	sort.SliceStable(sum.Entries, func(i, j int) bool {
		if sum.Entries[i].Phase != sum.Entries[j].Phase {
			return sum.Entries[i].Phase < sum.Entries[j].Phase
		}
		return sum.Entries[i].Name < sum.Entries[j].Name
	})
	return sum
}
