package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/paperdata"
	"oassis/internal/server"
)

// TestIntrospectionEndpoints drives a full crowd run over HTTP with the
// journal and scorecards enabled, then checks the three introspection
// endpoints against the finished run: /status carries kernel counters and
// the arrival-curve tail, /members the per-member scorecards, /journal the
// event tail as JSONL in the canonical wire format.
func TestIntrospectionEndpoints(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	o := oassis.NewObserver()
	o.EnableJournal(0)
	o.EnableScorecards()
	srv := server.New(server.Config{
		MinMembers:    2,
		AnswerTimeout: 10 * time.Second,
		Obs:           o,
	})
	sess, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithObserver(o),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	du1, du2 := paperdata.Table3(v)
	m1 := oassis.NewSimMember("u1", v, du1, 1)
	m2 := oassis.NewSimMember("u2", v, du2, 2)
	m1.Scale = nil
	m2.Scale = nil
	clients := []*client{
		{t: t, base: ts.URL, id: "u1", member: m1, v: v},
		{t: t, base: ts.URL, id: "u2", member: m2, v: v},
	}
	for _, c := range clients {
		if resp, body := c.do("POST", "/join?member="+c.id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("join: %d %s", resp.StatusCode, body)
		}
	}

	// /status is registered unconditionally and must answer before any run.
	var pre struct {
		Started bool `json:"started"`
		Done    bool `json:"done"`
		Members int  `json:"members"`
	}
	resp, body := clients[0].do("GET", "/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status before start: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pre); err != nil {
		t.Fatalf("/status JSON: %v", err)
	}
	if pre.Started || pre.Done || pre.Members != 2 {
		t.Fatalf("pre-run status = %+v, want not started, 2 members", pre)
	}

	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go c.serve(&wg)
	}
	wg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for srv.Result() == nil {
		if time.Now().After(deadline) {
			t.Fatal("run did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	res := srv.Result()

	// /status after the run: lifecycle flags flipped, kernel counters
	// agree with the run's stats, and the journal section carries the
	// run ID and a non-empty curve tail.
	var st struct {
		Started bool `json:"started"`
		Done    bool `json:"done"`
		Answers int  `json:"answers"`
		Kernel  struct {
			Rounds    int64 `json:"rounds"`
			Questions int64 `json:"questions"`
			MSPs      int64 `json:"msps"`
		} `json:"kernel"`
		Journal struct {
			Events    int64             `json:"events"`
			Dropped   int64             `json:"dropped"`
			Run       int64             `json:"run"`
			CurveTail []json.RawMessage `json:"curve_tail"`
		} `json:"journal"`
	}
	resp, body = clients[0].do("GET", "/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/status JSON: %v\n%s", err, body)
	}
	if !st.Started || !st.Done {
		t.Fatalf("post-run status = %+v, want started and done", st)
	}
	if st.Kernel.Questions != int64(res.Stats.Questions) {
		t.Errorf("status kernel questions = %d, run counted %d", st.Kernel.Questions, res.Stats.Questions)
	}
	if st.Kernel.Rounds != int64(res.Stats.Rounds) {
		t.Errorf("status kernel rounds = %d, run counted %d", st.Kernel.Rounds, res.Stats.Rounds)
	}
	if st.Journal.Events == 0 || st.Journal.Run == 0 {
		t.Errorf("status journal section empty: %+v", st.Journal)
	}
	if len(st.Journal.CurveTail) == 0 {
		t.Error("status journal carries no curve tail")
	}
	if len(st.Journal.CurveTail) > 8 {
		t.Errorf("curve tail has %d points, cap is 8", len(st.Journal.CurveTail))
	}

	// /members: one scorecard per member, sorted, counts consistent.
	var mem struct {
		Members []struct {
			Member   string `json:"member"`
			Asked    int64  `json:"asked"`
			Answered int64  `json:"answered"`
		} `json:"members"`
	}
	resp, body = clients[0].do("GET", "/members", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/members: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &mem); err != nil {
		t.Fatalf("/members JSON: %v", err)
	}
	if len(mem.Members) != 2 {
		t.Fatalf("/members lists %d cards, want 2", len(mem.Members))
	}
	var answered int64
	for i, c := range mem.Members {
		if i > 0 && mem.Members[i-1].Member >= c.Member {
			t.Errorf("cards out of order: %q then %q", mem.Members[i-1].Member, c.Member)
		}
		answered += c.Answered
	}
	if answered != int64(res.Stats.Questions) {
		t.Errorf("scorecards sum to %d answers, run counted %d", answered, res.Stats.Questions)
	}

	// /journal: NDJSON tail, every line decodes as a journal event, ?n=
	// bounds the tail, bad n is a 400.
	resp, body = clients[0].do("GET", "/journal", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/journal: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/journal content type = %q", ct)
	}
	events, err := oassis.ReadJournal(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/journal body does not decode: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/journal returned no events")
	}
	if events[len(events)-1].Kind != "run_end" {
		t.Errorf("journal tail ends with %q, want run_end", events[len(events)-1].Kind)
	}

	resp, body = clients[0].do("GET", "/journal?n=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/journal?n=3: %d %s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 3 {
		t.Errorf("/journal?n=3 returned %d lines", lines)
	}

	if resp, _ := clients[0].do("GET", "/journal?n=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/journal?n=bogus: %d, want 400", resp.StatusCode)
	}
}

// TestIntrospectionGates: /status exists without an observer but omits the
// kernel and journal sections; /members and /journal 404 until their
// feature is enabled.
func TestIntrospectionGates(t *testing.T) {
	bare := httptest.NewServer(server.New(server.Config{}).Handler())
	defer bare.Close()

	resp, err := http.Get(bare.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/status without observer: %d", resp.StatusCode)
	}
	for _, absent := range []string{"kernel", "journal"} {
		if _, ok := got[absent]; ok {
			t.Errorf("/status without observer carries %q section", absent)
		}
	}
	for _, path := range []string{"/members", "/journal"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without observer: %d, want 404", path, resp.StatusCode)
		}
	}

	// With an observer but neither feature enabled, the routes exist and
	// explain what is missing instead of a blank 404 from the mux.
	o := oassis.NewObserver()
	gated := httptest.NewServer(server.New(server.Config{Obs: o}).Handler())
	defer gated.Close()
	for _, path := range []string{"/members", "/journal"} {
		resp, err := http.Get(gated.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with bare observer: %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), "not enabled") {
			t.Errorf("%s 404 body = %q, want a feature hint", path, buf.String())
		}
	}
}
