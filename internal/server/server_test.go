package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/paperdata"
	"oassis/internal/server"
)

// client is a scripted crowd member polling the HTTP API and answering from
// a personal database (the role a human plays against the real UI).
type client struct {
	t      *testing.T
	base   string
	id     string
	member *oassis.SimMember
	v      *oassis.Vocabulary
}

func (c *client) do(method, path string, body any) (*http.Response, []byte) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// serve polls for questions and answers them until the run completes.
func (c *client) serve(wg *sync.WaitGroup) {
	defer wg.Done()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := c.do("GET", "/question?member="+c.id, nil)
		switch resp.StatusCode {
		case http.StatusGone:
			return
		case http.StatusNotFound:
			time.Sleep(2 * time.Millisecond)
			continue
		case http.StatusOK:
		default:
			c.t.Errorf("%s: unexpected status %d: %s", c.id, resp.StatusCode, body)
			return
		}
		var q struct {
			ID      int64    `json:"id"`
			Kind    string   `json:"kind"`
			Text    string   `json:"text"`
			Options []string `json:"options"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			c.t.Errorf("%s: bad question: %v", c.id, err)
			return
		}
		ans := map[string]any{"member": c.id, "question": q.ID, "choice": -1}
		if q.Kind == "specialization" {
			best, bestS := -1, 0.0
			for i, opt := range q.Options {
				if s := c.supportFor(c.v, opt); s > bestS {
					best, bestS = i, s
				}
			}
			ans["choice"] = best
			ans["support"] = bestS
		} else {
			ans["support"] = c.supportFor(c.v, q.Text)
		}
		if resp, body := c.do("POST", "/answer", ans); resp.StatusCode != http.StatusOK {
			// The engine may have timed the question out; keep going.
			_ = body
		}
	}
}

// supportFor parses the rendered question back into the asked fact-set (the
// template is "How often do you engage in {activity} at {place}?") and
// answers with the member's true support — exactly what a diligent human
// reading the web UI would do.
func (c *client) supportFor(v *oassis.Vocabulary, text string) float64 {
	body := strings.TrimSuffix(strings.TrimPrefix(text, "How often do you "), "?")
	var facts []oassis.Fact
	for _, part := range strings.Split(body, " and also ") {
		part = strings.TrimPrefix(part, "engage in ")
		i := strings.LastIndex(part, " at ")
		if i < 0 {
			return 0
		}
		subj, obj := part[:i], part[i+len(" at "):]
		f, err := oassis.ParseFact(
			quote(subj)+" doAt "+quote(obj), v)
		if err != nil {
			c.t.Errorf("%s: cannot parse question %q: %v", c.id, text, err)
			return 0
		}
		facts = append(facts, f)
	}
	return c.member.TrueSupport(oassis.NewFactSet(facts...))
}

func quote(name string) string { return `"` + name + `"` }

func TestServerEndToEnd(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{MinMembers: 2, AnswerTimeout: 10 * time.Second})
	var sess *oassis.Session
	sess, err = oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithParallelism(4),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
		oassis.WithOnMSP(func(a *oassis.Assignment) {
			srv.RecordAnswer(sess.DescribeAssignment(a))
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	du1, du2 := paperdata.Table3(v)
	m1 := oassis.NewSimMember("u1", v, du1, 1)
	m2 := oassis.NewSimMember("u2", v, du2, 2)
	m1.Scale = nil
	m2.Scale = nil
	clients := []*client{
		{t: t, base: ts.URL, id: "u1", member: m1, v: v},
		{t: t, base: ts.URL, id: "u2", member: m2, v: v},
	}
	// Join.
	for _, c := range clients {
		resp, body := c.do("POST", "/join?member="+c.id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join: %d %s", resp.StatusCode, body)
		}
	}
	// Duplicate join rejected.
	if resp, _ := clients[0].do("POST", "/join?member=u1", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join: %d", resp.StatusCode)
	}
	// Start.
	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	// Serve both members concurrently.
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go c.serve(&wg)
	}
	// Wait for completion via /results.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := clients[0].do("GET", "/results", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results: %d %s", resp.StatusCode, body)
		}
		var out struct {
			Done    bool     `json:"done"`
			Answers []string `json:"answers"`
			Error   string   `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Error != "" {
			t.Fatalf("run error: %s", out.Error)
		}
		if out.Done {
			if len(out.Answers) == 0 {
				t.Fatal("no streamed answers")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not complete in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
}

func TestServerValidation(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{MinMembers: 2})
	sess, err := oassis.NewSession(store, q, oassis.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, id: "x"}

	// Join without a member id.
	if resp, _ := c.do("POST", "/join", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty join: %d", resp.StatusCode)
	}
	// Start before enough members.
	if resp, _ := c.do("POST", "/start", nil); resp.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("early start: %d", resp.StatusCode)
	}
	// Question for unknown member.
	if resp, _ := c.do("GET", "/question?member=ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown member: %d", resp.StatusCode)
	}
	// Malformed answer.
	req, _ := http.NewRequest("POST", ts.URL+"/answer", strings.NewReader("not json"))
	resp, _ := http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad answer json: %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Out-of-range support.
	if resp, _ := c.do("POST", "/answer", map[string]any{
		"member": "x", "question": 1, "support": 2.0,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range support: %d", resp.StatusCode)
	}
}

// TestResultsDeterministicOrder pins the /results contract: the answers
// array is sorted, independent of the interleaving in which answers
// arrived from the crowd.
func TestResultsDeterministicOrder(t *testing.T) {
	srv := server.New(server.Config{MinMembers: 1})
	// Record in two different arrival orders; both must render the same.
	for _, text := range []string{"zebra crossing", "apple picking", "midtown stroll"} {
		srv.RecordAnswer(text)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, id: "x"}
	resp, body := c.do("GET", "/results", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Answers []string `json:"answers"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want := []string{"apple picking", "midtown stroll", "zebra crossing"}
	if len(out.Answers) != len(want) {
		t.Fatalf("answers = %v, want %v", out.Answers, want)
	}
	for i := range want {
		if out.Answers[i] != want[i] {
			t.Fatalf("answers = %v, want sorted %v", out.Answers, want)
		}
	}
}
