package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/chaos"
	"oassis/internal/paperdata"
	"oassis/internal/server"
)

// newPlatform builds a server over the paper's running example attached to
// a parallel session, ready for httptest.
func newPlatform(t *testing.T, cfg server.Config, opts ...oassis.Option) (*server.Server, *oassis.Session, *oassis.Vocabulary) {
	t.Helper()
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cfg)
	sess, err := oassis.NewSession(store, q, append([]oassis.Option{oassis.WithSeed(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	return srv, sess, v
}

// TestServerErrorPathsTable drives every rejection path of the HTTP API
// before a run starts, table-style.
func TestServerErrorPathsTable(t *testing.T) {
	srv, _, _ := newPlatform(t, server.Config{MinMembers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, id: "u1"}
	if resp, body := c.do("POST", "/join?member=u1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any    // JSON-encoded when non-nil
		raw    string // overrides body with a raw payload
		want   int
	}{
		{name: "join without member id", method: "POST", path: "/join",
			want: http.StatusBadRequest},
		{name: "duplicate join", method: "POST", path: "/join?member=u1",
			want: http.StatusConflict},
		{name: "start before MinMembers", method: "POST", path: "/start",
			want: http.StatusPreconditionFailed},
		{name: "question for unknown member", method: "GET", path: "/question?member=ghost",
			want: http.StatusNotFound},
		{name: "question before one is ready", method: "GET", path: "/question?member=u1",
			want: http.StatusNotFound},
		{name: "answer with malformed json", method: "POST", path: "/answer",
			raw: "not json", want: http.StatusBadRequest},
		{name: "answer with out-of-range support", method: "POST", path: "/answer",
			body: map[string]any{"member": "u1", "question": 1, "support": 2.0},
			want: http.StatusBadRequest},
		{name: "answer from unknown member", method: "POST", path: "/answer",
			body: map[string]any{"member": "ghost", "question": 1, "support": 0.5},
			want: http.StatusNotFound},
		{name: "answer with no pending question", method: "POST", path: "/answer",
			body: map[string]any{"member": "u1", "question": 7, "support": 0.5},
			want: http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.raw != "" {
				req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				r.Body.Close()
				resp = r
			} else {
				resp, body = c.do(tc.method, tc.path, tc.body)
			}
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d (%s)",
					tc.method, tc.path, resp.StatusCode, tc.want, body)
			}
		})
	}
}

// TestServerRunLifecycleErrors walks one full run and checks the rejection
// paths that only exist mid-run or after it: stale answers, duplicate
// answers, joining late, and asking for questions once the run is over.
func TestServerRunLifecycleErrors(t *testing.T) {
	srv, _, v := newPlatform(t, server.Config{MinMembers: 1, AnswerTimeout: 10 * time.Second},
		oassis.WithAggregator(oassis.NewMeanAggregator(1, 0.4)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	du1, _ := paperdata.Table3(v)
	m := oassis.NewSimMember("solo", v, du1, 1)
	m.Scale = nil
	c := &client{t: t, base: ts.URL, id: "solo", member: m, v: v}

	if resp, body := c.do("POST", "/join?member=solo", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}
	if resp, body := c.do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}

	// Wait for the first question to be posted.
	var q chaos.Question
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := c.do("GET", "/question?member=solo", nil)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &q); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no question posted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Out-of-order: answering a question that was never posted is rejected
	// without consuming the pending one.
	if resp, _ := c.do("POST", "/answer", map[string]any{
		"member": "solo", "question": q.ID + 1000, "support": 0.5,
	}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale answer: %d, want 409", resp.StatusCode)
	}
	// The real answer is still accepted...
	ans := map[string]any{"member": "solo", "question": q.ID, "choice": -1,
		"support": c.supportFor(v, q.Text)}
	if resp, body := c.do("POST", "/answer", ans); resp.StatusCode != http.StatusOK {
		t.Fatalf("first answer: %d %s", resp.StatusCode, body)
	}
	// ...and posting it a second time is a rejected duplicate.
	if resp, _ := c.do("POST", "/answer", ans); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate answer: %d, want 409", resp.StatusCode)
	}
	// Joining after the run started is rejected.
	if resp, _ := c.do("POST", "/join?member=late", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("late join: %d, want 409", resp.StatusCode)
	}

	// Serve the rest of the run honestly, then wait for completion.
	var wg sync.WaitGroup
	wg.Add(1)
	go c.serve(&wg)
	wg.Wait()
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, body := c.do("GET", "/results", nil)
		var out struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Error != "" {
			t.Fatalf("run error: %s", out.Error)
		}
		if out.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The run is over: question fetches now report 410.
	if resp, _ := c.do("GET", "/question?member=solo", nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("question after run end: %d, want 410", resp.StatusCode)
	}
}

// TestServerSurvivesChaosClients runs the platform against chaos.Client
// crowd members that silently depart, double-submit and answer out of
// order. The run must still complete, with the departure detected through
// the answer deadline and the duplicate/stale posts rejected harmlessly.
func TestServerSurvivesChaosClients(t *testing.T) {
	srv, _, v := newPlatform(t,
		server.Config{MinMembers: 3, AnswerTimeout: 60 * time.Millisecond, AnswerRetries: 1},
		oassis.WithParallelism(3),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, 0.4)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	du1, du2 := paperdata.Table3(v)
	honest := func(id string, tx []oassis.FactSet) chaos.Answerer {
		m := oassis.NewSimMember(id, v, tx, 1)
		m.Scale = nil
		helper := &client{t: t, base: ts.URL, id: id, member: m, v: v}
		return func(q chaos.Question) (float64, int) {
			if q.Kind == "specialization" {
				best, bestS := -1, 0.0
				for i, opt := range q.Options {
					if s := helper.supportFor(v, opt); s > bestS {
						best, bestS = i, s
					}
				}
				return bestS, best
			}
			return helper.supportFor(v, q.Text), -1
		}
	}
	clients := []*chaos.Client{
		chaos.NewClient(chaos.ClientConfig{
			Base: ts.URL, Member: "c1", Answer: honest("c1", du1),
			Faults: chaos.Faults{Seed: 1},
			// Every answer is double-submitted and half re-answer the
			// previous question first.
			DuplicateProb: 1.0, StaleProb: 0.5,
		}),
		chaos.NewClient(chaos.ClientConfig{
			Base: ts.URL, Member: "c2", Answer: honest("c2", du2),
			Faults: chaos.Faults{Seed: 2},
		}),
		chaos.NewClient(chaos.ClientConfig{
			Base: ts.URL, Member: "c3", Answer: honest("c3", du1),
			// Answers twice, then silently stops polling: the server only
			// finds out through its answer deadline.
			Faults: chaos.Faults{Seed: 3, DepartAfter: 2},
		}),
	}
	for _, c := range clients {
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
	}
	helper := &client{t: t, base: ts.URL, id: "c1"}
	if resp, body := helper.do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Run(30 * time.Second); err != nil {
				t.Errorf("%v", err)
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(30 * time.Second)
	var out struct {
		Done       bool     `json:"done"`
		Answers    []string `json:"answers"`
		Departures int      `json:"departures"`
		Error      string   `json:"error"`
	}
	for {
		_, body := helper.do("GET", "/results", nil)
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Error != "" {
			t.Fatalf("run error: %s", out.Error)
		}
		if out.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not complete under chaos clients")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !clients[2].Departed {
		t.Error("the departing client never departed")
	}
	if out.Departures < 1 {
		t.Errorf("server recorded %d departures, want ≥ 1", out.Departures)
	}
	if clients[0].Duplicates == 0 {
		t.Error("no duplicate submissions were exercised")
	}
	if clients[0].Answered == 0 || clients[1].Answered == 0 {
		t.Error("surviving clients answered nothing")
	}
}
