package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/paperdata"
	"oassis/internal/server"
)

// TestServerMetricsEndToEnd drives a full crowd session over HTTP with an
// Observer shared between session and platform, scraping GET /metrics
// concurrently with the answer traffic the whole way (the -race run is the
// point: a scrape must never tear or block the hot path). At the end the
// scrape must expose every layer: kernel, server, sparql, space.
func TestServerMetricsEndToEnd(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	o := oassis.NewObserver()
	srv := server.New(server.Config{
		MinMembers:    2,
		AnswerTimeout: 10 * time.Second,
		Obs:           o,
	})
	sess, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithObserver(o),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(sess)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	du1, du2 := paperdata.Table3(v)
	m1 := oassis.NewSimMember("u1", v, du1, 1)
	m2 := oassis.NewSimMember("u2", v, du2, 2)
	m1.Scale = nil
	m2.Scale = nil
	clients := []*client{
		{t: t, base: ts.URL, id: "u1", member: m1, v: v},
		{t: t, base: ts.URL, id: "u2", member: m2, v: v},
	}
	for _, c := range clients {
		if resp, body := c.do("POST", "/join?member="+c.id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("join: %d %s", resp.StatusCode, body)
		}
	}

	// Concurrent scraper: hammer /metrics while the run is live.
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		c := clients[0]
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := c.do("GET", "/metrics", nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("metrics scrape: %d", resp.StatusCode)
				return
			}
			if !strings.Contains(string(body), "oassis_http_requests_total") {
				t.Error("scrape missing request counter")
				return
			}
		}
	}()

	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go c.serve(&wg)
	}
	wg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for srv.Result() == nil {
		if time.Now().After(deadline) {
			t.Fatal("run did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	<-scraperDone

	res := srv.Result()
	// Platform lifecycle counters agree with the kernel's view.
	if got := o.Server.Posted.Value(); got != int64(res.Stats.Asked) {
		t.Errorf("server posted %d questions, kernel asked %d", got, res.Stats.Asked)
	}
	if o.Server.Accepted.Value() == 0 {
		t.Error("no answers accepted")
	}
	if got := o.Server.Departed.Value(); got != int64(res.Stats.Departures) {
		t.Errorf("server reaped %d departures, Stats say %d", got, res.Stats.Departures)
	}

	// Final scrape exposes every layer through one endpoint.
	resp, body := clients[0].do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final scrape: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	scrape := string(body)
	for _, want := range []string{
		"oassis_kernel_rounds_total",
		"oassis_kernel_questions_total",
		"oassis_server_questions_posted_total",
		"oassis_server_answers_accepted_total",
		`oassis_http_requests_total{path="/answer",code="200"}`,
		`oassis_http_request_seconds_count{path="/question"}`,
		"oassis_sparql_compiles_total 1",
		"oassis_space_nodes",
		"oassis_ontology_closure_cold",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestPprofGate: /debug/pprof is absent by default and present only when
// explicitly enabled.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(server.New(server.Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}

	on := httptest.NewServer(server.New(server.Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with EnablePprof: %d", resp.StatusCode)
	}
}

// TestMetricsAbsentWithoutObserver: no observer, no /metrics route.
func TestMetricsAbsentWithoutObserver(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without observer: %d", resp.StatusCode)
	}
}
