package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis"
	"oassis/internal/paperdata"
	"oassis/internal/server"
)

// These tests pin the server half of the shared answer platform: one
// long-lived oassis-serve process re-Attaches query after query against
// the same joined crowd, and with a shared store a repeated query is
// answered wholly from cached crowd answers — zero questions reach the
// HTTP members — while /results stays byte-identical.

// platformMembers builds the paper's two Table-3 members with noise
// disabled, so their answers are pure functions of the question and any
// clone with the same seed answers identically.
func platformMembers(v *oassis.Vocabulary) (*oassis.SimMember, *oassis.SimMember) {
	du1, du2 := paperdata.Table3(v)
	m1 := oassis.NewSimMember("u1", v, du1, 1)
	m2 := oassis.NewSimMember("u2", v, du2, 2)
	m1.Scale = nil
	m2.Scale = nil
	return m1, m2
}

func platformSession(t *testing.T, srv *server.Server, store *oassis.Ontology, q *oassis.Query, p *oassis.Platform) *oassis.Session {
	t.Helper()
	var sess *oassis.Session
	sess, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
		oassis.WithTranscript(),
		oassis.WithPlatform(p),
		oassis.WithOnMSP(func(a *oassis.Assignment) {
			srv.RecordAnswer(sess.DescribeAssignment(a))
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// resultsOf fetches the final /results answer list.
func resultsOf(t *testing.T, c *client) []string {
	t.Helper()
	resp, body := c.do("GET", "/results", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Done    bool     `json:"done"`
		Answers []string `json:"answers"`
		Error   string   `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" {
		t.Fatalf("run error: %s", out.Error)
	}
	if !out.Done {
		t.Fatal("results fetched before the run completed")
	}
	return out.Answers
}

func awaitResult(t *testing.T, srv *server.Server) *oassis.Result {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for srv.Result() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server run did not complete in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return srv.Result()
}

func mspKeys(res *oassis.Result) []string {
	keys := make([]string, len(res.MSPs))
	for i, m := range res.MSPs {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestServerPlatformRerunServedFromStore runs the same query twice on one
// server process backed by a shared store. The first run is answered by
// HTTP members; the second run — launched by re-Attaching a fresh session
// and POSTing /start again — must complete without a single question
// reaching the crowd, with /results and the per-member transcripts
// byte-identical to the first run.
func TestServerPlatformRerunServedFromStore(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	p := oassis.NewPlatform(oassis.PlatformConfig{})
	srv := server.New(server.Config{MinMembers: 2, AnswerTimeout: 10 * time.Second})
	srv.Attach(platformSession(t, srv, store, q, p))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m1, m2 := platformMembers(v)
	clients := []*client{
		{t: t, base: ts.URL, id: "u1", member: m1, v: v},
		{t: t, base: ts.URL, id: "u2", member: m2, v: v},
	}
	for _, c := range clients {
		if resp, body := c.do("POST", "/join?member="+c.id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("join: %d %s", resp.StatusCode, body)
		}
	}
	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go c.serve(&wg)
	}
	res1 := awaitResult(t, srv)
	wg.Wait()
	answers1 := resultsOf(t, clients[0])
	if len(answers1) == 0 {
		t.Fatal("first run found no answers")
	}
	st1 := p.Stats()
	if st1.Misses == 0 {
		t.Fatal("first run never reached the crowd")
	}

	// Second run: same query, fresh session, same store. No client polls
	// for questions — every ask must be a store hit, so the run completes
	// purely from cached crowd answers.
	srv.Attach(platformSession(t, srv, store, q, p))
	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("second start: %d %s", resp.StatusCode, body)
	}
	res2 := awaitResult(t, srv)
	answers2 := resultsOf(t, clients[0])

	st2 := p.Stats()
	if st2.Misses != st1.Misses {
		t.Errorf("second run asked the crowd %d new questions, want 0", st2.Misses-st1.Misses)
	}
	if st2.Hits <= st1.Hits {
		t.Error("second run recorded no store hits")
	}
	if !reflect.DeepEqual(answers1, answers2) {
		t.Errorf("/results diverged across reruns:\n%v\nvs\n%v", answers1, answers2)
	}
	if !reflect.DeepEqual(mspKeys(res1), mspKeys(res2)) {
		t.Error("MSP sets diverged across reruns")
	}
	if !reflect.DeepEqual(res1.Transcripts, res2.Transcripts) {
		t.Errorf("transcripts diverged across reruns:\n%v\nvs\n%v", res1.Transcripts, res2.Transcripts)
	}

	// Third run: a bare POST /start with no re-Attach (the oassis-serve
	// path: one long-lived process, /start repeated). The completed run
	// is reset in place and the attached session re-runs from the store.
	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("third start: %d %s", resp.StatusCode, body)
	}
	awaitResult(t, srv)
	answers3 := resultsOf(t, clients[0])
	st3 := p.Stats()
	if st3.Misses != st2.Misses {
		t.Errorf("restarted run asked the crowd %d new questions, want 0", st3.Misses-st2.Misses)
	}
	if !reflect.DeepEqual(answers1, answers3) {
		t.Errorf("/results diverged on bare restart:\n%v\nvs\n%v", answers1, answers3)
	}
}

// TestServerPlatformAttachDetachMidRun is the PR 2 regression under
// multi-tenancy: while the HTTP server drives a run, in-process sessions
// attach to and detach from the same platform mid-run. The server's
// /results and transcripts must stay exactly what a standalone run
// produces — concurrent tenants may only change WHO answers a question
// (cache vs crowd), never WHAT the answer is.
func TestServerPlatformAttachDetachMidRun(t *testing.T) {
	v, store, err := oassis.LoadOntology(strings.NewReader(paperdata.OntologyText))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassis.ParseQuery(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}

	// Standalone reference: the same session config, no platform, fresh
	// pure members.
	refSess, err := oassis.NewSession(store, q,
		oassis.WithSeed(1),
		oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
		oassis.WithTranscript(),
	)
	if err != nil {
		t.Fatal(err)
	}
	rm1, rm2 := platformMembers(v)
	refRes, err := refSess.Run([]oassis.Member{rm1, rm2})
	if err != nil {
		t.Fatal(err)
	}
	refKeys := mspKeys(refRes)

	p := oassis.NewPlatform(oassis.PlatformConfig{})
	srv := server.New(server.Config{MinMembers: 2, AnswerTimeout: 10 * time.Second})
	srv.Attach(platformSession(t, srv, store, q, p))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m1, m2 := platformMembers(v)
	clients := []*client{
		{t: t, base: ts.URL, id: "u1", member: m1, v: v},
		{t: t, base: ts.URL, id: "u2", member: m2, v: v},
	}
	for _, c := range clients {
		if resp, body := c.do("POST", "/join?member="+c.id, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("join: %d %s", resp.StatusCode, body)
		}
	}

	// Tenants: in-process sessions over clones of the same members (same
	// ids, same seeds — they answer identically), racing the HTTP run and
	// detaching as they finish.
	const tenants = 3
	var tw sync.WaitGroup
	tenantRes := make([]*oassis.Result, tenants)
	tenantErr := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		tm1, tm2 := platformMembers(v)
		sess, err := oassis.NewSession(store, q,
			oassis.WithSeed(1),
			oassis.WithAggregator(oassis.NewMeanAggregator(2, q.Satisfying.Support)),
			oassis.WithTranscript(),
			oassis.WithPlatform(p),
		)
		if err != nil {
			t.Fatal(err)
		}
		tw.Add(1)
		go func(i int, sess *oassis.Session) {
			defer tw.Done()
			tenantRes[i], tenantErr[i] = sess.Run([]oassis.Member{tm1, tm2})
		}(i, sess)
	}

	if resp, body := clients[0].do("POST", "/start", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d %s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go c.serve(&wg)
	}
	res := awaitResult(t, srv)
	wg.Wait()
	tw.Wait()

	if !reflect.DeepEqual(mspKeys(res), refKeys) {
		t.Errorf("server MSP set diverged from standalone:\n%v\nvs\n%v", mspKeys(res), refKeys)
	}
	if !reflect.DeepEqual(res.Transcripts, refRes.Transcripts) {
		t.Errorf("server transcripts diverged from standalone:\n%v\nvs\n%v",
			res.Transcripts, refRes.Transcripts)
	}
	for i := 0; i < tenants; i++ {
		if tenantErr[i] != nil {
			t.Fatalf("tenant %d: %v", i, tenantErr[i])
		}
		if !reflect.DeepEqual(mspKeys(tenantRes[i]), refKeys) {
			t.Errorf("tenant %d MSP set diverged from standalone", i)
		}
		if !reflect.DeepEqual(tenantRes[i].Transcripts, refRes.Transcripts) {
			t.Errorf("tenant %d transcripts diverged from standalone", i)
		}
	}
	if st := p.Stats(); st.Sessions != 0 {
		t.Errorf("sessions gauge = %d after all runs detached, want 0", st.Sessions)
	}
	// /results order is pinned deterministic even under multi-tenancy.
	if answers := resultsOf(t, clients[0]); len(answers) == 0 {
		t.Fatal("no answers streamed to /results")
	}
}
