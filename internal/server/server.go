// Package server implements the crowdsourcing platform of the OASSIS
// prototype (Sections 6.1–6.2): a web service through which crowd members
// receive the engine's questions and submit answers. The paper's system
// served a PHP web UI backed by the QueueManager; here the same roles are
// an HTTP JSON API backed by the concurrent engine:
//
//	POST /join?member=<id>        register as a crowd member
//	POST /start                   launch the mining run (once enough joined)
//	GET  /question?member=<id>    fetch your next question (404: none yet,
//	                              410: the run is over)
//	POST /answer                  submit an answer for a question
//	GET  /results                 the MSPs discovered so far (streamed
//	                              incrementally, final when done)
//
// Each member is bridged to the engine through a mailbox Member whose
// Ask* methods block until the HTTP side delivers the answer.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"oassis"
	"oassis/internal/chaos"
)

// Config parameterizes the platform.
type Config struct {
	// MinMembers gates /start.
	MinMembers int
	// AnswerTimeout bounds how long the engine waits for one member's
	// answer before treating them as departed (their session ends, as
	// Section 4.2 allows).
	AnswerTimeout time.Duration
	// AnswerRetries is how many extra AnswerTimeout windows a question
	// stays posted after its first deadline passes, covering members that
	// time out once and return. Only when every window expires is the
	// member declared departed and the question released for the engine
	// to reassign to the remaining crowd.
	AnswerRetries int
	// Clock is the platform's time source; nil uses the wall clock.
	// Chaos tests inject a chaos.VirtualClock to drive the deadline
	// machinery deterministically.
	Clock chaos.Clock
}

// Server is the running platform.
type Server struct {
	cfg Config

	mu      sync.Mutex
	session *oassis.Session
	members map[string]*mailboxMember
	started bool
	done    bool
	result  *oassis.Result
	runErr  error
	msps    []string // incrementally discovered answers (rendered)

	nextQID int64
}

// New builds a platform; attach the query session with Attach before
// serving. Build the session with oassis.WithParallelism (so several
// members are interviewed at once) and stream answers into the server:
//
//	srv := server.New(server.Config{MinMembers: 5})
//	var sess *oassis.Session
//	sess, err := oassis.NewSession(store, q,
//	    oassis.WithParallelism(16),
//	    oassis.WithOnMSP(func(a *oassis.Assignment) {
//	        srv.RecordAnswer(sess.DescribeAnswer(sess.FactSets([]*oassis.Assignment{a})[0]))
//	    }))
//	srv.Attach(sess)
func New(cfg Config) *Server {
	if cfg.MinMembers <= 0 {
		cfg.MinMembers = 1
	}
	if cfg.AnswerTimeout <= 0 {
		cfg.AnswerTimeout = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = chaos.Real()
	}
	return &Server{cfg: cfg, members: make(map[string]*mailboxMember)}
}

// Attach installs the session the platform evaluates.
func (s *Server) Attach(session *oassis.Session) {
	s.mu.Lock()
	s.session = session
	s.mu.Unlock()
}

// attached returns the session installed with Attach.
func (s *Server) attached() *oassis.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.session
}

// RecordAnswer appends one rendered answer to the incremental /results
// feed; wire it through oassis.WithOnMSP.
func (s *Server) RecordAnswer(text string) {
	s.mu.Lock()
	s.msps = append(s.msps, text)
	s.mu.Unlock()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("POST /start", s.handleStart)
	mux.HandleFunc("GET /question", s.handleQuestion)
	mux.HandleFunc("POST /answer", s.handleAnswer)
	mux.HandleFunc("GET /results", s.handleResults)
	return mux
}

// question is one pending question for a member.
type question struct {
	ID int64 `json:"id"`
	// Kind is "concrete" or "specialization".
	Kind string `json:"kind"`
	// Text is the rendered natural-language question.
	Text string `json:"text"`
	// Options lists the candidate refinements of a specialization
	// question; answer with choice = index, or -1 for none of these.
	Options []string `json:"options,omitempty"`

	// answered receives the member's reply.
	answered chan answerMsg
}

type answerMsg struct {
	Support float64
	Choice  int
}

// mailboxMember bridges the engine (blocking Ask* calls) to HTTP handlers.
type mailboxMember struct {
	id      string
	server  *Server
	mu      sync.Mutex
	pending *question
	gone    bool
}

func (m *mailboxMember) ID() string { return m.id }

// post parks a question and waits for the answer. The question stays
// posted across 1 + AnswerRetries deadline windows (covering members that
// time out once and come back); only when every window expires is the
// member declared departed and the question withdrawn — the engine then
// reassigns the underlying assignment to the remaining crowd.
func (m *mailboxMember) post(q *question) (answerMsg, bool) {
	m.mu.Lock()
	if m.gone {
		m.mu.Unlock()
		return answerMsg{}, false
	}
	m.pending = q
	m.mu.Unlock()
	for attempt := 0; attempt <= m.server.cfg.AnswerRetries; attempt++ {
		select {
		case a := <-q.answered:
			m.mu.Lock()
			m.pending = nil
			m.mu.Unlock()
			return a, true
		case <-m.server.cfg.Clock.After(m.server.cfg.AnswerTimeout):
			// Deadline passed; retry (keep the question posted) until
			// the windows run out.
		}
	}
	m.mu.Lock()
	m.pending = nil
	m.gone = true
	m.mu.Unlock()
	return answerMsg{}, false
}

// AskConcrete implements oassis.Member over the mailbox. A member that
// exhausts every answer window has departed (their session ended, as
// Section 4.2 allows); the engine stops asking them and the run continues
// with the surviving crowd.
func (m *mailboxMember) AskConcrete(fs oassis.FactSet) oassis.Response {
	q := &question{
		ID:       m.server.newQID(),
		Kind:     "concrete",
		Text:     m.server.attached().Describe(fs),
		answered: make(chan answerMsg, 1),
	}
	a, ok := m.post(q)
	if !ok {
		return oassis.Response{Departed: true}
	}
	return oassis.Response{Support: a.Support}
}

// AskSpecialize implements oassis.Member.
func (m *mailboxMember) AskSpecialize(base oassis.FactSet, cands []oassis.FactSet) (int, oassis.Response) {
	sess := m.server.attached()
	opts := make([]string, len(cands))
	for i, c := range cands {
		opts[i] = sess.Describe(c)
	}
	q := &question{
		ID:       m.server.newQID(),
		Kind:     "specialization",
		Text:     sess.Describe(base),
		Options:  opts,
		answered: make(chan answerMsg, 1),
	}
	a, ok := m.post(q)
	if !ok {
		return -1, oassis.Response{Departed: true}
	}
	if a.Choice < 0 || a.Choice >= len(cands) {
		return -1, oassis.Response{}
	}
	return a.Choice, oassis.Response{Support: a.Support}
}

func (s *Server) newQID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextQID++
	return s.nextQID
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("member")
	if id == "" {
		http.Error(w, "member required", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		http.Error(w, "run already started", http.StatusConflict)
		return
	}
	if _, ok := s.members[id]; ok {
		http.Error(w, "member already joined", http.StatusConflict)
		return
	}
	s.members[id] = &mailboxMember{id: id, server: s}
	writeJSON(w, map[string]any{"joined": id, "members": len(s.members)})
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		http.Error(w, "already started", http.StatusConflict)
		return
	}
	if len(s.members) < s.cfg.MinMembers {
		n := len(s.members)
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("need %d members, have %d", s.cfg.MinMembers, n),
			http.StatusPreconditionFailed)
		return
	}
	sess := s.session
	if sess == nil {
		s.mu.Unlock()
		http.Error(w, "no session attached", http.StatusInternalServerError)
		return
	}
	s.started = true
	members := make([]oassis.Member, 0, len(s.members))
	ids := make([]string, 0, len(s.members))
	for id := range s.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		members = append(members, s.members[id])
	}
	s.mu.Unlock()

	go func() {
		res, err := sess.Run(members)
		s.mu.Lock()
		s.done = true
		s.result = res
		s.runErr = err
		s.mu.Unlock()
	}()
	writeJSON(w, map[string]any{"started": true, "members": len(members)})
}

func (s *Server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("member")
	s.mu.Lock()
	m, ok := s.members[id]
	done := s.done
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	if done {
		http.Error(w, "run complete", http.StatusGone)
		return
	}
	m.mu.Lock()
	q, gone := m.pending, m.gone
	m.mu.Unlock()
	if gone {
		// The member missed every answer window; their session ended.
		http.Error(w, "member departed", http.StatusGone)
		return
	}
	if q == nil {
		http.Error(w, "no question pending", http.StatusNotFound)
		return
	}
	writeJSON(w, q)
}

// answerBody is the POST /answer payload.
type answerBody struct {
	Member   string  `json:"member"`
	Question int64   `json:"question"`
	Support  float64 `json:"support"`
	// Choice answers a specialization question (-1 = none of these).
	Choice int `json:"choice"`
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var body answerBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Support < 0 || body.Support > 1 {
		http.Error(w, "support out of [0,1]", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	m, ok := s.members[body.Member]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	m.mu.Lock()
	q, gone := m.pending, m.gone
	m.mu.Unlock()
	if gone {
		http.Error(w, "member departed", http.StatusGone)
		return
	}
	if q == nil || q.ID != body.Question {
		// Stale or out-of-order submission: the question is no longer
		// (or was never) pending for this member.
		http.Error(w, "no such pending question", http.StatusConflict)
		return
	}
	select {
	case q.answered <- answerMsg{Support: body.Support, Choice: body.Choice}:
	default:
		// Duplicate submission: the first answer won.
		http.Error(w, "question already answered", http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"accepted": true})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := map[string]any{
		"started": s.started,
		"done":    s.done,
		"answers": s.msps,
	}
	if s.runErr != nil {
		resp["error"] = s.runErr.Error()
	}
	if s.done && s.result != nil {
		resp["questions"] = s.result.Stats.Questions
		resp["departures"] = s.result.Stats.Departures
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
