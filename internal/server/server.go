// Package server implements the crowdsourcing platform of the OASSIS
// prototype (Sections 6.1–6.2): a web service through which crowd members
// receive the engine's questions and submit answers. The paper's system
// served a PHP web UI backed by the QueueManager; here the same roles are
// an HTTP JSON API backed by the event-driven mining kernel:
//
//	POST /join?member=<id>        register as a crowd member
//	POST /start                   launch the mining run (once enough joined)
//	GET  /question?member=<id>    fetch your next question (404: none yet,
//	                              410: the run is over)
//	POST /answer                  submit an answer for a question
//	GET  /results                 the MSPs discovered so far (streamed
//	                              incrementally, final when done)
//
// The server is an oassis.Broker: the kernel posts Ask events, the HTTP
// handlers resolve them into Reply events as answers arrive from the
// network. Nothing blocks per member — a question is a pending slot, not
// a parked goroutine; a single reaper goroutine turns expired slots into
// departure events.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"oassis"
	"oassis/internal/chaos"
	"oassis/internal/obs"
)

// Config parameterizes the platform.
type Config struct {
	// MinMembers gates /start.
	MinMembers int
	// AnswerTimeout bounds how long the engine waits for one member's
	// answer before treating them as departed (their session ends, as
	// Section 4.2 allows).
	AnswerTimeout time.Duration
	// AnswerRetries is how many extra AnswerTimeout windows a question
	// stays posted after its first deadline passes, covering members that
	// time out once and return. Only when every window expires is the
	// member declared departed and the question released for the engine
	// to reassign to the remaining crowd.
	AnswerRetries int
	// Clock is the platform's time source; nil uses the wall clock.
	// Chaos tests inject a chaos.VirtualClock to drive the deadline
	// machinery deterministically.
	Clock chaos.Clock
	// Obs, when set, instruments every endpoint (request counters and
	// latency by path), exposes the registry at GET /metrics, and counts
	// the platform's question lifecycle (posted, accepted, duplicate,
	// stale, expired, departed). Share the same observer with the session
	// (oassis.WithObserver) to scrape engine and platform in one place.
	Obs *oassis.Observer
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints leak heap contents and must be a
	// deliberate, per-deployment choice.
	EnablePprof bool
}

// Server is the running platform.
type Server struct {
	cfg Config
	sm  *obs.ServerMetrics // non-nil; all fields no-ops when unobserved

	mu      sync.Mutex
	session *oassis.Session
	members map[string]*memberSlot
	started bool
	done    bool
	result  *oassis.Result
	runErr  error
	msps    []string // incrementally discovered answers (rendered)

	// fleet is the named query fleet for multi-query serving: sessions
	// registered with AttachNamed, selectable per run via
	// POST /start?query=<name>. fleetNames preserves registration order
	// (the first entry is the default current session).
	fleet      map[string]*oassis.Session
	fleetNames []string
	current    string // fleet name of the attached session ("" = unnamed)

	nextQID int64

	// reapNotify wakes the reaper when a new question is posted;
	// reapStop ends it when the run completes.
	reapNotify chan struct{}
	reapStop   chan struct{}
}

// New builds a platform; attach the query session with Attach before
// serving. Stream answers into the server with oassis.WithOnMSP:
//
//	srv := server.New(server.Config{MinMembers: 5})
//	var sess *oassis.Session
//	sess, err := oassis.NewSession(store, q,
//	    oassis.WithOnMSP(func(a *oassis.Assignment) {
//	        srv.RecordAnswer(sess.DescribeAssignment(a))
//	    }))
//	srv.Attach(sess)
func New(cfg Config) *Server {
	if cfg.MinMembers <= 0 {
		cfg.MinMembers = 1
	}
	if cfg.AnswerTimeout <= 0 {
		cfg.AnswerTimeout = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = chaos.Real()
	}
	return &Server{
		cfg:        cfg,
		sm:         cfg.Obs.ServerSet().OrNop(),
		members:    make(map[string]*memberSlot),
		reapNotify: make(chan struct{}, 1),
		reapStop:   make(chan struct{}),
	}
}

// Attach installs the session the platform evaluates. After a run has
// completed, Attach may be called again with the next query: the run
// state (results, answers, question slots) is reset while the joined
// crowd is kept, so one long-lived server — typically backed by a shared
// cross-query answer store via oassis.WithPlatform — serves query after
// query against the same members, and /start launches each in turn.
func (s *Server) Attach(session *oassis.Session) {
	s.mu.Lock()
	if s.done {
		s.resetRunLocked()
	}
	s.session = session
	s.current = ""
	s.mu.Unlock()
}

// AttachNamed registers a session under a name in the server's query fleet.
// Every registered query is selectable per run with POST /start?query=<name>
// and listed by GET /queries; the first registration also becomes the
// attached (default) session. Building the fleet's sessions over one
// ontology shares the store's plan cache, so a hot query shape compiles once
// across the fleet no matter how many sessions serve it.
func (s *Server) AttachNamed(name string, session *oassis.Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.fleet[name]; !ok {
		if s.fleet == nil {
			s.fleet = make(map[string]*oassis.Session)
		}
		s.fleetNames = append(s.fleetNames, name)
	}
	s.fleet[name] = session
	if s.session == nil {
		s.session = session
		s.current = name
	}
}

// selectQueryLocked switches the attached session to the named fleet entry.
// Callers hold s.mu and have already ensured no run is in flight.
func (s *Server) selectQueryLocked(name string) error {
	sess, ok := s.fleet[name]
	if !ok {
		return fmt.Errorf("unknown query %q", name)
	}
	if s.session != sess {
		if s.done {
			s.resetRunLocked()
		}
		s.session = sess
	}
	s.current = name
	return nil
}

// resetRunLocked clears a completed run so the next /start launches a
// fresh one. Members stay joined; question IDs keep increasing so a
// stale answer from a past run can never match a new question.
func (s *Server) resetRunLocked() {
	s.started, s.done = false, false
	s.result, s.runErr = nil, nil
	s.msps = nil
	for _, m := range s.members {
		m.pending, m.gone = nil, false
	}
	s.reapStop = make(chan struct{})
}

// attached returns the session installed with Attach.
func (s *Server) attached() *oassis.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.session
}

// Result returns the finished run's result, or nil while the run is
// still in progress (or never started).
func (s *Server) Result() *oassis.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil
	}
	return s.result
}

// RecordAnswer appends one rendered answer to the incremental /results
// feed; wire it through oassis.WithOnMSP.
func (s *Server) RecordAnswer(text string) {
	s.mu.Lock()
	s.msps = append(s.msps, text)
	s.mu.Unlock()
}

// Handler returns the HTTP API. With Config.Obs every endpoint is wrapped
// with request counting and latency measurement, and GET /metrics serves the
// observer's registry as Prometheus text. /debug/pprof/ appears only when
// Config.EnablePprof is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.instrument("/join", s.handleJoin))
	mux.HandleFunc("POST /start", s.instrument("/start", s.handleStart))
	mux.HandleFunc("GET /question", s.instrument("/question", s.handleQuestion))
	mux.HandleFunc("POST /answer", s.instrument("/answer", s.handleAnswer))
	mux.HandleFunc("GET /results", s.instrument("/results", s.handleResults))
	mux.HandleFunc("GET /queries", s.instrument("/queries", s.handleQueries))
	mux.HandleFunc("GET /status", s.instrument("/status", s.handleStatus))
	if s.cfg.Obs != nil {
		mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
		mux.HandleFunc("GET /members", s.instrument("/members", s.handleMembers))
		mux.HandleFunc("GET /journal", s.instrument("/journal", s.handleJournal))
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request counting and latency
// measurement on the platform clock. Unobserved servers pass handlers
// through untouched — zero wrapping, zero overhead.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Obs == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Clock.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.sm.Request(path, fmt.Sprintf("%d", sw.code), s.cfg.Clock.Now().Sub(start))
	}
}

// handleMetrics serves the observer's registry in the Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Obs.Registry.WritePrometheus(w)
}

// question is one pending question for a member, as served to clients.
type question struct {
	ID int64 `json:"id"`
	// Kind is "concrete" or "specialization".
	Kind string `json:"kind"`
	// Text is the rendered natural-language question.
	Text string `json:"text"`
	// Options lists the candidate refinements of a specialization
	// question; answer with choice = index, or -1 for none of these.
	Options []string `json:"options,omitempty"`
}

// pendingQ is a posted question awaiting its answer: the wire form, the
// kernel's Ask event, the continuation that resolves it, and the
// deadline after which the reaper declares the member departed.
type pendingQ struct {
	q        question
	ask      *oassis.Ask
	deliver  func(oassis.Reply)
	posted   time.Time
	deadline time.Time
}

// memberSlot is one registered member's mailbox slot. No goroutine is
// parked here: the slot holds at most one pending question, and the
// HTTP handlers or the reaper resolve it.
type memberSlot struct {
	id      string
	pending *pendingQ
	// gone marks a member who missed every answer window; their session
	// ended and the run continues with the surviving crowd.
	gone bool
	// lastAnswered is the most recent question ID the member resolved,
	// kept to distinguish a duplicate submission from a stale one.
	lastAnswered int64
}

// Post implements oassis.Broker: it renders the kernel's Ask into a
// pending question for the addressed member and returns immediately.
// The reply is delivered later — by handleAnswer when the member
// responds, or by the reaper when every answer window expires.
func (s *Server) Post(ask *oassis.Ask, deliver func(oassis.Reply)) {
	sess := s.attached()
	q := question{}
	switch ask.Kind {
	case oassis.ConcreteAsk:
		q.Kind = "concrete"
		q.Text = sess.Describe(ask.Target)
	case oassis.SpecializeAsk:
		q.Kind = "specialization"
		q.Text = sess.Describe(ask.Base)
		q.Options = make([]string, len(ask.Options))
		for i, c := range ask.Options {
			q.Options[i] = sess.Describe(c)
		}
	}
	now := s.cfg.Clock.Now()
	window := s.cfg.AnswerTimeout * time.Duration(1+s.cfg.AnswerRetries)

	s.mu.Lock()
	m := s.members[ask.Member]
	if m == nil || m.gone {
		s.mu.Unlock()
		deliver(oassis.Reply{Ask: ask, Outcome: oassis.ReplyDeparted, Choice: -1})
		return
	}
	s.nextQID++
	q.ID = s.nextQID
	m.pending = &pendingQ{
		q:        q,
		ask:      ask,
		deliver:  deliver,
		posted:   now,
		deadline: now.Add(window),
	}
	s.mu.Unlock()
	s.sm.Posted.Inc()

	select {
	case s.reapNotify <- struct{}{}:
	default:
	}
}

// reap is the single deadline watchdog: it sleeps until the earliest
// pending deadline, expires overdue questions into departure events, and
// re-arms. It replaces the per-member goroutines the mailbox design
// parked in blocking Ask* calls. stop is this run's stop channel — each
// /start launches a fresh reaper bound to its own run.
func (s *Server) reap(stop <-chan struct{}) {
	for {
		s.mu.Lock()
		var next time.Time
		for _, m := range s.members {
			if m.pending != nil && (next.IsZero() || m.pending.deadline.Before(next)) {
				next = m.pending.deadline
			}
		}
		s.mu.Unlock()

		if next.IsZero() {
			select {
			case <-s.reapNotify:
				continue
			case <-stop:
				return
			}
		}
		if d := next.Sub(s.cfg.Clock.Now()); d > 0 {
			select {
			case <-s.cfg.Clock.After(d):
			case <-s.reapNotify:
				continue
			case <-stop:
				return
			}
		}
		s.expire()
	}
}

// expire turns every overdue pending question into a departure event.
func (s *Server) expire() {
	now := s.cfg.Clock.Now()
	var fire []*pendingQ
	s.mu.Lock()
	for _, m := range s.members {
		if m.pending != nil && !m.pending.deadline.After(now) {
			pq := m.pending
			m.pending = nil
			m.gone = true
			fire = append(fire, pq)
		}
	}
	s.mu.Unlock()
	for _, pq := range fire {
		s.sm.Expired.Inc()
		s.sm.Departed.Inc()
		pq.deliver(oassis.Reply{Ask: pq.ask, Outcome: oassis.ReplyDeparted, Choice: -1})
	}
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("member")
	if id == "" {
		http.Error(w, "member required", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		http.Error(w, "run already started", http.StatusConflict)
		return
	}
	if _, ok := s.members[id]; ok {
		http.Error(w, "member already joined", http.StatusConflict)
		return
	}
	s.members[id] = &memberSlot{id: id}
	writeJSON(w, map[string]any{"joined": id, "members": len(s.members)})
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.started {
		if !s.done {
			s.mu.Unlock()
			http.Error(w, "already started", http.StatusConflict)
			return
		}
		// The previous run finished: /start again re-runs the attached
		// query against the same joined crowd. Behind a shared answer
		// store (oassis.WithPlatform) the re-run is served from cached
		// crowd answers. /results is kept until this point — a restart,
		// not completion, discards the previous run's feed.
		s.resetRunLocked()
	}
	if name := r.URL.Query().Get("query"); name != "" {
		// Multi-query serving: run one of the fleet's registered queries.
		// The session was built once (AttachNamed) against the shared plan
		// cache, so switching queries never recompiles a known shape.
		if err := s.selectQueryLocked(name); err != nil {
			s.mu.Unlock()
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
	}
	if len(s.members) < s.cfg.MinMembers {
		n := len(s.members)
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("need %d members, have %d", s.cfg.MinMembers, n),
			http.StatusPreconditionFailed)
		return
	}
	sess := s.session
	if sess == nil {
		s.mu.Unlock()
		http.Error(w, "no session attached", http.StatusInternalServerError)
		return
	}
	s.started = true
	ids := make([]string, 0, len(s.members))
	for id := range s.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	stop := s.reapStop
	s.mu.Unlock()

	go s.reap(stop)
	go func() {
		res, err := sess.RunBroker(ids, s)
		s.mu.Lock()
		s.done = true
		s.result = res
		s.runErr = err
		s.mu.Unlock()
		close(stop)
	}()
	writeJSON(w, map[string]any{"started": true, "members": len(ids)})
}

func (s *Server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("member")
	s.mu.Lock()
	m, ok := s.members[id]
	done := s.done
	var pending *pendingQ
	var gone bool
	if ok {
		pending, gone = m.pending, m.gone
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	if done {
		http.Error(w, "run complete", http.StatusGone)
		return
	}
	if gone {
		// The member missed every answer window; their session ended.
		http.Error(w, "member departed", http.StatusGone)
		return
	}
	if pending == nil {
		http.Error(w, "no question pending", http.StatusNotFound)
		return
	}
	writeJSON(w, pending.q)
}

// answerBody is the POST /answer payload.
type answerBody struct {
	Member   string  `json:"member"`
	Question int64   `json:"question"`
	Support  float64 `json:"support"`
	// Choice answers a specialization question (-1 = none of these).
	Choice int `json:"choice"`
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var body answerBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad json: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Support < 0 || body.Support > 1 {
		http.Error(w, "support out of [0,1]", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	m, ok := s.members[body.Member]
	if !ok {
		s.mu.Unlock()
		http.Error(w, "unknown member", http.StatusNotFound)
		return
	}
	if m.gone {
		s.mu.Unlock()
		http.Error(w, "member departed", http.StatusGone)
		return
	}
	pq := m.pending
	if pq == nil || pq.q.ID != body.Question {
		code := "no such pending question"
		if pq == nil && body.Question == m.lastAnswered && m.lastAnswered != 0 {
			// Duplicate submission: the first answer won.
			code = "question already answered"
			s.sm.Duplicates.Inc()
		} else {
			s.sm.Stale.Inc()
		}
		s.mu.Unlock()
		// Stale, out-of-order or duplicate submission: the question is
		// no longer (or was never) pending for this member.
		http.Error(w, code, http.StatusConflict)
		return
	}
	m.pending = nil
	m.lastAnswered = pq.q.ID
	s.mu.Unlock()
	s.sm.Accepted.Inc()

	pq.deliver(oassis.Reply{
		Ask:     pq.ask,
		Outcome: oassis.ReplyAnswered,
		Support: body.Support,
		Choice:  body.Choice,
		Elapsed: s.cfg.Clock.Now().Sub(pq.posted),
	})
	writeJSON(w, map[string]any{"accepted": true})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Render the answers in deterministic order regardless of the
	// interleaving in which they were discovered.
	answers := append([]string(nil), s.msps...)
	sort.Strings(answers)
	resp := map[string]any{
		"started": s.started,
		"done":    s.done,
		"answers": answers,
	}
	if s.runErr != nil {
		resp["error"] = s.runErr.Error()
	}
	if s.done && s.result != nil {
		resp["questions"] = s.result.Stats.Questions
		resp["departures"] = s.result.Stats.Departures
	}
	writeJSON(w, resp)
}

// handleStatus reports live run progress: the platform's lifecycle flags,
// and — when the server carries an Observer — the kernel's live counters
// and gauges plus the journal's totals and the newest run's arrival-curve
// tail. It is the "is it stuck or mining?" endpoint: watch border shrink
// and questions climb without scraping the full /metrics text.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := map[string]any{
		"started": s.started,
		"done":    s.done,
		"members": len(s.members),
		"answers": len(s.msps),
	}
	if s.current != "" {
		resp["query"] = s.current
	}
	s.mu.Unlock()
	if o := s.cfg.Obs; o != nil {
		if km := o.KernelSet(); km != nil {
			resp["kernel"] = map[string]any{
				"rounds":     km.Rounds.Value(),
				"asks":       km.Asks.Value(),
				"questions":  km.Questions.Value(),
				"msps":       km.MSPs.Value(),
				"departures": km.Departures.Value(),
				"timeouts":   km.Timeouts.Value(),
				"in_flight":  km.InFlight.Value(),
				"border":     km.Border.Value(),
			}
		}
		if jr := o.JournalSet(); jr != nil {
			j := map[string]any{
				"events":  jr.Total(),
				"dropped": jr.Dropped(),
			}
			if run := jr.LastRun(); run != 0 {
				curve := jr.Curve(run)
				if len(curve) > 8 {
					curve = curve[len(curve)-8:]
				}
				j["run"] = run
				j["curve_tail"] = curve
			}
			resp["journal"] = j
		}
	}
	writeJSON(w, resp)
}

// handleMembers serves the per-member scorecards as JSON, sorted by member
// ID. 404 until the observer carries a scoreboard (oassis-serve
// -scorecards, or Observer.EnableScorecards).
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	b := s.cfg.Obs.BoardSet()
	if b == nil {
		http.Error(w, "scorecards not enabled", http.StatusNotFound)
		return
	}
	writeJSON(w, map[string]any{"members": b.Snapshot()})
}

// handleJournal streams the journal ring's most recent events as JSONL;
// ?n= bounds the tail (default 256, n<=0 for the whole surviving ring).
// 404 until the observer carries a journal.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	jr := s.cfg.Obs.JournalSet()
	if jr == nil {
		http.Error(w, "journal not enabled", http.StatusNotFound)
		return
	}
	n := 256
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	jr.WriteTailJSONL(w, n)
}

// handleQueries lists the registered query fleet: every AttachNamed name in
// registration order plus the currently attached selection.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := append([]string(nil), s.fleetNames...)
	current := s.current
	s.mu.Unlock()
	writeJSON(w, map[string]any{"queries": names, "current": current})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var _ oassis.Broker = (*Server)(nil)
