package exp

import (
	"fmt"
	"strings"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// AblationRow is one configuration of the robustness ablation.
type AblationRow struct {
	Label     string
	Questions int
	MSPs      int
	// Agreement is the fraction of valid assignments classified the same
	// way (significant or not) as in the clean-crowd reference run.
	Agreement float64
	Flagged   int
}

// AggregatorAblation studies the design choices behind the Section 4.2
// black-box: it contaminates a domain crowd with spammers and compares the
// mean, majority and trust-weighted(+consistency filter) aggregators
// against a clean-crowd reference. This is the ablation DESIGN.md calls out
// for the pluggable-aggregation decision.
func AggregatorAblation(cfg synth.DomainConfig, spammers int, seed int64) ([]AblationRow, error) {
	cfg.Obs = obsv
	d, err := synth.NewDomain(cfg)
	if err != nil {
		return nil, err
	}
	theta := d.Query.Satisfying.Support

	// Reference: honest crowd, paper aggregator.
	ref := core.NewEngine(d.Space, d.Members, core.EngineConfig{
		Theta:            theta,
		Aggregator:       crowd.NewMeanAggregator(aggK, theta),
		Seed:             seed,
		SelectionWorkers: selWorkers,
		Obs:              obsv,
	}).Run()
	refClass := classifyValid(d, ref)
	rows := []AblationRow{{
		Label:     "clean crowd / mean",
		Questions: ref.Stats.Questions,
		MSPs:      len(ref.ValidMSPs),
		Agreement: 1,
	}}

	noisy := append([]crowd.Member{}, d.Members...)
	for i := 0; i < spammers; i++ {
		noisy = append(noisy, crowd.NewSpammer(fmt.Sprintf("spam-%d", i), seed+int64(i)))
	}
	type variant struct {
		label       string
		agg         crowd.Aggregator
		consistency bool
		calibration int
	}
	for _, vr := range []variant{
		{"spammed / mean", crowd.NewMeanAggregator(aggK, theta), false, 0},
		{"spammed / majority", crowd.NewMajorityAggregator(aggK, theta), false, 0},
		{"spammed / trust+filter", crowd.NewTrustWeightedAggregator(aggK, theta), true, 6},
	} {
		eng := core.NewEngine(d.Space, noisy, core.EngineConfig{
			Theta:                theta,
			Aggregator:           vr.agg,
			Consistency:          vr.consistency,
			CalibrationQuestions: vr.calibration,
			Seed:                 seed,
			SelectionWorkers:     selWorkers,
			Obs:                  obsv,
		})
		res := eng.Run()
		rows = append(rows, AblationRow{
			Label:     vr.label,
			Questions: res.Stats.Questions,
			MSPs:      len(res.ValidMSPs),
			Agreement: agreement(refClass, classifyValid(d, res)),
			Flagged:   len(eng.FlaggedSpammers()),
		})
	}
	return rows, nil
}

// classifyValid derives, from a run's MSP border, the significance of every
// valid assignment: a is significant iff it generalizes some MSP.
func classifyValid(d *synth.Domain, r *core.Result) []bool {
	out := make([]bool, len(d.Space.Valid()))
	for i, a := range d.Space.Valid() {
		for _, m := range r.MSPs {
			if d.Space.Leq(a, m) {
				out[i] = true
				break
			}
		}
	}
	return out
}

func agreement(a, b []bool) float64 {
	if len(a) == 0 {
		return 1
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// RenderAblation formats the robustness ablation.
func RenderAblation(domain string, spammers int, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aggregator robustness ablation — %s crowd + %d spammers\n", domain, spammers)
	fmt.Fprintf(&b, "%-26s %11s %6s %10s %8s\n", "configuration", "#questions", "#MSPs", "agreement", "flagged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %11d %6d %9.1f%% %8d\n",
			r.Label, r.Questions, r.MSPs, 100*r.Agreement, r.Flagged)
	}
	return b.String()
}
