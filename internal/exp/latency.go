package exp

import (
	"fmt"
	"strings"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// Section 6.3 reports wall-clock behaviour: "As our user base kept growing
// between subsequent queries, a speedup was observed in finding the first
// MSP, which dropped from 28 minutes to less than 4, and in completing the
// execution, which dropped from 36 hours to less than 10." The experiment
// here reproduces the shape: the same query runs against growing member
// pools, and question counts are converted to simulated wall-clock time
// under a simple latency model — members answer concurrently, one question
// at a time, with a fixed mean think-time per answer.

// GrowthRow is one crowd size of the growth study.
type GrowthRow struct {
	Members int
	// QuestionsToFirstMSP and QuestionsTotal count crowd questions.
	QuestionsToFirstMSP int
	QuestionsTotal      int
	// FirstMSPMinutes and TotalHours are simulated wall-clock times under
	// the latency model.
	FirstMSPMinutes float64
	TotalHours      float64
}

// LatencyModel converts question counts into simulated time.
type LatencyModel struct {
	// MeanAnswerSeconds is the average time a member takes per answer
	// (browsing to the site, reading, answering).
	MeanAnswerSeconds float64
	// ActiveFraction is the share of the member pool answering at any
	// moment (a crowd is never all online at once).
	ActiveFraction float64
}

// DefaultLatency roughly matches the paper's observed rates: with ~250
// members, ~1400 questions complete in tens of hours.
var DefaultLatency = LatencyModel{MeanAnswerSeconds: 90, ActiveFraction: 0.02}

// seconds converts a question count to simulated seconds for a pool size.
func (m LatencyModel) seconds(questions, members int) float64 {
	active := float64(members) * m.ActiveFraction
	if active < 1 {
		active = 1
	}
	return float64(questions) * m.MeanAnswerSeconds / active
}

// CrowdGrowth runs one domain query against growing member pools and
// reports the questions and simulated time to the first MSP and to
// completion.
func CrowdGrowth(cfg synth.DomainConfig, sizes []int, model LatencyModel, seed int64) ([]GrowthRow, error) {
	var rows []GrowthRow
	for _, n := range sizes {
		dcfg := cfg
		dcfg.Members = n
		dcfg.Obs = obsv
		d, err := synth.NewDomain(dcfg)
		if err != nil {
			return nil, err
		}
		theta := d.Query.Satisfying.Support
		firstMSPAt := -1
		eng := core.NewEngine(d.Space, d.Members, core.EngineConfig{
			Theta:            theta,
			Aggregator:       crowd.NewMeanAggregator(aggK, theta),
			Seed:             seed,
			SelectionWorkers: selWorkers,
			Obs:              obsv,
		})
		res := eng.Run()
		for _, p := range res.Stats.Progress {
			if p.MSPs > 0 {
				firstMSPAt = p.Questions
				break
			}
		}
		if firstMSPAt < 0 {
			firstMSPAt = res.Stats.Questions
		}
		rows = append(rows, GrowthRow{
			Members:             n,
			QuestionsToFirstMSP: firstMSPAt,
			QuestionsTotal:      res.Stats.Questions,
			FirstMSPMinutes:     model.seconds(firstMSPAt, n) / 60,
			TotalHours:          model.seconds(res.Stats.Questions, n) / 3600,
		})
	}
	return rows, nil
}

// RenderGrowth formats the growth study.
func RenderGrowth(domain string, rows []GrowthRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crowd growth — %s (paper: first MSP 28min → <4min, completion 36h → <10h as the user base grew)\n", domain)
	fmt.Fprintf(&b, "%8s %14s %12s %14s %12s\n",
		"#members", "q(first MSP)", "q(total)", "first MSP", "completion")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %14d %12d %11.1f min %9.1f h\n",
			r.Members, r.QuestionsToFirstMSP, r.QuestionsTotal,
			r.FirstMSPMinutes, r.TotalHours)
	}
	return b.String()
}
