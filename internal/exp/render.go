package exp

import (
	"fmt"
	"strings"
)

// RenderCrowdStats formats a Figure 4a/4b/4c dataset as the paper-style
// rows: one line per threshold with #MSPs, #valid, #questions, baseline%.
func RenderCrowdStats(r *CrowdStatsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crowd statistics — %s (|A_valid|=%d, DAG nodes=%d, lazily generated=%d)\n",
		r.Domain, r.Valid, r.DAGNodes, r.Generated)
	fmt.Fprintf(&b, "%-6s %8s %8s %11s %10s\n", "theta", "#MSPs", "#valid", "#questions", "baseline%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6.2f %8d %8d %11d %9.1f%%\n",
			row.Theta, row.MSPs, row.ValidMSPs, row.Questions, row.BaselinePct)
	}
	fmt.Fprintf(&b, "answer mix at theta=%.2f: %.0f%% specialization (%.0f%% none-of-these), %.0f%% pruning clicks, rest concrete\n",
		r.Rows[0].Theta, r.SpecPct, r.NoneOfThesePct, r.PrunePct)
	return b.String()
}

// RenderPace formats a Figure 4d/4e dataset: #questions as a function of
// the percentages discovered.
func RenderPace(r *PaceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pace of data collection — %s (theta=%.2f; final: %d questions, %d MSPs, %d valid)\n",
		r.Domain, r.Theta, r.FinalQuestions, r.FinalMSPs, r.FinalValidMSPs)
	if len(r.Points) > 0 && r.Points[0].HasValidMSPPct {
		fmt.Fprintf(&b, "%10s %16s %12s %12s\n", "#questions", "classified-val%", "validMSP%", "allMSP%")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%10d %15.1f%% %11.1f%% %11.1f%%\n",
				p.Questions, p.ClassifiedPct, p.ValidMSPPct, p.MSPPct)
		}
	} else {
		fmt.Fprintf(&b, "%10s %16s %12s\n", "#questions", "classified-val%", "allMSP%")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%10d %15.1f%% %11.1f%%\n",
				p.Questions, p.ClassifiedPct, p.MSPPct)
		}
	}
	return b.String()
}

// RenderCurves formats Figure 4f / 5 series: questions to reach each decile
// of discovered valid MSPs, one column per series.
func RenderCurves(title string, curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", "%discovered")
	for _, c := range curves {
		fmt.Fprintf(&b, " %14s", c.Label)
	}
	b.WriteByte('\n')
	for dec := 0; dec < 10; dec++ {
		fmt.Fprintf(&b, "%-12d", (dec+1)*10)
		for _, c := range curves {
			fmt.Fprintf(&b, " %14.1f", c.QuestionsAt[dec])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderLaziness formats the Section 6.4 laziness measurement.
func RenderLaziness(r *LazinessResult) string {
	return fmt.Sprintf(
		"Lazy generation (width=%d depth=%d, multiplicity MSPs of size %d):\n"+
			"  lazily generated assignments: %d\n"+
			"  eager DAG up to multiplicity %d: %.3g\n"+
			"  generated fraction: %.3f%% (paper: <1%%)\n",
		r.Width, r.Depth, r.MultiSize, r.Generated, r.MaxSetSize, r.Eager, r.GeneratedPct)
}

// RenderSweep formats a shape/distribution sweep.
func RenderSweep(title string, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-24s %11s %8s\n", title, "config", "#questions", "#MSPs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %11d %8d\n", r.Label, r.Questions, r.MSPs)
	}
	return b.String()
}
