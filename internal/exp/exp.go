// Package exp is the experiment harness: it regenerates the data series
// behind every figure of the OASSIS evaluation (Section 6) — the per-domain
// crowd statistics of Figures 4a–4c, the pace-of-collection curves of
// Figures 4d–4e, the answer-type study of Figure 4f, the algorithm
// comparison of Figures 5a–5c, and the in-text claims of Sections 6.3–6.4.
package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/synth"
	"oassis/internal/vocab"
)

// obsv, when set via SetObserver, observes every experiment this package
// runs: engines get kernel/broker metrics and round spans, the synth query
// pipelines get sparql metrics, and the harness itself traces the
// build/mine phases of each figure. Nil (the default) disables all of it.
var obsv *obs.Observer

// SetObserver attaches o to all subsequent experiment runs (nil detaches).
// The caller owns phase labelling: stamp o.Tracer.SetPhase(figureID) before
// each figure so its spans group under the figure in traces and summaries.
func SetObserver(o *obs.Observer) { obsv = o }

// selWorkers is the SelectionWorkers knob applied to every engine this
// package builds; 0 (the default) keeps the serial kernel.
var selWorkers int

// SetSelectionWorkers shards per-round question selection of all subsequent
// experiment engines across n workers (0 or 1 = serial kernel). Results are
// byte-identical either way; only wall-clock changes.
func SetSelectionWorkers(n int) { selWorkers = n }

// span opens one harness stage: it returns a func that records the elapsed
// wall-clock span, with any end-time attributes, when called. No-op without
// an observer.
func span(name string) func(attrs ...obs.Attr) {
	tr := obsv.Trace()
	start := tr.Begin()
	return func(attrs ...obs.Attr) { tr.End(name, start, attrs...) }
}

// CrowdStatsRow is one threshold row of Figures 4a–4c.
type CrowdStatsRow struct {
	Theta     float64
	MSPs      int
	ValidMSPs int
	Questions int
	// BaselinePct is Questions as a percentage of the baseline
	// algorithm's cost (K answers for every valid assignment, no
	// traversal order — Section 6.3).
	BaselinePct float64
}

// CrowdStatsResult is the Figure 4a/4b/4c dataset for one domain.
type CrowdStatsResult struct {
	Domain string
	// Valid is |𝒜valid|; DAGNodes approximates the eager closure size
	// without multiplicities (the paper reports 4773/10512/2307).
	Valid    int
	DAGNodes int
	Rows     []CrowdStatsRow
	// Question-type breakdown over the Θ=base run (the paper reports
	// 12% specialization, of which half none-of-these, 13% pruning).
	SpecPct, NoneOfThesePct, PrunePct float64
	// Generated counts lazily materialized assignments in the base run.
	Generated int
}

// aggK is the paper's decision quota: 5 answers per assignment.
const aggK = 5

// CrowdStats reproduces Figures 4a–4c for one domain config: the query runs
// once per threshold, ascending, with a shared CrowdCache so later runs
// replay earlier answers (Section 6.3's methodology).
//
// The assignment Space is built ONCE and shared by every threshold run:
// each core.NewEngine below gets a fresh classifier and aggregator (the
// verdicts depend on theta) but reuses d.Space's interner and edge cache,
// so successor/predecessor lists computed while mining at theta_1 are free
// for every later threshold — the replay counterpart of the answer cache.
func CrowdStats(cfg synth.DomainConfig, thetas []float64, seed int64) (*CrowdStatsResult, error) {
	cfg.Obs = obsv
	build := span("domain_build")
	d, err := synth.NewDomain(cfg)
	if err != nil {
		return nil, err
	}
	build(obs.Attr{Key: "valid", Val: int64(len(d.Space.Valid()))})
	cache := core.NewCrowdCache()
	members := make([]crowd.Member, len(d.Members))
	for i, m := range d.Members {
		members[i] = cache.Wrap(m)
	}
	res := &CrowdStatsResult{
		Domain:   cfg.Name,
		Valid:    len(d.Space.Valid()),
		DAGNodes: EagerNodes(d.Space),
	}
	sorted := append([]float64{}, thetas...)
	sort.Float64s(sorted)
	for i, theta := range sorted {
		mine := span("mine")
		eng := core.NewEngine(d.Space, members, core.EngineConfig{
			Theta:               theta,
			Aggregator:          crowd.NewMeanAggregator(aggK, theta),
			SpecializationRatio: 0.12,
			Seed:                seed,
			SelectionWorkers:    selWorkers,
			Obs:                 obsv,
		})
		r := eng.Run()
		mine(obs.Attr{Key: "theta_pct", Val: int64(100 * theta)},
			obs.Attr{Key: "questions", Val: int64(r.Stats.Questions)})
		baseline := aggK * len(d.Space.Valid())
		res.Rows = append(res.Rows, CrowdStatsRow{
			Theta:       theta,
			MSPs:        len(r.MSPs),
			ValidMSPs:   len(r.ValidMSPs),
			Questions:   r.Stats.Questions,
			BaselinePct: 100 * float64(r.Stats.Questions) / float64(baseline),
		})
		if i == 0 {
			q := float64(r.Stats.Questions)
			res.SpecPct = 100 * float64(r.Stats.SpecialQ) / q
			res.NoneOfThesePct = 100 * float64(r.Stats.NoneOfThese) / q
			res.PrunePct = 100 * float64(r.Stats.PruneClicks) / q
			res.Generated = r.Stats.Generated
		}
	}
	return res, nil
}

// PacePoint is one sample of Figures 4d–4e.
type PacePoint struct {
	Questions       int
	ClassifiedPct   float64 // % of valid assignments classified
	MSPPct          float64 // % of all MSPs discovered
	ValidMSPPct     float64 // % of valid MSPs discovered
	HasValidMSPPct  bool    // false when every MSP is valid (4b/4c style)
	ClassifiedValid int
}

// PaceResult is the Figure 4d/4e dataset.
type PaceResult struct {
	Domain string
	Theta  float64
	Points []PacePoint
	// FinalQuestions, FinalMSPs summarize the run.
	FinalQuestions int
	FinalMSPs      int
	FinalValidMSPs int
}

// Pace reproduces Figures 4d–4e: the number of questions as a function of
// the percentage of discovered MSPs / valid MSPs / classified valid
// assignments, at the base threshold.
func Pace(cfg synth.DomainConfig, theta float64, seed int64) (*PaceResult, error) {
	cfg.Obs = obsv
	build := span("domain_build")
	d, err := synth.NewDomain(cfg)
	if err != nil {
		return nil, err
	}
	build(obs.Attr{Key: "valid", Val: int64(len(d.Space.Valid()))})
	mine := span("mine")
	eng := core.NewEngine(d.Space, d.Members, core.EngineConfig{
		Theta:               theta,
		Aggregator:          crowd.NewMeanAggregator(aggK, theta),
		SpecializationRatio: 0.12,
		Seed:                seed,
		SelectionWorkers:    selWorkers,
		Obs:                 obsv,
	})
	r := eng.Run()
	mine(obs.Attr{Key: "questions", Val: int64(r.Stats.Questions)})
	res := &PaceResult{
		Domain:         cfg.Name,
		Theta:          theta,
		FinalQuestions: r.Stats.Questions,
		FinalMSPs:      len(r.MSPs),
		FinalValidMSPs: len(r.ValidMSPs),
	}
	totalValidAssign := len(d.Space.Valid())
	distinctValid := len(r.ValidMSPs) != len(r.MSPs)
	// Sample ~40 evenly spaced progress points.
	step := len(r.Stats.Progress)/40 + 1
	for i := 0; i < len(r.Stats.Progress); i += step {
		p := r.Stats.Progress[i]
		res.Points = append(res.Points, pacePoint(p, totalValidAssign, res, distinctValid))
	}
	if len(r.Stats.Progress) > 0 {
		last := r.Stats.Progress[len(r.Stats.Progress)-1]
		res.Points = append(res.Points, pacePoint(last, totalValidAssign, res, distinctValid))
	}
	return res, nil
}

func pacePoint(p core.ProgressPoint, totalValid int, res *PaceResult, distinctValid bool) PacePoint {
	pp := PacePoint{
		Questions:       p.Questions,
		ClassifiedValid: p.ClassifiedValid,
		HasValidMSPPct:  distinctValid,
	}
	if totalValid > 0 {
		pp.ClassifiedPct = 100 * float64(p.ClassifiedValid) / float64(totalValid)
	}
	if res.FinalMSPs > 0 {
		pp.MSPPct = 100 * float64(p.MSPs) / float64(res.FinalMSPs)
	}
	if res.FinalValidMSPs > 0 {
		pp.ValidMSPPct = 100 * float64(p.ValidMSPs) / float64(res.FinalValidMSPs)
	}
	return pp
}

// Curve is one series of Figures 4f and 5: the questions needed to discover
// each decile of the (planted) valid MSPs, averaged over trials.
type Curve struct {
	Label string
	// QuestionsAt[i] is the mean number of questions to discover
	// (i+1)*10 percent of the planted MSPs.
	QuestionsAt [10]float64
}

// discoveryCurve turns per-MSP discovery times into decile costs.
func discoveryCurve(at []int) [10]float64 {
	times := append([]int{}, at...)
	for i, t := range times {
		if t < 0 {
			times[i] = 1 << 30 // undiscovered: beyond any budget
		}
	}
	sort.Ints(times)
	var out [10]float64
	n := len(times)
	for dec := 1; dec <= 10; dec++ {
		// Questions to discover dec*10% of the MSPs.
		need := (n*dec + 9) / 10
		if need == 0 {
			continue
		}
		out[dec-1] = float64(times[need-1])
	}
	return out
}

// AnswerTypes reproduces Figure 4f: the vertical algorithm under different
// ratios of specialization answers and user-guided pruning clicks, on a
// synthetic DAG with a single simulated user.
func AnswerTypes(dagCfg synth.DAGConfig, trials int, seed int64) ([]Curve, error) {
	type variant struct {
		label      string
		specRatio  float64
		pruneRatio float64
	}
	variants := []variant{
		{"100% closed", 0, 0},
		{"10% special.", 0.10, 0},
		{"50% special.", 0.50, 0},
		{"100% special.", 1.0, 0},
		{"25% pruning", 0, 0.25},
		{"50% pruning", 0, 0.50},
	}
	curves := make([]Curve, len(variants))
	for vi, vr := range variants {
		curves[vi].Label = vr.label
		var acc [10]float64
		for tr := 0; tr < trials; tr++ {
			cfg := dagCfg
			cfg.Seed = seed + int64(tr)
			cfg.Obs = obsv
			d, err := synth.NewDAG(cfg)
			if err != nil {
				return nil, err
			}
			mine := span("mine")
			run := &core.SingleUser{
				Space:               d.Space,
				Member:              d.Oracle(vr.pruneRatio, seed+int64(tr)),
				Theta:               0.5,
				SpecializationRatio: vr.specRatio,
				Seed:                seed + int64(100+tr),
				Watch:               d.Planted,
				Obs:                 obsv,
			}
			r := run.Run()
			mine(obs.Attr{Key: "variant", Val: int64(vi)},
				obs.Attr{Key: "questions", Val: int64(r.Stats.Questions)})
			c := discoveryCurve(r.Stats.WatchDiscoveredAt)
			for i := range acc {
				acc[i] += c[i]
			}
		}
		for i := range acc {
			curves[vi].QuestionsAt[i] = acc[i] / float64(trials)
		}
	}
	return curves, nil
}

// Algorithms reproduces Figures 5a–5c: vertical vs horizontal vs naive on a
// synthetic DAG at a given MSP density, averaged over trials.
func Algorithms(dagCfg synth.DAGConfig, trials int, seed int64) ([]Curve, error) {
	strategies := []core.Strategy{core.Vertical, core.Horizontal, core.Naive}
	curves := make([]Curve, len(strategies))
	for si, st := range strategies {
		curves[si].Label = st.String()
		var acc [10]float64
		for tr := 0; tr < trials; tr++ {
			cfg := dagCfg
			cfg.Seed = seed + int64(tr)
			cfg.Obs = obsv
			d, err := synth.NewDAG(cfg)
			if err != nil {
				return nil, err
			}
			mine := span("mine")
			run := &core.SingleUser{
				Space:    d.Space,
				Member:   d.Oracle(0, seed+int64(tr)),
				Theta:    0.5,
				Strategy: st,
				Seed:     seed + int64(100+tr),
				Watch:    d.Planted,
				Obs:      obsv,
			}
			r := run.Run()
			mine(obs.Attr{Key: "strategy", Val: int64(si)},
				obs.Attr{Key: "questions", Val: int64(r.Stats.Questions)})
			c := discoveryCurve(r.Stats.WatchDiscoveredAt)
			for i := range acc {
				acc[i] += c[i]
			}
		}
		for i := range acc {
			curves[si].QuestionsAt[i] = acc[i] / float64(trials)
		}
	}
	return curves, nil
}

// LazinessResult quantifies the Section 6.4 laziness claim: the lazy
// generator materializes a vanishing fraction of the eager DAG "up to the
// same multiplicity".
type LazinessResult struct {
	Width, Depth int
	MultiSize    int
	// Generated is the number of assignments the lazy run materialized.
	Generated int
	// MaxSetSize is the largest value-set size the run explored (planted
	// multiplicity size + 1: the algorithm probes one step beyond an MSP
	// to confirm maximality).
	MaxSetSize int
	// Eager estimates the eager node count up to MaxSetSize: all
	// antichain value sets of size ≤ MaxSetSize (sampled for size ≥ 3).
	Eager        float64
	GeneratedPct float64
}

// Laziness measures lazily generated vs eager node counts on a multiplicity
// DAG run.
func Laziness(dagCfg synth.DAGConfig, seed int64) (*LazinessResult, error) {
	if dagCfg.MultiMSPPercent <= 0 {
		dagCfg.MultiMSPPercent = 0.02
	}
	if dagCfg.MultiMSPSize < 2 {
		dagCfg.MultiMSPSize = 2
	}
	dagCfg.Obs = obsv
	d, err := synth.NewDAG(dagCfg)
	if err != nil {
		return nil, err
	}
	r := (&core.SingleUser{
		Space: d.Space, Member: d.Oracle(0, seed), Theta: 0.5, Seed: seed, Obs: obsv,
	}).Run()
	maxSize := dagCfg.MultiMSPSize + 1
	eager := eagerAntichains(d, maxSize, seed)
	return &LazinessResult{
		Width: dagCfg.Width, Depth: dagCfg.Depth, MultiSize: dagCfg.MultiMSPSize,
		Generated:    r.Stats.Generated,
		MaxSetSize:   maxSize,
		Eager:        eager,
		GeneratedPct: 100 * float64(r.Stats.Generated) / eager,
	}, nil
}

// eagerAntichains estimates the number of antichain value sets of size up to
// maxSize over the DAG nodes: C(n,k) times the sampled probability that a
// random k-subset is an antichain.
func eagerAntichains(d *synth.DAG, maxSize int, seed int64) float64 {
	valid := d.Space.Valid()
	n := len(valid)
	rng := rand.New(rand.NewSource(seed))
	total := float64(n) // size-1 sets
	for k := 2; k <= maxSize; k++ {
		const samples = 20000
		hits := 0
		idx := make([]int, k)
		for s := 0; s < samples; s++ {
			distinct := true
			for i := range idx {
				idx[i] = rng.Intn(n)
				for j := 0; j < i; j++ {
					if idx[j] == idx[i] {
						distinct = false
					}
				}
			}
			if !distinct {
				continue
			}
			anti := true
			for i := 0; i < k && anti; i++ {
				for j := i + 1; j < k; j++ {
					a, b := valid[idx[i]], valid[idx[j]]
					if d.Space.Leq(a, b) || d.Space.Leq(b, a) {
						anti = false
						break
					}
				}
			}
			if anti {
				hits++
			}
		}
		// C(n, k)
		comb := 1.0
		for i := 0; i < k; i++ {
			comb *= float64(n-i) / float64(i+1)
		}
		total += comb * float64(hits) / float64(samples)
	}
	return total
}

// SweepRow is one row of the Section 6.4 shape/distribution sweeps.
type SweepRow struct {
	Label     string
	Questions int
	MSPs      int
}

// ShapeSweep varies DAG width and depth at fixed MSP density, showing the
// paper's observation that shape does not change the trends.
func ShapeSweep(widths, depths []int, mspPct float64, seed int64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, w := range widths {
		for _, dep := range depths {
			d, err := synth.NewDAG(synth.DAGConfig{
				Width: w, Depth: dep, MSPPercent: mspPct, Seed: seed, Obs: obsv,
			})
			if err != nil {
				return nil, err
			}
			r := (&core.SingleUser{
				Space: d.Space, Member: d.Oracle(0, seed), Theta: 0.5, Seed: seed, Obs: obsv,
			}).Run()
			rows = append(rows, SweepRow{
				Label:     fmt.Sprintf("width=%d depth=%d", w, dep),
				Questions: r.Stats.Questions,
				MSPs:      len(r.MSPs),
			})
		}
	}
	return rows, nil
}

// MultiplicitySweep checks the Section 6.4 claim that "the number of
// questions depends on the % of MSPs, and not on whether they include
// multiplicities": the same total MSP budget is planted as singletons only,
// then partly as multiplicity sets, and the question counts are compared.
func MultiplicitySweep(width, depth int, mspPct float64, seed int64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, multi := range []struct {
		label string
		pct   float64
		size  int
	}{
		{"singletons only", 0, 0},
		{"1% multiplicity size 2", 0.01, 2},
		{"2% multiplicity size 3", 0.02, 3},
	} {
		d, err := synth.NewDAG(synth.DAGConfig{
			Width: width, Depth: depth,
			MSPPercent:      mspPct,
			MultiMSPPercent: multi.pct,
			MultiMSPSize:    multi.size,
			Seed:            seed,
			Obs:             obsv,
		})
		if err != nil {
			return nil, err
		}
		r := (&core.SingleUser{
			Space: d.Space, Member: d.Oracle(0, seed), Theta: 0.5, Seed: seed, Obs: obsv,
		}).Run()
		rows = append(rows, SweepRow{
			Label:     multi.label,
			Questions: r.Stats.Questions,
			MSPs:      len(r.MSPs),
		})
	}
	return rows, nil
}

// DistributionSweep varies the planted-MSP distribution.
func DistributionSweep(dagCfg synth.DAGConfig, seed int64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, dist := range []synth.Distribution{synth.Uniform, synth.Near, synth.Far} {
		cfg := dagCfg
		cfg.Distribution = dist
		cfg.Obs = obsv
		d, err := synth.NewDAG(cfg)
		if err != nil {
			return nil, err
		}
		r := (&core.SingleUser{
			Space: d.Space, Member: d.Oracle(0, seed), Theta: 0.5, Seed: seed, Obs: obsv,
		}).Run()
		rows = append(rows, SweepRow{
			Label:     dist.String(),
			Questions: r.Stats.Questions,
			MSPs:      len(r.MSPs),
		})
	}
	return rows, nil
}

// EagerNodes counts the multiplicity-1 closure of the space: every distinct
// value of each mining variable across 𝒜valid plus all its generalizations,
// multiplied across variables. This is the "DAG node count" the paper
// reports (4773 / 10512 / 2307 for the three domains).
func EagerNodes(sp *assign.Space) int {
	v := sp.Vocabulary()
	n := 1
	for _, vs := range sp.Vars() {
		seen := map[vocab.TermID]bool{}
		for _, a := range sp.Valid() {
			vals := a.Values(vs.Name)
			if len(vals) != 1 {
				continue
			}
			if seen[vals[0]] {
				continue
			}
			seen[vals[0]] = true
			if vs.Kind == vocab.Element {
				for _, anc := range v.ElementAncestors(vals[0]) {
					seen[anc] = true
				}
			}
		}
		if len(seen) > 0 {
			n *= len(seen)
		}
	}
	return n
}
