package exp_test

import (
	"strings"
	"testing"

	"oassis/internal/exp"
	"oassis/internal/synth"
)

func TestChaosResilience(t *testing.T) {
	cfg := synth.DAGConfig{Width: 24, Depth: 3, MSPPercent: 0.05, Seed: 11}
	rates := []float64{0, 0.25, 0.5}
	rows, err := exp.ChaosResilience(cfg, 8, rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rates) {
		t.Fatalf("rows = %d, want %d", len(rows), len(rates))
	}
	if rows[0].Departed != 0 || rows[0].RecallPct != 100 {
		t.Fatalf("fault-free baseline row is faulty: %+v", rows[0])
	}
	for i, r := range rows {
		want := int(rates[i] * 8)
		if r.Departed != want {
			t.Errorf("rate %.2f: departed %d, want %d", rates[i], r.Departed, want)
		}
		if r.VirtualHours <= 0 {
			t.Errorf("rate %.2f: no virtual time elapsed", rates[i])
		}
		// The oracles are clones: any surviving subset holds the whole
		// ground truth, so recall must not degrade.
		if r.RecallPct != 100 {
			t.Errorf("rate %.2f: recall %.1f%%, want 100%%", rates[i], r.RecallPct)
		}
	}
	// Deterministic replay: the sweep is a pure function of its seeds.
	again, err := exp.ChaosResilience(cfg, 8, rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d diverged on replay: %+v vs %+v", i, rows[i], again[i])
		}
	}
	out := exp.RenderChaos(rows)
	if !strings.Contains(out, "depart%") || !strings.Contains(out, "recall%") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}
