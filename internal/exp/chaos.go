package exp

import (
	"fmt"
	"strings"
	"time"

	"oassis/internal/chaos"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/obs"
	"oassis/internal/synth"
)

// The chaos-resilience study measures what the paper's evaluation could
// not: how the engine degrades when the crowd misbehaves. A synthetic DAG
// is mined by a pool of oracle clones with heavy-tailed answer latency
// while a growing fraction of the pool departs mid-run; the whole scenario
// runs on a virtual clock so the simulated wall-clock cost comes for free
// and every row replays deterministically from the seed.

// ChaosRow is one departure-rate point of the resilience study.
type ChaosRow struct {
	// DepartFraction is the fraction of the member pool configured to
	// leave mid-run; Departed is how many the engine actually wrote off.
	DepartFraction float64
	Members        int
	Departed       int
	// Questions counts answered crowd questions (departures excluded).
	Questions int
	MSPs      int
	// RecallPct is the share of the fault-free run's MSPs this degraded
	// run still reported.
	RecallPct float64
	// VirtualHours is the simulated wall-clock cost under the latency
	// faults.
	VirtualHours float64
}

// ChaosResilience sweeps departure rates over one synthetic DAG mined by
// oracle clones with heavy-tailed latency. rates should start at 0: the
// first row doubles as the fault-free recall baseline.
func ChaosResilience(dagCfg synth.DAGConfig, members int, rates []float64, seed int64) ([]ChaosRow, error) {
	var rows []ChaosRow
	var baseline map[string]bool
	for _, rate := range rates {
		cfg := dagCfg
		cfg.Obs = obsv
		d, err := synth.NewDAG(cfg)
		if err != nil {
			return nil, err
		}
		clock := chaos.NewVirtualClock()
		departing := int(rate * float64(members))
		pool := make([]crowd.Member, members)
		for i := range pool {
			f := chaos.Faults{
				Seed:           seed*1000 + int64(i),
				ID:             fmt.Sprintf("oracle-%d", i),
				LatencyMin:     20 * time.Second,
				LatencyMax:     3 * time.Minute,
				HeavyTailAlpha: 1.5,
			}
			if i < departing {
				f.DepartAfter = 2 + i
			}
			pool[i] = chaos.Wrap(d.Oracle(0, seed+int64(i)), clock, f)
		}
		theta := d.Query.Satisfying.Support
		mine := span("mine")
		res := core.NewEngine(d.Space, pool, core.EngineConfig{
			Theta:            theta,
			Aggregator:       crowd.NewMeanAggregator(3, theta),
			Seed:             seed,
			Clock:            clock,
			SelectionWorkers: selWorkers,
			Obs:              obsv,
		}).Run()
		mine(obs.Attr{Key: "depart_pct", Val: int64(100 * rate)},
			obs.Attr{Key: "questions", Val: int64(res.Stats.Questions)})
		found := make(map[string]bool, len(res.MSPs))
		for _, m := range res.MSPs {
			found[m.Key()] = true
		}
		if baseline == nil {
			baseline = found
		}
		hits := 0
		for k := range baseline {
			if found[k] {
				hits++
			}
		}
		recall := 100.0
		if len(baseline) > 0 {
			recall = 100 * float64(hits) / float64(len(baseline))
		}
		rows = append(rows, ChaosRow{
			DepartFraction: rate,
			Members:        members,
			Departed:       res.Stats.Departures,
			Questions:      res.Stats.Questions,
			MSPs:           len(res.MSPs),
			RecallPct:      recall,
			VirtualHours:   clock.Elapsed().Hours(),
		})
	}
	return rows, nil
}

// RenderChaos formats the resilience study.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Chaos resilience — departure-rate sweep (oracle clones, heavy-tailed latency, virtual clock;")
	fmt.Fprintln(&b, "recall is vs the fault-free row; the run must stay sound as the crowd shrinks):")
	fmt.Fprintf(&b, "%8s %9s %9s %10s %6s %8s %10s\n",
		"depart%", "members", "departed", "questions", "MSPs", "recall%", "virtual")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.0f%% %9d %9d %10d %6d %7.1f%% %8.1f h\n",
			100*r.DepartFraction, r.Members, r.Departed, r.Questions,
			r.MSPs, r.RecallPct, r.VirtualHours)
	}
	return b.String()
}
