package exp_test

import (
	"strings"
	"testing"

	"oassis/internal/exp"
	"oassis/internal/synth"
)

// smallDAG keeps unit tests fast; the bench harness runs paper-scale.
func smallDAG() synth.DAGConfig {
	return synth.DAGConfig{Width: 60, Depth: 5, MSPPercent: 0.05, Seed: 11}
}

func TestCrowdStatsShape(t *testing.T) {
	cfg := synth.SelfTreatment(40, 7)
	res, err := exp.CrowdStats(cfg, []float64{0.2, 0.3, 0.4, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The headline shape claims of Figure 4: questions far below the
	// baseline, and #questions generally decreasing with the threshold.
	for _, row := range res.Rows {
		if row.BaselinePct > 30 {
			t.Errorf("theta %.2f: %.1f%% of baseline, want well below 30%%",
				row.Theta, row.BaselinePct)
		}
		if row.Questions <= 0 {
			t.Errorf("theta %.2f: no questions", row.Theta)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Questions > first.Questions {
		t.Errorf("questions grew with the threshold: %d → %d",
			first.Questions, last.Questions)
	}
	if last.MSPs > first.MSPs+3 {
		t.Errorf("MSPs grew sharply with the threshold: %d → %d", first.MSPs, last.MSPs)
	}
	// Self-treatment is a class-level query: every MSP valid.
	for _, row := range res.Rows {
		if row.MSPs != row.ValidMSPs {
			t.Errorf("theta %.2f: %d MSPs but %d valid (class-level query)",
				row.Theta, row.MSPs, row.ValidMSPs)
		}
	}
	out := exp.RenderCrowdStats(res)
	for _, want := range []string{"self-treatment", "baseline%", "0.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCrowdStatsTravelHasInvalidMSPs(t *testing.T) {
	res, err := exp.CrowdStats(synth.Travel(40, 3), []float64{0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.ValidMSPs >= row.MSPs {
		t.Errorf("travel should discover some invalid (class-level) MSPs: %d MSPs, %d valid",
			row.MSPs, row.ValidMSPs)
	}
}

func TestPace(t *testing.T) {
	res, err := exp.Pace(synth.SelfTreatment(40, 7), 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 5 {
		t.Fatalf("too few pace points: %d", len(res.Points))
	}
	// Percentages are monotone and end at 100%.
	var prev exp.PacePoint
	for i, p := range res.Points {
		if i > 0 && (p.ClassifiedPct < prev.ClassifiedPct || p.MSPPct < prev.MSPPct) {
			t.Fatalf("pace not monotone at %d", i)
		}
		prev = p
	}
	last := res.Points[len(res.Points)-1]
	if last.ClassifiedPct < 99.9 || last.MSPPct < 99.9 {
		t.Errorf("pace should end fully classified: %+v", last)
	}
	if out := exp.RenderPace(res); !strings.Contains(out, "#questions") {
		t.Error("render missing header")
	}
}

func TestAnswerTypesCurves(t *testing.T) {
	curves, err := exp.AnswerTypes(smallDAG(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("curves = %d, want 6", len(curves))
	}
	// Every variant must discover all MSPs (the oracle is exact).
	for _, c := range curves {
		if c.QuestionsAt[9] <= 0 || c.QuestionsAt[9] >= float64(1<<29) {
			t.Errorf("%s: never reached 100%% (%.0f)", c.Label, c.QuestionsAt[9])
		}
	}
	// Deciles are non-decreasing within a curve.
	for _, c := range curves {
		for i := 1; i < 10; i++ {
			if c.QuestionsAt[i] < c.QuestionsAt[i-1] {
				t.Errorf("%s: decile %d decreased", c.Label, i)
			}
		}
	}
	// Pruning/specialization help at completion (allowing slack for
	// small-DAG noise): 50%-pruning must not cost more than closed.
	closed, pruning := curves[0], curves[5]
	if pruning.QuestionsAt[9] > closed.QuestionsAt[9]*1.15 {
		t.Errorf("pruning made things much worse: %.0f vs %.0f",
			pruning.QuestionsAt[9], closed.QuestionsAt[9])
	}
	if out := exp.RenderCurves("fig4f", curves); !strings.Contains(out, "100% special.") {
		t.Error("render missing labels")
	}
}

func TestAlgorithmsCurves(t *testing.T) {
	curves, err := exp.Algorithms(smallDAG(), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d", len(curves))
	}
	vertical, horizontal := curves[0], curves[1]
	// The paper's headline: vertical reaches early deciles with far
	// fewer questions than horizontal (<35% at 20% discovered), and the
	// gap narrows toward completion.
	if vertical.QuestionsAt[1] >= horizontal.QuestionsAt[1] {
		t.Errorf("vertical (%.0f) should beat horizontal (%.0f) at 20%%",
			vertical.QuestionsAt[1], horizontal.QuestionsAt[1])
	}
	earlyGap := vertical.QuestionsAt[1] / horizontal.QuestionsAt[1]
	lateGap := vertical.QuestionsAt[9] / horizontal.QuestionsAt[9]
	if earlyGap > 0.75 {
		t.Errorf("early gap too small: vertical/horizontal = %.2f", earlyGap)
	}
	if lateGap < earlyGap {
		t.Errorf("gap should narrow toward 100%%: early %.2f, late %.2f", earlyGap, lateGap)
	}
}

func TestAlgorithmsNaiveImprovesWithDensity(t *testing.T) {
	// Naive is competitive only at high MSP density (Figure 5c).
	lo := smallDAG()
	lo.MSPPercent = 0.02
	hi := smallDAG()
	hi.MSPPercent = 0.10
	curvesLo, err := exp.Algorithms(lo, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	curvesHi, err := exp.Algorithms(hi, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio of naive-to-vertical cost at 50% discovered should shrink
	// as density grows.
	rLo := curvesLo[2].QuestionsAt[4] / curvesLo[0].QuestionsAt[4]
	rHi := curvesHi[2].QuestionsAt[4] / curvesHi[0].QuestionsAt[4]
	if rHi > rLo*1.5 {
		t.Errorf("naive should closed the gap at higher density: lo %.2f, hi %.2f", rLo, rHi)
	}
}

func TestLaziness(t *testing.T) {
	res, err := exp.Laziness(smallDAG(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated <= 0 || res.Eager <= float64(res.Generated) {
		t.Fatalf("implausible laziness numbers: %+v", res)
	}
	// The Section 6.4 claim: far below the eager count at the same
	// multiplicity (the paper says <1% at paper scale; small test DAGs
	// allow a little more slack).
	if res.GeneratedPct > 5 {
		t.Errorf("generated %.2f%% of eager nodes, want far less", res.GeneratedPct)
	}
	if out := exp.RenderLaziness(res); !strings.Contains(out, "eager") {
		t.Error("render missing content")
	}
}

func TestShapeSweep(t *testing.T) {
	rows, err := exp.ShapeSweep([]int{40, 80}, []int{4, 5}, 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Questions <= 0 || r.MSPs <= 0 {
			t.Errorf("degenerate sweep row: %+v", r)
		}
	}
	if out := exp.RenderSweep("shape", rows); !strings.Contains(out, "width=40") {
		t.Error("render missing rows")
	}
}

func TestDistributionSweep(t *testing.T) {
	rows, err := exp.DistributionSweep(smallDAG(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper: distribution has no significant effect on trends. All
	// three complete and find MSPs.
	for _, r := range rows {
		if r.MSPs == 0 {
			t.Errorf("%s: no MSPs", r.Label)
		}
	}
}

func TestAggregatorAblation(t *testing.T) {
	rows, err := exp.AggregatorAblation(synth.SelfTreatment(30, 7), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Agreement != 1 {
		t.Fatal("reference row must have agreement 1")
	}
	// The trust-weighted aggregator with calibration should flag the
	// spammers and agree with the clean run at least as well as the
	// plain mean under contamination.
	mean, trust := rows[1], rows[3]
	if trust.Flagged == 0 {
		t.Error("consistency filter flagged nobody")
	}
	if trust.Agreement+1e-9 < mean.Agreement {
		t.Errorf("trust+filter agreement %.3f below plain mean %.3f",
			trust.Agreement, mean.Agreement)
	}
	if out := exp.RenderAblation("self-treatment", 6, rows); !strings.Contains(out, "agreement") {
		t.Error("render missing header")
	}
}

func TestCrowdGrowth(t *testing.T) {
	rows, err := exp.CrowdGrowth(synth.SelfTreatment(0, 7), []int{30, 120}, exp.DefaultLatency, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	// The paper's shape: a larger pool reaches the first MSP faster in
	// wall-clock terms even if question counts are similar.
	if big.FirstMSPMinutes >= small.FirstMSPMinutes {
		t.Errorf("first-MSP time should drop with crowd size: %.1f → %.1f min",
			small.FirstMSPMinutes, big.FirstMSPMinutes)
	}
	if big.TotalHours >= small.TotalHours {
		t.Errorf("completion time should drop with crowd size: %.1f → %.1f h",
			small.TotalHours, big.TotalHours)
	}
	if out := exp.RenderGrowth("self-treatment", rows); !strings.Contains(out, "#members") {
		t.Error("render missing header")
	}
}

func TestMultiplicitySweep(t *testing.T) {
	rows, err := exp.MultiplicitySweep(50, 4, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Questions <= 0 || r.MSPs <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	// Questions per MSP stay in the same ballpark with or without
	// multiplicities (the Section 6.4 claim, with small-DAG slack).
	base := float64(rows[0].Questions) / float64(rows[0].MSPs)
	for _, r := range rows[1:] {
		ratio := float64(r.Questions) / float64(r.MSPs) / base
		if ratio > 4 || ratio < 0.25 {
			t.Errorf("%s: questions/MSP ratio %.2f vs singleton baseline", r.Label, ratio)
		}
	}
}
