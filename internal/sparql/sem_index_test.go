package sparql_test

// Large-store differential for semantic mode: the randomized stores of
// ref_test.go stay under semScanFloor, so the index-driven candidate path
// of runSemTriple never engages there. These cases use hundreds of facts
// per predicate and a deep element taxonomy, making bound-side patterns
// take the bySP/byPO point-index route, and pin the planned evaluator to
// the naive reference on exactly those shapes.

import (
	"fmt"
	"math/rand"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

func largeSemStore(rng *rand.Rand) (*ontology.Store, []vocab.TermID, []vocab.TermID) {
	v := vocab.New()
	nElem := 50 + rng.Intn(30)
	elems := make([]vocab.TermID, nElem)
	for i := range elems {
		elems[i] = v.MustElement(fmt.Sprintf("E%d", i))
		if i > 0 {
			if err := v.OrderElements(elems[rng.Intn(i)], elems[i]); err != nil {
				panic(err)
			}
		}
	}
	rels := []vocab.TermID{v.MustRelation("ra"), v.MustRelation("rb")}
	if err := v.OrderRelations(rels[0], rels[1]); err != nil {
		panic(err)
	}
	if err := v.Freeze(); err != nil {
		panic(err)
	}
	s := ontology.NewStore(v)
	for i := 0; i < 400+rng.Intn(300); i++ {
		s.MustAdd(ontology.Fact{
			S: elems[rng.Intn(nElem)],
			P: rels[rng.Intn(len(rels))],
			O: elems[rng.Intn(nElem)],
		})
	}
	s.Freeze()
	return s, elems, rels
}

func TestDifferentialSemanticLargeStore(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		s, elems, rels := largeSemStore(rng)
		constE := func() sparql.Term { return sparql.ConstTerm(elems[rng.Intn(len(elems))]) }
		cases := []sparql.BGP{
			// Bound subject: index path over the subject's descendants.
			{{S: constE(), P: sparql.ConstTerm(rels[0]), O: sparql.VarTerm("x")}},
			// Bound object.
			{{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rels[1]), O: constE()}},
			// Both bound.
			{{S: constE(), P: sparql.ConstTerm(rels[0]), O: constE()}},
			// Join: the second pattern runs with $x bound per candidate.
			{
				{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rels[0]), O: constE()},
				{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rels[1]), O: sparql.VarTerm("y")},
			},
			// Predicate hierarchy: ra ≤ rb, pattern on ra reaches rb facts.
			{{S: constE(), P: sparql.ConstTerm(rels[0]), O: sparql.VarTerm("y")}},
		}
		for ci, bgp := range cases {
			e := sparql.NewEvaluator(s)
			e.Semantic = true
			got, err := e.Eval(bgp)
			if err != nil {
				t.Fatalf("seed %d case %d: %v", seed, ci, err)
			}
			want := newRefEvaluator(s, true).eval(bgp)
			if !bindingsEqual(got, want) {
				t.Fatalf("seed %d case %d: planned evaluator diverges from reference on large store\nplanned %d rows, reference %d rows\n%s",
					seed, ci, len(got), len(want), describeCase(s, bgp))
			}
		}
	}
}
