package sparql_test

import (
	"fmt"
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// skewedStore builds a store where predicate "big" holds 50 facts and
// predicate "small" holds one, so selectivity-aware ordering is observable.
func skewedStore(t *testing.T) (*ontology.Store, *vocab.Vocabulary) {
	t.Helper()
	v := vocab.New()
	elems := make([]vocab.TermID, 52)
	for i := range elems {
		elems[i] = v.MustElement(fmt.Sprintf("e%d", i))
	}
	big := v.MustRelation("big")
	small := v.MustRelation("small")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	s := ontology.NewStore(v)
	for i := 0; i < 50; i++ {
		s.MustAdd(ontology.Fact{S: elems[i], P: big, O: elems[i+1]})
	}
	s.MustAdd(ontology.Fact{S: elems[0], P: small, O: elems[1]})
	s.Freeze()
	return s, v
}

// TestPlanSelectivityOrder: the planner must run the one-fact pattern before
// the fifty-fact pattern, regardless of the order they were written in.
func TestPlanSelectivityOrder(t *testing.T) {
	s, v := skewedStore(t)
	bgp := sparql.BGP{
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(v.Relation("big")), O: sparql.VarTerm("y")},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(v.Relation("small")), O: sparql.VarTerm("z")},
	}
	pl, err := sparql.NewEvaluator(s).Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	order := pl.PatternOrder()
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("plan order = %v, want [1 0] (small pattern first)\n%s", order, pl.Describe())
	}
	// The join must still produce the single solution.
	res := pl.Eval()
	if res.Len() != 1 {
		t.Fatalf("got %d rows, want 1", res.Len())
	}
}

// TestPlanConstAnchorFirst: a pattern with a constant subject has one
// candidate row and should be picked before an unanchored scan.
func TestPlanConstAnchorFirst(t *testing.T) {
	s, v := skewedStore(t)
	bgp := sparql.BGP{
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(v.Relation("big")), O: sparql.VarTerm("y")},
		{S: sparql.ConstTerm(v.Element("e7")), P: sparql.ConstTerm(v.Relation("big")), O: sparql.VarTerm("x")},
	}
	pl, err := sparql.NewEvaluator(s).Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if order := pl.PatternOrder(); order[0] != 1 {
		t.Fatalf("plan order = %v, want the anchored pattern first\n%s", order, pl.Describe())
	}
}

// TestPlanReuse: one compiled plan evaluated repeatedly returns identical
// results, and matches a fresh Eval.
func TestPlanReuse(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bgp := figure2WhereBGP(t, v)
	pl, err := e.Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	first := pl.Eval()
	for i := 0; i < 3; i++ {
		again := pl.Eval()
		if again.Len() != first.Len() {
			t.Fatalf("run %d: %d rows, want %d", i, again.Len(), first.Len())
		}
		for r := range first.Rows() {
			for c := range first.Rows()[r] {
				if first.Rows()[r][c] != again.Rows()[r][c] {
					t.Fatalf("run %d: row %d differs", i, r)
				}
			}
		}
	}
	viaEval, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaEval) != first.Len() {
		t.Fatalf("Eval gave %d bindings, plan gave %d rows", len(viaEval), first.Len())
	}
	// Rows convert to the same bindings, in the same deterministic order.
	conv := first.Bindings()
	for i := range conv {
		if refKey(conv[i]) != refKey(viaEval[i]) {
			t.Fatalf("binding %d differs: %v vs %v", i, conv[i], viaEval[i])
		}
	}
}

// TestPlanResultsSchema: slot order is sorted variable-name order.
func TestPlanResultsSchema(t *testing.T) {
	v, s := paperdata.Build()
	pl, err := sparql.NewEvaluator(s).Compile(figure2WhereBGP(t, v))
	if err != nil {
		t.Fatal(err)
	}
	vars := pl.Vars()
	names := make([]string, len(vars))
	for i, pv := range vars {
		names[i] = pv.Name
	}
	if got := strings.Join(names, ","); got != "w,x,y,z" {
		t.Fatalf("plan vars = %s, want w,x,y,z", got)
	}
	for _, pv := range vars {
		if pv.Kind != vocab.Element {
			t.Fatalf("var %s kind = %v, want Element", pv.Name, pv.Kind)
		}
	}
	res := pl.Eval()
	if res.Len() != 42 {
		t.Fatalf("got %d rows, want 42", res.Len())
	}
	for _, row := range res.Rows() {
		if len(row) != len(vars) {
			t.Fatalf("row width %d, want %d", len(row), len(vars))
		}
	}
}

// TestPlanEmptyBGP: one empty row, one empty binding.
func TestPlanEmptyBGP(t *testing.T) {
	_, s := paperdata.Build()
	pl, err := sparql.NewEvaluator(s).Compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := pl.Eval()
	if res.Len() != 1 || len(res.Rows()[0]) != 0 {
		t.Fatalf("empty BGP: got %d rows (%v), want one empty row", res.Len(), res.Rows())
	}
	bs := res.Bindings()
	if len(bs) != 1 || len(bs[0]) != 0 {
		t.Fatalf("empty BGP bindings = %v, want one empty binding", bs)
	}
}

// TestPlanCompileErrors: validation failures surface at compile time.
func TestPlanCompileErrors(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bad := sparql.BGP{{
		S: sparql.VarTerm("x"),
		P: sparql.WildcardTerm(),
		O: sparql.VarTerm("y"),
	}}
	if _, err := e.Compile(bad); err == nil {
		t.Fatal("wildcard predicate must fail compilation")
	}
	_ = v
}
