package sparql_test

// Concurrency tests for the WHERE stage: one Evaluator (and one compiled
// Plan) shared across goroutines must be safe and return identical,
// deterministically ordered results. Run with -race.

import (
	"sync"
	"testing"

	"oassis/internal/paperdata"
	"oassis/internal/sparql"
)

func TestConcurrentEval(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bgp := figure2WhereBGP(t, v)
	want, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := e.Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.Eval(bgp) // shared Evaluator, fresh plan per call
			if err != nil {
				errs <- err.Error()
				return
			}
			if !bindingsEqual(got, want) {
				errs <- "concurrent Eval diverged from serial result"
				return
			}
			rows := pl.Eval() // shared compiled plan
			if rows.Len() != len(want) {
				errs <- "concurrent Plan.Eval row count diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestConcurrentEvalSemantic exercises the lazy closure/stat memos under
// parallel semantic-mode evaluation on a freshly built (cold) store.
func TestConcurrentEvalSemantic(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	e.Semantic = true
	bgp := figure2WhereBGP(t, v)
	want, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.Eval(bgp)
			if err != nil {
				t.Error(err)
				return
			}
			if !bindingsEqual(got, want) {
				t.Error("concurrent semantic Eval diverged")
			}
		}()
	}
	wg.Wait()
}
