package sparql_test

// Differential tests for the streaming execution path and the shared plan
// cache. Stream is the primitive Eval is now built on, so the two are
// pinned against each other on the randomized workload of ref_test.go:
// sorting and deduplicating the streamed rows must reproduce Eval's rows
// exactly. The cache tests fuzz the shape normalizer: whenever two
// compilations share a cache entry, their result tuples must be identical,
// and near-miss shapes (literal edits, star toggles, mode flips) must not
// share.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// sortDedupRows reproduces Eval's row post-processing on streamed rows.
func sortDedupRows(rows [][]vocab.TermID) [][]vocab.TermID {
	sort.Slice(rows, func(i, j int) bool { return sparql.CompareRows(rows[i], rows[j]) < 0 })
	out := rows[:0]
	for i, r := range rows {
		if i == 0 || sparql.CompareRows(r, rows[i-1]) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// TestStreamMatchesEval pins Stream against Eval on randomized stores and
// BGPs in both modes: the streamed production, sorted and deduplicated,
// must equal Eval's materialized rows byte for byte.
func TestStreamMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, bgp := randomCase(rng)
		for _, semantic := range []bool{false, true} {
			e := sparql.NewEvaluator(s)
			e.Semantic = semantic
			pl, err := e.Compile(bgp)
			if err != nil {
				t.Fatalf("seed %d semantic=%v: compile: %v", seed, semantic, err)
			}
			want := pl.Eval()
			var streamed [][]vocab.TermID
			n := pl.Stream(func(row []vocab.TermID) bool {
				if len(row) != len(want.Vars()) {
					t.Fatalf("seed %d: streamed row width %d, want %d", seed, len(row), len(want.Vars()))
				}
				streamed = append(streamed, append([]vocab.TermID(nil), row...))
				return true
			})
			if n != len(streamed) {
				t.Fatalf("seed %d: Stream returned %d, callback saw %d rows", seed, n, len(streamed))
			}
			got := sortDedupRows(streamed)
			if len(got) != want.Len() {
				t.Fatalf("seed %d semantic=%v: streamed %d distinct rows, Eval has %d\n%s",
					seed, semantic, len(got), want.Len(), describeCase(s, bgp))
			}
			for i := range got {
				if sparql.CompareRows(got[i], want.Rows()[i]) != 0 {
					t.Fatalf("seed %d semantic=%v: row %d: stream %v, eval %v\n%s",
						seed, semantic, i, got[i], want.Rows()[i], describeCase(s, bgp))
				}
			}
		}
	}
}

// TestStreamEarlyStop checks that a yield returning false halts the
// pipeline: the producer must not call back again after being told to stop.
func TestStreamEarlyStop(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	pl, err := e.Compile(benchBGP(v))
	if err != nil {
		t.Fatal(err)
	}
	total := pl.Stream(func([]vocab.TermID) bool { return true })
	if total < 2 {
		t.Fatalf("fixture streams %d rows; need >= 2 for an early stop to mean anything", total)
	}
	for stopAfter := 1; stopAfter < 4; stopAfter++ {
		calls := 0
		n := pl.Stream(func([]vocab.TermID) bool {
			calls++
			return calls < stopAfter
		})
		if calls != stopAfter {
			t.Fatalf("stopAfter=%d: callback ran %d times", stopAfter, calls)
		}
		if n != calls {
			t.Fatalf("stopAfter=%d: Stream returned %d, callback saw %d", stopAfter, n, calls)
		}
	}
}

// rowsEqual compares two result row sets positionally.
func rowsEqual(a, b [][]vocab.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if sparql.CompareRows(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// TestPlanCacheSoundness fuzzes the shape normalizer: random BGP pairs over
// one store compile through a shared cache, and every compile — hit or miss
// — must produce the same result tuples as an uncached compile of the same
// BGP. This is exactly the property that fails if two distinct-result
// queries ever share a cache entry.
func TestPlanCacheSoundness(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		cs := randomStore(rng)
		cs.s.Freeze()
		for _, semantic := range []bool{false, true} {
			for i := 0; i < 3; i++ {
				bgp := randomBGP(rng, cs)
				cached := sparql.NewEvaluator(cs.s).UseSharedCache()
				cached.Semantic = semantic
				plain := sparql.NewEvaluator(cs.s)
				plain.Semantic = semantic
				cpl, cerr := cached.Compile(bgp)
				ppl, perr := plain.Compile(bgp)
				if (cerr != nil) != (perr != nil) {
					t.Fatalf("seed %d: cached compile err %v, plain compile err %v\n%s",
						seed, cerr, perr, describeCase(cs.s, bgp))
				}
				if cerr != nil {
					continue
				}
				if !rowsEqual(cpl.Eval().Rows(), ppl.Eval().Rows()) {
					hits, misses, entries := cached.Cache.Stats()
					t.Fatalf("seed %d semantic=%v (cache hits=%d misses=%d entries=%d): cached plan diverges from direct compile\n%s",
						seed, semantic, hits, misses, entries, describeCase(cs.s, bgp))
				}
			}
		}
	}
}

// TestPlanCacheRenamedHit pins the positive side of the normalizer: an
// order-preserving variable renaming is the same shape, so the second
// compile must be a hit and the rebound plan must expose the caller's
// names while producing identical tuples.
func TestPlanCacheRenamedHit(t *testing.T) {
	v, s := paperdata.Build()
	bgp := benchBGP(v)

	// Rename every variable but keep the sort order (w,x,y,z -> va..vd).
	names := map[string]bool{}
	for _, p := range bgp {
		for _, tm := range []sparql.Term{p.S, p.P, p.O} {
			if tm.Kind == sparql.Var {
				names[tm.Name] = true
			}
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	ren := map[string]string{}
	for i, n := range sorted {
		ren[n] = fmt.Sprintf("v%c", 'a'+i)
	}
	renamed := make(sparql.BGP, len(bgp))
	for i, p := range bgp {
		q := p
		for _, tm := range []*sparql.Term{&q.S, &q.P, &q.O} {
			if tm.Kind == sparql.Var {
				tm.Name = ren[tm.Name]
			}
		}
		renamed[i] = q
	}

	e1 := sparql.NewEvaluator(s).UseSharedCache()
	pl1, err := e1.Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	e2 := sparql.NewEvaluator(s).UseSharedCache()
	pl2, err := e2.Compile(renamed)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := e2.Cache.Stats()
	if hits < 1 {
		t.Fatalf("order-preserving renaming missed the cache (hits=%d misses=%d)", hits, misses)
	}
	if !rowsEqual(pl1.Eval().Rows(), pl2.Eval().Rows()) {
		t.Fatal("renamed plan produces different tuples")
	}
	vars2 := pl2.Vars()
	for i, pv := range vars2 {
		if want := fmt.Sprintf("v%c", 'a'+i); pv.Name != want {
			t.Fatalf("rebound plan var %d named %q, want %q", i, pv.Name, want)
		}
	}
}

// TestPlanCacheNearMisses drives shapes that are one edit apart through a
// shared cache and checks none of them collide: a different literal, a
// toggled star, a different constant, an order-breaking renaming and a
// mode flip must all compile as misses.
func TestPlanCacheNearMisses(t *testing.T) {
	v, s := paperdata.Build()
	rel := func(name string) vocab.TermID { return v.Relation(name) }
	el := func(name string) vocab.TermID { return v.Element(name) }
	base := sparql.BGP{
		{S: sparql.VarTerm("w"), P: sparql.ConstTerm(rel("subClassOf")), O: sparql.ConstTerm(el("Attraction")), Star: true},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("instanceOf")), O: sparql.VarTerm("w")},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("hasLabel")), O: sparql.LiteralTerm("child-friendly")},
	}
	mutate := func(f func(b sparql.BGP)) sparql.BGP {
		b := make(sparql.BGP, len(base))
		copy(b, base)
		f(b)
		return b
	}
	variants := []struct {
		name     string
		bgp      sparql.BGP
		semantic bool
	}{
		{"literal", mutate(func(b sparql.BGP) { b[2].O = sparql.LiteralTerm("romantic") }), false},
		{"star", mutate(func(b sparql.BGP) { b[0].Star = false }), false},
		{"const", mutate(func(b sparql.BGP) { b[0].O = sparql.ConstTerm(el("Activity")) }), false},
		{"wildcard", mutate(func(b sparql.BGP) { b[1].O = sparql.WildcardTerm() }), false},
		{"mode", base, true},
	}
	e := sparql.NewEvaluator(s).UseSharedCache()
	if _, err := e.Compile(base); err != nil {
		t.Fatal(err)
	}
	for _, vt := range variants {
		ev := sparql.NewEvaluator(s).UseSharedCache()
		ev.Semantic = vt.semantic
		before, _, _ := ev.Cache.Stats()
		if _, err := ev.Compile(vt.bgp); err != nil {
			t.Fatalf("%s: compile: %v", vt.name, err)
		}
		after, _, _ := ev.Cache.Stats()
		if after != before {
			t.Fatalf("%s: near-miss variant hit the cache entry of the base shape", vt.name)
		}
	}
	// The unchanged base shape, by contrast, must hit.
	ev := sparql.NewEvaluator(s).UseSharedCache()
	before, _, _ := ev.Cache.Stats()
	if _, err := ev.Compile(base); err != nil {
		t.Fatal(err)
	}
	if after, _, _ := ev.Cache.Stats(); after != before+1 {
		t.Fatal("identical shape did not hit the cache")
	}
}
