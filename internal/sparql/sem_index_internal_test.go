package sparql

import (
	"fmt"
	"math/rand"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// TestSemCandidatesMatchesScan pins the index-driven candidate collection
// of semantic triple matching to its specification: for any bound sides,
// semCandidates must return exactly the subsequence of FactsWithPredicate
// that survives the bound-side ≤ filters — same facts, same order — since
// runSemTriple's emission order (and therefore downstream row order and
// space interning order) depends on it. Stores are sized well past
// semScanFloor so the index path actually engages.
func TestSemCandidatesMatchesScan(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := vocab.New()
		nElem := 40 + rng.Intn(40)
		elems := make([]vocab.TermID, nElem)
		for i := range elems {
			elems[i] = v.MustElement(fmt.Sprintf("e%d", i))
			if i > 0 {
				if err := v.OrderElements(elems[rng.Intn(i)], elems[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		rels := []vocab.TermID{v.MustRelation("r0"), v.MustRelation("r1")}
		if err := v.Freeze(); err != nil {
			t.Fatal(err)
		}
		s := ontology.NewStore(v)
		for i := 0; i < 300+rng.Intn(400); i++ {
			s.MustAdd(ontology.Fact{
				S: elems[rng.Intn(nElem)],
				P: rels[rng.Intn(len(rels))],
				O: elems[rng.Intn(nElem)],
			})
		}
		s.Freeze()
		pl := &Plan{store: s, v: v}
		for trial := 0; trial < 20; trial++ {
			pred := rels[rng.Intn(len(rels))]
			sub, obj := elems[rng.Intn(nElem)], elems[rng.Intn(nElem)]
			sOK, oOK := rng.Intn(2) == 0, rng.Intn(2) == 0
			got := pl.semCandidates(pred, sub, sOK, obj, oOK)
			var want []ontology.Fact
			for _, g := range s.FactsWithPredicate(pred) {
				if sOK && !v.LeqE(sub, g.S) {
					continue
				}
				if oOK && !v.LeqE(obj, g.O) {
					continue
				}
				want = append(want, g)
			}
			// semCandidates may return a superset when it falls back to the
			// full scan or only one side is index-filtered; the invariant is
			// that the survivors of the caller's filters, in order, are
			// exactly `want`. Apply the caller's filters to `got`.
			var filtered []ontology.Fact
			for _, g := range got {
				if sOK && !v.LeqE(sub, g.S) {
					continue
				}
				if oOK && !v.LeqE(obj, g.O) {
					continue
				}
				filtered = append(filtered, g)
			}
			if len(filtered) != len(want) {
				t.Fatalf("seed %d trial %d: %d candidates, want %d (sOK=%v oOK=%v)",
					seed, trial, len(filtered), len(want), sOK, oOK)
			}
			for i := range want {
				if filtered[i] != want[i] {
					t.Fatalf("seed %d trial %d: candidate %d = %+v, want %+v",
						seed, trial, i, filtered[i], want[i])
				}
			}
		}
	}
}
