package sparql_test

import (
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

func figure2WhereBGP(t *testing.T, v *vocab.Vocabulary) sparql.BGP {
	t.Helper()
	rel := func(name string) vocab.TermID {
		id := v.Relation(name)
		if id == vocab.NoTerm {
			t.Fatalf("relation %q missing", name)
		}
		return id
	}
	el := func(name string) vocab.TermID {
		id := v.Element(name)
		if id == vocab.NoTerm {
			t.Fatalf("element %q missing", name)
		}
		return id
	}
	return sparql.BGP{
		{S: sparql.VarTerm("w"), P: sparql.ConstTerm(rel("subClassOf")), O: sparql.ConstTerm(el("Attraction")), Star: true},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("instanceOf")), O: sparql.VarTerm("w")},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("inside")), O: sparql.ConstTerm(el("NYC"))},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("hasLabel")), O: sparql.LiteralTerm("child-friendly")},
		{S: sparql.VarTerm("y"), P: sparql.ConstTerm(rel("subClassOf")), O: sparql.ConstTerm(el("Activity")), Star: true},
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(rel("instanceOf")), O: sparql.ConstTerm(el("Restaurant"))},
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(rel("nearBy")), O: sparql.VarTerm("x")},
	}
}

// TestFigure2Where evaluates the full WHERE clause of the paper's sample
// query against the Figure 1 ontology.
func TestFigure2Where(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bindings, err := e.Eval(figure2WhereBGP(t, v))
	if err != nil {
		t.Fatal(err)
	}
	// 3 (x,z,w) combos × 14 activity values for y.
	if len(bindings) != 42 {
		t.Fatalf("got %d bindings, want 42", len(bindings))
	}
	// Spot checks: φ16 of Example 3.1 must be present.
	found16, foundWrong := false, false
	for _, b := range bindings {
		if b["x"] == v.Element("Central Park") && b["w"] == v.Element("Park") &&
			b["y"] == v.Element("Biking") && b["z"] == v.Element("Maoz Veg.") {
			found16 = true
		}
		// Pine is near the Bronx Zoo, not Central Park.
		if b["x"] == v.Element("Central Park") && b["z"] == v.Element("Pine") {
			foundWrong = true
		}
	}
	if !found16 {
		t.Error("assignment φ16 (CP, Park, Biking, Maoz) not found")
	}
	if foundWrong {
		t.Error("Pine bound to Central Park despite no nearBy edge")
	}
}

func TestStarPathClosures(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	sub := v.Relation("subClassOf")
	// Forward: Basketball subClassOf* $c climbs to Thing.
	bs, err := e.Eval(sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Basketball")), P: sparql.ConstTerm(sub),
		O: sparql.VarTerm("c"), Star: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[vocab.TermID]bool{
		v.Element("Basketball"): true, v.Element("Ball Game"): true,
		v.Element("Sport"): true, v.Element("Activity"): true, v.Element("Thing"): true,
	}
	if len(bs) != len(want) {
		t.Fatalf("forward closure size %d, want %d", len(bs), len(want))
	}
	for _, b := range bs {
		if !want[b["c"]] {
			t.Errorf("unexpected closure member %s", v.ElementName(b["c"]))
		}
	}
	// Zero-length: Basketball subClassOf* Basketball matches.
	bs, err = e.Eval(sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Basketball")), P: sparql.ConstTerm(sub),
		O: sparql.ConstTerm(v.Element("Basketball")), Star: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("zero-length path should match, got %d bindings", len(bs))
	}
	// Instances are not subclasses: Central Park subClassOf* Attraction fails.
	bs, err = e.Eval(sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Central Park")), P: sparql.ConstTerm(sub),
		O: sparql.ConstTerm(v.Element("Attraction")), Star: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatal("instanceOf edge must not satisfy a subClassOf* path")
	}
}

func TestStarPathBothFree(t *testing.T) {
	text := "b subClassOf a\nc subClassOf b\n"
	v, s, err := ontology.Load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	e := sparql.NewEvaluator(s)
	bs, err := e.Eval(sparql.BGP{{
		S: sparql.VarTerm("s"), P: sparql.ConstTerm(v.Relation("subClassOf")),
		O: sparql.VarTerm("o"), Star: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// pairs: (b,a) (b,b) (c,a) (c,b) (c,c) (a,a) = 6
	if len(bs) != 6 {
		t.Fatalf("got %d pairs, want 6: %v", len(bs), bs)
	}
}

func TestWildcardMatchesWithoutBinding(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	// [] nearBy $x: x ranges over elements with an incoming nearBy edge.
	bs, err := e.Eval(sparql.BGP{{
		S: sparql.WildcardTerm(), P: sparql.ConstTerm(v.Relation("nearBy")),
		O: sparql.VarTerm("x"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("got %d bindings, want 3 (CP, Madison Sq, Bronx Zoo)", len(bs))
	}
	for _, b := range bs {
		if len(b) != 1 {
			t.Fatalf("wildcard should not bind: %v", b)
		}
	}
}

func TestSharedVariableJoin(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	// $z instanceOf Restaurant . $z nearBy "Central Park"
	bs, err := e.Eval(sparql.BGP{
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(v.Relation("instanceOf")), O: sparql.ConstTerm(v.Element("Restaurant"))},
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(v.Relation("nearBy")), O: sparql.ConstTerm(v.Element("Central Park"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0]["z"] != v.Element("Maoz Veg.") {
		t.Fatalf("join = %v, want only Maoz Veg.", bs)
	}
}

func TestEmptyBGP(t *testing.T) {
	_, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bs, err := e.Eval(sparql.BGP{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || len(bs[0]) != 0 {
		t.Fatalf("empty BGP should yield one empty binding, got %v", bs)
	}
}

func TestPredicateVariable(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	// "Maoz Veg." $p $o
	bs, err := e.Eval(sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Maoz Veg.")), P: sparql.VarTerm("p"), O: sparql.VarTerm("o"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Maoz: instanceOf Restaurant, nearBy CP, nearBy Madison Square.
	if len(bs) != 3 {
		t.Fatalf("got %d bindings, want 3: %v", len(bs), bs)
	}
}

func TestValidationErrors(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	cases := map[string]sparql.BGP{
		"literal subject": {{
			S: sparql.LiteralTerm("x"), P: sparql.ConstTerm(v.Relation("inside")), O: sparql.VarTerm("o"),
		}},
		"wildcard predicate": {{
			S: sparql.VarTerm("s"), P: sparql.WildcardTerm(), O: sparql.VarTerm("o"),
		}},
		"star on variable predicate": {{
			S: sparql.VarTerm("s"), P: sparql.VarTerm("p"), O: sparql.VarTerm("o"), Star: true,
		}},
		"literal object without hasLabel": {{
			S: sparql.VarTerm("s"), P: sparql.ConstTerm(v.Relation("inside")), O: sparql.LiteralTerm("x"),
		}},
		"variable in two namespaces": {
			{S: sparql.VarTerm("a"), P: sparql.ConstTerm(v.Relation("inside")), O: sparql.VarTerm("o")},
			{S: sparql.VarTerm("s"), P: sparql.VarTerm("a"), O: sparql.VarTerm("o")},
		},
	}
	for name, bgp := range cases {
		if _, err := e.Eval(bgp); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestSemanticMode checks the implication semantics of Definition 2.5: in
// semantic mode ⟨$z, nearBy, $x⟩ also matches through the more specific
// stored fact ⟨Boathouse, inside, Central Park⟩, and variables may bind to
// generalizations of stored values.
func TestSemanticMode(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bgp := sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Boathouse")), P: sparql.ConstTerm(v.Relation("nearBy")),
		O: sparql.ConstTerm(v.Element("Central Park")),
	}}
	bs, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatal("exact mode must not match nearBy through an inside fact")
	}
	e.Semantic = true
	bs, err = e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatal("semantic mode should match nearBy via inside (nearBy ≤ inside)")
	}
	// Generalized subject binding: ⟨Park, instanceOf, Park⟩ is implied
	// (via Central Park / Madison Square), so $g instanceOf Park includes
	// Park itself in semantic mode.
	bs, err = e.Eval(sparql.BGP{{
		S: sparql.VarTerm("g"), P: sparql.ConstTerm(v.Relation("instanceOf")),
		O: sparql.ConstTerm(v.Element("Park")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range bs {
		got[v.ElementName(b["g"])] = true
	}
	if !got["Central Park"] || !got["Madison Square"] {
		t.Errorf("semantic instanceOf lost exact matches: %v", got)
	}
	if !got["Park"] {
		t.Errorf("semantic instanceOf should include generalized subject Park: %v", got)
	}
}

func TestDeterministicOrder(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bgp := figure2WhereBGP(t, v)
	first, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := e.Eval(bgp)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatal("nondeterministic result size")
		}
		for j := range again {
			for k, val := range again[j] {
				if first[j][k] != val {
					t.Fatal("nondeterministic result order")
				}
			}
		}
	}
}

func TestPatternString(t *testing.T) {
	v, _ := paperdata.Build()
	p := sparql.Pattern{
		S: sparql.VarTerm("w"), P: sparql.ConstTerm(v.Relation("subClassOf")),
		O: sparql.ConstTerm(v.Element("Attraction")), Star: true,
	}
	if got := p.String(v); got != "$w subClassOf* Attraction" {
		t.Errorf("String = %q", got)
	}
	p2 := sparql.Pattern{
		S: sparql.WildcardTerm(), P: sparql.ConstTerm(v.Relation("eatAt")),
		O: sparql.LiteralTerm("lit"),
	}
	if got := p2.String(v); got != `[] eatAt "lit"` {
		t.Errorf("String = %q", got)
	}
}

// TestSemanticModePredicateVariable: in semantic mode a predicate variable
// still enumerates the stored predicates, and subject/object variables may
// bind to generalizations of the stored values.
func TestSemanticModePredicateVariable(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	e.Semantic = true
	bs, err := e.Eval(sparql.BGP{{
		S: sparql.ConstTerm(v.Element("Maoz Veg.")), P: sparql.VarTerm("p"), O: sparql.VarTerm("o"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Exact mode gives 3 bindings; semantic mode adds generalized
	// objects (e.g. o = Park for the nearBy Central Park fact).
	if len(bs) <= 3 {
		t.Fatalf("semantic predicate-var got %d bindings, want more than exact's 3", len(bs))
	}
	foundGeneral := false
	for _, b := range bs {
		if b["o"] == v.Element("Park") {
			foundGeneral = true
		}
	}
	if !foundGeneral {
		t.Error("semantic mode should bind o to generalized Park")
	}
}

// TestSemanticBoundObject: a bound object that generalizes the stored value
// matches in semantic mode only.
func TestSemanticBoundObject(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	bgp := sparql.BGP{{
		S: sparql.VarTerm("z"), P: sparql.ConstTerm(v.Relation("nearBy")),
		O: sparql.ConstTerm(v.Element("Outdoor")), // generalizes Central Park
	}}
	bs, err := e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Fatal("exact mode must not match a generalized object")
	}
	e.Semantic = true
	bs, err = e.Eval(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) == 0 {
		t.Fatal("semantic mode should match ⟨Maoz, nearBy, Outdoor⟩ via CP")
	}
}
