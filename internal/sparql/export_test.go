package sparql

// EvalInterpreted exposes the seed recursive matcher so differential tests
// and BenchmarkWhereEval can pin the compiled plan against it.
func (e *Evaluator) EvalInterpreted(bgp BGP) ([]Binding, error) {
	return e.evalInterpreted(bgp)
}
