package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// This file implements compiled query plans for the WHERE stage. The seed
// evaluator interpreted a BGP directly: map[string]TermID bindings cloned on
// every bind, pattern choice re-scored at every recursion step, and closure
// BFS re-run per pattern match. A Plan compiles all of that away once per
// query:
//
//   - variables are mapped to dense slots, so a binding is a []vocab.TermID
//     row mutated in place with backtracking undo — no maps, no clones;
//   - the pattern order is fixed at compile time by index-aware selectivity
//     estimates (candidate-set sizes read from the store's SP/PO/P indexes
//     and closure statistics, not just constant counting);
//   - each pattern is lowered to an operator that reads the right store
//     index directly (Has / Objects / Subjects / FactsWithPredicate /
//     ForwardClosure / BackwardClosure / ClosurePairs / LabeledElements).
//
// A compiled Plan is immutable and safe for concurrent Eval calls; each call
// runs on its own scratch row. Results come back as rows in the same
// deterministic order the interpreted evaluator produced (the legacy
// string-key order), so the compiled pipeline is a drop-in replacement.

// PlanVar describes one variable slot of a compiled plan. Slots are assigned
// in sorted name order.
type PlanVar struct {
	Name string
	Kind vocab.Kind
}

// freeVal marks an unbound slot in a scratch row. It is distinct from every
// real TermID and from ontology.Any.
const freeVal = vocab.TermID(-1 << 30)

// planTerm is one lowered pattern position.
type planTerm struct {
	isConst bool
	constID vocab.TermID
	slot    int32 // variable slot, or -1 for wildcard/literal positions
}

func (pl *Plan) lowerTerm(t Term) planTerm {
	switch t.Kind {
	case Const:
		return planTerm{isConst: true, constID: t.ID, slot: -1}
	case Var:
		return planTerm{slot: int32(pl.slotOf[t.Name])}
	}
	return planTerm{slot: -1} // wildcard / literal
}

type opKind uint8

const (
	opTriple    opKind = iota // exact triple match
	opStar                    // zero-or-more property path
	opLabel                   // string-literal object (hasLabel filter)
	opSemTriple               // triple under Definition 2.5 implication
)

// op is one compiled operator of the plan.
type op struct {
	kind    opKind
	s, p, o planTerm
	lit     string // opLabel: the literal
	src     int    // original pattern index in the BGP
	est     int    // selectivity estimate at planning time (diagnostics)
	path    string // access path chosen for the bound-shape at this position
	text    string // rendered source pattern (diagnostics)
}

// Plan is a compiled BGP: a fixed operator pipeline over dense variable
// slots. Build one with Evaluator.Compile; run it with Eval. A Plan is
// immutable and safe for concurrent use; Observe (called once, before the
// plan is shared) switches on per-operator cardinality accounting whose
// counters are atomics, so concurrent Evals stay safe.
type Plan struct {
	store    *ontology.Store
	v        *vocab.Vocabulary
	semantic bool

	vars   []PlanVar
	slotOf map[string]int
	ops    []op

	// Observation state (nil/empty when Observe was never called).
	// actual[i] counts partial rows entering operator i across every Eval;
	// actual[len(ops)] counts emitted rows (pre-dedup). Per-Eval counting
	// happens in a plain slice on the exec scratch and is merged here once
	// per Eval, so the inner matching loops never touch an atomic.
	metrics *obs.PlanMetrics
	actual  []atomic.Int64
	evals   atomic.Int64
}

// Observe enables per-operator cardinality accounting and, when m is
// non-nil, reports eval totals to the given metric set. Call it right after
// Compile, before the plan is shared between goroutines.
func (pl *Plan) Observe(m *obs.PlanMetrics) {
	pl.metrics = m
	if pl.actual == nil {
		pl.actual = make([]atomic.Int64, len(pl.ops)+1)
	}
}

// Compile validates the BGP and lowers it to a Plan. The evaluator's
// Semantic mode is captured at compile time. The store's contents must be
// final (normally: frozen) before compiling — selectivity estimates and the
// closure indexes snapshot it. When the evaluator carries a Metrics set the
// compile is timed and the plan comes back with observation enabled. When
// the evaluator carries a Cache, the lookup happens here: a cached shape
// skips compilation (and the Compiles counter) entirely.
func (e *Evaluator) Compile(bgp BGP) (*Plan, error) {
	if e.Cache != nil {
		return e.Cache.lookup(e, bgp)
	}
	e.LastCompileCacheHit = false
	return e.compileTimed(bgp)
}

// compileTimed is the uncached Compile body: lower the BGP, time it, and
// switch on observation when the evaluator carries metrics.
func (e *Evaluator) compileTimed(bgp BGP) (*Plan, error) {
	start := time.Now()
	pl, err := e.compile(bgp)
	if err != nil {
		return nil, err
	}
	if e.Metrics != nil {
		e.Metrics.CompileDone(time.Since(start))
		pl.Observe(e.Metrics)
	}
	return pl, nil
}

func (e *Evaluator) compile(bgp BGP) (*Plan, error) {
	if err := e.validate(bgp); err != nil {
		return nil, err
	}
	kinds, err := VarKinds(bgp)
	if err != nil {
		return nil, err
	}
	pl := &Plan{store: e.store, v: e.v, semantic: e.Semantic}
	names := make([]string, 0, len(kinds))
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	pl.slotOf = make(map[string]int, len(names))
	for i, n := range names {
		pl.slotOf[n] = i
		pl.vars = append(pl.vars, PlanVar{Name: n, Kind: kinds[n]})
	}

	bound := make([]bool, len(pl.vars))
	if reorderUnsafe(bgp, pl.semantic) {
		// Some pattern's meaning depends on whether its variables are
		// already bound when it runs (see reorderUnsafe). Reordering such a
		// BGP could change the result set, so pin the interpreted
		// evaluator's selection order exactly.
		for _, pi := range interpretedOrder(bgp) {
			pl.lower(bgp[pi], pi, pl.estimate(bgp[pi], bound), bound)
			pl.markBound(bgp[pi], bound)
		}
		return pl, nil
	}
	// Greedy selectivity ordering: repeatedly pick the cheapest pattern
	// given the variables bound so far; ties break on BGP position.
	remaining := make([]int, len(bgp))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		best, bestCost := 0, int(^uint(0)>>1)
		for ri, pi := range remaining {
			if c := pl.estimate(bgp[pi], bound); c < bestCost {
				best, bestCost = ri, c
			}
		}
		pi := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		pl.lower(bgp[pi], pi, bestCost, bound)
		pl.markBound(bgp[pi], bound)
	}
	return pl, nil
}

func (pl *Plan) markBound(p Pattern, bound []bool) {
	for _, t := range []Term{p.S, p.P, p.O} {
		if t.Kind == Var {
			bound[pl.slotOf[t.Name]] = true
		}
	}
}

// reorderUnsafe reports whether evaluating the BGP's patterns in a different
// order could change the result set. Two constructs behave differently
// depending on whether their variables are bound when they run:
//
//   - a star pattern with no constant endpoint: evaluated with both ends
//     free it only ranges over nodes the predicate's facts mention, while a
//     pre-bound endpoint matches itself via the zero-length path whether
//     mentioned or not;
//   - a semantic-mode triple with an element variable: free it also binds
//     generalizations of the stored value, pre-bound it requires exact
//     equality with it.
//
// Those patterns are only hazardous when one of their variables also occurs
// in another pattern — otherwise no other pattern can pre-bind it. Exact
// triples, label filters, const-anchored stars and predicate variables are
// join-order-independent.
func reorderUnsafe(bgp BGP, semantic bool) bool {
	occ := map[string]int{} // number of patterns each variable occurs in
	for _, p := range bgp {
		seen := map[string]bool{}
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Kind == Var && !seen[t.Name] {
				seen[t.Name] = true
				occ[t.Name]++
			}
		}
	}
	shared := func(t Term) bool { return t.Kind == Var && occ[t.Name] > 1 }
	for _, p := range bgp {
		if p.Star && p.S.Kind != Const && p.O.Kind != Const &&
			(shared(p.S) || shared(p.O)) {
			return true
		}
		if semantic && !p.Star && p.O.Kind != Literal &&
			(shared(p.S) || shared(p.O)) {
			return true
		}
	}
	return false
}

// interpretedOrder replays the seed evaluator's pattern selection — the
// static most-constants-first stable sort followed by the dynamic
// most-bound-positions-first pick — and returns the pattern indices in that
// order.
func interpretedOrder(bgp BGP) []int {
	static := func(p Pattern) int {
		s := 0
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Kind == Const || t.Kind == Literal {
				s++
			}
		}
		return s
	}
	idx := make([]int, len(bgp))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return static(bgp[idx[i]]) > static(bgp[idx[j]]) })
	bound := map[string]bool{}
	order := make([]int, 0, len(idx))
	for len(idx) > 0 {
		best, bestScore := 0, -1
		for i, pi := range idx {
			s := 0
			for _, t := range []Term{bgp[pi].S, bgp[pi].P, bgp[pi].O} {
				switch t.Kind {
				case Const, Literal:
					s += 2
				case Var:
					if bound[t.Name] {
						s += 2
					}
				}
			}
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		pi := idx[best]
		idx = append(idx[:best], idx[best+1:]...)
		order = append(order, pi)
		for _, t := range []Term{bgp[pi].S, bgp[pi].P, bgp[pi].O} {
			if t.Kind == Var {
				bound[t.Name] = true
			}
		}
	}
	return order
}

// resolvedAt reports whether a term has a concrete value at planning time,
// given the set of already-bound slots.
func (pl *Plan) resolvedAt(t Term, bound []bool) bool {
	switch t.Kind {
	case Const:
		return true
	case Var:
		return bound[pl.slotOf[t.Name]]
	}
	return false
}

// estimate predicts the candidate-set size of one pattern under the current
// bound-variable set, reading cardinalities from the store's indexes.
func (pl *Plan) estimate(p Pattern, bound []bool) int {
	st := pl.store
	sRes := pl.resolvedAt(p.S, bound)
	oRes := pl.resolvedAt(p.O, bound)
	if p.O.Kind == Literal {
		if sRes {
			return 1
		}
		return atLeast1(len(st.LabeledElements(p.O.Lit)))
	}
	if p.Star {
		pairs, nodes := st.StarStats(p.P.ID)
		switch {
		case sRes && oRes:
			return 1
		case p.S.Kind == Const:
			return atLeast1(len(st.ForwardClosure(p.S.ID, p.P.ID)))
		case p.O.Kind == Const:
			return atLeast1(len(st.BackwardClosure(p.O.ID, p.P.ID)))
		case sRes || oRes:
			return atLeast1(pairs / atLeast1(nodes))
		default:
			return atLeast1(pairs)
		}
	}
	switch p.P.Kind {
	case Const:
		facts, subjects, objects := st.PredStats(p.P.ID)
		switch {
		case sRes && oRes:
			return 1
		case p.S.Kind == Const:
			return atLeast1(len(st.Objects(p.S.ID, p.P.ID)))
		case sRes:
			return atLeast1(facts / atLeast1(subjects))
		case p.O.Kind == Const:
			return atLeast1(len(st.Subjects(p.P.ID, p.O.ID)))
		case oRes:
			return atLeast1(facts / atLeast1(objects))
		default:
			return atLeast1(facts)
		}
	case Var:
		// Predicate variable: bound → one predicate's facts on average;
		// free → a scan over every predicate.
		nPreds := atLeast1(len(st.Predicates()))
		if pl.resolvedAt(p.P, bound) {
			if sRes && oRes {
				return 1
			}
			return atLeast1(st.Size() / nPreds)
		}
		if sRes && oRes {
			return nPreds
		}
		return atLeast1(st.Size()) + nPreds
	}
	return atLeast1(st.Size())
}

func atLeast1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// lower appends the operator for one pattern. bound is the set of slots
// already bound by earlier operators — it determines the access path the
// operator will take at runtime, which lower records for Explain.
func (pl *Plan) lower(p Pattern, src, est int, bound []bool) {
	o := op{
		s:   pl.lowerTerm(p.S),
		p:   pl.lowerTerm(p.P),
		o:   pl.lowerTerm(p.O),
		src: src,
		est: est,
	}
	switch {
	case p.O.Kind == Literal:
		o.kind = opLabel
		o.lit = p.O.Lit
	case p.Star:
		o.kind = opStar
	case pl.semantic:
		o.kind = opSemTriple
	default:
		o.kind = opTriple
	}
	o.path = pl.accessPath(p, o.kind, bound)
	o.text = pl.patternText(p)
	pl.ops = append(pl.ops, o)
}

// accessPath names the store index the operator reads for the bound-shape
// it runs under — the "index chosen per pattern" line of Explain. The shape
// is known at planning time: a position is concrete when it is a constant
// or a variable some earlier operator binds.
func (pl *Plan) accessPath(p Pattern, kind opKind, bound []bool) string {
	sRes := pl.resolvedAt(p.S, bound)
	oRes := pl.resolvedAt(p.O, bound)
	pRes := pl.resolvedAt(p.P, bound)
	switch kind {
	case opLabel:
		if sRes {
			return "HasLabel(s,lit)"
		}
		return "LabeledElements(lit)"
	case opStar:
		switch {
		case sRes && oRes:
			return "Reaches(s,p*,o)"
		case sRes:
			return "ForwardClosure(s,p*)"
		case oRes:
			return "BackwardClosure(p*,o)"
		default:
			return "ClosurePairs(p*)"
		}
	case opSemTriple:
		if pRes {
			return "sem:FactsWithPredicate(p'≥p)"
		}
		return "sem:Predicates×Facts"
	default: // opTriple
		inner := ""
		switch {
		case sRes && oRes:
			inner = "Has(s,p,o)"
		case sRes:
			inner = "Objects(s,p)"
		case oRes:
			inner = "Subjects(p,o)"
		default:
			inner = "FactsWithPredicate(p)"
		}
		if !pRes {
			return "Predicates→" + inner
		}
		return inner
	}
}

// patternText renders the source pattern with vocabulary names for Explain.
func (pl *Plan) patternText(p Pattern) string {
	var sb strings.Builder
	sb.WriteString(pl.termText(p.S, vocab.Element))
	sb.WriteByte(' ')
	sb.WriteString(pl.termText(p.P, vocab.Relation))
	if p.Star {
		sb.WriteByte('*')
	}
	sb.WriteByte(' ')
	sb.WriteString(pl.termText(p.O, vocab.Element))
	return sb.String()
}

func (pl *Plan) termText(t Term, k vocab.Kind) string {
	switch t.Kind {
	case Const:
		if k == vocab.Relation {
			if n := pl.v.RelationName(t.ID); n != "" {
				return n
			}
		} else if n := pl.v.ElementName(t.ID); n != "" {
			return n
		}
		return strconv.Itoa(int(t.ID))
	case Var:
		return "$" + t.Name
	case Literal:
		return strconv.Quote(t.Lit)
	}
	return "*"
}

// Vars returns the plan's variable slots in slot order (sorted by name).
// The slice is shared; do not modify.
func (pl *Plan) Vars() []PlanVar { return pl.vars }

// PatternOrder returns, per operator, the index of the BGP pattern it was
// lowered from — the selectivity order the planner chose.
func (pl *Plan) PatternOrder() []int {
	out := make([]int, len(pl.ops))
	for i, o := range pl.ops {
		out[i] = o.src
	}
	return out
}

// Describe renders the plan for diagnostics: one line per operator in
// execution order, with its selectivity estimate.
func (pl *Plan) Describe() string {
	var sb strings.Builder
	for i, o := range pl.ops {
		fmt.Fprintf(&sb, "%d: %s pattern#%d est=%d\n", i, opKindNames[o.kind], o.src, o.est)
	}
	return sb.String()
}

var opKindNames = [...]string{"triple", "star", "label", "sem-triple"}

// OpExplain is one operator's row in an Explain report.
type OpExplain struct {
	Op      int    // position in execution order
	Kind    string // operator kind (triple/star/label/sem-triple)
	Pattern int    // source pattern index in the BGP
	Text    string // rendered source pattern
	Path    string // store index / access path the operator reads
	Est     int    // planner's selectivity estimate (candidate-set size)
	// Actuals, populated only when the plan runs with Observe enabled.
	Evals   int64 // plan evaluations accounted so far
	RowsIn  int64 // partial rows entering this operator, across all evals
	RowsOut int64 // partial rows surviving it
}

// ExplainOps returns the operator table behind Explain — execution order,
// source pattern, chosen access path, the planner's estimate, and (when the
// plan was Observed and has run) the actual rows in/out of each operator.
func (pl *Plan) ExplainOps() []OpExplain {
	evals := pl.evals.Load()
	out := make([]OpExplain, len(pl.ops))
	for i, o := range pl.ops {
		e := OpExplain{
			Op:      i,
			Kind:    opKindNames[o.kind],
			Pattern: o.src,
			Text:    o.text,
			Path:    o.path,
			Est:     o.est,
			Evals:   evals,
		}
		if pl.actual != nil {
			e.RowsIn = pl.actual[i].Load()
			e.RowsOut = pl.actual[i+1].Load()
		}
		out[i] = e
	}
	return out
}

// Explain renders the compiled plan as a human-readable table: one line per
// operator in execution order with the source pattern, the access path the
// planner chose, the selectivity estimate, and — once the plan has run with
// observation enabled — the actual per-operator cardinalities, so estimate
// quality is visible at a glance.
func (pl *Plan) Explain() string {
	ops := pl.ExplainOps()
	var sb strings.Builder
	mode := "exact"
	if pl.semantic {
		mode = "semantic"
	}
	fmt.Fprintf(&sb, "plan: %d ops, %d vars, %s mode", len(pl.ops), len(pl.vars), mode)
	if pl.actual != nil {
		fmt.Fprintf(&sb, ", %d evals observed", pl.evals.Load())
	}
	sb.WriteByte('\n')
	for _, e := range ops {
		fmt.Fprintf(&sb, "  #%d %-10s pat#%d  %-28s via %-28s est=%-6d",
			e.Op, e.Kind, e.Pattern, e.Text, e.Path, e.Est)
		if pl.actual != nil && e.Evals > 0 {
			fmt.Fprintf(&sb, " rows_in=%-8d rows_out=%-8d", e.RowsIn, e.RowsOut)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// exec is the per-run scratch state: one reusable row plus the consumer of
// emitted rows. yield receives the scratch row each time the pipeline
// completes a solution (the slice is reused — consumers retaining a row must
// copy it); returning false stops the run. Eval installs its arena collector
// as the yield, so collection and streaming share one execution path.
// counts, when non-nil, tallies step entries per operator for this run
// (merged into the plan's atomics once at the end).
type exec struct {
	pl      *Plan
	row     []vocab.TermID
	yield   func(row []vocab.TermID) bool
	stop    bool
	emitted int
	arena   []vocab.TermID
	rows    [][]vocab.TermID
	counts  []int64
}

func (pl *Plan) newExec() *exec {
	ex := &exec{pl: pl, row: make([]vocab.TermID, len(pl.vars))}
	for i := range ex.row {
		ex.row[i] = freeVal
	}
	if pl.actual != nil {
		ex.counts = make([]int64, len(pl.ops)+1)
	}
	return ex
}

// run drives the operator pipeline to completion (or early stop), merges the
// per-run operator counts into the plan's atomics, and returns the elapsed
// time (zero when the plan is unobserved). Callers report to metrics
// themselves: Eval counts deduplicated solutions, Stream counts raw emits.
func (pl *Plan) run(ex *exec) time.Duration {
	observing := pl.actual != nil
	var start time.Time
	if observing {
		start = time.Now()
	}
	pl.step(ex, 0)
	if !observing {
		return 0
	}
	for i, c := range ex.counts {
		pl.actual[i].Add(c)
	}
	pl.evals.Add(1)
	return time.Since(start)
}

// Stream runs the plan push-based: yield is called once per solution with a
// row of the plan's variable slots, in production order — not the sorted,
// deduplicated order Eval returns, and the same logical row may be produced
// more than once. The row slice is the run's scratch row, valid only for the
// duration of the call; copy it to retain it. Returning false from yield
// stops the run early. Stream returns the number of rows yielded and, like
// Eval, counts as one evaluation on the plan's metrics.
func (pl *Plan) Stream(yield func(row []vocab.TermID) bool) int {
	ex := pl.newExec()
	ex.yield = yield
	dur := pl.run(ex)
	if pl.actual != nil {
		pl.metrics.EvalDone(ex.emitted, dur)
	}
	return ex.emitted
}

// Eval runs the plan and returns every solution as a row of the plan's
// variable slots, deterministically ordered and deduplicated (the same
// order Evaluator.Eval has always produced). It is a collector over the
// same push-based machinery Stream exposes.
func (pl *Plan) Eval() *Results {
	ex := pl.newExec()
	ex.yield = ex.collect
	dur := pl.run(ex)
	rows := ex.rows
	sort.Slice(rows, func(i, j int) bool { return cmpRows(rows[i], rows[j]) < 0 })
	dedup := rows[:0]
	for i, r := range rows {
		if i == 0 || cmpRows(rows[i-1], r) != 0 {
			dedup = append(dedup, r)
		}
	}
	if pl.actual != nil {
		pl.metrics.EvalDone(len(dedup), dur)
	}
	return &Results{vars: pl.vars, rows: dedup}
}

// collect is Eval's yield: it copies the scratch row into the exec's chunked
// arena. Chunks grow with demand — sized to the rows collected so far,
// doubling up to a cap — so a query with a handful of solutions no longer
// pays for a fixed 256-row chunk.
func (ex *exec) collect(row []vocab.TermID) bool {
	n := len(row)
	if n == 0 {
		ex.rows = append(ex.rows, nil)
		return true
	}
	if cap(ex.arena)-len(ex.arena) < n {
		chunk := len(ex.rows)
		if chunk < 8 {
			chunk = 8
		}
		if chunk > 256 {
			chunk = 256
		}
		ex.arena = make([]vocab.TermID, 0, chunk*n)
	}
	off := len(ex.arena)
	ex.arena = append(ex.arena, row...)
	ex.rows = append(ex.rows, ex.arena[off:off+n:off+n])
	return true
}

func (ex *exec) emit() {
	ex.emitted++
	if !ex.yield(ex.row) {
		ex.stop = true
	}
}

// resolve returns the concrete value of a term under the current row.
func (ex *exec) resolve(t planTerm) (vocab.TermID, bool) {
	if t.isConst {
		return t.constID, true
	}
	if t.slot >= 0 {
		if v := ex.row[t.slot]; v != freeVal {
			return v, true
		}
	}
	return 0, false
}

// trySet binds a term position to v. Constants and wildcards pass through
// unchecked (the operator that calls trySet has already honoured constant
// constraints through its index choice, and the semantic operator checks
// them with Leq first — mirroring the interpreted bind()). For variables it
// binds a free slot (fresh=true: caller must unset after the continuation)
// or requires equality with the existing binding.
func (ex *exec) trySet(t planTerm, v vocab.TermID) (ok, fresh bool) {
	if t.slot < 0 {
		return true, false
	}
	cur := ex.row[t.slot]
	if cur == freeVal {
		ex.row[t.slot] = v
		return true, true
	}
	return cur == v, false
}

func (ex *exec) unset(t planTerm) { ex.row[t.slot] = freeVal }

// step executes operator i and recurses into the rest of the pipeline. A
// stopped exec (yield returned false) unwinds without entering any further
// operator.
func (pl *Plan) step(ex *exec, i int) {
	if ex.stop {
		return
	}
	if ex.counts != nil {
		ex.counts[i]++
	}
	if i == len(pl.ops) {
		ex.emit()
		return
	}
	o := &pl.ops[i]
	switch o.kind {
	case opLabel:
		pl.runLabel(ex, o, i)
	case opStar:
		pl.runStar(ex, o, i)
	case opTriple:
		if pr, ok := ex.resolve(o.p); ok {
			pl.runTriple(ex, o, pr, i)
		} else {
			for _, pr := range pl.store.Predicates() {
				if ex.stop {
					return
				}
				if ok, fresh := ex.trySet(o.p, pr); ok {
					pl.runTriple(ex, o, pr, i)
					if fresh {
						ex.unset(o.p)
					}
				}
			}
		}
	case opSemTriple:
		pl.runSemDispatch(ex, o, i)
	}
}

func (pl *Plan) runLabel(ex *exec, o *op, i int) {
	if s, ok := ex.resolve(o.s); ok {
		if pl.store.HasLabel(s, o.lit) {
			pl.step(ex, i+1)
		}
		return
	}
	for _, s := range pl.store.LabeledElements(o.lit) {
		if ex.stop {
			return
		}
		if ok, fresh := ex.trySet(o.s, s); ok {
			pl.step(ex, i+1)
			if fresh {
				ex.unset(o.s)
			}
		}
	}
}

// runStar matches `S p* O` against the store's closure index.
func (pl *Plan) runStar(ex *exec, o *op, i int) {
	st := pl.store
	pred := o.p.constID // validated: star predicates are constant
	s, sOK := ex.resolve(o.s)
	obj, oOK := ex.resolve(o.o)
	switch {
	case sOK && oOK:
		if st.Reaches(s, pred, obj) {
			pl.step(ex, i+1)
		}
	case sOK:
		l := st.ForwardClosure(s, pred)
		if l == nil {
			// Closure is exactly {s}: the zero-length path.
			if ok, fresh := ex.trySet(o.o, s); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.o)
				}
			}
			return
		}
		for _, t := range l {
			if ex.stop {
				return
			}
			if ok, fresh := ex.trySet(o.o, t); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.o)
				}
			}
		}
	case oOK:
		l := st.BackwardClosure(obj, pred)
		if l == nil {
			if ok, fresh := ex.trySet(o.s, obj); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.s)
				}
			}
			return
		}
		for _, t := range l {
			if ex.stop {
				return
			}
			if ok, fresh := ex.trySet(o.s, t); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.s)
				}
			}
		}
	default:
		// Both free: the precomputed reachability relation, no per-call
		// dedup map — ClosurePairs is already duplicate-free.
		for _, e := range st.ClosurePairs(pred) {
			if ex.stop {
				return
			}
			ok1, fr1 := ex.trySet(o.s, e.S)
			if !ok1 {
				continue
			}
			if ok2, fr2 := ex.trySet(o.o, e.O); ok2 {
				pl.step(ex, i+1)
				if fr2 {
					ex.unset(o.o)
				}
			}
			if fr1 {
				ex.unset(o.s)
			}
		}
	}
}

// runTriple matches an exact triple pattern under a concrete predicate,
// reading the most specific index the bound positions allow.
func (pl *Plan) runTriple(ex *exec, o *op, pred vocab.TermID, i int) {
	st := pl.store
	s, sOK := ex.resolve(o.s)
	obj, oOK := ex.resolve(o.o)
	switch {
	case sOK && oOK:
		if st.Has(ontology.Fact{S: s, P: pred, O: obj}) {
			pl.step(ex, i+1)
		}
	case sOK:
		for _, x := range st.Objects(s, pred) {
			if ex.stop {
				return
			}
			if ok, fresh := ex.trySet(o.o, x); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.o)
				}
			}
		}
	case oOK:
		for _, x := range st.Subjects(pred, obj) {
			if ex.stop {
				return
			}
			if ok, fresh := ex.trySet(o.s, x); ok {
				pl.step(ex, i+1)
				if fresh {
					ex.unset(o.s)
				}
			}
		}
	default:
		for _, f := range st.FactsWithPredicate(pred) {
			if ex.stop {
				return
			}
			ok1, fr1 := ex.trySet(o.s, f.S)
			if !ok1 {
				continue
			}
			if ok2, fr2 := ex.trySet(o.o, f.O); ok2 {
				pl.step(ex, i+1)
				if fr2 {
					ex.unset(o.o)
				}
			}
			if fr1 {
				ex.unset(o.s)
			}
		}
	}
}

// runSemDispatch enumerates candidate predicates for a semantic triple: a
// pattern predicate q matches any stored predicate q' with q ≤ q'. Bound
// predicate variables additionally require equality (as the interpreted
// bind() did).
func (pl *Plan) runSemDispatch(ex *exec, o *op, i int) {
	if o.p.isConst {
		for _, pr := range pl.store.Predicates() {
			if ex.stop {
				return
			}
			if pl.v.LeqR(o.p.constID, pr) {
				pl.runSemTriple(ex, o, pr, i)
			}
		}
		return
	}
	pv, bound := ex.resolve(o.p)
	for _, pr := range pl.store.Predicates() {
		if ex.stop {
			return
		}
		if bound && !pl.v.LeqR(pv, pr) {
			continue
		}
		if ok, fresh := ex.trySet(o.p, pr); ok {
			pl.runSemTriple(ex, o, pr, i)
			if fresh {
				ex.unset(o.p)
			}
		}
	}
}

// semScanFloor is the per-predicate fact count below which runSemTriple
// always takes the linear scan: index probing cannot beat a scan this short.
const semScanFloor = 64

// semCandidates returns the facts runSemTriple must consider for a pattern
// with the given bound sides, in byP order (Fact.Less, i.e. (S, O) within
// one predicate). When a side is bound and its descendant cone is small
// relative to the predicate's fact list, the candidates are collected
// through the bySP/byPO point indexes and re-sorted into byP order —
// exactly the subsequence of the full scan that survives that side's ≤
// filter, at a fraction of the cost. Otherwise it returns the shared byP
// slice and the caller's per-fact filters do the work as before.
func (pl *Plan) semCandidates(pred vocab.TermID, s vocab.TermID, sOK bool, obj vocab.TermID, oOK bool) []ontology.Fact {
	st, v := pl.store, pl.v
	all := st.FactsWithPredicate(pred)
	if len(all) <= semScanFloor || (!sOK && !oOK) {
		return all
	}
	if sOK {
		// f ≤ g needs s ≤ g.S: stored subjects range over s's descendants.
		if desc := v.ElementDescendants(s); len(desc)*8 <= len(all) {
			var out []ontology.Fact
			for _, d := range desc {
				for _, ob := range st.Objects(d, pred) {
					out = append(out, ontology.Fact{S: d, P: pred, O: ob})
				}
			}
			sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
			return out
		}
	}
	if oOK {
		if desc := v.ElementDescendants(obj); len(desc)*8 <= len(all) {
			var out []ontology.Fact
			for _, d := range desc {
				for _, sb := range st.Subjects(pred, d) {
					out = append(out, ontology.Fact{S: sb, P: pred, O: d})
				}
			}
			sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
			return out
		}
	}
	return all
}

// runSemTriple matches the pattern against facts stored under one concrete
// predicate with Definition 2.5 semantics: a stored fact g witnesses the
// pattern fact f when f ≤ g, and free variables additionally range over
// generalizations of the stored values.
func (pl *Plan) runSemTriple(ex *exec, o *op, pred vocab.TermID, i int) {
	v := pl.v
	s, sOK := ex.resolve(o.s)
	obj, oOK := ex.resolve(o.o)
	for _, g := range pl.semCandidates(pred, s, sOK, obj, oOK) {
		if ex.stop {
			return
		}
		if sOK && !v.LeqE(s, g.S) {
			continue
		}
		if oOK && !v.LeqE(obj, g.O) {
			continue
		}
		var sArr, oArr [1]vocab.TermID
		subjects := sArr[:]
		sArr[0] = g.S
		if !sOK && o.s.slot >= 0 {
			subjects = append(v.ElementAncestors(g.S), g.S)
		}
		objects := oArr[:]
		oArr[0] = g.O
		if !oOK && o.o.slot >= 0 {
			objects = append(v.ElementAncestors(g.O), g.O)
		}
		for _, sv := range subjects {
			ok1, fr1 := ex.trySet(o.s, sv)
			if !ok1 {
				continue
			}
			for _, ov := range objects {
				if ok2, fr2 := ex.trySet(o.o, ov); ok2 {
					pl.step(ex, i+1)
					if fr2 {
						ex.unset(o.o)
					}
				}
			}
			if fr1 {
				ex.unset(o.s)
			}
		}
	}
}

// Results is the row-oriented outcome of a plan evaluation: one row per
// solution, one column per plan variable (slot order). Rows are sorted in
// the evaluator's canonical deterministic order and deduplicated.
type Results struct {
	vars []PlanVar
	rows [][]vocab.TermID
}

// Vars returns the column schema (shared; do not modify).
func (r *Results) Vars() []PlanVar { return r.vars }

// Rows returns the solution rows (shared; do not modify).
func (r *Results) Rows() [][]vocab.TermID { return r.rows }

// Len returns the number of solutions.
func (r *Results) Len() int { return len(r.rows) }

// Bindings converts the rows to the legacy map form.
func (r *Results) Bindings() []Binding {
	out := make([]Binding, len(r.rows))
	for i, row := range r.rows {
		b := make(Binding, len(r.vars))
		for j, pv := range r.vars {
			if j < len(row) && row[j] != freeVal {
				b[pv.Name] = row[j]
			}
		}
		out[i] = b
	}
	return out
}

// CompareRows orders two result rows in the evaluator's canonical
// deterministic order — the order Eval's sorted, deduplicated Results use.
// Streaming consumers (assign.NewSpaceFromPlan) use it to reproduce the
// materialized path's row order without materializing.
func CompareRows(a, b []vocab.TermID) int { return cmpRows(a, b) }

// cmpRows orders rows exactly as the interpreted evaluator's string keys
// did: per variable in name (= slot) order, values compare as their decimal
// renderings inside the legacy "name=value;" key.
func cmpRows(a, b []vocab.TermID) int {
	for i := range a {
		if c := cmpTermDecimal(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// cmpTermDecimal compares two term IDs as decimal strings followed by ';'
// (the legacy binding-key layout): "10" sorts before "9", and a value whose
// decimal is a proper prefix of the other's sorts after it (';' > digit).
func cmpTermDecimal(a, b vocab.TermID) int {
	if a == b {
		return 0
	}
	var ab, bb [12]byte
	as := strconv.AppendInt(ab[:0], int64(a), 10)
	bs := strconv.AppendInt(bb[:0], int64(b), 10)
	n := len(as)
	if len(bs) < n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		if as[i] != bs[i] {
			return int(as[i]) - int(bs[i])
		}
	}
	if len(as) < len(bs) {
		return 1
	}
	return -1
}
