package sparql_test

import (
	"testing"

	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

func benchBGP(v *vocab.Vocabulary) sparql.BGP {
	rel := func(name string) vocab.TermID { return v.Relation(name) }
	el := func(name string) vocab.TermID { return v.Element(name) }
	return sparql.BGP{
		{S: sparql.VarTerm("w"), P: sparql.ConstTerm(rel("subClassOf")), O: sparql.ConstTerm(el("Attraction")), Star: true},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("instanceOf")), O: sparql.VarTerm("w")},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("inside")), O: sparql.ConstTerm(el("NYC"))},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(rel("hasLabel")), O: sparql.LiteralTerm("child-friendly")},
		{S: sparql.VarTerm("y"), P: sparql.ConstTerm(rel("subClassOf")), O: sparql.ConstTerm(el("Activity")), Star: true},
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(rel("instanceOf")), O: sparql.ConstTerm(el("Restaurant"))},
		{S: sparql.VarTerm("z"), P: sparql.ConstTerm(rel("nearBy")), O: sparql.VarTerm("x")},
	}
}

// BenchmarkWhereEval compares the WHERE-stage implementations on the
// Figure 2 query over the Figure 1 ontology: the compiled plan (as used by
// Eval), a pre-compiled reused plan, and the seed interpreter.
func BenchmarkWhereEval(b *testing.B) {
	v, s := paperdata.Build()
	bgp := benchBGP(v)
	e := sparql.NewEvaluator(s)

	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Eval(bgp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-reused", func(b *testing.B) {
		pl, err := e.Compile(bgp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pl.Eval().Len() == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalInterpreted(bgp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCache compares a cold Compile against a shared-cache hit:
// the hit path hashes the query shape, rebinds the cached plan to the
// caller's variable names and skips compilation entirely, which is what
// keeps repeated NewSession setup at the reused-plan level.
func BenchmarkPlanCache(b *testing.B) {
	v, s := paperdata.Build()
	bgp := benchBGP(v)

	b.Run("compile-cold", func(b *testing.B) {
		e := sparql.NewEvaluator(s)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Compile(bgp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		e := sparql.NewEvaluator(s).UseSharedCache()
		if _, err := e.Compile(bgp); err != nil { // warm the shared entry
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Compile(bgp); err != nil {
				b.Fatal(err)
			}
		}
		hits, _, _ := e.Cache.Stats()
		if hits < int64(b.N) {
			b.Fatalf("expected >= %d cache hits, got %d", b.N, hits)
		}
	})
}
