package sparql_test

import (
	"strings"
	"sync"
	"testing"

	"oassis/internal/obs"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
)

// TestPlanExplain pins the Explain report: one line per operator with the
// source pattern, the chosen access path, the estimate, and — after running
// with observation on — actual per-operator cardinalities.
func TestPlanExplain(t *testing.T) {
	s, v := skewedStore(t)
	bgp := sparql.BGP{
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(v.Relation("big")), O: sparql.VarTerm("y")},
		{S: sparql.VarTerm("x"), P: sparql.ConstTerm(v.Relation("small")), O: sparql.VarTerm("z")},
	}
	pl, err := sparql.NewEvaluator(s).Compile(bgp)
	if err != nil {
		t.Fatal(err)
	}
	// Unobserved: the table shows estimates and paths, no actuals.
	out := pl.Explain()
	if !strings.Contains(out, "FactsWithPredicate(p)") {
		t.Fatalf("missing scan path for the leading pattern:\n%s", out)
	}
	if !strings.Contains(out, "Objects(s,p)") {
		t.Fatalf("second operator should use the SP index ($x bound):\n%s", out)
	}
	if !strings.Contains(out, "$x small $z") || !strings.Contains(out, "$x big $y") {
		t.Fatalf("pattern rendering missing:\n%s", out)
	}
	if strings.Contains(out, "rows_in") {
		t.Fatalf("actuals shown without observation:\n%s", out)
	}

	pl.Observe(nil) // counting without a metric sink
	res := pl.Eval()
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	ops := pl.ExplainOps()
	if len(ops) != 2 {
		t.Fatalf("ops = %d", len(ops))
	}
	// Execution order: small (1 fact) then big. Root enters once; one
	// survivor enters the big operator; one final row.
	if ops[0].Pattern != 1 || ops[0].RowsIn != 1 || ops[0].RowsOut != 1 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Pattern != 0 || ops[1].RowsIn != 1 || ops[1].RowsOut != 1 {
		t.Fatalf("op1 = %+v", ops[1])
	}
	if !strings.Contains(pl.Explain(), "rows_in") {
		t.Fatalf("observed Explain lacks actuals:\n%s", pl.Explain())
	}
}

// TestCompileWithMetrics: an evaluator carrying a PlanMetrics set times
// compiles and auto-observes the plans it produces; Eval feeds the eval
// counters and per-operator actuals.
func TestCompileWithMetrics(t *testing.T) {
	v, s := paperdata.Build()
	o := obs.New()
	e := sparql.NewEvaluator(s)
	e.Metrics = o.Plan
	pl, err := e.Compile(figure2WhereBGP(t, v))
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Plan.Compiles.Value(); got != 1 {
		t.Fatalf("compiles = %d", got)
	}
	res := pl.Eval()
	if o.Plan.Evals.Value() != 1 {
		t.Fatalf("evals = %d", o.Plan.Evals.Value())
	}
	if got := o.Plan.Rows.Value(); got != int64(res.Len()) {
		t.Fatalf("rows counter %d != result rows %d", got, res.Len())
	}
	if o.Plan.EvalDur.Count() != 1 || o.Plan.CompileDur.Count() != 1 {
		t.Fatal("duration histograms not fed")
	}
}

// TestObservedEvalConcurrent: per-operator accounting must be race-free and
// additive across concurrent Evals of one shared plan.
func TestObservedEvalConcurrent(t *testing.T) {
	v, s := paperdata.Build()
	e := sparql.NewEvaluator(s)
	pl, err := e.Compile(figure2WhereBGP(t, v))
	if err != nil {
		t.Fatal(err)
	}
	pl.Observe(nil)
	base := pl.Eval().Len()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n := pl.Eval().Len(); n != base {
				t.Errorf("concurrent eval rows = %d, want %d", n, base)
			}
		}()
	}
	wg.Wait()
	ops := pl.ExplainOps()
	if ops[0].Evals != workers+1 {
		t.Fatalf("evals = %d, want %d", ops[0].Evals, workers+1)
	}
	// Root operator entries scale exactly with eval count.
	if ops[0].RowsIn != int64(workers+1) {
		t.Fatalf("root rows_in = %d, want %d", ops[0].RowsIn, workers+1)
	}
}
