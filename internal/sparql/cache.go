package sparql

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"oassis/internal/ontology"
)

// This file implements the compiled-plan cache. Compiling a WHERE clause is
// cheap (~µs) but not free: validation, variable-slot assignment, selectivity
// estimation against the store indexes and operator lowering all re-run per
// query, and the multi-run server plus synthetic fleets compile the same
// handful of query shapes over and over. The cache keys plans by a
// *normalized query shape* — the BGP with variables α-renamed to their slot
// numbers plus the evaluation mode — so any two queries that are guaranteed
// to compile to the same operator pipeline share one compilation.
//
// Soundness: two BGPs get equal keys only when they are identical up to an
// order-preserving renaming of variables (slot numbers come from sorted
// variable names, so only renamings that keep the sorted order map to the
// same slots). Such queries produce identical result-row tuples over the
// same frozen store and mode; only the column *names* differ, which a cache
// hit restores by rebinding the caller's names onto the shared operator
// pipeline (see Plan.rebind). Queries whose variables sort differently hash
// to different keys and never share an entry — conservative, but provably
// safe.
//
// The cache lives per frozen store (ontology.Store.PlanMemo), so plans never
// outlive the indexes they were estimated against and independent stores
// never cross-contaminate.

// PlanCache memoizes compiled plans by normalized query shape. Safe for
// concurrent use. Obtain a per-store shared instance with SharedPlanCache or
// wire one into an Evaluator with UseSharedCache.
type PlanCache struct {
	entries sync.Map // shape key (string) -> *Plan (shape-canonical names)
	hits    atomic.Int64
	misses  atomic.Int64
	size    atomic.Int64
}

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache { return &PlanCache{} }

// Stats reports cache traffic: hits, misses, and resident entries.
func (c *PlanCache) Stats() (hits, misses, entries int64) {
	return c.hits.Load(), c.misses.Load(), c.size.Load()
}

// sharedCacheKey is the PlanMemo key under which a store's PlanCache lives.
type sharedCacheKey struct{}

// SharedPlanCache returns the plan cache shared by every evaluator over the
// given store, creating it on first use. The store should be frozen: plans
// snapshot its indexes and statistics at compile time.
func SharedPlanCache(s *ontology.Store) *PlanCache {
	memo := s.PlanMemo()
	if v, ok := memo.Load(sharedCacheKey{}); ok {
		return v.(*PlanCache)
	}
	v, _ := memo.LoadOrStore(sharedCacheKey{}, NewPlanCache())
	return v.(*PlanCache)
}

// UseSharedCache wires the store's shared plan cache into the evaluator and
// returns the evaluator for chaining. Subsequent Compile calls consult the
// cache first; a hit skips compilation entirely (the Compiles counter does
// not move) and counts on the CacheHits metric instead.
func (e *Evaluator) UseSharedCache() *Evaluator {
	e.Cache = SharedPlanCache(e.store)
	return e
}

// shapeKey renders the BGP's normalized shape: the evaluation mode, then
// each pattern in BGP order with constants as C<id>, variables as V<slot>
// (slots assigned in sorted-name order, exactly as compile does), wildcards
// as W, and literals length-prefixed so no literal byte sequence can
// collide with the key's own separators. It returns the sorted variable
// names alongside so a cache hit can rebind them onto the cached plan.
func shapeKey(bgp BGP, semantic bool) (string, []string) {
	seen := make(map[string]bool)
	var names []string
	for _, p := range bgp {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Kind == Var && !seen[t.Name] {
				seen[t.Name] = true
				names = append(names, t.Name)
			}
		}
	}
	sort.Strings(names)
	slot := make(map[string]int, len(names))
	for i, n := range names {
		slot[n] = i
	}
	buf := make([]byte, 0, 16+24*len(bgp))
	if semantic {
		buf = append(buf, 'S')
	} else {
		buf = append(buf, 'E')
	}
	for _, p := range bgp {
		buf = append(buf, '|')
		if p.Star {
			buf = append(buf, '*')
		}
		for _, t := range []Term{p.S, p.P, p.O} {
			switch t.Kind {
			case Const:
				buf = append(buf, 'C')
				buf = strconv.AppendInt(buf, int64(t.ID), 10)
			case Var:
				buf = append(buf, 'V')
				buf = strconv.AppendInt(buf, int64(slot[t.Name]), 10)
			case Literal:
				buf = append(buf, 'L')
				buf = strconv.AppendInt(buf, int64(len(t.Lit)), 10)
				buf = append(buf, ':')
				buf = append(buf, t.Lit...)
			default:
				buf = append(buf, 'W')
			}
			buf = append(buf, ',')
		}
	}
	return string(buf), names
}

// rebind clones the plan for a query that shares its shape but names its
// variables differently: the immutable operator pipeline, store and mode are
// shared, while the variable table is rebuilt positionally from the caller's
// sorted names. The clone starts unobserved (fresh per-operator actuals);
// Explain on a rebound plan renders patterns with the shape-defining names
// the entry was first compiled under.
func (pl *Plan) rebind(names []string) *Plan {
	np := &Plan{store: pl.store, v: pl.v, semantic: pl.semantic, ops: pl.ops}
	np.vars = make([]PlanVar, len(names))
	np.slotOf = make(map[string]int, len(names))
	for i, n := range names {
		np.vars[i] = PlanVar{Name: n, Kind: pl.vars[i].Kind}
		np.slotOf[n] = i
	}
	return np
}

// lookup serves one Compile through the cache: a hit rebinds the cached
// pipeline to the query's names without compiling; a miss compiles, caches
// the plan under its shape, and reports compile time as usual. Compile
// errors are returned without caching (the next lookup re-compiles).
func (c *PlanCache) lookup(e *Evaluator, bgp BGP) (*Plan, error) {
	key, names := shapeKey(bgp, e.Semantic)
	if v, ok := c.entries.Load(key); ok {
		c.hits.Add(1)
		e.LastCompileCacheHit = true
		e.Metrics.CacheHit()
		pl := v.(*Plan).rebind(names)
		if e.Metrics != nil {
			pl.Observe(e.Metrics)
		}
		return pl, nil
	}
	c.misses.Add(1)
	e.LastCompileCacheHit = false
	e.Metrics.CacheMiss()
	pl, err := e.compileTimed(bgp)
	if err != nil {
		return nil, err
	}
	if _, loaded := c.entries.LoadOrStore(key, pl.rebind(planNames(pl))); !loaded {
		c.size.Add(1)
	}
	return pl, nil
}

// planNames returns the plan's variable names in slot order.
func planNames(pl *Plan) []string {
	names := make([]string, len(pl.vars))
	for i, v := range pl.vars {
		names[i] = v.Name
	}
	return names
}
