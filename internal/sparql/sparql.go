// Package sparql implements the SPARQL subset that OASSIS-QL's WHERE clause
// is built on (Section 3 of the paper): basic graph pattern matching over
// the ontology store with variables, the `[]` wildcard, string-literal
// objects (label filters) and zero-or-more property paths such as
// `subClassOf*`.
//
// The evaluator has two modes. In the default Exact mode a pattern fact must
// match a stored triple exactly, which is what the paper's prototype (built
// on RDFLIB) does and what Figure 3 reflects — generalizations of valid
// assignments are *not* themselves valid. In Semantic mode a pattern fact
// matches whenever the ontology semantically implies it per Definition 2.5
// (𝜙(A_WHERE) ≤ 𝒪, the paper's formal validity definition).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// TermKind says how a pattern position is specified.
type TermKind uint8

const (
	// Const is a fixed vocabulary term.
	Const TermKind = iota
	// Var is a named variable ($x).
	Var
	// Wildcard is the `[]` anything-marker: it must match something, but
	// the matched value is not recorded.
	Wildcard
	// Literal is a quoted string (only valid in object position).
	Literal
)

// Term is one position of a triple pattern.
type Term struct {
	Kind TermKind
	ID   vocab.TermID // Const
	Name string       // Var: variable name without the $ sign
	Lit  string       // Literal
}

// ConstTerm builds a constant term.
func ConstTerm(id vocab.TermID) Term { return Term{Kind: Const, ID: id} }

// VarTerm builds a variable term.
func VarTerm(name string) Term { return Term{Kind: Var, Name: name} }

// WildcardTerm builds the `[]` term.
func WildcardTerm() Term { return Term{Kind: Wildcard} }

// LiteralTerm builds a string-literal term.
func LiteralTerm(s string) Term { return Term{Kind: Literal, Lit: s} }

// Pattern is one triple pattern of a basic graph pattern. Star marks a
// zero-or-more property path on a constant predicate (`subClassOf*`).
type Pattern struct {
	S    Term
	P    Term
	O    Term
	Star bool
}

// String renders the pattern for error messages and query printing.
func (p Pattern) String(v *vocab.Vocabulary) string {
	star := ""
	if p.Star {
		star = "*"
	}
	return termString(v, vocab.Element, p.S) + " " +
		termString(v, vocab.Relation, p.P) + star + " " +
		termString(v, vocab.Element, p.O)
}

func termString(v *vocab.Vocabulary, k vocab.Kind, t Term) string {
	switch t.Kind {
	case Const:
		var n string
		if k == vocab.Element {
			n = v.ElementName(t.ID)
		} else {
			n = v.RelationName(t.ID)
		}
		if strings.ContainsAny(n, " \t") {
			return `"` + n + `"`
		}
		return n
	case Var:
		return "$" + t.Name
	case Wildcard:
		return "[]"
	case Literal:
		return `"` + t.Lit + `"`
	}
	return "?"
}

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP []Pattern

// Binding maps variable names to vocabulary terms. Variables bound in
// predicate position hold relation IDs; all others hold element IDs.
type Binding map[string]vocab.TermID

// clone copies a binding.
func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Evaluator matches BGPs against an ontology store.
type Evaluator struct {
	store *ontology.Store
	v     *vocab.Vocabulary
	// Semantic switches validity from exact triple matching to the
	// implication semantics of Definition 2.5.
	Semantic bool
	// Metrics, when set, times Compile calls and enables per-operator
	// cardinality accounting on every plan this evaluator compiles
	// (see Plan.Observe). Nil costs nothing.
	Metrics *obs.PlanMetrics
	// Cache, when set, memoizes compiled plans by normalized query shape:
	// Compile consults it first and a hit skips compilation entirely.
	// Wire the store-shared instance with UseSharedCache. Nil disables
	// caching.
	Cache *PlanCache
	// LastCompileCacheHit reports whether the most recent Compile through
	// a Cache was served from it (false after a miss or when no cache is
	// wired). Per-evaluator, so fleet workers — one evaluator each — can
	// attribute per-execution cache behaviour without a metrics registry.
	LastCompileCacheHit bool
}

// NewEvaluator returns an evaluator over the store.
func NewEvaluator(s *ontology.Store) *Evaluator {
	return &Evaluator{store: s, v: s.Vocabulary()}
}

// VarKinds returns the namespace of each variable in the BGP, or an error if
// a variable is used in both element and relation position.
func VarKinds(bgp BGP) (map[string]vocab.Kind, error) {
	kinds := make(map[string]vocab.Kind)
	record := func(name string, k vocab.Kind) error {
		if prev, ok := kinds[name]; ok && prev != k {
			return fmt.Errorf("sparql: variable $%s used as both element and relation", name)
		}
		kinds[name] = k
		return nil
	}
	for _, p := range bgp {
		if p.S.Kind == Var {
			if err := record(p.S.Name, vocab.Element); err != nil {
				return nil, err
			}
		}
		if p.P.Kind == Var {
			if err := record(p.P.Name, vocab.Relation); err != nil {
				return nil, err
			}
		}
		if p.O.Kind == Var {
			if err := record(p.O.Name, vocab.Element); err != nil {
				return nil, err
			}
		}
	}
	return kinds, nil
}

// Eval returns every binding of the BGP's variables that matches the store,
// in a deterministic order. Wildcard positions must match something but do
// not bind. An empty BGP yields one empty binding.
//
// Eval is a thin wrapper over the compiled plan pipeline (Compile + Plan.Eval,
// see plan.go); callers that evaluate the same BGP repeatedly or want
// row-oriented results should compile once and hold the Plan.
func (e *Evaluator) Eval(bgp BGP) ([]Binding, error) {
	pl, err := e.Compile(bgp)
	if err != nil {
		return nil, err
	}
	return pl.Eval().Bindings(), nil
}

// evalInterpreted is the seed's recursive map-based matcher, kept as a
// reference implementation: the differential tests and BenchmarkWhereEval
// pin the compiled plan against it.
func (e *Evaluator) evalInterpreted(bgp BGP) ([]Binding, error) {
	if err := e.validate(bgp); err != nil {
		return nil, err
	}
	var out []Binding
	e.match(orderPatterns(bgp), Binding{}, &out)
	sortBindings(out)
	return dedupeBindings(out), nil
}

func (e *Evaluator) validate(bgp BGP) error {
	if _, err := VarKinds(bgp); err != nil {
		return err
	}
	for _, p := range bgp {
		if p.S.Kind == Literal || p.P.Kind == Literal {
			return fmt.Errorf("sparql: literal only allowed in object position: %s", p.String(e.v))
		}
		if p.P.Kind == Wildcard {
			return fmt.Errorf("sparql: wildcard predicate not supported in WHERE: %s", p.String(e.v))
		}
		if p.Star && p.P.Kind != Const {
			return fmt.Errorf("sparql: path star requires a constant predicate: %s", p.String(e.v))
		}
		if p.O.Kind == Literal && !p.Star && p.P.Kind == Const &&
			e.v.RelationName(p.P.ID) != ontology.RelHasLabel {
			return fmt.Errorf("sparql: literal object requires %s: %s", ontology.RelHasLabel, p.String(e.v))
		}
	}
	return nil
}

// orderPatterns sorts patterns most-selective-first: constants and literals
// score higher than variables. A simple static heuristic is enough because
// the recursive matcher re-binds as it goes.
func orderPatterns(bgp BGP) BGP {
	scored := make(BGP, len(bgp))
	copy(scored, bgp)
	score := func(p Pattern) int {
		s := 0
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Kind == Const || t.Kind == Literal {
				s++
			}
		}
		return s
	}
	sort.SliceStable(scored, func(i, j int) bool { return score(scored[i]) > score(scored[j]) })
	return scored
}

func (e *Evaluator) match(patterns BGP, b Binding, out *[]Binding) {
	if len(patterns) == 0 {
		*out = append(*out, b.clone())
		return
	}
	// Pick the pattern with the most positions bound under the current
	// binding; this keeps intermediate result sets small.
	best, bestScore := 0, -1
	for i, p := range patterns {
		s := 0
		for _, t := range []Term{p.S, p.P, p.O} {
			switch t.Kind {
			case Const, Literal:
				s += 2
			case Var:
				if _, ok := b[t.Name]; ok {
					s += 2
				}
			}
		}
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	p := patterns[best]
	rest := make(BGP, 0, len(patterns)-1)
	rest = append(rest, patterns[:best]...)
	rest = append(rest, patterns[best+1:]...)

	e.matchPattern(p, b, func(nb Binding) {
		e.match(rest, nb, out)
	})
}

// resolve returns the concrete term a pattern position denotes under the
// binding, or ok=false if it is still free.
func resolve(t Term, b Binding) (vocab.TermID, bool) {
	switch t.Kind {
	case Const:
		return t.ID, true
	case Var:
		id, ok := b[t.Name]
		return id, ok
	}
	return 0, false
}

// bind extends the binding for a var term; wildcard and resolved terms pass
// through. It reports false when the term is a var already bound to a
// different value.
func bind(t Term, id vocab.TermID, b Binding) (Binding, bool) {
	if t.Kind != Var {
		return b, true
	}
	if prev, ok := b[t.Name]; ok {
		return b, prev == id
	}
	nb := b.clone()
	nb[t.Name] = id
	return nb, true
}

// matchPattern enumerates all extensions of b that satisfy p, invoking k for
// each.
func (e *Evaluator) matchPattern(p Pattern, b Binding, k func(Binding)) {
	if p.O.Kind == Literal {
		e.matchLabel(p, b, k)
		return
	}
	if p.Star {
		e.matchStar(p, b, k)
		return
	}
	e.matchTriple(p, b, k)
}

func (e *Evaluator) matchLabel(p Pattern, b Binding, k func(Binding)) {
	if s, ok := resolve(p.S, b); ok {
		if e.store.HasLabel(s, p.O.Lit) {
			k(b)
		}
		return
	}
	for _, s := range e.store.LabeledElements(p.O.Lit) {
		if nb, ok := bind(p.S, s, b); ok {
			k(nb)
		}
	}
}

// matchStar matches `S p* O`: O is reachable from S by zero or more p-edges
// over the stored triples.
func (e *Evaluator) matchStar(p Pattern, b Binding, k func(Binding)) {
	pred := p.P.ID
	s, sOK := resolve(p.S, b)
	o, oOK := resolve(p.O, b)
	switch {
	case sOK && oOK:
		if e.reaches(s, pred, o) {
			k(b)
		}
	case sOK:
		for _, t := range e.forwardClosure(s, pred) {
			if nb, ok := bind(p.O, t, b); ok {
				k(nb)
			}
		}
	case oOK:
		for _, t := range e.backwardClosure(o, pred) {
			if nb, ok := bind(p.S, t, b); ok {
				k(nb)
			}
		}
	default:
		// Both free: the store's precomputed reachability relation already
		// holds every (subject-closure ∪ zero-length) pair, sorted and
		// duplicate-free — no per-call dedup map needed.
		for _, edge := range e.store.ClosurePairs(pred) {
			if nb, ok := bind(p.S, edge.S, b); ok {
				if nb2, ok := bind(p.O, edge.O, nb); ok {
					k(nb2)
				}
			}
		}
	}
}

// reaches reports a path of zero or more pred-edges from s to o. The store
// either answers from its closure index or runs an early-exit BFS; the full
// closure is never materialized just to probe one target.
func (e *Evaluator) reaches(s, pred, o vocab.TermID) bool {
	return e.store.Reaches(s, pred, o)
}

// forwardClosure returns s plus everything reachable from s via pred edges,
// sorted, backed by the store's memoized closure index.
func (e *Evaluator) forwardClosure(s, pred vocab.TermID) []vocab.TermID {
	if l := e.store.ForwardClosure(s, pred); l != nil {
		return l
	}
	return []vocab.TermID{s}
}

// backwardClosure returns o plus everything that reaches o via pred edges.
func (e *Evaluator) backwardClosure(o, pred vocab.TermID) []vocab.TermID {
	if l := e.store.BackwardClosure(o, pred); l != nil {
		return l
	}
	return []vocab.TermID{o}
}

// matchTriple matches a plain triple pattern.
func (e *Evaluator) matchTriple(p Pattern, b Binding, k func(Binding)) {
	preds := e.candidatePredicates(p, b)
	for _, pred := range preds {
		e.matchTripleWithPred(p, pred, b, k)
	}
}

func (e *Evaluator) candidatePredicates(p Pattern, b Binding) []vocab.TermID {
	if id, ok := resolve(p.P, b); ok {
		if e.Semantic {
			// A pattern predicate q matches any stored predicate
			// q' with q ≤ q'.
			var out []vocab.TermID
			for _, sp := range e.store.Predicates() {
				if e.v.LeqR(id, sp) {
					out = append(out, sp)
				}
			}
			return out
		}
		return []vocab.TermID{id}
	}
	return e.store.Predicates()
}

// matchTripleWithPred matches the pattern against facts stored under a
// concrete predicate. In semantic mode the subject/object of a matching
// stored fact may be specializations of the pattern's terms, so free
// variables additionally range over generalizations of the stored values.
func (e *Evaluator) matchTripleWithPred(p Pattern, pred vocab.TermID, b Binding, k func(Binding)) {
	// Bind the predicate variable if present. In semantic mode the
	// variable binds to the pattern-side value, which is the stored
	// predicate itself here (enumerated by candidatePredicates).
	b, ok := bind(p.P, pred, b)
	if !ok {
		return
	}
	s, sOK := resolve(p.S, b)
	o, oOK := resolve(p.O, b)
	if !e.Semantic {
		switch {
		case sOK && oOK:
			if e.store.Has(ontology.Fact{S: s, P: pred, O: o}) {
				k(b)
			}
		case sOK:
			for _, obj := range e.store.Objects(s, pred) {
				if nb, ok := bind(p.O, obj, b); ok {
					k(nb)
				}
			}
		case oOK:
			for _, subj := range e.store.Subjects(pred, o) {
				if nb, ok := bind(p.S, subj, b); ok {
					k(nb)
				}
			}
		default:
			for _, f := range e.store.FactsWithPredicate(pred) {
				if nb, ok := bind(p.S, f.S, b); ok {
					if nb2, ok := bind(p.O, f.O, nb); ok {
						k(nb2)
					}
				}
			}
		}
		return
	}
	// Semantic mode: a stored fact g witnesses pattern fact f when f ≤ g.
	for _, g := range e.store.FactsWithPredicate(pred) {
		if sOK && !e.v.LeqE(s, g.S) {
			continue
		}
		if oOK && !e.v.LeqE(o, g.O) {
			continue
		}
		subjects := []vocab.TermID{g.S}
		if !sOK && p.S.Kind == Var {
			subjects = append(e.v.ElementAncestors(g.S), g.S)
		}
		objects := []vocab.TermID{g.O}
		if !oOK && p.O.Kind == Var {
			objects = append(e.v.ElementAncestors(g.O), g.O)
		}
		for _, sv := range subjects {
			nb, ok := bind(p.S, sv, b)
			if !ok {
				continue
			}
			for _, ov := range objects {
				if nb2, ok := bind(p.O, ov, nb); ok {
					k(nb2)
				}
			}
		}
	}
}

// sortBindings orders bindings deterministically by their sorted
// (name, value) pairs.
func sortBindings(bs []Binding) {
	sort.Slice(bs, func(i, j int) bool {
		return bindingKey(bs[i]) < bindingKey(bs[j])
	})
}

func dedupeBindings(bs []Binding) []Binding {
	out := bs[:0]
	prev := ""
	for i, b := range bs {
		k := bindingKey(b)
		if i == 0 || k != prev {
			out = append(out, b)
		}
		prev = k
	}
	return out
}

func bindingKey(b Binding) string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%d;", n, b[n])
	}
	return sb.String()
}
