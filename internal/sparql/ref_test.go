package sparql_test

// Differential test for the compiled WHERE stage: a naive reference
// evaluator — pattern-by-pattern filtering over Store.AllFacts, no indexes,
// no planning — is pinned equal (including order) to the planned evaluator
// and to the seed interpreter, on randomized stores and BGPs in both Exact
// and Semantic modes. Same precedent as vocab's leq_ref_test.go.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// refEvaluator is the executable specification of the WHERE semantics.
type refEvaluator struct {
	v        *vocab.Vocabulary
	store    *ontology.Store
	facts    ontology.FactSet
	semantic bool
}

func newRefEvaluator(s *ontology.Store, semantic bool) *refEvaluator {
	return &refEvaluator{v: s.Vocabulary(), store: s, facts: s.AllFacts(), semantic: semantic}
}

func cloneBinding(b sparql.Binding) sparql.Binding {
	c := make(sparql.Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// bindVal extends b so that term t denotes val: constants and wildcards pass
// through unchanged, a bound variable requires equality, a free variable
// binds (in a fresh copy).
func bindVal(t sparql.Term, val vocab.TermID, b sparql.Binding) (sparql.Binding, bool) {
	if t.Kind != sparql.Var {
		return b, true
	}
	if prev, ok := b[t.Name]; ok {
		return b, prev == val
	}
	nb := cloneBinding(b)
	nb[t.Name] = val
	return nb, true
}

func (r *refEvaluator) eval(bgp sparql.BGP) []sparql.Binding {
	sols := []sparql.Binding{{}}
	// The WHERE semantics are order-sensitive for unanchored stars and
	// semantic triples, so the reference defines the order the same way the
	// seed evaluator did: statically most-constants-first (stable), then
	// dynamically most-bound-positions-first.
	for _, pi := range refOrder(bgp) {
		p := bgp[pi]
		var next []sparql.Binding
		for _, b := range sols {
			next = append(next, r.matchOne(p, b)...)
		}
		sols = next
	}
	sort.Slice(sols, func(i, j int) bool { return refKey(sols[i]) < refKey(sols[j]) })
	out := sols[:0]
	prev := ""
	for i, b := range sols {
		if k := refKey(b); i == 0 || k != prev {
			out = append(out, b)
			prev = k
		} else {
			prev = k
		}
	}
	return out
}

// refOrder replays the seed evaluator's pattern selection order.
func refOrder(bgp sparql.BGP) []int {
	static := func(p sparql.Pattern) int {
		s := 0
		for _, t := range []sparql.Term{p.S, p.P, p.O} {
			if t.Kind == sparql.Const || t.Kind == sparql.Literal {
				s++
			}
		}
		return s
	}
	idx := make([]int, len(bgp))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return static(bgp[idx[i]]) > static(bgp[idx[j]]) })
	bound := map[string]bool{}
	order := make([]int, 0, len(idx))
	for len(idx) > 0 {
		best, bestScore := 0, -1
		for i, pi := range idx {
			s := 0
			for _, t := range []sparql.Term{bgp[pi].S, bgp[pi].P, bgp[pi].O} {
				switch t.Kind {
				case sparql.Const, sparql.Literal:
					s += 2
				case sparql.Var:
					if bound[t.Name] {
						s += 2
					}
				}
			}
			if s > bestScore {
				best, bestScore = i, s
			}
		}
		pi := idx[best]
		idx = append(idx[:best], idx[best+1:]...)
		order = append(order, pi)
		for _, t := range []sparql.Term{bgp[pi].S, bgp[pi].P, bgp[pi].O} {
			if t.Kind == sparql.Var {
				bound[t.Name] = true
			}
		}
	}
	return order
}

// refKey mirrors the legacy binding key layout ("name=id;"...).
func refKey(b sparql.Binding) string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%d;", n, b[n])
	}
	return sb.String()
}

func (r *refEvaluator) matchOne(p sparql.Pattern, b sparql.Binding) []sparql.Binding {
	switch {
	case p.O.Kind == sparql.Literal:
		return r.matchLabel(p, b)
	case p.Star:
		return r.matchStar(p, b)
	case r.semantic:
		return r.matchSemantic(p, b)
	}
	return r.matchExact(p, b)
}

func (r *refEvaluator) matchLabel(p sparql.Pattern, b sparql.Binding) []sparql.Binding {
	if p.S.Kind == sparql.Const {
		if r.store.HasLabel(p.S.ID, p.O.Lit) {
			return []sparql.Binding{b}
		}
		return nil
	}
	if p.S.Kind == sparql.Var {
		if sv, ok := b[p.S.Name]; ok {
			if r.store.HasLabel(sv, p.O.Lit) {
				return []sparql.Binding{b}
			}
			return nil
		}
	}
	var out []sparql.Binding
	for _, e := range r.store.LabeledElements(p.O.Lit) {
		if nb, ok := bindVal(p.S, e, b); ok {
			out = append(out, nb)
		}
	}
	return out
}

func (r *refEvaluator) matchExact(p sparql.Pattern, b sparql.Binding) []sparql.Binding {
	var out []sparql.Binding
	for _, f := range r.facts {
		bp, ok := bindVal(p.P, f.P, b)
		if !ok || (p.P.Kind == sparql.Const && p.P.ID != f.P) {
			continue
		}
		bs, ok := bindVal(p.S, f.S, bp)
		if !ok || (p.S.Kind == sparql.Const && p.S.ID != f.S) {
			continue
		}
		bo, ok := bindVal(p.O, f.O, bs)
		if !ok || (p.O.Kind == sparql.Const && p.O.ID != f.O) {
			continue
		}
		out = append(out, bo)
	}
	return out
}

// matchSemantic: a stored fact g witnesses the pattern fact f when f ≤ g
// (Definition 2.5); free variables additionally range over generalizations
// of the stored values. Bound variables require exact equality with the
// stored value — the behaviour the interpreted evaluator has always had.
func (r *refEvaluator) matchSemantic(p sparql.Pattern, b sparql.Binding) []sparql.Binding {
	var out []sparql.Binding
	for _, g := range r.facts {
		if p.P.Kind == sparql.Const && !r.v.LeqR(p.P.ID, g.P) {
			continue
		}
		bp, ok := bindVal(p.P, g.P, b)
		if !ok {
			continue
		}
		if p.S.Kind == sparql.Const && !r.v.LeqE(p.S.ID, g.S) {
			continue
		}
		if p.O.Kind == sparql.Const && !r.v.LeqE(p.O.ID, g.O) {
			continue
		}
		_, sBound := b[p.S.Name]
		subjects := []vocab.TermID{g.S}
		if p.S.Kind == sparql.Var && !sBound {
			subjects = append(r.v.ElementAncestors(g.S), g.S)
		}
		_, oBound := b[p.O.Name]
		objects := []vocab.TermID{g.O}
		if p.O.Kind == sparql.Var && !oBound {
			objects = append(r.v.ElementAncestors(g.O), g.O)
		}
		for _, sv := range subjects {
			bs, ok := bindVal(p.S, sv, bp)
			if !ok {
				continue
			}
			for _, ov := range objects {
				if bo, ok := bindVal(p.O, ov, bs); ok {
					out = append(out, bo)
				}
			}
		}
	}
	return out
}

func (r *refEvaluator) matchStar(p sparql.Pattern, b sparql.Binding) []sparql.Binding {
	pred := p.P.ID
	resolveRef := func(t sparql.Term) (vocab.TermID, bool) {
		if t.Kind == sparql.Const {
			return t.ID, true
		}
		if t.Kind == sparql.Var {
			id, ok := b[t.Name]
			return id, ok
		}
		return 0, false
	}
	s, sOK := resolveRef(p.S)
	o, oOK := resolveRef(p.O)
	// Candidate endpoints: resolved sides contribute themselves, free sides
	// range over every node the predicate's facts mention.
	mentioned := map[vocab.TermID]bool{}
	for _, f := range r.facts {
		if f.P == pred {
			mentioned[f.S] = true
			mentioned[f.O] = true
		}
	}
	candidates := func(val vocab.TermID, resolved bool) []vocab.TermID {
		if resolved {
			return []vocab.TermID{val}
		}
		out := make([]vocab.TermID, 0, len(mentioned))
		for n := range mentioned {
			out = append(out, n)
		}
		return out
	}
	// A resolved endpoint that the facts never mention still matches itself
	// on the other side via the zero-length path, so widen the free side.
	sCands := candidates(s, sOK)
	oCands := candidates(o, oOK)
	if sOK && !oOK && !mentioned[s] {
		oCands = append(oCands, s)
	}
	if oOK && !sOK && !mentioned[o] {
		sCands = append(sCands, o)
	}
	var out []sparql.Binding
	for _, sv := range sCands {
		for _, ov := range oCands {
			if !r.reach(pred, sv, ov, map[vocab.TermID]bool{}) {
				continue
			}
			if bs, ok := bindVal(p.S, sv, b); ok {
				if bo, ok := bindVal(p.O, ov, bs); ok {
					out = append(out, bo)
				}
			}
		}
	}
	return out
}

// reach: zero or more pred-edges from a to z, walking the raw fact list.
func (r *refEvaluator) reach(pred, a, z vocab.TermID, seen map[vocab.TermID]bool) bool {
	if a == z {
		return true
	}
	seen[a] = true
	for _, f := range r.facts {
		if f.P == pred && f.S == a && !seen[f.O] {
			if r.reach(pred, f.O, z, seen) {
				return true
			}
		}
	}
	return false
}

// caseStore bundles a random store with the element/relation handles the
// BGP generator draws from, so tests can produce several BGPs over one
// store (the plan-cache tests need that).
type caseStore struct {
	s        *ontology.Store
	elems    []vocab.TermID
	rels     []vocab.TermID
	hasLabel vocab.TermID
}

// randomCase builds a random vocabulary hierarchy, store and BGP.
func randomCase(rng *rand.Rand) (*ontology.Store, sparql.BGP) {
	cs := randomStore(rng)
	return cs.s, randomBGP(rng, cs)
}

// randomStore builds the random vocabulary hierarchy and fact store.
func randomStore(rng *rand.Rand) *caseStore {
	v := vocab.New()
	nElem := 4 + rng.Intn(9)
	elems := make([]vocab.TermID, nElem)
	for i := range elems {
		elems[i] = v.MustElement(fmt.Sprintf("e%d", i))
		if i > 0 && rng.Float64() < 0.6 {
			if err := v.OrderElements(elems[rng.Intn(i)], elems[i]); err != nil {
				panic(err)
			}
		}
	}
	hasLabel := v.MustRelation(ontology.RelHasLabel)
	nRel := 2 + rng.Intn(3)
	rels := make([]vocab.TermID, nRel)
	for i := range rels {
		rels[i] = v.MustRelation(fmt.Sprintf("r%d", i))
		if i > 0 && rng.Float64() < 0.4 {
			if err := v.OrderRelations(rels[rng.Intn(i)], rels[i]); err != nil {
				panic(err)
			}
		}
	}
	if err := v.Freeze(); err != nil {
		panic(err)
	}
	s := ontology.NewStore(v)
	nFacts := rng.Intn(2*nElem + 1)
	for i := 0; i < nFacts; i++ {
		s.MustAdd(ontology.Fact{
			S: elems[rng.Intn(nElem)],
			P: rels[rng.Intn(nRel)],
			O: elems[rng.Intn(nElem)],
		})
	}
	labels := []string{"red", "blue"}
	for i := 0; i < rng.Intn(4); i++ {
		if err := s.AddLabel(elems[rng.Intn(nElem)], labels[rng.Intn(len(labels))]); err != nil {
			panic(err)
		}
	}
	if rng.Float64() < 0.9 {
		s.Freeze()
	}
	return &caseStore{s: s, elems: elems, rels: rels, hasLabel: hasLabel}
}

// randomBGP builds a random BGP over the store's terms.
func randomBGP(rng *rand.Rand, cs *caseStore) sparql.BGP {
	elemVars := []string{"x", "y", "z"}
	relVars := []string{"p", "q"}
	elemTerm := func() sparql.Term {
		switch r := rng.Float64(); {
		case r < 0.40:
			return sparql.VarTerm(elemVars[rng.Intn(len(elemVars))])
		case r < 0.85:
			return sparql.ConstTerm(cs.elems[rng.Intn(len(cs.elems))])
		default:
			return sparql.WildcardTerm()
		}
	}
	var bgp sparql.BGP
	nPat := 1 + rng.Intn(3)
	for i := 0; i < nPat; i++ {
		switch r := rng.Float64(); {
		case r < 0.15: // label filter
			bgp = append(bgp, sparql.Pattern{
				S: elemTerm(),
				P: sparql.ConstTerm(cs.hasLabel),
				O: sparql.LiteralTerm([]string{"red", "blue", "green"}[rng.Intn(3)]),
			})
		case r < 0.40: // star path
			bgp = append(bgp, sparql.Pattern{
				S:    elemTerm(),
				P:    sparql.ConstTerm(cs.rels[rng.Intn(len(cs.rels))]),
				O:    elemTerm(),
				Star: true,
			})
		default: // plain triple, sometimes with a predicate variable
			p := sparql.ConstTerm(cs.rels[rng.Intn(len(cs.rels))])
			if rng.Float64() < 0.25 {
				p = sparql.VarTerm(relVars[rng.Intn(len(relVars))])
			}
			bgp = append(bgp, sparql.Pattern{S: elemTerm(), P: p, O: elemTerm()})
		}
	}
	return bgp
}

func bindingsEqual(a, b []sparql.Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if refKey(a[i]) != refKey(b[i]) {
			return false
		}
	}
	return true
}

func describeCase(s *ontology.Store, bgp sparql.BGP) string {
	v := s.Vocabulary()
	var sb strings.Builder
	sb.WriteString("facts:\n")
	for _, f := range s.AllFacts() {
		fmt.Fprintf(&sb, "  %s\n", f.String(v))
	}
	sb.WriteString("bgp:\n")
	for _, p := range bgp {
		fmt.Fprintf(&sb, "  %s (star=%v)\n", p.String(v), p.Star)
	}
	return sb.String()
}

// TestDifferentialWhere pins the compiled plan against both the naive
// reference evaluator and the seed interpreter on randomized inputs.
func TestDifferentialWhere(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, bgp := randomCase(rng)
		for _, semantic := range []bool{false, true} {
			e := sparql.NewEvaluator(s)
			e.Semantic = semantic
			got, err := e.Eval(bgp)
			if err != nil {
				t.Fatalf("seed %d semantic=%v: unexpected validation error: %v\n%s",
					seed, semantic, err, describeCase(s, bgp))
			}
			want := newRefEvaluator(s, semantic).eval(bgp)
			if !bindingsEqual(got, want) {
				t.Fatalf("seed %d semantic=%v: planned evaluator diverges from reference\nplanned: %v\nreference: %v\n%s",
					seed, semantic, got, want, describeCase(s, bgp))
			}
			interp, err := e.EvalInterpreted(bgp)
			if err != nil {
				t.Fatalf("seed %d semantic=%v: interpreter error: %v", seed, semantic, err)
			}
			if !bindingsEqual(got, interp) {
				t.Fatalf("seed %d semantic=%v: planned evaluator diverges from interpreter\nplanned: %v\ninterpreted: %v\n%s",
					seed, semantic, got, interp, describeCase(s, bgp))
			}
		}
	}
}
