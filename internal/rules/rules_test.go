package rules_test

import (
	"math"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/rules"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// run mines the simple paper query against u1's personal DB at theta and
// returns the session pieces the rule miner needs.
func run(t *testing.T, theta float64) (*assign.Space, *core.Result, *vocab.Vocabulary) {
	t.Helper()
	v, store := paperdata.Build()
	q, err := oassisql.Parse(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := assign.NewSpace(q, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}
	du1, _ := paperdata.Table3(v)
	m := crowd.NewSimMember("u1", v, du1, 1)
	m.Scale = nil // exact answers, so confidences match hand calculation
	res := (&core.SingleUser{Space: sp, Member: m, Theta: theta, Seed: 1}).Run()
	return sp, res, v
}

func TestMineRulesFromPaperData(t *testing.T) {
	sp, res, v := run(t, 1.0/6.0)
	got := rules.Mine(sp, res, 1.0/6.0, 0.5)
	if len(got) == 0 {
		t.Fatal("no rules mined")
	}
	// Every rule's arithmetic must agree with the ground-truth supports
	// recomputed directly over u1's personal database.
	du1, _ := paperdata.Table3(v)
	nontrivial := false
	for _, r := range got {
		ante := sp.Instantiate(r.From)
		full := sp.Instantiate(r.To)
		sa := ontology.Support(v, du1, ante)
		sf := ontology.Support(v, du1, full)
		if sa == 0 {
			t.Fatalf("rule with unsupported antecedent: %s", ante.String(v))
		}
		wantConf := sf / sa
		if wantConf > 1 {
			wantConf = 1
		}
		if math.Abs(r.Confidence-wantConf) > 1e-9 {
			t.Errorf("confidence = %v, want %v for %s => %s",
				r.Confidence, wantConf, ante.String(v), r.Consequent.String(v))
		}
		if math.Abs(r.Support-sf) > 1e-9 {
			t.Errorf("support = %v, want %v", r.Support, sf)
		}
		if r.Confidence < 1 {
			nontrivial = true
		}
	}
	if !nontrivial {
		t.Error("expected at least one rule with confidence below 1")
	}
	// Rules are sorted most-confident first.
	for i := 1; i < len(got); i++ {
		if got[i].Confidence > got[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestMineRulesConfidenceFilter(t *testing.T) {
	sp, res, _ := run(t, 1.0/6.0)
	all := rules.Mine(sp, res, 1.0/6.0, 0)
	strict := rules.Mine(sp, res, 1.0/6.0, 0.9)
	if len(strict) > len(all) {
		t.Fatal("stricter confidence grew the rule set")
	}
	for _, r := range strict {
		if r.Confidence < 0.9 {
			t.Errorf("rule below confidence threshold: %v", r.Confidence)
		}
	}
	// Every rule's full pattern must meet the support threshold.
	for _, r := range all {
		if r.Support < 1.0/6.0 {
			t.Errorf("rule below support threshold: %v", r.Support)
		}
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Errorf("confidence out of range: %v", r.Confidence)
		}
	}
}

func TestTopKRedundancyFilter(t *testing.T) {
	sp, res, _ := run(t, 1.0/6.0)
	all := rules.Mine(sp, res, 1.0/6.0, 0)
	top := rules.TopK(sp, all, 3)
	if len(top) > 3 {
		t.Fatalf("TopK returned %d rules", len(top))
	}
	if len(all) >= 3 && len(top) == 0 {
		t.Fatal("TopK dropped everything")
	}
	// k=0 keeps everything non-redundant.
	noLimit := rules.TopK(sp, all, 0)
	if len(noLimit) > len(all) {
		t.Fatal("TopK invented rules")
	}
}

func TestMineRulesEmptyResult(t *testing.T) {
	// A member with an empty history finds nothing significant, hence no
	// rules.
	v, store := paperdata.Build()
	q, err := oassisql.Parse(paperdata.SimpleQueryText, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := assign.NewSpace(q, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := crowd.NewSimMember("empty", v, nil, 1)
	res := (&core.SingleUser{Space: sp, Member: m, Theta: 0.4, Seed: 1}).Run()
	if got := rules.Mine(sp, res, 0.4, 0); len(got) != 0 {
		t.Fatalf("rules from empty result: %d", len(got))
	}
}
