// Package rules implements association-rule mining on top of OASSIS mining
// results — the extension the paper's language guide describes and its
// Related Work connects to the authors' earlier crowd-mining system [3]:
// from the supports collected while mining significant fact-sets, derive
// rules "people who do X also do Y" with their confidence.
//
// A rule comes from an ordered pair of answered assignments a ≤ b: the
// antecedent is a's fact-set, the consequent the facts b adds beyond a, and
// the confidence supp(b)/supp(a) — the fraction of antecedent occasions
// that also realize the consequent. No extra crowd questions are needed:
// every support was already collected by the mining run.
package rules

import (
	"sort"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/ontology"
)

// Rule is one mined association rule over fact-sets.
type Rule struct {
	// Antecedent and Consequent partition the rule: "when Antecedent
	// holds on an occasion, Consequent also holds".
	Antecedent ontology.FactSet
	Consequent ontology.FactSet
	// Support is the aggregated support of the full pattern
	// (antecedent ∪ consequent).
	Support float64
	// Confidence is supp(antecedent ∪ consequent) / supp(antecedent).
	Confidence float64

	// From and To are the assignments behind the rule.
	From, To *assign.Assignment
}

// Mine derives association rules from a mining result: every answered pair
// a < b with supp(b) ≥ theta and confidence ≥ minConfidence yields a rule.
// Rules are returned most-confident first (ties by support, then key).
func Mine(sp *assign.Space, res *core.Result, theta, minConfidence float64) []Rule {
	// Collect the answered significant assignments.
	type node struct {
		a       *assign.Assignment
		support float64
	}
	var nodes []node
	for _, a := range res.Significant {
		if s, ok := res.SupportOf(a); ok && s > 0 {
			nodes = append(nodes, node{a: a, support: s})
		}
	}
	var out []Rule
	for _, from := range nodes {
		for _, to := range nodes {
			if from.a.Key() == to.a.Key() || !sp.Leq(from.a, to.a) {
				continue
			}
			if to.support < theta {
				continue
			}
			conf := to.support / from.support
			if conf > 1 {
				// Crowd noise can report a specialization as more
				// frequent than its generalization; clamp.
				conf = 1
			}
			if conf < minConfidence {
				continue
			}
			ante := sp.Instantiate(from.a)
			full := sp.Instantiate(to.a)
			cons := consequent(ante, full)
			if len(cons) == 0 {
				continue // identical fact-sets (distinct MORE forms)
			}
			out = append(out, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    to.support,
				Confidence: conf,
				From:       from.a,
				To:         to.a,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].To.Key() < out[j].To.Key()
	})
	return out
}

// consequent returns the facts of full that the antecedent does not already
// state — the new content the rule promises.
func consequent(ante, full ontology.FactSet) ontology.FactSet {
	var out []ontology.Fact
	for _, f := range full {
		implied := false
		for _, g := range ante {
			if f == g {
				implied = true
				break
			}
		}
		if !implied {
			out = append(out, f)
		}
	}
	return ontology.NewFactSet(out...)
}

// TopK keeps the k most confident rules, dropping rules whose consequent is
// implied by an already-kept rule with the same antecedent (a light
// redundancy filter mirroring the MSP idea).
func TopK(v *assign.Space, rulesIn []Rule, k int) []Rule {
	var out []Rule
	voc := v.Vocabulary()
	for _, r := range rulesIn {
		if k > 0 && len(out) >= k {
			break
		}
		redundant := false
		for _, kept := range out {
			if kept.Antecedent.Equal(r.Antecedent) &&
				ontology.LeqFactSet(voc, r.Consequent, kept.Consequent) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, r)
		}
	}
	return out
}
