// Package nlgen renders crowd questions in natural language from
// domain-specific templates, as the OASSIS prototype UI does (Section 6.2):
// "Questions are retrieved iteratively from the user queue and are then
// automatically translated into a natural language question using
// templates ... the ontology elements in bold being plugged into the
// template."
package nlgen

import (
	"strconv"
	"strings"

	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Template phrases one fact. Subject and object names are substituted for
// {s} and {o}.
type Template struct {
	// Phrase is the verb phrase, e.g. "engage in {s} at {o}".
	Phrase string
}

// Renderer turns fact-sets and assignments into questions.
type Renderer struct {
	v *vocab.Vocabulary
	// templates maps relation names to phrases; missing relations fall
	// back to "have {s} <relation> {o}".
	templates map[string]Template
}

// NewRenderer builds a renderer with the built-in travel-domain templates
// of the paper's examples; AddTemplate overrides or extends them.
func NewRenderer(v *vocab.Vocabulary) *Renderer {
	return &Renderer{
		v: v,
		templates: map[string]Template{
			"doAt":       {Phrase: "engage in {s} at {o}"},
			"eatAt":      {Phrase: "eat {s} at {o}"},
			"drink":      {Phrase: "drink {s} with {o}"},
			"take":       {Phrase: "take {s} for {o}"},
			"takenFor":   {Phrase: "take {s} for {o}"},
			"servedWith": {Phrase: "have {s} served with {o}"},
			"goTo":       {Phrase: "go to {s} in {o}"},
			"visit":      {Phrase: "visit {s} at {o}"},
			"playAt":     {Phrase: "play {s} at {o}"},
		},
	}
}

// AddTemplate registers a phrase for a relation name.
func (r *Renderer) AddTemplate(relation, phrase string) {
	r.templates[relation] = Template{Phrase: phrase}
}

// phrase renders one fact as a verb phrase.
func (r *Renderer) phrase(f ontology.Fact) string {
	rel := r.v.RelationName(f.P)
	t, ok := r.templates[rel]
	subj := r.name(f.S)
	obj := r.name(f.O)
	if !ok {
		return "have " + subj + " " + rel + " " + obj
	}
	out := strings.ReplaceAll(t.Phrase, "{s}", subj)
	return strings.ReplaceAll(out, "{o}", obj)
}

func (r *Renderer) name(id vocab.TermID) string {
	if id == ontology.Any {
		return "anything"
	}
	return r.v.ElementName(id)
}

// ConcreteQuestion renders "How often do you ... and also ...?" for a
// fact-set, bundling co-occurring facts as in the Introduction's example.
func (r *Renderer) ConcreteQuestion(fs ontology.FactSet) string {
	if len(fs) == 0 {
		return "How often does this apply to you?"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = r.phrase(f)
	}
	return "How often do you " + strings.Join(parts, " and also ") + "?"
}

// AnswerStatement renders a mined fact-set as an answer sentence, e.g.
// "People frequently engage in Biking at Central Park and eat Falafel at
// Maoz Veg.".
func (r *Renderer) AnswerStatement(fs ontology.FactSet) string {
	if len(fs) == 0 {
		return "No pattern."
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = r.phrase(f)
	}
	return "People frequently " + strings.Join(parts, " and ") + "."
}

// RuleStatement renders an association rule, e.g. "People who engage in
// Biking at Central Park usually also eat Falafel at Maoz Veg. (74%)".
func (r *Renderer) RuleStatement(ante, cons ontology.FactSet, confidence float64) string {
	a := make([]string, len(ante))
	for i, f := range ante {
		a[i] = r.phrase(f)
	}
	c := make([]string, len(cons))
	for i, f := range cons {
		c[i] = r.phrase(f)
	}
	return "People who " + strings.Join(a, " and ") +
		" usually also " + strings.Join(c, " and ") +
		" (" + strconv.Itoa(int(confidence*100+0.5)) + "%)."
}

// SpecializationQuestion renders the open refinement question of
// Section 4.1, e.g. "What type of Sport do you engage in at Central Park?
// How often do you do that?".
func (r *Renderer) SpecializationQuestion(base ontology.FactSet) string {
	if len(base) == 0 {
		return "What do you typically do? How often do you do that?"
	}
	f := base[0]
	q := "What type of " + r.name(f.S) + " do you " +
		strings.TrimPrefix(r.phrase(f), "have ") + "?"
	// Avoid "what type of X do you engage in X at Y": rephrase using the
	// template with {s} replaced by a pronoun-ish gap.
	rel := r.v.RelationName(f.P)
	if t, ok := r.templates[rel]; ok {
		gap := strings.ReplaceAll(t.Phrase, "{s}", "that")
		gap = strings.ReplaceAll(gap, "{o}", r.name(f.O))
		q = "What type of " + r.name(f.S) + " do you " + gap + "?"
	}
	if len(base) > 1 {
		rest := make([]string, len(base)-1)
		for i, g := range base[1:] {
			rest[i] = r.phrase(g)
		}
		q += " (when you also " + strings.Join(rest, " and ") + ")"
	}
	return q + " How often do you do that?"
}

// AnswerScaleLabels are the UI's answer options in order of UIScale.
var AnswerScaleLabels = []string{"never", "rarely", "sometimes", "often", "very often"}

// ScaleLabel translates a bucketed support value back to its UI label.
func ScaleLabel(support float64) string {
	switch {
	case support <= 0:
		return AnswerScaleLabels[0]
	case support <= 0.25:
		return AnswerScaleLabels[1]
	case support <= 0.5:
		return AnswerScaleLabels[2]
	case support <= 0.75:
		return AnswerScaleLabels[3]
	default:
		return AnswerScaleLabels[4]
	}
}
