package nlgen_test

import (
	"strings"
	"testing"

	"oassis/internal/nlgen"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
)

func TestConcreteQuestionSingleFact(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	fs := ontology.NewFactSet(paperdata.Fact(v, "Ball Game", "doAt", "Central Park"))
	got := r.ConcreteQuestion(fs)
	// The paper's φ17 example: "How often do you engage in ball games in
	// Central Park?" (we keep the noun as-is).
	want := "How often do you engage in Ball Game at Central Park?"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestConcreteQuestionBundlesFacts(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	fs := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg."),
	)
	got := r.ConcreteQuestion(fs)
	if !strings.Contains(got, "and also") {
		t.Errorf("bundled question should join with 'and also': %q", got)
	}
	if !strings.Contains(got, "eat Falafel at Maoz Veg.") {
		t.Errorf("eatAt template not applied: %q", got)
	}
}

func TestConcreteQuestionWildcard(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	fs := ontology.NewFactSet(ontology.Fact{
		S: ontology.Any, P: v.Relation("eatAt"), O: v.Element("Pine"),
	})
	got := r.ConcreteQuestion(fs)
	if !strings.Contains(got, "anything") {
		t.Errorf("wildcard should render as 'anything': %q", got)
	}
}

func TestUnknownRelationFallback(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	fs := ontology.NewFactSet(paperdata.Fact(v, "Central Park", "inside", "NYC"))
	got := r.ConcreteQuestion(fs)
	if !strings.Contains(got, "inside") {
		t.Errorf("fallback should mention the relation name: %q", got)
	}
}

func TestAddTemplate(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	r.AddTemplate("inside", "spend time in {s} within {o}")
	fs := ontology.NewFactSet(paperdata.Fact(v, "Central Park", "inside", "NYC"))
	got := r.ConcreteQuestion(fs)
	if !strings.Contains(got, "spend time in Central Park within NYC") {
		t.Errorf("custom template not applied: %q", got)
	}
}

func TestSpecializationQuestion(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	base := ontology.NewFactSet(paperdata.Fact(v, "Sport", "doAt", "Central Park"))
	got := r.SpecializationQuestion(base)
	// Paper: "what type of sport do you do in Central Park? How often..."
	if !strings.Contains(got, "What type of Sport") {
		t.Errorf("missing type prompt: %q", got)
	}
	if !strings.Contains(got, "How often do you do that?") {
		t.Errorf("missing frequency part: %q", got)
	}
}

func TestSpecializationQuestionWithContext(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	base := ontology.NewFactSet(
		paperdata.Fact(v, "Sport", "doAt", "Central Park"),
		paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg."),
	)
	got := r.SpecializationQuestion(base)
	if !strings.Contains(got, "when you also") {
		t.Errorf("context facts missing: %q", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	if got := r.ConcreteQuestion(nil); got == "" {
		t.Error("empty fact-set should still render")
	}
	if got := r.SpecializationQuestion(nil); got == "" {
		t.Error("empty base should still render")
	}
}

func TestScaleLabel(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{0, "never"}, {0.25, "rarely"}, {0.5, "sometimes"},
		{0.75, "often"}, {1, "very often"},
	}
	for _, c := range cases {
		if got := nlgen.ScaleLabel(c.s); got != c.want {
			t.Errorf("ScaleLabel(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestRuleStatement(t *testing.T) {
	v, _ := paperdata.Build()
	r := nlgen.NewRenderer(v)
	ante := ontology.NewFactSet(paperdata.Fact(v, "Biking", "doAt", "Central Park"))
	cons := ontology.NewFactSet(paperdata.Fact(v, "Falafel", "eatAt", "Maoz Veg."))
	got := r.RuleStatement(ante, cons, 0.74)
	want := "People who engage in Biking at Central Park usually also eat Falafel at Maoz Veg. (74%)."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Multi-fact sides join with "and".
	ante2 := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Baseball", "doAt", "Central Park"),
	)
	if got := r.RuleStatement(ante2, cons, 1.0); !strings.Contains(got, " and ") {
		t.Errorf("multi-fact antecedent not joined: %q", got)
	}
}
