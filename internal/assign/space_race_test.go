package assign_test

// Determinism and race tests for the sharded space construction: the
// parallel row-projection path must produce byte-identical Valid() ordering
// (and identical NodeIDs) to the serial map-based path, including when many
// spaces are built concurrently. Run with -race.

import (
	"sync"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/sparql"
	"oassis/internal/synth"
)

// dagFixture returns a DAG workload large enough to cross the parallel
// projection threshold, plus its evaluated WHERE rows.
func dagFixture(t testing.TB) (*synth.DAG, *sparql.Results) {
	d, err := synth.NewDAG(synth.DAGConfig{Width: 100, Depth: 5, MSPPercent: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sparql.NewEvaluator(d.Store).Compile(d.Query.Where)
	if err != nil {
		t.Fatal(err)
	}
	return d, plan.Eval()
}

// TestParallelSpaceMatchesSerial pins the parallel NewSpaceFromRows result
// against the serial NewSpace path on the same rows.
func TestParallelSpaceMatchesSerial(t *testing.T) {
	d, res := dagFixture(t)
	serial, err := assign.NewSpace(d.Query, res.Bindings(), nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := assign.NewSpaceFromRows(d.Query, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	sv, pv := serial.Valid(), parallel.Valid()
	if len(sv) != len(pv) {
		t.Fatalf("valid count: serial %d, parallel %d", len(sv), len(pv))
	}
	if len(sv) < 2 {
		t.Fatalf("fixture too small to be meaningful: %d valid assignments", len(sv))
	}
	for i := range sv {
		if sv[i].Key() != pv[i].Key() {
			t.Fatalf("Valid()[%d]: serial %q, parallel %q", i, sv[i].Key(), pv[i].Key())
		}
		if sv[i].ID() != pv[i].ID() {
			t.Fatalf("Valid()[%d] NodeID: serial %d, parallel %d", i, sv[i].ID(), pv[i].ID())
		}
	}
}

// TestConcurrentSpaceConstruction builds many spaces from the same results
// at once; every one must come out identical.
func TestConcurrentSpaceConstruction(t *testing.T) {
	d, res := dagFixture(t)
	ref, err := assign.NewSpaceFromRows(d.Query, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, err := assign.NewSpaceFromRows(d.Query, res, nil)
			if err != nil {
				t.Error(err)
				return
			}
			got, want := sp.Valid(), ref.Valid()
			if len(got) != len(want) {
				t.Errorf("valid count %d, want %d", len(got), len(want))
				return
			}
			for i := range got {
				if got[i].Key() != want[i].Key() || got[i].ID() != want[i].ID() {
					t.Errorf("Valid()[%d] diverged under concurrency", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
