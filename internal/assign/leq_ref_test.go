package assign_test

import (
	"math/rand"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/ontology"
	"oassis/internal/synth"
	"oassis/internal/vocab"
)

// leqNaive is a from-the-definition reference for the order of Definition
// 4.1: rebuild both assignments as plain maps and check, per variable, that
// every value of a is generalized by some value of b (and likewise for MORE
// facts). It shares no code with the sorted-cursor production Leq.
func leqNaive(v *vocab.Vocabulary, kinds map[string]vocab.Kind, a, b *assign.Assignment) bool {
	toMap := func(x *assign.Assignment) map[string][]vocab.TermID {
		m := make(map[string][]vocab.TermID)
		for _, name := range x.Vars() {
			m[name] = x.Values(name)
		}
		return m
	}
	am, bm := toMap(a), toMap(b)
	for name, avals := range am {
		bvals := bm[name] // nil when b does not bind the variable
		for _, av := range avals {
			ok := false
			for _, bv := range bvals {
				if v.Leq(kinds[name], av, bv) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	for _, f := range a.More() {
		ok := false
		for _, g := range b.More() {
			if ontology.LeqFact(v, f, g) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestLeqAgreesWithNaiveReference pins the production Leq — sorted-cursor
// advance only, no per-variable binary-search fallback — against the naive
// map-based reference on random assignment pairs, including pairs with
// multiplicities and disjoint variable sets.
func TestLeqAgreesWithNaiveReference(t *testing.T) {
	for _, seed := range []int64{61, 67, 71} {
		d, err := synth.NewDAG(synth.DAGConfig{
			Width: 40, Depth: 4, MSPPercent: 0.05,
			MultiMSPPercent: 0.05, MultiMSPSize: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 3))
		var pool []*assign.Assignment
		for i := 0; i < 60; i++ {
			pool = append(pool, randomWalk(d, rng, rng.Intn(7)))
		}
		// Include assignments that drop the multiplicity-0 place
		// variable entirely, exercising the unbound-variable path.
		for i := 0; i < 10 && i < len(pool); i++ {
			a := pool[i]
			vals := map[string][]vocab.TermID{}
			for _, vs := range d.Space.Vars() {
				if vs.Mult.Min > 0 {
					if set := a.Values(vs.Name); len(set) > 0 {
						vals[vs.Name] = set
					}
				}
			}
			pool = append(pool, assign.New(d.Vocab, d.Space.Kinds(), vals, nil))
		}
		kinds := d.Space.Kinds()
		checked := 0
		for _, a := range pool {
			for _, b := range pool {
				got := assign.Leq(d.Vocab, kinds, a, b)
				want := leqNaive(d.Vocab, kinds, a, b)
				if got != want {
					t.Fatalf("seed %d: Leq(%s, %s) = %v, reference says %v",
						seed, a.Key(), b.Key(), got, want)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no pairs checked")
		}
	}
}
