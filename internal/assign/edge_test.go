package assign_test

import (
	"strings"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// starQuery allows zero activities: at multiplicity 0 the doAt pattern is
// dropped entirely and only the eatAt pattern remains.
const starQuery = `
SELECT FACT-SETS
WHERE
  $y subClassOf* Activity.
  $z instanceOf Restaurant
SATISFYING
  $y* doAt "Central Park".
  [] eatAt $z
WITH SUPPORT = 0.4`

func TestMultiplicityZeroSemantics(t *testing.T) {
	sp, v := buildSpace(t, starQuery, nil)
	// Roots: $y starts empty (Min 0), $z at its cap (Restaurant).
	roots := sp.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %d", len(roots))
	}
	root := roots[0]
	if len(root.Values("y")) != 0 {
		t.Fatalf("star variable should start empty, got %v", root.Values("y"))
	}
	if len(root.Values("z")) != 1 {
		t.Fatalf("root z = %v", root.Values("z"))
	}
	// Instantiating with empty $y drops the doAt pattern.
	fs := sp.Instantiate(root)
	for _, f := range fs {
		if f.P == v.Relation("doAt") {
			t.Fatalf("doAt pattern should be dropped at multiplicity 0: %s", fs.String(v))
		}
	}
	// Successors grow $y from empty to one value.
	grew := false
	for _, s := range sp.Successors(root) {
		if len(s.Values("y")) == 1 {
			grew = true
			fs := sp.Instantiate(s)
			found := false
			for _, f := range fs {
				if f.P == v.Relation("doAt") {
					found = true
				}
			}
			if !found {
				t.Fatal("pattern should reappear once the variable has a value")
			}
		}
	}
	if !grew {
		t.Fatal("no successor grew the star variable")
	}
	// An assignment with zero activities is valid under * (the root
	// itself is not: its $z sits at the class cap, not an instance).
	empty := assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
		"z": {v.Element("Maoz Veg.")},
	}, nil)
	if !sp.IsValid(empty) {
		t.Error("empty star variable with a valid $z should be valid")
	}
	if sp.IsValid(root) {
		t.Error("the root's class-level $z must not be valid")
	}
}

func TestOptionalMultiplicityBounds(t *testing.T) {
	sp, v := buildSpace(t, strings.Replace(starQuery, "$y*", "$y?", 1), nil)
	root := sp.Roots()[0]
	// ? allows 0 or 1 — never 2.
	two := assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
		"y": {v.Element("Biking"), v.Element("Falafel")},
		"z": {v.Element("Maoz Veg.")},
	}, nil)
	if sp.IsValid(two) {
		t.Error("two values under ? must be invalid")
	}
	for _, s := range sp.Successors(root) {
		for _, s2 := range sp.Successors(s) {
			if len(s2.Values("y")) > 1 {
				t.Fatalf("? grew past one value: %s", s2.String(v, sp.Kinds()))
			}
		}
	}
}

// TestIncomparableCaps builds a diamond vocabulary where a variable has two
// incomparable caps; the roots must be the minimal common specializations.
func TestIncomparableCaps(t *testing.T) {
	text := `
Left subClassOf Top
Right subClassOf Top
MidA subClassOf Left
MidA subClassOf Right
MidB subClassOf Left
MidB subClassOf Right
LeafA subClassOf MidA
@element Ctx
@relation rel
`
	v, store, err := ontology.Load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE
  $x subClassOf* Left.
  $x subClassOf* Right
SATISFYING
  $x rel Ctx
WITH SUPPORT = 0.5`, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	// Exact SPARQL: x must reach both Left and Right → MidA, MidB, LeafA.
	if len(bindings) != 3 {
		t.Fatalf("bindings = %d, want 3", len(bindings))
	}
	sp, err := assign.NewSpace(q, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}
	roots := sp.Roots()
	got := map[string]bool{}
	for _, r := range roots {
		got[v.ElementName(r.Values("x")[0])] = true
	}
	if !got["MidA"] || !got["MidB"] || len(got) != 2 {
		t.Fatalf("roots = %v, want {MidA, MidB} (minimal common specializations)", got)
	}
}

// TestItemsetModeUnboundVariable mines with an empty WHERE clause: the
// variable ranges over the whole element namespace (Section 4.1's frequent
// itemset capture) and the space still behaves.
func TestItemsetModeUnboundVariable(t *testing.T) {
	v, store := paperdata.Build()
	q, err := oassisql.Parse(`
SELECT FACT-SETS
WHERE
SATISFYING
  $i+ doAt "Central Park"
WITH SUPPORT = 0.4`, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := assign.NewSpace(q, bindings, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unbound variable: roots are the namespace roots.
	roots := sp.Roots()
	if len(roots) == 0 {
		t.Fatal("no roots for unbound variable")
	}
	// Everything is in the closure and valid (no WHERE constraint).
	a := assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
		"i": {v.Element("Biking")},
	}, nil)
	if !sp.InClosure(a) {
		t.Error("unbound-variable assignment should be in the closure")
	}
	if !sp.IsValid(a) {
		t.Error("unbound-variable assignment should be valid")
	}
	// Successor generation works from the roots.
	total := 0
	for _, r := range roots {
		total += len(sp.Successors(r))
	}
	if total == 0 {
		t.Fatal("no successors in itemset mode")
	}
}

// TestMorePredecessors: generalizing away MORE facts yields predecessors.
func TestMorePredecessors(t *testing.T) {
	v, _ := paperdata.Build()
	pool := ontology.NewFactSet(paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse"))
	sp, v := buildSpace(t, paperdata.QueryText, pool)
	base := assign.New(v, sp.Kinds(), map[string][]vocab.TermID{
		"x": {v.Element("Central Park")},
		"y": {v.Element("Biking")},
		"z": {v.Element("Maoz Veg.")},
	}, pool)
	preds := sp.Predecessors(base)
	if len(preds) == 0 {
		t.Fatal("no predecessors")
	}
	droppedMore := false
	for _, p := range preds {
		if !sp.Leq(p, base) || p.Key() == base.Key() {
			t.Fatalf("predecessor not strictly below: %s", p.Key())
		}
		if len(p.More()) == 0 && len(p.Values("y")) == 1 &&
			p.Values("y")[0] == v.Element("Biking") {
			droppedMore = true
		}
	}
	if !droppedMore {
		t.Error("no predecessor drops the MORE fact")
	}
	// Generalizing a MORE fact component also yields a predecessor.
	genMore := false
	for _, p := range preds {
		if len(p.More()) == 1 && p.More()[0] != base.More()[0] {
			genMore = true
		}
	}
	if !genMore {
		t.Error("no predecessor generalizes the MORE fact")
	}
}
