package assign_test

import (
	"testing"

	"oassis/internal/assign"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/paperdata"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// buildSpace parses a query against the Figure 1 ontology, evaluates its
// WHERE clause and constructs the assignment space.
func buildSpace(t *testing.T, queryText string, morePool ontology.FactSet) (*assign.Space, *vocab.Vocabulary) {
	t.Helper()
	v, store := paperdata.Build()
	q, err := oassisql.Parse(queryText, v)
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := sparql.NewEvaluator(store).Eval(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := assign.NewSpace(q, bindings, morePool)
	if err != nil {
		t.Fatal(err)
	}
	return sp, v
}

// multQuery mines activities (with multiplicity) at child-friendly
// attractions — the grey part of Figure 2 plus the + marker, which is what
// Figure 3's DAG is drawn for.
const multQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = 0.4`

// mk builds an assignment from element names for the (x, y) query shape.
func mk(t *testing.T, sp *assign.Space, v *vocab.Vocabulary, x string, ys ...string) *assign.Assignment {
	t.Helper()
	vals := map[string][]vocab.TermID{}
	if x != "" {
		id := v.Element(x)
		if id == vocab.NoTerm {
			t.Fatalf("unknown element %q", x)
		}
		vals["x"] = []vocab.TermID{id}
	}
	var yids []vocab.TermID
	for _, y := range ys {
		id := v.Element(y)
		if id == vocab.NoTerm {
			t.Fatalf("unknown element %q", y)
		}
		yids = append(yids, id)
	}
	if len(yids) > 0 {
		vals["y"] = yids
	}
	return assign.New(v, sp.Kinds(), vals, nil)
}

func TestSpaceProjection(t *testing.T) {
	sp, _ := buildSpace(t, paperdata.SimpleQueryText, nil)
	// 3 child-friendly attractions × 14 activity classes.
	if got := len(sp.Valid()); got != 42 {
		t.Fatalf("|𝒜valid| = %d, want 42", got)
	}
	// Projection dropped $w: every valid assignment has exactly x and y.
	for _, a := range sp.Valid() {
		vars := a.Vars()
		if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
			t.Fatalf("valid assignment has vars %v, want [x y]", vars)
		}
	}
}

func TestUpperBoundsAndRoots(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	roots := sp.Roots()
	// Figure 3's top node: (Attraction, Activity). The cap for $x flows
	// through $w's subClassOf* Attraction constraint.
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if got := r.Values("x"); len(got) != 1 || got[0] != v.Element("Attraction") {
		t.Errorf("root x = %v, want Attraction", got)
	}
	if got := r.Values("y"); len(got) != 1 || got[0] != v.Element("Activity") {
		t.Errorf("root y = %v, want Activity", got)
	}
}

func TestCanonicalAntichain(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	// {Biking, Sport} is equivalent to {Biking}: Sport is absorbed.
	a := mk(t, sp, v, "Central Park", "Biking", "Sport")
	if got := a.Values("y"); len(got) != 1 || got[0] != v.Element("Biking") {
		t.Fatalf("canonical y = %v, want {Biking}", got)
	}
	b := mk(t, sp, v, "Central Park", "Biking")
	if a.Key() != b.Key() {
		t.Error("equivalent assignments should share a key")
	}
	// Incomparable values are both kept.
	c := mk(t, sp, v, "Central Park", "Biking", "Ball Game")
	if got := c.Values("y"); len(got) != 2 {
		t.Fatalf("canonical y = %v, want 2 values", got)
	}
}

func TestLeqFigure3(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	phi15 := mk(t, sp, v, "Central Park", "Sport")     // node 15
	phi17 := mk(t, sp, v, "Central Park", "Ball Game") // node 17
	phi20 := mk(t, sp, v, "Central Park", "Baseball")  // node 20
	node11 := mk(t, sp, v, "Attraction", "Feed a monkey")
	if !sp.Leq(phi15, phi17) || !sp.Leq(phi17, phi20) || !sp.Leq(phi15, phi20) {
		t.Error("chain 15 ≤ 17 ≤ 20 broken")
	}
	if sp.Leq(phi20, phi17) {
		t.Error("Leq must not be symmetric")
	}
	if sp.Leq(phi17, node11) || sp.Leq(node11, phi17) {
		t.Error("incomparable nodes compared as ordered")
	}
	if !sp.Leq(phi17, phi17) {
		t.Error("Leq not reflexive")
	}
}

func TestLeqWithMultiplicities(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	phi17 := mk(t, sp, v, "Central Park", "Ball Game")
	phi18 := mk(t, sp, v, "Central Park", "Biking", "Ball Game") // node 18
	phi19 := mk(t, sp, v, "Central Park", "Biking", "Baseball")
	if !sp.Leq(phi17, phi18) {
		t.Error("17 ≤ 18: adding a value is a specialization")
	}
	if sp.Leq(phi18, phi17) {
		t.Error("18 ≤ 17 must not hold")
	}
	if !sp.Leq(phi18, phi19) {
		t.Error("18 ≤ 19: Ball Game → Baseball inside the set")
	}
}

func TestSuccessorsFromRoot(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	root := sp.Roots()[0]
	succs := sp.Successors(root)
	if len(succs) == 0 {
		t.Fatal("root has no successors")
	}
	keys := map[string]bool{}
	for _, s := range succs {
		keys[s.Key()] = true
		if !sp.Leq(root, s) || s.Key() == root.Key() {
			t.Errorf("successor %s not strictly above root", s.String(v, sp.Kinds()))
		}
	}
	// (Outdoor, Activity) — Figure 3 node 2 — must be among them.
	if !keys[mk(t, sp, v, "Outdoor", "Activity").Key()] {
		t.Error("missing successor (Outdoor, Activity)")
	}
	// (Attraction, Sport) — node 3.
	if !keys[mk(t, sp, v, "Attraction", "Sport").Key()] {
		t.Error("missing successor (Attraction, Sport)")
	}
	// Indoor leads to no valid assignment: the closure check must prune it.
	if keys[mk(t, sp, v, "Indoor", "Activity").Key()] {
		t.Error("(Indoor, Activity) should be pruned: no valid assignment below it")
	}
}

func TestSuccessorsMultiplicityExtension(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	phi17 := mk(t, sp, v, "Central Park", "Ball Game")
	succs := sp.Successors(phi17)
	keys := map[string]bool{}
	for _, s := range succs {
		keys[s.Key()] = true
	}
	// Specializations within the set.
	if !keys[mk(t, sp, v, "Central Park", "Basketball").Key()] {
		t.Error("missing specialization (CP, Basketball)")
	}
	// Extension: node 18 = (CP, {Biking, Ball Game}).
	if !keys[mk(t, sp, v, "Central Park", "Biking", "Ball Game").Key()] {
		t.Error("missing multiplicity extension (CP, {Biking, Ball Game})")
	}
	// Extensions must be genuinely larger sets, never absorbed values.
	for _, s := range succs {
		if len(s.Values("y")) > 2 {
			t.Errorf("one-step successor gained 2+ values: %s", s.String(v, sp.Kinds()))
		}
	}
}

func TestNoExtensionWithoutMultiplicity(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	phi17 := mk(t, sp, v, "Central Park", "Ball Game")
	for _, s := range sp.Successors(phi17) {
		if len(s.Values("y")) != 1 {
			t.Fatalf("multiplicity-1 query produced a set extension: %s",
				s.String(v, sp.Kinds()))
		}
	}
}

func TestPredecessors(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	phi20 := mk(t, sp, v, "Central Park", "Baseball")
	preds := sp.Predecessors(phi20)
	keys := map[string]bool{}
	for _, p := range preds {
		keys[p.Key()] = true
		if !sp.Leq(p, phi20) || p.Key() == phi20.Key() {
			t.Errorf("predecessor %s not strictly below", p.String(v, sp.Kinds()))
		}
	}
	if !keys[mk(t, sp, v, "Central Park", "Ball Game").Key()] {
		t.Error("missing predecessor (CP, Ball Game)")
	}
	if !keys[mk(t, sp, v, "Park", "Baseball").Key()] {
		t.Error("missing predecessor (Park, Baseball)")
	}
	// Value removal from a multiplicity set.
	phi18 := mk(t, sp, v, "Central Park", "Biking", "Ball Game")
	preds = sp.Predecessors(phi18)
	keys = map[string]bool{}
	for _, p := range preds {
		keys[p.Key()] = true
	}
	if !keys[mk(t, sp, v, "Central Park", "Ball Game").Key()] {
		t.Error("missing removal predecessor (CP, Ball Game)")
	}
	if !keys[mk(t, sp, v, "Central Park", "Biking").Key()] {
		t.Error("missing removal predecessor (CP, Biking)")
	}
}

func TestPredecessorsRespectUpperBound(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	root := sp.Roots()[0]
	if preds := sp.Predecessors(root); len(preds) != 0 {
		strs := make([]string, len(preds))
		for i, p := range preds {
			strs[i] = p.String(v, sp.Kinds())
		}
		t.Fatalf("the root must have no predecessors within the caps, got %v", strs)
	}
}

func TestInClosure(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	cases := []struct {
		a    *assign.Assignment
		want bool
		desc string
	}{
		{mk(t, sp, v, "Attraction", "Activity"), true, "root"},
		{mk(t, sp, v, "Park", "Sport"), true, "generalization of valid"},
		{mk(t, sp, v, "Central Park", "Biking"), true, "valid itself"},
		{mk(t, sp, v, "Indoor", "Activity"), false, "no valid below Indoor"},
		{mk(t, sp, v, "Zoo", "Swimming"), true, "covered by (Bronx Zoo, Swimming)"},
	}
	for _, c := range cases {
		if got := sp.InClosure(c.a); got != c.want {
			t.Errorf("InClosure(%s) = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestIsValid(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	if !sp.IsValid(mk(t, sp, v, "Central Park", "Biking")) {
		t.Error("(CP, Biking) should be valid")
	}
	if sp.IsValid(mk(t, sp, v, "Park", "Biking")) {
		t.Error("(Park, Biking) is a generalization, not valid (Figure 3 dashed nodes)")
	}
	if !sp.IsValid(mk(t, sp, v, "Central Park", "Biking", "Baseball")) {
		t.Error("multiplicity combination of valid assignments should be valid (Prop 5.1)")
	}
	if sp.IsValid(mk(t, sp, v, "Central Park")) {
		t.Error("missing value for y (Min 1) must be invalid")
	}
}

func TestIsValidMultiplicityBounds(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	// Multiplicity-1 query: a 2-value set violates the bound.
	two := mk(t, sp, v, "Central Park", "Biking", "Ball Game")
	if sp.IsValid(two) {
		t.Error("2 values under multiplicity 1 must be invalid")
	}
}

func TestInstantiate(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	a := mk(t, sp, v, "Central Park", "Biking", "Ball Game")
	fs := sp.Instantiate(a)
	want := ontology.NewFactSet(
		paperdata.Fact(v, "Biking", "doAt", "Central Park"),
		paperdata.Fact(v, "Ball Game", "doAt", "Central Park"),
	)
	if !fs.Equal(want) {
		t.Fatalf("Instantiate = %s, want %s", fs.String(v), want.String(v))
	}
}

func TestInstantiateFullQueryWithWildcard(t *testing.T) {
	sp2, v2 := buildSpace(t, paperdata.QueryText, nil)
	vals := map[string][]vocab.TermID{
		"x": {v2.Element("Central Park")},
		"y": {v2.Element("Biking")},
		"z": {v2.Element("Maoz Veg.")},
	}
	a := assign.New(v2, sp2.Kinds(), vals, nil)
	fs := sp2.Instantiate(a)
	want := ontology.NewFactSet(
		paperdata.Fact(v2, "Biking", "doAt", "Central Park"),
		ontology.Fact{S: ontology.Any, P: v2.Relation("eatAt"), O: v2.Element("Maoz Veg.")},
	)
	if !fs.Equal(want) {
		t.Fatalf("Instantiate = %s, want %s", fs.String(v2), want.String(v2))
	}
}

func TestMoreSuccessors(t *testing.T) {
	v, _ := paperdata.Build()
	pool := ontology.NewFactSet(
		paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse"),
	)
	sp, v := buildSpace(t, paperdata.QueryText, pool)
	vals := map[string][]vocab.TermID{
		"x": {v.Element("Central Park")},
		"y": {v.Element("Biking")},
		"z": {v.Element("Maoz Veg.")},
	}
	base := assign.New(v, sp.Kinds(), vals, nil)
	succs := sp.Successors(base)
	var withMore *assign.Assignment
	for _, s := range succs {
		if len(s.More()) == 1 {
			withMore = s
		}
	}
	if withMore == nil {
		t.Fatal("no MORE extension generated")
	}
	if !sp.Leq(base, withMore) {
		t.Error("MORE extension must be a successor")
	}
	// Instantiation includes the MORE fact.
	fs := sp.Instantiate(withMore)
	if !fs.Contains(paperdata.Fact(v, "Rent Bikes", "doAt", "Boathouse")) {
		t.Error("instantiation lost the MORE fact")
	}
	// MORE facts never hurt validity.
	if !sp.IsValid(withMore) {
		t.Error("assignment with MORE fact should stay valid")
	}
}

func TestClassifierInference(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	c := assign.NewClassifier(sp)
	phi15 := mk(t, sp, v, "Central Park", "Sport")
	phi17 := mk(t, sp, v, "Central Park", "Ball Game")
	phi20 := mk(t, sp, v, "Central Park", "Baseball")
	root := mk(t, sp, v, "Attraction", "Activity")
	other := mk(t, sp, v, "Bronx Zoo", "Feed a monkey")

	if c.Status(phi17) != assign.Unknown {
		t.Fatal("fresh classifier should report Unknown")
	}
	// Observation 4.4: significant at 17 classifies all predecessors.
	c.MarkSignificant(phi17)
	if c.Status(phi15) != assign.Significant {
		t.Error("predecessor of significant should be significant")
	}
	if c.Status(root) != assign.Significant {
		t.Error("root should be significant")
	}
	if c.Status(phi20) != assign.Unknown {
		t.Error("successor of significant stays unknown")
	}
	if c.Status(other) != assign.Unknown {
		t.Error("incomparable assignment stays unknown")
	}
	// Insignificant at 20 classifies all successors.
	c.MarkInsignificant(phi20)
	if c.Status(phi20) != assign.Insignificant {
		t.Error("marked assignment should be insignificant")
	}
	if c.Status(phi17) != assign.Significant {
		t.Error("predecessor keeps its significant status")
	}
}

func TestClassifierBorderAntichain(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	c := assign.NewClassifier(sp)
	phi15 := mk(t, sp, v, "Central Park", "Sport")
	phi17 := mk(t, sp, v, "Central Park", "Ball Game")
	c.MarkSignificant(phi15)
	c.MarkSignificant(phi17) // dominates phi15
	if got := len(c.SignificantBorder()); got != 1 {
		t.Fatalf("border size = %d, want 1 (antichain)", got)
	}
	if c.SignificantBorder()[0].Key() != phi17.Key() {
		t.Error("border should keep the maximal assignment")
	}
	// Re-marking something already covered is a no-op.
	c.MarkSignificant(phi15)
	if got := len(c.SignificantBorder()); got != 1 {
		t.Fatalf("border size after re-mark = %d, want 1", got)
	}
}

func TestCountClassified(t *testing.T) {
	sp, v := buildSpace(t, paperdata.SimpleQueryText, nil)
	c := assign.NewClassifier(sp)
	c.MarkInsignificant(mk(t, sp, v, "Attraction", "Activity"))
	if got := c.CountClassified(sp.Valid()); got != len(sp.Valid()) {
		t.Fatalf("insignificant root should classify all %d valid, got %d",
			len(sp.Valid()), got)
	}
}

// TestPropertySuccessorsStrictlyGreater walks two levels of the DAG checking
// order invariants on every generated edge.
func TestPropertySuccessorsStrictlyGreater(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	frontier := sp.Roots()
	seen := 0
	for depth := 0; depth < 3; depth++ {
		var next []*assign.Assignment
		for _, a := range frontier {
			for _, s := range sp.Successors(a) {
				seen++
				if !sp.Leq(a, s) {
					t.Fatalf("successor not ≥: %s -> %s",
						a.String(v, sp.Kinds()), s.String(v, sp.Kinds()))
				}
				if sp.Leq(s, a) {
					t.Fatalf("successor equivalent to source: %s", s.Key())
				}
				if !sp.InClosure(s) {
					t.Fatalf("successor escaped the closure: %s", s.String(v, sp.Kinds()))
				}
				next = append(next, s)
			}
		}
		frontier = next
	}
	if seen == 0 {
		t.Fatal("no edges explored")
	}
}

// TestPropertyPredecessorSuccessorDuality: for every successor edge a→b,
// a must appear among b's predecessors.
func TestPropertyPredecessorSuccessorDuality(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	frontier := sp.Roots()
	checked := 0
	for depth := 0; depth < 2; depth++ {
		var next []*assign.Assignment
		for _, a := range frontier {
			for _, s := range sp.Successors(a) {
				found := false
				for _, p := range sp.Predecessors(s) {
					if p.Key() == a.Key() {
						found = true
						break
					}
				}
				if !found {
					// Extension edges may climb several levels on
					// the removal side; require at least that some
					// predecessor of s is ≥ a.
					for _, p := range sp.Predecessors(s) {
						if sp.Leq(a, p) {
							found = true
							break
						}
					}
				}
				if !found {
					t.Fatalf("edge %s -> %s has no matching predecessor",
						a.String(v, sp.Kinds()), s.String(v, sp.Kinds()))
				}
				checked++
				next = append(next, s)
			}
		}
		frontier = next
	}
	if checked == 0 {
		t.Fatal("no edges checked")
	}
}

func TestAssignmentString(t *testing.T) {
	sp, v := buildSpace(t, multQuery, nil)
	a := mk(t, sp, v, "Central Park", "Biking", "Ball Game")
	s := a.String(v, sp.Kinds())
	if s == "" {
		t.Fatal("empty String")
	}
	for _, want := range []string{"Central Park", "Biking", "Ball Game"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
