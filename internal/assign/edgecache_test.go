package assign_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/vocab"
)

func sameNodes(got, want []*assign.Assignment) error {
	if len(got) != len(want) {
		return fmt.Errorf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		// Interning makes node equality pointer equality.
		if got[i] != want[i] {
			return fmt.Errorf("node %d: %s vs %s", i, got[i].Key(), want[i].Key())
		}
	}
	return nil
}

// TestEdgeCacheTransparent pins that the shared edge cache is invisible:
// for every reachable node of a seeded DAG, the cached Successors and
// Predecessors equal the uncached recomputation node-for-node, no matter
// how often or in which order the cache is hit.
func TestEdgeCacheTransparent(t *testing.T) {
	d := randomSpace(t, 41)
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 80; i++ {
		a := randomWalk(d, rng, rng.Intn(6))
		// Hit the cache twice (populate, then read), then compare with
		// the raw computation.
		first := d.Space.Successors(a)
		second := d.Space.Successors(a)
		if err := sameNodes(second, first); err != nil {
			t.Fatalf("Successors(%s) unstable across cache hits: %v", a.Key(), err)
		}
		if err := sameNodes(first, d.Space.UncachedSuccessors(a)); err != nil {
			t.Fatalf("cached Successors(%s) diverge from computation: %v", a.Key(), err)
		}
		pfirst := d.Space.Predecessors(a)
		if err := sameNodes(pfirst, d.Space.UncachedPredecessors(a)); err != nil {
			t.Fatalf("cached Predecessors(%s) diverge from computation: %v", a.Key(), err)
		}
	}
	// Roots are memoized too.
	if err := sameNodes(d.Space.Roots(), d.Space.Roots()); err != nil {
		t.Fatalf("Roots unstable: %v", err)
	}
}

// TestEdgeCacheConcurrent hammers one shared Space from many goroutines —
// the multi-driver / re-run sharing the cache exists for — and checks, under
// the race detector, that every cached answer still equals the uncached
// computation.
func TestEdgeCacheConcurrent(t *testing.T) {
	d := randomSpace(t, 47)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				a := randomWalk(d, rng, rng.Intn(6))
				if err := sameNodes(d.Space.Successors(a), d.Space.UncachedSuccessors(a)); err != nil {
					errs <- fmt.Errorf("Successors(%s): %v", a.Key(), err)
					return
				}
				if err := sameNodes(d.Space.Predecessors(a), d.Space.UncachedPredecessors(a)); err != nil {
					errs <- fmt.Errorf("Predecessors(%s): %v", a.Key(), err)
					return
				}
				_ = d.Space.Roots()
				_ = a.Key() // lazy key computation must be race-free too
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInterningPointerIdentity pins the tentpole invariant: structurally
// equal assignments reached by different derivation paths are the same
// pointer with the same dense NodeID, and Canon is idempotent.
func TestInterningPointerIdentity(t *testing.T) {
	d := randomSpace(t, 53)
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 60; i++ {
		a := randomWalk(d, rng, rng.Intn(5))
		if a.ID() == assign.NoID {
			t.Fatalf("space-produced node %s has no ID", a.Key())
		}
		if d.Space.Canon(a) != a {
			t.Fatalf("Canon not idempotent on %s", a.Key())
		}
		// Rebuilding the assignment from scratch and interning it
		// collapses onto the very same pointer and NodeID.
		vals := map[string][]vocab.TermID{}
		for _, vs := range d.Space.Vars() {
			if set := a.Values(vs.Name); len(set) > 0 {
				vals[vs.Name] = append([]vocab.TermID{}, set...)
			}
		}
		twin := assign.New(d.Vocab, d.Space.Kinds(), vals, a.More())
		if twin.ID() != assign.NoID {
			t.Fatalf("fresh assignment %s already carries ID %d", twin.Key(), twin.ID())
		}
		if c := d.Space.Canon(twin); c != a || c.ID() != a.ID() {
			t.Fatalf("rebuilt %s does not intern onto the original node", a.Key())
		}
	}
}
