package assign

// Status is the classification of an assignment during mining.
type Status uint8

const (
	// Unknown means no answer classifies the assignment yet.
	Unknown Status = iota
	// Significant means its support meets the threshold (directly or by
	// the inference of Observation 4.4 from a significant successor).
	Significant
	// Insignificant means its support is below the threshold (directly
	// or inferred from an insignificant predecessor).
	Insignificant
)

func (s Status) String() string {
	switch s {
	case Significant:
		return "significant"
	case Insignificant:
		return "insignificant"
	default:
		return "unknown"
	}
}

// Classifier realizes the inference scheme of Algorithm 1's ask(·): marking
// an assignment significant classifies all its predecessors, marking it
// insignificant classifies all its successors. Instead of materializing
// those (possibly lazily generated, unbounded) sets, the classifier keeps
// two borders à la Mannila–Toivonen: the maximal known-significant and the
// minimal known-insignificant assignments. Any assignment — including ones
// generated after the answers arrived — is classified by comparison against
// the borders.
//
// Because classifications are final (borders only ever grow), Status
// memoizes per NodeID in a dense slice: a classified verdict is cached
// forever and an Unknown verdict only re-examines marks added since the
// last check. Border comparisons additionally go through a per-pair Leq
// memo, since border rescans keep re-deriving the same order relations.
//
// A Classifier is not safe for concurrent use; each engine run owns one
// (the underlying Space, by contrast, is shared).
type Classifier struct {
	space *Space
	// sig is an antichain of known-significant assignments; everything
	// ≤ a member is significant.
	sig []*Assignment
	// insig is an antichain of known-insignificant assignments;
	// everything ≥ a member is insignificant.
	insig []*Assignment

	// sigLog and insigLog append every mark (no antichain pruning) so
	// cached Unknown verdicts can resume scanning incrementally.
	sigLog   []*Assignment
	insigLog []*Assignment
	// entries is indexed by NodeID; the zero entry (Unknown, log cursors
	// at 0) is the correct initial state for a fresh node.
	entries []statusEntry
	// leqMemo caches space.Leq per ordered node pair (a.id<<32 | b.id).
	leqMemo map[uint64]bool
	// sigSize tracks len(sig) incrementally so the per-round border gauge
	// (core.Engine.drive) reads a plain counter instead of touching the
	// border slice at all.
	sigSize int
}

type statusEntry struct {
	status   Status
	sigIdx   int32 // next sigLog index to examine
	insigIdx int32 // next insigLog index to examine
}

// NewClassifier returns an empty classifier over the space.
func NewClassifier(s *Space) *Classifier {
	return &Classifier{space: s, leqMemo: make(map[uint64]bool)}
}

// entry returns the status entry for an interned node, growing the dense
// table as the lazily generated lattice expands.
func (c *Classifier) entry(id NodeID) *statusEntry {
	for int(id) >= len(c.entries) {
		c.entries = append(c.entries, statusEntry{})
	}
	return &c.entries[id]
}

// leq memoizes c.space.Leq per ordered pair of interned nodes.
func (c *Classifier) leq(a, b *Assignment) bool {
	k := uint64(a.id)<<32 | uint64(b.id)
	if v, ok := c.leqMemo[k]; ok {
		return v
	}
	v := c.space.Leq(a, b)
	c.leqMemo[k] = v
	return v
}

// Status classifies the assignment against everything marked so far. When
// conflicting evidence exists (possible only with inconsistent answers),
// whichever mark is examined first wins; with monotone answers the two can
// never overlap.
func (c *Classifier) Status(a *Assignment) Status {
	a = c.space.Canon(a)
	e := c.entry(a.id)
	if e.status != Unknown {
		return e.status
	}
	for ; int(e.insigIdx) < len(c.insigLog); e.insigIdx++ {
		if c.leq(c.insigLog[e.insigIdx], a) {
			e.status = Insignificant
			return e.status
		}
	}
	for ; int(e.sigIdx) < len(c.sigLog); e.sigIdx++ {
		if c.leq(a, c.sigLog[e.sigIdx]) {
			e.status = Significant
			return e.status
		}
	}
	return Unknown
}

// MarkSignificant records that a's support meets the threshold; all
// predecessors of a become significant (Observation 4.4).
func (c *Classifier) MarkSignificant(a *Assignment) {
	a = c.space.Canon(a)
	// Drop border members dominated by a; skip insertion if dominated.
	// Each direction of the order is evaluated once per border member.
	out := c.sig[:0]
	covered := false
	for _, b := range c.sig {
		ab := c.leq(a, b)
		if ab {
			covered = true
		}
		if !c.leq(b, a) || ab {
			out = append(out, b)
		}
	}
	c.sig = out
	if covered {
		c.sigSize = len(c.sig)
		return
	}
	c.sig = append(c.sig, a)
	c.sigLog = append(c.sigLog, a)
	c.entry(a.id).status = Significant
	c.sigSize = len(c.sig)
}

// MarkInsignificant records that a's support is below the threshold; all
// successors of a become insignificant.
func (c *Classifier) MarkInsignificant(a *Assignment) {
	a = c.space.Canon(a)
	out := c.insig[:0]
	covered := false
	for _, b := range c.insig {
		ba := c.leq(b, a)
		if ba {
			covered = true
		}
		if !c.leq(a, b) || ba {
			out = append(out, b)
		}
	}
	c.insig = out
	if covered {
		return
	}
	c.insig = append(c.insig, a)
	c.insigLog = append(c.insigLog, a)
	c.entry(a.id).status = Insignificant
}

// MarkCounts returns the lengths of the significant and insignificant mark
// logs. Marks are append-only, so two equal snapshots bracket a window in
// which no assignment's status can have changed — the kernel's speculative
// selection uses this to skip per-read revalidation on quiet rounds.
func (c *Classifier) MarkCounts() (sig, insig int) {
	return len(c.sigLog), len(c.insigLog)
}

// StatusRO classifies the assignment like Status but never mutates the
// classifier: the dense memo table, the log cursors and the shared Leq memo
// are read, not written. That makes it safe for any number of concurrent
// callers while no Mark* call is executing — the contract under which the
// mining kernel's selection workers read a frozen round-start classifier.
//
// Order relations the shared memo has not seen are recomputed; memo, when
// non-nil, is a caller-owned scratch cache for those misses (each worker
// passes its own, so repeated traversals stay cheap without any write to
// shared state). A cached-Unknown node still resumes from its stored log
// cursors, so StatusRO costs no more than Status on the same node.
func (c *Classifier) StatusRO(a *Assignment, memo map[uint64]bool) Status {
	a = c.space.Canon(a)
	var e statusEntry
	if int(a.id) < len(c.entries) {
		e = c.entries[a.id]
	}
	if e.status != Unknown {
		return e.status
	}
	for i := int(e.insigIdx); i < len(c.insigLog); i++ {
		if c.leqRO(c.insigLog[i], a, memo) {
			return Insignificant
		}
	}
	for i := int(e.sigIdx); i < len(c.sigLog); i++ {
		if c.leqRO(a, c.sigLog[i], memo) {
			return Significant
		}
	}
	return Unknown
}

// leqRO is leq without the shared-memo write: misses land in the caller's
// scratch memo (when given) instead.
func (c *Classifier) leqRO(a, b *Assignment, memo map[uint64]bool) bool {
	k := uint64(a.id)<<32 | uint64(b.id)
	if v, ok := c.leqMemo[k]; ok {
		return v
	}
	if memo != nil {
		if v, ok := memo[k]; ok {
			return v
		}
	}
	v := c.space.Leq(a, b)
	if memo != nil {
		memo[k] = v
	}
	return v
}

// SignificantBorder returns the current antichain of maximal significant
// assignments (shared slice; do not modify). When the traversal has
// classified the whole space these are exactly the MSPs among the explored
// assignments.
func (c *Classifier) SignificantBorder() []*Assignment { return c.sig }

// SignificantBorderSize returns the current significant-border antichain
// size. It is maintained incrementally by MarkSignificant, so per-round
// gauges read it in O(1) without materializing (or even touching) the
// border slice.
func (c *Classifier) SignificantBorderSize() int { return c.sigSize }

// InsignificantBorder returns the minimal insignificant antichain.
func (c *Classifier) InsignificantBorder() []*Assignment { return c.insig }

// CountClassified reports how many of the given assignments are classified.
func (c *Classifier) CountClassified(as []*Assignment) int {
	n := 0
	for _, a := range as {
		if c.Status(a) != Unknown {
			n++
		}
	}
	return n
}
